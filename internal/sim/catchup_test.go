package sim

import (
	"errors"
	"testing"
)

// TestTruncatedRejoinLinearizable is the nemesis-style pin for the bulk
// catch-up path: a follower crashes, the cohort truncates the shared log
// past its f.cmt, and the rejoin — which must take the SSTable-shipping
// path — happens under a concurrent recorded workload that is then checked
// for per-key linearizability.
func TestTruncatedRejoinLinearizable(t *testing.T) {
	res, err := RunTruncatedRejoin(RejoinOptions{Seed: 7, PreloadRows: 300})
	if errors.Is(err, ErrNeverTruncated) {
		t.Skip(err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotCatchups == 0 {
		t.Errorf("rejoin across a truncated log took no snapshot catch-ups")
	}
	if res.SnapshotsServed == 0 {
		t.Errorf("no surviving leader served a snapshot manifest")
	}
	t.Logf("victim %s rejoined in %v (%d snapshot catch-ups, %d ops checked)",
		res.Victim, res.RejoinTime, res.SnapshotCatchups, res.Ops)
}

// TestTruncatedRejoinDiskLoss runs the same scenario through the §6.1 disk
// failure: the victim's stable storage is destroyed, so the rejoin rebuilds
// every range from shipped SSTables into an empty engine.
func TestTruncatedRejoinDiskLoss(t *testing.T) {
	res, err := RunTruncatedRejoin(RejoinOptions{Seed: 11, PreloadRows: 300, DiskLoss: true})
	if errors.Is(err, ErrNeverTruncated) {
		t.Skip(err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotCatchups == 0 {
		t.Errorf("disk-loss rejoin took no snapshot catch-ups")
	}
	t.Logf("victim %s rebuilt in %v (%d snapshot catch-ups, %d ops checked)",
		res.Victim, res.RejoinTime, res.SnapshotCatchups, res.Ops)
}

// TestTruncatedRejoinLogReplayAblation pins the DisableSnapshotCatchup
// ablation: the rejoin still converges and stays linearizable on the pure
// entry-replay path, with zero snapshot catch-ups.
func TestTruncatedRejoinLogReplayAblation(t *testing.T) {
	res, err := RunTruncatedRejoin(RejoinOptions{Seed: 13, PreloadRows: 200, DisableSnapshot: true})
	if errors.Is(err, ErrNeverTruncated) {
		t.Skip(err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotCatchups != 0 {
		t.Errorf("ablation still took %d snapshot catch-ups", res.SnapshotCatchups)
	}
}
