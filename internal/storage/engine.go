// Package storage implements the per-replica LSM storage engine of a
// Spinnaker node (paper §4.1): committed writes are applied to a memtable,
// which is periodically flushed to immutable SSTables; smaller SSTables are
// merged into larger ones in the background to garbage-collect deleted rows
// and improve read performance.
//
// The engine stores only *committed* state: the replication layer applies a
// write here when it commits (leader) or when a commit message covers it
// (follower). The memtable is volatile — a crash loses it and local
// recovery rebuilds it by replaying the log from the last checkpoint
// (paper §6.1). SSTables and the manifest survive crashes.
//
// Maintenance is concurrent and incremental: a flush seals the active
// memtable onto an immutable queue and builds its SSTable outside the
// engine lock (applies and reads proceed against the new active memtable,
// the sealed queue, and the current table set throughout), taking the write
// lock only to swap the table set and persist the manifest. Compaction is
// size-tiered — each round merges a few adjacent, similar-sized tables, also
// off-lock with a short swap — instead of a stop-the-world full merge.
// Tombstones are garbage-collected only at or below the cohort tombstone-GC
// watermark the replication layer passes in (the minimum committed LSN
// across cohort members): dropping a newer tombstone would make
// EntriesSince-based catch-up (§6.1) incomplete and resurrect the deleted
// row on a lagging follower.
package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spinnaker/internal/kv"
	"spinnaker/internal/memtable"
	"spinnaker/internal/sstable"
	"spinnaker/internal/wal"
)

// Config controls an Engine.
type Config struct {
	// Tables is the stable store for SSTable blobs.
	Tables sstable.TableStore
	// Meta holds the manifest (live table ids + checkpoint LSN).
	Meta wal.MetaStore
	// Cohort namespaces the manifest key; a node runs one engine per
	// cohort over shared stores.
	Cohort uint32
	// FlushBytes is the memtable size that triggers a flush from
	// MaybeFlush. Zero means 4 MiB.
	FlushBytes int64
	// MaxTables triggers an incremental compaction round from MaybeFlush
	// when exceeded. Zero means 8.
	MaxTables int
	// CompactFanIn bounds how many tables one compaction round merges.
	// Zero means 4.
	CompactFanIn int
}

// Engine is a single key-range replica's storage.
type Engine struct {
	cfg Config

	// mu guards the layered view — active memtable, sealed queue, table
	// set — and the manifest fields. Maintenance holds it only for the
	// short seal/swap critical sections; SSTable builds and blob-store
	// I/O run outside it, so applies and reads proceed concurrently with
	// flushes and compactions.
	mu         sync.RWMutex
	mem        *memtable.Memtable
	sealed     []*memtable.Memtable // oldest → newest, awaiting flush
	tables     []*sstable.Table     // newest first
	nextID     uint64
	checkpoint wal.LSN
	flushes    int64
	compacts   int64
	closed     bool // maintenance permanently disabled (Close)

	// maintMu serializes maintenance (one flush or compaction at a time);
	// reads and applies never take it.
	maintMu sync.Mutex

	applied   atomic.Uint64 // highest applied LSN
	probes    atomic.Int64  // table lookups considered by point reads
	pruned    atomic.Int64  // table lookups skipped by bloom/key-range tags
	maintErrs atomic.Int64  // failed maintenance attempts (see MaybeFlush)
	lastMaint atomic.Value  // most recent maintenance error (error)
}

func manifestKey(cohort uint32) string { return fmt.Sprintf("manifest/%d", cohort) }

// Open loads (or initializes) the engine state from its stores, and sweeps
// blob ids the manifest does not reference: a crash between a blob Put and
// the manifest save (or between a compaction's manifest save and the
// removal of its inputs) orphans blobs, and Open is the recovery point
// where they are reclaimed.
func Open(cfg Config) (*Engine, error) {
	if cfg.Tables == nil || cfg.Meta == nil {
		return nil, fmt.Errorf("storage: Tables and Meta stores are required")
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 4 << 20
	}
	if cfg.MaxTables <= 0 {
		cfg.MaxTables = 8
	}
	if cfg.CompactFanIn < 2 {
		cfg.CompactFanIn = 4
	}
	e := &Engine{cfg: cfg, mem: memtable.New()}

	referenced := make(map[uint64]bool)
	raw, ok, err := cfg.Meta.Get(manifestKey(cfg.Cohort))
	if err != nil {
		return nil, fmt.Errorf("storage: load manifest: %w", err)
	}
	if ok {
		man, err := decodeManifest(raw)
		if err != nil {
			return nil, err
		}
		e.nextID = man.nextID
		e.checkpoint = man.checkpoint
		e.applied.Store(uint64(man.checkpoint))
		for _, id := range man.tableIDs {
			blob, err := cfg.Tables.Get(id)
			if err != nil {
				return nil, fmt.Errorf("storage: open table %d: %w", id, err)
			}
			t, err := sstable.Open(id, blob)
			if err != nil {
				return nil, fmt.Errorf("storage: parse table %d: %w", id, err)
			}
			referenced[id] = true
			// manifest lists oldest→newest; keep newest first.
			e.tables = append([]*sstable.Table{t}, e.tables...)
		}
	}
	// Orphan sweep. Best-effort: a failed List or Remove leaves the
	// orphan for the next Open, never fails startup.
	if ids, err := cfg.Tables.List(); err == nil {
		for _, id := range ids {
			if !referenced[id] {
				_ = cfg.Tables.Remove(id)
			}
		}
	}
	return e, nil
}

type manifest struct {
	nextID     uint64
	checkpoint wal.LSN
	tableIDs   []uint64 // oldest → newest
}

func encodeManifest(m manifest) []byte {
	buf := make([]byte, 8+8+4+8*len(m.tableIDs))
	binary.LittleEndian.PutUint64(buf[0:8], m.nextID)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.checkpoint))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(m.tableIDs)))
	for i, id := range m.tableIDs {
		binary.LittleEndian.PutUint64(buf[20+8*i:], id)
	}
	return buf
}

func decodeManifest(b []byte) (manifest, error) {
	var m manifest
	if len(b) < 20 {
		return m, fmt.Errorf("storage: manifest too short (%d bytes)", len(b))
	}
	m.nextID = binary.LittleEndian.Uint64(b[0:8])
	m.checkpoint = wal.LSN(binary.LittleEndian.Uint64(b[8:16]))
	// Validate the count against the payload before trusting it: a
	// corrupt count would otherwise drive a huge allocation, and the
	// 20+8*n bound computed in int can overflow on 32-bit platforms.
	n := uint64(binary.LittleEndian.Uint32(b[16:20]))
	if n > (uint64(len(b))-20)/8 {
		return m, fmt.Errorf("storage: manifest truncated: %d table ids exceed %d payload bytes", n, len(b)-20)
	}
	for i := uint64(0); i < n; i++ {
		m.tableIDs = append(m.tableIDs, binary.LittleEndian.Uint64(b[20+8*i:]))
	}
	return m, nil
}

// saveManifest persists a table set (newest first) and checkpoint. Callers
// hold maintMu — which makes them the sole mutator of the table set,
// checkpoint, and id counter — and commit the corresponding in-memory state
// only after this succeeds, so the durable manifest never references state
// the engine did not reach. The metadata write itself deliberately runs
// WITHOUT e.mu: on disk-backed stores it is a synchronous file write, and
// holding the engine lock across it would stall every read and apply.
func (e *Engine) saveManifest(nextID uint64, tables []*sstable.Table, checkpoint wal.LSN) error {
	m := manifest{nextID: nextID, checkpoint: checkpoint}
	for i := len(tables) - 1; i >= 0; i-- { // oldest → newest
		m.tableIDs = append(m.tableIDs, tables[i].ID())
	}
	return e.cfg.Meta.Put(manifestKey(e.cfg.Cohort), encodeManifest(m))
}

// Apply records a committed write. The replication layer calls it in LSN
// order within the cohort; applying the same entry twice is harmless
// (idempotent redo, paper §6.1). The read lock only excludes the flush
// path's memtable swap — the memtable itself is internally synchronized —
// so applies run concurrently with reads and with SSTable builds.
func (e *Engine) Apply(entry kv.Entry) {
	e.mu.RLock()
	e.mem.Apply(entry.Key, entry.Cell)
	e.mu.RUnlock()
	for {
		cur := e.applied.Load()
		if uint64(entry.Cell.LSN) <= cur || e.applied.CompareAndSwap(cur, uint64(entry.Cell.LSN)) {
			return
		}
	}
}

// AppliedLSN returns the highest LSN applied to the engine.
func (e *Engine) AppliedLSN() wal.LSN {
	return wal.LSN(e.applied.Load())
}

// Checkpoint returns the LSN through which all writes are captured in
// SSTables; local recovery replays the log from here (paper §6.1). It is
// also the engine's durable commit floor: the replication layer reports it
// to the cohort leader, whose tombstone-GC watermark is the minimum floor
// across members.
func (e *Engine) Checkpoint() wal.LSN {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.checkpoint
}

// layers snapshots the engine's read view. The returned slice headers are
// immutable (every mutation installs fresh slices), and memtables are
// internally synchronized, so callers read them without holding e.mu —
// long scans never block the maintenance swaps.
func (e *Engine) layers() (mem *memtable.Memtable, sealed []*memtable.Memtable, tables []*sstable.Table) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mem, e.sealed, e.tables
}

// Get returns the newest cell for key, including tombstones (the caller
// interprets Cell.Deleted). Layers are probed newest first — active
// memtable, sealed memtables, then tables pruned by bloom filter and
// key-range tags — and the first hit wins.
func (e *Engine) Get(key kv.Key) (kv.Cell, bool) {
	mem, sealed, tables := e.layers()
	if c, ok := mem.Get(key); ok {
		return c, true
	}
	for i := len(sealed) - 1; i >= 0; i-- {
		if c, ok := sealed[i].Get(key); ok {
			return c, true
		}
	}
	// Batch the stats into one atomic add each at exit: per-table RMWs on
	// a shared cacheline would tax exactly the hot path the pruning is
	// there to speed up.
	var probed, prunedN int64
	defer func() {
		e.probes.Add(probed)
		e.pruned.Add(prunedN)
	}()
	for _, t := range tables {
		probed++
		if !t.MayContain(key) {
			prunedN++
			continue
		}
		if c, ok := t.Get(key); ok {
			return c, true
		}
	}
	return kv.Cell{}, false
}

// GetRow returns the newest cell of every live (non-deleted) column of row,
// in column order.
func (e *Engine) GetRow(row string) []kv.Entry {
	mem, sealed, tables := e.layers()
	newest := make(map[string]kv.Cell)
	var order []string
	consider := func(ent kv.Entry) {
		cur, ok := newest[ent.Key.Col]
		if !ok {
			newest[ent.Key.Col] = ent.Cell
			order = append(order, ent.Key.Col)
			return
		}
		if ent.Cell.Newer(cur) {
			newest[ent.Key.Col] = ent.Cell
		}
	}
	mem.AscendRow(row, func(ent kv.Entry) bool { consider(ent); return true })
	for i := len(sealed) - 1; i >= 0; i-- {
		sealed[i].AscendRow(row, func(ent kv.Entry) bool { consider(ent); return true })
	}
	for _, t := range tables {
		if !t.SpansRow(row) {
			continue
		}
		_ = t.AscendRow(row, func(ent kv.Entry) bool { consider(ent); return true })
	}
	var out []kv.Entry
	for _, col := range order {
		c := newest[col]
		if c.Deleted {
			continue
		}
		out = append(out, kv.Entry{Key: kv.Key{Row: row, Col: col}, Cell: c})
	}
	// order was insertion order over sorted sources; normalize.
	sortEntries(out)
	return out
}

func sortEntries(es []kv.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Key.Less(es[j].Key) })
}

// MemtableBytes returns the active memtable footprint (sealed memtables
// are already queued for flush and excluded from the flush trigger).
func (e *Engine) MemtableBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mem.Bytes()
}

// MaybeFlush flushes when the memtable exceeds the flush threshold (or a
// sealed memtable is still queued from an earlier failed attempt) and runs
// one incremental compaction round when the table count exceeds MaxTables,
// dropping tombstones at or below tombstoneGC when the round includes the
// oldest table. It reports which of the two actually ran — a flush that
// succeeded advances the checkpoint and must drive log truncation even if
// the compaction after it failed.
func (e *Engine) MaybeFlush(tombstoneGC wal.LSN) (flushed, compacted bool, err error) {
	e.mu.RLock()
	over := e.mem.Bytes() >= e.cfg.FlushBytes || len(e.sealed) > 0
	e.mu.RUnlock()
	if over {
		n, ferr := e.flush()
		flushed = n > 0
		err = ferr
	}
	e.mu.RLock()
	tooMany := len(e.tables) > e.cfg.MaxTables
	e.mu.RUnlock()
	if tooMany {
		did, cerr := e.compactRound(tombstoneGC, false, true)
		compacted = did
		if err == nil {
			err = cerr
		}
	}
	if err != nil {
		e.maintErrs.Add(1)
		e.lastMaint.Store(err)
	}
	return flushed, compacted, err
}

// MaintenanceErrors reports how many MaybeFlush attempts failed and the
// most recent failure. The flush daemon retries on its next tick rather
// than escalating, so a persistently failing blob store (full or
// read-only disk) surfaces here instead of vanishing.
func (e *Engine) MaintenanceErrors() (count int64, last error) {
	if v := e.lastMaint.Load(); v != nil {
		last = v.(error)
	}
	return e.maintErrs.Load(), last
}

// Close permanently disables maintenance on this engine, draining any
// round in flight before returning. A retired replica's engine must stop
// writing blobs and the manifest: a successor engine opened over the same
// per-cohort stores (a later re-join of the range) sweeps unreferenced
// blobs at Open and starts from a wiped manifest, and a late flush or
// compaction from the predecessor would overwrite that manifest with
// stale pre-departure tables — or persist references to blobs the sweep
// just removed. Reads and applies keep working on the in-memory state.
func (e *Engine) Close() {
	e.maintMu.Lock()
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.maintMu.Unlock()
}

// Flush captures the memtable into SSTables and advances the checkpoint to
// the flushed max LSN. An empty memtable is a no-op.
func (e *Engine) Flush() error {
	_, err := e.flush()
	return err
}

// flush seals the active memtable and drains the sealed queue oldest
// first, reporting how many SSTables were produced.
func (e *Engine) flush() (int, error) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, nil
	}
	if e.mem.Len() > 0 {
		e.mem.Seal()
		e.sealed = append(e.sealed, e.mem)
		e.mem = memtable.New()
	}
	e.mu.Unlock()

	n := 0
	for {
		did, err := e.flushOldestSealed()
		if err != nil {
			return n, err
		}
		if !did {
			return n, nil
		}
		n++
	}
}

// flushOldestSealed builds and installs one SSTable from the oldest sealed
// memtable. Applies are LSN-ordered, so each seal is an LSN cut: flushing
// oldest first keeps the invariant that every write at or below the
// checkpoint is captured in SSTables.
func (e *Engine) flushOldestSealed() (bool, error) {
	e.mu.Lock()
	if len(e.sealed) == 0 {
		e.mu.Unlock()
		return false, nil
	}
	seal := e.sealed[0]
	id := e.nextID
	e.nextID++
	nextID := e.nextID
	curTables := e.tables
	curCheckpoint := e.checkpoint
	e.mu.Unlock()

	// Build and store the SSTable off-lock: reads and applies proceed
	// against the sealed memtable (still in the read path) meanwhile.
	b := sstable.NewBuilder()
	for _, ent := range seal.Snapshot() {
		b.Add(ent)
	}
	_, maxLSN := seal.LSNRange()
	blob := b.Finish()
	if err := e.cfg.Tables.Put(id, blob); err != nil {
		// The sealed memtable stays queued; the id, if the Put partially
		// landed, is an orphan for the Open-time sweep.
		return false, fmt.Errorf("storage: flush: %w", err)
	}
	t, err := sstable.Open(id, blob)
	if err != nil {
		return false, fmt.Errorf("storage: flush reopen: %w", err)
	}

	// Persist before publishing, still off e.mu (holding maintMu, we are
	// the only mutator of the table set and checkpoint, so the computed
	// manifest cannot go stale): on a manifest failure the blob is an
	// orphan (swept at Open), the sealed memtable stays readable and
	// queued, and the checkpoint — which gates log truncation and the
	// cohort tombstone-GC floor — never runs ahead of the durable state.
	newTables := append([]*sstable.Table{t}, curTables...)
	newCheckpoint := curCheckpoint
	if maxLSN > newCheckpoint {
		newCheckpoint = maxLSN
	}
	if err := e.saveManifest(nextID, newTables, newCheckpoint); err != nil {
		return false, err
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	e.tables = newTables
	e.checkpoint = newCheckpoint
	// DropMemtable (crash simulation) may have discarded the sealed
	// queue while the build ran; only unlink the memtable we flushed.
	if len(e.sealed) > 0 && e.sealed[0] == seal {
		e.sealed = append([]*memtable.Memtable(nil), e.sealed[1:]...)
	}
	e.flushes++
	return true, nil
}

// CompactOnce runs one incremental size-tiered compaction round if a
// qualifying run of tables exists, dropping tombstones at or below
// tombstoneGC when the round includes the oldest table. It reports whether
// a round ran.
func (e *Engine) CompactOnce(tombstoneGC wal.LSN) (bool, error) {
	return e.compactRound(tombstoneGC, false, false)
}

// CompactAll merges every SSTable into one, dropping tombstones at or
// below tombstoneGC (pass sstable.DropAllTombstones only when no cohort
// member can still need them, e.g. after a durable cohort-wide purge).
func (e *Engine) CompactAll(tombstoneGC wal.LSN) error {
	_, err := e.compactRound(tombstoneGC, true, false)
	return err
}

// compactRound picks a run of adjacent tables (all of them when full;
// otherwise a size tier, falling back to the oldest tables when force is
// set), merges them off-lock, and swaps the merged table into the set. The
// run is always age-adjacent, so the newest-first probe order of Get stays
// correct, and tombstones are only dropped when the run includes the
// oldest table (nothing older remains to resurrect the deleted value).
func (e *Engine) compactRound(tombstoneGC wal.LSN, full, force bool) (bool, error) {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()

	e.mu.RLock()
	closed := e.closed
	tables := e.tables
	e.mu.RUnlock()
	if closed {
		return false, nil
	}
	var run []*sstable.Table
	switch {
	case full:
		if len(tables) <= 1 {
			return false, nil
		}
		run = tables
	default:
		start, end := pickTier(tables, e.cfg.CompactFanIn)
		if start < 0 {
			if !force || len(tables) < 2 {
				return false, nil
			}
			// Over budget with no similar-sized run: merge the oldest
			// tables so table count (and tombstone GC) still progresses.
			end = len(tables)
			start = end - e.cfg.CompactFanIn
			if start < 0 {
				start = 0
			}
		}
		run = tables[start:end]
	}
	dropBelow := wal.LSN(0)
	if run[len(run)-1] == tables[len(tables)-1] {
		dropBelow = tombstoneGC
	}

	// Merge and store off-lock; reads keep probing the input tables.
	blob, err := sstable.Compact(run, dropBelow)
	if err != nil {
		return false, fmt.Errorf("storage: compact: %w", err)
	}
	e.mu.Lock()
	id := e.nextID
	e.nextID++
	nextID := e.nextID
	checkpoint := e.checkpoint
	e.mu.Unlock()
	if err := e.cfg.Tables.Put(id, blob); err != nil {
		return false, fmt.Errorf("storage: compact put: %w", err)
	}
	t, err := sstable.Open(id, blob)
	if err != nil {
		return false, fmt.Errorf("storage: compact reopen: %w", err)
	}

	// Relocate the run in the snapshot. maintMu serializes all
	// maintenance, so the table set cannot have changed since; the
	// identity search is a cheap guard on that invariant — checked
	// against the live set below BEFORE the manifest commits — rather
	// than positional indexing that would corrupt the set if it broke.
	idx := -1
	for i, cur := range tables {
		if cur == run[0] {
			idx = i
			break
		}
	}
	if idx < 0 || idx+len(run) > len(tables) {
		_ = e.cfg.Tables.Remove(id)
		return false, fmt.Errorf("storage: compact lost its inputs (table set changed)")
	}
	newTables := make([]*sstable.Table, 0, len(tables)-len(run)+1)
	newTables = append(newTables, tables[:idx]...)
	newTables = append(newTables, t)
	newTables = append(newTables, tables[idx+len(run):]...)
	e.mu.RLock()
	stale := len(e.tables) != len(tables) || (len(tables) > 0 && e.tables[0] != tables[0])
	e.mu.RUnlock()
	if stale {
		_ = e.cfg.Tables.Remove(id)
		return false, fmt.Errorf("storage: compact lost its inputs (table set changed)")
	}
	// Persist off e.mu (see saveManifest), then swap under a short lock.
	if err := e.saveManifest(nextID, newTables, checkpoint); err != nil {
		return false, err
	}
	e.mu.Lock()
	e.tables = newTables
	e.compacts++
	e.mu.Unlock()

	// Remove the inputs only after the manifest no longer references
	// them; failures leave orphans for the Open-time sweep.
	for _, o := range run {
		_ = e.cfg.Tables.Remove(o.ID())
	}
	return true, nil
}

// pickTier selects a run of adjacent, similar-sized tables to merge
// (size-tiered compaction): the longest run of at most fanIn tables whose
// largest member is within 2× of its smallest, preferring older runs so
// the oldest-suffix rounds that can garbage-collect tombstones happen
// often. Returns (-1, -1) when no run qualifies.
func pickTier(tables []*sstable.Table, fanIn int) (int, int) {
	n := len(tables)
	maxRun := fanIn
	if maxRun > n {
		maxRun = n
	}
	for l := maxRun; l >= 2; l-- {
		for i := n - l; i >= 0; i-- {
			lo, hi := tables[i].Bytes(), tables[i].Bytes()
			for _, t := range tables[i+1 : i+l] {
				if b := t.Bytes(); b < lo {
					lo = b
				} else if b > hi {
					hi = b
				}
			}
			if hi <= 2*lo+64 { // +64 keeps tiny near-empty tables in tier
				return i, i + l
			}
		}
	}
	return -1, -1
}

// Tables returns the live tables, newest first.
func (e *Engine) Tables() []*sstable.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]*sstable.Table(nil), e.tables...)
}

// TablesSince returns tables that may contain writes with LSN > after,
// chosen by their max-LSN tags; catch-up ships these when the leader's log
// has been truncated (paper §6.1).
func (e *Engine) TablesSince(after wal.LSN) []*sstable.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*sstable.Table
	for _, t := range e.tables {
		if _, max := t.LSNRange(); max > after {
			out = append(out, t)
		}
	}
	return out
}

// ExportTable returns the serialized blob of a live table by id, for bulk
// catch-up to ship in chunks. ok is false when the table is no longer in
// the live set (compacted away since the manifest was cut); the fetcher
// then restarts from a fresh manifest.
func (e *Engine) ExportTable(id uint64) ([]byte, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, t := range e.tables {
		if t.ID() == id {
			return t.Blob(), true
		}
	}
	return nil, false
}

// IngestTables installs shipped table blobs (newest first, the shipping
// leader's stacking order) and raises the checkpoint to snapCmt, the LSN
// through which the snapshot covers all committed state.
//
// Two modes, chosen by the engine's state:
//
//   - An empty engine (fresh join, or wiped for re-join) installs the blobs
//     directly as its table stack. The shipped set is a suffix-complete view
//     of the leader's resolved state, so first-hit-wins reads over it are
//     correct as-is.
//
//   - A non-empty engine cannot stack foreign tables above or below its own
//     (a shipped table may hold an older cell for a key this engine has
//     newer, or vice versa — either stacking order would shadow a newer cell
//     with a staler one on point reads). Instead the blobs are *sifted*:
//     each shipped entry is applied through the normal path only when it is
//     newer than the engine's current view of that key, then the memtable is
//     flushed so the checkpoint raise is backed by durable tables.
//
// After either mode, every committed write at or below snapCmt is reflected
// in the engine's durable tables (directly, or superseded by a newer cell),
// which is exactly the checkpoint contract local recovery relies on.
func (e *Engine) IngestTables(blobs [][]byte, snapCmt wal.LSN) error {
	// Parse everything up front: reject a corrupt shipment before touching
	// any engine state.
	parsed := make([]*sstable.Table, len(blobs))
	for i, blob := range blobs {
		t, err := sstable.Open(0, blob)
		if err != nil {
			return fmt.Errorf("storage: ingest parse: %w", err)
		}
		parsed[i] = t
	}

	e.maintMu.Lock()
	e.mu.RLock()
	empty := len(e.tables) == 0 && len(e.sealed) == 0 && e.mem.Len() == 0 && e.checkpoint.IsZero()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		e.maintMu.Unlock()
		return fmt.Errorf("storage: ingest into closed engine")
	}
	if empty {
		defer e.maintMu.Unlock()
		e.mu.Lock()
		ids := make([]uint64, len(blobs))
		for i := range blobs {
			ids[i] = e.nextID
			e.nextID++
		}
		nextID := e.nextID
		e.mu.Unlock()
		tables := make([]*sstable.Table, 0, len(blobs))
		for i, blob := range blobs {
			if err := e.cfg.Tables.Put(ids[i], blob); err != nil {
				return fmt.Errorf("storage: ingest put: %w", err) // written blobs are orphans, swept at Open
			}
			t, err := sstable.Open(ids[i], blob)
			if err != nil {
				return fmt.Errorf("storage: ingest reopen: %w", err)
			}
			tables = append(tables, t) // blobs arrive newest first — the stack order
		}
		if err := e.saveManifest(nextID, tables, snapCmt); err != nil {
			return err
		}
		e.mu.Lock()
		e.tables = tables
		e.checkpoint = snapCmt
		e.mu.Unlock()
		e.bumpApplied(snapCmt)
		return nil
	}
	e.maintMu.Unlock()

	// Sifted mode. Applies run lock-free against the current view; catch-up
	// is single-threaded per replica and the replica accepts no replicated
	// writes while recovering, so the view only moves beneath us through
	// our own applies.
	for _, t := range parsed { // newest shipped table first
		err := t.Ascend(func(ent kv.Entry) bool {
			if cur, ok := e.Get(ent.Key); !ok || ent.Cell.Newer(cur) {
				e.Apply(ent)
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("storage: ingest sift: %w", err)
		}
	}
	if _, err := e.flush(); err != nil {
		return err
	}
	return e.RaiseCheckpoint(snapCmt)
}

// RaiseCheckpoint persists a checkpoint at least `to`, asserting that every
// committed write at or below it is reflected in the engine's durable
// tables. Bulk catch-up uses it after ingest: the shipped snapshot covers
// (checkpoint, snapCmt], so local recovery may skip that span of the log.
func (e *Engine) RaiseCheckpoint(to wal.LSN) error {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.mu.RLock()
	tables := e.tables
	nextID := e.nextID
	cur := e.checkpoint
	closed := e.closed
	e.mu.RUnlock()
	if closed || to <= cur {
		return nil
	}
	if err := e.saveManifest(nextID, tables, to); err != nil {
		return err
	}
	e.mu.Lock()
	if to > e.checkpoint {
		e.checkpoint = to
	}
	e.mu.Unlock()
	e.bumpApplied(to)
	return nil
}

// bumpApplied raises the applied-LSN high-water mark to at least lsn.
func (e *Engine) bumpApplied(lsn wal.LSN) {
	for {
		cur := e.applied.Load()
		if uint64(lsn) <= cur || e.applied.CompareAndSwap(cur, uint64(lsn)) {
			return
		}
	}
}

// EntriesSince returns every entry with LSN > after, from the memtables
// and from tables tagged as overlapping, in key order (duplicates resolved
// to newest). Catch-up uses it to stream a follower back to currency; it
// is complete — including deletions — for any `after` at or above the
// cohort tombstone-GC watermark, which is why compaction may not drop
// tombstones above that watermark.
func (e *Engine) EntriesSince(after wal.LSN) []kv.Entry {
	mem, sealed, tables := e.layers()
	newest := make(map[kv.Key]kv.Cell)
	consider := func(ent kv.Entry) {
		if ent.Cell.LSN <= after {
			return
		}
		if cur, ok := newest[ent.Key]; !ok || ent.Cell.Newer(cur) {
			newest[ent.Key] = ent.Cell
		}
	}
	mem.Ascend(func(ent kv.Entry) bool { consider(ent); return true })
	for i := len(sealed) - 1; i >= 0; i-- {
		sealed[i].Ascend(func(ent kv.Entry) bool { consider(ent); return true })
	}
	for _, t := range tables {
		if _, max := t.LSNRange(); max <= after {
			continue
		}
		_ = t.Ascend(func(ent kv.Entry) bool { consider(ent); return true })
	}
	out := make([]kv.Entry, 0, len(newest))
	for k, c := range newest {
		out = append(out, kv.Entry{Key: k, Cell: c})
	}
	sortEntries(out)
	return out
}

// Empty reports whether the engine holds no data in any layer. A replica
// catching up from emptiness advertises it so the leader can skip building
// an anti-entropy digest nothing will be compared against.
func (e *Engine) Empty() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.mem.Len() > 0 || len(e.tables) > 0 {
		return false
	}
	for _, s := range e.sealed {
		if s.Len() > 0 {
			return false
		}
	}
	return true
}

// Stats reports flush and compaction counts and the live table count.
func (e *Engine) Stats() (flushes, compacts int64, tables int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.flushes, e.compacts, len(e.tables)
}

// ReadStats reports how many table probes point reads considered and how
// many the bloom/key-range filters pruned.
func (e *Engine) ReadStats() (probes, pruned int64) {
	return e.probes.Load(), e.pruned.Load()
}

// Wipe discards the engine's entire contents — memtables, SSTables, and
// checkpoint — and durably persists the empty manifest. A node re-joining a
// cohort it previously left calls this before catching up from scratch:
// the engine's pre-departure state is stale (deletes that happened while
// the node was out may have had their tombstones compacted away
// cluster-wide, so catch-up cannot mention them) and must not survive.
func (e *Engine) Wipe() error {
	e.maintMu.Lock()
	defer e.maintMu.Unlock()
	e.mu.Lock()
	old := e.tables
	if err := e.saveManifest(e.nextID, nil, 0); err != nil {
		e.mu.Unlock()
		return err
	}
	e.tables = nil
	e.sealed = nil
	e.mem = memtable.New()
	e.checkpoint = 0
	e.applied.Store(0)
	e.mu.Unlock()
	for _, t := range old {
		if err := e.cfg.Tables.Remove(t.ID()); err != nil {
			return fmt.Errorf("storage: wipe remove %d: %w", t.ID(), err)
		}
	}
	return nil
}

// DropMemtable simulates the crash of the volatile state: everything not
// yet flushed — the active memtable and the sealed queue — is lost, and
// appliedLSN falls back to the checkpoint. Node recovery then replays the
// log from the checkpoint (paper §6.1).
func (e *Engine) DropMemtable() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mem = memtable.New()
	e.sealed = nil
	e.applied.Store(uint64(e.checkpoint))
}
