package spinnaker

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestPublicAPIBasics(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3})
	client := cluster.NewClient()

	v, err := client.Put("user42", "email", []byte("x@example.com"))
	if err != nil {
		t.Fatal(err)
	}
	val, ver, err := client.Get("user42", "email", Strong)
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "x@example.com" || ver != v {
		t.Errorf("Get = %q v%d", val, ver)
	}
	if err := client.Delete("user42", "email"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Get("user42", "email", Strong); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after Delete: %v", err)
	}
}

func TestPublicAPIConditional(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3})
	client := cluster.NewClient()

	v1, err := client.ConditionalPut("row", "c", []byte("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ConditionalPut("row", "c", []byte("b"), 0); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("stale conditional put: %v", err)
	}
	if _, err := client.ConditionalPut("row", "c", []byte("b"), v1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIMultiColumn(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3})
	client := cluster.NewClient()

	if _, err := client.MultiPut("profile", []Column{
		{Col: "name", Value: []byte("Ada")},
		{Col: "lang", Value: []byte("Go")},
	}); err != nil {
		t.Fatal(err)
	}
	row, err := client.GetRow("profile", Strong)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 2 || row[0].Col != "lang" || row[1].Col != "name" {
		t.Errorf("GetRow = %+v", row)
	}
}

func TestPublicAPIIncrement(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3})

	var wg sync.WaitGroup
	const workers, each = 4, 10
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := cluster.NewClient()
			for i := 0; i < each; i++ {
				if _, err := client.Increment("stats", "hits", 1); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := cluster.NewClient().Increment("stats", "hits", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != workers*each {
		t.Errorf("counter = %d, want %d", got, workers*each)
	}
}

func TestPublicAPIFailover(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3, CommitPeriod: 5 * time.Millisecond})
	client := cluster.NewClient()

	if _, err := client.Put("durable", "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	leader := cluster.LeaderOf("durable")
	if leader == "" {
		t.Fatal("no leader registered")
	}
	if err := cluster.CrashNode(leader); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		val, _, err := client.Get("durable", "c", Strong)
		if err == nil {
			if string(val) != "v" {
				t.Fatalf("value = %q after failover", val)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("unavailable after failover: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cluster.RestartNode(leader); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITimelineRead(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3, CommitPeriod: 5 * time.Millisecond})
	client := cluster.NewClient()
	if _, err := client.Put("tl", "c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		val, _, err := client.Get("tl", "c", Timeline)
		if err == nil && string(val) == "x" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeline read never converged: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewCluster(Options{LogDevice: "floppy"}); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestPublicAPIPartitionAndHeal(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3, CommitPeriod: 5 * time.Millisecond})
	client := cluster.NewClient()

	if _, err := client.Put("part", "c", []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Cut the row's leader off from the rest of its cohort: without a
	// quorum the write must fail rather than diverge (§8.1).
	leader := cluster.LeaderOf("part")
	if leader == "" {
		t.Fatal("no leader registered")
	}
	var rest []string
	for _, id := range cluster.Nodes() {
		if id != leader {
			rest = append(rest, id)
		}
	}
	cluster.PartitionNodes([]string{leader}, rest)
	if _, err := client.Put("part", "c", []byte("split")); err == nil {
		t.Fatal("write committed across a partition without a quorum")
	}

	// Heal: the cohort must become available again and still serve the
	// last committed value.
	cluster.HealAll()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := client.Put("part", "c", []byte("after")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cohort never recovered after HealAll")
		}
		time.Sleep(10 * time.Millisecond)
	}
	val, _, err := client.Get("part", "c", Strong)
	if err != nil || string(val) != "after" {
		t.Fatalf("after heal: %q, %v", val, err)
	}

	// Isolate composes with HealAll the same way.
	cluster.Isolate(leader)
	cluster.HealAll()
	if _, err := client.Put("part", "c", []byte("final")); err != nil {
		t.Fatalf("write after Isolate+HealAll: %v", err)
	}
}

func TestPublicAPILinkFaults(t *testing.T) {
	// A lossy, duplicating, reordering network between nodes: the
	// replication protocol must ride through it and the API must stay
	// correct, if slower.
	cluster := newCluster(t, Options{
		Nodes:        3,
		CommitPeriod: 5 * time.Millisecond,
		FaultSeed:    7,
		LinkFaults: LinkFaults{
			DropProb:    0.02,
			DupProb:     0.02,
			ReorderProb: 0.05,
			Jitter:      time.Millisecond,
		},
	})
	client := cluster.NewClient()
	for i := 0; i < 40; i++ {
		row := cluster.Key(i * 1000)
		want := []byte{byte(i)}
		if _, err := client.Put(row, "c", want); err != nil {
			t.Fatalf("Put %d over lossy links: %v", i, err)
		}
		got, _, err := client.Get(row, "c", Strong)
		if err != nil || string(got) != string(want) {
			t.Fatalf("Get %d over lossy links: %q, %v", i, got, err)
		}
	}
}

func TestPublicAPIAsyncAndBatch(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3})
	client := cluster.NewClient()

	// Pipelined single-client writes through futures.
	const n = 32
	futures := make([]*WriteFuture, n)
	for i := 0; i < n; i++ {
		futures[i] = client.PutAsync(cluster.Key(i), "c", []byte{byte(i)})
	}
	for i, f := range futures {
		if v, err := f.Wait(); err != nil || v == 0 {
			t.Fatalf("async put %d: v=%d err=%v", i, v, err)
		}
	}
	// Wait is idempotent.
	if v, err := futures[0].Wait(); err != nil || v == 0 {
		t.Fatalf("re-Wait: v=%d err=%v", v, err)
	}
	for i := 0; i < n; i++ {
		got, _, err := client.Get(cluster.Key(i), "c", Strong)
		if err != nil || len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("Get(%d) = %v, %v", i, got, err)
		}
	}

	// Batch: multi-row pipelined submission, versions in batch order.
	b := client.NewBatch()
	for i := 0; i < 10; i++ {
		b.Put(cluster.Key(100+i), "c", []byte("b"))
	}
	b.Delete(cluster.Key(0), "c")
	if b.Len() != 11 {
		t.Fatalf("batch Len = %d", b.Len())
	}
	versions, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 11 {
		t.Fatalf("batch versions = %d", len(versions))
	}
	for i, v := range versions {
		if v == 0 {
			t.Errorf("batch op %d: zero version", i)
		}
	}
	if b.Len() != 0 {
		t.Errorf("batch not reset after Run")
	}
	if _, _, err := client.Get(cluster.Key(0), "c", Strong); !errors.Is(err, ErrNotFound) {
		t.Errorf("batched delete not applied: %v", err)
	}
	got, _, err := client.Get(cluster.Key(105), "c", Strong)
	if err != nil || string(got) != "b" {
		t.Errorf("batched put: %q, %v", got, err)
	}

	// DeleteAsync.
	if _, err := client.Put("zz", "c", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.DeleteAsync("zz", "c").Wait(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Get("zz", "c", Strong); !errors.Is(err, ErrNotFound) {
		t.Errorf("async delete: %v", err)
	}
}

func TestPublicAPIScaleOut(t *testing.T) {
	cluster := newCluster(t, Options{Nodes: 3})
	client := cluster.NewClient()

	// Preload keys across the whole key domain so every range has data.
	const n = 24
	for i := 0; i < n; i++ {
		if _, err := client.Put(cluster.Key(i*100000000/n), "v", []byte{byte(i)}); err != nil {
			t.Fatalf("preload %d: %v", i, err)
		}
	}
	v0 := cluster.LayoutVersion()

	// Grow live: two new nodes, then rebalance onto them while the
	// cluster keeps serving.
	for i := 0; i < 2; i++ {
		id, err := cluster.AddNode()
		if err != nil {
			t.Fatal(err)
		}
		if id == "" {
			t.Fatal("AddNode returned an empty id")
		}
	}
	if err := cluster.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if got := len(cluster.Nodes()); got != 5 {
		t.Fatalf("nodes after scale-out: %d, want 5", got)
	}
	if cluster.NumRanges() < 5 {
		t.Fatalf("ranges after scale-out: %d, want >= 5", cluster.NumRanges())
	}
	if cluster.LayoutVersion() <= v0 {
		t.Fatalf("layout version did not advance: %d -> %d", v0, cluster.LayoutVersion())
	}

	// All data survives the reconfiguration, for old and new clients.
	fresh := cluster.NewClient()
	for i := 0; i < n; i++ {
		key := cluster.Key(i * 100000000 / n)
		for _, cl := range []*Client{client, fresh} {
			val, _, err := cl.Get(key, "v", Strong)
			if err != nil || len(val) != 1 || val[0] != byte(i) {
				t.Fatalf("read %s after scale-out: %v %v", key, val, err)
			}
		}
	}
	if _, err := client.Put(cluster.Key(1), "v", []byte("post")); err != nil {
		t.Fatalf("write after scale-out: %v", err)
	}
}
