package bench

import (
	"fmt"
	"time"

	"spinnaker/internal/sim"
)

// rejoinSizes are the preload sizes (rows of 256B) swept by the Rejoin
// experiment. The paper's recovery story (§6.1) is that a rejoining replica's
// cost scales with the data it must receive, not with the history it missed;
// the sweep makes that scaling visible. Sizes are bounded by what the
// in-process simulation loads in reasonable wall time — EXPERIMENTS.md
// discusses extrapolation to the paper's scales.
var rejoinSizes = []int{1_000, 10_000, 100_000}

// rejoinAt runs one truncated-log rejoin measurement and returns the result.
// DiskLoss keeps the two modes comparable: both rebuild the full range, so
// the measured difference is purely ship-tables vs replay-entries.
func rejoinAt(rows int, seed int64, disableSnapshot bool) (*sim.RejoinResult, error) {
	return sim.RunTruncatedRejoin(sim.RejoinOptions{
		Seed:            seed,
		PreloadRows:     rows,
		DiskLoss:        true,
		DisableSnapshot: disableSnapshot,
		Measure:         true,
	})
}

// Rejoin measures truncated-log rejoin time — the tentpole recovery path —
// for the SSTable-shipping catch-up against the log-replay ablation, at
// increasing preload sizes. The victim loses its disk with the crash, so
// both modes rebuild the whole range: the snapshot path ingests sealed
// tables wholesale, the ablation replays every resolved cell back through
// the follower's write path (WAL append, memtable, flush).
func Rejoin(cfg Config) (Table, error) {
	cfg.fillDefaults()
	table := Table{
		ID:      "rejoin",
		Title:   "truncated-log rejoin: SSTable shipping vs log replay (disk loss, 256B values)",
		Columns: []string{"rows", "ship-tables", "snap-catchups", "log-replay", "speedup"},
		Notes:   "§6.1: recovery cost scales with data shipped, not history missed",
	}
	for _, rows := range rejoinSizes {
		snap, err := rejoinAt(rows, 101, false)
		if err != nil {
			return Table{}, fmt.Errorf("rejoin %d rows (snapshot): %w", rows, err)
		}
		replay, err := rejoinAt(rows, 102, true)
		if err != nil {
			return Table{}, fmt.Errorf("rejoin %d rows (replay): %w", rows, err)
		}
		speedup := float64(replay.RejoinTime) / float64(snap.RejoinTime)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", rows),
			snap.RejoinTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", snap.SnapshotCatchups),
			replay.RejoinTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", speedup),
		})
		cfg.progress("rejoin: %d rows done (ship %v, replay %v)", rows, snap.RejoinTime, replay.RejoinTime)
	}
	return table, nil
}
