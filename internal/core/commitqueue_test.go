package core

import (
	"testing"
	"time"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

func pw(seq uint64, row, col string) *pendingWrite {
	return &pendingWrite{
		lsn: wal.MakeLSN(1, seq),
		op:  WriteOp{Row: row, Cols: []ColWrite{{Col: col, Version: seq}}},
	}
}

func TestCommitQueueAddDedupes(t *testing.T) {
	q := newCommitQueue()
	if !q.add(pw(1, "r", "c")) {
		t.Fatal("first add rejected")
	}
	if q.add(pw(1, "r", "c")) {
		t.Fatal("duplicate LSN accepted (re-proposals must be ignored)")
	}
	if q.len() != 1 {
		t.Errorf("len = %d", q.len())
	}
}

func TestCommitQueuePopCommittableInOrder(t *testing.T) {
	q := newCommitQueue()
	for seq := uint64(1); seq <= 3; seq++ {
		q.add(pw(seq, "r", "c"))
	}
	// Nothing is committable before forces/acks.
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatalf("popped %d writes with no acks", len(got))
	}
	// LSN 2 satisfied first: commits must still wait for LSN 1 (writes
	// execute in LSN order within a cohort, §5.1).
	q.markForced(wal.MakeLSN(1, 2))
	q.markAck("f1", wal.MakeLSN(1, 2))
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatalf("LSN 2 committed ahead of LSN 1")
	}
	q.markForced(wal.MakeLSN(1, 1))
	q.markAck("f1", wal.MakeLSN(1, 1))
	got := q.popCommittable(2, nil)
	if len(got) != 2 || got[0].lsn != wal.MakeLSN(1, 1) || got[1].lsn != wal.MakeLSN(1, 2) {
		t.Fatalf("popped %d writes, want [1.1 1.2]", len(got))
	}
	// LSN 3 still pending.
	if q.len() != 1 {
		t.Errorf("len = %d after pop", q.len())
	}
}

func TestCommitQueueQuorumRule(t *testing.T) {
	q := newCommitQueue()
	q.add(pw(1, "r", "c"))
	// An ack without the local force is not enough (the commit rule is
	// 2-of-3 logs *including* the leader's, §8.1).
	q.markAck("f1", wal.MakeLSN(1, 1))
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatal("committed without local force")
	}
	q.markForced(wal.MakeLSN(1, 1))
	if got := q.popCommittable(2, nil); len(got) != 1 {
		t.Fatal("not committed with force + 1 ack")
	}
}

func TestCommitQueuePopThrough(t *testing.T) {
	q := newCommitQueue()
	for seq := uint64(1); seq <= 5; seq++ {
		q.add(pw(seq, "r", "c"))
	}
	got := q.popThrough(wal.MakeLSN(1, 3))
	if len(got) != 3 {
		t.Fatalf("popThrough(1.3) = %d writes", len(got))
	}
	if q.len() != 2 {
		t.Errorf("len = %d", q.len())
	}
	if head, ok := q.head(); !ok || head != wal.MakeLSN(1, 4) {
		t.Errorf("head = %v,%v", head, ok)
	}
}

func TestCommitQueueLatestPendingPerKey(t *testing.T) {
	q := newCommitQueue()
	q.add(pw(1, "r", "a"))
	q.add(pw(2, "r", "a"))
	q.add(pw(3, "r", "b"))
	p, ok := q.latestPending(kv.Key{Row: "r", Col: "a"})
	if !ok || p.lsn != wal.MakeLSN(1, 2) {
		t.Fatalf("latestPending(a) = %v,%v", p, ok)
	}
	// Popping the newer write reveals... nothing for "a" if both popped;
	// popThrough(1.2) removes 1 and 2.
	q.popThrough(wal.MakeLSN(1, 2))
	if _, ok := q.latestPending(kv.Key{Row: "r", Col: "a"}); ok {
		t.Error("latestPending(a) found after pop")
	}
	if p, ok := q.latestPending(kv.Key{Row: "r", Col: "b"}); !ok || p.lsn != wal.MakeLSN(1, 3) {
		t.Errorf("latestPending(b) = %v,%v", p, ok)
	}
}

func TestCommitQueueLatestPendingRollsBack(t *testing.T) {
	// Removing the newest pending for a key must re-expose the older one.
	q := newCommitQueue()
	q.add(pw(1, "r", "a"))
	q.add(pw(2, "r", "a"))
	if !q.remove(wal.MakeLSN(1, 2)) {
		t.Fatal("remove failed")
	}
	p, ok := q.latestPending(kv.Key{Row: "r", Col: "a"})
	if !ok || p.lsn != wal.MakeLSN(1, 1) {
		t.Fatalf("latestPending after remove = %v,%v", p, ok)
	}
}

func TestCommitQueueRemove(t *testing.T) {
	q := newCommitQueue()
	for seq := uint64(1); seq <= 3; seq++ {
		q.add(pw(seq, "r", "c"))
	}
	if !q.remove(wal.MakeLSN(1, 2)) {
		t.Fatal("remove existing failed")
	}
	if q.remove(wal.MakeLSN(1, 2)) {
		t.Fatal("remove absent succeeded")
	}
	order := q.snapshotOrder()
	if len(order) != 2 || order[0] != wal.MakeLSN(1, 1) || order[1] != wal.MakeLSN(1, 3) {
		t.Errorf("order after remove = %v", order)
	}
	if q.has(wal.MakeLSN(1, 2)) {
		t.Error("removed LSN still present")
	}
}

func TestCommitQueueOutOfOrderInsertSorted(t *testing.T) {
	// Recovery can insert pendings out of order; the queue keeps them
	// sorted so commits stay in LSN order.
	q := newCommitQueue()
	for _, seq := range []uint64{5, 2, 9, 1} {
		q.add(pw(seq, "r", "c"))
	}
	order := q.snapshotOrder()
	want := []uint64{1, 2, 5, 9}
	for i, lsn := range order {
		if lsn.Seq() != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestCommitQueueDrain(t *testing.T) {
	q := newCommitQueue()
	q.add(pw(1, "r", "c"))
	q.add(pw(2, "r", "c"))
	got := q.drain()
	if len(got) != 2 || q.len() != 0 {
		t.Fatalf("drain = %d entries, len %d", len(got), q.len())
	}
	if _, ok := q.latestPending(kv.Key{Row: "r", Col: "c"}); ok {
		t.Error("key index survived drain")
	}
}

func TestCommitQueueStalePending(t *testing.T) {
	q := newCommitQueue()
	q.add(pw(1, "r", "c"))
	q.add(pw(2, "r", "c"))
	// Unforced writes are never retransmitted (their own force path will
	// propose them).
	if stale := q.stalePending(0); len(stale) != 0 {
		t.Fatalf("unforced writes retransmitted: %d", len(stale))
	}
	q.markForced(wal.MakeLSN(1, 1))
	q.markForced(wal.MakeLSN(1, 2))
	// Everything forced is stale initially (never proposed).
	stale := q.stalePending(time.Hour)
	if len(stale) != 2 {
		t.Fatalf("stale = %d, want 2", len(stale))
	}
	if stale[0].LSN != wal.MakeLSN(1, 1) || len(stale[0].Op.Cols) != 1 {
		t.Errorf("snapshot = %+v", stale[0])
	}
	// Just marked: nothing stale at a long threshold.
	if again := q.stalePending(time.Hour); len(again) != 0 {
		t.Fatalf("stale after touch = %d", len(again))
	}
	// With a zero threshold everything is always stale.
	if again := q.stalePending(0); len(again) != 2 {
		t.Fatalf("stale at zero age = %d", len(again))
	}
}

func TestPendingWriteFinishOnce(t *testing.T) {
	p := &pendingWrite{done: make(chan writeOutcome, 1)}
	p.finish(writeOutcome{status: StatusOK})
	p.finish(writeOutcome{status: StatusUnavailable}) // must not double-send
	out := <-p.done
	if out.status != StatusOK {
		t.Errorf("outcome = %d", out.status)
	}
	select {
	case <-p.done:
		t.Error("second outcome delivered")
	default:
	}
	// Follower-side pendings have no channel; finish must not panic.
	(&pendingWrite{}).finish(writeOutcome{})
}

// pwAt builds a pending write at an explicit epoch.
func pwAt(epoch uint32, seq uint64, row, col string) *pendingWrite {
	return &pendingWrite{
		lsn: wal.MakeLSN(epoch, seq),
		op:  WriteOp{Row: row, Cols: []ColWrite{{Col: col, Version: seq}}},
	}
}

func TestCommitQueueCumulativeAckCommitsPrefix(t *testing.T) {
	// One cumulative ack commits the whole covered prefix in one pass.
	q := newCommitQueue()
	for seq := uint64(1); seq <= 5; seq++ {
		q.add(pw(seq, "r", "c"))
		q.markForced(wal.MakeLSN(1, seq))
	}
	q.markAckedThrough("f1", wal.MakeLSN(1, 4))
	got := q.popCommittable(2, nil)
	if len(got) != 4 || got[0].lsn != wal.MakeLSN(1, 1) || got[3].lsn != wal.MakeLSN(1, 4) {
		t.Fatalf("popped %d writes, want the 4-write prefix", len(got))
	}
	if q.len() != 1 {
		t.Errorf("len = %d after prefix commit", q.len())
	}
}

func TestCommitQueueCumulativeAckOutOfOrder(t *testing.T) {
	// Batch acks are sent by concurrent force goroutines and may arrive
	// reordered; the watermark must only move forward.
	q := newCommitQueue()
	for seq := uint64(1); seq <= 6; seq++ {
		q.add(pw(seq, "r", "c"))
		q.markForced(wal.MakeLSN(1, seq))
	}
	q.markAckedThrough("f1", wal.MakeLSN(1, 5))
	q.markAckedThrough("f1", wal.MakeLSN(1, 2)) // stale, reordered: ignored
	got := q.popCommittable(2, nil)
	if len(got) != 5 {
		t.Fatalf("popped %d writes after reordered acks, want 5", len(got))
	}
}

func TestCommitQueueCumulativeAckStaleEpoch(t *testing.T) {
	// A duplicate/stale ack carrying an LSN from a prior epoch compares
	// below every current-epoch LSN and must not commit anything.
	q := newCommitQueue()
	q.add(pwAt(2, 7, "r", "c"))
	q.markForced(wal.MakeLSN(2, 7))
	q.markAckedThrough("f1", wal.MakeLSN(1, 99)) // epoch 1 watermark
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatalf("committed %d writes on a prior-epoch ack", len(got))
	}
	q.markAckedThrough("f1", wal.MakeLSN(2, 7))
	if got := q.popCommittable(2, nil); len(got) != 1 {
		t.Fatal("not committed after current-epoch ack")
	}
}

func TestCommitQueueQuorumAckFromStaleLeaderEpoch(t *testing.T) {
	// The partitioned-away-stale-leader scenario, from the NEW leader's
	// commit queue: on takeover the queue holds the old epoch's
	// unresolved writes (1.5, 1.6) plus a fresh epoch-2 write, acks are
	// reset (takeover, Fig 6 line 9), and then a full QUORUM of
	// acknowledgements carrying old-epoch LSNs arrives — delayed
	// MsgAckBatch watermarks earned under the deposed leader that the
	// partition held in flight. Old-epoch LSNs compare below every
	// epoch-2 LSN, so they must commit nothing of epoch 2; and because
	// acks were reset, they must not resurrect durability claims for the
	// re-proposals either (the peers may have logically truncated those
	// writes since earning the watermarks).
	q := newCommitQueue()
	q.add(pwAt(1, 5, "r", "c"))
	q.add(pwAt(1, 6, "r", "c"))
	q.add(pwAt(2, 7, "r", "c"))
	// Pre-takeover state: everything forced, stale quorum on 1.5.
	for _, lsn := range []wal.LSN{wal.MakeLSN(1, 5), wal.MakeLSN(1, 6), wal.MakeLSN(2, 7)} {
		q.markForced(lsn)
	}
	q.markAck("f1", wal.MakeLSN(1, 5))
	q.markAckedThrough("f2", wal.MakeLSN(1, 6))

	// Takeover: the new leader discards every pre-transition ack.
	q.resetAcks()

	// The delayed stale-epoch quorum lands: two distinct peers, both
	// claiming old-epoch watermarks (f2's even covers 1.6 again).
	q.markAckedThrough("f1", wal.MakeLSN(1, 6))
	q.markAckedThrough("f2", wal.MakeLSN(1, 6))
	got := q.popCommittable(2, nil)
	// The re-proposed old-epoch writes commit — these acks are fresh
	// answers to the re-proposals and genuinely cover 1.5 and 1.6 — but
	// the epoch-2 write must NOT ride along on old-epoch watermarks.
	if len(got) != 2 || got[0].lsn != wal.MakeLSN(1, 5) || got[1].lsn != wal.MakeLSN(1, 6) {
		t.Fatalf("popped %d writes, want the two re-proposed 1.x writes", len(got))
	}
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatal("epoch-2 write committed on a quorum of stale-epoch acks")
	}
	// A per-write ack for an LSN that is no longer pending (logically
	// truncated on another branch) is a no-op.
	q.markAck("f1", wal.MakeLSN(1, 99))
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatal("ack for a truncated LSN committed something")
	}
	// Only a current-epoch acknowledgement commits the epoch-2 write.
	q.markAckedThrough("f1", wal.MakeLSN(2, 7))
	if got := q.popCommittable(2, nil); len(got) != 1 || got[0].lsn != wal.MakeLSN(2, 7) {
		t.Fatal("epoch-2 write did not commit on its own epoch's ack")
	}
}

func TestPendingWriteObservers(t *testing.T) {
	// Deferred conditional-put mismatches hang off the pending write
	// they observed; the observer must fire exactly once with the
	// write's fate, and late registration runs immediately.
	p := pw(1, "r", "c")
	var got []bool
	p.observe(func(ok bool) { got = append(got, ok) })
	p.finish(writeOutcome{status: StatusOK})
	p.finish(writeOutcome{status: StatusAmbiguous}) // idempotent
	if len(got) != 1 || !got[0] {
		t.Fatalf("observers after commit = %v, want [true]", got)
	}
	p.observe(func(ok bool) { got = append(got, ok) })
	if len(got) != 2 || !got[1] {
		t.Fatalf("late observer = %v, want immediate true", got)
	}

	q := pw(2, "r", "c")
	q.observe(func(ok bool) { got = append(got, ok) })
	q.finish(writeOutcome{status: StatusAmbiguous, detail: "write timed out awaiting quorum"})
	if len(got) != 3 || got[2] {
		t.Fatalf("observer after failure = %v, want false", got)
	}
}

func TestCommitQueueCumulativeAckForceInterleavings(t *testing.T) {
	// Commit needs the local force AND the quorum ack, in either order
	// (the leader's force is its own vote, §8.1).
	lsn := wal.MakeLSN(1, 1)

	// Ack before force.
	q := newCommitQueue()
	q.add(pw(1, "r", "c"))
	q.markAckedThrough("f1", lsn)
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatal("committed without the local force")
	}
	q.markForced(lsn)
	if got := q.popCommittable(2, nil); len(got) != 1 {
		t.Fatal("not committed after force joined the ack")
	}

	// Force before ack.
	q = newCommitQueue()
	q.add(pw(1, "r", "c"))
	q.markForced(lsn)
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatal("committed without any follower ack")
	}
	q.markAckedThrough("f1", lsn)
	if got := q.popCommittable(2, nil); len(got) != 1 {
		t.Fatal("not committed after ack joined the force")
	}
}

func TestCommitQueueDistinctPeerQuorum(t *testing.T) {
	// A 5-way cohort (quorum 3) needs acks from two DISTINCT peers; one
	// peer acking through both paths (per-write and cumulative) must not
	// be double-counted.
	q := newCommitQueue()
	lsn := wal.MakeLSN(1, 1)
	q.add(pw(1, "r", "c"))
	q.markForced(lsn)
	q.markAck("f1", lsn)
	q.markAckedThrough("f1", lsn)
	if got := q.popCommittable(3, nil); len(got) != 0 {
		t.Fatal("one peer double-counted toward a 3-quorum")
	}
	q.markAckedThrough("f2", lsn)
	if got := q.popCommittable(3, nil); len(got) != 1 {
		t.Fatal("two distinct peers + leader should commit at quorum 3")
	}
}

func TestCommitQueueResetAcksOnStepDown(t *testing.T) {
	// A leadership transition discards watermarks and per-write acks: a
	// peer may have logically truncated writes it acked under an earlier
	// leadership, so re-proposals must earn a fresh quorum.
	q := newCommitQueue()
	lsn := wal.MakeLSN(1, 1)
	q.add(pw(1, "r", "c"))
	q.markForced(lsn)
	q.markAck("f1", lsn)
	q.markAckedThrough("f2", lsn)
	q.resetAcks()
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatal("stale acks survived resetAcks")
	}
	q.markAckedThrough("f1", lsn)
	if got := q.popCommittable(2, nil); len(got) != 1 {
		t.Fatal("fresh ack after reset did not commit")
	}
}

func TestCommitQueueDrainClearsWatermarks(t *testing.T) {
	// Draining on leader step-down must also drop the per-peer
	// watermarks, or a re-added write could commit on ghost acks.
	q := newCommitQueue()
	q.add(pw(1, "r", "c"))
	q.markForced(wal.MakeLSN(1, 1))
	q.markAckedThrough("f1", wal.MakeLSN(1, 9))
	q.drain()
	q.add(pw(2, "r", "c"))
	q.markForced(wal.MakeLSN(1, 2))
	if got := q.popCommittable(2, nil); len(got) != 0 {
		t.Fatal("watermark survived drain")
	}
}

func TestCommitQueueStaleResponders(t *testing.T) {
	q := newCommitQueue()
	fresh := pw(1, "r", "c")
	fresh.respond = func(writeOutcome) {}
	fresh.enqueuedAt = time.Now()
	q.add(fresh)
	old := pw(2, "r", "c")
	old.respond = func(writeOutcome) {}
	old.enqueuedAt = time.Now().Add(-time.Minute)
	q.add(old)
	follower := pw(3, "r", "c") // no responder: never listed
	q.add(follower)
	stale := q.staleResponders(time.Second)
	if len(stale) != 1 || stale[0].lsn != wal.MakeLSN(1, 2) {
		t.Fatalf("staleResponders = %d entries", len(stale))
	}
}
