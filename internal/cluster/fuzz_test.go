package cluster

import (
	"reflect"
	"testing"
)

// FuzzDecodeLayout throws arbitrary bytes at the layout codec — the one
// payload every node and client parses straight off the coordination
// service. Decode must never panic, never trust a forged node or range
// count (the checked-in testdata/fuzz seeds pin that), and anything it
// accepts must pass the full structural invariant check and survive an
// encode/decode round trip unchanged.
func FuzzDecodeLayout(f *testing.F) {
	base, err := New([]string{"n1", "n2", "n3"}, []string{"", "3", "6"}, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base.Encode())
	split, _, err := base.WithSplit(base.RangeOf("7"), "7")
	if err != nil {
		f.Fatal(err)
	}
	grown, err := split.WithNode("n4")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(grown.Encode())
	f.Add(base.Encode()[:11])
	f.Fuzz(func(t *testing.T, b []byte) {
		l, err := Decode(b)
		if err != nil {
			return
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("Decode accepted a layout that violates invariants: %v", err)
		}
		enc := l.Encode()
		l2, err := Decode(enc)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v", err)
		}
		if !reflect.DeepEqual(l, l2) {
			t.Fatalf("decode/encode is not a fixpoint:\n first: %+v\nsecond: %+v", l, l2)
		}
	})
}
