// Package red violates the lock discipline three ways: calling a
// locked() method without the lock, acquiring locks against the
// configured order, and doing I/O plus a channel send with the lock
// held.
package red

import "sync"

// Table is shared state guarded by mu.
type Table struct {
	mu sync.Mutex
	n  int
}

// bumpLocked requires t.mu held.
//
//spinnaker:locked(mu)
func (t *Table) bumpLocked() { t.n++ }

// Bump forgets the lock entirely.
func (t *Table) Bump() {
	t.bumpLocked() // WANT lockcheck
}

// Drop releases too early.
func (t *Table) Drop() {
	t.mu.Lock()
	t.mu.Unlock()
	t.bumpLocked() // WANT lockcheck
}

// Registry is configured to be acquired before any Table.mu.
type Registry struct {
	mu sync.Mutex
}

var (
	reg Registry
	tab Table
)

// BadOrder takes the locks backwards.
func BadOrder() {
	tab.mu.Lock()
	reg.mu.Lock() // WANT lockcheck
	reg.mu.Unlock()
	tab.mu.Unlock()
}

// Store models blob I/O that must never run under Table.mu.
type Store interface {
	Put(b []byte) error
}

// Flush does I/O and a send while holding the lock.
func (t *Table) Flush(s Store, ch chan int) {
	t.mu.Lock()
	_ = s.Put(nil) // WANT lockcheck
	ch <- t.n      // WANT lockcheck
	t.mu.Unlock()
}
