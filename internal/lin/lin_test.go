package lin

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkOp builds an operation with explicit logical timestamps; ret < 0 means
// "never returned" (MaxInt64).
func mkOp(client int, inv, ret int64, outcome Outcome, op Op) *Operation {
	r := ret
	if r < 0 {
		r = math.MaxInt64
	}
	return &Operation{Client: client, Op: op, Invoke: inv, Return: r, Outcome: outcome}
}

func get(v string, ver uint64) Op {
	return Op{Kind: Get, Key: "k", OutValue: v, OutVer: ver}
}
func getNotFound() Op { return Op{Kind: Get, Key: "k", NotFound: true} }
func put(v string, ver uint64) Op {
	return Op{Kind: Put, Key: "k", Value: v, OutVer: ver}
}
func condPut(v string, cond, ver uint64) Op {
	return Op{Kind: CondPut, Key: "k", Value: v, CondVer: cond, OutVer: ver}
}
func condPutMiss(v string, cond uint64) Op {
	return Op{Kind: CondPut, Key: "k", Value: v, CondVer: cond, Mismatch: true}
}

func assertLinearizable(t *testing.T, ops []*Operation) {
	t.Helper()
	res := Check(ops, 30*time.Second)
	if res.Err != nil {
		t.Fatalf("check undecided: %v", res.Err)
	}
	if !res.Linearizable {
		t.Fatalf("history rejected (bad key %q), want linearizable", res.BadKey)
	}
}

func assertViolation(t *testing.T, ops []*Operation) {
	t.Helper()
	res := Check(ops, 30*time.Second)
	if res.Err != nil {
		t.Fatalf("check undecided: %v", res.Err)
	}
	if res.Linearizable {
		t.Fatal("history accepted, want violation")
	}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, getNotFound()),
		mkOp(0, 3, 4, OK, put("a", 1)),
		mkOp(0, 5, 6, OK, get("a", 1)),
		mkOp(0, 7, 8, OK, condPut("b", 1, 2)),
		mkOp(0, 9, 10, OK, get("b", 2)),
		mkOp(0, 11, 12, OK, condPutMiss("c", 1)),
		mkOp(0, 13, 14, OK, Op{Kind: Delete, Key: "k"}),
		mkOp(0, 15, 16, OK, getNotFound()),
	})
}

func TestConcurrentWritesEitherOrderLegal(t *testing.T) {
	// A write concurrent with two reads may linearize between them: the
	// first read sees the old value, the second the new one.
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, 10, OK, put("b", 2)),
		mkOp(2, 4, 5, OK, get("a", 1)),
		mkOp(2, 6, 7, OK, get("b", 2)),
	})
	// ...but the reads swapped — b (v2) then a (v1) — would run the
	// register backwards, which no interleaving of the same ops allows.
	assertViolation(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, 10, OK, put("b", 2)),
		mkOp(2, 4, 5, OK, get("b", 2)),
		mkOp(2, 6, 7, OK, get("a", 1)),
	})
}

func TestStaleReadViolation(t *testing.T) {
	// A read strictly after a completed overwrite must not see the old
	// value.
	assertViolation(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(0, 3, 4, OK, put("b", 2)),
		mkOp(1, 5, 6, OK, get("a", 1)),
	})
}

func TestLostUpdateViolation(t *testing.T) {
	// Two conditional puts against the same version both reported OK:
	// one of them must have observed the other's effect, so there is no
	// witness — the classic lost update.
	assertViolation(t, []*Operation{
		mkOp(0, 1, 2, OK, put("base", 1)),
		mkOp(1, 3, 7, OK, condPut("x", 1, 2)),
		mkOp(2, 4, 8, OK, condPut("y", 1, 3)),
	})
	// The legal version: the second CAS saw the first's version.
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, put("base", 1)),
		mkOp(1, 3, 7, OK, condPut("x", 1, 2)),
		mkOp(2, 4, 8, OK, condPut("y", 2, 3)),
	})
}

func TestMismatchAgainstMatchingStateViolation(t *testing.T) {
	// The system rejected a conditional put whose condition provably
	// held: nothing else wrote between the put and the CAS.
	assertViolation(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(0, 3, 4, OK, condPutMiss("b", 1)),
	})
	// With a concurrent writer, the mismatch is explicable.
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, 8, OK, put("c", 2)),
		mkOp(0, 4, 7, OK, condPutMiss("b", 1)),
	})
}

func TestNotFoundAfterPutViolation(t *testing.T) {
	assertViolation(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, 4, OK, getNotFound()),
	})
}

func TestVersionsMustAgreeAcrossReads(t *testing.T) {
	// Same value read twice with different versions and no intervening
	// write: the version numbers expose a phantom write.
	assertViolation(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 5)),
		mkOp(1, 3, 4, OK, get("a", 5)),
		mkOp(1, 5, 6, OK, get("a", 6)),
	})
}

func TestUnknownWriteObservedLater(t *testing.T) {
	// A timed-out put whose value a later read returns: the effect
	// branch linearizes it, and the read pins its version.
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, -1, Unknown, put("x", 0)),
		mkOp(2, 10, 11, OK, get("x", 7)),
	})
}

func TestUnknownWriteNeverObserved(t *testing.T) {
	// A timed-out put that never took effect: the no-op branch must
	// admit the history even though every read sees the old value.
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, -1, Unknown, put("x", 0)),
		mkOp(2, 10, 11, OK, get("a", 1)),
		mkOp(2, 12, 13, OK, get("a", 1)),
	})
}

func TestUnknownCondPutAgainstOverwrittenVersion(t *testing.T) {
	// The outcome-ambiguity trap: a CAS against version 1 times out
	// after version 2 was already committed and observed. The CAS
	// certainly failed in the real run, so the checker must not force it
	// into the witness.
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(0, 3, 4, OK, put("b", 2)),
		mkOp(1, 5, 6, OK, get("b", 2)),
		mkOp(2, 7, -1, Unknown, condPut("x", 1, 0)),
		mkOp(1, 8, 9, OK, get("b", 2)),
	})
}

func TestFailedOpsExcluded(t *testing.T) {
	// A definitely-failed put is not part of the history: reads that
	// never see it stay legal, and its value appearing anywhere would be
	// a violation.
	assertLinearizable(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, 4, Failed, put("x", 0)),
		mkOp(2, 5, 6, OK, get("a", 1)),
	})
	assertViolation(t, []*Operation{
		mkOp(0, 1, 2, OK, put("a", 1)),
		mkOp(1, 3, 4, Failed, put("x", 0)),
		mkOp(2, 5, 6, OK, get("x", 2)),
	})
}

func TestPerKeyDecomposition(t *testing.T) {
	good := []*Operation{
		mkOp(0, 1, 2, OK, Op{Kind: Put, Key: "good", Value: "g", OutVer: 1}),
		mkOp(0, 3, 4, OK, Op{Kind: Get, Key: "good", OutValue: "g", OutVer: 1}),
	}
	bad := []*Operation{
		mkOp(1, 5, 6, OK, Op{Kind: Put, Key: "bad", Value: "b1", OutVer: 1}),
		mkOp(1, 7, 8, OK, Op{Kind: Put, Key: "bad", Value: "b2", OutVer: 2}),
		mkOp(2, 9, 10, OK, Op{Kind: Get, Key: "bad", OutValue: "b1", OutVer: 1}),
	}
	res := Check(append(good, bad...), 30*time.Second)
	if res.Linearizable {
		t.Fatal("stale read on key bad accepted")
	}
	if res.BadKey != "bad" {
		t.Fatalf("BadKey = %q, want bad", res.BadKey)
	}
	if res.Keys != 2 {
		t.Fatalf("Keys = %d, want 2", res.Keys)
	}
}

// adversarialHistory builds n fully concurrent unknown puts followed by a
// read of a value nobody wrote — a violation whose refutation must exhaust
// every subset of the ambiguous writes.
func adversarialHistory(n int) []*Operation {
	ops := make([]*Operation, 0, n+1)
	for i := 0; i < n; i++ {
		ops = append(ops, mkOp(i, int64(i+1), -1, Unknown, put(fmt.Sprintf("w%d", i), 0)))
	}
	ops = append(ops, mkOp(n, int64(n+1), int64(n+2), OK, get("zzz", 99)))
	return ops
}

func TestCheckExhaustsAmbiguousSubsets(t *testing.T) {
	res := Check(adversarialHistory(12), 30*time.Second)
	if res.Err != nil {
		t.Fatalf("undecided: %v", res.Err)
	}
	if res.Linearizable {
		t.Fatal("read of a never-written value accepted")
	}
}

func TestCheckDeadlineUndecided(t *testing.T) {
	res := Check(adversarialHistory(16), time.Nanosecond)
	if res.Err == nil {
		t.Fatal("expected ErrUndecided on an exhausted deadline")
	}
	if res.Linearizable {
		t.Fatal("undecided check claimed linearizable")
	}
}

// TestRecorderAgainstAtomicRegister drives concurrent workers against a
// mutex-protected register — a trivially linearizable implementation — and
// the checker must accept the recorded history.
func TestRecorderAgainstAtomicRegister(t *testing.T) {
	type cell struct {
		val string
		ver uint64
	}
	var mu sync.Mutex
	store := make(map[string]cell)
	var verSeq uint64

	rec := NewRecorder()
	const workers, opsPer = 8, 200
	keys := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				key := keys[(w+i)%len(keys)]
				switch i % 3 {
				case 0:
					p := rec.Invoke(w, Op{Kind: Put, Key: key, Value: fmt.Sprintf("w%d-%d", w, i)})
					mu.Lock()
					verSeq++
					v := verSeq
					store[key] = cell{val: fmt.Sprintf("w%d-%d", w, i), ver: v}
					mu.Unlock()
					p.OK(Result{Version: v})
				case 1:
					p := rec.Invoke(w, Op{Kind: Get, Key: key})
					mu.Lock()
					c, ok := store[key]
					mu.Unlock()
					if !ok {
						p.OK(Result{NotFound: true})
					} else {
						p.OK(Result{Value: c.val, Version: c.ver})
					}
				case 2:
					p := rec.Invoke(w, Op{Kind: Get, Key: key})
					mu.Lock()
					c, ok := store[key]
					mu.Unlock()
					if !ok {
						p.OK(Result{NotFound: true})
					} else {
						p.OK(Result{Value: c.val, Version: c.ver})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res := rec.Check(30 * time.Second)
	if res.Err != nil {
		t.Fatalf("undecided: %v", res.Err)
	}
	if !res.Linearizable {
		t.Fatalf("atomic register history rejected at key %q:\n%s", res.BadKey, rec.FormatKey(res.BadKey))
	}
	if res.Ops != workers*opsPer {
		t.Fatalf("Ops = %d, want %d", res.Ops, workers*opsPer)
	}
}

func TestRecorderFormatKey(t *testing.T) {
	rec := NewRecorder()
	p := rec.Invoke(0, Op{Kind: Put, Key: "k", Value: "v"})
	rec.Note("nemesis: isolate leader")
	p.OK(Result{Version: 3})
	g := rec.Invoke(1, Op{Kind: Get, Key: "k"})
	g.Unknown()
	out := rec.FormatKey("k")
	for _, want := range []string{"put(k,", "nemesis: isolate leader", "[unknown]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatKey missing %q:\n%s", want, out)
		}
	}
}
