package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/sim"
	"spinnaker/internal/wal"
)

// StorageMaintenance measures the cost of LSM maintenance on the serving
// path — the compaction-under-load experiment. The same mixed workload
// (strong reads against a sustained update stream over a fixed key space)
// runs twice on a 3-node cluster: once with storage thresholds so large
// that no flush or compaction ever runs, and once with tiny thresholds so
// the flush daemon churns constantly. With the pre-PR stop-the-world
// maintenance, the second configuration froze every read and apply for the
// duration of each full compaction; with sealed memtables, off-lock builds,
// and incremental rounds, read latency should stay close to the quiet
// baseline while flushes and compactions run by the hundred.
func StorageMaintenance(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	const readers, writers = 8, 4

	run := func(label string, flushBytes int64, maxTables int) ([]string, error) {
		opts := spinOpts(cfg, wal.DeviceMem)
		opts.Nodes = 3
		opts.FlushBytes = flushBytes
		opts.MaxTables = maxTables
		opts.FlushInterval = 10 * time.Millisecond
		sc, err := newSpin(opts)
		if err != nil {
			return nil, err
		}
		defer sc.Stop()
		if err := preloadSpin(sc, cfg.Rows, cfg.ValueSize); err != nil {
			return nil, err
		}

		// Sustained update stream over the preloaded rows: tables overlap,
		// so compactions do real merge work.
		stop := make(chan struct{})
		var wrote int64
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c := sc.NewClient()
				for i := w; ; i += writers {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Put(sim.StridedKey(i%cfg.Rows, cfg.Rows, 8), "c", value); err == nil {
						atomic.AddInt64(&wrote, 1)
					}
				}
			}(w)
		}

		readClients := make([]*core.Client, readers)
		for i := range readClients {
			readClients[i] = sc.NewClient()
		}
		pick := sim.NewKeyPicker(cfg.Rows, 8, 7)
		start := time.Now()
		p := sim.RunClosedLoop(readers, cfg.PointDuration, func(t, i int) error {
			_, _, err := readClients[t].Get(pick.Random(), "c", true)
			if err == core.ErrNotFound {
				return nil
			}
			return err
		})
		elapsed := time.Since(start)
		close(stop)
		wg.Wait()

		var flushes, compacts, tables int64
		for _, id := range sc.Nodes() {
			n, ok := sc.Node(id)
			if !ok {
				continue
			}
			for _, rangeID := range n.Ranges() {
				f, c, tbl, ok := n.StorageStats(rangeID)
				if !ok {
					continue
				}
				flushes += f
				compacts += c
				tables += int64(tbl)
			}
		}
		return []string{
			label,
			tput(float64(atomic.LoadInt64(&wrote)) / elapsed.Seconds()),
			tput(p.Throughput),
			ms(p.AvgLatency),
			ms(p.P95),
			fmt.Sprint(flushes),
			fmt.Sprint(compacts),
			fmt.Sprint(tables),
		}, nil
	}

	table := Table{
		ID:    "Storage-maintenance",
		Title: "strong reads under a sustained update stream, with LSM maintenance off vs churning",
		Columns: []string{"config", "writes/s", "reads/s", "read avg ms", "read p95 ms",
			"flushes", "compactions", "tables"},
		Notes: "maintenance-off uses thresholds nothing reaches; churn flushes every 64KB and compacts past 4 tables.\n" +
			"The reproduction target: read avg/p95 under churn stay near the quiet baseline — flushes and compaction\n" +
			"rounds build SSTables outside the engine lock instead of freezing reads for the duration of each merge.",
	}
	quiet, err := run("maintenance-off", 1<<30, 1<<30)
	if err != nil {
		return Table{}, err
	}
	table.Rows = append(table.Rows, quiet)
	cfg.progress("storage-maintenance: quiet baseline done")
	churn, err := run("churn (64KB flush, 4 tables)", 64<<10, 4)
	if err != nil {
		return Table{}, err
	}
	table.Rows = append(table.Rows, churn)
	cfg.progress("storage-maintenance: churn run done")
	return table, nil
}
