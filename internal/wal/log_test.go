package wal

import (
	"sync"
	"testing"
)

func newTestLog(t *testing.T, store SegmentStore, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Config{Store: store, SegmentBytes: segBytes, GroupCommit: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func writeRec(cohort uint32, epoch uint32, seq uint64, payload string) Record {
	return Record{Cohort: cohort, Type: RecWrite, LSN: MakeLSN(epoch, seq), Payload: []byte(payload)}
}

func TestLogAppendScan(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	want := []Record{
		writeRec(0, 1, 1, "a"),
		writeRec(1, 1, 1, "b"),
		writeRec(0, 1, 2, "c"),
	}
	for _, r := range want {
		if err := l.AppendForce(r); err != nil {
			t.Fatalf("AppendForce: %v", err)
		}
	}
	var got []Record
	if err := l.Scan(func(rec Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || got[i].Cohort != want[i].Cohort {
			t.Errorf("rec %d = %v/%s, want %v/%s", i, got[i].Cohort, got[i].LSN, want[i].Cohort, want[i].LSN)
		}
	}
}

func TestLogScanCohortFilters(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	for seq := uint64(1); seq <= 10; seq++ {
		cohort := uint32(seq % 3)
		if err := l.AppendForce(writeRec(cohort, 1, seq, "x")); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	if err := l.ScanCohort(1, func(rec Record) error {
		if rec.Cohort != 1 {
			t.Errorf("ScanCohort(1) yielded cohort %d", rec.Cohort)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 { // seqs 1, 4, 7, 10
		t.Errorf("ScanCohort(1) yielded %d records, want 4", n)
	}
}

func TestLogCrashLosesUnforcedTail(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	if err := l.AppendForce(writeRec(0, 1, 1, "durable")); err != nil {
		t.Fatal(err)
	}
	// Appended but never forced: must vanish at crash.
	if _, err := l.Append(writeRec(0, 1, 2, "volatile")); err != nil {
		t.Fatal(err)
	}
	store.Crash()

	l2 := newTestLog(t, store, 0)
	var lsns []LSN
	if err := l2.Scan(func(rec Record) error {
		lsns = append(lsns, rec.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 1 || lsns[0] != MakeLSN(1, 1) {
		t.Fatalf("after crash got %v, want just 1.1", lsns)
	}
}

func TestLogCrashTornRecord(t *testing.T) {
	// A record half-written at crash (simulated by forcing, then crashing
	// with a partial append) must be dropped and not corrupt the scan.
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	if err := l.AppendForce(writeRec(0, 1, 1, "ok")); err != nil {
		t.Fatal(err)
	}
	// Write garbage bytes directly to the device to emulate a torn tail
	// that was partially forced.
	ids, _ := store.List()
	dev, _ := store.Open(ids[len(ids)-1])
	if _, err := dev.Append([]byte{0x13, 0x37, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Force(); err != nil {
		t.Fatal(err)
	}

	l2 := newTestLog(t, store, 0)
	var n int
	if err := l2.Scan(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("scan found %d records, want 1 (torn tail dropped)", n)
	}
	// The reopened log must still accept appends after the torn tail.
	if err := l2.AppendForce(writeRec(0, 1, 2, "after")); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
}

func TestLogRollsSegments(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 64) // tiny threshold forces rolling
	for seq := uint64(1); seq <= 20; seq++ {
		if err := l.AppendForce(writeRec(0, 1, seq, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatalf("expected multiple segments, got %d", l.Segments())
	}
	var n int
	if err := l.Scan(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("scan over rolled log found %d records, want 20", n)
	}
}

func TestLogReopenAcrossSegments(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 64)
	for seq := uint64(1); seq <= 12; seq++ {
		if err := l.AppendForce(writeRec(0, 1, seq, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	segs := l.Segments()
	store.Crash()

	l2 := newTestLog(t, store, 64)
	if l2.Segments() != segs {
		t.Errorf("reopened with %d segments, want %d", l2.Segments(), segs)
	}
	var max LSN
	if err := l2.Scan(func(rec Record) error {
		if rec.LSN > max {
			max = rec.LSN
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if max != MakeLSN(1, 12) {
		t.Errorf("max LSN after reopen = %s, want 1.12", max)
	}
	// New appends must continue in a fresh or existing segment without
	// clobbering old data.
	if err := l2.AppendForce(writeRec(0, 1, 13, "tail")); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := l2.Scan(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 13 {
		t.Errorf("after reopen+append scan found %d, want 13", n)
	}
}

func TestLogCohortWritesIn(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	for seq := uint64(1); seq <= 9; seq++ {
		if err := l.AppendForce(writeRec(2, 1, seq, "v")); err != nil {
			t.Fatal(err)
		}
	}
	recs, ok, err := l.CohortWritesIn(2, MakeLSN(1, 3), MakeLSN(1, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("expected complete result")
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4 (LSNs 4..7)", len(recs))
	}
	if recs[0].LSN != MakeLSN(1, 4) || recs[3].LSN != MakeLSN(1, 7) {
		t.Errorf("range = %s..%s, want 1.4..1.7", recs[0].LSN, recs[3].LSN)
	}
}

func TestLogDropCapturedSegments(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 64)
	for seq := uint64(1); seq <= 20; seq++ {
		if err := l.AppendForce(writeRec(0, 1, seq, "0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	if before < 3 {
		t.Fatalf("need ≥3 segments for this test, got %d", before)
	}
	// Nothing captured: nothing droppable.
	dropped, err := l.DropCapturedSegments(map[uint32]LSN{0: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 {
		t.Fatalf("dropped %v with nothing captured", dropped)
	}
	// Everything captured: all but the current segment go.
	dropped, err = l.DropCapturedSegments(map[uint32]LSN{0: MakeLSN(1, 20)})
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != before-1 {
		t.Fatalf("dropped %d segments, want %d", len(dropped), before-1)
	}
	// Catch-up for truncated ranges must now report incompleteness.
	_, ok, err := l.CohortWritesIn(0, 0, MakeLSN(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("CohortWritesIn claims completeness after truncation")
	}
}

func TestLogGroupCommitSharesForces(t *testing.T) {
	store := NewMemSegmentStore(DeviceProfile{Name: "slow", ForceLatency: 2e6}) // 2ms
	l := newTestLog(t, store, 0)
	const writers = 16
	var wg sync.WaitGroup
	wg.Add(writers)
	for i := 0; i < writers; i++ {
		go func(seq uint64) {
			defer wg.Done()
			if err := l.AppendForce(writeRec(0, 1, seq, "w")); err != nil {
				t.Errorf("AppendForce: %v", err)
			}
		}(uint64(i + 1))
	}
	wg.Wait()
	if forces := store.TotalForces(); forces >= writers {
		t.Errorf("group commit used %d forces for %d concurrent writers", forces, writers)
	}
	var n int
	if err := l.Scan(func(Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers {
		t.Errorf("scan found %d records, want %d", n, writers)
	}
}

func TestLogNoGroupCommitForcesEach(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l, err := Open(Config{Store: store, GroupCommit: false})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if err := l.AppendForce(writeRec(0, 1, seq, "w")); err != nil {
			t.Fatal(err)
		}
	}
	if forces := store.TotalForces(); forces < 5 {
		t.Errorf("without group commit want ≥5 forces, got %d", forces)
	}
}

func TestLogNonForcedAppendStaysVolatile(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	if _, err := l.Append(Record{Cohort: 0, Type: RecLastCommitted, LSN: MakeLSN(1, 5)}); err != nil {
		t.Fatal(err)
	}
	ids, _ := store.List()
	dev, _ := store.Open(ids[0])
	if md := dev.(*MemDevice); md.Durable() != 0 {
		t.Errorf("non-forced append became durable (%d bytes)", md.Durable())
	}
}

func TestLogConcurrentAppendersAllRecovered(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 1024)
	const perCohort = 50
	var wg sync.WaitGroup
	for cohort := uint32(0); cohort < 3; cohort++ {
		wg.Add(1)
		go func(c uint32) {
			defer wg.Done()
			for seq := uint64(1); seq <= perCohort; seq++ {
				if err := l.AppendForce(writeRec(c, 1, seq, "data")); err != nil {
					t.Errorf("cohort %d: %v", c, err)
					return
				}
			}
		}(cohort)
	}
	wg.Wait()
	store.Crash()

	l2 := newTestLog(t, store, 1024)
	counts := make(map[uint32]int)
	lastSeq := make(map[uint32]uint64)
	if err := l2.Scan(func(rec Record) error {
		counts[rec.Cohort]++
		// Within a cohort, append order must preserve LSN order.
		if rec.LSN.Seq() <= lastSeq[rec.Cohort] {
			t.Errorf("cohort %d out of order: %d after %d", rec.Cohort, rec.LSN.Seq(), lastSeq[rec.Cohort])
		}
		lastSeq[rec.Cohort] = rec.LSN.Seq()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for c := uint32(0); c < 3; c++ {
		if counts[c] != perCohort {
			t.Errorf("cohort %d recovered %d records, want %d", c, counts[c], perCohort)
		}
	}
}
