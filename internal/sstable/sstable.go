// Package sstable implements the immutable on-disk tables that memtables
// are flushed to (paper §4.1, following Bigtable's design): sorted by key
// and column for efficient access, indexed, and tagged with the min and max
// LSN of the writes they contain so the replication layer can serve
// catch-up requests from SSTables when the log has been rolled over
// (paper §6.1). Each table additionally carries a bloom filter over its
// cell keys and exposes its min/max key, so the storage engine can prune
// point lookups to the tables that can actually hold the key instead of
// probing every table in the LSM.
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

const (
	magic        = 0x55AB1E01 // "SSTABLE", format 1: adds bloom section
	footerSize   = 8 + 8 + 4 + 4 + 4 + 4 + 4 + 4
	indexEvery   = 16 // sparse index: one entry per indexEvery records
	formatErrMsg = "sstable: malformed table"

	// Format 0 (pre-bloom): entries | index | 32-byte footer without the
	// bloom fields. Still opened read-only so a node upgraded in place
	// can serve (and eventually compact away) its existing tables.
	legacyMagic      = 0x55AB1E00
	legacyFooterSize = 8 + 8 + 4 + 4 + 4 + 4
)

// ErrMalformed is returned when a table blob fails validation.
var ErrMalformed = errors.New(formatErrMsg)

// Table is an immutable sorted run of entries, fully resident as one blob.
type Table struct {
	id     uint64
	blob   []byte // the full serialized form, as stored and as shipped
	data   []byte
	index  []indexEnt
	bloom  []byte
	count  int
	minLSN wal.LSN
	maxLSN wal.LSN
	minKey kv.Key
	maxKey kv.Key
}

type indexEnt struct {
	key kv.Key
	off uint32
}

// Builder accumulates sorted entries and serializes a Table.
type Builder struct {
	entries []kv.Entry
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add appends an entry. Entries may be added in any order; Finish sorts
// them. Duplicate keys keep the newest cell.
func (b *Builder) Add(e kv.Entry) { b.entries = append(b.entries, e) }

// Len returns the number of entries added so far.
func (b *Builder) Len() int { return len(b.entries) }

// Finish serializes the accumulated entries into a table blob:
// entries | sparse index | bloom filter | footer.
func (b *Builder) Finish() []byte {
	sort.SliceStable(b.entries, func(i, j int) bool {
		return b.entries[i].Key.Less(b.entries[j].Key)
	})
	// Collapse duplicates, newest wins.
	dedup := b.entries[:0]
	for _, e := range b.entries {
		if n := len(dedup); n > 0 && dedup[n-1].Key.Compare(e.Key) == 0 {
			if e.Cell.Newer(dedup[n-1].Cell) {
				dedup[n-1] = e
			}
			continue
		}
		dedup = append(dedup, e)
	}
	b.entries = dedup

	var (
		data   []byte
		idx    []uint32
		minLSN wal.LSN
		maxLSN wal.LSN
	)
	bloom := newBloomBits(len(b.entries))
	for i, e := range b.entries {
		if i%indexEvery == 0 {
			idx = append(idx, uint32(len(data)))
		}
		data = kv.EncodeEntry(data, e)
		bloomAdd(bloom, e.Key)
		if l := e.Cell.LSN; !l.IsZero() {
			if minLSN.IsZero() || l < minLSN {
				minLSN = l
			}
			if l > maxLSN {
				maxLSN = l
			}
		}
	}
	indexOff := uint32(len(data))
	var scratch [4]byte
	for _, off := range idx {
		binary.LittleEndian.PutUint32(scratch[:], off)
		data = append(data, scratch[:]...)
	}
	bloomOff := uint32(len(data))
	data = append(data, bloom...)
	footer := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(footer[0:8], uint64(minLSN))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(maxLSN))
	binary.LittleEndian.PutUint32(footer[16:20], uint32(len(b.entries)))
	binary.LittleEndian.PutUint32(footer[20:24], indexOff)
	binary.LittleEndian.PutUint32(footer[24:28], uint32(len(idx)))
	binary.LittleEndian.PutUint32(footer[28:32], bloomOff)
	binary.LittleEndian.PutUint32(footer[32:36], uint32(len(bloom)))
	binary.LittleEndian.PutUint32(footer[36:40], magic)
	return append(data, footer...)
}

// Open parses a table blob produced by Builder.Finish (or by a pre-bloom
// binary; both formats keep the magic in the blob's final four bytes, so
// the trailing word selects the layout).
func Open(id uint64, blob []byte) (*Table, error) {
	if len(blob) < legacyFooterSize {
		return nil, fmt.Errorf("%w: too short", ErrMalformed)
	}
	t := &Table{id: id, blob: blob}
	var indexOff, indexLen uint64
	switch binary.LittleEndian.Uint32(blob[len(blob)-4:]) {
	case magic:
		if len(blob) < footerSize {
			return nil, fmt.Errorf("%w: too short", ErrMalformed)
		}
		footer := blob[len(blob)-footerSize:]
		t.minLSN = wal.LSN(binary.LittleEndian.Uint64(footer[0:8]))
		t.maxLSN = wal.LSN(binary.LittleEndian.Uint64(footer[8:16]))
		t.count = int(binary.LittleEndian.Uint32(footer[16:20]))
		body := uint64(len(blob) - footerSize)
		indexOff = uint64(binary.LittleEndian.Uint32(footer[20:24]))
		indexLen = uint64(binary.LittleEndian.Uint32(footer[24:28]))
		bloomOff := uint64(binary.LittleEndian.Uint32(footer[28:32]))
		bloomLen := uint64(binary.LittleEndian.Uint32(footer[32:36]))
		// Section layout must be data | index | bloom, each in bounds;
		// the uint64 arithmetic keeps a forged length from wrapping on
		// 32-bit.
		if indexOff+indexLen*4 != bloomOff || bloomOff+bloomLen != body {
			return nil, fmt.Errorf("%w: sections out of bounds", ErrMalformed)
		}
		t.bloom = blob[bloomOff : bloomOff+bloomLen]
	case legacyMagic:
		// Format 0: no bloom section; MayContain falls back to the
		// key-range tags alone (never a false negative).
		footer := blob[len(blob)-legacyFooterSize:]
		t.minLSN = wal.LSN(binary.LittleEndian.Uint64(footer[0:8]))
		t.maxLSN = wal.LSN(binary.LittleEndian.Uint64(footer[8:16]))
		t.count = int(binary.LittleEndian.Uint32(footer[16:20]))
		indexOff = uint64(binary.LittleEndian.Uint32(footer[20:24]))
		indexLen = uint64(binary.LittleEndian.Uint32(footer[24:28]))
		if indexOff+indexLen*4 != uint64(len(blob)-legacyFooterSize) {
			return nil, fmt.Errorf("%w: sections out of bounds", ErrMalformed)
		}
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	t.data = blob[:indexOff]
	t.index = make([]indexEnt, indexLen)
	for i := uint64(0); i < indexLen; i++ {
		off := binary.LittleEndian.Uint32(blob[indexOff+i*4:])
		if int(off) > len(t.data) {
			return nil, fmt.Errorf("%w: index entry out of bounds", ErrMalformed)
		}
		e, _, err := kv.DecodeEntry(t.data[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		t.index[i] = indexEnt{key: e.Key, off: off}
	}
	if len(t.index) > 0 {
		// Key-range tags: the first entry is the min key; the max key is
		// within the last index block (≤ indexEvery entries from its
		// start).
		t.minKey = t.index[0].key
		off := int(t.index[len(t.index)-1].off)
		for off < len(t.data) {
			e, n, err := kv.DecodeEntry(t.data[off:])
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
			}
			t.maxKey = e.Key
			off += n
		}
	}
	return t, nil
}

// ID returns the table's identifier.
func (t *Table) ID() uint64 { return t.id }

// Len returns the number of entries.
func (t *Table) Len() int { return t.count }

// LSNRange returns the min and max LSN tags (paper §6.1: "each SSTable is
// tagged with the min and max LSN of the writes that it contains").
func (t *Table) LSNRange() (min, max wal.LSN) { return t.minLSN, t.maxLSN }

// KeyRange returns the smallest and largest key in the table; ok is false
// for an empty table.
func (t *Table) KeyRange() (min, max kv.Key, ok bool) {
	return t.minKey, t.maxKey, len(t.index) > 0
}

// Bytes returns the serialized blob size (data + index, without footer).
func (t *Table) Bytes() int { return len(t.data) }

// Blob returns the table's full serialized form — the exact bytes Open was
// given, footer included. Bulk catch-up ships it verbatim so the receiver
// can Open it without a rebuild; the slice aliases the table's backing
// store and must not be modified.
func (t *Table) Blob() []byte { return t.blob }

// MayContain reports whether the table can hold key, by key-range tag and
// bloom filter. False means a Get is guaranteed to miss; true means it may
// hit (bloom false positives pass). A table without a bloom section (a
// pre-bloom legacy blob) prunes on the key range alone — admitting is the
// only safe answer, since a false negative would hide committed data.
func (t *Table) MayContain(key kv.Key) bool {
	if len(t.index) == 0 || key.Less(t.minKey) || t.maxKey.Less(key) {
		return false
	}
	if len(t.bloom) == 0 {
		return true
	}
	return bloomMayContain(t.bloom, key)
}

// SpansRow reports whether the table's key range intersects row (the bloom
// filter is per cell key, so row scans prune on the range tags only).
func (t *Table) SpansRow(row string) bool {
	return len(t.index) > 0 && t.minKey.Row <= row && row <= t.maxKey.Row
}

// Get returns the cell stored for key.
func (t *Table) Get(key kv.Key) (kv.Cell, bool) {
	if len(t.index) == 0 {
		return kv.Cell{}, false
	}
	// Find the last index entry with key ≤ target.
	i := sort.Search(len(t.index), func(i int) bool {
		return key.Less(t.index[i].key)
	}) - 1
	if i < 0 {
		return kv.Cell{}, false
	}
	off := int(t.index[i].off)
	for scanned := 0; off < len(t.data) && scanned < indexEvery; scanned++ {
		e, n, err := kv.DecodeEntry(t.data[off:])
		if err != nil {
			return kv.Cell{}, false
		}
		switch c := e.Key.Compare(key); {
		case c == 0:
			return e.Cell, true
		case c > 0:
			return kv.Cell{}, false
		}
		off += n
	}
	return kv.Cell{}, false
}

// Ascend calls fn for each entry in key order until fn returns false.
func (t *Table) Ascend(fn func(e kv.Entry) bool) error {
	off := 0
	for off < len(t.data) {
		e, n, err := kv.DecodeEntry(t.data[off:])
		if err != nil {
			return fmt.Errorf("sstable: scan: %w", err)
		}
		if !fn(e) {
			return nil
		}
		off += n
	}
	return nil
}

// AscendRow calls fn for each column of row in column order, seeking to the
// row through the sparse index instead of scanning from the head.
func (t *Table) AscendRow(row string, fn func(e kv.Entry) bool) error {
	if !t.SpansRow(row) {
		return nil
	}
	start := kv.Key{Row: row}
	i := sort.Search(len(t.index), func(i int) bool {
		return start.Less(t.index[i].key)
	}) - 1
	if i < 0 {
		i = 0
	}
	off := int(t.index[i].off)
	for off < len(t.data) {
		e, n, err := kv.DecodeEntry(t.data[off:])
		if err != nil {
			return fmt.Errorf("sstable: scan: %w", err)
		}
		if e.Key.Row > row {
			return nil
		}
		if e.Key.Row == row && !fn(e) {
			return nil
		}
		off += n
	}
	return nil
}

// Entries returns all entries; catch-up uses it to ship whole tables.
func (t *Table) Entries() ([]kv.Entry, error) {
	out := make([]kv.Entry, 0, t.count)
	err := t.Ascend(func(e kv.Entry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}
