module spinnaker

go 1.22
