package analysis

import (
	"go/ast"
	"go/types"
)

// aliascheck enforces the zero-copy contracts of PR 5's allocation-free
// replication path:
//
//   - Callers of //spinnaker:aliases producers (decodeWriteOpShared,
//     decodeProposeBatch) receive values that alias the input buffer.
//     Within the calling function, every value derived from such a call
//     is read-only: storing through it (x.F = v, x[i] = v) or appending
//     to a slice rooted at it is a finding. Passing the value onward is
//     allowed — the payload is immutable post-encode, so retention is
//     safe; mutation is what corrupts a buffer other code still reads.
//
//   - Bodies of //spinnaker:noretain functions borrow their byte-slice
//     parameters (pooled WAL encode scratch): the parameter may be read
//     and its contents copied (append(dst, p...), copy(dst, p)), but
//     the slice itself must not outlive the call — no stores into
//     struct fields, package variables, maps, slices-of-slices, or
//     channels, no capture by a function literal, and no returning it.
//
// Both checks are intra-procedural and identifier-rooted: a tainted
// value assigned to a new local taints that local too.
func aliascheck(m *Module, idx *annIndex) []Finding {
	var out []Finding
	for _, pkg := range m.Pkgs() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, aliasCallers(m, pkg, fd, idx)...)
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj != nil && idx.byFunc[obj].Noretain {
					out = append(out, noretainBody(m, pkg, fd)...)
				}
			}
		}
	}
	return out
}

// aliasCallers checks one function's use of //spinnaker:aliases
// producers.
func aliasCallers(m *Module, pkg *Package, fd *ast.FuncDecl, idx *annIndex) []Finding {
	// Pass 1: find locals bound to results of aliasing producers, then
	// propagate through plain assignments (x := tainted; y := x.F).
	tainted := map[types.Object]string{} // object → producer name
	bind := func(lhs []ast.Expr, producer string) {
		for _, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj != nil {
				if _, isErr := obj.Type().Underlying().(*types.Interface); isErr {
					continue // error results carry no aliased bytes
				}
				tainted[obj] = producer
			}
		}
	}
	for changed := true; changed; {
		changed = false
		before := len(tainted)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(as.Rhs) == 1 {
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
					if f := calleeFunc(pkg.Info, call); f != nil && idx.byFunc[f].Aliases {
						bind(as.Lhs, f.Name())
						return true
					}
				}
			}
			// Propagate: lhs_i := rhs_i where rhs_i is rooted at a
			// tainted object.
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Rhs {
					if root := rootObj(pkg.Info, as.Rhs[i]); root != nil {
						if producer, ok := tainted[root]; ok {
							bind(as.Lhs[i:i+1], producer)
						}
					}
				}
			}
			return true
		})
		changed = len(tainted) > before
	}
	if len(tainted) == 0 {
		return nil
	}
	// Pass 2: flag mutations of tainted values.
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				switch l.(type) {
				case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
					if root := rootObj(pkg.Info, l); root != nil {
						if producer, ok := tainted[root]; ok {
							out = append(out, finding(m, "aliascheck", l,
								"store through %q, which aliases the input buffer of %s: decoded-shared values are read-only", rootName(l), producer))
						}
					}
				}
			}
		case *ast.IncDecStmt:
			switch n.X.(type) {
			case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
				if root := rootObj(pkg.Info, n.X); root != nil {
					if producer, ok := tainted[root]; ok {
						out = append(out, finding(m, "aliascheck", n,
							"mutation of %q, which aliases the input buffer of %s", rootName(n.X), producer))
					}
				}
			}
		case *ast.CallExpr:
			if isAppendCall(pkg.Info, n) {
				// append's first argument rooted at a tainted object
				// writes into (or re-slices past) the aliased buffer.
				if len(n.Args) > 0 {
					if root := rootObj(pkg.Info, n.Args[0]); root != nil {
						if producer, ok := tainted[root]; ok {
							out = append(out, finding(m, "aliascheck", n,
								"append to a slice aliasing the input buffer of %s (may write into shared bytes); copy first", producer))
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// noretainBody checks a //spinnaker:noretain function body.
func noretainBody(m *Module, pkg *Package, fd *ast.FuncDecl) []Finding {
	// Borrowed objects: every parameter of (underlying) slice type,
	// plus locals derived from them by plain assignment or re-slicing.
	borrowed := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					borrowed[obj] = true
				}
			}
		}
	}
	if len(borrowed) == 0 {
		return nil
	}
	for changed := true; changed; {
		n0 := len(borrowed)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				root := rootObj(pkg.Info, as.Rhs[i])
				if root == nil || !borrowed[root] {
					continue
				}
				// Content copies (append spread / explicit copy) are
				// handled at the use sites below; here only direct
				// bindings propagate the borrow.
				switch ast.Unparen(as.Rhs[i]).(type) {
				case *ast.Ident, *ast.SliceExpr:
					if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := pkg.Info.Defs[id]; obj != nil {
							borrowed[obj] = true
						} else if obj := pkg.Info.Uses[id]; obj != nil && objIsLocal(obj, fd) {
							borrowed[obj] = true
						}
					}
				}
			}
			return true
		})
		changed = len(borrowed) > n0
	}

	var out []Finding
	flag := func(at ast.Node, what string) {
		out = append(out, finding(m, "aliascheck", at,
			"%s retains a borrowed (pooled) byte slice past %s's return; the pool will reuse it — copy the bytes instead", what, fd.Name.Name))
	}
	isBorrowedExpr := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch e := e.(type) {
		case *ast.Ident:
			obj := pkg.Info.Uses[e]
			return obj != nil && borrowed[obj]
		case *ast.SliceExpr:
			root := rootObj(pkg.Info, e)
			return root != nil && borrowed[root]
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i := range n.Rhs {
				if i >= len(n.Lhs) || !isBorrowedExpr(n.Rhs[i]) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.Ident:
					// Local rebinding is fine (handled in propagation);
					// assignment to a package-level var retains.
					if obj := pkg.Info.Uses[lhs]; obj != nil && !objIsLocal(obj, fd) {
						flag(n, "assignment to package-level variable")
					}
				case *ast.SelectorExpr:
					flag(n, "store into a struct field")
				case *ast.IndexExpr:
					flag(n, "store into a map or slice element")
				case *ast.StarExpr:
					flag(n, "store through a pointer")
				}
			}
		case *ast.SendStmt:
			if isBorrowedExpr(n.Value) {
				flag(n, "channel send")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isBorrowedExpr(r) {
					flag(n, "return")
				}
			}
		case *ast.CallExpr:
			// append(container, p) retains p as an element; the spread
			// form append(dst, p...) copies contents and is fine.
			if isAppendCall(pkg.Info, n) {
				for i := 1; i < len(n.Args); i++ {
					if isBorrowedExpr(n.Args[i]) && !(i == len(n.Args)-1 && n.Ellipsis.IsValid()) {
						flag(n, "append as an element (slice-of-slices)")
					}
				}
			}
		case *ast.FuncLit:
			captures := false
			ast.Inspect(n.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if obj := pkg.Info.Uses[id]; obj != nil && borrowed[obj] {
						captures = true
					}
				}
				return !captures
			})
			if captures {
				flag(n, "capture by a function literal")
			}
			return false // don't double-report stores inside the literal
		}
		return true
	})
	return out
}

// rootObj walks selector/index/slice/star/paren chains to the rooted
// identifier's object; nil when the root is not a plain identifier.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X // &x roots at x: a pointer into a tainted value is tainted
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func rootName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return "?"
		}
	}
}

// objIsLocal reports whether obj is declared inside fd (parameter,
// result, or body local) as opposed to package scope.
func objIsLocal(obj types.Object, fd *ast.FuncDecl) bool {
	return obj.Pkg() != nil && fd.Pos() <= obj.Pos() && obj.Pos() <= fd.End()
}
