package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/coord"
	"spinnaker/internal/metrics"
	"spinnaker/internal/simtime"
	"spinnaker/internal/sstable"
	"spinnaker/internal/storage"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Stores bundles a node's stable storage: the shared log's segments, the
// metadata store (skipped-LSN lists, storage manifests), and per-cohort
// SSTable stores. It outlives Node instances — a restarted node is a new
// Node over the same Stores, which is how crash/recovery is exercised.
type Stores struct {
	Segments wal.SegmentStore
	Meta     wal.MetaStore

	mu        sync.Mutex
	tables    map[uint32]sstable.TableStore
	newTables func(cohort uint32) (sstable.TableStore, error)
}

// NewMemStores returns in-memory stores whose logging device uses the given
// latency profile; the stores survive Node crashes like real disks.
func NewMemStores(profile wal.DeviceProfile) *Stores {
	return &Stores{
		Segments: wal.NewMemSegmentStore(profile),
		Meta:     wal.NewMemMetaStore(),
		tables:   make(map[uint32]sstable.TableStore),
		newTables: func(uint32) (sstable.TableStore, error) {
			return sstable.NewMemTableStore(), nil
		},
	}
}

// NewFileStores returns file-backed stores rooted at dir.
func NewFileStores(dir string) (*Stores, error) {
	segs, err := wal.NewFileSegmentStore(filepath.Join(dir, "log"))
	if err != nil {
		return nil, err
	}
	meta, err := wal.NewFileMetaStore(filepath.Join(dir, "meta"))
	if err != nil {
		return nil, err
	}
	return &Stores{
		Segments: segs,
		Meta:     meta,
		tables:   make(map[uint32]sstable.TableStore),
		newTables: func(cohort uint32) (sstable.TableStore, error) {
			return sstable.NewFileTableStore(filepath.Join(dir, fmt.Sprintf("sst-%d", cohort)))
		},
	}, nil
}

// Tables returns the SSTable store for a cohort, creating it on first use.
func (s *Stores) Tables(cohort uint32) (sstable.TableStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts, ok := s.tables[cohort]; ok {
		return ts, nil
	}
	ts, err := s.newTables(cohort)
	if err != nil {
		return nil, err
	}
	s.tables[cohort] = ts
	return ts, nil
}

// Crash applies crash semantics to in-memory stores: the log loses its
// unforced tail. SSTables and metadata survive (they are written
// atomically and durably).
func (s *Stores) Crash() {
	if ms, ok := s.Segments.(*wal.MemSegmentStore); ok {
		ms.Crash()
	}
}

// Fail simulates a permanent disk failure (§6.1): log, metadata, and
// SSTables are all destroyed.
func (s *Stores) Fail() {
	if ms, ok := s.Segments.(*wal.MemSegmentStore); ok {
		ms.Fail()
	}
	if mm, ok := s.Meta.(*wal.MemMetaStore); ok {
		mm.Fail()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ts := range s.tables {
		if mt, ok := ts.(*sstable.MemTableStore); ok {
			mt.Fail()
		}
	}
}

// Config controls a Node.
type Config struct {
	// ID is the node's identity in the cluster layout and on the network.
	ID string
	// Layout is the bootstrap partitioning. If a newer layout has been
	// published through the coordination service (PublishLayout), the
	// node adopts it at startup and follows every subsequent version
	// live — creating, retiring, and re-membering replicas as cohorts
	// move (elastic scale-out).
	Layout *cluster.Layout
	// CommitPeriod is the interval between the leader's asynchronous
	// commit messages (§5). The paper uses 1s in production settings and
	// evaluates 1–15s (Table 1); the in-process default is 25ms, playing
	// the role of the paper's 1s at the harness's reduced time scale.
	CommitPeriod time.Duration
	// DisableGroupCommit turns off group commit (ablation only).
	DisableGroupCommit bool
	// PiggybackCommits carries the commit LSN on propose messages
	// (App. D.1: "the commit period can be made substantially smaller
	// without much overhead by piggy-backing the commit message on
	// propose messages").
	PiggybackCommits bool
	// WriteTimeout bounds how long a client write waits for quorum.
	WriteTimeout time.Duration
	// ElectionTimeout is the retry interval while waiting for election
	// majorities or a winner's takeover.
	ElectionTimeout time.Duration
	// TakeoverTimeout bounds follower syncs during takeover.
	TakeoverTimeout time.Duration
	// RetryInterval is the back-off between catch-up attempts.
	RetryInterval time.Duration
	// HeartbeatInterval paces session heartbeats to the coordination
	// service (§4.2: normally the only traffic to it).
	HeartbeatInterval time.Duration
	// FlushInterval paces the background memtable flush / compaction /
	// log truncation daemon.
	FlushInterval time.Duration
	// FlushBytes and MaxTables tune the per-cohort storage engines.
	FlushBytes int64
	MaxTables  int
	// SegmentBytes is the shared log's roll threshold.
	SegmentBytes int64
	// ReadServiceTime simulates per-read CPU cost, bounded by
	// ReadConcurrency simulated cores (benchmarks only; zero disables).
	// It reproduces the CPU bottleneck behind Figure 8's latency knee.
	ReadServiceTime time.Duration
	ReadConcurrency int
	// SequentialPropose makes the leader force its log *before* sending
	// propose messages instead of in parallel (Fig 4). Ablation only.
	SequentialPropose bool
	// DisableProposalBatching turns off the batched replication pipeline
	// (the ProposalBatching=false ablation). The default (batching on)
	// coalesces every write sequenced since the batcher's last send into
	// a single MsgProposeBatch per peer, and followers append the whole
	// batch under one lock acquisition, issue one force, and reply with
	// one cumulative acked-through LSN. With batching disabled, the
	// leader sends one MsgPropose per write and followers ack each LSN
	// individually — the paper's Figure 4 read literally.
	DisableProposalBatching bool
	// DisableSnapshotCatchup forces catch-up onto the entry-replay path
	// even when the leader's log is truncated past the follower's f.cmt
	// (the log-replay ablation for the rejoin benchmarks). With the
	// default (snapshot catch-up on), such a follower receives sealed
	// SSTables directly and replays only the log tail beyond them.
	DisableSnapshotCatchup bool
}

func (c *Config) fillDefaults() {
	if c.CommitPeriod <= 0 {
		c.CommitPeriod = 25 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 250 * time.Millisecond
	}
	if c.TakeoverTimeout <= 0 {
		c.TakeoverTimeout = 5 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 20 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.ReadConcurrency <= 0 {
		c.ReadConcurrency = 4
	}
}

// Node is one Spinnaker server: up to N cohort replicas sharing one
// write-ahead log, one coordination-service session, and one network
// endpoint (paper Figure 3: replication and remote recovery; logging and
// local recovery; commit queue; memtables and SSTables; failure detection,
// group membership, and leader election via the coordination service).
type Node struct {
	cfg       Config
	stores    *Stores
	ep        transport.Endpoint
	coordSess *coord.Session
	log       *wal.Log
	meta      wal.MetaStore

	// layoutMu guards the current layout and the replica map, both of
	// which change when a published layout is adopted live.
	layoutMu sync.RWMutex
	layout   *cluster.Layout
	replicas map[uint32]*replica

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	readSem  chan struct{}

	catchupMu  sync.Mutex
	catchupSet map[uint32]bool
	catchupCh  chan *replica

	// adoptions counts completed layout adoptions (reconfig events).
	adoptions metrics.Counter
}

// getReplica returns the replica serving rangeID, if any.
func (n *Node) getReplica(rangeID uint32) *replica {
	n.layoutMu.RLock()
	defer n.layoutMu.RUnlock()
	return n.replicas[rangeID]
}

// replicaList snapshots the current replicas.
func (n *Node) replicaList() []*replica {
	n.layoutMu.RLock()
	defer n.layoutMu.RUnlock()
	out := make([]*replica, 0, len(n.replicas))
	for _, r := range n.replicas {
		out = append(out, r)
	}
	return out
}

// layoutVersion returns the version of the layout the node currently runs.
func (n *Node) layoutVersion() uint64 {
	n.layoutMu.RLock()
	defer n.layoutMu.RUnlock()
	if n.layout == nil {
		return 0
	}
	return n.layout.Version()
}

// readGate charges the simulated per-read CPU cost (see Config).
func (n *Node) readGate() {
	if n.cfg.ReadServiceTime <= 0 {
		return
	}
	n.readSem <- struct{}{}
	simtime.Sleep(n.cfg.ReadServiceTime)
	<-n.readSem
}

// NewNode builds a node over its stable stores. Call Start to run local
// recovery and join the cluster.
func NewNode(cfg Config, stores *Stores, ep transport.Endpoint, coordSvc *coord.Service) (*Node, error) {
	cfg.fillDefaults()
	if cfg.Layout == nil {
		return nil, errors.New("core: Config.Layout is required")
	}
	log, err := wal.Open(wal.Config{
		Store:        stores.Segments,
		SegmentBytes: cfg.SegmentBytes,
		GroupCommit:  !cfg.DisableGroupCommit,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open log: %w", err)
	}
	n := &Node{
		cfg:        cfg,
		stores:     stores,
		ep:         ep,
		coordSess:  coordSvc.Connect(),
		log:        log,
		meta:       stores.Meta,
		replicas:   make(map[uint32]*replica),
		stopCh:     make(chan struct{}),
		readSem:    make(chan struct{}, cfg.ReadConcurrency),
		catchupSet: make(map[uint32]bool),
		catchupCh:  make(chan *replica, 64),
	}
	n.layout = cfg.Layout
	for _, rangeID := range cfg.Layout.RangesOf(cfg.ID) {
		r, err := n.buildReplica(cfg.Layout, rangeID)
		if err != nil {
			return nil, err
		}
		// If this node once left the range's cohort, the durable
		// departed marker survives any crash in the rejoin window
		// (e.g. after the re-adding layout was published but before
		// adoptLayout ran): the local state is pre-departure and must
		// be discarded exactly as a live adoption would discard it.
		if data, ok, err := n.meta.Get(departedKey(rangeID)); err == nil && ok && len(data) > 0 {
			if err := n.resetRejoinState(r); err != nil {
				return nil, fmt.Errorf("core: reset rejoined range %d: %w", rangeID, err)
			}
		}
		n.replicas[rangeID] = r
	}
	return n, nil
}

// departedKey is the metadata key of the durable "this node left range r's
// cohort" marker; see retire and resetRejoinState.
func departedKey(r uint32) string { return fmt.Sprintf("departed/%d", r) }

// resetRejoinState discards a (re-)joining replica's stale pre-departure
// state: the engine is durably wiped, a RecResetCohort marker makes local
// recovery discard the old-era log records, and the departed marker is
// cleared. Without this, keys deleted cluster-wide while the node was out
// of the cohort — whose tombstones were then compacted away, so catch-up
// can never mention them — would resurrect from the node's old SSTables or
// log records.
func (n *Node) resetRejoinState(r *replica) error {
	if err := r.engine.Wipe(); err != nil {
		return err
	}
	end, err := n.log.Append(wal.Record{Cohort: r.rangeID, Type: wal.RecResetCohort})
	if err != nil {
		return err
	}
	if err := n.log.ForceTo(end); err != nil {
		return err
	}
	return n.meta.Delete(departedKey(r.rangeID))
}

// buildReplica constructs (without starting) this node's replica of one
// range of layout l: its storage engine plus the membership-derived fields
// (peers, quorum, bounds, home node, split origin).
func (n *Node) buildReplica(l *cluster.Layout, rangeID uint32) (*replica, error) {
	tables, err := n.stores.Tables(rangeID)
	if err != nil {
		return nil, err
	}
	engine, err := storage.Open(storage.Config{
		Tables:     tables,
		Meta:       n.stores.Meta,
		Cohort:     rangeID,
		FlushBytes: n.cfg.FlushBytes,
		MaxTables:  n.cfg.MaxTables,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open engine for range %d: %w", rangeID, err)
	}
	var peers []string
	for _, member := range l.Cohort(rangeID) {
		if member != n.cfg.ID {
			peers = append(peers, member)
		}
	}
	low, high := l.Bounds(rangeID)
	r := &replica{
		n:             n,
		rangeID:       rangeID,
		peers:         peers,
		quorum:        l.Quorum(rangeID),
		low:           low,
		high:          high,
		home:          l.HomeNode(rangeID),
		skipped:       wal.NewSkippedLSNs(),
		queue:         newCommitQueue(),
		engine:        engine,
		peerFloors:    make(map[string]wal.LSN),
		electionNudge: make(chan struct{}, 1),
		stopCh:        make(chan struct{}),
		m:             newRangeMetrics(),
	}
	if origin, ok := l.Origin(rangeID); ok {
		r.origin, r.hasOrigin = origin, true
	}
	return r, nil
}

// adoptLayout switches the node to a newer published layout: replicas for
// ranges this node no longer serves retire, replicas for newly assigned
// ranges are created (recovering; they earn currency through catch-up or a
// split pull before serving), and retained replicas update their bounds and
// cohort membership in place. It reports whether adoption completed; on a
// transient storage failure the recorded layout version is NOT advanced, so
// the caller retries (adoption is idempotent: retired replicas stay gone,
// kept replicas re-apply, only the missing ones are rebuilt).
func (n *Node) adoptLayout(l *cluster.Layout) bool {
	n.layoutMu.RLock()
	if n.layout != nil && l.Version() <= n.layout.Version() {
		n.layoutMu.RUnlock()
		return true
	}
	have := make(map[uint32]bool, len(n.replicas))
	for id := range n.replicas {
		have[id] = true
	}
	n.layoutMu.RUnlock()

	desired := make(map[uint32]bool)
	for _, id := range l.RangesOf(n.cfg.ID) {
		desired[id] = true
	}

	// Build new replicas outside layoutMu: storage.Open hits the disk on
	// file-backed deployments, and holding the write lock would stall
	// every replica's message dispatch for the duration. Only layoutLoop
	// mutates the replica map, so the have-snapshot cannot go stale.
	complete := true
	built := make(map[uint32]*replica)
	for id := range desired {
		if have[id] {
			continue
		}
		r, err := n.buildReplica(l, id)
		if err != nil {
			complete = false // storage failure; the caller retries
			continue
		}
		// This node is (re-)joining the cohort from outside: discard
		// any stale pre-departure state (see resetRejoinState; a crash
		// before this point is covered by the durable departed marker,
		// which routes the restart through the same reset in NewNode).
		if err := n.resetRejoinState(r); err != nil {
			complete = false
			continue
		}
		r.role = RoleRecovering
		if r.hasOrigin {
			// A split-created range: its data lives with the origin
			// range's cohort. Do not stand for election (an empty
			// candidate could win an empty leadership and the moved
			// rows would be lost) until the first pull succeeds.
			r.mustPull = true
		}
		built[id] = r
	}

	n.layoutMu.Lock()
	var retired, added, kept []*replica
	for id, r := range n.replicas {
		if !desired[id] {
			retired = append(retired, r)
			delete(n.replicas, id)
		} else {
			kept = append(kept, r)
		}
	}
	for id, r := range built {
		n.replicas[id] = r
		added = append(added, r)
	}
	if complete {
		n.layout = l
	}
	n.layoutMu.Unlock()

	for _, r := range retired {
		r.retire()
	}
	for _, r := range kept {
		r.applyLayout(l)
	}
	for _, r := range added {
		r := r
		n.goLoop(func() { r.electionLoop() })
		n.nudgeCatchup(r)
	}
	if complete {
		n.adoptions.Inc()
	}
	return complete
}

// layoutLoop follows the published layout znode for the life of the node,
// adopting every newer version; incomplete adoptions (transient storage
// failures) are retried on a timer rather than waiting for the next
// publication, which may never come.
func (n *Node) layoutLoop() {
	sess := n.coordSess
	for !n.stopped() {
		watch, err := sess.Watch(LayoutPath)
		if err != nil {
			return // session gone; node is shutting down
		}
		complete := true
		if l, err := FetchLayout(sess); err == nil {
			complete = n.adoptLayout(l)
		}
		if complete {
			select {
			case <-watch:
			case <-n.stopCh:
				return
			}
			continue
		}
		select {
		case <-watch:
		case <-time.After(10 * n.cfg.RetryInterval):
		case <-n.stopCh:
			return
		}
	}
}

// Start runs local recovery (one shared scan of the log feeding all
// replicas, §6) and then joins the cluster: message handling, election
// loops, the commit timer, flush daemon, and heartbeats.
func (n *Node) Start() error {
	perCohort := make(map[uint32][]wal.Record)
	if err := n.log.Scan(func(rec wal.Record) error {
		if _, ok := n.replicas[rec.Cohort]; ok {
			perCohort[rec.Cohort] = append(perCohort[rec.Cohort], rec)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("core: recovery scan: %w", err)
	}
	for rangeID, r := range n.replicas {
		if err := r.localRecover(perCohort[rangeID]); err != nil {
			return err
		}
	}

	n.ep.SetHandler(n.handle)
	for _, r := range n.replicas {
		r := r
		n.goLoop(func() { r.electionLoop() })
	}
	n.goLoop(n.commitTimer)
	n.goLoop(n.flushLoop)
	n.goLoop(n.heartbeatLoop)
	n.goLoop(n.catchupWorker)
	// layoutLoop immediately adopts the published layout if it is newer
	// than the bootstrap one, then follows every subsequent version.
	n.goLoop(n.layoutLoop)
	return nil
}

func (n *Node) goLoop(fn func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		fn()
	}()
}

// handle dispatches inbound messages. It runs on per-sender link
// goroutines, so messages from one peer are processed in order.
func (n *Node) handle(m transport.Message) {
	r := n.getReplica(m.Cohort)
	if r == nil {
		// Client operations for a range this node does not serve are a
		// routing miss: under live reconfiguration the client's layout
		// may be stale (the range moved away, or was retired by a
		// split), so tell it to refresh rather than to give up.
		detail := fmt.Sprintf("node does not serve range %d (layout v%d)", m.Cohort, n.layoutVersion())
		switch m.Kind {
		case MsgGet:
			n.reply(m, transport.Message{Payload: encodeGetResp(getResp{Status: StatusWrongLayout})})
		case MsgGetRow:
			n.reply(m, transport.Message{Payload: encodeRowResp(rowResp{Status: StatusWrongLayout})})
		case MsgWrite:
			n.reply(m, transport.Message{Payload: encodeWriteResult(writeResult{
				Status: StatusWrongLayout, Detail: detail})})
		case MsgCatchupReq:
			n.reply(m, transport.Message{Payload: encodeCatchupResp(catchupResp{Status: StatusNotLeader})})
		case MsgTableChunkReq:
			n.reply(m, transport.Message{Kind: MsgTableChunk,
				Payload: encodeTableChunk(tableChunk{Status: StatusNotFound})})
		}
		return
	}
	switch m.Kind {
	case MsgGet:
		req, err := decodeGetReq(m.Payload)
		if err != nil {
			return
		}
		n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeGetResp(r.get(req))})
	case MsgGetRow:
		req, err := decodeGetReq(m.Payload)
		if err != nil {
			return
		}
		n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeRowResp(r.getRow(req))})
	case MsgWrite:
		op, _, err := DecodeWriteOp(m.Payload)
		if err != nil {
			return
		}
		if r.batched() {
			// Batched pipeline: sequence now, reply on commit. The
			// link goroutine is freed immediately, so one client's
			// pipelined writes coalesce into shared batches instead
			// of running in lockstep.
			r.submitWriteAsync(op, func(out writeOutcome) {
				n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeWriteResult(writeResult{
					Status: out.status, Detail: out.detail, Versions: out.versions})})
			})
			return
		}
		out := r.submitWrite(op)
		n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeWriteResult(writeResult{
			Status: out.status, Detail: out.detail, Versions: out.versions})})
	case MsgPropose:
		r.onPropose(m)
	case MsgProposeBatch:
		r.onProposeBatch(m)
	case MsgAck:
		r.onAck(m)
	case MsgAckBatch:
		r.onAckBatch(m)
	case MsgCommit:
		r.onCommitMsg(m)
	case MsgStateReq:
		r.onStateReq(m)
	case MsgTakeover:
		r.onTakeover(m)
	case MsgCatchupReq:
		r.onCatchupReq(m)
	case MsgTableChunkReq:
		r.onTableChunkReq(m)
	}
}

// commitTimer drives the leader's periodic asynchronous commit messages
// (§5: "the interval for commit messages is called the commit period").
func (n *Node) commitTimer() {
	t := time.NewTicker(n.cfg.CommitPeriod)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			for _, r := range n.replicaList() {
				r.sendCommitMessages()
			}
		}
	}
}

// flushLoop runs background storage maintenance: memtable flushes, SSTable
// compaction (gated by the cohort tombstone-GC watermark), shared-log
// truncation once every cohort's writes are captured (§6.1), and
// skipped-LSN list garbage collection (§6.1.1).
func (n *Node) flushLoop() {
	t := time.NewTicker(n.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			replicas := n.replicaList()
			captured := make(map[uint32]wal.LSN, len(replicas))
			for _, r := range replicas {
				// A maintenance error is retried next tick; the
				// accounting below still runs — a flush that
				// succeeded before its compaction failed advanced
				// the checkpoint, and skipping the truncation
				// bookkeeping for it would pin the shared log (and
				// the skipped-LSN list) on a replica whose state
				// was in fact captured.
				_, _, _ = r.engine.MaybeFlush(r.tombstoneGC())
				cp := r.engine.Checkpoint()
				captured[r.rangeID] = cp
				r.mu.Lock()
				r.skipped.GC(cp)
				r.mu.Unlock()
			}
			_, _ = n.log.DropCapturedSegments(captured)
		}
	}
}

// heartbeatLoop keeps the coordination-service session alive; a crashed
// node stops heartbeating and the service expires its ephemerals, which is
// what triggers elections (§4.2).
func (n *Node) heartbeatLoop() {
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			if err := n.coordSess.Heartbeat(); err != nil {
				return
			}
		}
	}
}

// nudgeCatchup schedules an asynchronous catch-up for a replica that
// detected it is behind; duplicates coalesce.
func (n *Node) nudgeCatchup(r *replica) {
	n.catchupMu.Lock()
	if n.catchupSet[r.rangeID] {
		n.catchupMu.Unlock()
		return
	}
	n.catchupSet[r.rangeID] = true
	n.catchupMu.Unlock()
	select {
	case n.catchupCh <- r:
	default:
		n.catchupMu.Lock()
		delete(n.catchupSet, r.rangeID)
		n.catchupMu.Unlock()
	}
}

func (n *Node) catchupWorker() {
	for {
		select {
		case <-n.stopCh:
			return
		case r := <-n.catchupCh:
			r.runCatchupLoop()
			n.catchupMu.Lock()
			delete(n.catchupSet, r.rangeID)
			n.catchupMu.Unlock()
		}
	}
}

// readEpochZnode returns the range's epoch as stored in the coordination
// service (0 if unreadable). Candidates stamp their registrations with it
// to scope election rounds.
func (n *Node) readEpochZnode(rangeID uint32) uint32 {
	data, err := n.coordSess.Get(epochPath(rangeID))
	if err != nil {
		return 0
	}
	return decodeEpoch(data)
}

// bumpEpoch atomically increments a range's epoch in the coordination
// service and returns the new value (App. B: stored in Zookeeper before
// the new leader accepts writes).
func (n *Node) bumpEpoch(rangeID uint32) (uint32, error) {
	for {
		data, ver, err := n.coordSess.GetVersion(epochPath(rangeID))
		if err != nil {
			return 0, err
		}
		next := decodeEpoch(data) + 1
		if _, err := n.coordSess.CompareAndSet(epochPath(rangeID), encodeEpoch(next), ver); err == nil {
			return next, nil
		} else if !errors.Is(err, coord.ErrBadVersion) {
			return 0, err
		}
	}
}

// readLeader returns the current leader of a range per the coordination
// service, or "".
func (n *Node) readLeader(rangeID uint32) string {
	data, err := n.coordSess.Get(leaderPath(rangeID))
	if err != nil {
		return ""
	}
	return string(data)
}

func (n *Node) send(to string, m transport.Message) {
	m.To = to
	_ = n.ep.Send(m)
}

func (n *Node) call(to string, m transport.Message) (transport.Message, error) {
	m.To = to
	return n.ep.Call(m)
}

func (n *Node) reply(req transport.Message, m transport.Message) {
	_ = n.ep.Reply(req, m)
}

func (n *Node) stopped() bool {
	select {
	case <-n.stopCh:
		return true
	default:
		return false
	}
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// Ranges returns the ids of the ranges this node replicates.
func (n *Node) Ranges() []uint32 {
	replicas := n.replicaList()
	out := make([]uint32, 0, len(replicas))
	for _, r := range replicas {
		out = append(out, r.rangeID)
	}
	return out
}

// LayoutVersion returns the version of the cluster layout the node runs.
func (n *Node) LayoutVersion() uint64 { return n.layoutVersion() }

// StepDown asks this node to relinquish leadership of rangeID (leadership
// transfer during rebalancing): the replica closes for writes, releases the
// leader znode, and abstains from the next election round so another cohort
// member — preferentially the layout's home node, via the election
// tie-break — can take over. It reports whether the node was the leader.
func (n *Node) StepDown(rangeID uint32) bool {
	r := n.getReplica(rangeID)
	if r == nil {
		return false
	}
	return r.stepDown()
}

// ReplicaStats reports a replica's protocol state (tests and tooling).
func (n *Node) ReplicaStats(rangeID uint32) (ReplicaStats, bool) {
	r := n.getReplica(rangeID)
	if r == nil {
		return ReplicaStats{}, false
	}
	return r.stats(), true
}

// StorageStats reports a replica engine's maintenance counters (flushes,
// compaction rounds, live tables) for tests, benchmarks, and tooling.
func (n *Node) StorageStats(rangeID uint32) (flushes, compacts int64, tables int, ok bool) {
	r := n.getReplica(rangeID)
	if r == nil {
		return 0, 0, 0, false
	}
	flushes, compacts, tables = r.engine.Stats()
	return flushes, compacts, tables, true
}

// LogStats exposes the shared log's append/force counters.
func (n *Node) LogStats() (appends, forces int64) { return n.log.Stats() }

// LogTruncated reports the cohort's log-truncation point on this node: a
// follower whose f.cmt is below it can no longer catch up by entry replay
// alone (tests and tooling).
func (n *Node) LogTruncated(cohort uint32) wal.LSN { return n.log.Truncated(cohort) }

// Stop shuts the node down gracefully: loops stop, the session closes
// (deleting its ephemerals), and the log is forced.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.ep.Close()
	n.coordSess.Close()
	n.wg.Wait()
	_ = n.log.Force()
}

// Crash simulates a process crash: loops die, the endpoint drops off the
// network, and the coordination session expires as the service would
// detect via missed heartbeats. Volatile state (memtables, commit queues)
// is simply abandoned with the Node object; the unforced log tail is
// discarded by Stores.Crash, which the simulation harness invokes next.
func (n *Node) Crash() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.ep.Close()
	n.coordSess.Expire()
	n.wg.Wait()
}
