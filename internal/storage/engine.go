// Package storage implements the per-replica LSM storage engine of a
// Spinnaker node (paper §4.1): committed writes are applied to a memtable,
// which is periodically flushed to immutable SSTables; smaller SSTables are
// merged into larger ones in the background to garbage-collect deleted rows
// and improve read performance.
//
// The engine stores only *committed* state: the replication layer applies a
// write here when it commits (leader) or when a commit message covers it
// (follower). The memtable is volatile — a crash loses it and local
// recovery rebuilds it by replaying the log from the last checkpoint
// (paper §6.1). SSTables and the manifest survive crashes.
package storage

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"spinnaker/internal/kv"
	"spinnaker/internal/memtable"
	"spinnaker/internal/sstable"
	"spinnaker/internal/wal"
)

// Config controls an Engine.
type Config struct {
	// Tables is the stable store for SSTable blobs.
	Tables sstable.TableStore
	// Meta holds the manifest (live table ids + checkpoint LSN).
	Meta wal.MetaStore
	// Cohort namespaces the manifest key; a node runs one engine per
	// cohort over shared stores.
	Cohort uint32
	// FlushBytes is the memtable size that triggers a flush from
	// MaybeFlush. Zero means 4 MiB.
	FlushBytes int64
	// MaxTables triggers a full compaction from MaybeFlush when
	// exceeded. Zero means 8.
	MaxTables int
}

// Engine is a single key-range replica's storage.
type Engine struct {
	cfg Config

	mu         sync.RWMutex
	mem        *memtable.Memtable
	tables     []*sstable.Table // newest first
	nextID     uint64
	appliedLSN wal.LSN
	checkpoint wal.LSN
	flushes    int64
	compacts   int64
}

func manifestKey(cohort uint32) string { return fmt.Sprintf("manifest/%d", cohort) }

// Open loads (or initializes) the engine state from its stores.
func Open(cfg Config) (*Engine, error) {
	if cfg.Tables == nil || cfg.Meta == nil {
		return nil, fmt.Errorf("storage: Tables and Meta stores are required")
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 4 << 20
	}
	if cfg.MaxTables <= 0 {
		cfg.MaxTables = 8
	}
	e := &Engine{cfg: cfg, mem: memtable.New()}

	raw, ok, err := cfg.Meta.Get(manifestKey(cfg.Cohort))
	if err != nil {
		return nil, fmt.Errorf("storage: load manifest: %w", err)
	}
	if !ok {
		return e, nil
	}
	man, err := decodeManifest(raw)
	if err != nil {
		return nil, err
	}
	e.nextID = man.nextID
	e.checkpoint = man.checkpoint
	e.appliedLSN = man.checkpoint
	for _, id := range man.tableIDs {
		blob, err := cfg.Tables.Get(id)
		if err != nil {
			return nil, fmt.Errorf("storage: open table %d: %w", id, err)
		}
		t, err := sstable.Open(id, blob)
		if err != nil {
			return nil, fmt.Errorf("storage: parse table %d: %w", id, err)
		}
		// manifest lists oldest→newest; keep newest first.
		e.tables = append([]*sstable.Table{t}, e.tables...)
	}
	return e, nil
}

type manifest struct {
	nextID     uint64
	checkpoint wal.LSN
	tableIDs   []uint64 // oldest → newest
}

func encodeManifest(m manifest) []byte {
	buf := make([]byte, 8+8+4+8*len(m.tableIDs))
	binary.LittleEndian.PutUint64(buf[0:8], m.nextID)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.checkpoint))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(m.tableIDs)))
	for i, id := range m.tableIDs {
		binary.LittleEndian.PutUint64(buf[20+8*i:], id)
	}
	return buf
}

func decodeManifest(b []byte) (manifest, error) {
	var m manifest
	if len(b) < 20 {
		return m, fmt.Errorf("storage: manifest too short (%d bytes)", len(b))
	}
	m.nextID = binary.LittleEndian.Uint64(b[0:8])
	m.checkpoint = wal.LSN(binary.LittleEndian.Uint64(b[8:16]))
	n := int(binary.LittleEndian.Uint32(b[16:20]))
	if len(b) < 20+8*n {
		return m, fmt.Errorf("storage: manifest truncated: want %d table ids", n)
	}
	for i := 0; i < n; i++ {
		m.tableIDs = append(m.tableIDs, binary.LittleEndian.Uint64(b[20+8*i:]))
	}
	return m, nil
}

// saveManifestLocked persists the current table set and checkpoint;
// callers hold e.mu.
func (e *Engine) saveManifestLocked() error {
	m := manifest{nextID: e.nextID, checkpoint: e.checkpoint}
	for i := len(e.tables) - 1; i >= 0; i-- { // oldest → newest
		m.tableIDs = append(m.tableIDs, e.tables[i].ID())
	}
	return e.cfg.Meta.Put(manifestKey(e.cfg.Cohort), encodeManifest(m))
}

// Apply records a committed write. The replication layer calls it in LSN
// order within the cohort; applying the same entry twice is harmless
// (idempotent redo, paper §6.1).
func (e *Engine) Apply(entry kv.Entry) {
	e.mu.Lock()
	e.mem.Apply(entry.Key, entry.Cell)
	if entry.Cell.LSN > e.appliedLSN {
		e.appliedLSN = entry.Cell.LSN
	}
	e.mu.Unlock()
}

// AppliedLSN returns the highest LSN applied to the engine.
func (e *Engine) AppliedLSN() wal.LSN {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.appliedLSN
}

// Checkpoint returns the LSN through which all writes are captured in
// SSTables; local recovery replays the log from here (paper §6.1).
func (e *Engine) Checkpoint() wal.LSN {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.checkpoint
}

// Get returns the newest cell for key, including tombstones (the caller
// interprets Cell.Deleted). The memtable always holds the newest state
// because applies go there first.
func (e *Engine) Get(key kv.Key) (kv.Cell, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if c, ok := e.mem.Get(key); ok {
		return c, true
	}
	for _, t := range e.tables {
		if c, ok := t.Get(key); ok {
			return c, true
		}
	}
	return kv.Cell{}, false
}

// GetRow returns the newest cell of every live (non-deleted) column of row,
// in column order.
func (e *Engine) GetRow(row string) []kv.Entry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	newest := make(map[string]kv.Cell)
	var order []string
	consider := func(ent kv.Entry) {
		cur, ok := newest[ent.Key.Col]
		if !ok {
			newest[ent.Key.Col] = ent.Cell
			order = append(order, ent.Key.Col)
			return
		}
		if ent.Cell.Newer(cur) {
			newest[ent.Key.Col] = ent.Cell
		}
	}
	e.mem.AscendRow(row, func(ent kv.Entry) bool { consider(ent); return true })
	for _, t := range e.tables {
		_ = t.AscendRow(row, func(ent kv.Entry) bool { consider(ent); return true })
	}
	var out []kv.Entry
	for _, col := range order {
		c := newest[col]
		if c.Deleted {
			continue
		}
		out = append(out, kv.Entry{Key: kv.Key{Row: row, Col: col}, Cell: c})
	}
	// order was insertion order over sorted sources; normalize.
	sortEntries(out)
	return out
}

func sortEntries(es []kv.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Key.Less(es[j].Key) })
}

// MemtableBytes returns the current memtable footprint.
func (e *Engine) MemtableBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.mem.Bytes()
}

// MaybeFlush flushes when the memtable exceeds the flush threshold and
// compacts when the table count exceeds MaxTables. It reports whether any
// background work ran.
func (e *Engine) MaybeFlush() (bool, error) {
	e.mu.RLock()
	over := e.mem.Bytes() >= e.cfg.FlushBytes
	tooMany := len(e.tables) > e.cfg.MaxTables
	e.mu.RUnlock()
	if over {
		if err := e.Flush(); err != nil {
			return false, err
		}
	}
	if tooMany {
		if err := e.CompactAll(); err != nil {
			return false, err
		}
	}
	return over || tooMany, nil
}

// Flush captures the memtable into a new SSTable and advances the
// checkpoint to the memtable's max LSN. An empty memtable is a no-op.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mem.Len() == 0 {
		return nil
	}
	entries := e.mem.Snapshot()
	_, maxLSN := e.mem.LSNRange()

	b := sstable.NewBuilder()
	for _, ent := range entries {
		b.Add(ent)
	}
	id := e.nextID
	e.nextID++
	blob := b.Finish()
	if err := e.cfg.Tables.Put(id, blob); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	t, err := sstable.Open(id, blob)
	if err != nil {
		return fmt.Errorf("storage: flush reopen: %w", err)
	}
	e.tables = append([]*sstable.Table{t}, e.tables...)
	if maxLSN > e.checkpoint {
		e.checkpoint = maxLSN
	}
	if err := e.saveManifestLocked(); err != nil {
		return err
	}
	e.mem = memtable.New()
	e.flushes++
	return nil
}

// CompactAll merges every SSTable into one, dropping tombstones (full
// merge), and atomically swaps the manifest.
func (e *Engine) CompactAll() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.tables) <= 1 {
		return nil
	}
	blob, err := sstable.Compact(e.tables, true)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	id := e.nextID
	e.nextID++
	if err := e.cfg.Tables.Put(id, blob); err != nil {
		return fmt.Errorf("storage: compact put: %w", err)
	}
	t, err := sstable.Open(id, blob)
	if err != nil {
		return fmt.Errorf("storage: compact reopen: %w", err)
	}
	old := e.tables
	e.tables = []*sstable.Table{t}
	if err := e.saveManifestLocked(); err != nil {
		return err
	}
	for _, o := range old {
		if err := e.cfg.Tables.Remove(o.ID()); err != nil {
			return fmt.Errorf("storage: compact remove %d: %w", o.ID(), err)
		}
	}
	e.compacts++
	return nil
}

// Tables returns the live tables, newest first.
func (e *Engine) Tables() []*sstable.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]*sstable.Table(nil), e.tables...)
}

// TablesSince returns tables that may contain writes with LSN > after,
// chosen by their max-LSN tags; catch-up ships these when the leader's log
// has been truncated (paper §6.1).
func (e *Engine) TablesSince(after wal.LSN) []*sstable.Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []*sstable.Table
	for _, t := range e.tables {
		if _, max := t.LSNRange(); max > after {
			out = append(out, t)
		}
	}
	return out
}

// EntriesSince returns every entry with LSN > after, from the memtable and
// from tables tagged as overlapping, in key order (duplicates resolved to
// newest). Catch-up uses it to stream a follower back to currency.
func (e *Engine) EntriesSince(after wal.LSN) []kv.Entry {
	e.mu.RLock()
	defer e.mu.RUnlock()
	newest := make(map[kv.Key]kv.Cell)
	consider := func(ent kv.Entry) {
		if ent.Cell.LSN <= after {
			return
		}
		if cur, ok := newest[ent.Key]; !ok || ent.Cell.Newer(cur) {
			newest[ent.Key] = ent.Cell
		}
	}
	e.mem.Ascend(func(ent kv.Entry) bool { consider(ent); return true })
	for _, t := range e.tables {
		if _, max := t.LSNRange(); max <= after {
			continue
		}
		_ = t.Ascend(func(ent kv.Entry) bool { consider(ent); return true })
	}
	out := make([]kv.Entry, 0, len(newest))
	for k, c := range newest {
		out = append(out, kv.Entry{Key: k, Cell: c})
	}
	sortEntries(out)
	return out
}

// Stats reports flush and compaction counts.
func (e *Engine) Stats() (flushes, compacts int64, tables int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.flushes, e.compacts, len(e.tables)
}

// Wipe discards the engine's entire contents — memtable, SSTables, and
// checkpoint — and durably persists the empty manifest. A node re-joining a
// cohort it previously left calls this before catching up from scratch:
// the engine's pre-departure state is stale (deletes that happened while
// the node was out may have had their tombstones compacted away
// cluster-wide, so catch-up cannot mention them) and must not survive.
func (e *Engine) Wipe() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.tables
	e.tables = nil
	e.mem = memtable.New()
	e.checkpoint = 0
	e.appliedLSN = 0
	if err := e.saveManifestLocked(); err != nil {
		return err
	}
	for _, t := range old {
		if err := e.cfg.Tables.Remove(t.ID()); err != nil {
			return fmt.Errorf("storage: wipe remove %d: %w", t.ID(), err)
		}
	}
	return nil
}

// DropMemtable simulates the crash of the volatile state: everything not
// yet flushed is lost, and appliedLSN falls back to the checkpoint. Node
// recovery then replays the log from the checkpoint (paper §6.1).
func (e *Engine) DropMemtable() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mem = memtable.New()
	e.appliedLSN = e.checkpoint
}
