package sstable

import "spinnaker/internal/kv"

// Per-table bloom filter over cell keys, used by the storage engine to
// prune point lookups: a read probes only the tables whose filter (and key
// range) admit the key, instead of binary-searching every table in the LSM.
// The filter is serialized into the table blob and memory-mapped back on
// Open, so it costs one build per flush/compaction and nothing per read
// beyond the hash probes.

const (
	// bloomBitsPerKey ≈ 10 bits/key with 6 hashes gives a ~1% false
	// positive rate — at 8+ tables that turns "probe every table" into
	// "probe ~1 table" for point reads of existing keys, and ~0 for
	// misses.
	bloomBitsPerKey = 10
	bloomHashes     = 6
)

// bloomHash derives the two base hashes for double hashing (Kirsch &
// Mitzenmacher: g_i = h1 + i*h2 preserves the asymptotic false positive
// rate). FNV-1a over row, a separator, then column; the second hash is a
// mixed rotation of the first, forced odd so successive probes never
// collapse onto one bit.
func bloomHash(key kv.Key) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.Row); i++ {
		h = (h ^ uint64(key.Row[i])) * prime64
	}
	h = (h ^ 0xff) * prime64 // separator: ("ab","c") must differ from ("a","bc")
	for i := 0; i < len(key.Col); i++ {
		h = (h ^ uint64(key.Col[i])) * prime64
	}
	h2 = (h>>33 | h<<31) * 0x9E3779B97F4A7C15
	return h, h2 | 1
}

// buildBloom returns the filter bits for n keys; add is invoked by the
// builder per key. An empty table gets an empty filter.
func newBloomBits(n int) []byte {
	if n == 0 {
		return nil
	}
	bits := n * bloomBitsPerKey
	return make([]byte, (bits+7)/8)
}

// bloomAdd sets the key's probe bits in filter.
func bloomAdd(filter []byte, key kv.Key) {
	if len(filter) == 0 {
		return
	}
	nbits := uint64(len(filter)) * 8
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % nbits
		filter[bit/8] |= 1 << (bit % 8)
	}
}

// bloomMayContain reports whether the filter admits key. An empty filter
// admits nothing (the table is empty).
func bloomMayContain(filter []byte, key kv.Key) bool {
	if len(filter) == 0 {
		return false
	}
	nbits := uint64(len(filter)) * 8
	h1, h2 := bloomHash(key)
	for i := uint64(0); i < bloomHashes; i++ {
		bit := (h1 + i*h2) % nbits
		if filter[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
