package dynamo

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"spinnaker/internal/cluster"
	"spinnaker/internal/kv"
	"spinnaker/internal/transport"
)

// Client talks to the baseline store. Requests go to a randomly chosen
// member of the key's cohort, which coordinates the operation — there is
// no leader (§9: "there is no notion of a cohort leader to serialize
// writes, so conflicts can still occur").
type Client struct {
	layout *cluster.Layout
	ep     transport.Endpoint

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a client over its own endpoint.
func NewClient(layout *cluster.Layout, ep transport.Endpoint, seed int64) *Client {
	return &Client{layout: layout, ep: ep, rng: rand.New(rand.NewSource(seed))}
}

// Close releases the client's endpoint.
func (c *Client) Close() { c.ep.Close() }

func (c *Client) coordinator(rangeID uint32) string {
	cohort := c.layout.Cohort(rangeID)
	c.mu.Lock()
	defer c.mu.Unlock()
	return cohort[c.rng.Intn(len(cohort))]
}

// Put writes a column value at the given consistency level and returns the
// assigned timestamp-version.
func (c *Client) Put(row, col string, value []byte, level ConsistencyLevel) (uint64, error) {
	return c.put(writeReq{Row: row, Col: col, Value: value, Level: level})
}

// Delete writes a tombstone at the given consistency level.
func (c *Client) Delete(row, col string, level ConsistencyLevel) error {
	_, err := c.put(writeReq{Row: row, Col: col, Delete: true, Level: level})
	return err
}

func (c *Client) put(req writeReq) (uint64, error) {
	rangeID := c.layout.RangeOf(req.Row)
	resp, err := c.ep.Call(transport.Message{
		To:      c.coordinator(rangeID),
		Kind:    MsgCoordWrite,
		Cohort:  rangeID,
		Payload: encodeWriteReq(req),
	})
	if err != nil {
		return 0, fmt.Errorf("dynamo: write: %w", err)
	}
	if len(resp.Payload) < 9 || resp.Payload[0] != 1 {
		return 0, ErrUnavailable
	}
	return binary.LittleEndian.Uint64(resp.Payload[1:9]), nil
}

// Get reads a column at the given consistency level, returning the value
// and its timestamp-version. Weak reads consult one replica and may be
// stale or reflect lost writes; quorum reads consult two and resolve
// conflicts by timestamp — but, unlike Spinnaker's strong reads, still do
// not guarantee strong consistency (§9).
func (c *Client) Get(row, col string, level ConsistencyLevel) ([]byte, uint64, error) {
	rangeID := c.layout.RangeOf(row)
	resp, err := c.ep.Call(transport.Message{
		To:      c.coordinator(rangeID),
		Kind:    MsgCoordRead,
		Cohort:  rangeID,
		Payload: encodeReadReq(readReq{Row: row, Col: col, Level: level}),
	})
	if err != nil {
		return nil, 0, fmt.Errorf("dynamo: read: %w", err)
	}
	if len(resp.Payload) < 1 {
		return nil, 0, ErrUnavailable
	}
	switch resp.Payload[0] {
	case 0:
		return nil, 0, ErrUnavailable
	case 2:
		return nil, 0, ErrNotFound
	}
	e, _, err := kv.DecodeEntry(resp.Payload[1:])
	if err != nil {
		return nil, 0, err
	}
	if e.Cell.Deleted {
		return nil, 0, ErrNotFound
	}
	return e.Cell.Value, e.Cell.Version, nil
}
