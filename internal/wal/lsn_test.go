package wal

import (
	"testing"
	"testing/quick"
)

func TestMakeLSNRoundTrip(t *testing.T) {
	cases := []struct {
		epoch uint32
		seq   uint64
	}{
		{0, 0}, {1, 0}, {0, 1}, {1, 21}, {2, 30}, {MaxEpoch, MaxSeq},
	}
	for _, c := range cases {
		l := MakeLSN(c.epoch, c.seq)
		if l.Epoch() != c.epoch {
			t.Errorf("MakeLSN(%d,%d).Epoch() = %d", c.epoch, c.seq, l.Epoch())
		}
		if l.Seq() != c.seq {
			t.Errorf("MakeLSN(%d,%d).Seq() = %d", c.epoch, c.seq, l.Seq())
		}
	}
}

func TestLSNOrderingAcrossEpochs(t *testing.T) {
	// Paper App. B: epoch numbers guarantee LSNs in a new epoch exceed
	// every LSN of prior epochs, regardless of sequence numbers.
	if !(MakeLSN(2, 0) > MakeLSN(1, MaxSeq)) {
		t.Fatal("epoch 2 LSNs must exceed all epoch 1 LSNs")
	}
	if !(MakeLSN(1, 21) > MakeLSN(1, 20)) {
		t.Fatal("sequence ordering broken within an epoch")
	}
	if !(MakeLSN(2, 22) > MakeLSN(1, 22)) {
		t.Fatal("epoch must dominate sequence")
	}
}

func TestLSNString(t *testing.T) {
	if got := MakeLSN(1, 21).String(); got != "1.21" {
		t.Errorf("String() = %q, want 1.21", got)
	}
	if got := MakeLSN(2, 30).String(); got != "2.30" {
		t.Errorf("String() = %q, want 2.30", got)
	}
}

func TestLSNNext(t *testing.T) {
	l := MakeLSN(3, 41)
	n := l.Next()
	if n.Epoch() != 3 || n.Seq() != 42 {
		t.Errorf("Next() = %s, want 3.42", n)
	}
}

func TestLSNZero(t *testing.T) {
	var l LSN
	if !l.IsZero() {
		t.Error("zero LSN must report IsZero")
	}
	if MakeLSN(0, 1).IsZero() {
		t.Error("0.1 must not report IsZero")
	}
	if !(MakeLSN(0, 1) > l) {
		t.Error("zero LSN must be smaller than any valid LSN")
	}
}

func TestMakeLSNPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakeLSN must panic on sequence overflow")
		}
	}()
	MakeLSN(1, MaxSeq+1)
}

func TestLSNPropertyRoundTrip(t *testing.T) {
	// Property: decomposing any (epoch, seq) pair recovers the inputs and
	// preserves lexicographic order.
	f := func(e uint16, s uint64) bool {
		seq := s & MaxSeq
		l := MakeLSN(uint32(e), seq)
		return l.Epoch() == uint32(e) && l.Seq() == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}

	order := func(e1, e2 uint16, s1, s2 uint64) bool {
		l1 := MakeLSN(uint32(e1), s1&MaxSeq)
		l2 := MakeLSN(uint32(e2), s2&MaxSeq)
		if e1 != e2 {
			return (l1 < l2) == (e1 < e2)
		}
		return (l1 < l2) == (s1&MaxSeq < s2&MaxSeq)
	}
	if err := quick.Check(order, nil); err != nil {
		t.Error(err)
	}
}
