// spinnaker-server runs a durable Spinnaker cluster on one box: real nodes
// with file-backed logs, metadata, and SSTables under -dir, fronted by a
// line-oriented TCP API that spinnaker-cli (or netcat) speaks. Data
// survives restarts of the process — on startup every node runs local
// recovery from its log, exactly as in the paper's §6.
//
// Usage:
//
//	spinnaker-server -dir /var/lib/spinnaker -nodes 3 -listen 127.0.0.1:7070
//
// Protocol (one request per line, one response per line):
//
//	PUT <row> <col> <value>           -> OK <version>
//	GET <row> <col> [strong|timeline] -> OK <version> <value> | NOTFOUND
//	DEL <row> <col>                   -> OK
//	CPUT <row> <col> <value> <ver>    -> OK <version> | MISMATCH
//	CDEL <row> <col> <ver>            -> OK | MISMATCH
//	ROW <row> [strong|timeline]       -> OK <n>, then n lines "<col> <version> <value>"
//	INCR <row> <col> <delta>          -> OK <newvalue>
//	LEADER <row>                      -> OK <node>
//	NODES                             -> OK <n>, then n lines "<node>"
//	CRASH <node> / RESTART <node>     -> OK   (fault injection)
//	QUIT                              -> closes the connection
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"spinnaker/internal/admin"
	"spinnaker/internal/cluster"
	"spinnaker/internal/coord"
	"spinnaker/internal/core"
	"spinnaker/internal/transport"
)

// server owns the embedded cluster and serves the line protocol.
type server struct {
	layout   *cluster.Layout
	net      *transport.Network
	coordSvc *coord.Service
	stores   map[string]*core.Stores
	mu       sync.Mutex // guards nodes (CRASH/RESTART mutate it per connection)
	nodes    map[string]*core.Node
	cfg      core.Config
	nextCli  int
}

func main() {
	var (
		dir        = flag.String("dir", "", "data directory (required; created if missing)")
		nodes      = flag.Int("nodes", 3, "number of nodes")
		listen     = flag.String("listen", "127.0.0.1:7070", "client listen address")
		httpAddr   = flag.String("http", "", "admin HTTP listen address serving /metrics and /status (empty = disabled)")
		commit     = flag.Duration("commit-period", 100*time.Millisecond, "commit message period")
		noBatch    = flag.Bool("no-proposal-batching", false, "disable the batched replication pipeline (ablation)")
		flushBytes = flag.Int64("flush-bytes", 0, "memtable size in bytes that triggers a flush (0 = default 4MiB)")
		maxTbls    = flag.Int("max-tables", 0, "table count that triggers a compaction round (0 = default 8)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "spinnaker-server: -dir is required")
		os.Exit(2)
	}

	s, err := newServer(*dir, *nodes, *commit, *noBatch, *flushBytes, *maxTbls)
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("http listen: %v", err)
		}
		log.Printf("spinnaker-server: admin plane (/metrics, /status) on http://%s", hln.Addr())
		go func() {
			log.Fatalf("http serve: %v", http.Serve(hln, admin.NewHandler(s.adminSource())))
		}()
	}
	log.Printf("spinnaker-server: %d nodes, data in %s, serving on %s", *nodes, *dir, ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatalf("accept: %v", err)
		}
		go s.serveConn(conn)
	}
}

func newServer(dir string, nodeCount int, commitPeriod time.Duration, noBatch bool, flushBytes int64, maxTables int) (*server, error) {
	names := make([]string, nodeCount)
	for i := range names {
		names[i] = fmt.Sprintf("node%03d", i)
	}
	repl := 3
	if nodeCount < 3 {
		repl = nodeCount
	}
	layout, err := cluster.Uniform(names, 8, repl)
	if err != nil {
		return nil, err
	}
	s := &server{
		layout:   layout,
		net:      transport.NewNetwork(0),
		coordSvc: coord.NewService(2 * time.Second), // the paper's ZK timeout
		stores:   make(map[string]*core.Stores),
		nodes:    make(map[string]*core.Node),
		cfg: core.Config{
			Layout:                  layout,
			CommitPeriod:            commitPeriod,
			DisableProposalBatching: noBatch,
			FlushBytes:              flushBytes,
			MaxTables:               maxTables,
		},
	}
	// Publish the layout: nodes follow the published version (the same
	// mechanism the embedded cluster uses for live reconfiguration).
	pubSess := s.coordSvc.Connect()
	err = core.PublishLayout(pubSess, layout)
	pubSess.Close()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		stores, err := core.NewFileStores(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		s.stores[name] = stores
		if err := s.startNode(name); err != nil {
			return nil, err
		}
	}
	// Wait for initial elections so the first client call succeeds.
	deadline := time.Now().Add(30 * time.Second)
	sess := s.coordSvc.Connect()
	defer sess.Close()
	for _, r := range layout.RangeIDs() {
		for {
			if _, err := sess.Get(fmt.Sprintf("/ranges/%d/leader", r)); err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("range %d never elected a leader", r)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return s, nil
}

func (s *server) startNode(name string) error {
	cfg := s.cfg
	cfg.ID = name
	n, err := core.NewNode(cfg, s.stores[name], s.net.Join(name), s.coordSvc)
	if err != nil {
		return err
	}
	if err := n.Start(); err != nil {
		return err
	}
	s.mu.Lock()
	s.nodes[name] = n
	s.mu.Unlock()
	return nil
}

// adminSource adapts the embedded cluster to the admin HTTP plane: the
// same Source contract the simulation harness feeds, so /metrics and
// /status read identically against either host.
func (s *server) adminSource() admin.Source {
	return admin.Source{
		Nodes: func() []string {
			s.mu.Lock()
			defer s.mu.Unlock()
			names := make([]string, 0, len(s.nodes))
			for name := range s.nodes {
				names = append(names, name)
			}
			return names
		},
		NodeMetrics: func(id string) (core.NodeMetrics, bool) {
			s.mu.Lock()
			n, ok := s.nodes[id]
			s.mu.Unlock()
			if !ok {
				return core.NodeMetrics{}, false
			}
			return n.Metrics(), true
		},
		Layout: func() *cluster.Layout { return s.layout },
		LeaderOf: func(r uint32) string {
			sess := s.coordSvc.Connect()
			defer sess.Close()
			data, err := sess.Get(fmt.Sprintf("/ranges/%d/leader", r))
			if err != nil {
				return ""
			}
			return string(data)
		},
	}
}

func (s *server) newClient() *core.Client {
	s.nextCli++
	ep := s.net.Join(fmt.Sprintf("tcp-client-%d", s.nextCli))
	ep.SetCallTimeout(time.Second)
	return core.NewClient(s.layout, ep, s.coordSvc, int64(s.nextCli))
}

func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	client := s.newClient()
	defer client.Close()
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	out := bufio.NewWriter(conn)
	defer out.Flush()
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			return
		}
		s.execute(client, line, out)
		out.Flush()
	}
}

func consistencyArg(args []string, i int) bool {
	return i >= len(args) || !strings.EqualFold(args[i], "timeline")
}

func (s *server) execute(c *core.Client, line string, out *bufio.Writer) {
	args := strings.Fields(line)
	cmd := strings.ToUpper(args[0])
	fail := func(err error) {
		switch {
		case errors.Is(err, core.ErrNotFound):
			fmt.Fprintln(out, "NOTFOUND")
		case errors.Is(err, core.ErrVersionMismatch):
			fmt.Fprintln(out, "MISMATCH")
		default:
			fmt.Fprintf(out, "ERR %v\n", err)
		}
	}
	need := func(n int) bool {
		if len(args) < n {
			fmt.Fprintf(out, "ERR %s needs %d arguments\n", cmd, n-1)
			return false
		}
		return true
	}
	switch cmd {
	case "PUT":
		if !need(4) {
			return
		}
		v, err := c.Put(args[1], args[2], []byte(args[3]))
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "OK %d\n", v)
	case "GET":
		if !need(3) {
			return
		}
		val, ver, err := c.Get(args[1], args[2], consistencyArg(args, 3))
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "OK %d %s\n", ver, val)
	case "DEL":
		if !need(3) {
			return
		}
		if err := c.Delete(args[1], args[2]); err != nil {
			fail(err)
			return
		}
		fmt.Fprintln(out, "OK")
	case "CPUT":
		if !need(5) {
			return
		}
		ver, err := strconv.ParseUint(args[4], 10, 64)
		if err != nil {
			fmt.Fprintf(out, "ERR bad version %q\n", args[4])
			return
		}
		v, err := c.ConditionalPut(args[1], args[2], []byte(args[3]), ver)
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "OK %d\n", v)
	case "CDEL":
		if !need(4) {
			return
		}
		ver, err := strconv.ParseUint(args[3], 10, 64)
		if err != nil {
			fmt.Fprintf(out, "ERR bad version %q\n", args[3])
			return
		}
		if err := c.ConditionalDelete(args[1], args[2], ver); err != nil {
			fail(err)
			return
		}
		fmt.Fprintln(out, "OK")
	case "ROW":
		if !need(2) {
			return
		}
		entries, err := c.GetRow(args[1], consistencyArg(args, 2))
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "OK %d\n", len(entries))
		for _, e := range entries {
			fmt.Fprintf(out, "%s %d %s\n", e.Key.Col, e.Cell.Version, e.Cell.Value)
		}
	case "INCR":
		if !need(4) {
			return
		}
		delta, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			fmt.Fprintf(out, "ERR bad delta %q\n", args[3])
			return
		}
		n, err := s.increment(c, args[1], args[2], delta)
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "OK %d\n", n)
	case "LEADER":
		if !need(2) {
			return
		}
		sess := s.coordSvc.Connect()
		data, err := sess.Get(fmt.Sprintf("/ranges/%d/leader", s.layout.RangeOf(args[1])))
		sess.Close()
		if err != nil {
			fmt.Fprintln(out, "ERR no leader")
			return
		}
		fmt.Fprintf(out, "OK %s\n", data)
	case "NODES":
		s.mu.Lock()
		names := make([]string, 0, len(s.nodes))
		for name := range s.nodes {
			names = append(names, name)
		}
		s.mu.Unlock()
		fmt.Fprintf(out, "OK %d\n", len(names))
		for _, name := range names {
			fmt.Fprintln(out, name)
		}
	case "CRASH":
		if !need(2) {
			return
		}
		s.mu.Lock()
		n, ok := s.nodes[args[1]]
		delete(s.nodes, args[1])
		s.mu.Unlock()
		if !ok {
			fmt.Fprintf(out, "ERR node %s not running\n", args[1])
			return
		}
		n.Crash()
		fmt.Fprintln(out, "OK")
	case "RESTART":
		if !need(2) {
			return
		}
		s.mu.Lock()
		_, running := s.nodes[args[1]]
		s.mu.Unlock()
		if running {
			fmt.Fprintf(out, "ERR node %s already running\n", args[1])
			return
		}
		if _, ok := s.stores[args[1]]; !ok {
			fmt.Fprintf(out, "ERR unknown node %s\n", args[1])
			return
		}
		if err := s.startNode(args[1]); err != nil {
			fmt.Fprintf(out, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(out, "OK")
	default:
		fmt.Fprintf(out, "ERR unknown command %s\n", cmd)
	}
}

// increment is the §3 read-modify-write loop over a decimal counter column.
func (s *server) increment(c *core.Client, row, col string, delta int64) (int64, error) {
	for {
		var cur int64
		val, ver, err := c.Get(row, col, true)
		switch {
		case err == nil:
			cur, err = strconv.ParseInt(string(val), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("column is not a counter: %q", val)
			}
		case errors.Is(err, core.ErrNotFound):
			cur = 0
		default:
			return 0, err
		}
		next := cur + delta
		_, err = c.ConditionalPut(row, col, []byte(strconv.FormatInt(next, 10)), ver)
		if err == nil {
			return next, nil
		}
		if !errors.Is(err, core.ErrVersionMismatch) {
			return 0, err
		}
	}
}
