// Package green does the same work as hot/red within the rules: static
// error, map-index conversion (compiler-optimized, no allocation),
// pre-sized append, and a call-only local closure that stays on the
// stack.
package green

import "errors"

var errNegative = errors.New("negative total")

type item struct{ b []byte }

// Sum is hot and allocation-clean.
//
//spinnaker:hotpath
func Sum(items []item, lookup map[string]int) (int, []string, error) {
	total := 0
	names := make([]string, 0, len(items))
	for _, it := range items {
		total += lookup[string(it.b)]
		names = append(names, "x")
	}
	positive := func(n int) bool { return n >= 0 }
	if !positive(total) {
		return 0, nil, errNegative
	}
	return total, names, nil
}

// Stamp stores the conversion result — a deliberate copy, allowed.
//
//spinnaker:hotpath
func Stamp(b []byte) string {
	s := string(b)
	return s
}
