package core

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"spinnaker/internal/kv"
	"spinnaker/internal/merkle"
	"spinnaker/internal/wal"
)

// Fuzz harnesses for every wire decoder in proto.go and snapproto.go. Each
// decoder must be total on arbitrary bytes — return an error, never panic,
// and never let a forged count or length field drive an allocation larger
// than the payload that claims it (the hardening these corpora pin; see the
// checked-in testdata/fuzz seeds with forged count fields). On top of
// no-panic, every accepted value must be a codec fixpoint: re-encoding it
// and decoding the result yields an equal value, so the encoder and decoder
// agree on everything the decoder admits.

// fixpoint re-encodes a decoded value and decodes the result, failing if
// the second decode errors or disagrees with the first.
func fixpoint[T any](t *testing.T, first T, enc func(T) []byte, dec func([]byte) (T, error)) {
	t.Helper()
	b := enc(first)
	second, err := dec(b)
	if err != nil {
		t.Fatalf("decoder rejected its own encoder's output: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("decode/encode is not a fixpoint:\n first: %+v\nsecond: %+v", first, second)
	}
}

func fuzzWriteOp() WriteOp {
	return WriteOp{Row: "row-7", Cols: []ColWrite{
		{Col: "a", Value: []byte("hello"), Version: 3},
		{Col: "b", Delete: true, Version: 4},
		{Col: "c", Cond: true, CondVersion: 9, Version: 10, Value: []byte{0, 1, 2}},
	}}
}

func fuzzEntries() []kv.Entry {
	return []kv.Entry{
		{Key: kv.Key{Row: "r1", Col: "c1"}, Cell: kv.Cell{Value: []byte("v"), Version: 2, LSN: 5}},
		{Key: kv.Key{Row: "r2", Col: "c2"}, Cell: kv.Cell{Deleted: true, Version: 7, LSN: 6, Timestamp: 12}},
	}
}

// forgeCount32 returns enc with the little-endian u32 at off overwritten by
// a count far larger than the remaining payload could hold.
func forgeCount32(enc []byte, off int) []byte {
	forged := append([]byte(nil), enc...)
	binary.LittleEndian.PutUint32(forged[off:], 1<<31)
	return forged
}

func FuzzDecodeWriteOp(f *testing.F) {
	f.Add(EncodeWriteOp(nil, fuzzWriteOp()))
	f.Add(EncodeWriteOp(nil, WriteOp{}))
	f.Add([]byte{0, 0, 0xff, 0xff}) // empty row, forged column count
	f.Add(EncodeWriteOp(nil, fuzzWriteOp())[:7])
	f.Fuzz(func(t *testing.T, b []byte) {
		op, n, err := DecodeWriteOp(b)
		if err != nil {
			return
		}
		if n < 4 || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		enc := EncodeWriteOp(nil, op)
		op2, n2, err := DecodeWriteOp(enc)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if !reflect.DeepEqual(op, op2) {
			t.Fatalf("decode/encode is not a fixpoint:\n first: %+v\nsecond: %+v", op, op2)
		}
		// The shared-value variant must accept the same inputs and agree
		// on everything but value aliasing.
		shared, sn, err := decodeWriteOpShared(b)
		if err != nil || sn != n || !reflect.DeepEqual(op, shared) {
			t.Fatalf("shared-value decode disagrees: n=%d err=%v\n  copy: %+v\nshared: %+v", sn, err, op, shared)
		}
	})
}

func FuzzDecodePropose(f *testing.F) {
	f.Add(encodePropose(proposePayload{LSN: 12, CommittedThrough: 11, Op: fuzzWriteOp()}))
	f.Add(encodePropose(proposePayload{})[:15])
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := decodePropose(b)
		if err != nil {
			return
		}
		fixpoint(t, p, encodePropose, decodePropose)
	})
}

func FuzzDecodeProposeBatch(f *testing.F) {
	batch := proposeBatchPayload{CommittedThrough: 41, Recs: []proposeRec{
		{LSN: 42, Op: fuzzWriteOp()},
		{LSN: 43, Op: WriteOp{Row: "x"}},
	}}
	enc := encodeProposeBatch(batch)
	f.Add(enc)
	f.Add(forgeCount32(enc, 8)) // record count far beyond the payload
	f.Add(enc[:len(enc)-3])
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := decodeProposeBatch(b)
		if err != nil {
			return
		}
		b2 := encodeProposeBatch(p)
		p2, err := decodeProposeBatch(b2)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output: %v", err)
		}
		if p.CommittedThrough != p2.CommittedThrough || len(p.Recs) != len(p2.Recs) {
			t.Fatalf("decode/encode is not a fixpoint: %+v vs %+v", p, p2)
		}
		for i := range p.Recs {
			if p.Recs[i].LSN != p2.Recs[i].LSN || !bytes.Equal(p.Recs[i].Raw, p2.Recs[i].Raw) ||
				!reflect.DeepEqual(p.Recs[i].Op, p2.Recs[i].Op) {
				t.Fatalf("record %d not a fixpoint:\n first: %+v\nsecond: %+v", i, p.Recs[i], p2.Recs[i])
			}
		}
	})
}

func FuzzDecodeAck(f *testing.F) {
	f.Add(encodeAck(7, 3))
	f.Add(encodeAck(7, 3)[:8]) // pre-floor ack, still accepted
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		lsn, floor, err := decodeAck(b)
		if err != nil {
			return
		}
		lsn2, floor2, err := decodeAck(encodeAck(lsn, floor))
		if err != nil || lsn2 != lsn || floor2 != floor {
			t.Fatalf("ack not a fixpoint: (%d,%d) vs (%d,%d), err %v", lsn, floor, lsn2, floor2, err)
		}
	})
}

func FuzzDecodeCommitMsg(f *testing.F) {
	f.Add(encodeCommitMsg(9, 4))
	f.Add(encodeCommitMsg(9, 4)[:8])
	f.Fuzz(func(t *testing.T, b []byte) {
		cmt, gc, err := decodeCommitMsg(b)
		if err != nil {
			return
		}
		cmt2, gc2, err := decodeCommitMsg(encodeCommitMsg(cmt, gc))
		if err != nil || cmt2 != cmt || gc2 != gc {
			t.Fatalf("commit not a fixpoint: (%d,%d) vs (%d,%d), err %v", cmt, gc, cmt2, gc2, err)
		}
	})
}

func FuzzDecodeCatchupReq(f *testing.F) {
	f.Add(encodeCatchupReq(catchupReq{Cmt: 5, Ambiguous: []wal.LSN{6, 7}}))
	f.Add(encodeCatchupReq(catchupReq{
		Cmt: 5, SplitPull: true, FilterLow: "100", FilterHigh: "200", NoSnap: true, Empty: true,
	}))
	f.Add(forgeCount32(encodeCatchupReq(catchupReq{Cmt: 1}), 8)) // ambiguous-LSN count
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeCatchupReq(b)
		if err != nil {
			return
		}
		fixpoint(t, r, encodeCatchupReq, decodeCatchupReq)
	})
}

func FuzzDecodeCatchupResp(f *testing.F) {
	enc := encodeCatchupResp(catchupResp{Status: 1, Cmt: 8, Present: []wal.LSN{9}, Entries: fuzzEntries()})
	f.Add(enc)
	f.Add(forgeCount32(encodeCatchupResp(catchupResp{Cmt: 2}), 13)) // entry count
	f.Add(enc[:20])
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeCatchupResp(b)
		if err != nil {
			return
		}
		fixpoint(t, r, encodeCatchupResp, decodeCatchupResp)
	})
}

func FuzzDecodeWriteResult(f *testing.F) {
	f.Add(encodeWriteResult(writeResult{Status: 2, Detail: "cond failed", Versions: []uint64{1, 2}}))
	f.Add([]byte{0, 0xff, 0xff, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeWriteResult(b)
		if err != nil {
			return
		}
		fixpoint(t, r, encodeWriteResult, decodeWriteResult)
	})
}

func FuzzDecodeGetReq(f *testing.F) {
	f.Add(encodeGetReq(getReq{Row: "r", Col: "c", Consistent: true}))
	f.Add(encodeGetReq(getReq{}))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeGetReq(b)
		if err != nil {
			return
		}
		fixpoint(t, r, encodeGetReq, decodeGetReq)
	})
}

func FuzzDecodeGetResp(f *testing.F) {
	f.Add(encodeGetResp(getResp{Status: 1, Value: []byte("v"), Version: 6}))
	f.Add(forgeCount32(encodeGetResp(getResp{}), 9)) // value length
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeGetResp(b)
		if err != nil {
			return
		}
		fixpoint(t, r, encodeGetResp, decodeGetResp)
	})
}

func FuzzDecodeRowResp(f *testing.F) {
	enc := encodeRowResp(rowResp{Status: 1, Entries: fuzzEntries()})
	f.Add(enc)
	f.Add(forgeCount32(encodeRowResp(rowResp{}), 1)) // entry count
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeRowResp(b)
		if err != nil {
			return
		}
		fixpoint(t, r, encodeRowResp, decodeRowResp)
	})
}

func FuzzDecodeSnapManifest(f *testing.F) {
	m := snapManifest{
		Status:  1,
		Cmt:     20,
		SnapCmt: 15,
		Present: []wal.LSN{16},
		Tables: []snapTableMeta{
			{ID: 3, Size: 4096, CRC: 0xdeadbeef, MinLSN: 1, MaxLSN: 15, MinRow: "a", MaxRow: "m"},
		},
		Cuts:   []string{"", "h"},
		Leaves: []merkle.Digest{{1, 2, 3}},
	}
	enc := encodeSnapManifest(m)
	f.Add(enc)
	f.Add(forgeCount32(encodeSnapManifest(snapManifest{}), 21)) // table count
	f.Add(enc[:30])
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeSnapManifest(b)
		if err != nil {
			return
		}
		fixpoint(t, m, encodeSnapManifest, decodeSnapManifest)
	})
}

func FuzzDecodeTableChunkReq(f *testing.F) {
	f.Add(encodeTableChunkReq(tableChunkReq{Table: 5, Offset: 1 << 16}))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := decodeTableChunkReq(b)
		if err != nil {
			return
		}
		fixpoint(t, r, encodeTableChunkReq, decodeTableChunkReq)
	})
}

func FuzzDecodeTableChunk(f *testing.F) {
	f.Add(encodeTableChunk(tableChunk{Status: 1, Table: 5, Offset: 0, Total: 9, CRC: 7, Data: []byte("chunkdata")}))
	f.Add(forgeCount32(encodeTableChunk(tableChunk{}), 21)) // data length
	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := decodeTableChunk(b)
		if err != nil {
			return
		}
		fixpoint(t, c, encodeTableChunk, decodeTableChunk)
	})
}
