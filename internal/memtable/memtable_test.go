package memtable

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

func TestSealedMemtableRejectsApplies(t *testing.T) {
	m := New()
	m.Apply(kv.Key{Row: "r", Col: "c"}, kv.Cell{Value: []byte("v"), LSN: wal.MakeLSN(1, 1)})
	m.Seal()
	// Reads keep working on a sealed memtable (it stays in the engine's
	// read path while its SSTable is built).
	if c, ok := m.Get(kv.Key{Row: "r", Col: "c"}); !ok || string(c.Value) != "v" {
		t.Fatalf("Get after seal = %q,%v", c.Value, ok)
	}
	if got := len(m.Snapshot()); got != 1 {
		t.Fatalf("Snapshot after seal = %d entries", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Apply to a sealed memtable did not panic")
		}
	}()
	m.Apply(kv.Key{Row: "r2", Col: "c"}, kv.Cell{Value: []byte("late"), LSN: wal.MakeLSN(1, 2)})
}

func cellAt(seq uint64, val string) kv.Cell {
	return kv.Cell{Value: []byte(val), LSN: wal.MakeLSN(1, seq), Version: seq}
}

func TestMemtableApplyGet(t *testing.T) {
	m := New()
	k := kv.Key{Row: "r1", Col: "c1"}
	if _, ok := m.Get(k); ok {
		t.Fatal("empty table returned a value")
	}
	m.Apply(k, cellAt(1, "v1"))
	c, ok := m.Get(k)
	if !ok || string(c.Value) != "v1" {
		t.Fatalf("Get = %q,%v", c.Value, ok)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMemtableNewerWins(t *testing.T) {
	m := New()
	k := kv.Key{Row: "r", Col: "c"}
	m.Apply(k, cellAt(5, "newer"))
	m.Apply(k, cellAt(3, "older")) // replay of an older write: ignored
	c, _ := m.Get(k)
	if string(c.Value) != "newer" {
		t.Errorf("older write overwrote newer: %q", c.Value)
	}
	m.Apply(k, cellAt(9, "newest"))
	c, _ = m.Get(k)
	if string(c.Value) != "newest" {
		t.Errorf("newer write ignored: %q", c.Value)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1 (same key)", m.Len())
	}
}

func TestMemtableIdempotentReplay(t *testing.T) {
	// Local recovery re-applies log records "in an idempotent way" (§6.1).
	m := New()
	k := kv.Key{Row: "r", Col: "c"}
	cell := cellAt(7, "value")
	m.Apply(k, cell)
	m.Apply(k, cell)
	m.Apply(k, cell)
	if m.Len() != 1 {
		t.Errorf("Len = %d after triple apply", m.Len())
	}
	c, _ := m.Get(k)
	if c.LSN != cell.LSN || string(c.Value) != "value" {
		t.Errorf("replay corrupted cell: %+v", c)
	}
}

func TestMemtableTombstone(t *testing.T) {
	m := New()
	k := kv.Key{Row: "r", Col: "c"}
	m.Apply(k, cellAt(1, "v"))
	m.Apply(k, kv.Cell{Deleted: true, LSN: wal.MakeLSN(1, 2), Version: 2})
	c, ok := m.Get(k)
	if !ok || !c.Deleted {
		t.Errorf("tombstone not surfaced: ok=%v cell=%+v", ok, c)
	}
}

func TestMemtableAscendSorted(t *testing.T) {
	m := New()
	keys := []kv.Key{
		{Row: "b", Col: "2"}, {Row: "a", Col: "9"}, {Row: "c", Col: "1"},
		{Row: "a", Col: "1"}, {Row: "b", Col: "1"},
	}
	for i, k := range keys {
		m.Apply(k, cellAt(uint64(i+1), "v"))
	}
	var got []kv.Key
	m.Ascend(func(e kv.Entry) bool {
		got = append(got, e.Key)
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("Ascend yielded %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Less(got[j]) }) {
		t.Errorf("Ascend out of order: %v", got)
	}
}

func TestMemtableAscendEarlyStop(t *testing.T) {
	m := New()
	for i := 0; i < 10; i++ {
		m.Apply(kv.Key{Row: fmt.Sprintf("r%02d", i), Col: "c"}, cellAt(uint64(i+1), "v"))
	}
	var n int
	m.Ascend(func(kv.Entry) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestMemtableAscendRow(t *testing.T) {
	m := New()
	m.Apply(kv.Key{Row: "a", Col: "1"}, cellAt(1, "a1"))
	m.Apply(kv.Key{Row: "b", Col: "1"}, cellAt(2, "b1"))
	m.Apply(kv.Key{Row: "b", Col: "2"}, cellAt(3, "b2"))
	m.Apply(kv.Key{Row: "c", Col: "1"}, cellAt(4, "c1"))
	var cols []string
	m.AscendRow("b", func(e kv.Entry) bool {
		cols = append(cols, e.Key.Col)
		return true
	})
	if len(cols) != 2 || cols[0] != "1" || cols[1] != "2" {
		t.Errorf("AscendRow(b) = %v", cols)
	}
	var none []string
	m.AscendRow("zz", func(e kv.Entry) bool {
		none = append(none, e.Key.Col)
		return true
	})
	if len(none) != 0 {
		t.Errorf("AscendRow(zz) = %v", none)
	}
}

func TestMemtableLSNRange(t *testing.T) {
	m := New()
	min, max := m.LSNRange()
	if !min.IsZero() || !max.IsZero() {
		t.Error("empty table has nonzero LSN range")
	}
	m.Apply(kv.Key{Row: "a", Col: "c"}, cellAt(5, "v"))
	m.Apply(kv.Key{Row: "b", Col: "c"}, cellAt(3, "v"))
	m.Apply(kv.Key{Row: "c", Col: "c"}, cellAt(9, "v"))
	min, max = m.LSNRange()
	if min != wal.MakeLSN(1, 3) || max != wal.MakeLSN(1, 9) {
		t.Errorf("LSNRange = %s,%s want 1.3,1.9", min, max)
	}
}

func TestMemtableBytesTracking(t *testing.T) {
	m := New()
	if m.Bytes() != 0 {
		t.Error("empty table has bytes")
	}
	m.Apply(kv.Key{Row: "row", Col: "col"}, cellAt(1, "0123456789"))
	b1 := m.Bytes()
	if b1 <= 0 {
		t.Fatalf("Bytes = %d after insert", b1)
	}
	// Overwriting with a larger value grows the accounting.
	m.Apply(kv.Key{Row: "row", Col: "col"}, cellAt(2, "01234567890123456789"))
	if m.Bytes() <= b1 {
		t.Errorf("Bytes did not grow on larger overwrite: %d -> %d", b1, m.Bytes())
	}
}

func TestMemtableSnapshotSorted(t *testing.T) {
	m := New()
	for i := 9; i >= 0; i-- {
		m.Apply(kv.Key{Row: fmt.Sprintf("r%d", i), Col: "c"}, cellAt(uint64(10-i), "v"))
	}
	snap := m.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("Snapshot len = %d", len(snap))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Key.Less(snap[j].Key) }) {
		t.Error("snapshot not sorted")
	}
}

func TestMemtableConcurrentReadersWriters(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := kv.Key{Row: fmt.Sprintf("r%d", i%37), Col: fmt.Sprintf("c%d", w)}
				m.Apply(k, cellAt(uint64(w*1000+i+1), "v"))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Get(kv.Key{Row: fmt.Sprintf("r%d", i%37), Col: "c0"})
				m.Ascend(func(kv.Entry) bool { return false })
			}
		}()
	}
	wg.Wait()
	if m.Len() != 37*4 {
		t.Errorf("Len = %d, want %d", m.Len(), 37*4)
	}
}

func TestMemtablePropertyMatchesMap(t *testing.T) {
	// Property: a memtable behaves like a map when writes arrive with
	// increasing LSNs.
	f := func(ops []struct {
		Row, Col uint8
		Val      uint16
	}) bool {
		m := New()
		ref := make(map[kv.Key]string)
		for i, op := range ops {
			k := kv.Key{Row: fmt.Sprintf("r%d", op.Row%8), Col: fmt.Sprintf("c%d", op.Col%4)}
			v := fmt.Sprintf("v%d", op.Val)
			m.Apply(k, kv.Cell{Value: []byte(v), LSN: wal.MakeLSN(1, uint64(i+1))})
			ref[k] = v
		}
		if m.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			c, ok := m.Get(k)
			if !ok || string(c.Value) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
