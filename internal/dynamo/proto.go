package dynamo

import (
	"encoding/binary"
	"fmt"
)

// writeReq is a client write handed to a coordinator.
type writeReq struct {
	Row, Col string
	Value    []byte
	Delete   bool
	Level    ConsistencyLevel
}

func encodeWriteReq(r writeReq) []byte {
	var s [4]byte
	buf := []byte{byte(r.Level)}
	if r.Delete {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	binary.LittleEndian.PutUint16(s[:2], uint16(len(r.Row)))
	buf = append(buf, s[:2]...)
	buf = append(buf, r.Row...)
	binary.LittleEndian.PutUint16(s[:2], uint16(len(r.Col)))
	buf = append(buf, s[:2]...)
	buf = append(buf, r.Col...)
	binary.LittleEndian.PutUint32(s[:4], uint32(len(r.Value)))
	buf = append(buf, s[:4]...)
	return append(buf, r.Value...)
}

func decodeWriteReq(b []byte) (writeReq, error) {
	var r writeReq
	if len(b) < 4 {
		return r, fmt.Errorf("dynamo: write req truncated")
	}
	r.Level = ConsistencyLevel(b[0])
	r.Delete = b[1] == 1
	off := 2
	rl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+rl+2 {
		return r, fmt.Errorf("dynamo: write req row truncated")
	}
	r.Row = string(b[off : off+rl])
	off += rl
	cl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+cl+4 {
		return r, fmt.Errorf("dynamo: write req col truncated")
	}
	r.Col = string(b[off : off+cl])
	off += cl
	vl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if len(b) < off+vl {
		return r, fmt.Errorf("dynamo: write req value truncated")
	}
	if vl > 0 {
		r.Value = append([]byte(nil), b[off:off+vl]...)
	}
	return r, nil
}

// readReq is a client read handed to a coordinator.
type readReq struct {
	Row, Col string
	Level    ConsistencyLevel
}

func encodeReadReq(r readReq) []byte {
	return append([]byte{byte(r.Level)}, encodeKey(r.Row, r.Col)...)
}

func decodeReadReq(b []byte) (readReq, error) {
	var r readReq
	if len(b) < 1 {
		return r, fmt.Errorf("dynamo: read req truncated")
	}
	r.Level = ConsistencyLevel(b[0])
	var err error
	r.Row, r.Col, err = decodeKey(b[1:])
	return r, err
}

func encodeKey(row, col string) []byte {
	var s [2]byte
	var buf []byte
	binary.LittleEndian.PutUint16(s[:], uint16(len(row)))
	buf = append(buf, s[:]...)
	buf = append(buf, row...)
	binary.LittleEndian.PutUint16(s[:], uint16(len(col)))
	buf = append(buf, s[:]...)
	buf = append(buf, col...)
	return buf
}

func decodeKey(b []byte) (row, col string, err error) {
	if len(b) < 2 {
		return "", "", fmt.Errorf("dynamo: key truncated")
	}
	rl := int(binary.LittleEndian.Uint16(b))
	off := 2
	if len(b) < off+rl+2 {
		return "", "", fmt.Errorf("dynamo: key row truncated")
	}
	row = string(b[off : off+rl])
	off += rl
	cl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+cl {
		return "", "", fmt.Errorf("dynamo: key col truncated")
	}
	return row, string(b[off : off+cl]), nil
}
