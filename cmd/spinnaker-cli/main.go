// spinnaker-cli talks to a spinnaker-server over its line protocol, either
// as a one-shot command or as an interactive REPL.
//
// Usage:
//
//	spinnaker-cli -addr 127.0.0.1:7070 PUT user42 email x@example.com
//	spinnaker-cli -addr 127.0.0.1:7070            # interactive
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "spinnaker-server address")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect %s: %v\n", *addr, err)
		os.Exit(1)
	}
	defer conn.Close()
	server := bufio.NewScanner(conn)
	server.Buffer(make([]byte, 0, 1<<20), 1<<20)

	send := func(line string) bool {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			fmt.Fprintf(os.Stderr, "send: %v\n", err)
			return false
		}
		if !server.Scan() {
			return false
		}
		resp := server.Text()
		fmt.Println(resp)
		// Multi-line responses: "OK <n>" after ROW/NODES.
		fields := strings.Fields(line)
		if len(fields) > 0 {
			cmd := strings.ToUpper(fields[0])
			if (cmd == "ROW" || cmd == "NODES") && strings.HasPrefix(resp, "OK ") {
				var n int
				fmt.Sscanf(resp, "OK %d", &n)
				for i := 0; i < n && server.Scan(); i++ {
					fmt.Println(server.Text())
				}
			}
		}
		return true
	}

	if args := flag.Args(); len(args) > 0 {
		if !send(strings.Join(args, " ")) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("spinnaker-cli: PUT/GET/DEL/CPUT/CDEL/ROW/INCR/LEADER/NODES/CRASH/RESTART; ctrl-d to exit")
	stdin := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !stdin.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(stdin.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		if !send(line) {
			return
		}
	}
}
