package sim

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spinnaker/internal/admin"
)

// TestAdminEndpoints drives a live cluster through writes and reads and
// asserts the /status and /metrics endpoints expose the resulting
// per-range throughput, commit lag, and storage stats over real HTTP.
func TestAdminEndpoints(t *testing.T) {
	sc, err := NewSpinnakerCluster(Options{Nodes: 3, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	cli := sc.NewClient()
	for i := 0; i < 200; i++ {
		if _, err := cli.Put(sc.Key(i), "v", []byte("x")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		if _, _, err := cli.Get(sc.Key(i), "v", true); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}

	srv := httptest.NewServer(admin.NewHandler(sc.AdminSource()))
	defer srv.Close()

	// /status: layout-wide JSON view with live per-range numbers.
	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/status returned %d", resp.StatusCode)
	}
	var st admin.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if st.LayoutVersion == 0 || st.Replication != 3 {
		t.Fatalf("bad layout header: %+v", st)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("want 3 nodes, got %d", len(st.Nodes))
	}
	var writes int64
	leaders := 0
	for _, r := range st.Ranges {
		writes += r.Writes
		if r.Leader != "" {
			leaders++
		}
	}
	if writes < 200 {
		t.Fatalf("status shows %d writes, want >= 200", writes)
	}
	if leaders != len(st.Ranges) {
		t.Fatalf("only %d/%d ranges show a leader", leaders, len(st.Ranges))
	}
	for _, n := range st.Nodes {
		if n.WALAppends == 0 {
			t.Fatalf("node %s shows zero WAL appends", n.ID)
		}
	}

	// /metrics: the text exposition must carry the same series.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	for _, want := range []string{
		"spinnaker_layout_version",
		"spinnaker_range_writes_total",
		"spinnaker_range_write_latency_seconds",
		"spinnaker_range_commit_lag_seqs",
		"spinnaker_range_storage_flushes_total",
		"spinnaker_node_wal_forces_total",
		`role="leader"`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	// Strong reads were served and counted on some leader line.
	if !strings.Contains(string(text), "spinnaker_range_strong_reads_total") {
		t.Fatalf("/metrics missing strong read counter")
	}
}
