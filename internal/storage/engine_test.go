package storage

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"spinnaker/internal/kv"
	"spinnaker/internal/sstable"
	"spinnaker/internal/wal"
)

func newTestEngine(t *testing.T) (*Engine, Config) {
	t.Helper()
	cfg := Config{
		Tables:     sstable.NewMemTableStore(),
		Meta:       wal.NewMemMetaStore(),
		Cohort:     0,
		FlushBytes: 1 << 20,
		MaxTables:  4,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e, cfg
}

func put(e *Engine, row, col, val string, seq uint64) {
	e.Apply(kv.Entry{
		Key:  kv.Key{Row: row, Col: col},
		Cell: kv.Cell{Value: []byte(val), LSN: wal.MakeLSN(1, seq), Version: seq},
	})
}

func TestEngineGetFromMemtable(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "c", "v", 1)
	c, ok := e.Get(kv.Key{Row: "r", Col: "c"})
	if !ok || string(c.Value) != "v" {
		t.Fatalf("Get = %q,%v", c.Value, ok)
	}
	if e.AppliedLSN() != wal.MakeLSN(1, 1) {
		t.Errorf("AppliedLSN = %s", e.AppliedLSN())
	}
}

func TestEngineGetAcrossFlush(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "v1", 1)
	put(e, "r2", "c", "v2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r3", "c", "v3", 3)

	for i, want := range []string{"v1", "v2", "v3"} {
		c, ok := e.Get(kv.Key{Row: fmt.Sprintf("r%d", i+1), Col: "c"})
		if !ok || string(c.Value) != want {
			t.Errorf("Get(r%d) = %q,%v want %q", i+1, c.Value, ok, want)
		}
	}
	if e.Checkpoint() != wal.MakeLSN(1, 2) {
		t.Errorf("Checkpoint = %s, want 1.2", e.Checkpoint())
	}
}

func TestEngineNewestWinsAcrossLayers(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "c", "old", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r", "c", "mid", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r", "c", "new", 3)
	c, _ := e.Get(kv.Key{Row: "r", Col: "c"})
	if string(c.Value) != "new" {
		t.Errorf("Get = %q, want new (memtable newest)", c.Value)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	c, _ = e.Get(kv.Key{Row: "r", Col: "c"})
	if string(c.Value) != "new" {
		t.Errorf("after flush Get = %q (newest table must win)", c.Value)
	}
}

func TestEngineGetRowMergesLayers(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "a", "1", 1)
	put(e, "r", "b", "2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r", "b", "2new", 3)
	put(e, "r", "c", "3", 4)
	row := e.GetRow("r")
	if len(row) != 3 {
		t.Fatalf("GetRow = %d cols", len(row))
	}
	want := map[string]string{"a": "1", "b": "2new", "c": "3"}
	for _, ent := range row {
		if want[ent.Key.Col] != string(ent.Cell.Value) {
			t.Errorf("col %s = %q, want %q", ent.Key.Col, ent.Cell.Value, want[ent.Key.Col])
		}
	}
}

func TestEngineGetRowHidesTombstones(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "a", "1", 1)
	put(e, "r", "b", "2", 2)
	e.Apply(kv.Entry{Key: kv.Key{Row: "r", Col: "a"},
		Cell: kv.Cell{Deleted: true, LSN: wal.MakeLSN(1, 3), Version: 3}})
	row := e.GetRow("r")
	if len(row) != 1 || row[0].Key.Col != "b" {
		t.Errorf("GetRow = %v, want only col b", row)
	}
	// Get still exposes the tombstone for version checks.
	c, ok := e.Get(kv.Key{Row: "r", Col: "a"})
	if !ok || !c.Deleted {
		t.Errorf("Get tombstone = %+v,%v", c, ok)
	}
}

func TestEngineSurvivesReopen(t *testing.T) {
	e, cfg := newTestEngine(t)
	put(e, "r1", "c", "v1", 1)
	put(e, "r2", "c", "v2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "volatile", "c", "gone", 3) // never flushed

	// Crash: memtable is lost; SSTables and manifest persist.
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.Get(kv.Key{Row: "volatile", Col: "c"}); ok {
		t.Error("unflushed write survived crash without log replay")
	}
	c, ok := e2.Get(kv.Key{Row: "r1", Col: "c"})
	if !ok || string(c.Value) != "v1" {
		t.Errorf("flushed write lost: %q,%v", c.Value, ok)
	}
	if e2.Checkpoint() != wal.MakeLSN(1, 2) {
		t.Errorf("Checkpoint after reopen = %s", e2.Checkpoint())
	}
	if e2.AppliedLSN() != wal.MakeLSN(1, 2) {
		t.Errorf("AppliedLSN after reopen = %s", e2.AppliedLSN())
	}
}

func TestEngineCompactAll(t *testing.T) {
	e, cfg := newTestEngine(t)
	for i := 0; i < 3; i++ {
		put(e, fmt.Sprintf("r%d", i), "c", fmt.Sprintf("v%d", i), uint64(i*2+1))
		put(e, "shared", "c", fmt.Sprintf("gen%d", i), uint64(i*2+2))
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	e.Apply(kv.Entry{Key: kv.Key{Row: "r0", Col: "c"},
		Cell: kv.Cell{Deleted: true, LSN: wal.MakeLSN(1, 50), Version: 50}})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := e.CompactAll(sstable.DropAllTombstones); err != nil {
		t.Fatal(err)
	}
	_, _, tables := e.Stats()
	if tables != 1 {
		t.Fatalf("tables after compact = %d", tables)
	}
	// Tombstoned row disappears entirely after a full compaction.
	if _, ok := e.Get(kv.Key{Row: "r0", Col: "c"}); ok {
		t.Error("tombstoned key still visible after full compaction")
	}
	c, _ := e.Get(kv.Key{Row: "shared", Col: "c"})
	if string(c.Value) != "gen2" {
		t.Errorf("shared = %q, want gen2", c.Value)
	}
	// Old table blobs were removed from the store.
	ids, _ := cfg.Tables.List()
	if len(ids) != 1 {
		t.Errorf("store holds %d blobs after compaction", len(ids))
	}
	// State still correct across reopen.
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ = e2.Get(kv.Key{Row: "shared", Col: "c"})
	if string(c.Value) != "gen2" {
		t.Errorf("after reopen shared = %q", c.Value)
	}
}

func TestEngineMaybeFlush(t *testing.T) {
	cfg := Config{
		Tables:     sstable.NewMemTableStore(),
		Meta:       wal.NewMemMetaStore(),
		FlushBytes: 64, // tiny threshold
		MaxTables:  2,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flushed bool
	for i := 0; i < 20; i++ {
		put(e, fmt.Sprintf("row%02d", i), "c", "0123456789abcdef", uint64(i+1))
		didFlush, didCompact, err := e.MaybeFlush(0)
		if err != nil {
			t.Fatal(err)
		}
		flushed = flushed || didFlush || didCompact
	}
	if !flushed {
		t.Error("MaybeFlush never triggered")
	}
	_, _, tables := e.Stats()
	if tables > cfg.MaxTables+1 {
		t.Errorf("compaction did not bound tables: %d", tables)
	}
}

func TestEngineEntriesSince(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "v1", 1)
	put(e, "r2", "c", "v2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r3", "c", "v3", 3)
	put(e, "r2", "c", "v2new", 4)

	// LSN > 1.1 covers r2@1.2, r3@1.3, r2@1.4; duplicates collapse to the
	// newest per key, so r2 appears once with v2new.
	ents := e.EntriesSince(wal.MakeLSN(1, 1))
	if len(ents) != 2 {
		t.Fatalf("EntriesSince(1.1) = %d entries, want 2", len(ents))
	}
	got := map[string]string{}
	for _, ent := range ents {
		got[ent.Key.Row] = string(ent.Cell.Value)
	}
	if got["r2"] != "v2new" || got["r3"] != "v3" {
		t.Errorf("EntriesSince = %v", got)
	}
	if _, ok := got["r1"]; ok {
		t.Error("EntriesSince included LSN ≤ after")
	}

	all := e.EntriesSince(0)
	if len(all) != 3 { // r1, r2 (newest), r3
		t.Errorf("EntriesSince(0) = %d entries", len(all))
	}
}

func TestEngineTablesSince(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "v", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r2", "c", "v", 5)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(e.TablesSince(wal.MakeLSN(1, 3))); n != 1 {
		t.Errorf("TablesSince(1.3) = %d tables, want 1", n)
	}
	if n := len(e.TablesSince(0)); n != 2 {
		t.Errorf("TablesSince(0) = %d tables, want 2", n)
	}
	if n := len(e.TablesSince(wal.MakeLSN(1, 9))); n != 0 {
		t.Errorf("TablesSince(1.9) = %d tables, want 0", n)
	}
}

func TestEngineDropMemtable(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "flushed", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r2", "c", "volatile", 2)
	e.DropMemtable()
	if _, ok := e.Get(kv.Key{Row: "r2", Col: "c"}); ok {
		t.Error("volatile write survived DropMemtable")
	}
	if _, ok := e.Get(kv.Key{Row: "r1", Col: "c"}); !ok {
		t.Error("flushed write lost")
	}
	if e.AppliedLSN() != e.Checkpoint() {
		t.Errorf("AppliedLSN %s != Checkpoint %s", e.AppliedLSN(), e.Checkpoint())
	}
}

func TestEngineFlushEmptyIsNoop(t *testing.T) {
	e, _ := newTestEngine(t)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	flushes, _, tables := e.Stats()
	if flushes != 0 || tables != 0 {
		t.Errorf("empty flush produced work: flushes=%d tables=%d", flushes, tables)
	}
}

// failingMeta fails the next `failPuts` manifest saves, simulating a crash
// between the blob Put and the manifest save.
type failingMeta struct {
	wal.MetaStore
	failPuts int
}

func (f *failingMeta) Put(key string, val []byte) error {
	if f.failPuts > 0 {
		f.failPuts--
		return fmt.Errorf("injected meta failure")
	}
	return f.MetaStore.Put(key, val)
}

// failingTables fails Remove calls, simulating a crash after a
// compaction's manifest save but before its old blobs are removed.
type failingTables struct {
	sstable.TableStore
	failRemoves bool
}

func (f *failingTables) Remove(id uint64) error {
	if f.failRemoves {
		return fmt.Errorf("injected remove failure")
	}
	return f.TableStore.Remove(id)
}

// manifestIDs returns the table ids the durable manifest references.
func manifestIDs(t *testing.T, cfg Config) map[uint64]bool {
	t.Helper()
	raw, ok, err := cfg.Meta.Get(manifestKey(cfg.Cohort))
	if err != nil || !ok {
		t.Fatalf("manifest read: ok=%v err=%v", ok, err)
	}
	m, err := decodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64]bool)
	for _, id := range m.tableIDs {
		out[id] = true
	}
	return out
}

func TestOpenSweepsBlobOrphanedByManifestCrash(t *testing.T) {
	meta := &failingMeta{MetaStore: wal.NewMemMetaStore()}
	cfg := Config{Tables: sstable.NewMemTableStore(), Meta: meta, FlushBytes: 1 << 20, MaxTables: 4}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	put(e, "r1", "c", "v1", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Crash point: the flush writes its blob, then the manifest save
	// dies. The blob is now unreferenced.
	put(e, "r2", "c", "v2", 2)
	meta.failPuts = 1
	if err := e.Flush(); err == nil {
		t.Fatal("flush with failing manifest save succeeded")
	}
	ids, _ := cfg.Tables.List()
	if len(ids) != 2 {
		t.Fatalf("expected orphan blob to exist pre-sweep: store has %v", ids)
	}

	// "Restart": Open over the same stores sweeps the orphan.
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, _ = cfg.Tables.List()
	ref := manifestIDs(t, cfg)
	if len(ids) != len(ref) {
		t.Fatalf("sweep left store %v vs manifest %v", ids, ref)
	}
	for _, id := range ids {
		if !ref[id] {
			t.Fatalf("unreferenced blob %d survived sweep", id)
		}
	}
	// The unflushed write is gone (volatile), the flushed one survives.
	if c, ok := e2.Get(kv.Key{Row: "r1", Col: "c"}); !ok || string(c.Value) != "v1" {
		t.Errorf("flushed write lost across crash: %q,%v", c.Value, ok)
	}
}

func TestOpenSweepsBlobsOrphanedByCompactionCrash(t *testing.T) {
	tables := &failingTables{TableStore: sstable.NewMemTableStore()}
	cfg := Config{Tables: tables, Meta: wal.NewMemMetaStore(), FlushBytes: 1 << 20, MaxTables: 4}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		put(e, fmt.Sprintf("r%d", i), "c", "v", uint64(i+1))
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Crash point: compaction saves the new manifest but dies before
	// removing its input blobs.
	tables.failRemoves = true
	if err := e.CompactAll(0); err != nil {
		t.Fatal(err)
	}
	ids, _ := tables.List()
	if len(ids) != 4 { // 3 inputs + merged output
		t.Fatalf("expected input blobs to linger: store has %v", ids)
	}
	tables.failRemoves = false

	if _, err := Open(cfg); err != nil {
		t.Fatal(err)
	}
	ids, _ = tables.List()
	ref := manifestIDs(t, cfg)
	if len(ids) != len(ref) {
		t.Fatalf("sweep left store %v vs manifest %v", ids, ref)
	}
}

func TestMaybeFlushReportsFlushWhenCompactionFails(t *testing.T) {
	meta := &failingMeta{MetaStore: wal.NewMemMetaStore()}
	cfg := Config{Tables: sstable.NewMemTableStore(), Meta: meta, FlushBytes: 1, MaxTables: 1}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	put(e, "r1", "c", "v1", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r2", "c", "v2", 2)

	// One successful manifest save for the flush, then the compaction's
	// save fails: the flush must still be reported (its checkpoint
	// advance drives log truncation in core's flush daemon).
	cpBefore := e.Checkpoint()
	meta.MetaStore = guardMeta{inner: meta.MetaStore, s: &struct{ done bool }{}}
	flushed, compacted, merr := e.MaybeFlush(0)
	if merr == nil {
		t.Fatal("expected compaction error")
	}
	if !flushed {
		t.Error("flush ran but was not reported")
	}
	if compacted {
		t.Error("failed compaction reported as run")
	}
	if e.Checkpoint() <= cpBefore {
		t.Error("successful flush did not advance the checkpoint")
	}
	if count, last := e.MaintenanceErrors(); count != 1 || last == nil {
		t.Errorf("MaintenanceErrors = %d,%v, want the compaction failure recorded", count, last)
	}
}

func TestClosedEngineRefusesMaintenanceButServesReads(t *testing.T) {
	e, cfg := newTestEngine(t)
	put(e, "r1", "c", "v1", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r2", "c", "v2", 2)
	e.Close()

	// Maintenance is a no-op after Close: no new blobs, no manifest
	// writes (a successor engine over the same stores owns them now).
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.MaybeFlush(0); err != nil {
		t.Fatal(err)
	}
	if err := e.CompactAll(0); err != nil {
		t.Fatal(err)
	}
	flushes, compacts, _ := e.Stats()
	if flushes != 1 || compacts != 0 {
		t.Errorf("maintenance ran after Close: flushes=%d compacts=%d", flushes, compacts)
	}
	ids, _ := cfg.Tables.List()
	if len(ids) != 1 {
		t.Errorf("blob written after Close: %v", ids)
	}
	// In-memory serving still works (a retiring replica may still answer
	// in-flight reads).
	if c, ok := e.Get(kv.Key{Row: "r2", Col: "c"}); !ok || string(c.Value) != "v2" {
		t.Errorf("read after Close = %q,%v", c.Value, ok)
	}
}

// guardMeta lets the first Put through and fails the second.
type guardMeta struct {
	inner wal.MetaStore
	s     *struct{ done bool }
}

func (g guardMeta) Put(key string, val []byte) error {
	if g.s.done {
		return fmt.Errorf("injected second-put failure")
	}
	g.s.done = true
	return g.inner.Put(key, val)
}
func (g guardMeta) Get(key string) ([]byte, bool, error) { return g.inner.Get(key) }
func (g guardMeta) Delete(key string) error              { return g.inner.Delete(key) }
func (g guardMeta) Keys(prefix string) ([]string, error) { return g.inner.Keys(prefix) }

func TestCompactionKeepsTombstonesAboveWatermark(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "keep", "c", "v", 1)
	put(e, "drop", "c", "v", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	e.Apply(kv.Entry{Key: kv.Key{Row: "drop", Col: "c"},
		Cell: kv.Cell{Deleted: true, LSN: wal.MakeLSN(1, 3), Version: 3}})
	e.Apply(kv.Entry{Key: kv.Key{Row: "keep", Col: "c"},
		Cell: kv.Cell{Deleted: true, LSN: wal.MakeLSN(1, 4), Version: 4}})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	// Watermark between the two deletes: only the older tombstone (and
	// its shadowed value) may be garbage-collected.
	if err := e.CompactAll(wal.MakeLSN(1, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Get(kv.Key{Row: "drop", Col: "c"}); ok {
		t.Error("tombstone at the watermark not garbage-collected")
	}
	c, ok := e.Get(kv.Key{Row: "keep", Col: "c"})
	if !ok || !c.Deleted {
		t.Errorf("tombstone above the watermark dropped: %+v,%v", c, ok)
	}
	// EntriesSince still ships the surviving delete to laggards.
	var sawKeep bool
	for _, ent := range e.EntriesSince(wal.MakeLSN(1, 3)) {
		if ent.Key.Row == "keep" && ent.Cell.Deleted {
			sawKeep = true
		}
	}
	if !sawKeep {
		t.Error("EntriesSince lost the retained tombstone")
	}
}

func TestIncrementalCompactionPrunesAndPreservesNewestWins(t *testing.T) {
	cfg := Config{
		Tables: sstable.NewMemTableStore(), Meta: wal.NewMemMetaStore(),
		FlushBytes: 1 << 20, MaxTables: 3, CompactFanIn: 3,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for gen := 0; gen < 6; gen++ {
		for i := 0; i < 8; i++ {
			seq++
			put(e, fmt.Sprintf("row%02d", i), "c", fmt.Sprintf("g%d", gen), seq)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.MaybeFlush(0); err != nil {
			t.Fatal(err)
		}
	}
	_, compacts, tables := e.Stats()
	if compacts == 0 {
		t.Fatal("incremental compaction never ran")
	}
	if tables > cfg.MaxTables+1 {
		t.Errorf("table count unbounded: %d", tables)
	}
	for i := 0; i < 8; i++ {
		c, ok := e.Get(kv.Key{Row: fmt.Sprintf("row%02d", i), Col: "c"})
		if !ok || string(c.Value) != "g5" {
			t.Errorf("row%02d = %q,%v want g5 (newest generation)", i, c.Value, ok)
		}
	}
}

func TestPointReadsPruneTables(t *testing.T) {
	e, _ := newTestEngine(t)
	// Disjoint key ranges per table: the range tags alone prune probes.
	seq := uint64(0)
	for gen := 0; gen < 4; gen++ {
		for i := 0; i < 32; i++ {
			seq++
			put(e, fmt.Sprintf("t%d-row%02d", gen, i), "c", "v", seq)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for gen := 0; gen < 4; gen++ {
		for i := 0; i < 32; i++ {
			if _, ok := e.Get(kv.Key{Row: fmt.Sprintf("t%d-row%02d", gen, i), Col: "c"}); !ok {
				t.Fatalf("key t%d-row%02d lost", gen, i)
			}
		}
	}
	probes, pruned := e.ReadStats()
	if pruned == 0 {
		t.Fatalf("no probes pruned (%d probes)", probes)
	}
	// Disjoint ranges: each hit should prune nearly every other table.
	if float64(pruned) < 0.5*float64(probes) {
		t.Errorf("weak pruning: %d of %d probes pruned", pruned, probes)
	}
	// Misses are pruned by the bloom filter even inside the key range.
	probes0, pruned0 := e.ReadStats()
	for i := 0; i < 128; i++ {
		if _, ok := e.Get(kv.Key{Row: fmt.Sprintf("t1-row%02d", i%32), Col: fmt.Sprintf("absent%d", i)}); ok {
			t.Fatal("absent key found")
		}
	}
	probes1, pruned1 := e.ReadStats()
	if got, want := pruned1-pruned0, (probes1-probes0)*9/10; got < want {
		t.Errorf("bloom pruned %d of %d miss probes, want ≥ %d", got, probes1-probes0, want)
	}
}

// gatedTables signals when a Put enters and then blocks it until released,
// freezing a flush or compaction in the middle of its blob-store I/O.
type gatedTables struct {
	sstable.TableStore
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedTables) Put(id uint64, blob []byte) error {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.TableStore.Put(id, blob)
}

// TestReadsAndAppliesProceedDuringFlushIO pins the tentpole property
// directly: with a flush frozen inside its blob-store write, reads and
// applies still complete (the pre-PR engine held the exclusive engine lock
// across the entire SSTable build and store I/O, so this test would hang).
func TestReadsAndAppliesProceedDuringFlushIO(t *testing.T) {
	gate := &gatedTables{
		TableStore: sstable.NewMemTableStore(),
		entered:    make(chan struct{}),
		release:    make(chan struct{}),
	}
	cfg := Config{Tables: gate, Meta: wal.NewMemMetaStore(), FlushBytes: 1 << 20, MaxTables: 4}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	put(e, "r1", "c", "v1", 1)

	flushDone := make(chan error, 1)
	go func() { flushDone <- e.Flush() }()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flush never reached the blob store")
	}

	// The flush is now parked inside Tables.Put. Reads must serve the
	// sealed memtable, and applies must land in the fresh active one.
	opsDone := make(chan struct{})
	go func() {
		defer close(opsDone)
		if c, ok := e.Get(kv.Key{Row: "r1", Col: "c"}); !ok || string(c.Value) != "v1" {
			t.Errorf("Get during flush I/O = %q,%v", c.Value, ok)
		}
		put(e, "r2", "c", "v2", 2)
		if c, ok := e.Get(kv.Key{Row: "r2", Col: "c"}); !ok || string(c.Value) != "v2" {
			t.Errorf("Get of write applied during flush I/O = %q,%v", c.Value, ok)
		}
		if row := e.GetRow("r1"); len(row) != 1 {
			t.Errorf("GetRow during flush I/O = %d entries", len(row))
		}
	}()
	select {
	case <-opsDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reads/applies blocked while flush held the blob store (stop-the-world regression)")
	}

	close(gate.release)
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	// Both writes visible after the swap; the flushed one from its table.
	for i, want := range []string{"v1", "v2"} {
		c, ok := e.Get(kv.Key{Row: fmt.Sprintf("r%d", i+1), Col: "c"})
		if !ok || string(c.Value) != want {
			t.Errorf("after flush r%d = %q,%v", i+1, c.Value, ok)
		}
	}
	if e.Checkpoint() != wal.MakeLSN(1, 1) {
		t.Errorf("checkpoint = %s, want 1.1 (only the sealed memtable flushed)", e.Checkpoint())
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := manifest{nextID: 42, checkpoint: wal.MakeLSN(2, 7), tableIDs: []uint64{3, 9, 12}}
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.nextID != 42 || got.checkpoint != wal.MakeLSN(2, 7) || len(got.tableIDs) != 3 || got.tableIDs[2] != 12 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := decodeManifest(nil); err == nil {
		t.Error("nil manifest accepted")
	}
	if _, err := decodeManifest(encodeManifest(m)[:21]); err == nil {
		t.Error("truncated manifest accepted")
	}
	// A forged count must fail validation instead of driving a huge
	// allocation (and 20+8*n computed in int would overflow on 32-bit).
	forged := encodeManifest(m)
	binary.LittleEndian.PutUint32(forged[16:20], 0xFFFFFFFF)
	if _, err := decodeManifest(forged); err == nil {
		t.Error("forged table count accepted")
	}
	forged = encodeManifest(manifest{})
	binary.LittleEndian.PutUint32(forged[16:20], 1<<28)
	if _, err := decodeManifest(forged); err == nil {
		t.Error("oversized table count accepted")
	}
}
