// Package lin records operation histories from concurrent clients and
// checks them for linearizability against the datastore's register +
// conditional-put model (§3 of the paper: get / put / conditionalPut /
// delete on a single key, with version numbers assigned by the system).
//
// The workflow mirrors Jepsen-style testing: a Recorder collects
// invoke/ok/fail/info events from concurrent workers while a nemesis
// injects faults; afterwards, Check searches for a legal sequential
// witness of the completed history. Because the datastore's operations
// touch exactly one row, the history decomposes per key (linearizability
// is local: a history is linearizable iff each per-object subhistory is),
// which keeps the NP-hard search tractable. Each per-key subhistory is
// checked with the Wing & Gong linearization search, with Lowe's
// memoization of (linearized-set, state) pairs.
package lin

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the single-key operations of the model.
type Kind uint8

const (
	// Get reads the key's value and version.
	Get Kind = iota
	// Put writes a value unconditionally; the system assigns a version.
	Put
	// CondPut writes a value only if the key's current version equals
	// CondVer (0 = only if the key does not exist).
	CondPut
	// Delete removes the key.
	Delete
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case CondPut:
		return "condput"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Outcome classifies how an operation completed.
type Outcome uint8

const (
	// Pending: the operation never completed (treated like Unknown).
	Pending Outcome = iota
	// OK: the operation completed with the recorded result.
	OK
	// Failed: the operation definitely did not take effect; it is
	// excluded from the history.
	Failed
	// Unknown: the outcome is ambiguous (timeout, unavailable after the
	// write may have been sequenced). The operation may take effect at
	// any point after its invocation, including after every other
	// completed operation.
	Unknown
)

// Op is one operation on a single key: its inputs and, for OK outcomes,
// its outputs.
type Op struct {
	Kind Kind
	Key  string

	// Inputs.
	Value   string // Put/CondPut payload
	CondVer uint64 // CondPut expected version

	// Outputs, valid for OK outcomes.
	OutValue string // Get: value read
	OutVer   uint64 // version read (Get) or assigned (Put/CondPut); 0 = not recorded
	NotFound bool   // Get: the key was absent
	Mismatch bool   // CondPut: the version check failed (no effect)
}

func (o Op) String() string {
	switch o.Kind {
	case Get:
		if o.NotFound {
			return fmt.Sprintf("get(%s) -> not-found", o.Key)
		}
		return fmt.Sprintf("get(%s) -> %q v%d", o.Key, o.OutValue, o.OutVer)
	case Put:
		return fmt.Sprintf("put(%s, %q) -> v%d", o.Key, o.Value, o.OutVer)
	case CondPut:
		if o.Mismatch {
			return fmt.Sprintf("condput(%s, %q, if v%d) -> mismatch", o.Key, o.Value, o.CondVer)
		}
		return fmt.Sprintf("condput(%s, %q, if v%d) -> v%d", o.Key, o.Value, o.CondVer, o.OutVer)
	case Delete:
		return fmt.Sprintf("delete(%s)", o.Key)
	default:
		return fmt.Sprintf("op(%d, %s)", o.Kind, o.Key)
	}
}

// Operation is one recorded invocation. Invoke and Return are logical
// timestamps from the recorder's clock: an operation that returned before
// another was invoked has Return < Invoke of the other, so the recorded
// partial order is exactly the real-time order linearizability must
// respect. Unknown operations keep Return = math.MaxInt64 — they stay
// concurrent with everything after their invocation.
type Operation struct {
	Client  int
	Op      Op
	Invoke  int64
	Return  int64
	Outcome Outcome
}

// Note is a timestamped annotation (nemesis actions, phase markers)
// interleaved with the history for debugging failed checks.
type Note struct {
	At   int64
	Text string
}

// Recorder is a concurrent-safe history recorder. One logical clock stamps
// invocations, returns, and notes, giving a total order consistent with
// real time within the process.
type Recorder struct {
	clock atomic.Int64

	mu    sync.Mutex
	ops   []*Operation
	notes []Note
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// PendingOp is the handle to an invoked, not-yet-completed operation.
type PendingOp struct {
	r  *Recorder
	op *Operation
}

// Invoke records the start of an operation; complete it with exactly one
// of OK, Fail, or Unknown.
func (r *Recorder) Invoke(client int, op Op) *PendingOp {
	o := &Operation{
		Client:  client,
		Op:      op,
		Invoke:  r.clock.Add(1),
		Return:  math.MaxInt64,
		Outcome: Pending,
	}
	r.mu.Lock()
	r.ops = append(r.ops, o)
	r.mu.Unlock()
	return &PendingOp{r: r, op: o}
}

// Result carries an operation's outputs into OK.
type Result struct {
	Value    string
	Version  uint64
	NotFound bool
	Mismatch bool
}

// OK completes the operation successfully with its outputs.
func (p *PendingOp) OK(res Result) {
	ret := p.r.clock.Add(1)
	p.r.mu.Lock()
	p.op.Op.OutValue = res.Value
	p.op.Op.OutVer = res.Version
	p.op.Op.NotFound = res.NotFound
	p.op.Op.Mismatch = res.Mismatch
	p.op.Outcome = OK
	p.op.Return = ret
	p.r.mu.Unlock()
}

// Fail completes the operation as definitely-without-effect; it will be
// excluded from the checked history.
func (p *PendingOp) Fail() {
	ret := p.r.clock.Add(1)
	p.r.mu.Lock()
	p.op.Outcome = Failed
	p.op.Return = ret
	p.r.mu.Unlock()
}

// Unknown completes the operation with an ambiguous outcome: it may or may
// not take effect, at any point after its invocation.
func (p *PendingOp) Unknown() {
	p.r.mu.Lock()
	p.op.Outcome = Unknown
	p.r.mu.Unlock()
}

// Note records a timestamped annotation.
func (r *Recorder) Note(format string, args ...interface{}) {
	at := r.clock.Add(1)
	r.mu.Lock()
	r.notes = append(r.notes, Note{At: at, Text: fmt.Sprintf(format, args...)})
	r.mu.Unlock()
}

// Ops returns a snapshot of every recorded operation.
func (r *Recorder) Ops() []*Operation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Operation(nil), r.ops...)
}

// Notes returns a snapshot of the recorded annotations.
func (r *Recorder) Notes() []Note {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Note(nil), r.notes...)
}

// timeline is one renderable event for FormatKey.
type timeline struct {
	at   int64
	text string
}

// FormatKey renders one key's subhistory (and the interleaved notes) in
// invocation order, for failure reports.
func (r *Recorder) FormatKey(key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var evs []timeline
	for _, o := range r.ops {
		if o.Op.Key != key {
			continue
		}
		outcome := ""
		switch o.Outcome {
		case Failed:
			outcome = " [failed]"
		case Unknown, Pending:
			outcome = " [unknown]"
		}
		evs = append(evs, timeline{
			at:   o.Invoke,
			text: fmt.Sprintf("c%d %s%s (t%d..t%s)", o.Client, o.Op, outcome, o.Invoke, retString(o.Return)),
		})
	}
	for _, n := range r.notes {
		evs = append(evs, timeline{at: n.At, text: "-- " + n.Text})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.text)
		b.WriteByte('\n')
	}
	return b.String()
}

func retString(t int64) string {
	if t == math.MaxInt64 {
		return "∞"
	}
	return fmt.Sprint(t)
}
