package transport

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// LinkFaults configures the fault plane of a directed link. The simulated
// network's base guarantee is TCP-like reliable in-order delivery (the
// assumption the paper's replication protocol is built on, Appendix A.1);
// the fault plane deliberately breaks that guarantee below the protocol so
// nemesis scenarios can exercise the failure space between "healthy" and
// "partitioned": lossy links (a TCP connection reset mid-stream drops its
// in-flight data), duplicated deliveries (a retransmit racing a reconnect),
// reordering (messages split across connections), and jittered latency
// (congested or degraded links).
//
// All probabilities are per message, evaluated on the link's delivery
// goroutine from a per-link RNG seeded deterministically from the network's
// fault seed and the link's endpoints — for a fixed seed, fault
// configuration, and per-link message sequence, the fault decisions are
// reproducible.
type LinkFaults struct {
	// DropProb is the probability a message is silently dropped in
	// flight.
	DropProb float64
	// DupProb is the probability a message is delivered twice
	// back-to-back.
	DupProb float64
	// ReorderProb is the probability a message is held back and
	// delivered after its successor on the link (or after ReorderHold if
	// no successor arrives in time).
	ReorderProb float64
	// Jitter adds a uniformly random extra delay in [0, Jitter) to each
	// message on top of the network's base propagation delay.
	Jitter time.Duration
}

// ReorderHold bounds how long a reordered message waits for a successor to
// overtake it before being delivered anyway.
const ReorderHold = 2 * time.Millisecond

// SetFaultSeed sets the seed from which every link derives its fault RNG.
// Call it before traffic starts: links lazily created afterwards use the
// new seed, but links that already carried messages keep their RNG.
func (n *Network) SetFaultSeed(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultSeed = seed
}

// SetDefaultFaults applies a fault configuration to every link that has no
// per-link override. The zero value restores clean TCP-like delivery.
func (n *Network) SetDefaultFaults(f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultFaults = f
}

// SetLinkFaults overrides the fault configuration of the directed link
// from → to.
func (n *Network) SetLinkFaults(from, to string, f LinkFaults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkFaults[[2]string{from, to}] = f
}

// ClearLinkFaults removes a directed link's override, returning it to the
// network default.
func (n *Network) ClearLinkFaults(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.linkFaults, [2]string{from, to})
}

// ClearFaults removes the default and every per-link fault configuration.
// Partitions are separate; see HealAll.
func (n *Network) ClearFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaultFaults = LinkFaults{}
	n.linkFaults = make(map[[2]string]LinkFaults)
}

// PartitionOneWay cuts the directed link from → to only: from's messages
// to to are dropped while to can still reach from. One-way partitions are
// the asymmetric failure mode (half-open connections, asymmetric routing
// loss) that symmetric Partition cannot express.
func (n *Network) PartitionOneWay(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cutDir[[2]string{from, to}] = true
}

// HealOneWay restores the directed link from → to.
func (n *Network) HealOneWay(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cutDir, [2]string{from, to})
}

// faultsFor resolves the fault configuration of the directed link
// from → to: the per-link override if present, else the network default.
func (n *Network) faultsFor(from, to string) LinkFaults {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.linkFaults[[2]string{from, to}]; ok {
		return f
	}
	return n.defaultFaults
}

// cutLocked reports whether messages from → to are partitioned away, by
// the symmetric cut set or the directed one; callers hold n.mu.
//
//spinnaker:locked(mu)
func (n *Network) cutLocked(from, to string) bool {
	return n.cut[pairKey(from, to)] || n.cutDir[[2]string{from, to}]
}

// linkSeed derives a link's fault-RNG seed from the network seed and the
// link's endpoints, so every link draws an independent but reproducible
// stream.
func linkSeed(seed int64, from, to string) int64 {
	h := fnv.New64a()
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	return seed ^ int64(h.Sum64())
}

func newLinkRNG(seed int64, from, to string) *rand.Rand {
	return rand.New(rand.NewSource(linkSeed(seed, from, to)))
}
