// Package sstable implements the immutable on-disk tables that memtables
// are flushed to (paper §4.1, following Bigtable's design): sorted by key
// and column for efficient access, indexed, and tagged with the min and max
// LSN of the writes they contain so the replication layer can serve
// catch-up requests from SSTables when the log has been rolled over
// (paper §6.1).
package sstable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

const (
	magic        = 0x55AB1E00 // "SSTABLE"
	footerSize   = 8 + 8 + 4 + 4 + 4 + 4
	indexEvery   = 16 // sparse index: one entry per indexEvery records
	formatErrMsg = "sstable: malformed table"
)

// ErrMalformed is returned when a table blob fails validation.
var ErrMalformed = errors.New(formatErrMsg)

// Table is an immutable sorted run of entries, fully resident as one blob.
type Table struct {
	id     uint64
	data   []byte
	index  []indexEnt
	count  int
	minLSN wal.LSN
	maxLSN wal.LSN
}

type indexEnt struct {
	key kv.Key
	off uint32
}

// Builder accumulates sorted entries and serializes a Table.
type Builder struct {
	entries []kv.Entry
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add appends an entry. Entries may be added in any order; Finish sorts
// them. Duplicate keys keep the newest cell.
func (b *Builder) Add(e kv.Entry) { b.entries = append(b.entries, e) }

// Len returns the number of entries added so far.
func (b *Builder) Len() int { return len(b.entries) }

// Finish serializes the accumulated entries into a table blob.
func (b *Builder) Finish() []byte {
	sort.SliceStable(b.entries, func(i, j int) bool {
		return b.entries[i].Key.Less(b.entries[j].Key)
	})
	// Collapse duplicates, newest wins.
	dedup := b.entries[:0]
	for _, e := range b.entries {
		if n := len(dedup); n > 0 && dedup[n-1].Key.Compare(e.Key) == 0 {
			if e.Cell.Newer(dedup[n-1].Cell) {
				dedup[n-1] = e
			}
			continue
		}
		dedup = append(dedup, e)
	}
	b.entries = dedup

	var (
		data   []byte
		idx    []uint32
		minLSN wal.LSN
		maxLSN wal.LSN
	)
	for i, e := range b.entries {
		if i%indexEvery == 0 {
			idx = append(idx, uint32(len(data)))
		}
		data = kv.EncodeEntry(data, e)
		if l := e.Cell.LSN; !l.IsZero() {
			if minLSN.IsZero() || l < minLSN {
				minLSN = l
			}
			if l > maxLSN {
				maxLSN = l
			}
		}
	}
	indexOff := uint32(len(data))
	var scratch [4]byte
	for _, off := range idx {
		binary.LittleEndian.PutUint32(scratch[:], off)
		data = append(data, scratch[:]...)
	}
	footer := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(footer[0:8], uint64(minLSN))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(maxLSN))
	binary.LittleEndian.PutUint32(footer[16:20], uint32(len(b.entries)))
	binary.LittleEndian.PutUint32(footer[20:24], indexOff)
	binary.LittleEndian.PutUint32(footer[24:28], uint32(len(idx)))
	binary.LittleEndian.PutUint32(footer[28:32], magic)
	return append(data, footer...)
}

// Open parses a table blob produced by Builder.Finish.
func Open(id uint64, blob []byte) (*Table, error) {
	if len(blob) < footerSize {
		return nil, fmt.Errorf("%w: too short", ErrMalformed)
	}
	footer := blob[len(blob)-footerSize:]
	if binary.LittleEndian.Uint32(footer[28:32]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	t := &Table{
		id:     id,
		minLSN: wal.LSN(binary.LittleEndian.Uint64(footer[0:8])),
		maxLSN: wal.LSN(binary.LittleEndian.Uint64(footer[8:16])),
		count:  int(binary.LittleEndian.Uint32(footer[16:20])),
	}
	indexOff := binary.LittleEndian.Uint32(footer[20:24])
	indexLen := int(binary.LittleEndian.Uint32(footer[24:28]))
	if int(indexOff)+indexLen*4 > len(blob)-footerSize {
		return nil, fmt.Errorf("%w: index out of bounds", ErrMalformed)
	}
	t.data = blob[:indexOff]
	t.index = make([]indexEnt, indexLen)
	for i := 0; i < indexLen; i++ {
		off := binary.LittleEndian.Uint32(blob[int(indexOff)+i*4:])
		if int(off) > len(t.data) {
			return nil, fmt.Errorf("%w: index entry out of bounds", ErrMalformed)
		}
		e, _, err := kv.DecodeEntry(t.data[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		t.index[i] = indexEnt{key: e.Key, off: off}
	}
	return t, nil
}

// ID returns the table's identifier.
func (t *Table) ID() uint64 { return t.id }

// Len returns the number of entries.
func (t *Table) Len() int { return t.count }

// LSNRange returns the min and max LSN tags (paper §6.1: "each SSTable is
// tagged with the min and max LSN of the writes that it contains").
func (t *Table) LSNRange() (min, max wal.LSN) { return t.minLSN, t.maxLSN }

// Bytes returns the serialized blob size (data + index, without footer).
func (t *Table) Bytes() int { return len(t.data) }

// Get returns the cell stored for key.
func (t *Table) Get(key kv.Key) (kv.Cell, bool) {
	if len(t.index) == 0 {
		return kv.Cell{}, false
	}
	// Find the last index entry with key ≤ target.
	i := sort.Search(len(t.index), func(i int) bool {
		return key.Less(t.index[i].key)
	}) - 1
	if i < 0 {
		return kv.Cell{}, false
	}
	off := int(t.index[i].off)
	for scanned := 0; off < len(t.data) && scanned < indexEvery; scanned++ {
		e, n, err := kv.DecodeEntry(t.data[off:])
		if err != nil {
			return kv.Cell{}, false
		}
		switch c := e.Key.Compare(key); {
		case c == 0:
			return e.Cell, true
		case c > 0:
			return kv.Cell{}, false
		}
		off += n
	}
	return kv.Cell{}, false
}

// Ascend calls fn for each entry in key order until fn returns false.
func (t *Table) Ascend(fn func(e kv.Entry) bool) error {
	off := 0
	for off < len(t.data) {
		e, n, err := kv.DecodeEntry(t.data[off:])
		if err != nil {
			return fmt.Errorf("sstable: scan: %w", err)
		}
		if !fn(e) {
			return nil
		}
		off += n
	}
	return nil
}

// AscendRow calls fn for each column of row in column order.
func (t *Table) AscendRow(row string, fn func(e kv.Entry) bool) error {
	return t.Ascend(func(e kv.Entry) bool {
		if e.Key.Row < row {
			return true
		}
		if e.Key.Row > row {
			return false
		}
		return fn(e)
	})
}

// Entries returns all entries; catch-up uses it to ship whole tables.
func (t *Table) Entries() ([]kv.Entry, error) {
	out := make([]kv.Entry, 0, t.count)
	err := t.Ascend(func(e kv.Entry) bool {
		out = append(out, e)
		return true
	})
	return out, err
}
