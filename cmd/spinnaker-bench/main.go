// spinnaker-bench regenerates the paper's evaluation tables and figures
// (§9 and Appendix D) from the command line, with adjustable measurement
// windows for longer, lower-variance runs than the go test harness.
//
// Usage:
//
//	spinnaker-bench -all                 # every experiment, paper order
//	spinnaker-bench -exp figure9        # one experiment
//	spinnaker-bench -exp table1 -point 500ms -nodes 10
//	spinnaker-bench -list               # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"spinnaker/internal/bench"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment in paper order")
		exp     = flag.String("exp", "", "experiment name (see -list)")
		list    = flag.Bool("list", false, "list experiment names and exit")
		point   = flag.Duration("point", 300*time.Millisecond, "measurement window per load point")
		nodes   = flag.Int("nodes", 6, "cluster size for single-cluster experiments")
		rows    = flag.Int("rows", 2000, "preloaded key-space size")
		value   = flag.Int("value", 4096, "value size in bytes (paper: 4KB)")
		threads = flag.String("threads", "1,2,4,8,16,32", "comma-separated client thread counts")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		jsonOut = flag.String("json", "", "run the perf-trajectory suite and write a BENCH_*.json report to this path")
		smoke   = flag.Bool("smoke", false, "with -json: minimal measurement windows (CI schema/guard check, numbers not meaningful)")
		guard   = flag.String("guard", "", "compare the two newest committed BENCH_*.json files in this directory and fail on regression")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile of the experiment run to this file")
	)
	flag.Parse()

	if *guard != "" {
		if err := bench.Guard(*guard, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "regression guard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.Lookup("allocs").WriteTo(f, 0)
		}()
	}

	if *list {
		for _, name := range bench.Names {
			fmt.Println(name)
		}
		return
	}

	cfg := bench.Config{
		PointDuration: *point,
		Nodes:         *nodes,
		Rows:          *rows,
		ValueSize:     *value,
	}
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad -threads entry %q\n", part)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, n)
	}
	if !*quiet {
		cfg.Progress = func(line string) { fmt.Fprintf(os.Stderr, "  .. %s\n", line) }
	}

	if *jsonOut != "" {
		if *smoke {
			cfg.PointDuration = 60 * time.Millisecond
		}
		report, err := bench.Trajectory(cfg, *smoke)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trajectory: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteReport(*jsonOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d scenarios)\n", *jsonOut, len(report.Scenarios))
		return
	}

	var names []string
	switch {
	case *all:
		names = bench.Names
	case *exp != "":
		names = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "need -all, -exp <name>, -json <file>, or -guard <dir>; see -list")
		os.Exit(2)
	}

	for _, name := range names {
		start := time.Now()
		table, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s(completed in %v)\n", table.Format(), time.Since(start).Round(time.Millisecond))
	}
}
