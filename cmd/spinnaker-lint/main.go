// Command spinnaker-lint runs the repo's custom static-analysis suite:
// four analyzers (detcheck, aliascheck, lockcheck, hotpath) that
// machine-check invariants the test suite can only probe — seed-pure
// simulation code, the zero-copy codec aliasing contract, lock
// discipline, and hot-path allocation hygiene. See ARCHITECTURE.md
// "Invariants".
//
// Usage:
//
//	go run ./cmd/spinnaker-lint ./...
//	go run ./cmd/spinnaker-lint -json ./...
//	go run ./cmd/spinnaker-lint -analyzers detcheck,hotpath ./internal/sim
//
// Findings print as file:line:col: analyzer: message. Per-line
// suppressions use the staticcheck convention:
//
//	//lint:ignore spinnaker/<analyzer> <reason>
//
// on (or directly above) the flagged line. Suppressed findings are
// counted and reported but do not fail the run; any unsuppressed
// finding exits 1 (type-check or usage errors exit 2).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"spinnaker/internal/analysis"
)

// Report is the -json output schema (stable; version bumps on change).
type Report struct {
	Version    string             `json:"version"`
	Findings   []analysis.Finding `json:"findings"`
	Suppressed []analysis.Finding `json:"suppressed"`
	// Packages is the number of packages loaded and analyzed.
	Packages int `json:"packages"`
}

// ReportVersion identifies the -json schema.
const ReportVersion = "spinnaker-lint/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spinnaker-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (spinnaker-lint/v1 schema)")
	analyzers := fs.String("analyzers", "", "comma-separated analyzer subset (default: all of "+strings.Join(analysis.AnalyzerNames, ",")+")")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "spinnaker-lint:", err)
		return 2
	}
	var dirs []string
	for _, pat := range fs.Args() {
		switch {
		case pat == "./..." || pat == "...":
			dirs = nil // whole module
		default:
			dirs = append(dirs, strings.TrimSuffix(pat, "/..."))
		}
	}

	cfg := analysis.DefaultConfig()
	if *analyzers != "" {
		known := map[string]bool{}
		for _, a := range analysis.AnalyzerNames {
			known[a] = true
		}
		for _, a := range strings.Split(*analyzers, ",") {
			a = strings.TrimSpace(a)
			if !known[a] {
				fmt.Fprintf(stderr, "spinnaker-lint: unknown analyzer %q (have %s)\n", a, strings.Join(analysis.AnalyzerNames, ", "))
				return 2
			}
			cfg.Analyzers = append(cfg.Analyzers, a)
		}
	}

	mod, err := analysis.LoadModule(root, dirs...)
	if err != nil {
		fmt.Fprintln(stderr, "spinnaker-lint:", err)
		return 2
	}
	res, err := analysis.Run(mod, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "spinnaker-lint:", err)
		return 2
	}

	if *jsonOut {
		rep := Report{
			Version:    ReportVersion,
			Findings:   res.Findings,
			Suppressed: res.Suppressed,
			Packages:   len(mod.Packages),
		}
		if rep.Findings == nil {
			rep.Findings = []analysis.Finding{}
		}
		if rep.Suppressed == nil {
			rep.Suppressed = []analysis.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "spinnaker-lint:", err)
			return 2
		}
	} else {
		for _, f := range res.Findings {
			fmt.Fprintln(stdout, rel(root, f))
		}
		fmt.Fprintf(stdout, "spinnaker-lint: %d packages, %d findings, %d suppressed\n",
			len(mod.Packages), len(res.Findings), len(res.Suppressed))
		for _, f := range res.Suppressed {
			fmt.Fprintf(stdout, "  suppressed: %s (%s)\n", rel(root, f), f.SuppressReason)
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// rel shortens a finding's file path relative to the module root for
// readable terminal output.
func rel(root string, f analysis.Finding) string {
	if r, err := filepath.Rel(root, f.Pos.File); err == nil && !strings.HasPrefix(r, "..") {
		f.Pos.File = r
	}
	return f.String()
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
