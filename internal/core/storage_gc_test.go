package core

import (
	"testing"
	"time"
)

// storageGCTweak shrinks the storage thresholds so flushes and compaction
// rounds happen within the test.
func storageGCTweak(cfg *Config) {
	cfg.FlushBytes = 2 << 10
	cfg.MaxTables = 2
	cfg.FlushInterval = 5 * time.Millisecond
	cfg.SegmentBytes = 16 << 10
}

// TestLaggardFollowerDeleteNotResurrected is the regression test for the
// laggard-follower delete-resurrection bug: a follower crashes holding a
// committed value, the leader deletes the row and — pre-fix — a full
// compaction garbage-collects the tombstone unconditionally; the
// follower's catch-up then replays EntriesSince(f.cmt), which no longer
// mentions the delete, and the row resurrects from the follower's own log
// replay. The cohort tombstone-GC watermark (minimum durable commit floor
// across members, which pins at the crashed follower's last reported
// floor) must keep the tombstone alive until the laggard has seen it.
//
// The PR 3 departed/-marker fix does not cover this: the follower never
// left the cohort, so no wipe happens — it is a plain laggard.
func TestLaggardFollowerDeleteNotResurrected(t *testing.T) {
	tc := newTestCluster(t, 3, storageGCTweak)
	tc.waitAllLeaders()
	c := tc.client()

	row := row0(1)
	if _, err := c.Put(row, "v", []byte("do-not-resurrect")); err != nil {
		t.Fatal(err)
	}
	leaderNode := tc.leaderOf(0)
	st, _ := leaderNode.ReplicaStats(0)
	lsnPut := st.LastCommitted

	// Pick a follower of range 0 and make sure it committed the value
	// (so its log replays it on restart) before crashing it.
	var follower string
	for _, name := range tc.layout.Cohort(0) {
		if name != leaderNode.ID() {
			follower = name
			break
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, ok := tc.nodes[follower].ReplicaStats(0); ok && st.LastCommitted >= lsnPut {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower %s never committed the preload write", follower)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Flush the follower so the value sits durably in its SSTables: that
	// flushed table — not the log — is what a garbage-collected tombstone
	// would let resurrect after the crash.
	if err := tc.nodes[follower].getReplica(0).engine.Flush(); err != nil {
		t.Fatal(err)
	}
	tc.crashNode(follower)

	// Delete the row while the follower is down, then push enough filler
	// writes through range 0 that the survivors flush the tombstone into
	// SSTables and run compaction rounds over it.
	if err := c.Delete(row, "v"); err != nil {
		t.Fatal(err)
	}
	st, _ = leaderNode.ReplicaStats(0)
	lsnDel := st.LastCommitted
	lr := leaderNode.getReplica(0)
	value := make([]byte, 512)
	fillerDeadline := time.Now().Add(30 * time.Second)
	filler := 0
	writeFiller := func() {
		if _, err := c.Put(row0(100+filler%400), "v", value); err != nil {
			t.Fatalf("filler write %d: %v", filler, err)
		}
		filler++
		if time.Now().After(fillerDeadline) {
			t.Skip("flush daemon never compacted the tombstone's table on this host")
		}
	}
	// Phase 1: the tombstone reaches an SSTable (checkpoint passes the
	// delete).
	for lr.engine.Checkpoint() < lsnDel {
		writeFiller()
	}
	// Phase 2: several compaction rounds sweep over the table set holding
	// the tombstone. Pre-fix every one of these was a full merge that
	// dropped tombstones unconditionally; post-fix the watermark — pinned
	// at the crashed follower's last reported floor, below the delete —
	// must carry the tombstone through all of them.
	_, compactsBefore, _ := lr.engine.Stats()
	for {
		_, compacts, _ := lr.engine.Stats()
		if compacts >= compactsBefore+5 {
			break
		}
		writeFiller()
	}

	// Restart the laggard and let catch-up bring it past the delete.
	n := tc.restartNode(follower)
	catchupDeadline := time.Now().Add(20 * time.Second)
	for {
		st, ok := n.ReplicaStats(0)
		if ok && st.Role == RoleFollower && st.LastCommitted >= lsnDel {
			break
		}
		if time.Now().After(catchupDeadline) {
			st, _ := n.ReplicaStats(0)
			t.Fatalf("laggard never caught up past the delete: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The deleted row must stay deleted at the recovered laggard. Pre-fix
	// the compaction dropped the tombstone, catch-up could not ship it,
	// and the follower's log replay resurrected the value.
	ep := tc.net.Join("probe-gc")
	resp, err := ep.Call(transportMsgGet(follower, 0, row, "v"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := decodeGetResp(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNotFound {
		t.Fatalf("deleted row resurrected at laggard follower: status %d value %q",
			res.Status, res.Value)
	}
}

// TestTombstoneGCAdvancesWithCohort is the liveness side of the watermark:
// once every cohort member's durable floor (storage checkpoint, reported on
// acks) passes a delete, compaction rounds may — and eventually do — drop
// its tombstone from the leader's engine.
func TestTombstoneGCAdvancesWithCohort(t *testing.T) {
	tc := newTestCluster(t, 3, storageGCTweak)
	tc.waitAllLeaders()
	c := tc.client()

	row := row0(50)
	if _, err := c.Put(row, "v", []byte("short-lived")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(row, "v"); err != nil {
		t.Fatal(err)
	}
	leaderNode := tc.leaderOf(0)
	lr := leaderNode.getReplica(0)

	tombstonePresent := func() bool {
		for _, e := range lr.engine.EntriesSince(0) {
			if e.Key.Row == row {
				return true
			}
		}
		return false
	}
	if !tombstonePresent() {
		t.Fatal("tombstone missing before any compaction")
	}

	// Keep the cohort writing: acks carry every member's advancing floor,
	// the watermark follows the slowest member, and a compaction round
	// that includes the oldest table garbage-collects the delete.
	value := make([]byte, 512)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; tombstonePresent(); i++ {
		if _, err := c.Put(row0(100+i%400), "v", value); err != nil {
			t.Fatalf("filler write %d: %v", i, err)
		}
		if time.Now().After(deadline) {
			st, _ := leaderNode.ReplicaStats(0)
			flushes, compacts, tables := lr.engine.Stats()
			t.Fatalf("tombstone never garbage-collected: watermark=%s stats=%+v flushes=%d compacts=%d tables=%d",
				lr.tombstoneGC(), st, flushes, compacts, tables)
		}
	}
	// The value shadowed by the delete must not have resurrected.
	if _, _, err := c.Get(row, "v", true); err != ErrNotFound {
		t.Fatalf("Get after GC = %v, want ErrNotFound", err)
	}
}
