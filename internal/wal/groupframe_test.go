package wal

import (
	"bytes"
	"errors"
	"testing"
)

func batchRecsFor(cohort, epoch uint32, startSeq uint64, payloads ...string) []Record {
	recs := make([]Record, len(payloads))
	for i, p := range payloads {
		recs[i] = Record{Cohort: cohort, Type: RecWrite, LSN: MakeLSN(epoch, startSeq+uint64(i)), Payload: []byte(p)}
	}
	return recs
}

func TestGroupFrameRoundTrip(t *testing.T) {
	recs := batchRecsFor(7, 1, 1, "one", "two", "", "four")
	buf := EncodeGroup(nil, recs)
	if len(buf) != GroupEncodedSize(recs) {
		t.Fatalf("GroupEncodedSize = %d, EncodeGroup produced %d", GroupEncodedSize(recs), len(buf))
	}
	var got []Record
	n, err := DecodeFrame(buf, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Cohort != recs[i].Cohort || got[i].Type != recs[i].Type ||
			got[i].LSN != recs[i].LSN || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Errorf("rec %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestGroupFrameCorruptionDetected(t *testing.T) {
	buf := EncodeGroup(nil, batchRecsFor(1, 1, 1, "aaaa", "bbbb"))
	for _, flip := range []int{0, 5, recHeaderSize, recHeaderSize + 3, len(buf) - 1} {
		mut := append([]byte(nil), buf...)
		mut[flip] ^= 0x40
		if _, err := DecodeFrame(mut, func(Record) error { return nil }); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("flip at %d: err = %v, want ErrCorruptRecord", flip, err)
		}
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeFrame(buf[:cut], func(Record) error { return nil }); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("cut at %d: err = %v, want ErrCorruptRecord", cut, err)
		}
	}
}

func TestDecodeRecordRejectsGroupFrame(t *testing.T) {
	// Callers that only understand single-record frames must treat a group
	// frame as undecodable, not mis-parse the batch as one bogus record.
	buf := EncodeGroup(nil, batchRecsFor(1, 1, 1, "x"))
	if _, _, err := DecodeRecord(buf); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("DecodeRecord on group frame: err = %v, want ErrCorruptRecord", err)
	}
}

// TestLogMixedFramingReplay writes single-record frames and group frames
// interleaved — a log written partly before and partly after the group-frame
// change — and checks one reopen+scan replays every record in append order.
func TestLogMixedFramingReplay(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	if err := l.AppendForce(writeRec(0, 1, 1, "solo1")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(batchRecsFor(0, 1, 2, "g1", "g2", "g3")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendForce(writeRec(0, 1, 5, "solo2")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch(batchRecsFor(1, 1, 1, "other-cohort")); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}

	l2 := newTestLog(t, store, 0)
	var got []Record
	if err := l2.Scan(func(rec Record) error {
		got = append(got, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []struct {
		cohort  uint32
		seq     uint64
		payload string
	}{
		{0, 1, "solo1"}, {0, 2, "g1"}, {0, 3, "g2"}, {0, 4, "g3"}, {0, 5, "solo2"}, {1, 1, "other-cohort"},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Cohort != w.cohort || got[i].LSN != MakeLSN(1, w.seq) || string(got[i].Payload) != w.payload {
			t.Errorf("rec %d = cohort %d %s %q, want cohort %d 1.%d %q",
				i, got[i].Cohort, got[i].LSN, got[i].Payload, w.cohort, w.seq, w.payload)
		}
	}
}

// TestLogTornGroupFrameTruncated drops a partially-written group frame at
// the tail on reopen — truncation, not a fatal error — because the group's
// single CRC cannot vouch for any prefix of the batch.
func TestLogTornGroupFrameTruncated(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	if err := l.AppendForce(writeRec(0, 1, 1, "durable")); err != nil {
		t.Fatal(err)
	}
	// Half a group frame forced to the device: a crash mid-append whose
	// leading bytes reached the medium.
	torn := EncodeGroup(nil, batchRecsFor(0, 1, 2, "lost-a", "lost-b"))
	ids, _ := store.List()
	dev, _ := store.Open(ids[len(ids)-1])
	if _, err := dev.Append(torn[:len(torn)/2]); err != nil {
		t.Fatal(err)
	}
	if err := dev.Force(); err != nil {
		t.Fatal(err)
	}

	l2 := newTestLog(t, store, 0)
	var lsns []LSN
	if err := l2.Scan(func(rec Record) error {
		lsns = append(lsns, rec.LSN)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 1 || lsns[0] != MakeLSN(1, 1) {
		t.Fatalf("after torn group frame got %v, want just 1.1", lsns)
	}
	// The reopened log must still accept batch appends after the torn tail.
	if _, err := l2.AppendBatch(batchRecsFor(0, 1, 2, "retry-a", "retry-b")); err != nil {
		t.Fatalf("append after torn group frame: %v", err)
	}
}

// TestGroupFrameCohortWritesInMatchesPerRecord appends the same records to
// two logs — one per-record, one group-framed — and checks CohortWritesIn
// (the catch-up read path) returns byte-identical results from both.
func TestGroupFrameCohortWritesInMatchesPerRecord(t *testing.T) {
	recs := batchRecsFor(3, 1, 1, "r1", "r2", "r3", "r4", "r5")

	perRec := newTestLog(t, NewMemSegmentStore(DeviceInstant), 0)
	for _, r := range recs {
		if err := perRec.AppendForce(r); err != nil {
			t.Fatal(err)
		}
	}
	grouped := newTestLog(t, NewMemSegmentStore(DeviceInstant), 0)
	if _, err := grouped.AppendBatch(recs[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := grouped.AppendBatch(recs[3:]); err != nil {
		t.Fatal(err)
	}
	if err := grouped.Force(); err != nil {
		t.Fatal(err)
	}

	after, through := MakeLSN(1, 1), MakeLSN(1, 5)
	a, okA, err := perRec.CohortWritesIn(3, after, through)
	if err != nil || !okA {
		t.Fatalf("per-record CohortWritesIn: ok=%v err=%v", okA, err)
	}
	b, okB, err := grouped.CohortWritesIn(3, after, through)
	if err != nil || !okB {
		t.Fatalf("grouped CohortWritesIn: ok=%v err=%v", okB, err)
	}
	if len(a) != len(b) {
		t.Fatalf("per-record returned %d records, grouped %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cohort != b[i].Cohort || a[i].Type != b[i].Type || a[i].LSN != b[i].LSN ||
			!bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Errorf("rec %d: per-record %+v != grouped %+v", i, a[i], b[i])
		}
	}
}

// TestAppendBatchSingleAndEmpty pins AppendBatch's degenerate cases: a
// one-record batch writes a legacy single-record frame and an empty batch
// appends nothing.
func TestAppendBatchSingleAndEmpty(t *testing.T) {
	store := NewMemSegmentStore(DeviceInstant)
	l := newTestLog(t, store, 0)
	end0, err := l.AppendBatch(nil)
	if err != nil {
		t.Fatalf("empty AppendBatch: %v", err)
	}
	if end0 != 0 {
		t.Fatalf("empty AppendBatch end = %d, want 0", end0)
	}
	rec := writeRec(0, 1, 1, "solo")
	if _, err := l.AppendBatch([]Record{rec}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	// The frame on disk must decode as a legacy single-record frame.
	ids, _ := store.List()
	dev, _ := store.Open(ids[len(ids)-1])
	buf := make([]byte, dev.Size())
	if _, err := dev.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord on single-record AppendBatch frame: %v", err)
	}
	if n != len(buf) || got.LSN != rec.LSN || string(got.Payload) != "solo" {
		t.Fatalf("decoded %+v (%d bytes), want %+v (%d bytes)", got, n, rec, len(buf))
	}
}

// TestAppendBatchStats pins that the append counter counts records, not
// frames, so the ablation accounting stays comparable across framings.
func TestAppendBatchStats(t *testing.T) {
	l := newTestLog(t, NewMemSegmentStore(DeviceInstant), 0)
	if _, err := l.AppendBatch(batchRecsFor(0, 1, 1, "a", "b", "c")); err != nil {
		t.Fatal(err)
	}
	appends, _ := l.Stats()
	if appends != 3 {
		t.Fatalf("appends = %d, want 3", appends)
	}
}
