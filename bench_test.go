package spinnaker

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§9 and Appendix D), plus ablations of the design choices
// DESIGN.md calls out. Each benchmark runs the corresponding experiment
// from internal/bench once per iteration (they take seconds, so testing.B
// settles on N=1) and prints the same rows/series the paper reports.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkFigure9 -benchmem
// Longer sweeps:    go run ./cmd/spinnaker-bench -all -point 1s
//
// See EXPERIMENTS.md for paper-vs-measured for each experiment.

import (
	"fmt"
	"testing"
	"time"

	"spinnaker/internal/bench"
)

// benchConfig keeps the full suite under a few minutes; the shapes are
// already stable at these durations.
func benchConfig(b *testing.B) bench.Config {
	cfg := bench.Defaults()
	cfg.PointDuration = 250 * time.Millisecond
	cfg.Threads = []int{1, 2, 4, 8, 16, 32}
	cfg.Rows = 800
	cfg.Progress = func(line string) {
		if testing.Verbose() {
			b.Log(line)
		}
	}
	return cfg
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := bench.Run(name, benchConfig(b))
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			fmt.Printf("\n%s\n", table.Format())
		}
	}
}

// BenchmarkFigure8ReadLatency regenerates Figure 8: average read latency vs
// load for Spinnaker consistent/timeline reads and Cassandra quorum/weak
// reads (§9.1).
func BenchmarkFigure8ReadLatency(b *testing.B) { runExperiment(b, "figure8") }

// BenchmarkFigure9WriteLatency regenerates Figure 9: average write latency
// vs load on the HDD log device (§9.2).
func BenchmarkFigure9WriteLatency(b *testing.B) { runExperiment(b, "figure9") }

// BenchmarkTable1RecoveryTime regenerates Table 1: cohort recovery time as
// a function of the commit period (App. D.1).
func BenchmarkTable1RecoveryTime(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFigure11Scaling regenerates Figure 11: write latency vs cluster
// size at fixed per-node load (App. D.2).
func BenchmarkFigure11Scaling(b *testing.B) { runExperiment(b, "figure11") }

// BenchmarkFigure12Mixed regenerates Figure 12: mixed read/write latency vs
// write percentage (App. D.3).
func BenchmarkFigure12Mixed(b *testing.B) { runExperiment(b, "figure12") }

// BenchmarkFigure13SSDLog regenerates Figure 13: write latency with an SSD
// logging device (App. D.4).
func BenchmarkFigure13SSDLog(b *testing.B) { runExperiment(b, "figure13") }

// BenchmarkFigure14ConditionalPut regenerates Figure 14: conditional put vs
// regular put (App. D.5).
func BenchmarkFigure14ConditionalPut(b *testing.B) { runExperiment(b, "figure14") }

// BenchmarkFigure15WeakVsQuorum regenerates Figure 15: Cassandra weak vs
// quorum writes (App. D.6.1).
func BenchmarkFigure15WeakVsQuorum(b *testing.B) { runExperiment(b, "figure15") }

// BenchmarkFigure16MemLog regenerates Figure 16: write latency with a
// main-memory log, committing on 2 of 3 memory logs (App. D.6.2).
func BenchmarkFigure16MemLog(b *testing.B) { runExperiment(b, "figure16") }

// BenchmarkAblationGroupCommit measures the group-commit optimization (§5).
func BenchmarkAblationGroupCommit(b *testing.B) { runExperiment(b, "ablation-groupcommit") }

// BenchmarkAblationPiggybackCommit measures piggybacking commit information
// on proposes (App. D.1).
func BenchmarkAblationPiggybackCommit(b *testing.B) { runExperiment(b, "ablation-piggyback") }

// BenchmarkAblationStaleness measures timeline staleness vs commit period (§5).
func BenchmarkAblationStaleness(b *testing.B) { runExperiment(b, "ablation-staleness") }

// BenchmarkAblationParallelPropose measures the parallel force+propose
// design choice of Figure 4.
func BenchmarkAblationParallelPropose(b *testing.B) { runExperiment(b, "ablation-parallelpropose") }

// BenchmarkAblationProposalBatching compares the batched, pipelined
// replication path against the paper's per-write protocol at 1/4/16/64
// concurrent writers.
func BenchmarkAblationProposalBatching(b *testing.B) { runExperiment(b, "ablation-batching") }

// BenchmarkScaleOut measures write throughput while the same running
// cluster grows live from 3 to 5 to 7 nodes via AddNode + Rebalance.
func BenchmarkScaleOut(b *testing.B) { runExperiment(b, "scale-out") }

// BenchmarkStorageMaintenance measures strong-read latency under a
// sustained update stream with LSM maintenance off vs churning
// (compaction-under-load; see also the microbenchmarks in
// internal/storage).
func BenchmarkStorageMaintenance(b *testing.B) { runExperiment(b, "storage-maintenance") }
