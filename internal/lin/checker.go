package lin

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"spinnaker/internal/simtime"
	"strings"
	"time"
)

// ErrUndecided reports that the search hit its deadline before finding a
// witness or exhausting the space.
var ErrUndecided = errors.New("lin: check deadline exceeded before a verdict")

// CheckResult is the verdict over a full multi-key history.
type CheckResult struct {
	// Linearizable is true when every per-key subhistory admits a legal
	// sequential witness.
	Linearizable bool
	// BadKey names the first key whose subhistory has no witness.
	BadKey string
	// Err is non-nil when the search was cut short (ErrUndecided).
	Err error
	// Detail describes the deepest configuration the failed search
	// reached: the model state and the earliest operations that could
	// not be linearized from it.
	Detail string
	// Ops counts the operations checked (Failed ops and unknown-outcome
	// reads are excluded from the history).
	Ops int
	// Unknown counts the ambiguous writes kept in the history.
	Unknown int
	// Keys counts the distinct keys checked.
	Keys int
}

// Check verifies a history for per-key linearizability. timeout bounds the
// total search; zero means no limit.
func Check(ops []*Operation, timeout time.Duration) CheckResult {
	var deadline time.Time
	if timeout > 0 {
		deadline = simtime.Now().Add(timeout)
	}
	byKey := make(map[string][]*Operation)
	res := CheckResult{Linearizable: true}
	for _, o := range ops {
		switch o.Outcome {
		case Failed:
			continue // definitely no effect: not part of the history
		case Unknown, Pending:
			if o.Op.Kind == Get {
				// An ambiguous read has no effect and no recorded
				// result; it constrains nothing.
				continue
			}
			res.Unknown++
		}
		res.Ops++
		byKey[o.Op.Key] = append(byKey[o.Op.Key], o)
	}
	res.Keys = len(byKey)

	// Check keys in sorted order so failures are reported
	// deterministically.
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ok, detail, err := checkKey(byKey[k], deadline)
		if err != nil {
			res.Linearizable = false
			res.BadKey = k
			res.Err = err
			return res
		}
		if !ok {
			res.Linearizable = false
			res.BadKey = k
			res.Detail = detail
			return res
		}
	}
	return res
}

// Check verifies the recorder's history; see Check.
func (r *Recorder) Check(timeout time.Duration) CheckResult {
	return Check(r.Ops(), timeout)
}

// regState is the model state of one key: a register carrying a value and
// the system-assigned version of the write that produced it. version 0
// means "unknown" — the value was written by an operation whose assigned
// version was never observed (an ambiguous write) — and matches anything
// until a later read pins it down.
type regState struct {
	exists  bool
	value   string
	version uint64
}

func (s regState) cacheKey() string {
	if !s.exists {
		return "·"
	}
	return fmt.Sprintf("%s|%d", s.value, s.version)
}

// step applies op to the state sequentially: it reports whether the op's
// recorded outputs are legal from s, and the successor state. Unknown
// version numbers (0) are never grounds for rejection — the model only
// refutes what the recorded outputs actually contradict.
func step(s regState, op Op) (bool, regState) {
	switch op.Kind {
	case Get:
		if op.NotFound {
			return !s.exists, s
		}
		if !s.exists || s.value != op.OutValue {
			return false, s
		}
		if s.version != 0 && op.OutVer != 0 && op.OutVer != s.version {
			return false, s
		}
		if s.version == 0 && op.OutVer != 0 {
			s.version = op.OutVer // the read pins the unknown version
		}
		return true, s
	case Put:
		// Versions are system-assigned LSNs: per key they strictly
		// increase across the writes that took effect (epoch bumps keep
		// LSNs monotonic across takeovers, Appendix B).
		if s.exists && s.version != 0 && op.OutVer != 0 && op.OutVer <= s.version {
			return false, s
		}
		return true, regState{exists: true, value: op.Value, version: op.OutVer}
	case CondPut:
		matched, known := true, false
		switch {
		case !s.exists:
			matched, known = op.CondVer == 0, true
		case s.version != 0:
			matched, known = s.version == op.CondVer, true
		}
		if op.Mismatch {
			// The system refused the write: illegal only if the
			// state provably matched the condition.
			if known && matched {
				return false, s
			}
			return true, s
		}
		if known && !matched {
			return false, s
		}
		if s.exists && s.version != 0 && op.OutVer != 0 && op.OutVer <= s.version {
			return false, s
		}
		return true, regState{exists: true, value: op.Value, version: op.OutVer}
	case Delete:
		return true, regState{}
	default:
		return false, s
	}
}

// event is one call or return in the per-key entry list.
type event struct {
	op    *Operation
	id    int    // operation index within the subhistory
	match *event // for calls: the matching return; nil for returns
	at    int64
	prev  *event
	next  *event
}

// checkKey runs the Wing & Gong search over one key's subhistory: try to
// linearize some pending call at each step, backtracking when stuck, with
// memoization of (linearized-set, state) configurations (Lowe's
// optimization). Returns whether a witness exists.
func checkKey(ops []*Operation, deadline time.Time) (bool, string, error) {
	n := len(ops)
	if n == 0 {
		return true, "", nil
	}
	if n > 256*1024 {
		return false, "", fmt.Errorf("lin: subhistory of %d ops too large", n)
	}

	// Build the event list: a call and a return per operation, sorted by
	// timestamp. Recorder timestamps are unique except the MaxInt64
	// returns of unknown ops, which all sort last (their relative order
	// is immaterial: they are concurrent with everything after their
	// calls).
	events := make([]*event, 0, 2*n)
	for i, o := range ops {
		call := &event{op: o, id: i, at: o.Invoke}
		ret := &event{op: o, id: i, at: o.Return}
		call.match = ret
		events = append(events, call, ret)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Ties only among MaxInt64 returns; order by id for
		// determinism.
		return events[i].id < events[j].id
	})
	head := &event{at: math.MinInt64} // sentinel
	prev := head
	for _, e := range events {
		prev.next = e
		e.prev = prev
		prev = e
	}

	lift := func(call *event) {
		call.prev.next = call.next
		call.next.prev = call.prev
		ret := call.match
		ret.prev.next = ret.next
		if ret.next != nil {
			ret.next.prev = ret.prev
		}
	}
	unlift := func(call *event) {
		ret := call.match
		ret.prev.next = ret
		if ret.next != nil {
			ret.next.prev = ret
		}
		call.prev.next = call
		call.next.prev = call
	}

	// The search tries, at each step, to linearize one of the calls
	// pending before the next return. Completed (OK) ops have one way to
	// linearize: their recorded outputs must be legal. Ambiguous
	// (Unknown/Pending) ops have two: take effect here, or never take
	// effect at all (choice 1, a no-op) — a timed-out write may have
	// died before reaching the leader, and the witness must not be
	// forced to include it.
	type frame struct {
		call   *event
		state  regState
		choice int
	}
	var stack []frame
	state := regState{}
	linearized := newBitset(n)
	cache := make(map[string]struct{})
	entry := head.next
	startChoice := 0
	steps := 0
	// Failure diagnostics: the deepest configuration reached and the
	// earliest operations still pending there.
	bestDepth := -1
	bestDetail := ""
	snapshot := func() string {
		var b strings.Builder
		fmt.Fprintf(&b, "linearized %d/%d ops; state {exists=%t value=%q version=%d}; stuck at:",
			len(stack), n, state.exists, state.value, state.version)
		count := 0
		for e := head.next; e != nil && count < 5; e = e.next {
			if e.match != nil {
				fmt.Fprintf(&b, "\n  c%d %s (t%d..t%s)", e.op.Client, e.op.Op, e.op.Invoke, retString(e.op.Return))
				count++
			}
		}
		return b.String()
	}
	for head.next != nil {
		steps++
		if steps&0xfff == 0 && !deadline.IsZero() && simtime.Now().After(deadline) {
			return false, "", ErrUndecided
		}
		if entry == nil {
			if len(stack) > bestDepth {
				bestDepth = len(stack)
				bestDetail = snapshot()
			}
			// Out of candidates at this configuration: backtrack,
			// resuming the popped call at its next untried choice.
			if len(stack) == 0 {
				return false, bestDetail, nil
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			state = top.state
			linearized.clear(top.call.id)
			unlift(top.call)
			entry = top.call
			startChoice = top.choice + 1
			continue
		}
		if entry.match != nil { // a call: try to linearize it here
			nchoices := 1
			if entry.op.Outcome == Unknown || entry.op.Outcome == Pending {
				nchoices = 2
			}
			advanced := false
			for c := startChoice; c < nchoices; c++ {
				var ok bool
				var next regState
				if c == 0 {
					ok, next = step(state, entry.op.Op)
				} else {
					ok, next = true, state // ambiguous op never took effect
				}
				if !ok {
					continue
				}
				linearized.set(entry.id)
				key := linearized.key() + next.cacheKey()
				if _, seen := cache[key]; seen {
					linearized.clear(entry.id)
					continue
				}
				cache[key] = struct{}{}
				stack = append(stack, frame{call: entry, state: state, choice: c})
				state = next
				lift(entry)
				entry = head.next
				advanced = true
				break
			}
			startChoice = 0
			if !advanced {
				entry = entry.next
			}
			continue
		}
		// A return: every call that could linearize before this point
		// has been tried. Backtrack.
		entry = nil
	}
	return true, "", nil
}

// bitset is a small fixed-size bitset with a cheap cache key.
type bitset struct {
	words []uint64
	buf   []byte
}

func newBitset(n int) *bitset {
	w := (n + 63) / 64
	return &bitset{words: make([]uint64, w), buf: make([]byte, 8*w)}
}

func (b *bitset) set(i int)   { b.words[i>>6] |= 1 << (uint(i) & 63) }
func (b *bitset) clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

func (b *bitset) key() string {
	for i, w := range b.words {
		b.buf[8*i] = byte(w)
		b.buf[8*i+1] = byte(w >> 8)
		b.buf[8*i+2] = byte(w >> 16)
		b.buf[8*i+3] = byte(w >> 24)
		b.buf[8*i+4] = byte(w >> 32)
		b.buf[8*i+5] = byte(w >> 40)
		b.buf[8*i+6] = byte(w >> 48)
		b.buf[8*i+7] = byte(w >> 56)
	}
	return string(b.buf)
}
