package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"spinnaker/internal/simtime"
)

// Network is a simulated in-process network. Each ordered pair of endpoints
// communicates over a dedicated link that preserves send order and applies
// a configurable one-way propagation delay — the rack-level 1-GbE switch of
// the paper's test cluster (Appendix C), scaled down. Links pipeline:
// messages in flight overlap, so the delay models latency, not bandwidth.
//
// On top of the clean TCP-like base, a seeded per-link fault plane (see
// LinkFaults) can drop, duplicate, reorder, and delay messages, and links
// can be partitioned symmetrically (Partition/Isolate) or one way
// (PartitionOneWay) — the substrate for nemesis scenarios.
type Network struct {
	delay   time.Duration
	msgCost time.Duration

	mu            sync.Mutex
	eps           map[string]*LocalEndpoint
	links         map[[2]string]*link
	cut           map[[2]string]bool // unordered pair → partitioned
	cutDir        map[[2]string]bool // ordered (from, to) → partitioned
	faultSeed     int64
	defaultFaults LinkFaults
	linkFaults    map[[2]string]LinkFaults // ordered (from, to) → override
	msgs          atomic.Int64
	dropped       atomic.Int64
	callSeq       atomic.Uint64
	closedAll     bool
}

// NewNetwork returns a network whose links have the given one-way delay.
func NewNetwork(delay time.Duration) *Network {
	return &Network{
		delay:      delay,
		eps:        make(map[string]*LocalEndpoint),
		links:      make(map[[2]string]*link),
		cut:        make(map[[2]string]bool),
		cutDir:     make(map[[2]string]bool),
		linkFaults: make(map[[2]string]LinkFaults),
	}
}

// Join attaches a node and returns its endpoint. Re-joining an id replaces
// the previous endpoint (a restarted node).
func (n *Network) Join(id string) *LocalEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep := &LocalEndpoint{id: id, net: n, pending: make(map[uint64]chan Message), done: make(chan struct{})}
	n.eps[id] = ep
	return ep
}

// Partition cuts connectivity between a and b (both directions); messages
// in flight or sent while cut are dropped, as they would be by a TCP
// connection that resets during the outage.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[pairKey(a, b)] = true
}

// Heal restores connectivity between a and b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, pairKey(a, b))
}

// Isolate cuts a from every current endpoint.
func (n *Network) Isolate(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.eps {
		if other != id {
			n.cut[pairKey(id, other)] = true
		}
	}
}

// HealAll removes every partition, symmetric and one-way. Link fault
// configurations are separate; see ClearFaults.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut = make(map[[2]string]bool)
	n.cutDir = make(map[[2]string]bool)
}

// Stats returns totals of delivered and dropped messages.
func (n *Network) Stats() (delivered, dropped int64) {
	return n.msgs.Load(), n.dropped.Load()
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// link carries messages for one ordered (from, to) pair. rng drives the
// link's fault decisions; it is touched only by the link's delivery
// goroutine, so the decision sequence is a deterministic function of the
// fault seed and the messages carried.
type link struct {
	ch   chan timedMsg
	stop chan struct{}
	rng  *rand.Rand
}

type timedMsg struct {
	m   Message
	due time.Time
}

const linkBuffer = 4096

// getLink returns (creating if needed) the link from → to.
func (n *Network) getLink(from, to string) *link {
	key := [2]string{from, to}
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[key]; ok {
		return l
	}
	l := &link{
		ch:   make(chan timedMsg, linkBuffer),
		stop: make(chan struct{}),
		rng:  newLinkRNG(n.faultSeed, from, to),
	}
	if n.closedAll {
		// Straggler send during teardown: an inert link (no delivery
		// goroutine, not registered) that silently swallows the traffic.
		close(l.stop)
		return l
	}
	n.links[key] = l
	go n.run(l, to)
	return l
}

// Close shuts the network down: every link's delivery goroutine exits, and
// links created by straggler sends afterwards are inert (no goroutine).
// Messages still in flight are dropped. Cluster teardown calls this;
// without it, benchmarks cycling many clusters in one process accumulate
// blocked delivery goroutines, each pinning its dead cluster's entire heap
// (endpoints → nodes → memtables → log buffers) into the GC live set.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closedAll {
		return
	}
	n.closedAll = true
	for _, l := range n.links {
		close(l.stop)
	}
	n.links = make(map[[2]string]*link)
}

// SetMessageCost sets a per-message delivery cost, serialized on each
// link: the receive-path CPU a real transport pays per message (syscalls,
// interrupts, protocol work) that the propagation delay alone does not
// model. Unlike delay, cost does not pipeline — a link delivers at most
// 1/cost messages per second — so it is what per-message protocol overhead
// (and hence message batching) trades against. Zero (the default) keeps
// the historical latency-only model. Set it before traffic starts.
func (n *Network) SetMessageCost(d time.Duration) { n.msgCost = d }

// run delivers messages for a link in order, honoring per-message due
// times. A constant per-link delay preserves FIFO order on a clean link;
// the fault plane, when configured, may drop, duplicate, reorder, or
// further delay individual messages.
func (n *Network) run(l *link, to string) {
	for {
		select {
		case <-l.stop:
			return
		case tm := <-l.ch:
			if !n.deliverFaulty(l, to, tm, true) {
				return // link stopped while holding a reordered message
			}
		}
	}
}

// deliverFaulty rolls one message's fault decisions on the link's RNG and
// delivers it accordingly. Decisions are drawn in a fixed order per
// message, so for a given seed, fault configuration, and message sequence
// the outcome replays. allowReorder is false for a message already
// overtaking a held-back one (reordering would recurse); it still rolls
// its own drop/dup/jitter. Returns false if the link stopped mid-hold.
func (n *Network) deliverFaulty(l *link, to string, tm timedMsg, allowReorder bool) bool {
	f := n.faultsFor(tm.m.From, to)
	if f == (LinkFaults{}) {
		n.deliver(to, tm, 0, false)
		return true
	}
	drop := l.rng.Float64() < f.DropProb
	dup := l.rng.Float64() < f.DupProb
	reorder := allowReorder && l.rng.Float64() < f.ReorderProb
	var jitter time.Duration
	if f.Jitter > 0 {
		jitter = time.Duration(l.rng.Int63n(int64(f.Jitter)))
	}
	if drop {
		n.dropped.Add(1)
		return true
	}
	if reorder {
		// Hold this message back so its successor (if one arrives in
		// time) overtakes it; the successor rolls its own faults.
		select {
		case next := <-l.ch:
			if !n.deliverFaulty(l, to, next, false) {
				return false
			}
			n.deliver(to, tm, jitter, dup)
		case <-time.After(ReorderHold):
			n.deliver(to, tm, jitter, dup)
		case <-l.stop:
			return false
		}
		return true
	}
	n.deliver(to, tm, jitter, dup)
	return true
}

// deliver waits out a message's due time (plus fault jitter) and the
// per-message cost, then dispatches it — twice when the duplication fault
// fired — unless the destination is gone or partitioned away.
func (n *Network) deliver(to string, tm timedMsg, jitter time.Duration, dup bool) {
	simtime.Sleep(time.Until(tm.due) + jitter)
	simtime.Sleep(n.msgCost)
	n.mu.Lock()
	ep, ok := n.eps[to]
	cut := n.cutLocked(tm.m.From, to)
	n.mu.Unlock()
	if !ok || cut || ep.closed.Load() {
		n.dropped.Add(1)
		return
	}
	n.msgs.Add(1)
	// Fast path: the payload slice is handed to the receiver as-is, no
	// defensive copy. Receivers decode zero-copy (payload bytes flow into
	// the commit queue and memtable), which is safe because a payload is
	// never written after encode — the sender builds a fresh buffer per
	// message and every consumer treats it as immutable.
	ep.dispatch(tm.m)
	if dup {
		// Duplication fault only (never on the clean path): give the
		// second dispatch its own payload so the two deliveries cannot
		// alias each other through zero-copy decode — a real network
		// duplicates bytes, not buffers.
		n.msgs.Add(1)
		d := tm.m
		if len(d.Payload) > 0 {
			d.Payload = append([]byte(nil), d.Payload...)
		}
		ep.dispatch(d)
	}
}

// LocalEndpoint is a node's attachment to a Network.
type LocalEndpoint struct {
	id          string
	net         *Network
	handler     atomic.Value // Handler
	closed      atomic.Bool
	done        chan struct{} // closed by Close; unblocks in-flight Calls
	callTimeout atomic.Int64  // nanoseconds; 0 = DefaultCallTimeout

	mu      sync.Mutex
	pending map[uint64]chan Message
}

// SetCallTimeout overrides the per-Call deadline; zero restores the
// default. Clients use a short timeout so a call to a crashed node fails
// fast and routing retries take over.
func (e *LocalEndpoint) SetCallTimeout(d time.Duration) {
	e.callTimeout.Store(int64(d))
}

// ID implements Endpoint.
func (e *LocalEndpoint) ID() string { return e.id }

// SetHandler implements Endpoint.
func (e *LocalEndpoint) SetHandler(h Handler) { e.handler.Store(h) }

// Send implements Endpoint.
func (e *LocalEndpoint) Send(m Message) error {
	if e.closed.Load() {
		return ErrClosed
	}
	m.From = e.id
	e.net.mu.Lock()
	_, known := e.net.eps[m.To]
	cut := e.net.cutLocked(e.id, m.To)
	e.net.mu.Unlock()
	if !known {
		return fmt.Errorf("%w: %s", ErrUnknownNode, m.To)
	}
	if cut {
		// A TCP send into a partition buffers and eventually times
		// out; the message never arrives. Model as a silent drop.
		e.net.dropped.Add(1)
		return nil
	}
	l := e.net.getLink(e.id, m.To)
	select {
	case l.ch <- timedMsg{m: m, due: simtime.Now().Add(e.net.delay)}:
		return nil
	default:
		// Link buffer overflow: shed load like a saturated socket.
		e.net.dropped.Add(1)
		return fmt.Errorf("transport: link %s→%s overloaded", e.id, m.To)
	}
}

// DefaultCallTimeout bounds Call when no deadline is configured.
const DefaultCallTimeout = 5 * time.Second

// Call implements Endpoint.
func (e *LocalEndpoint) Call(m Message) (Message, error) {
	id := e.net.callSeq.Add(1)
	m.ID = id
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()
	if err := e.Send(m); err != nil {
		return Message{}, err
	}
	timeout := time.Duration(e.callTimeout.Load())
	if timeout <= 0 {
		timeout = DefaultCallTimeout
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-time.After(timeout):
		return Message{}, fmt.Errorf("%w: %s → %s kind %d", ErrTimeout, e.id, m.To, m.Kind)
	case <-e.done:
		// The caller's own endpoint closed (node stopping). Without this
		// arm, every in-flight call to a dead peer pins its goroutine for
		// the full timeout after teardown — the goroutine-leak sentinel in
		// internal/sim is what catches regressions here.
		return Message{}, fmt.Errorf("%w: %s", ErrClosed, e.id)
	}
}

// Reply implements Endpoint.
func (e *LocalEndpoint) Reply(req Message, m Message) error {
	m.To = req.From
	m.ID = req.ID
	m.Reply = true
	return e.Send(m)
}

// dispatch routes an inbound message to a pending call or the handler.
func (e *LocalEndpoint) dispatch(m Message) {
	if m.Reply {
		e.mu.Lock()
		ch, ok := e.pending[m.ID]
		e.mu.Unlock()
		if ok {
			// Non-blocking: a duplicated reply (fault plane) or one
			// racing the call's timeout must not wedge the link's
			// delivery goroutine on the full one-slot buffer.
			select {
			case ch <- m:
			default:
			}
		}
		return
	}
	if h, ok := e.handler.Load().(Handler); ok && h != nil {
		h(m)
	}
}

// Close implements Endpoint.
func (e *LocalEndpoint) Close() error {
	if e.closed.CompareAndSwap(false, true) {
		close(e.done)
	}
	return nil
}

var _ Endpoint = (*LocalEndpoint)(nil)
