// Package red breaks every hotpath rule inside annotated functions:
// fmt on the hot path, a per-iteration transient conversion, an
// un-pre-sized in-loop append, an escaping closure, and a round-trip
// conversion.
package red

import "fmt"

type item struct{ b []byte }

// Sum is hot but allocates per iteration and formats its error.
//
//spinnaker:hotpath
func Sum(items []item, lookup func(string) int) (int, []string, error) {
	total := 0
	var names []string
	for _, it := range items {
		total += lookup(string(it.b)) // WANT hotpath
		names = append(names, "x")    // WANT hotpath
	}
	if total < 0 {
		return 0, nil, fmt.Errorf("negative total %d", total) // WANT hotpath
	}
	return total, names, nil
}

// Handler returns an escaping closure from the hot path.
//
//spinnaker:hotpath
func Handler(n int) func() int {
	return func() int { return n } // WANT hotpath
}

// Clone round-trips bytes through a string.
//
//spinnaker:hotpath
func Clone(b []byte) []byte {
	return []byte(string(b)) // WANT hotpath
}
