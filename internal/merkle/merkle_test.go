package merkle

import (
	"fmt"
	"testing"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

func entry(row, col string, lsn uint64, val string) kv.Entry {
	return kv.Entry{
		Key:  kv.Key{Row: row, Col: col},
		Cell: kv.Cell{Value: []byte(val), Version: lsn, LSN: wal.LSN(lsn)},
	}
}

func rows(n int) []kv.Entry {
	out := make([]kv.Entry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, entry(fmt.Sprintf("row%04d", i), "c", uint64(i+1), "v"))
	}
	return out
}

func TestDigestStability(t *testing.T) {
	es := rows(100)
	a := Build(es, 8)
	b := BuildWithCuts(a.Cuts(), es)
	if a.Root() != b.Root() {
		t.Fatalf("same entries, same cuts: roots differ")
	}
	if d := Diff(a, b); d != nil {
		t.Fatalf("identical trees diff: %v", d)
	}
	if len(a.Leaves()) != len(a.Cuts())+1 {
		t.Fatalf("leaf/cut shape: %d leaves for %d cuts", len(a.Leaves()), len(a.Cuts()))
	}
}

func TestDifferingSubrangeDetection(t *testing.T) {
	es := rows(100)
	a := Build(es, 8)

	// Mutate one row's value; only the leaf holding it may differ.
	mutated := append([]kv.Entry(nil), es...)
	mutated[37] = entry(mutated[37].Key.Row, "c", 38, "CHANGED")
	b := BuildWithCuts(a.Cuts(), mutated)

	diffs := Diff(a, b)
	if len(diffs) != 1 {
		t.Fatalf("one mutated row should differ in one subrange, got %v", diffs)
	}
	r := diffs[0]
	row := es[37].Key.Row
	if !(r.Low == "" || row >= r.Low) || !(r.High == "" || row < r.High) {
		t.Fatalf("differing range %v does not cover mutated row %q", r, row)
	}
	// An untouched row far away must not be covered (the diff pruned it).
	other := es[0].Key.Row
	if r.Intersects(other, other) {
		t.Fatalf("differing range %v spuriously covers untouched row %q", r, other)
	}
}

func TestMissingRowDetected(t *testing.T) {
	es := rows(64)
	a := Build(es, 8)
	short := append(append([]kv.Entry(nil), es[:20]...), es[21:]...) // drop row 20
	b := BuildWithCuts(a.Cuts(), short)
	diffs := Diff(a, b)
	if len(diffs) == 0 {
		t.Fatalf("dropped row not detected")
	}
	row := es[20].Key.Row
	covered := false
	for _, r := range diffs {
		if r.Intersects(row, row) {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("diff %v does not cover dropped row %q", diffs, row)
	}
}

func TestEmptyAndBoundaryRanges(t *testing.T) {
	empty := Build(nil, 8)
	if len(empty.Cuts()) != 0 || len(empty.Leaves()) != 1 {
		t.Fatalf("empty build: want single full-range leaf, got %d cuts / %d leaves",
			len(empty.Cuts()), len(empty.Leaves()))
	}
	if d := Diff(empty, Build(nil, 8)); d != nil {
		t.Fatalf("two empty trees diff: %v", d)
	}

	// Empty vs populated: everything with data must be in a differing range.
	es := rows(32)
	a := Build(es, 4)
	b := BuildWithCuts(a.Cuts(), nil)
	diffs := Diff(a, b)
	if len(diffs) == 0 {
		t.Fatalf("populated vs empty: no diff")
	}
	for _, e := range es {
		covered := false
		for _, r := range diffs {
			if r.Intersects(e.Key.Row, e.Key.Row) {
				covered = true
			}
		}
		if !covered {
			t.Fatalf("row %q not covered by %v", e.Key.Row, diffs)
		}
	}

	// A row exactly at a cut belongs to the upper leaf on both sides.
	cuts := a.Cuts()
	if len(cuts) == 0 {
		t.Fatalf("expected cuts")
	}
	one := []kv.Entry{entry(cuts[0], "c", 1, "x")}
	l := BuildWithCuts(cuts, one)
	r := BuildWithCuts(cuts, one)
	if l.Root() != r.Root() {
		t.Fatalf("cut-boundary row digested inconsistently")
	}
	if d := Diff(l, r); d != nil {
		t.Fatalf("cut-boundary row diffs: %v", d)
	}
}

func TestMismatchedCutsAreIncomparable(t *testing.T) {
	es := rows(32)
	a := Build(es, 4)
	b := Build(es, 2)
	if len(a.Cuts()) == len(b.Cuts()) {
		t.Skipf("cut derivation produced equal shapes; nothing to compare")
	}
	diffs := Diff(a, b)
	if len(diffs) != 1 || diffs[0] != (Range{}) {
		t.Fatalf("mismatched cuts must yield the full range, got %v", diffs)
	}
}

func TestNewValidatesShape(t *testing.T) {
	if New([]string{"m"}, make([]Digest, 1)) != nil {
		t.Fatalf("New accepted mismatched shape")
	}
	tr := New([]string{"m"}, make([]Digest, 2))
	if tr == nil {
		t.Fatalf("New rejected valid shape")
	}
	es := rows(4)
	built := BuildWithCuts(nil, es)
	re := New(built.Cuts(), built.Leaves())
	if re == nil || re.Root() != built.Root() {
		t.Fatalf("New round-trip changed the root")
	}
}
