package core

import (
	"fmt"
	"sync"
	"time"

	"spinnaker/internal/kv"
	"spinnaker/internal/storage"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Role is a replica's position within its cohort.
type Role int32

// Replica roles. A node is recovering until local recovery and catch-up
// complete, then either follows the cohort leader or (after winning an
// election and finishing takeover) leads.
const (
	RoleRecovering Role = iota
	RoleFollower
	RoleCandidate
	RoleLeader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleRecovering:
		return "recovering"
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", int32(r))
	}
}

// replica is one node's participation in one cohort (key range). A node in
// a 3-way replicated cluster runs 3 replicas over a shared log (§4.1).
type replica struct {
	n       *Node
	rangeID uint32
	peers   []string // the other cohort members
	quorum  int      // majority of the cohort, counting ourselves

	mu            sync.Mutex
	role          Role
	open          bool // leader only: cohort open for writes (Fig 6 line 10)
	epoch         uint32
	nextSeq       uint64
	lastLSN       wal.LSN // f.lst / l.lst
	lastCommitted wal.LSN // f.cmt / l.cmt
	leaderID      string
	skipped       *wal.SkippedLSNs

	// gapped is set when a propose arrives with a sequence gap (lost
	// messages); until catch-up repairs the gap, commit messages must
	// not advance lastCommitted past state we might not hold.
	gapped bool

	queue  *commitQueue
	engine *storage.Engine

	// election bookkeeping
	electionNudge chan struct{}
}

func (r *replica) loggerPrefix() string {
	return fmt.Sprintf("%s/r%d", r.n.cfg.ID, r.rangeID)
}

// snapshotState returns the replica's LSN state under lock.
func (r *replica) snapshotState() (role Role, cmt, lst wal.LSN, leader string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role, r.lastCommitted, r.lastLSN, r.leaderID
}

// --- Write path (paper §5, Figure 4) ---------------------------------------

// submitWrite runs the leader's side of the replication protocol for one
// client write and blocks until the write commits (or fails). The flow is
// Figure 4: force a log record for W; in parallel append W to the commit
// queue and send propose messages; after the local force and at least one
// ack, apply W to the memtable and return to the client.
func (r *replica) submitWrite(op WriteOp) writeOutcome {
	r.mu.Lock()
	if r.role != RoleLeader || !r.open {
		leader := r.leaderID
		r.mu.Unlock()
		if leader != "" && leader != r.n.cfg.ID {
			return writeOutcome{status: StatusNotLeader, detail: leader}
		}
		return writeOutcome{status: StatusUnavailable, detail: "no leader for range"}
	}

	// Conditional checks run before sequencing (§5.1), against the
	// effective state: the newest pending write for the column if one is
	// queued (writes execute in LSN order), else the committed cell.
	for _, c := range op.Cols {
		if !c.Cond {
			continue
		}
		cur := r.effectiveVersionLocked(kv.Key{Row: op.Row, Col: c.Col})
		if cur != c.CondVersion {
			r.mu.Unlock()
			return writeOutcome{status: StatusVersionMismatch,
				detail: fmt.Sprintf("column %s at version %d, want %d", c.Col, cur, c.CondVersion)}
		}
	}

	lsn := wal.MakeLSN(r.epoch, r.nextSeq)
	r.nextSeq++
	versions := make([]uint64, len(op.Cols))
	for i := range op.Cols {
		op.Cols[i].Version = uint64(lsn)
		versions[i] = uint64(lsn)
	}
	p := &pendingWrite{lsn: lsn, op: op, done: make(chan writeOutcome, 1)}
	r.queue.add(p)
	rec := wal.Record{Cohort: r.rangeID, Type: wal.RecWrite, LSN: lsn,
		Payload: EncodeWriteOp(nil, op)}
	// Appending under the lock keeps the cohort's records in LSN order in
	// the shared log; the force (the slow part) happens outside.
	end, err := r.n.log.Append(rec)
	if err != nil {
		r.queue.remove(lsn)
		r.mu.Unlock()
		return writeOutcome{status: StatusUnavailable, detail: err.Error()}
	}
	r.lastLSN = lsn
	committedThrough := wal.LSN(0)
	if r.n.cfg.PiggybackCommits {
		committedThrough = r.lastCommitted
	}
	// Propose to the followers in parallel with the local log force
	// (Fig 4); the SequentialPropose ablation forces first, then sends.
	// Sends happen under r.mu (they only enqueue on the in-order links)
	// so proposes leave in LSN order and followers never see spurious
	// sequence gaps.
	payload := encodePropose(proposePayload{LSN: lsn, CommittedThrough: committedThrough, Op: op})
	r.queue.touchPropose(lsn)
	propose := func() {
		for _, peer := range r.peers {
			r.n.send(peer, transport.Message{Kind: MsgPropose, Cohort: r.rangeID, Payload: payload})
		}
	}
	if !r.n.cfg.SequentialPropose {
		propose()
	}
	r.mu.Unlock()

	if err := r.n.log.ForceTo(end); err != nil {
		return writeOutcome{status: StatusUnavailable, detail: err.Error()}
	}
	if r.n.cfg.SequentialPropose {
		propose()
	}
	r.queue.markForced(lsn)
	r.tryCommit()

	select {
	case out := <-p.done:
		out.versions = versions
		return out
	case <-time.After(r.n.cfg.WriteTimeout):
		return writeOutcome{status: StatusUnavailable, detail: "write timed out awaiting quorum"}
	}
}

// effectiveVersionLocked returns the version a read-your-own-sequenced-
// writes observer would see for key; callers hold r.mu.
func (r *replica) effectiveVersionLocked(key kv.Key) uint64 {
	if p, ok := r.queue.latestPending(key); ok {
		for _, c := range p.op.Cols {
			if c.Col == key.Col {
				return c.Version
			}
		}
	}
	if cell, ok := r.engine.Get(key); ok {
		return cell.Version
	}
	return 0
}

// tryCommit commits the maximal committable prefix of the queue: each write
// is applied to the memtable and its waiting client released (Fig 4:
// "after log force and at least 1 ack: apply W to memtable; return to
// client"). Safe to call from any goroutine.
//
// The pop and the memtable applies happen under r.mu so that version
// checks (which consult the pending queue and then the engine) never
// observe a write in neither place.
func (r *replica) tryCommit() {
	r.mu.Lock()
	committed := r.queue.popCommittable(r.quorum)
	if len(committed) == 0 {
		r.mu.Unlock()
		return
	}
	for _, p := range committed {
		for _, e := range p.op.Entries(p.lsn) {
			r.engine.Apply(e)
		}
		if p.lsn > r.lastCommitted {
			r.lastCommitted = p.lsn
		}
	}
	r.mu.Unlock()
	for _, p := range committed {
		p.finish(writeOutcome{status: StatusOK})
	}
}

// --- Follower message handlers ----------------------------------------------

// onPropose handles a propose message (Fig 4, follower column): force a log
// record for W, append W to the commit queue, send an ack. The force and
// ack run off the link goroutine so concurrent proposes across cohorts
// share group-commit forces.
func (r *replica) onPropose(m transport.Message) {
	p, err := decodePropose(m.Payload)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.role == RoleRecovering {
		r.mu.Unlock()
		return // catch-up will deliver this write's effect
	}
	if m.From != r.leaderID && r.leaderID != "" {
		// A propose from a node we do not believe leads the cohort.
		// Accept only if it carries a higher epoch (we are behind on
		// leadership news; the election loop will refresh leaderID).
		if p.LSN.Epoch() < r.epoch {
			r.mu.Unlock()
			return
		}
	}
	if p.LSN.Epoch() > r.epoch {
		r.epoch = p.LSN.Epoch()
	}

	switch {
	case p.LSN <= r.lastCommitted:
		// Already committed here (a re-proposal after leader change,
		// Fig 6 line 5: "these can be detected and ignored").
		r.mu.Unlock()
		r.n.send(m.From, transport.Message{Kind: MsgAck, Cohort: r.rangeID, Payload: encodeLSN(p.LSN)})
	case r.queue.has(p.LSN):
		// Already logged and pending; ensure durability, then ack.
		r.mu.Unlock()
		go func() {
			if err := r.n.log.Force(); err != nil {
				return
			}
			r.n.send(m.From, transport.Message{Kind: MsgAck, Cohort: r.rangeID, Payload: encodeLSN(p.LSN)})
		}()
	default:
		gap := !r.lastLSN.IsZero() && p.LSN.Seq() > r.lastLSN.Seq()+1
		if gap {
			r.gapped = true
		}
		rec := wal.Record{Cohort: r.rangeID, Type: wal.RecWrite, LSN: p.LSN,
			Payload: EncodeWriteOp(nil, p.Op)}
		end, err := r.n.log.Append(rec)
		if err != nil {
			r.mu.Unlock()
			return
		}
		if p.LSN > r.lastLSN {
			r.lastLSN = p.LSN
		}
		r.queue.add(&pendingWrite{lsn: p.LSN, op: p.Op})
		r.mu.Unlock()

		go func() {
			if err := r.n.log.ForceTo(end); err != nil {
				return
			}
			r.queue.markForced(p.LSN)
			r.n.send(m.From, transport.Message{Kind: MsgAck, Cohort: r.rangeID, Payload: encodeLSN(p.LSN)})
			if p.CommittedThrough > 0 {
				r.applyCommitted(p.CommittedThrough, false)
			}
		}()
		if gap {
			// We missed proposes (e.g. across a healed partition);
			// ask the leader for the committed writes in between.
			r.n.nudgeCatchup(r)
		}
		return
	}
	if p.CommittedThrough > 0 {
		r.applyCommitted(p.CommittedThrough, false)
	}
}

// onAck counts a follower's ack (leader side) and commits what it can.
func (r *replica) onAck(m transport.Message) {
	lsn, err := decodeLSN(m.Payload)
	if err != nil {
		return
	}
	r.queue.markAck(lsn)
	r.tryCommit()
}

// onCommitMsg handles the leader's periodic asynchronous commit message
// (§5): apply all pending writes up to the LSN to the memtable and record
// the last committed LSN with a non-forced log write.
func (r *replica) onCommitMsg(m transport.Message) {
	lsn, err := decodeLSN(m.Payload)
	if err != nil {
		return
	}
	r.applyCommitted(lsn, false)
}

// applyCommitted advances the follower's committed state through lsn.
//
// A commit LSN from the steady-state protocol (viaCatchup=false) may only
// advance past writes this replica actually holds: a recovering replica, or
// one that detected a sequence gap, must not mark state committed that only
// the catch-up phase can deliver — otherwise its later catch-up request
// would advertise an f.cmt above its real state and the leader would skip
// the missing writes. Catch-up responses (viaCatchup=true) carry the state
// itself, so they advance unconditionally.
func (r *replica) applyCommitted(lsn wal.LSN, viaCatchup bool) {
	r.mu.Lock()
	if lsn <= r.lastCommitted {
		r.mu.Unlock()
		return
	}
	behind := false
	if !viaCatchup {
		if r.role == RoleRecovering || r.gapped {
			r.mu.Unlock()
			r.n.nudgeCatchup(r)
			return
		}
		if lsn > r.lastLSN {
			behind = true
			lsn = r.lastLSN // commit only what we provably hold
		}
		if lsn <= r.lastCommitted {
			r.mu.Unlock()
			r.n.nudgeCatchup(r)
			return
		}
	}
	popped := r.queue.popThrough(lsn)
	for _, p := range popped {
		for _, e := range p.op.Entries(p.lsn) {
			r.engine.Apply(e)
		}
	}
	r.lastCommitted = lsn
	if viaCatchup {
		r.gapped = false
	}
	r.mu.Unlock()

	// Non-forced log write of the last committed LSN (§5).
	_, _ = r.n.log.Append(wal.Record{
		Cohort: r.rangeID, Type: wal.RecLastCommitted, LSN: lsn,
	})
	for _, p := range popped {
		p.finish(writeOutcome{status: StatusOK})
	}
	if behind {
		// The leader has committed writes we never saw.
		r.n.nudgeCatchup(r)
	}
}

// sendCommitMessages is invoked by the node's commit timer on leader
// replicas: followers are told to apply everything up to the last committed
// LSN, and the leader records the same LSN locally, non-forced (§5). The
// same tick retransmits proposes that have gone unacknowledged for more
// than two commit periods — TCP's retransmission made explicit, needed for
// liveness when a propose is lost across a broken connection.
func (r *replica) sendCommitMessages() {
	r.mu.Lock()
	if r.role != RoleLeader {
		r.mu.Unlock()
		return
	}
	lsn := r.lastCommitted
	r.mu.Unlock()
	if !lsn.IsZero() {
		payload := encodeLSN(lsn)
		for _, peer := range r.peers {
			r.n.send(peer, transport.Message{Kind: MsgCommit, Cohort: r.rangeID, Payload: payload})
		}
		_, _ = r.n.log.Append(wal.Record{Cohort: r.rangeID, Type: wal.RecLastCommitted, LSN: lsn})
	}

	for _, pp := range r.queue.stalePending(2 * r.n.cfg.CommitPeriod) {
		payload := encodePropose(pp)
		for _, peer := range r.peers {
			r.n.send(peer, transport.Message{Kind: MsgPropose, Cohort: r.rangeID, Payload: payload})
		}
	}
	r.tryCommit()
}

// --- Read path (§3, §5) -----------------------------------------------------

// get serves a read. Strongly consistent reads are only legal at the
// leader (the client routes them there; we enforce it). Timeline reads are
// served by any replica and may be stale by up to one commit period.
func (r *replica) get(req getReq) getResp {
	if req.Consistent {
		r.mu.Lock()
		ok := r.role == RoleLeader
		leader := r.leaderID
		r.mu.Unlock()
		if !ok {
			return getResp{Status: StatusNotLeader, Value: []byte(leader)}
		}
	}
	r.n.readGate()
	cell, ok := r.engine.Get(kv.Key{Row: req.Row, Col: req.Col})
	if !ok || cell.Deleted {
		return getResp{Status: StatusNotFound, Version: cell.Version}
	}
	return getResp{Status: StatusOK, Value: cell.Value, Version: cell.Version}
}

// getRow serves a whole-row read with the same consistency rules.
func (r *replica) getRow(req getReq) rowResp {
	if req.Consistent {
		r.mu.Lock()
		ok := r.role == RoleLeader
		r.mu.Unlock()
		if !ok {
			return rowResp{Status: StatusNotLeader}
		}
	}
	entries := r.engine.GetRow(req.Row)
	if len(entries) == 0 {
		return rowResp{Status: StatusNotFound}
	}
	return rowResp{Status: StatusOK, Entries: entries}
}

// --- State requests (takeover, Fig 6 line 4) -------------------------------

func (r *replica) onStateReq(m transport.Message) {
	r.mu.Lock()
	cmt := r.lastCommitted
	r.mu.Unlock()
	r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeLSN(cmt)})
}

// Stats reporting for tests and tooling.
type ReplicaStats struct {
	Range         uint32
	Role          Role
	Epoch         uint32
	LastLSN       wal.LSN
	LastCommitted wal.LSN
	Pending       int
	Leader        string
	Open          bool
}

func (r *replica) stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStats{
		Range:         r.rangeID,
		Role:          r.role,
		Epoch:         r.epoch,
		LastLSN:       r.lastLSN,
		LastCommitted: r.lastCommitted,
		Pending:       r.queue.len(),
		Leader:        r.leaderID,
		Open:          r.open,
	}
}
