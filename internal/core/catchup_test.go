package core

import (
	"sync"
	"testing"
	"time"

	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// TestWritesProceedDuringCatchupScan pins the off-lock catch-up scan: while
// the leader's engine scan is parked (via the test hook), a client write
// must still commit, and the eventual response must cover it through the
// bounded log-tail re-read.
func TestWritesProceedDuringCatchupScan(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	if _, err := c.Put(row0(1), "c", []byte("before")); err != nil {
		t.Fatal(err)
	}
	leader := tc.leaderOf(0)

	entered := make(chan struct{})
	release := make(chan struct{})
	var enteredOnce sync.Once
	hook := func() {
		enteredOnce.Do(func() { close(entered) })
		<-release
	}
	testCatchupScanHook.Store(&hook)
	t.Cleanup(func() { testCatchupScanHook.Store(nil) })
	var releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })

	respCh := make(chan catchupResp, 1)
	errCh := make(chan error, 1)
	go func() {
		ep := tc.net.Join("probe-scan")
		resp, err := ep.Call(transport.Message{
			To: leader.ID(), Kind: MsgCatchupReq, Cohort: 0,
			Payload: encodeCatchupReq(catchupReq{Cmt: 0, NoSnap: true}),
		})
		if err != nil {
			errCh <- err
			return
		}
		cr, err := decodeCatchupResp(resp.Payload)
		if err != nil {
			errCh <- err
			return
		}
		respCh <- cr
	}()

	select {
	case <-entered:
	case err := <-errCh:
		t.Fatalf("catch-up call failed before reaching the scan: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("catch-up request never reached the engine scan")
	}

	// The scan is parked. A write must commit anyway — before the off-lock
	// rework, onCatchupReq held r.mu across the scan and this Put would
	// block until the hook released.
	writeDone := make(chan error, 1)
	go func() {
		_, err := c.Put(row0(2), "c", []byte("during-scan"))
		writeDone <- err
	}()
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatalf("write during catch-up scan: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write blocked behind the catch-up scan")
	}
	releaseOnce.Do(func() { close(release) })

	select {
	case cr := <-respCh:
		if cr.Status != StatusOK {
			t.Fatalf("catch-up status %d", cr.Status)
		}
		// The write committed mid-scan; the tail re-read must have folded
		// it into the response so the advertised Cmt is honest.
		found := false
		for _, e := range cr.Entries {
			if e.Key.Row == row0(2) {
				found = true
			}
		}
		if !found {
			t.Fatalf("response (Cmt %s, %d entries) omitted the write committed during the scan",
				cr.Cmt, len(cr.Entries))
		}
	case err := <-errCh:
		t.Fatalf("catch-up call: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("catch-up response never arrived after release")
	}
}

// TestSnapshotCatchupShipsTables drives the tentpole path end to end: a
// follower crashes, the survivors flush and truncate the shared log past
// its f.cmt, and the rejoin must go through the SSTable-shipping path (the
// entry path can no longer prove completeness from the log).
func TestSnapshotCatchupShipsTables(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.FlushBytes = 8 << 10
		cfg.SegmentBytes = 16 << 10
		cfg.FlushInterval = 5 * time.Millisecond
	})
	tc.waitAllLeaders()
	c := tc.client()

	leader := tc.leaderOf(0).ID()
	var follower string
	for _, name := range tc.layout.Cohort(0) {
		if name != leader {
			follower = name
			break
		}
	}

	value := make([]byte, 512)
	for i := range value {
		value[i] = byte(i)
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Put(row0(i), "c", value); err != nil {
			t.Fatal(err)
		}
	}
	fst, ok := tc.nodes[follower].ReplicaStats(0)
	if !ok {
		t.Fatal("follower serves no replica of range 0")
	}
	tc.crashNode(follower)

	for i := 30; i < 150; i++ {
		if _, err := c.Put(row0(i), "c", value); err != nil {
			t.Fatalf("write %d with follower down: %v", i, err)
		}
	}
	leaderNode := tc.leaderOf(0)
	deadline := time.Now().Add(5 * time.Second)
	for leaderNode.LogTruncated(0) <= fst.LastCommitted {
		if time.Now().After(deadline) {
			t.Skip("log never truncated past the crashed follower's cmt")
		}
		time.Sleep(10 * time.Millisecond)
	}

	n := tc.restartNode(follower)
	deadline = time.Now().Add(15 * time.Second)
	for {
		st, ok := n.ReplicaStats(0)
		if ok && st.Role == RoleFollower && st.LastCommitted >= wal.MakeLSN(1, 150) {
			break
		}
		if time.Now().After(deadline) {
			st, _ := n.ReplicaStats(0)
			t.Fatalf("follower never caught up past the truncated log: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	st, _ := n.ReplicaStats(0)
	if st.SnapshotCatchups == 0 {
		t.Error("rejoin across a truncated log did not use the SSTable path")
	}
	if lst, ok := leaderNode.ReplicaStats(0); !ok || lst.SnapshotsServed == 0 {
		t.Error("leader served no snapshot manifest")
	}

	ep := tc.net.Join("probe-snap")
	for i := 0; i < 150; i += 7 {
		resp, err := ep.Call(transportMsgGet(follower, 0, row0(i), "c"))
		if err != nil {
			t.Fatal(err)
		}
		res, _ := decodeGetResp(resp.Payload)
		if res.Status != StatusOK || len(res.Value) != len(value) {
			t.Fatalf("key %d at rejoined follower: status %d len %d", i, res.Status, len(res.Value))
		}
	}
}

// TestDisableSnapshotCatchupUsesEntryPath runs the same truncated-rejoin
// scenario under the log-replay ablation: the follower must still catch up
// (EntriesSince serves complete state from the engine) without ever taking
// the snapshot path.
func TestDisableSnapshotCatchupUsesEntryPath(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.FlushBytes = 8 << 10
		cfg.SegmentBytes = 16 << 10
		cfg.FlushInterval = 5 * time.Millisecond
		cfg.DisableSnapshotCatchup = true
	})
	tc.waitAllLeaders()
	c := tc.client()

	leader := tc.leaderOf(0).ID()
	var follower string
	for _, name := range tc.layout.Cohort(0) {
		if name != leader {
			follower = name
			break
		}
	}

	value := make([]byte, 512)
	for i := 0; i < 30; i++ {
		if _, err := c.Put(row0(i), "c", value); err != nil {
			t.Fatal(err)
		}
	}
	fst, _ := tc.nodes[follower].ReplicaStats(0)
	tc.crashNode(follower)
	for i := 30; i < 120; i++ {
		if _, err := c.Put(row0(i), "c", value); err != nil {
			t.Fatal(err)
		}
	}
	leaderNode := tc.leaderOf(0)
	deadline := time.Now().Add(5 * time.Second)
	for leaderNode.LogTruncated(0) <= fst.LastCommitted {
		if time.Now().After(deadline) {
			t.Skip("log never truncated past the crashed follower's cmt")
		}
		time.Sleep(10 * time.Millisecond)
	}

	n := tc.restartNode(follower)
	deadline = time.Now().Add(15 * time.Second)
	for {
		st, ok := n.ReplicaStats(0)
		if ok && st.Role == RoleFollower && st.LastCommitted >= wal.MakeLSN(1, 120) {
			break
		}
		if time.Now().After(deadline) {
			st, _ := n.ReplicaStats(0)
			t.Fatalf("follower never caught up under the ablation: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st, _ := n.ReplicaStats(0); st.SnapshotCatchups != 0 {
		t.Errorf("ablation still took %d snapshot catch-ups", st.SnapshotCatchups)
	}
}
