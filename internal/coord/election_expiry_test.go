package coord

import (
	"errors"
	"testing"
	"time"
)

// recvEvent waits briefly for a watch notification.
func recvEvent(t *testing.T, ch <-chan Event, what string) Event {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(2 * time.Second):
		t.Fatalf("%s: watch never fired", what)
		return Event{}
	}
}

// TestLeaderSessionExpiryDuringElection replays the coordination-service
// side of a leader death in the middle of the Figure 7 protocol: the
// leader holds an ephemeral /leader znode and an ephemeral sequential
// candidate entry; a follower is blocked watching /leader; a late
// candidate is blocked watching /candidates for a quorum. Expiring the
// leader's session must delete both ephemerals and fire both watches —
// that chain is exactly what re-triggers elections after a crash.
func TestLeaderSessionExpiryDuringElection(t *testing.T) {
	svc := NewService(0)
	defer svc.Stop()

	leader := svc.Connect()
	follower := svc.Connect()
	late := svc.Connect()

	if err := leader.EnsurePath("/r/0/candidates"); err != nil {
		t.Fatal(err)
	}
	// The leader registered its candidacy (Fig 7 lines 3-4) and won
	// (lines 7-9).
	leaderCand, err := leader.Create("/r/0/candidates/c:n0:", []byte("50"),
		FlagEphemeral|FlagSequential)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Create("/r/0/leader", []byte("n0"), FlagEphemeral); err != nil {
		t.Fatal(err)
	}

	// The follower learned the leader and parked on a /leader watch
	// (electionLoop's steady state).
	leaderWatch, err := follower.Watch("/r/0/leader")
	if err != nil {
		t.Fatal(err)
	}
	// The late candidate announced itself and parked on a children watch
	// (Fig 7 line 5), waiting for a quorum of candidates.
	if _, err := late.Create("/r/0/candidates/c:n2:", []byte("40"),
		FlagEphemeral|FlagSequential); err != nil {
		t.Fatal(err)
	}
	childWatch, err := late.WatchChildren("/r/0/candidates")
	if err != nil {
		t.Fatal(err)
	}

	// The leader's process dies; the service detects the dead session.
	leader.Expire()

	// Both ephemerals are gone...
	if ok, _ := follower.Exists("/r/0/leader"); ok {
		t.Fatal("leader znode survived session expiry")
	}
	if ok, _ := follower.Exists(leaderCand); ok {
		t.Fatal("leader's candidate znode survived session expiry")
	}
	// ...and both blocked parties were notified.
	if ev := recvEvent(t, leaderWatch, "follower /leader watch"); ev.Type != EventDeleted || ev.Path != "/r/0/leader" {
		t.Fatalf("follower watch got %v %q", ev.Type, ev.Path)
	}
	if ev := recvEvent(t, childWatch, "late candidate children watch"); ev.Type != EventDeleted {
		t.Fatalf("children watch got %v %q", ev.Type, ev.Path)
	}

	// The election proceeds without the dead node: the surviving
	// candidates see only live candidacies...
	kids, err := late.Children("/r/0/candidates")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 {
		t.Fatalf("candidates after expiry = %d, want 1", len(kids))
	}
	// ...and the winner claims the vacant leadership while the follower
	// (re-watching, as electionLoop does each iteration) hears about it.
	leaderWatch2, err := follower.Watch("/r/0/leader")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := late.Create("/r/0/leader", []byte("n2"), FlagEphemeral); err != nil {
		t.Fatal(err)
	}
	if ev := recvEvent(t, leaderWatch2, "follower re-watch"); ev.Type != EventCreated {
		t.Fatalf("re-watch got %v", ev.Type)
	}
	data, err := follower.Get("/r/0/leader")
	if err != nil || string(data) != "n2" {
		t.Fatalf("new leader = %q, %v", data, err)
	}
}

// TestExpiredCandidateOwnWatchesNotified pins the other half of the
// contract: the expired session's own parked watches receive
// EventSessionExpired (so a node whose session dies while blocked in
// electionLoop wakes up and finds out), and every further operation on
// the session fails with ErrSessionClosed.
func TestExpiredCandidateOwnWatchesNotified(t *testing.T) {
	svc := NewService(0)
	defer svc.Stop()

	cand := svc.Connect()
	if err := cand.EnsurePath("/r/1/candidates"); err != nil {
		t.Fatal(err)
	}
	if _, err := cand.Create("/r/1/candidates/c:n1:", []byte("7"),
		FlagEphemeral|FlagSequential); err != nil {
		t.Fatal(err)
	}
	own, err := cand.WatchChildren("/r/1/candidates")
	if err != nil {
		t.Fatal(err)
	}
	lw, err := cand.Watch("/r/1/leader")
	if err != nil {
		t.Fatal(err)
	}

	cand.Expire()

	for _, w := range []<-chan Event{own, lw} {
		if ev := recvEvent(t, w, "expired session's own watch"); ev.Type != EventSessionExpired {
			t.Fatalf("own watch got %v, want sessionExpired", ev.Type)
		}
	}
	if _, err := cand.Create("/r/1/candidates/c:n1:", nil, FlagEphemeral|FlagSequential); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("create on expired session: %v", err)
	}
	if err := cand.Heartbeat(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("heartbeat on expired session: %v", err)
	}
}

// TestExpiryDuringElectionOnlyRemovesOwnEphemerals: a session expiry in a
// contended election must not disturb the other candidates' znodes or the
// persistent election scaffolding.
func TestExpiryDuringElectionOnlyRemovesOwnEphemerals(t *testing.T) {
	svc := NewService(0)
	defer svc.Stop()

	a, b, c := svc.Connect(), svc.Connect(), svc.Connect()
	if err := a.EnsurePath("/r/2/candidates"); err != nil {
		t.Fatal(err)
	}
	for i, sess := range []*Session{a, b, c} {
		if _, err := sess.Create("/r/2/candidates/c:n:", []byte{byte('0' + i)},
			FlagEphemeral|FlagSequential); err != nil {
			t.Fatal(err)
		}
	}
	b.Expire()

	kids, err := a.Children("/r/2/candidates")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 {
		t.Fatalf("candidates after one expiry = %d, want 2", len(kids))
	}
	// The persistent scaffolding survives.
	if ok, _ := a.Exists("/r/2/candidates"); !ok {
		t.Fatal("persistent candidates path deleted by expiry")
	}
	// Sequence numbers keep increasing past the expired candidate's
	// (Fig 7 line 6 tie-breaking depends on it).
	p, err := c.Create("/r/2/candidates/c:n3:", nil, FlagEphemeral|FlagSequential)
	if err != nil {
		t.Fatal(err)
	}
	kids, _ = a.Children("/r/2/candidates")
	var maxSeq uint64
	for _, kid := range kids {
		if kid.Seq > maxSeq {
			maxSeq = kid.Seq
		}
	}
	found := false
	for _, kid := range kids {
		if "/r/2/candidates/"+kid.Name == p && kid.Seq == maxSeq {
			found = true
		}
	}
	if !found {
		t.Fatalf("new candidate %s did not get the max sequence number", p)
	}
}
