package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChurnNoLostIncrements is an end-to-end safety check: while nodes of a
// cohort crash and restart continuously, concurrent clients perform
// conditional-put increments (the §3 read-modify-write transaction). At the
// end, the counter must equal exactly the number of increments the clients
// were told succeeded — Spinnaker's guarantee that a committed
// (acknowledged) write survives any failure sequence that leaves a
// majority alive, and that conditional puts never double-apply.
func TestChurnNoLostIncrements(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test takes several seconds")
	}
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.WriteTimeout = 500 * time.Millisecond
	})
	tc.waitAllLeaders()

	const (
		workers  = 3
		duration = 4 * time.Second
	)
	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: crash and restart one (never two) cohort member at a time,
	// preserving the majority the protocol needs for availability.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		names := tc.layout.Cohort(0)
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(200+rng.Intn(300)) * time.Millisecond):
			}
			victim := names[rng.Intn(len(names))]
			if _, ok := tc.nodes[victim]; !ok {
				continue
			}
			tc.nodes[victim].Crash()
			tc.stores[victim].Crash()
			delete(tc.nodes, victim)
			time.Sleep(time.Duration(100+rng.Intn(200)) * time.Millisecond)
			select {
			case <-stop:
			default:
			}
			// Restart over the surviving stores.
			cfg := tc.cfgTmpl
			cfg.ID = victim
			n, err := NewNode(cfg, tc.stores[victim], tc.net.Join(victim), tc.coord)
			if err != nil {
				t.Errorf("restart %s: %v", victim, err)
				return
			}
			if err := n.Start(); err != nil {
				t.Errorf("start %s: %v", victim, err)
				return
			}
			tc.nodes[victim] = n
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := tc.client()
			deadline := time.Now().Add(duration)
			for time.Now().Before(deadline) {
				// One increment attempt: read, conditional-put.
				val, ver, err := c.Get(row0(0), "n", true)
				var cur uint32
				switch {
				case err == nil:
					cur = uint32(val[0])<<16 | uint32(val[1])<<8 | uint32(val[2])
				case errors.Is(err, ErrNotFound):
					cur = 0
				default:
					continue // unavailable mid-failover: retry
				}
				next := cur + 1
				_, err = c.ConditionalPut(row0(0), "n",
					[]byte{byte(next >> 16), byte(next >> 8), byte(next)}, ver)
				switch {
				case err == nil:
					acked.Add(1)
				case errors.Is(err, ErrVersionMismatch):
					// Lost the race to another worker; not counted.
				default:
					// Timeout/unavailable: the write's fate is
					// unknown. Conditional semantics make a
					// duplicate retry impossible, but the write
					// may have committed — so we must not count
					// it NOR may we treat the test's final count
					// as exact. Resolve the ambiguity by reading
					// back: if our value landed, count it.
					deadline2 := time.Now().Add(2 * time.Second)
					for time.Now().Before(deadline2) {
						val2, _, err2 := c.Get(row0(0), "n", true)
						if err2 == nil {
							got := uint32(val2[0])<<16 | uint32(val2[1])<<8 | uint32(val2[2])
							if got >= next {
								// Either ours or a later one
								// committed; in both cases the
								// chain included our CAS only if
								// the version advanced past ver.
								// Conservatively re-verify via
								// version read below.
								break
							}
						}
						time.Sleep(10 * time.Millisecond)
					}
					// Ambiguous outcomes end this worker's run:
					// exactness of the final assertion depends on
					// knowing every success.
					return
				}
			}
		}(w)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	// Let the cluster settle with all nodes back, then verify.
	tc.waitAllLeaders()
	c := tc.client()
	var final uint32
	deadline := time.Now().Add(10 * time.Second)
	for {
		val, _, err := c.Get(row0(0), "n", true)
		if err == nil {
			final = uint32(val[0])<<16 | uint32(val[1])<<8 | uint32(val[2])
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter unreadable after churn: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if int64(final) < acked.Load() {
		t.Fatalf("LOST UPDATES: counter = %d but %d increments were acknowledged", final, acked.Load())
	}
	t.Logf("churn: %d acknowledged increments, counter = %d (unacknowledged-but-committed: %d)",
		acked.Load(), final, int64(final)-acked.Load())
}

// TestStrongReadsNeverRegressAcrossFailover pins the takeover read gate:
// a new leader must not serve strongly consistent reads until its takeover
// completes (open), because until then its engine may lack writes the old
// leader committed and acknowledged. The probe: one writer records the
// highest acknowledged version; concurrent strong readers must never
// observe a lower one, while the cohort leader is crash-restarted in a
// loop. Caught originally by the nemesis harness as a stale strong read
// during an election.
func TestStrongReadsNeverRegressAcrossFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover churn takes several seconds")
	}
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.WriteTimeout = 500 * time.Millisecond
	})
	tc.waitAllLeaders()

	const duration = 3 * time.Second
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var maxAcked atomic.Uint64

	// Writer: unconditional puts; every acknowledged version raises the
	// floor readers must observe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := tc.client()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v, err := c.Put(row0(7), "c", []byte(fmt.Sprintf("v%d", i)))
			if err != nil {
				continue
			}
			for {
				cur := maxAcked.Load()
				if v <= cur || maxAcked.CompareAndSwap(cur, v) {
					break
				}
			}
		}
	}()

	// Readers: a strong read invoked after version V was acknowledged
	// must return at least V.
	for rdr := 0; rdr < 2; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tc.client()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := maxAcked.Load()
				_, ver, err := c.Get(row0(7), "c", true)
				if err != nil {
					continue // unavailable mid-failover: retry
				}
				if ver < floor {
					t.Errorf("STALE STRONG READ: version %d after %d was acknowledged", ver, floor)
					return
				}
			}
		}()
	}

	// Nemesis: crash and restart the cohort leader continuously.
	rng := rand.New(rand.NewSource(11))
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		leader := ""
		sess := tc.coord.Connect()
		if data, err := sess.Get(leaderPath(0)); err == nil {
			leader = string(data)
		}
		sess.Close()
		if _, ok := tc.nodes[leader]; !ok || leader == "" {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		tc.crashNode(leader)
		time.Sleep(time.Duration(50+rng.Intn(150)) * time.Millisecond)
		cfg := tc.cfgTmpl
		cfg.ID = leader
		n, err := NewNode(cfg, tc.stores[leader], tc.net.Join(leader), tc.coord)
		if err != nil {
			t.Fatalf("restart %s: %v", leader, err)
		}
		if err := n.Start(); err != nil {
			t.Fatalf("start %s: %v", leader, err)
		}
		tc.nodes[leader] = n
		time.Sleep(time.Duration(50+rng.Intn(100)) * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestTimelineReadsMonotonicPerReplica checks the "timeline" in timeline
// consistency: an individual replica applies committed writes in LSN order,
// so polling one replica never observes versions going backwards.
func TestTimelineReadsMonotonicPerReplica(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Put(row0(5), "v", []byte(fmt.Sprintf("%08d", i))); err != nil {
				return
			}
		}
	}()

	ep := tc.net.Join("probe-monotonic")
	follower := ""
	leader := tc.leaderOf(0).ID()
	for _, name := range tc.layout.Cohort(0) {
		if name != leader {
			follower = name
			break
		}
	}
	var last uint64
	for i := 0; i < 300; i++ {
		resp, err := ep.Call(transportMsgGet(follower, 0, row0(5), "v"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := decodeGetResp(resp.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOK {
			continue // not yet visible
		}
		if res.Version < last {
			t.Fatalf("replica went backwards: version %d after %d", res.Version, last)
		}
		last = res.Version
	}
	close(stop)
	wg.Wait()
}
