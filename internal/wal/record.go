package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// RecType discriminates the kinds of records in the shared log.
type RecType uint8

const (
	// RecWrite carries a replicated write (a put/delete proposal). These
	// are the records forced to disk before acknowledging a propose
	// message (paper §5, Fig 4).
	RecWrite RecType = 1 + iota
	// RecLastCommitted records the cohort's last committed LSN. It is
	// written with a non-forced log write when a commit message is sent
	// or processed (paper §5: "log last committed LSN, non-forced").
	RecLastCommitted
	// RecCheckpoint records that all of a cohort's writes up to the LSN
	// have been captured in SSTables; local recovery replays from the
	// most recent checkpoint (paper §6.1).
	RecCheckpoint
	// RecResetCohort marks a cohort re-join after a membership departure:
	// every record of the cohort before this point (and the storage
	// engine's pre-departure contents) is stale state from an earlier
	// membership and must be discarded by local recovery. Without it, a
	// key deleted cluster-wide while the node was out of the cohort —
	// whose tombstone was then compacted away — would resurrect from the
	// node's old SSTables or log records when it rejoins.
	RecResetCohort
)

// String implements fmt.Stringer for diagnostics.
func (t RecType) String() string {
	switch t {
	case RecWrite:
		return "write"
	case RecLastCommitted:
		return "lastCommitted"
	case RecCheckpoint:
		return "checkpoint"
	case RecResetCohort:
		return "resetCohort"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// Record is one entry in a node's shared write-ahead log. Cohort identifies
// the logical LSN stream the record belongs to: the shared log interleaves
// the records of every cohort (key range) the node serves (paper §4.1).
type Record struct {
	Cohort  uint32
	Type    RecType
	LSN     LSN
	Payload []byte
}

// recHeaderSize is the fixed framing: u32 body length + u32 CRC32.
const recHeaderSize = 8

// recBodyFixed is the fixed portion of the body: type + cohort + LSN.
const recBodyFixed = 1 + 4 + 8

// ErrCorruptRecord is returned when decoding hits a CRC or framing
// mismatch. During recovery this marks the torn tail of the log: bytes
// appended but not forced before a crash.
var ErrCorruptRecord = errors.New("wal: corrupt record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodedSize returns the number of bytes Encode will produce.
//
//spinnaker:hotpath
func (r *Record) EncodedSize() int {
	return recHeaderSize + recBodyFixed + len(r.Payload)
}

// grow extends dst by n bytes with at most one allocation and returns the
// extended slice together with the n-byte window just added.
//
//spinnaker:hotpath
func grow(dst []byte, n int) ([]byte, []byte) {
	l := len(dst)
	if cap(dst)-l < n {
		bigger := make([]byte, l, l+n)
		copy(bigger, dst)
		dst = bigger
	}
	dst = dst[:l+n]
	return dst, dst[l : l+n]
}

// Encode serializes the record with length+CRC framing, appending to dst.
//
//spinnaker:hotpath
func (r *Record) Encode(dst []byte) []byte {
	bodyLen := recBodyFixed + len(r.Payload)
	dst, b := grow(dst, recHeaderSize+bodyLen)
	binary.LittleEndian.PutUint32(b[0:4], uint32(bodyLen))
	body := b[recHeaderSize:]
	body[0] = byte(r.Type)
	binary.LittleEndian.PutUint32(body[1:5], r.Cohort)
	binary.LittleEndian.PutUint64(body[5:13], uint64(r.LSN))
	copy(body[13:], r.Payload)
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(body, crcTable))
	return dst
}

// DecodeRecord parses one record from b. It returns the record and the
// total number of bytes consumed. ErrCorruptRecord is returned on framing
// or checksum errors, which recovery treats as the end of the valid log.
// Group frames (AppendBatch) are rejected; scans must use DecodeFrame.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, ErrCorruptRecord
	}
	bodyLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if bodyLen < recBodyFixed || bodyLen > len(b)-recHeaderSize {
		return Record{}, 0, ErrCorruptRecord
	}
	wantCRC := binary.LittleEndian.Uint32(b[4:8])
	body := b[recHeaderSize : recHeaderSize+bodyLen]
	if crc32.Checksum(body, crcTable) != wantCRC {
		return Record{}, 0, ErrCorruptRecord
	}
	if body[0] == recGroupFrame {
		return Record{}, 0, ErrCorruptRecord
	}
	rec := Record{
		Type:   RecType(body[0]),
		Cohort: binary.LittleEndian.Uint32(body[1:5]),
		LSN:    LSN(binary.LittleEndian.Uint64(body[5:13])),
	}
	if bodyLen > recBodyFixed {
		rec.Payload = append([]byte(nil), body[recBodyFixed:]...)
	}
	return rec, recHeaderSize + bodyLen, nil
}

// Group frames batch the records of one MsgProposeBatch under a single
// length+CRC header (one frame header + N records + one checksum), so the
// follower append path pays framing and checksum cost once per batch instead
// of once per record. The first body byte distinguishes frame kinds: legacy
// single-record frames carry a RecType there, group frames carry
// recGroupFrame, a value outside every RecType, so logs mixing both framings
// (written before and after this change) replay with one scan.
const recGroupFrame = 0xF0

const (
	groupBodyFixed = 1 + 4         // marker + record count
	groupRecFixed  = 1 + 4 + 8 + 4 // type + cohort + LSN + payload length
)

// GroupEncodedSize returns the number of bytes EncodeGroup will produce.
//
//spinnaker:hotpath
func GroupEncodedSize(recs []Record) int {
	n := recHeaderSize + groupBodyFixed
	for i := range recs {
		n += groupRecFixed + len(recs[i].Payload)
	}
	return n
}

// EncodeGroup serializes recs as one group frame, appending to dst. The
// destination grows at most once (callers pre-size with GroupEncodedSize).
//
//spinnaker:hotpath
func EncodeGroup(dst []byte, recs []Record) []byte {
	need := GroupEncodedSize(recs)
	dst, b := grow(dst, need)
	bodyLen := need - recHeaderSize
	binary.LittleEndian.PutUint32(b[0:4], uint32(bodyLen))
	body := b[recHeaderSize:]
	body[0] = recGroupFrame
	binary.LittleEndian.PutUint32(body[1:5], uint32(len(recs)))
	off := groupBodyFixed
	for i := range recs {
		r := &recs[i]
		body[off] = byte(r.Type)
		binary.LittleEndian.PutUint32(body[off+1:off+5], r.Cohort)
		binary.LittleEndian.PutUint64(body[off+5:off+13], uint64(r.LSN))
		binary.LittleEndian.PutUint32(body[off+13:off+17], uint32(len(r.Payload)))
		off += groupRecFixed
		off += copy(body[off:], r.Payload)
	}
	binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(body, crcTable))
	return dst
}

// decodeGroupBody parses the records of a CRC-verified group frame body,
// invoking fn for each in append order.
func decodeGroupBody(body []byte, fn func(Record) error) error {
	if len(body) < groupBodyFixed {
		return ErrCorruptRecord
	}
	count := int(binary.LittleEndian.Uint32(body[1:5]))
	off := groupBodyFixed
	for i := 0; i < count; i++ {
		if len(body)-off < groupRecFixed {
			return ErrCorruptRecord
		}
		rec := Record{
			Type:   RecType(body[off]),
			Cohort: binary.LittleEndian.Uint32(body[off+1 : off+5]),
			LSN:    LSN(binary.LittleEndian.Uint64(body[off+5 : off+13])),
		}
		plen := int(binary.LittleEndian.Uint32(body[off+13 : off+17]))
		off += groupRecFixed
		if plen > len(body)-off {
			return ErrCorruptRecord
		}
		if plen > 0 {
			rec.Payload = append([]byte(nil), body[off:off+plen]...)
		}
		off += plen
		if err := fn(rec); err != nil {
			return err
		}
	}
	if off != len(body) {
		return ErrCorruptRecord
	}
	return nil
}

// DecodeFrame parses one frame — a legacy single-record frame or a group
// frame — from b, invoking fn once per record it carries, and returns the
// bytes consumed. ErrCorruptRecord marks the torn tail of the log exactly as
// DecodeRecord does; any other error is fn's.
func DecodeFrame(b []byte, fn func(Record) error) (int, error) {
	if len(b) < recHeaderSize {
		return 0, ErrCorruptRecord
	}
	bodyLen := int(binary.LittleEndian.Uint32(b[0:4]))
	if bodyLen < 1 || bodyLen > len(b)-recHeaderSize {
		return 0, ErrCorruptRecord
	}
	wantCRC := binary.LittleEndian.Uint32(b[4:8])
	body := b[recHeaderSize : recHeaderSize+bodyLen]
	if crc32.Checksum(body, crcTable) != wantCRC {
		return 0, ErrCorruptRecord
	}
	consumed := recHeaderSize + bodyLen
	if body[0] == recGroupFrame {
		return consumed, decodeGroupBody(body, fn)
	}
	if bodyLen < recBodyFixed {
		return 0, ErrCorruptRecord
	}
	rec := Record{
		Type:   RecType(body[0]),
		Cohort: binary.LittleEndian.Uint32(body[1:5]),
		LSN:    LSN(binary.LittleEndian.Uint64(body[5:13])),
	}
	if bodyLen > recBodyFixed {
		rec.Payload = append([]byte(nil), body[recBodyFixed:]...)
	}
	return consumed, fn(rec)
}
