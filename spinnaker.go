// Package spinnaker is a from-scratch Go implementation of Spinnaker, the
// scalable, consistent, and highly available datastore of Rao, Shekita, and
// Tata (VLDB 2011). It features key-based range partitioning, 3-way
// replication, and a transactional get-put API with the option to choose
// either strong or timeline consistency on reads. Replication uses a
// Multi-Paxos–derived protocol integrated with each node's shared
// write-ahead log and recovery, with leader election and epochs managed
// through a Zookeeper-like coordination service.
//
// The cluster is elastic: AddNode and Rebalance grow a running deployment
// live — ranges split, joining replicas catch up via data shipping before
// old members retire, and leadership spreads onto the new nodes — while
// clients follow the published layout automatically and reads and writes
// stay linearizable throughout (the nemesis suite checks exactly this).
//
// The package runs a full multi-node cluster in process, over a simulated
// network and simulated logging devices, which is how the paper's entire
// evaluation is reproduced on one machine (see bench_test.go and
// EXPERIMENTS.md). The underlying node implementation also runs over real
// TCP and real disks via cmd/spinnaker-server.
//
// Quickstart:
//
//	cluster, err := spinnaker.NewCluster(spinnaker.Options{Nodes: 3})
//	if err != nil { ... }
//	defer cluster.Close()
//
//	client := cluster.NewClient()
//	version, err := client.Put("user42", "email", []byte("x@example.com"))
//	value, version, err := client.Get("user42", "email", spinnaker.Strong)
package spinnaker

import (
	"errors"
	"fmt"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/sim"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Consistency selects the read consistency level (§3 of the paper).
type Consistency bool

const (
	// Strong routes the read to the cohort leader; the latest committed
	// value is always returned.
	Strong Consistency = true
	// Timeline may route the read to any replica; a possibly stale value
	// is returned in exchange for better performance. Staleness is
	// bounded by the commit period.
	Timeline Consistency = false
)

// Errors returned by the client API.
var (
	// ErrNotFound reports a missing row or column.
	ErrNotFound = core.ErrNotFound
	// ErrVersionMismatch is returned by conditional put/delete when the
	// column's current version differs from the one supplied.
	ErrVersionMismatch = core.ErrVersionMismatch
	// ErrUnavailable reports that the key's cohort has no majority alive
	// (or is mid-takeover). The operation took no effect.
	ErrUnavailable = core.ErrUnavailable
	// ErrAmbiguous reports a write whose outcome is unknown: it reached
	// the leader and was sequenced, but its commit was never confirmed
	// (partition or failover mid-write). It may or may not take effect;
	// readers that must know should re-read and compare versions.
	ErrAmbiguous = core.ErrAmbiguous
)

// LogDevice names a simulated logging-device latency profile.
type LogDevice string

// Logging device profiles (paper §9.2, App. D.4, D.6.2). Latencies are the
// benchmark harness's scaled models of the paper's hardware (see
// wal.DeviceHDD and friends for the exact figures).
const (
	// DeviceInstant has no simulated latency (unit tests, functional use).
	DeviceInstant LogDevice = "instant"
	// DeviceHDD models the dedicated SATA logging disk of Appendix C.
	DeviceHDD LogDevice = "hdd"
	// DeviceSSD models the FusionIO flash device of Appendix D.4.
	DeviceSSD LogDevice = "ssd"
	// DeviceMem models the main-memory log of Appendix D.6.2.
	DeviceMem LogDevice = "mem"
)

func (d LogDevice) profile() (wal.DeviceProfile, error) {
	switch d {
	case "", DeviceInstant:
		return wal.DeviceInstant, nil
	case DeviceHDD:
		return wal.DeviceHDD, nil
	case DeviceSSD:
		return wal.DeviceSSD, nil
	case DeviceMem:
		return wal.DeviceMem, nil
	default:
		return wal.DeviceProfile{}, fmt.Errorf("spinnaker: unknown log device %q", d)
	}
}

// Options configure an embedded cluster.
type Options struct {
	// Nodes is the cluster size (default 3; the paper's local testbed
	// uses 10, its EC2 runs 20-80).
	Nodes int
	// Replication is N, the cohort size (default 3, as in the paper).
	Replication int
	// CommitPeriod is the interval between the leader's asynchronous
	// commit messages; it bounds timeline-read staleness and follower
	// recovery work (paper §5, Table 1). Default 25ms.
	CommitPeriod time.Duration
	// NetworkDelay is the simulated one-way message latency (default 0).
	NetworkDelay time.Duration
	// LogDevice selects the logging-device latency profile (default
	// DeviceInstant).
	LogDevice LogDevice
	// PiggybackCommits carries commit information on propose messages
	// (App. D.1), shrinking staleness without extra messages.
	PiggybackCommits bool
	// DisableProposalBatching turns off the batched replication pipeline
	// (proposal batching is on by default): leaders fall back to one
	// propose message and one per-LSN ack per write, the paper's Figure 4
	// read literally. Ablation only.
	DisableProposalBatching bool
	// ReadyTimeout bounds the wait for initial leader elections
	// (default 30s).
	ReadyTimeout time.Duration
	// FaultSeed seeds the simulated network's per-link fault RNGs; with
	// the same seed and LinkFaults, the fault decision stream replays.
	FaultSeed int64
	// LinkFaults configures a fault plane on every node↔node link of
	// the simulated network: message drops, duplication, reordering, and
	// jittered delay beneath the replication protocol. The zero value is
	// clean TCP-like delivery. Client↔node links are never degraded
	// (client RPCs are not idempotent; in a real deployment TCP hides
	// sub-connection faults from them).
	LinkFaults LinkFaults
}

// LinkFaults configures the per-link fault plane; see the fields of
// transport.LinkFaults. All probabilities are per message.
type LinkFaults struct {
	// DropProb is the probability a message is silently dropped.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// ReorderProb is the probability a message is overtaken by its
	// successor on the link.
	ReorderProb float64
	// Jitter adds a uniformly random extra delay in [0, Jitter) per
	// message.
	Jitter time.Duration
}

// Cluster is an embedded multi-node Spinnaker deployment.
type Cluster struct {
	sc *sim.SpinnakerCluster
}

// NewCluster starts a cluster and waits until every key range has elected
// a leader and is open for writes.
func NewCluster(opts Options) (*Cluster, error) {
	profile, err := LogDevice(opts.LogDevice).profile()
	if err != nil {
		return nil, err
	}
	sc, err := sim.NewSpinnakerCluster(sim.Options{
		Nodes:                   opts.Nodes,
		Replication:             opts.Replication,
		NetworkDelay:            opts.NetworkDelay,
		Device:                  profile,
		CommitPeriod:            opts.CommitPeriod,
		PiggybackCommits:        opts.PiggybackCommits,
		DisableProposalBatching: opts.DisableProposalBatching,
		FaultSeed:               opts.FaultSeed,
		LinkFaults: transport.LinkFaults{
			DropProb:    opts.LinkFaults.DropProb,
			DupProb:     opts.LinkFaults.DupProb,
			ReorderProb: opts.LinkFaults.ReorderProb,
			Jitter:      opts.LinkFaults.Jitter,
		},
	})
	if err != nil {
		return nil, err
	}
	timeout := opts.ReadyTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if err := sc.WaitReady(timeout); err != nil {
		sc.Stop()
		return nil, err
	}
	return &Cluster{sc: sc}, nil
}

// NewClient attaches a new client to the cluster. A client is safe for
// concurrent use (asynchronous writes run on internal goroutines), but all
// of its traffic shares one endpoint; create one per worker for throughput.
func (c *Cluster) NewClient() *Client {
	return &Client{c: c.sc.NewClient()}
}

// Nodes lists the ids of the running nodes.
func (c *Cluster) Nodes() []string { return c.sc.Nodes() }

// AddNode starts a new, empty node and adds it to the cluster ring (§4's
// placement, made elastic). The node serves no key ranges until Rebalance
// moves some onto it. The generated node id is returned.
func (c *Cluster) AddNode() (string, error) { return c.sc.AddNode("") }

// Rebalance spreads the key space over the current ring: wide ranges are
// split until there is at least one per node (new replicas seed themselves
// from the split origin's leader), cohort membership is morphed one member
// at a time onto the ring placement (joining members catch up via data
// shipping before old members retire), and leadership transfers toward each
// range's home node. Safe to run while traffic executes: affected ranges
// see brief unavailability windows (elections, re-routes), never
// inconsistency, and clients follow the published layout automatically.
func (c *Cluster) Rebalance() error { return c.sc.Rebalance(5 * time.Minute) }

// NumRanges reports the number of key ranges under the current layout.
func (c *Cluster) NumRanges() int { return c.sc.CurrentLayout().NumRanges() }

// LayoutVersion reports the current published cluster layout version; it
// advances with every reconfiguration step.
func (c *Cluster) LayoutVersion() uint64 { return c.sc.CurrentLayout().Version() }

// Key formats a numeric row key at the cluster's key width; workloads that
// sweep numeric keys use it to hit every partition.
func (c *Cluster) Key(i int) string { return c.sc.Key(i) }

// LeaderOf returns the node currently leading the cohort for row's key
// range, as registered in the coordination service. The row is resolved
// under the current published layout, so the answer tracks splits and
// moves.
func (c *Cluster) LeaderOf(row string) string {
	return c.sc.LeaderOf(c.sc.CurrentLayout().RangeOf(row))
}

// CrashNode simulates a node crash: the process dies and the unforced tail
// of its log is lost. The cohort remains available as long as a majority
// of its replicas are alive (§8.1).
func (c *Cluster) CrashNode(id string) error { return c.sc.CrashNode(id) }

// FailDisk destroys a crashed node's stable storage; on restart it
// recovers entirely through the catch-up phase (§6.1).
func (c *Cluster) FailDisk(id string) { c.sc.FailDisk(id) }

// RestartNode restarts a crashed node over its surviving storage; it runs
// local recovery and catches up before rejoining its cohorts.
func (c *Cluster) RestartNode(id string) error { return c.sc.RestartNode(id) }

// PartitionNodes cuts every network link between the two groups, in both
// directions; nodes within a group keep full connectivity. Cohorts whose
// majority sits on one side remain available there; the minority side
// refuses writes rather than diverge (§8.1).
func (c *Cluster) PartitionNodes(a, b []string) { c.sc.PartitionNodes(a, b) }

// Isolate cuts a node off from every other endpoint, clients included —
// the dead-switch-port failure. Heal with HealAll.
func (c *Cluster) Isolate(id string) { c.sc.Isolate(id) }

// HealAll removes every network partition.
func (c *Cluster) HealAll() { c.sc.HealAll() }

// Close shuts the cluster down.
func (c *Cluster) Close() { c.sc.Stop() }

// Column is one column of a row in multi-column operations.
type Column struct {
	Col   string
	Value []byte
}

// ColumnValue is a read column with its version.
type ColumnValue struct {
	Col     string
	Value   []byte
	Version uint64
}

// Client is a routing datastore client implementing the API of §3. Each
// call executes as a single-operation transaction.
type Client struct {
	c *core.Client
}

// Get reads a column value and its version number from a row. Strong
// consistency always returns the latest value; Timeline may return a
// possibly stale value in exchange for better performance.
func (cl *Client) Get(row, col string, consistency Consistency) ([]byte, uint64, error) {
	return cl.c.Get(row, col, bool(consistency))
}

// GetRow reads every live column of a row.
func (cl *Client) GetRow(row string, consistency Consistency) ([]ColumnValue, error) {
	entries, err := cl.c.GetRow(row, bool(consistency))
	if err != nil {
		return nil, err
	}
	out := make([]ColumnValue, 0, len(entries))
	for _, e := range entries {
		out = append(out, ColumnValue{Col: e.Key.Col, Value: e.Cell.Value, Version: e.Cell.Version})
	}
	return out, nil
}

// Put inserts a column value into a row and returns its version number.
func (cl *Client) Put(row, col string, value []byte) (uint64, error) {
	return cl.c.Put(row, col, value)
}

// WriteFuture is the handle to an in-flight asynchronous write started with
// PutAsync or DeleteAsync.
type WriteFuture struct {
	f *core.WriteFuture
}

// Wait blocks until the write commits (or fails) and returns the version
// assigned to it. It may be called multiple times and from any goroutine.
func (w *WriteFuture) Wait() (uint64, error) {
	vs, err := w.f.Wait()
	if err != nil || len(vs) == 0 {
		return 0, err
	}
	return vs[0], nil
}

// PutAsync starts a put without waiting for it to commit. Issuing several
// writes before calling Wait pipelines them: the leader coalesces
// concurrently submitted writes into shared propose batches and log forces,
// so a single client can saturate the replication pipeline. Submission
// applies backpressure — with many writes already in flight, PutAsync
// blocks until a slot frees rather than queueing without bound.
func (cl *Client) PutAsync(row, col string, value []byte) *WriteFuture {
	return &WriteFuture{f: cl.c.PutAsync(row, col, value)}
}

// DeleteAsync starts a delete without waiting for it to commit; it applies
// the same backpressure as PutAsync.
func (cl *Client) DeleteAsync(row, col string) *WriteFuture {
	return &WriteFuture{f: cl.c.DeleteAsync(row, col)}
}

// Batch collects writes to independent rows for pipelined submission. Each
// write remains its own single-operation transaction (there are no
// cross-row transactions, §3); batching overlaps their replication instead
// of running them lockstep.
type Batch struct {
	b *core.Batch
}

// NewBatch returns an empty write batch bound to this client.
func (cl *Client) NewBatch() *Batch { return &Batch{b: cl.c.NewBatch()} }

// Put adds a put to the batch.
func (b *Batch) Put(row, col string, value []byte) { b.b.Put(row, col, value) }

// Delete adds a delete to the batch.
func (b *Batch) Delete(row, col string) { b.b.Delete(row, col) }

// Len reports the number of writes queued in the batch.
func (b *Batch) Len() int { return b.b.Len() }

// Run submits every write concurrently, waits for them all, and returns the
// version assigned to each write in batch order plus the first error
// encountered. The batch is reset for reuse.
func (b *Batch) Run() ([]uint64, error) { return b.b.Run() }

// Delete removes a column from a row.
func (cl *Client) Delete(row, col string) error {
	return cl.c.Delete(row, col)
}

// ConditionalPut inserts a new column value only if the column's current
// version number equals version; otherwise ErrVersionMismatch is returned.
// Use version 0 to insert only if the column does not exist. Together with
// Get, this provides optimistic concurrency control for read-modify-write
// transactions on a row (§3).
func (cl *Client) ConditionalPut(row, col string, value []byte, version uint64) (uint64, error) {
	return cl.c.ConditionalPut(row, col, value, version)
}

// ConditionalDelete removes the column only if its current version equals
// version.
func (cl *Client) ConditionalDelete(row, col string, version uint64) error {
	return cl.c.ConditionalDelete(row, col, version)
}

// MultiPut atomically writes several columns of the same row in one
// single-operation transaction.
func (cl *Client) MultiPut(row string, cols []Column) ([]uint64, error) {
	cc := make([]core.Column, len(cols))
	for i, col := range cols {
		cc[i] = core.Column{Col: col.Col, Value: col.Value}
	}
	return cl.c.MultiPut(row, cc)
}

// ConditionalMultiPut atomically writes several columns of the same row,
// each guarded by its expected current version; if any check fails the
// whole transaction fails.
func (cl *Client) ConditionalMultiPut(row string, cols []Column, versions []uint64) ([]uint64, error) {
	cc := make([]core.Column, len(cols))
	for i, col := range cols {
		cc[i] = core.Column{Col: col.Col, Value: col.Value}
	}
	return cl.c.ConditionalMultiPut(row, cc, versions)
}

// Increment transactionally adds delta to a counter column using the
// get + conditionalPut retry loop from §3 of the paper, returning the new
// value.
func (cl *Client) Increment(row, col string, delta int64) (int64, error) {
	for {
		var cur int64
		val, ver, err := cl.Get(row, col, Strong)
		switch {
		case err == nil:
			if len(val) != 8 {
				return 0, fmt.Errorf("spinnaker: column %s:%s is not a counter", row, col)
			}
			cur = int64(beUint64(val))
		case errors.Is(err, ErrNotFound):
			cur = 0
		default:
			return 0, err
		}
		next := cur + delta
		if _, err := cl.ConditionalPut(row, col, bePut(uint64(next)), ver); err == nil {
			return next, nil
		} else if !errors.Is(err, ErrVersionMismatch) {
			return 0, err
		}
		// Lost the race; retry with a fresh read.
	}
}

func beUint64(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func bePut(v uint64) []byte {
	b := make([]byte, 8)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b
}
