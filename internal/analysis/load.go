// Package analysis is spinnaker-lint: a stdlib-only static-analysis
// driver plus the four repo-specific analyzers that machine-check the
// codebase's hard-won invariants (see ARCHITECTURE.md "Invariants"):
//
//   - detcheck  — determinism lint for the simulation/fault planes (PR 2:
//     replayable FaultSeed runs need seed-pure code).
//   - aliascheck — the zero-copy aliasing contract on the replication
//     codec and the WAL's pooled encode scratch (PR 5).
//   - lockcheck — annotation-driven lock discipline: //spinnaker:locked
//     obligations, lock-ordering pairs, and "never hold this lock across
//     blob I/O or channel sends" (PR 4).
//   - hotpath   — allocation hygiene for //spinnaker:hotpath functions,
//     the static complement to the spinnaker-bench -guard allocs gate
//     (PR 5).
//
// The loader below is deliberately dependency-free: module-internal
// import paths are resolved against the module root by this package
// itself, and everything else (the standard library) goes through the
// go/importer "source" importer, so the whole module type-checks with
// zero external tooling.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	// Path is the import path ("spinnaker/internal/core").
	Path string
	// Dir is the absolute directory holding the package's files.
	Dir string
	// Files are the parsed non-test Go files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries identifier resolution and expression types.
	Info *types.Info
}

// Module is a loaded module: every package reachable by walking the
// module root, parsed and type-checked against a shared FileSet.
type Module struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// ModPath is the module path from go.mod.
	ModPath string
	// Fset positions every file in the module.
	Fset *token.FileSet
	// Packages maps import path → package, for every loaded package.
	Packages map[string]*Package
}

// Pkgs returns the loaded packages sorted by import path.
func (m *Module) Pkgs() []*Package {
	out := make([]*Package, 0, len(m.Packages))
	for _, p := range m.Packages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LoadModule walks root (a directory containing go.mod), parses every
// non-test Go file, and type-checks each package. Test files are
// excluded by design: the analyzers enforce contracts on shipped code,
// and test harnesses legitimately use wall-clock timeouts the
// determinism lint would otherwise flag.
//
// dirs, when non-empty, restricts loading to those directories
// (relative to root or absolute); their module-internal imports are
// still loaded as needed.
func LoadModule(root string, dirs ...string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:     root,
		ModPath:  modPath,
		Fset:     token.NewFileSet(),
		Packages: map[string]*Package{},
	}
	want := dirs
	if len(want) == 0 {
		if want, err = goDirs(root); err != nil {
			return nil, err
		}
	}
	ld := &loader{
		mod:     m,
		std:     importer.ForCompiler(m.Fset, "source", nil),
		checked: map[string]*types.Package{},
	}
	for _, d := range want {
		if !filepath.IsAbs(d) {
			d = filepath.Join(root, d)
		}
		rel, err := filepath.Rel(root, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module root %s", d, root)
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := ld.load(path); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LoadDir loads a single directory as a standalone package (used for
// fixture corpora under testdata/, which the go tool ignores). The
// directory's imports must be resolvable: module-internal paths against
// root, the rest from the standard library.
func LoadDir(root, dir string) (*Module, *Package, error) {
	m, err := LoadModule(root, dir)
	if err != nil {
		return nil, nil, err
	}
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(m.Root, dir) // m.Root is root, absolutized
	}
	for _, p := range m.Packages {
		if p.Dir == abs {
			return m, p, nil
		}
	}
	return nil, nil, fmt.Errorf("analysis: no package loaded from %s", dir)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w (spinnaker-lint must run inside the module)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// goDirs lists every directory under root holding at least one non-test
// Go file, skipping testdata (fixture corpora), hidden directories, and
// vendor.
func goDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	return out, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// loader resolves and type-checks packages: module-internal paths from
// source against the module root, everything else via the stdlib source
// importer.
type loader struct {
	mod     *Module
	std     types.Importer
	checked map[string]*types.Package // module-internal, by import path
	stack   []string                  // cycle detection
}

// Import implements types.Importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	return ld.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (ld *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == ld.mod.ModPath || strings.HasPrefix(path, ld.mod.ModPath+"/") {
		return ld.load(path)
	}
	if from, ok := ld.std.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return ld.std.Import(path)
}

// load parses and type-checks one module-internal package (memoized).
func (ld *loader) load(path string) (*types.Package, error) {
	if tp, ok := ld.checked[path]; ok {
		return tp, nil
	}
	for _, on := range ld.stack {
		if on == path {
			return nil, fmt.Errorf("analysis: import cycle: %s", strings.Join(append(ld.stack, path), " -> "))
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.mod.ModPath), "/")
	dir := filepath.Join(ld.mod.Root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %q: %w", path, err)
	}
	var names []string
	for _, e := range ents {
		if isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: import %q: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.mod.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: ld}
	tp, err := conf.Check(path, ld.mod.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	ld.checked[path] = tp
	ld.mod.Packages[path] = &Package{Path: path, Dir: dir, Files: files, Types: tp, Info: info}
	return tp, nil
}
