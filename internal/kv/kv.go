// Package kv defines the data model shared by Spinnaker's storage layers
// (paper §3): data is organized into rows identified by a key, each row
// holding any number of columns with values and version numbers. Column
// names and values are opaque bytes.
package kv

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"spinnaker/internal/wal"
)

// Key addresses one cell: a (row key, column name) pair.
type Key struct {
	Row string
	Col string
}

// Compare orders keys by row, then column.
func (k Key) Compare(o Key) int {
	if c := bytes.Compare([]byte(k.Row), []byte(o.Row)); c != 0 {
		return c
	}
	return bytes.Compare([]byte(k.Col), []byte(o.Col))
}

// Less reports whether k sorts before o.
func (k Key) Less(o Key) bool { return k.Compare(o) < 0 }

// String renders the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("%s:%s", k.Row, k.Col) }

// Cell is one versioned column value. Version numbers are monotonically
// increasing integers managed by the datastore and exposed through its get
// API (paper §3); they drive the optimistic concurrency control of
// conditional put/delete. Deleted marks a tombstone. Timestamp is used only
// by the eventually consistent baseline for conflict resolution (paper §9:
// "conflicts are resolved using timestamps").
type Cell struct {
	Value     []byte
	Version   uint64
	LSN       wal.LSN
	Timestamp int64
	Deleted   bool
}

// Entry pairs a key with its cell, the unit that memtables and SSTables
// store and iterate.
type Entry struct {
	Key  Key
	Cell Cell
}

// Newer reports whether c should supersede o when both describe the same
// key. The eventually consistent baseline resolves conflicts by wall-clock
// timestamp (its cells carry one; Spinnaker's carry zero, making the
// comparison a tie), then by LSN — Spinnaker's writes execute in LSN order
// within a cohort, so the LSN decides — and finally by version number.
func (c Cell) Newer(o Cell) bool {
	if c.Timestamp != o.Timestamp {
		return c.Timestamp > o.Timestamp
	}
	if c.LSN != o.LSN {
		return c.LSN > o.LSN
	}
	return c.Version > o.Version
}

// EncodeEntry serializes an entry, appending to dst:
//
//	u16 rowLen | row | u16 colLen | col |
//	u64 version | u64 lsn | i64 timestamp | u8 deleted |
//	u32 valueLen | value
func EncodeEntry(dst []byte, e Entry) []byte {
	var scratch [8]byte
	put16 := func(v int) {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(v))
		dst = append(dst, scratch[:2]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		dst = append(dst, scratch[:8]...)
	}
	put16(len(e.Key.Row))
	dst = append(dst, e.Key.Row...)
	put16(len(e.Key.Col))
	dst = append(dst, e.Key.Col...)
	put64(e.Cell.Version)
	put64(uint64(e.Cell.LSN))
	put64(uint64(e.Cell.Timestamp))
	if e.Cell.Deleted {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(e.Cell.Value)))
	dst = append(dst, scratch[:4]...)
	dst = append(dst, e.Cell.Value...)
	return dst
}

// DecodeEntry parses one entry from b, returning it and the bytes consumed.
func DecodeEntry(b []byte) (Entry, int, error) {
	var e Entry
	off := 0
	need := func(n int) error {
		if len(b)-off < n {
			return fmt.Errorf("kv: entry truncated at offset %d (need %d of %d)", off, n, len(b))
		}
		return nil
	}
	if err := need(2); err != nil {
		return e, 0, err
	}
	rl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if err := need(rl); err != nil {
		return e, 0, err
	}
	e.Key.Row = string(b[off : off+rl])
	off += rl
	if err := need(2); err != nil {
		return e, 0, err
	}
	cl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if err := need(cl); err != nil {
		return e, 0, err
	}
	e.Key.Col = string(b[off : off+cl])
	off += cl
	if err := need(8 + 8 + 8 + 1 + 4); err != nil {
		return e, 0, err
	}
	e.Cell.Version = binary.LittleEndian.Uint64(b[off:])
	off += 8
	e.Cell.LSN = wal.LSN(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	e.Cell.Timestamp = int64(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	e.Cell.Deleted = b[off] == 1
	off++
	vl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if err := need(vl); err != nil {
		return e, 0, err
	}
	if vl > 0 {
		e.Cell.Value = append([]byte(nil), b[off:off+vl]...)
	}
	off += vl
	return e, off, nil
}
