// Package merkle builds range digests over sorted storage entries so two
// replicas can agree on which key subranges differ without exchanging the
// data itself (anti-entropy for SSTable-based catch-up, paper §6.1; the
// technique follows Dynamo-style Merkle synchronization). The key space is
// partitioned into leaves by interior row cuts — leaf i covers
// [cuts[i-1], cuts[i]), with the first leaf open at the bottom and the last
// open at the top — and each leaf digests the resolved entries whose row
// falls inside it. Equal leaf digests mean byte-identical resolved content;
// only differing leaves need shipping.
//
// Cuts always fall on row boundaries, so a whole row lands in exactly one
// leaf and the leaf ranges compose with the replication layer's
// [low, high) range bounds ("" = open end).
package merkle

import (
	"crypto/sha256"

	"spinnaker/internal/kv"
)

// DigestSize is the byte length of a leaf or root digest.
const DigestSize = sha256.Size

// Digest is one leaf (or root) hash.
type Digest [DigestSize]byte

// Range is a half-open key subrange [Low, High); empty strings mean the
// open ends of the key space (Low = "" is the bottom, High = "" the top).
type Range struct {
	Low, High string
}

// Tree is a one-level Merkle tree over a replica's sorted entries: leaf
// digests plus a root folding them together. One level suffices here — both
// sides hold the whole tree in memory and diff it leaf by leaf; the root
// only short-circuits the equal case.
type Tree struct {
	cuts   []string // interior boundaries, ascending; len(leaves) == len(cuts)+1
	leaves []Digest
	root   Digest
}

// Build derives row-boundary cuts from the sorted entries (targeting about
// targetLeaves leaves) and digests them. Entries must be sorted by key, the
// order kv-layer scans produce.
func Build(entries []kv.Entry, targetLeaves int) *Tree {
	if targetLeaves < 1 {
		targetLeaves = 1
	}
	stride := len(entries) / targetLeaves
	if stride < 1 {
		stride = 1
	}
	var cuts []string
	sinceCut := 0
	for i, e := range entries {
		// Cut only where the row changes: a row must never straddle a
		// leaf boundary, or the two sides could digest the same row's
		// columns into different leaves.
		if sinceCut >= stride && i > 0 && e.Key.Row != entries[i-1].Key.Row {
			cuts = append(cuts, e.Key.Row)
			sinceCut = 0
		}
		sinceCut++
	}
	return BuildWithCuts(cuts, entries)
}

// BuildWithCuts digests entries into the leaves defined by cuts (ascending
// row boundaries). The follower side of anti-entropy uses the leader's cuts
// so the two trees are comparable.
func BuildWithCuts(cuts []string, entries []kv.Entry) *Tree {
	t := &Tree{
		cuts:   append([]string(nil), cuts...),
		leaves: make([]Digest, len(cuts)+1),
	}
	h := sha256.New()
	var buf []byte
	leaf, dirty := 0, false
	seal := func() {
		if dirty {
			h.Sum(t.leaves[leaf][:0])
			h.Reset()
			dirty = false
		}
		// An untouched leaf keeps the zero digest: "no entries" compares
		// equal between replicas without hashing anything.
	}
	for _, e := range entries {
		for leaf < len(t.cuts) && e.Key.Row >= t.cuts[leaf] {
			seal()
			leaf++
		}
		// kv.EncodeEntry is length-prefixed per field, so the digest
		// stream is unambiguous (no concatenation collisions).
		buf = kv.EncodeEntry(buf[:0], e)
		h.Write(buf)
		dirty = true
	}
	seal()

	h.Reset()
	for i := range t.leaves {
		h.Write(t.leaves[i][:])
	}
	h.Sum(t.root[:0])
	return t
}

// New reassembles a tree from transported cuts and leaf digests, e.g. the
// manifest a leader ships. It returns nil if the shapes disagree.
func New(cuts []string, leaves []Digest) *Tree {
	if len(leaves) != len(cuts)+1 {
		return nil
	}
	t := &Tree{
		cuts:   append([]string(nil), cuts...),
		leaves: append([]Digest(nil), leaves...),
	}
	h := sha256.New()
	for i := range t.leaves {
		h.Write(t.leaves[i][:])
	}
	h.Sum(t.root[:0])
	return t
}

// Cuts returns the interior row boundaries.
func (t *Tree) Cuts() []string { return append([]string(nil), t.cuts...) }

// Leaves returns the leaf digests; leaf i covers [cuts[i-1], cuts[i]).
func (t *Tree) Leaves() []Digest { return append([]Digest(nil), t.leaves...) }

// Root returns the digest folding every leaf.
func (t *Tree) Root() Digest { return t.root }

// leafRange returns leaf i's key subrange.
func (t *Tree) leafRange(i int) Range {
	r := Range{}
	if i > 0 {
		r.Low = t.cuts[i-1]
	}
	if i < len(t.cuts) {
		r.High = t.cuts[i]
	}
	return r
}

// Diff returns the merged key subranges where the two trees' content
// differs. Trees built over different cuts are incomparable, and the only
// safe answer is "everything differs": the full range is returned. Adjacent
// differing leaves coalesce into one range.
func Diff(a, b *Tree) []Range {
	if a == nil || b == nil {
		return []Range{{}}
	}
	if len(a.cuts) != len(b.cuts) {
		return []Range{{}}
	}
	for i := range a.cuts {
		if a.cuts[i] != b.cuts[i] {
			return []Range{{}}
		}
	}
	if a.root == b.root {
		return nil
	}
	var out []Range
	for i := range a.leaves {
		if a.leaves[i] == b.leaves[i] {
			continue
		}
		r := a.leafRange(i)
		if n := len(out); n > 0 && out[n-1].High != "" && out[n-1].High == r.Low {
			out[n-1].High = r.High // coalesce adjacent differing leaves
			continue
		}
		out = append(out, r)
	}
	return out
}

// Intersects reports whether the row span [minRow, maxRow] (inclusive, as
// SSTable key-range tags are) overlaps r.
func (r Range) Intersects(minRow, maxRow string) bool {
	return (r.High == "" || minRow < r.High) && (r.Low == "" || maxRow >= r.Low)
}
