// Package unknownann exercises the unknown-annotation hard error: a
// typo must fail the run rather than silently unguard the function.
package unknownann

// Hot misspells its annotation.
//
//spinnaker:hotpth
func Hot() {}
