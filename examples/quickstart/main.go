// Quickstart: start an embedded 3-node Spinnaker cluster, write and read
// with the §3 API (put / get / delete / conditional put / multi-column),
// and observe strong vs timeline consistency.
package main

import (
	"errors"
	"fmt"
	"log"

	"spinnaker"
)

func main() {
	cluster, err := spinnaker.NewCluster(spinnaker.Options{Nodes: 3})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()
	fmt.Printf("cluster up: nodes=%v\n", cluster.Nodes())

	client := cluster.NewClient()

	// put(key, colname, colvalue)
	v, err := client.Put("user:42", "email", []byte("ada@example.com"))
	if err != nil {
		log.Fatalf("put: %v", err)
	}
	fmt.Printf("put user:42 email -> version %d\n", v)

	// get(key, colname, consistent=true): the latest value, always.
	val, strongVer, err := client.Get("user:42", "email", spinnaker.Strong)
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("strong get  -> %q (version %d)\n", val, strongVer)

	// get(key, colname, consistent=false): possibly stale, faster.
	if tlVal, tlVer, err := client.Get("user:42", "email", spinnaker.Timeline); err == nil {
		fmt.Printf("timeline get-> %q (version %d)\n", tlVal, tlVer)
	} else {
		fmt.Printf("timeline get-> not yet visible at this replica (%v)\n", err)
	}

	// conditionalPut(key, colname, value, v): optimistic concurrency.
	if _, err := client.ConditionalPut("user:42", "email", []byte("clobber"), strongVer+999); err != nil {
		fmt.Printf("conditional put with stale version correctly failed: %v\n", err)
	}
	v2, err := client.ConditionalPut("user:42", "email", []byte("ada@new.example.com"), strongVer)
	if err != nil {
		log.Fatalf("conditional put: %v", err)
	}
	fmt.Printf("conditional put succeeded -> version %d\n", v2)

	// Multi-column single-operation transaction.
	if _, err := client.MultiPut("user:42", []spinnaker.Column{
		{Col: "name", Value: []byte("Ada Lovelace")},
		{Col: "lang", Value: []byte("Go")},
	}); err != nil {
		log.Fatalf("multiput: %v", err)
	}
	row, err := client.GetRow("user:42", spinnaker.Strong)
	if err != nil {
		log.Fatalf("getrow: %v", err)
	}
	fmt.Println("row user:42:")
	for _, col := range row {
		fmt.Printf("  %-6s = %q (version %d)\n", col.Col, col.Value, col.Version)
	}

	// delete(key, colname)
	if err := client.Delete("user:42", "lang"); err != nil {
		log.Fatalf("delete: %v", err)
	}
	if _, _, err := client.Get("user:42", "lang", spinnaker.Strong); errors.Is(err, spinnaker.ErrNotFound) {
		fmt.Println("deleted column is gone")
	}
}
