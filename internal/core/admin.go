package core

import (
	"errors"
	"fmt"

	"spinnaker/internal/cluster"
	"spinnaker/internal/coord"
)

// LayoutPath is the znode the current cluster layout is published at.
// Nodes watch it and adopt successor layouts live (elastic scale-out);
// clients refresh from it when a node replies StatusWrongLayout.
const LayoutPath = "/cluster/layout"

// currentPath is the parent of the per-node "caught up" markers for a
// range: a member that has completed catch-up holds an ephemeral child
// here. The reconfiguration executor admits a joining member to a cohort
// (by shrinking the old member out) only once its marker exists.
func currentPath(r uint32) string { return fmt.Sprintf("/ranges/%d/current", r) }

// ErrLayoutConflict reports a lost publication race: another publisher
// advanced the layout first. Re-read, re-derive, retry.
var ErrLayoutConflict = errors.New("core: layout publication conflict")

// PublishLayout stores l at LayoutPath, guarded so versions only advance:
// publishing over an equal-or-newer layout fails with ErrLayoutConflict.
func PublishLayout(sess *coord.Session, l *cluster.Layout) error {
	if err := sess.EnsurePath("/cluster"); err != nil {
		return err
	}
	data := l.Encode()
	for {
		cur, ver, err := sess.GetVersion(LayoutPath)
		if errors.Is(err, coord.ErrNoNode) {
			if _, err := sess.Create(LayoutPath, data, 0); err == nil {
				return nil
			} else if !errors.Is(err, coord.ErrNodeExists) {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		if len(cur) > 0 {
			prev, err := cluster.Decode(cur)
			if err == nil && prev.Version() >= l.Version() {
				return ErrLayoutConflict
			}
		}
		if _, err := sess.CompareAndSet(LayoutPath, data, ver); err == nil {
			return nil
		} else if !errors.Is(err, coord.ErrBadVersion) {
			return err
		}
	}
}

// FetchLayout reads the published layout, or coord.ErrNoNode if none has
// been published yet.
func FetchLayout(sess *coord.Session) (*cluster.Layout, error) {
	data, err := sess.Get(LayoutPath)
	if err != nil {
		return nil, err
	}
	return cluster.Decode(data)
}

// markCurrent records that this node's replica of rangeID has completed
// catch-up, via an ephemeral marker (it disappears with the node's session,
// so a crashed-and-restarted member must re-earn it).
func (n *Node) markCurrent(rangeID uint32) {
	sess := n.coordSess
	if err := sess.EnsurePath(currentPath(rangeID)); err != nil {
		return
	}
	_, err := sess.Create(currentPath(rangeID)+"/"+n.cfg.ID, nil, coord.FlagEphemeral)
	if err != nil && !errors.Is(err, coord.ErrNodeExists) {
		return
	}
}

// dropCurrent removes this node's catch-up marker for rangeID (replica
// retirement).
func (n *Node) dropCurrent(rangeID uint32) {
	_ = n.coordSess.Delete(currentPath(rangeID) + "/" + n.cfg.ID)
}

// CurrentMembers lists the nodes holding catch-up markers for rangeID.
func CurrentMembers(sess *coord.Session, rangeID uint32) ([]string, error) {
	kids, err := sess.Children(currentPath(rangeID))
	if errors.Is(err, coord.ErrNoNode) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(kids))
	for _, k := range kids {
		out = append(out, k.Name)
	}
	return out, nil
}
