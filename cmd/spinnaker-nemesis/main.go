// spinnaker-nemesis runs composed fault scenarios against an in-process
// cluster and checks every recorded operation history for per-key
// linearizability. It is the command-line face of the test suite's
// nemesis harness (internal/sim): CI smoke-runs it, and a failing seed
// reported by any run can be replayed exactly with -seed.
//
// Usage:
//
//	spinnaker-nemesis -scenario all -duration 3s
//	spinnaker-nemesis -scenario crash-disk -seed 404      # replay a failure
//	spinnaker-nemesis -scenario flap-links -drop 0.02 -dup 0.02 -reorder 0.05
//	spinnaker-nemesis -sweep 20                           # 20 seeds per scenario
//	spinnaker-nemesis -list
//
// Exit status 1 reports a consistency violation (the reproducing seed and
// offending history are printed); 2 reports usage or infrastructure
// errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"spinnaker/internal/sim"
	"spinnaker/internal/transport"
)

func main() {
	var (
		scenario = flag.String("scenario", "all", "fault to compose: one of the -list names, or 'all'")
		seed     = flag.Int64("seed", 1, "base seed; a failing run is replayed by passing its printed seed")
		sweep    = flag.Int("sweep", 1, "number of consecutive seeds to run per scenario")
		duration = flag.Duration("duration", 3*time.Second, "fault-injection window per run")
		writers  = flag.Int("writers", 4, "concurrent workload clients")
		keys     = flag.Int("keys", 5, "distinct contended keys")
		nodes    = flag.Int("nodes", 3, "cluster size")
		drop     = flag.Float64("drop", 0, "per-message drop probability on node links")
		dup      = flag.Float64("dup", 0, "per-message duplication probability on node links")
		reorder  = flag.Float64("reorder", 0, "per-message reorder probability on node links")
		jitter   = flag.Duration("jitter", 0, "max extra per-message delay on node links")
		list     = flag.Bool("list", false, "list scenario names and exit")
	)
	flag.Parse()

	if *list {
		for _, f := range sim.AllFaults {
			fmt.Println(string(f))
		}
		fmt.Println("rebalance")
		return
	}

	name := *scenario
	faults := sim.AllFaults
	rebalance := false
	switch name {
	case "all":
	case "rebalance":
		// Live reconfiguration (AddNode + Rebalance) composed with
		// leader isolation and crash-restart — the scale-out acceptance
		// scenario.
		rebalance = true
		faults = []sim.NemesisFault{sim.FaultIsolateLeader, sim.FaultCrashRestart}
	default:
		faults = nil
		for _, f := range sim.AllFaults {
			if string(f) == name {
				faults = []sim.NemesisFault{f}
			}
		}
		if faults == nil {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; see -list\n", name)
			os.Exit(2)
		}
	}

	failed := false
	for i := 0; i < *sweep; i++ {
		s := *seed + int64(i)
		opts := sim.ScenarioOptions{
			Seed:      s,
			Nodes:     *nodes,
			Writers:   *writers,
			Keys:      *keys,
			Duration:  *duration,
			Faults:    faults,
			Rebalance: rebalance,
			LinkFaults: transport.LinkFaults{
				DropProb:    *drop,
				DupProb:     *dup,
				ReorderProb: *reorder,
				Jitter:      *jitter,
			},
		}
		start := time.Now()
		res, err := sim.RunScenario(opts)
		switch {
		case errors.Is(err, sim.ErrNotLinearizable):
			failed = true
			fmt.Printf("%-14s seed %-6d VIOLATION (%v)\n", name, s, time.Since(start).Round(time.Millisecond))
			fmt.Fprintf(os.Stderr, "\n%v\n\nnemesis schedule:\n%s\n", err, res.FormatSteps())
		case err != nil:
			fmt.Fprintf(os.Stderr, "%s seed %d: %v\n", name, s, err)
			os.Exit(2)
		default:
			fmt.Printf("%-14s seed %-6d ok: %6d ops (%d reads, %d acked writes, %d ambiguous), %2d faults, linearizable (%v)\n",
				name, s, res.Ops, res.Reads, res.Writes, res.Check.Unknown, len(res.Steps), time.Since(start).Round(time.Millisecond))
		}
	}
	if failed {
		os.Exit(1)
	}
}
