package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/sim"
	"spinnaker/internal/wal"
)

// AblationGroupCommit quantifies the group-commit optimization the paper
// inherits from [13] (§5: "group commit is also used to improve logging
// performance"): with it off, every write forces the device individually.
func AblationGroupCommit(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	const threads = 32
	keySpace := cfg.Rows * 50

	run := func(disable bool) (sim.LoadPoint, float64, error) {
		opts := spinOpts(cfg, wal.DeviceHDD)
		opts.DisableGroupCommit = disable
		sc, err := newSpin(opts)
		if err != nil {
			return sim.LoadPoint{}, 0, err
		}
		defer sc.Stop()
		clients := make([]*core.Client, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
		}
		point := sim.RunClosedLoop(threads, cfg.PointDuration, func(t, i int) error {
			_, err := clients[t].Put(sim.StridedKey(t*keySpace/threads+i, keySpace, 8), "c", value)
			return err
		})
		// Forces per committed write, summed over the cluster's logs.
		var appends, forces int64
		for _, id := range sc.Nodes() {
			if n, ok := sc.Node(id); ok {
				a, f := n.LogStats()
				appends, forces = appends+a, forces+f
			}
		}
		perWrite := 0.0
		if point.Throughput > 0 && appends > 0 {
			perWrite = float64(forces) / (point.Throughput * cfg.PointDuration.Seconds())
		}
		return point, perWrite, nil
	}

	on, onForces, err := run(false)
	if err != nil {
		return Table{}, err
	}
	cfg.progress("ablation-groupcommit: group commit on done")
	off, offForces, err := run(true)
	if err != nil {
		return Table{}, err
	}
	cfg.progress("ablation-groupcommit: group commit off done")

	return Table{
		ID:      "Ablation: group commit",
		Title:   fmt.Sprintf("write throughput with %d threads (4KB values, hdd log)", threads),
		Columns: []string{"group commit", "req/s", "avg ms", "device forces/write"},
		Rows: [][]string{
			{"on", tput(on.Throughput), ms(on.AvgLatency), fmt.Sprintf("%.2f", onForces)},
			{"off", tput(off.Throughput), ms(off.AvgLatency), fmt.Sprintf("%.2f", offForces)},
		},
		Notes: "group commit batches concurrent forces: higher throughput, fewer device forces per write",
	}, nil
}

// measureStaleness writes generations and measures how long timeline reads
// take to converge on every replica (the §5 staleness bound).
func measureStaleness(sc *sim.SpinnakerCluster, rounds int) (time.Duration, error) {
	writer := sc.NewClient()
	reader := sc.NewClient()
	var worst time.Duration
	for gen := 0; gen < rounds; gen++ {
		val := []byte(fmt.Sprintf("gen-%04d", gen))
		if _, err := writer.Put(sc.Key(1), "c", val); err != nil {
			return 0, err
		}
		wrote := time.Now()
		fresh := 0
		for fresh < 12 {
			got, _, err := reader.Get(sc.Key(1), "c", false)
			if err == nil && string(got) == string(val) {
				fresh++
			} else {
				fresh = 0
				time.Sleep(100 * time.Microsecond)
			}
			if time.Since(wrote) > 30*time.Second {
				return 0, fmt.Errorf("bench: timeline reads never converged")
			}
		}
		if lag := time.Since(wrote); lag > worst {
			worst = lag
		}
	}
	return worst, nil
}

// AblationStaleness shows follower staleness shrinking with the commit
// period (§5: "the staleness of followers can be reduced by decreasing the
// commit period").
func AblationStaleness(cfg Config) (Table, error) {
	cfg.fillDefaults()
	table := Table{
		ID:      "Ablation: commit period vs staleness",
		Title:   "worst observed timeline-read staleness vs commit period",
		Columns: []string{"commit period", "worst staleness"},
		Notes:   "staleness bounded by ~one commit period",
	}
	for _, period := range []time.Duration{100 * time.Millisecond, 25 * time.Millisecond, 5 * time.Millisecond} {
		opts := spinOpts(cfg, wal.DeviceInstant)
		opts.Nodes = 3
		opts.CommitPeriod = period
		sc, err := newSpin(opts)
		if err != nil {
			return Table{}, err
		}
		worst, err := measureStaleness(sc, 10)
		sc.Stop()
		if err != nil {
			return Table{}, err
		}
		table.Rows = append(table.Rows, []string{period.String(), worst.Round(time.Millisecond).String()})
		cfg.progress("ablation-staleness: period=%v done", period)
	}
	return table, nil
}

// AblationPiggyback evaluates App. D.1's suggestion: piggy-backing commit
// information on propose messages keeps followers nearly current even with
// a long commit period, for free.
func AblationPiggyback(cfg Config) (Table, error) {
	cfg.fillDefaults()
	table := Table{
		ID:      "Ablation: piggybacked commits",
		Title:   "timeline staleness under steady writes, 500ms commit period",
		Columns: []string{"piggyback", "worst staleness"},
		Notes:   "piggybacking makes staleness track write inter-arrival instead of the commit period",
	}
	for _, piggy := range []bool{false, true} {
		opts := spinOpts(cfg, wal.DeviceInstant)
		opts.Nodes = 3
		opts.CommitPeriod = 500 * time.Millisecond
		opts.PiggybackCommits = piggy
		sc, err := newSpin(opts)
		if err != nil {
			return Table{}, err
		}
		// Steady background writes so proposes (the piggyback carrier)
		// keep flowing.
		stop := make(chan struct{})
		go func() {
			c := sc.NewClient()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = c.Put(sc.Key(100+i%100), "c", []byte("bg"))
				time.Sleep(time.Millisecond)
			}
		}()
		worst, err := measureStaleness(sc, 6)
		close(stop)
		sc.Stop()
		if err != nil {
			return Table{}, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(piggy), worst.Round(time.Millisecond).String(),
		})
		cfg.progress("ablation-piggyback: piggy=%v done", piggy)
	}
	return table, nil
}

// AblationProposalBatching quantifies the batched, pipelined replication
// path against the paper's per-write protocol ("Practical Experience
// Report: The Performance of Paxos in the Cloud" identifies batching and
// pipelining as the dominant throughput levers for cloud Paxos): with
// batching on, the leader coalesces concurrently sequenced writes into one
// propose batch per peer and followers reply with one cumulative ack per
// batch, so per-message overhead is paid per batch instead of per write.
//
// The experiment runs pipelined writers (each closed-loop iteration is a
// Batch of pipeWindow puts — the workload batching exists for) on the
// main-memory log (App. D.6.2): with a 50µs force, protocol overhead —
// not the device — is the bottleneck, which is the regime where batching
// matters (on slow logs, group commit already amortizes the device and
// both modes converge). A small per-message delivery cost models the
// receive-path CPU a real transport pays per message. Each point reports
// the median of three trials; the simulation is scheduler-noisy at high
// thread counts on small hosts.
func AblationProposalBatching(cfg Config) (Table, error) {
	cfg.fillDefaults()
	// Small values: this ablation measures protocol overhead (messages,
	// locks, forces, acks per write), not payload memcpy; large values
	// push a one-core host into client-timeout retry storms that swamp
	// the comparison in both modes.
	value := sim.ValueOfSize(256)
	keySpace := cfg.Rows * 50
	const (
		trials     = 3
		pipeWindow = 8 // writes in flight per writer
	)

	run := func(disable bool, threads int) (sim.LoadPoint, error) {
		// Fresh cluster per trial; GC first so one trial's garbage (4KB
		// values at thousands of ops) doesn't distort the next.
		runtime.GC()
		opts := spinOpts(cfg, wal.DeviceMem)
		opts.Nodes = 3 // concentrate writers on few cohorts
		opts.MessageCost = 5 * time.Microsecond
		// Deep pipelines mean tens of writes legitimately in flight;
		// a long commit period keeps the loss-recovery retransmission
		// path (2 commit periods) from re-proposing writes that are
		// simply queued, which would otherwise dominate both modes.
		opts.CommitPeriod = 100 * time.Millisecond
		opts.DisableProposalBatching = disable
		sc, err := newSpin(opts)
		if err != nil {
			return sim.LoadPoint{}, err
		}
		defer sc.Stop()
		clients := make([]*core.Client, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
		}
		op := func(t, i int) error {
			b := clients[t].NewBatch()
			for w := 0; w < pipeWindow; w++ {
				b.Put(sim.StridedKey((t*keySpace/threads+i*pipeWindow+w)%keySpace, keySpace, 8), "c", value)
			}
			_, err := b.Run()
			return err
		}
		// Warm up before measuring: first writes pay for elections having
		// just settled, cold memtables, and scheduler ramp-up.
		sim.RunClosedLoop(threads, cfg.PointDuration/2, op)
		point := sim.RunClosedLoop(threads, cfg.PointDuration, op)
		point.Throughput *= pipeWindow // ops are batches of pipeWindow puts
		return point, nil
	}

	median := func(disable bool, threads int) (sim.LoadPoint, error) {
		points := make([]sim.LoadPoint, 0, trials)
		for i := 0; i < trials; i++ {
			p, err := run(disable, threads)
			if err != nil {
				return sim.LoadPoint{}, err
			}
			points = append(points, p)
		}
		sort.Slice(points, func(i, j int) bool { return points[i].Throughput < points[j].Throughput })
		return points[trials/2], nil
	}

	table := Table{
		ID:      "Ablation: proposal batching",
		Title:   "write throughput, batched vs per-write replication (256B values, mem log, 8-deep pipelined writers, median of 3)",
		Columns: []string{"writers", "batched req/s", "unbatched req/s", "batched avg ms", "unbatched avg ms"},
		Notes:   "batching amortizes per-message and per-write overhead; avg ms is per 8-write pipelined burst",
	}
	for _, threads := range []int{1, 4, 16, 64} {
		batched, err := median(false, threads)
		if err != nil {
			return Table{}, err
		}
		unbatched, err := median(true, threads)
		if err != nil {
			return Table{}, err
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(threads),
			tput(batched.Throughput), tput(unbatched.Throughput),
			ms(batched.AvgLatency), ms(unbatched.AvgLatency),
		})
		cfg.progress("ablation-batching: %d writers done", threads)
	}
	return table, nil
}

// AblationParallelPropose isolates the Figure 4 design choice of forcing
// the leader's log *in parallel* with sending propose messages: the
// sequential variant adds roughly one log-force latency to every write.
func AblationParallelPropose(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	const threads = 8
	keySpace := cfg.Rows * 50

	table := Table{
		ID:      "Ablation: parallel log force + propose",
		Title:   fmt.Sprintf("write latency with %d threads (4KB values, hdd log)", threads),
		Columns: []string{"mode", "req/s", "avg ms"},
		Notes:   "Fig 4 overlaps the leader force with the follower round trip; serializing them adds ~a force latency",
	}
	for _, sequential := range []bool{false, true} {
		opts := spinOpts(cfg, wal.DeviceHDD)
		opts.SequentialPropose = sequential
		sc, err := newSpin(opts)
		if err != nil {
			return Table{}, err
		}
		clients := make([]*core.Client, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
		}
		point := sim.RunClosedLoop(threads, cfg.PointDuration, func(t, i int) error {
			_, err := clients[t].Put(sim.StridedKey(t*keySpace/threads+i, keySpace, 8), "c", value)
			return err
		})
		sc.Stop()
		mode := "parallel (paper)"
		if sequential {
			mode = "sequential"
		}
		table.Rows = append(table.Rows, []string{mode, tput(point.Throughput), ms(point.AvgLatency)})
		cfg.progress("ablation-parallelpropose: sequential=%v done", sequential)
	}
	return table, nil
}
