// Package cluster implements Spinnaker's key-based range partitioning and
// replica placement (paper §4, Figure 2), extended with the versioned,
// mutable layouts that elastic scale-out needs. The rows of a table are
// distributed by range partitioning; the group of nodes replicating a key
// range is its cohort. At construction cohorts follow the paper's chained
// declustering: each node is home to one base range, replicated on the next
// N−1 nodes in ring order, so cohorts overlap and a node in a 3-way
// replicated cluster belongs to 3 cohorts.
//
// Unlike the seed implementation, a Layout is no longer fixed for the life
// of the cluster: ranges carry stable IDs and explicit cohort membership,
// and the WithNode / WithSplit / WithCohort mutators derive successor
// layouts (version+1) for live reconfiguration — new nodes join the ring,
// wide ranges split, and cohort membership changes one member at a time.
// The current layout is published through the coordination service (see
// core.PublishLayout) and every node and client follows it.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultReplication is the paper's default replication factor (N = 3).
const DefaultReplication = 3

// Range is one key range of the layout: a stable identity, a low key bound
// (the high bound is the next range's low bound), and the explicit cohort
// of nodes replicating it. Cohort[0] is the home node — the preferred
// leader, used as the election tie-break.
type Range struct {
	ID     uint32
	Low    string
	Cohort []string
	// Origin is the range this one was split from, when HasOrigin is
	// set. A joining replica of a split-created range pulls its initial
	// state from the origin range's leader.
	Origin    uint32
	HasOrigin bool
}

// Layout is a versioned partitioning of the key space across a cluster.
// Leadership within each cohort is dynamic (chosen by election through the
// coordination service) and deliberately not part of the Layout. Layouts
// are immutable; mutators return a successor with version+1.
type Layout struct {
	version uint64
	nextID  uint32
	nodes   []string
	ranges  []Range // sorted by Low; ranges[0].Low == ""
	n       int     // nominal replication factor
}

// New builds a version-1 layout with the paper's ring placement.
// splits[0] must be the empty string (the lowest key); range i covers
// [splits[i], splits[i+1]), with the last range extending to the top of the
// key space. len(splits) must equal len(nodes): node i is the home of base
// range i, and range i's cohort is nodes i..i+N−1 in ring order (Figure 2).
func New(nodes []string, splits []string, replication int) (*Layout, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if len(splits) != len(nodes) {
		return nil, fmt.Errorf("cluster: %d splits for %d nodes", len(splits), len(nodes))
	}
	if splits[0] != "" {
		return nil, fmt.Errorf("cluster: splits[0] must be the empty string")
	}
	if !sort.StringsAreSorted(splits) {
		return nil, fmt.Errorf("cluster: splits must be sorted")
	}
	for i := 1; i < len(splits); i++ {
		if splits[i] == splits[i-1] {
			return nil, fmt.Errorf("cluster: duplicate split %q", splits[i])
		}
	}
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(nodes) {
		return nil, fmt.Errorf("cluster: replication %d exceeds %d nodes", replication, len(nodes))
	}
	l := &Layout{
		version: 1,
		nextID:  uint32(len(splits)),
		nodes:   append([]string(nil), nodes...),
		n:       replication,
	}
	for i, low := range splits {
		cohort := make([]string, 0, replication)
		for j := 0; j < replication; j++ {
			cohort = append(cohort, nodes[(i+j)%len(nodes)])
		}
		l.ranges = append(l.ranges, Range{ID: uint32(i), Low: low, Cohort: cohort})
	}
	return l, nil
}

// Uniform builds a layout over the given nodes with split points spaced
// uniformly through a fixed-width decimal key space ("000000"..), matching
// the numeric row keys used by the paper's workloads. Keys are expected to
// be zero-padded to width digits.
func Uniform(nodes []string, width, replication int) (*Layout, error) {
	n := len(nodes)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	max := 1
	for i := 0; i < width; i++ {
		max *= 10
	}
	splits := make([]string, n)
	for i := 1; i < n; i++ {
		splits[i] = fmt.Sprintf("%0*d", width, i*max/n)
	}
	return New(nodes, splits, replication)
}

// clone returns a deep copy with the version advanced by one.
func (l *Layout) clone() *Layout {
	c := &Layout{
		version: l.version + 1,
		nextID:  l.nextID,
		nodes:   append([]string(nil), l.nodes...),
		ranges:  make([]Range, len(l.ranges)),
		n:       l.n,
	}
	for i, r := range l.ranges {
		r.Cohort = append([]string(nil), r.Cohort...)
		c.ranges[i] = r
	}
	return c
}

// Version returns the layout version; successors from the mutators and from
// the coordination service always carry strictly larger versions.
func (l *Layout) Version() uint64 { return l.version }

// Nodes returns the node ids in ring order.
func (l *Layout) Nodes() []string { return append([]string(nil), l.nodes...) }

// HasNode reports whether node is part of the cluster ring.
func (l *Layout) HasNode(node string) bool {
	for _, n := range l.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// NumRanges returns the number of key ranges.
func (l *Layout) NumRanges() int { return len(l.ranges) }

// Replication returns the nominal replication factor N. A range mid-move
// may transiently have N+1 cohort members; use Quorum for the range's
// actual majority size.
func (l *Layout) Replication() int { return l.n }

// Ranges returns a snapshot of every range, in key order.
func (l *Layout) Ranges() []Range {
	out := make([]Range, len(l.ranges))
	for i, r := range l.ranges {
		r.Cohort = append([]string(nil), r.Cohort...)
		out[i] = r
	}
	return out
}

// RangeIDs returns the ids of every range, in key order. After splits, ids
// are stable identities and are not dense.
func (l *Layout) RangeIDs() []uint32 {
	out := make([]uint32, len(l.ranges))
	for i, r := range l.ranges {
		out[i] = r.ID
	}
	return out
}

// rangeIndex returns the index of the range with the given id, or -1.
func (l *Layout) rangeIndex(id uint32) int {
	for i, r := range l.ranges {
		if r.ID == id {
			return i
		}
	}
	return -1
}

// HasRange reports whether a range with the given id exists.
func (l *Layout) HasRange(id uint32) bool { return l.rangeIndex(id) >= 0 }

// RangeOf returns the id of the key range containing key.
func (l *Layout) RangeOf(key string) uint32 {
	// Find the last range whose low bound is ≤ key.
	i := sort.Search(len(l.ranges), func(i int) bool { return l.ranges[i].Low > key }) - 1
	if i < 0 {
		i = 0
	}
	return l.ranges[i].ID
}

// Cohort returns the nodes replicating range r, home node first. It returns
// nil for an unknown range id.
func (l *Layout) Cohort(r uint32) []string {
	i := l.rangeIndex(r)
	if i < 0 {
		return nil
	}
	return append([]string(nil), l.ranges[i].Cohort...)
}

// CohortContains reports whether node participates in range r's cohort.
func (l *Layout) CohortContains(r uint32, node string) bool {
	i := l.rangeIndex(r)
	if i < 0 {
		return false
	}
	for _, n := range l.ranges[i].Cohort {
		if n == node {
			return true
		}
	}
	return false
}

// RangesOf returns the ids of every range whose cohort includes node, in
// ascending id order.
func (l *Layout) RangesOf(node string) []uint32 {
	var out []uint32
	for _, r := range l.ranges {
		for _, n := range r.Cohort {
			if n == node {
				out = append(out, r.ID)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bounds returns the [low, high) key bounds of range r; high == "" means
// the top of the key space.
func (l *Layout) Bounds(r uint32) (low, high string) {
	i := l.rangeIndex(r)
	if i < 0 {
		return "", ""
	}
	low = l.ranges[i].Low
	if i+1 < len(l.ranges) {
		high = l.ranges[i+1].Low
	}
	return low, high
}

// HomeNode returns the node that is home to range r (the first member of
// its cohort; the preferred leader).
func (l *Layout) HomeNode(r uint32) string {
	i := l.rangeIndex(r)
	if i < 0 {
		return ""
	}
	return l.ranges[i].Cohort[0]
}

// Quorum returns the majority size of range r's cohort.
func (l *Layout) Quorum(r uint32) int {
	i := l.rangeIndex(r)
	if i < 0 {
		return 0
	}
	return len(l.ranges[i].Cohort)/2 + 1
}

// Origin returns the range r was split from, if it has one and that range
// still exists.
func (l *Layout) Origin(r uint32) (uint32, bool) {
	i := l.rangeIndex(r)
	if i < 0 || !l.ranges[i].HasOrigin {
		return 0, false
	}
	if l.rangeIndex(l.ranges[i].Origin) < 0 {
		return 0, false
	}
	return l.ranges[i].Origin, true
}

// WithNode returns a successor layout with node added to the ring. The new
// node belongs to no cohort yet; WithCohort moves ranges onto it.
func (l *Layout) WithNode(node string) (*Layout, error) {
	if node == "" {
		return nil, fmt.Errorf("cluster: empty node id")
	}
	if l.HasNode(node) {
		return nil, fmt.Errorf("cluster: node %s already in layout", node)
	}
	c := l.clone()
	c.nodes = append(c.nodes, node)
	return c, nil
}

// WithSplit returns a successor layout where range id is split at key: the
// original range keeps [low, key) and a new range (fresh id, same cohort,
// origin = id) takes [key, high). The new range's id is returned.
func (l *Layout) WithSplit(id uint32, key string) (*Layout, uint32, error) {
	i := l.rangeIndex(id)
	if i < 0 {
		return nil, 0, fmt.Errorf("cluster: no range %d", id)
	}
	low, high := l.Bounds(id)
	if key <= low || (high != "" && key >= high) {
		return nil, 0, fmt.Errorf("cluster: split key %q outside range %d bounds [%q, %q)", key, id, low, high)
	}
	c := l.clone()
	newID := c.nextID
	c.nextID++
	nr := Range{
		ID:        newID,
		Low:       key,
		Cohort:    append([]string(nil), c.ranges[i].Cohort...),
		Origin:    id,
		HasOrigin: true,
	}
	c.ranges = append(c.ranges, Range{})
	copy(c.ranges[i+2:], c.ranges[i+1:])
	c.ranges[i+1] = nr
	return c, newID, nil
}

// WithCohort returns a successor layout where range id's cohort is replaced.
// Membership should change one node at a time (expand by one, or shrink by
// one): single-member changes keep every old quorum intersecting every new
// quorum, which is what makes reconfiguration safe without joint consensus.
func (l *Layout) WithCohort(id uint32, cohort []string) (*Layout, error) {
	i := l.rangeIndex(id)
	if i < 0 {
		return nil, fmt.Errorf("cluster: no range %d", id)
	}
	if len(cohort) == 0 {
		return nil, fmt.Errorf("cluster: empty cohort for range %d", id)
	}
	seen := make(map[string]bool, len(cohort))
	for _, n := range cohort {
		if !l.HasNode(n) {
			return nil, fmt.Errorf("cluster: cohort node %s not in layout", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate cohort node %s", n)
		}
		seen[n] = true
	}
	old := l.ranges[i].Cohort
	if d := membershipDelta(old, cohort); d > 1 {
		return nil, fmt.Errorf("cluster: cohort change for range %d alters %d members; change one at a time", id, d)
	}
	c := l.clone()
	c.ranges[i].Cohort = append([]string(nil), cohort...)
	return c, nil
}

// membershipDelta counts the nodes present in exactly one of the two
// cohorts (set symmetric difference, ignoring order).
func membershipDelta(a, b []string) int {
	in := func(set []string, n string) bool {
		for _, s := range set {
			if s == n {
				return true
			}
		}
		return false
	}
	d := 0
	for _, n := range a {
		if !in(b, n) {
			d++
		}
	}
	for _, n := range b {
		if !in(a, n) {
			d++
		}
	}
	return d
}
