package analysis

import (
	"strings"
	"testing"
)

// TestSuppressionCounting checks //lint:ignore accounting: a matching
// suppression moves the finding to Suppressed with its reason; an
// unsuppressed sibling still fails.
func TestSuppressionCounting(t *testing.T) {
	m, _ := loadFixture(t, "suppress")
	cfg := Config{
		Analyzers: []string{"detcheck"},
		DetScope:  []string{fixtureImportBase + "suppress"},
	}
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("want 1 unsuppressed finding, got %d: %v", len(res.Findings), res.Findings)
	}
	if len(res.Suppressed) != 1 {
		t.Fatalf("want 1 suppressed finding, got %d", len(res.Suppressed))
	}
	s := res.Suppressed[0]
	if !s.Suppressed {
		t.Error("suppressed finding not marked Suppressed")
	}
	if want := "fixture: deliberate wall-clock read"; s.SuppressReason != want {
		t.Errorf("suppress reason = %q, want %q", s.SuppressReason, want)
	}
	if !strings.Contains(s.Message, "time.Now") {
		t.Errorf("suppressed the wrong finding: %v", s)
	}
}

// TestUnknownAnnotationError checks that an annotation typo is a hard
// run error, not a silent no-op.
func TestUnknownAnnotationError(t *testing.T) {
	m, _ := loadFixture(t, "unknownann")
	_, err := Run(m, Config{})
	if err == nil {
		t.Fatal("Run succeeded on a corpus with //spinnaker:hotpth")
	}
	if !strings.Contains(err.Error(), "unknown annotation") {
		t.Errorf("error %q does not name the unknown annotation", err)
	}
}

// TestModuleCleanSmoke loads the whole module and requires the default
// invariant set to pass with zero unsuppressed findings — the same bar
// CI's lint job enforces, kept here so `go test` alone catches a
// regression (e.g. reverting the simtime routing in internal/sim).
func TestModuleCleanSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; run without -short")
	}
	m, err := LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Packages) < 10 {
		t.Fatalf("implausibly few packages loaded: %d", len(m.Packages))
	}
	res, err := Run(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		t.Errorf("unsuppressed finding: %s", f)
	}
	for _, s := range res.Suppressed {
		if s.SuppressReason == "" || s.SuppressReason == "(no reason given)" {
			t.Errorf("suppression without a reason: %s", s)
		}
	}
}
