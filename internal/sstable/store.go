package sstable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A TableStore is the stable storage holding SSTable blobs. Unlike the
// memtable, SSTables survive crashes; the in-memory implementation models a
// disk that only loses data under the explicit disk-failure injection of
// §6.1.
type TableStore interface {
	Put(id uint64, blob []byte) error
	Get(id uint64) ([]byte, error)
	Remove(id uint64) error
	List() ([]uint64, error)
}

// MemTableStore is an in-memory TableStore with disk-failure injection.
type MemTableStore struct {
	mu sync.Mutex
	m  map[uint64][]byte
}

// NewMemTableStore returns an empty store.
func NewMemTableStore() *MemTableStore {
	return &MemTableStore{m: make(map[uint64][]byte)}
}

// Put implements TableStore.
func (s *MemTableStore) Put(id uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[id] = append([]byte(nil), blob...)
	return nil
}

// Get implements TableStore.
func (s *MemTableStore) Get(id uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[id]
	if !ok {
		return nil, fmt.Errorf("sstable: table %d does not exist", id)
	}
	return b, nil
}

// Remove implements TableStore.
func (s *MemTableStore) Remove(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
	return nil
}

// List implements TableStore.
func (s *MemTableStore) List() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint64, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Fail destroys every table (permanent disk failure, §6.1).
func (s *MemTableStore) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[uint64][]byte)
}

// FileTableStore stores each table as sst-<id>.sst in a directory.
type FileTableStore struct {
	dir string
}

// NewFileTableStore returns a store rooted at dir, creating it if needed.
func NewFileTableStore(dir string) (*FileTableStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sstable: mkdir %s: %w", dir, err)
	}
	return &FileTableStore{dir: dir}, nil
}

func (s *FileTableStore) path(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("sst-%012d.sst", id))
}

// Put implements TableStore using write-then-rename for atomicity.
func (s *FileTableStore) Put(id uint64, blob []byte) error {
	tmp := s.path(id) + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return fmt.Errorf("sstable: put: %w", err)
	}
	return os.Rename(tmp, s.path(id))
}

// Get implements TableStore.
func (s *FileTableStore) Get(id uint64) ([]byte, error) {
	b, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("sstable: get %d: %w", id, err)
	}
	return b, nil
}

// Remove implements TableStore.
func (s *FileTableStore) Remove(id uint64) error {
	err := os.Remove(s.path(id))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// List implements TableStore.
func (s *FileTableStore) List() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("sstable: list: %w", err)
	}
	var ids []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "sst-") || !strings.HasSuffix(name, ".sst") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "sst-"), ".sst"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

var (
	_ TableStore = (*MemTableStore)(nil)
	_ TableStore = (*FileTableStore)(nil)
)
