package sim

import (
	"errors"
	"fmt"
	"spinnaker/internal/simtime"
	"strconv"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/core"
	"spinnaker/internal/transport"
)

// This file is the reconfiguration executor: the orchestration side of
// elastic scale-out. Mutations go through the published layout (the
// /cluster/layout znode): the executor derives a successor layout, publishes
// it, and waits for the cluster to converge — nodes adopt the layout live
// (creating, retiring, and re-membering replicas), joining members earn
// catch-up markers, and split-created ranges elect leaders once seeded.
// Membership changes one member at a time, so every old quorum intersects
// every new quorum and no joint-consensus machinery is needed.

// reconfigPoll paces the executor's convergence polling.
const reconfigPoll = 5 * time.Millisecond

// mutateLayout applies f to the current published layout and publishes the
// result, retrying on publication races.
func (sc *SpinnakerCluster) mutateLayout(f func(*cluster.Layout) (*cluster.Layout, error)) (*cluster.Layout, error) {
	for i := 0; ; i++ {
		next, err := f(sc.CurrentLayout())
		if err != nil {
			return nil, err
		}
		sess := sc.Coord.Connect()
		err = core.PublishLayout(sess, next)
		sess.Close()
		if err == nil {
			return next, nil
		}
		if !errors.Is(err, core.ErrLayoutConflict) || i > 16 {
			return nil, err
		}
	}
}

// AddNode starts a new, empty node and adds it to the cluster ring. With
// id == "" the next free node name is generated. The node serves no ranges
// until Rebalance (or explicit MoveRange/SplitRange calls) assigns it some.
func (sc *SpinnakerCluster) AddNode(id string) (string, error) {
	sc.nodeMu.Lock()
	if id == "" {
		for i := 0; ; i++ {
			candidate := fmt.Sprintf("node%03d", i)
			if _, ok := sc.stores[candidate]; !ok {
				id = candidate
				break
			}
		}
	} else if _, ok := sc.stores[id]; ok {
		sc.nodeMu.Unlock()
		return "", fmt.Errorf("sim: node %s already exists", id)
	}
	sc.stores[id] = core.NewMemStores(sc.opts.Device)
	existing := make([]string, 0, len(sc.stores))
	for name := range sc.stores {
		if name != id {
			existing = append(existing, name)
		}
	}
	sc.nodeMu.Unlock()

	// The background fault plane covers the new node's links too.
	if sc.opts.LinkFaults != (transport.LinkFaults{}) {
		for _, other := range existing {
			sc.Net.SetLinkFaults(id, other, sc.opts.LinkFaults)
			sc.Net.SetLinkFaults(other, id, sc.opts.LinkFaults)
		}
	}

	if _, err := sc.mutateLayout(func(l *cluster.Layout) (*cluster.Layout, error) {
		return l.WithNode(id)
	}); err != nil {
		return "", err
	}
	if err := sc.startNode(id); err != nil {
		return "", err
	}
	return id, nil
}

// waitAdopted blocks until every listed member that is currently running
// reports a layout version of at least version. Quorum intersection between
// consecutive layouts only holds for members at most one version behind, so
// a cohort mutation must not be published while a member of the previous
// cohort still operates under an older view (a leader two versions behind
// could commit under a quorum that no longer intersects the new one). A
// member that is down is safe to skip: on restart it bootstraps from the
// currently published layout, which is at least this version.
func (sc *SpinnakerCluster) waitAdopted(version uint64, members []string, deadline time.Time) error {
	for _, m := range members {
		for {
			n, ok := sc.Node(m)
			if !ok {
				break // down; restart bootstraps from >= version
			}
			if n.LayoutVersion() >= version {
				break
			}
			if simtime.Now().After(deadline) {
				return fmt.Errorf("sim: node %s did not adopt layout v%d in time", m, version)
			}
			simtime.Sleep(reconfigPoll)
		}
	}
	return nil
}

// waitCurrent blocks until node holds the catch-up marker for range r: it
// has completed catch-up (or a split pull) within its current session, so
// its log and engine hold the range's committed prefix.
func (sc *SpinnakerCluster) waitCurrent(r uint32, node string, deadline time.Time) error {
	sess := sc.Coord.Connect()
	defer sess.Close()
	for {
		members, err := core.CurrentMembers(sess, r)
		if err == nil {
			for _, m := range members {
				if m == node {
					return nil
				}
			}
		}
		if simtime.Now().After(deadline) {
			return fmt.Errorf("sim: node %s did not catch up on range %d in time", node, r)
		}
		simtime.Sleep(reconfigPoll)
	}
}

// waitOpenLeader blocks until range r has an elected leader that is open
// for writes.
func (sc *SpinnakerCluster) waitOpenLeader(r uint32, deadline time.Time) error {
	for {
		if leader := sc.LeaderOf(r); leader != "" {
			if n, ok := sc.Node(leader); ok {
				if st, ok := n.ReplicaStats(r); ok && st.Role == core.RoleLeader && st.Open {
					return nil
				}
			}
		}
		if simtime.Now().After(deadline) {
			return fmt.Errorf("sim: range %d has no open leader in time", r)
		}
		simtime.Sleep(reconfigPoll)
	}
}

// SplitRange splits range id at key: the published layout gains a new range
// [key, high) with the same cohort, whose replicas seed themselves from the
// origin leader (split pull) and elect a leader. Blocks until the new range
// is open for writes; returns its id.
func (sc *SpinnakerCluster) SplitRange(id uint32, key string, timeout time.Duration) (uint32, error) {
	var newID uint32
	if _, err := sc.mutateLayout(func(l *cluster.Layout) (*cluster.Layout, error) {
		next, nid, err := l.WithSplit(id, key)
		newID = nid
		return next, err
	}); err != nil {
		return 0, err
	}
	deadline := simtime.Now().Add(timeout)
	if err := sc.waitOpenLeader(newID, deadline); err != nil {
		return newID, err
	}
	return newID, nil
}

// MoveRange moves range id's membership from node `from` to node `to` in
// two published steps: expand the cohort with `to` (quorum grows by the
// usual majority rule), wait until `to` has caught up via catch-up data
// shipping, then shrink `from` out (it retires the replica and, if it led,
// triggers an election among the new membership). Blocks until the range
// has an open leader under the final membership.
func (sc *SpinnakerCluster) MoveRange(id uint32, from, to string, timeout time.Duration) error {
	deadline := simtime.Now().Add(timeout)
	cur := sc.CurrentLayout().Cohort(id)
	if cur == nil {
		return fmt.Errorf("sim: no range %d", id)
	}
	if !containsStr(cur, from) {
		return fmt.Errorf("sim: node %s is not in range %d's cohort", from, id)
	}
	if containsStr(cur, to) {
		return fmt.Errorf("sim: node %s is already in range %d's cohort", to, id)
	}
	// Phase 1: expand.
	expanded, err := sc.mutateLayout(func(l *cluster.Layout) (*cluster.Layout, error) {
		cohort := l.Cohort(id)
		if cohort == nil {
			return nil, fmt.Errorf("sim: range %d vanished", id)
		}
		if containsStr(cohort, to) {
			return nil, errNoChange
		}
		return l.WithCohort(id, append(cohort, to))
	})
	if err != nil && !errors.Is(err, errNoChange) {
		return err
	}
	// Adoption barrier: every old member must operate under the expanded
	// view before the next mutation, or quorum intersection across the
	// two steps is lost (see waitAdopted).
	if expanded != nil {
		if err := sc.waitAdopted(expanded.Version(), expanded.Cohort(id), deadline); err != nil {
			return err
		}
	}
	// Admission gate: `to` joins the quorum math as a full member only
	// once it holds the committed prefix.
	if err := sc.waitCurrent(id, to, deadline); err != nil {
		return err
	}
	// Phase 2: shrink the old member out.
	shrunk, err := sc.mutateLayout(func(l *cluster.Layout) (*cluster.Layout, error) {
		cohort := l.Cohort(id)
		if cohort == nil {
			return nil, fmt.Errorf("sim: range %d vanished", id)
		}
		out := cohort[:0:0]
		for _, n := range cohort {
			if n != from {
				out = append(out, n)
			}
		}
		if len(out) == len(cohort) {
			return nil, errNoChange
		}
		return l.WithCohort(id, out)
	})
	if err != nil && !errors.Is(err, errNoChange) {
		return err
	}
	if shrunk != nil {
		// The barrier includes `from`: until it adopts the shrink (and
		// retires) it can still commit under the expanded quorum, so a
		// further mutation must wait for it too.
		if err := sc.waitAdopted(shrunk.Version(), append(shrunk.Cohort(id), from), deadline); err != nil {
			return err
		}
	}
	return sc.waitOpenLeader(id, deadline)
}

// errNoChange short-circuits an idempotent mutation retry.
var errNoChange = errors.New("sim: layout already reflects the change")

func containsStr(set []string, s string) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

// midKey returns the numeric midpoint of [low, high) in the cluster's
// fixed-width decimal key space, or "" when the range is too narrow to
// split.
func (sc *SpinnakerCluster) midKey(low, high string) string {
	width := sc.opts.KeyWidth
	top := 1
	for i := 0; i < width; i++ {
		top *= 10
	}
	lo := 0
	if low != "" {
		v, err := strconv.Atoi(low)
		if err != nil {
			return ""
		}
		lo = v
	}
	hi := top
	if high != "" {
		v, err := strconv.Atoi(high)
		if err != nil {
			return ""
		}
		hi = v
	}
	mid := lo + (hi-lo)/2
	if mid <= lo || mid >= hi {
		return ""
	}
	return fmt.Sprintf("%0*d", width, mid)
}

// Rebalance spreads the key space over the current ring (paper §4's
// placement, recomputed for the grown cluster): wide ranges are split until
// there is at least one range per node, every cohort is morphed — one
// member at a time — onto the ring placement over all nodes, and
// leadership is transferred toward each range's home node. Runs safely
// while a workload is executing; writes to affected ranges see bounded
// unavailability (re-routes and elections), never inconsistency.
func (sc *SpinnakerCluster) Rebalance(timeout time.Duration) error {
	deadline := simtime.Now().Add(timeout)

	// Phase 1: split until there is a range per node.
	for {
		l := sc.CurrentLayout()
		nodes := l.Nodes()
		if l.NumRanges() >= len(nodes) {
			break
		}
		// Split the numerically widest range.
		var widest uint32
		widestSpan := -1
		var widestKey string
		for _, id := range l.RangeIDs() {
			low, high := l.Bounds(id)
			key := sc.midKey(low, high)
			if key == "" {
				continue
			}
			loV, hiV := 0, 0
			if low != "" {
				loV, _ = strconv.Atoi(low)
			}
			if high != "" {
				hiV, _ = strconv.Atoi(high)
			} else {
				top := 1
				for i := 0; i < sc.opts.KeyWidth; i++ {
					top *= 10
				}
				hiV = top
			}
			if hiV-loV > widestSpan {
				widest, widestSpan, widestKey = id, hiV-loV, key
			}
		}
		if widestKey == "" {
			break // nothing splittable
		}
		if _, err := sc.SplitRange(widest, widestKey, time.Until(deadline)); err != nil {
			return fmt.Errorf("sim: rebalance split: %w", err)
		}
	}

	// Phase 2: morph each cohort onto the ring placement over all nodes.
	l := sc.CurrentLayout()
	nodes := l.Nodes()
	n := l.Replication()
	if n > len(nodes) {
		n = len(nodes)
	}
	ids := l.RangeIDs()
	for i, id := range ids {
		target := make([]string, 0, n)
		for j := 0; j < n; j++ {
			target = append(target, nodes[(i+j)%len(nodes)])
		}
		for {
			cur := sc.CurrentLayout().Cohort(id)
			if cur == nil {
				return fmt.Errorf("sim: range %d vanished during rebalance", id)
			}
			var add, rm string
			for _, t := range target {
				if !containsStr(cur, t) {
					add = t
					break
				}
			}
			for _, c := range cur {
				if !containsStr(target, c) {
					rm = c
					break
				}
			}
			if add == "" && rm == "" {
				break
			}
			if add != "" && rm != "" {
				if err := sc.MoveRange(id, rm, add, time.Until(deadline)); err != nil {
					return fmt.Errorf("sim: rebalance move r%d %s->%s: %w", id, rm, add, err)
				}
				continue
			}
			// Pure expand or shrink (cohort size differs from target).
			next := append([]string(nil), cur...)
			if add != "" {
				next = append(next, add)
			} else {
				out := next[:0]
				for _, c := range next {
					if c != rm {
						out = append(out, c)
					}
				}
				next = out
			}
			published, err := sc.mutateLayout(func(l *cluster.Layout) (*cluster.Layout, error) {
				return l.WithCohort(id, next)
			})
			if err != nil {
				return fmt.Errorf("sim: rebalance recohort r%d: %w", id, err)
			}
			// Adoption barrier over old and new members alike; see
			// waitAdopted.
			if err := sc.waitAdopted(published.Version(), append(published.Cohort(id), cur...), deadline); err != nil {
				return err
			}
			if add != "" {
				if err := sc.waitCurrent(id, add, deadline); err != nil {
					return err
				}
			}
			if err := sc.waitOpenLeader(id, deadline); err != nil {
				return err
			}
		}
		// Order the target cohort home-first in the published layout so
		// elections prefer the intended placement.
		if _, err := sc.mutateLayout(func(l *cluster.Layout) (*cluster.Layout, error) {
			cur := l.Cohort(id)
			if cur == nil || !sameMembers(cur, target) || cur[0] == target[0] {
				return nil, errNoChange
			}
			return l.WithCohort(id, target)
		}); err != nil && !errors.Is(err, errNoChange) {
			return err
		}
	}

	// Phase 3: transfer leadership toward each range's home node so load
	// actually spreads onto the new members. The home preference is an
	// equal-lst election tie-break, so under live load the old leader can
	// re-win a round; retry a few times, then accept whoever leads — the
	// transfer is an optimization, not a correctness requirement.
	for i, id := range ids {
		home := nodes[i%len(nodes)]
		for attempt := 0; attempt < 3; attempt++ {
			leader := sc.LeaderOf(id)
			if leader == "" || leader == home {
				break
			}
			if ln, ok := sc.Node(leader); ok {
				ln.StepDown(id)
			}
			if err := sc.waitOpenLeader(id, deadline); err != nil {
				return err
			}
		}
	}
	return nil
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !containsStr(b, x) {
			return false
		}
	}
	return true
}
