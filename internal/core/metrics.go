package core

import (
	"time"

	"spinnaker/internal/metrics"
)

// rangeMetrics is a replica's hot-path instrumentation: throughput
// counters, latency histograms, a load-proportional key sample (the
// balancer's split-point input), and event counters. Everything written
// on the request path is a bounded number of atomic adds (see package
// metrics); snapshots are taken by the admin plane and the balancer.
type rangeMetrics struct {
	writes        metrics.Counter   // client writes committed (leader side)
	writeLat      metrics.Histogram // sequence-to-commit latency, ns
	strongReads   metrics.Counter   // consistent reads served
	timelineReads metrics.Counter   // timeline reads served
	readLat       metrics.Histogram // read service latency, ns
	elections     metrics.Counter   // takeovers this replica completed
	entryCatchups metrics.Counter   // entry-replay catch-ups absorbed
	keys          *metrics.KeySampler
}

// keySampleStride/keySampleCap size the per-range key reservoir: one of
// every 8 writes lands in a 512-slot ring, enough to place a split key
// within a few percent of the true load median while keeping the common
// path to a single atomic add.
const (
	keySampleStride = 8
	keySampleCap    = 512
)

func newRangeMetrics() rangeMetrics {
	return rangeMetrics{keys: metrics.NewKeySampler(keySampleStride, keySampleCap)}
}

// RangeMetrics is one replica's metrics snapshot: cumulative counters
// (consumers diff successive snapshots for rates) plus instantaneous
// state. Latency quantiles cover the whole run.
type RangeMetrics struct {
	Range   uint32 `json:"range"`
	Role    string `json:"role"`
	Leader  string `json:"leader"`
	Epoch   uint32 `json:"epoch"`
	Low     string `json:"low"`
	High    string `json:"high"`
	Pending int    `json:"pending"`

	Writes        int64         `json:"writes"`
	WriteP50      time.Duration `json:"write_p50_ns"`
	WriteP95      time.Duration `json:"write_p95_ns"`
	WriteP99      time.Duration `json:"write_p99_ns"`
	StrongReads   int64         `json:"strong_reads"`
	TimelineReads int64         `json:"timeline_reads"`
	ReadP95       time.Duration `json:"read_p95_ns"`

	// Commit lag: how far apply trails sequencing, as an LSN-sequence gap
	// and as time since the committed watermark last advanced (zero when
	// nothing is pending).
	CommitLagSeqs uint64        `json:"commit_lag_seqs"`
	CommitLagTime time.Duration `json:"commit_lag_ns"`

	Elections        int64 `json:"elections"`
	EntryCatchups    int64 `json:"entry_catchups"`
	SnapshotCatchups int64 `json:"snapshot_catchups"`
	SnapshotsServed  int64 `json:"snapshots_served"`

	// Storage engine health: maintenance churn and read-path efficiency.
	Flushes    int64 `json:"flushes"`
	Compacts   int64 `json:"compacts"`
	Tables     int   `json:"tables"`
	ReadProbes int64 `json:"read_probes"`
	ReadPruned int64 `json:"read_pruned"`
}

// NodeMetrics is one node's full metrics snapshot.
type NodeMetrics struct {
	ID              string         `json:"id"`
	LayoutVersion   uint64         `json:"layout_version"`
	LayoutAdoptions int64          `json:"layout_adoptions"`
	WALAppends      int64          `json:"wal_appends"`
	WALForces       int64          `json:"wal_forces"`
	Ranges          []RangeMetrics `json:"ranges"`
}

// Metrics snapshots the node's instrumentation for the admin plane and
// the balancer. Not for per-request use: it walks every replica and
// sums counter stripes.
func (n *Node) Metrics() NodeMetrics {
	nm := NodeMetrics{
		ID:              n.cfg.ID,
		LayoutVersion:   n.layoutVersion(),
		LayoutAdoptions: n.adoptions.Load(),
	}
	nm.WALAppends, nm.WALForces = n.log.Stats()
	for _, r := range n.replicaList() {
		nm.Ranges = append(nm.Ranges, r.metricsSnapshot())
	}
	return nm
}

func (r *replica) metricsSnapshot() RangeMetrics {
	r.mu.Lock()
	m := RangeMetrics{
		Range:            r.rangeID,
		Role:             r.role.String(),
		Leader:           r.leaderID,
		Epoch:            r.epoch,
		Low:              r.low,
		High:             r.high,
		Pending:          r.queue.len(),
		SnapshotCatchups: r.snapshotCatchups,
		SnapshotsServed:  r.snapshotsServed,
	}
	if r.lastLSN > r.lastCommitted {
		if g := r.lastLSN.Seq() - r.lastCommitted.Seq(); r.lastLSN.Seq() > r.lastCommitted.Seq() {
			m.CommitLagSeqs = g
		}
		if !r.commitAdvanced.IsZero() {
			m.CommitLagTime = time.Since(r.commitAdvanced)
		}
	}
	r.mu.Unlock()

	m.Writes = r.m.writes.Load()
	m.StrongReads = r.m.strongReads.Load()
	m.TimelineReads = r.m.timelineReads.Load()
	m.Elections = r.m.elections.Load()
	m.EntryCatchups = r.m.entryCatchups.Load()
	w := r.m.writeLat.Snapshot()
	m.WriteP50 = time.Duration(w.Quantile(0.50))
	m.WriteP95 = time.Duration(w.Quantile(0.95))
	m.WriteP99 = time.Duration(w.Quantile(0.99))
	m.ReadP95 = time.Duration(r.m.readLat.Snapshot().Quantile(0.95))
	m.Flushes, m.Compacts, m.Tables = r.engine.Stats()
	m.ReadProbes, m.ReadPruned = r.engine.ReadStats()
	return m
}

// SplitHint returns the load-weighted median key of rangeID's recent
// writes — the point that splits the range's observed load (not its key
// space) in half — or false if the replica has sampled too few writes
// to trust one (or the hint falls on a bound, where a split would be
// degenerate).
func (n *Node) SplitHint(rangeID uint32) (string, bool) {
	r := n.getReplica(rangeID)
	if r == nil {
		return "", false
	}
	key, ok := r.m.keys.MedianKey(keySampleCap / 8)
	if !ok {
		return "", false
	}
	r.mu.Lock()
	low, high := r.low, r.high
	r.mu.Unlock()
	if key <= low || (high != "" && key >= high) {
		return "", false
	}
	return key, true
}
