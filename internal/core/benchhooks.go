package core

import (
	"bytes"
	"testing"

	"spinnaker/internal/wal"
)

// CodecBenchmarks exposes the hot-path codec round trips as testing.Benchmark
// functions so the perf-trajectory harness (internal/bench, spinnaker-bench
// -json) can measure their ns/op and allocs/op from a plain binary. The same
// pairs are benchmarked under `go test -bench` in proto_test.go; this hook
// exists because the codecs are unexported and the trajectory report is
// generated outside the test harness.
func CodecBenchmarks() map[string]func(b *testing.B) {
	op := func(lsn wal.LSN) WriteOp {
		return WriteOp{Row: "user:0042134077", Cols: []ColWrite{{
			Col: "c", Value: bytes.Repeat([]byte("v"), 256), Version: uint64(lsn),
		}}}
	}
	batch := func(n int) proposeBatchPayload {
		p := proposeBatchPayload{CommittedThrough: wal.MakeLSN(3, 100)}
		for i := 0; i < n; i++ {
			lsn := wal.MakeLSN(3, uint64(101+i))
			p.Recs = append(p.Recs, proposeRec{LSN: lsn, Op: op(lsn)})
		}
		return p
	}
	batchBench := func(n int) func(b *testing.B) {
		return func(b *testing.B) {
			p := batch(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := decodeProposeBatch(encodeProposeBatch(p)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return map[string]func(b *testing.B){
		"codec-propose-roundtrip": func(b *testing.B) {
			p := proposePayload{LSN: wal.MakeLSN(3, 7), CommittedThrough: wal.MakeLSN(3, 5), Op: op(wal.MakeLSN(3, 7))}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := decodePropose(encodePropose(p)); err != nil {
					b.Fatal(err)
				}
			}
		},
		"codec-propose-batch-roundtrip-8":  batchBench(8),
		"codec-propose-batch-roundtrip-64": batchBench(64),
		"codec-write-result-roundtrip": func(b *testing.B) {
			wr := writeResult{Status: StatusOK, Versions: []uint64{7}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := decodeWriteResult(encodeWriteResult(wr)); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
}
