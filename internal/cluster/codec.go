package cluster

import (
	"encoding/binary"
	"fmt"
)

// Encode serializes the layout for publication through the coordination
// service (the /cluster/layout znode every node and client follows).
func (l *Layout) Encode() []byte {
	var s [8]byte
	var buf []byte
	put16 := func(v int) {
		binary.LittleEndian.PutUint16(s[:2], uint16(v))
		buf = append(buf, s[:2]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(s[:4], v)
		buf = append(buf, s[:4]...)
	}
	putStr := func(str string) {
		put16(len(str))
		buf = append(buf, str...)
	}
	binary.LittleEndian.PutUint64(s[:8], l.version)
	buf = append(buf, s[:8]...)
	put32(l.nextID)
	put16(l.n)
	put16(len(l.nodes))
	for _, n := range l.nodes {
		putStr(n)
	}
	put32(uint32(len(l.ranges)))
	for _, r := range l.ranges {
		put32(r.ID)
		if r.HasOrigin {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		put32(r.Origin)
		putStr(r.Low)
		put16(len(r.Cohort))
		for _, n := range r.Cohort {
			putStr(n)
		}
	}
	return buf
}

// Decode parses a layout previously produced by Encode and validates its
// invariants (sorted distinct lows starting at "", cohorts drawn from the
// node set, unique range ids below nextID).
func Decode(b []byte) (*Layout, error) {
	off := 0
	need := func(n int) error {
		if len(b)-off < n {
			return fmt.Errorf("cluster: layout truncated at %d", off)
		}
		return nil
	}
	get16 := func() (int, error) {
		if err := need(2); err != nil {
			return 0, err
		}
		v := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		return v, nil
	}
	get32 := func() (uint32, error) {
		if err := need(4); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	getStr := func() (string, error) {
		n, err := get16()
		if err != nil {
			return "", err
		}
		if err := need(n); err != nil {
			return "", err
		}
		v := string(b[off : off+n])
		off += n
		return v, nil
	}

	if err := need(8); err != nil {
		return nil, err
	}
	l := &Layout{version: binary.LittleEndian.Uint64(b[off:])}
	off += 8
	var err error
	if l.nextID, err = get32(); err != nil {
		return nil, err
	}
	if l.n, err = get16(); err != nil {
		return nil, err
	}
	numNodes, err := get16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < numNodes; i++ {
		n, err := getStr()
		if err != nil {
			return nil, err
		}
		l.nodes = append(l.nodes, n)
	}
	numRanges, err := get32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < numRanges; i++ {
		var r Range
		if r.ID, err = get32(); err != nil {
			return nil, err
		}
		if err := need(1); err != nil {
			return nil, err
		}
		r.HasOrigin = b[off] == 1
		off++
		if r.Origin, err = get32(); err != nil {
			return nil, err
		}
		if r.Low, err = getStr(); err != nil {
			return nil, err
		}
		cohortLen, err := get16()
		if err != nil {
			return nil, err
		}
		for j := 0; j < cohortLen; j++ {
			n, err := getStr()
			if err != nil {
				return nil, err
			}
			r.Cohort = append(r.Cohort, n)
		}
		l.ranges = append(l.ranges, r)
	}
	if err := l.validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// validate checks the structural invariants a decoded layout must satisfy.
func (l *Layout) validate() error {
	if len(l.nodes) == 0 {
		return fmt.Errorf("cluster: layout has no nodes")
	}
	if len(l.ranges) == 0 {
		return fmt.Errorf("cluster: layout has no ranges")
	}
	if l.ranges[0].Low != "" {
		return fmt.Errorf("cluster: first range low bound %q, want empty", l.ranges[0].Low)
	}
	seenID := make(map[uint32]bool)
	for i, r := range l.ranges {
		if i > 0 && l.ranges[i-1].Low >= r.Low {
			return fmt.Errorf("cluster: range lows not strictly sorted at %d", i)
		}
		if seenID[r.ID] {
			return fmt.Errorf("cluster: duplicate range id %d", r.ID)
		}
		seenID[r.ID] = true
		if r.ID >= l.nextID {
			return fmt.Errorf("cluster: range id %d >= nextID %d", r.ID, l.nextID)
		}
		if len(r.Cohort) == 0 {
			return fmt.Errorf("cluster: range %d has an empty cohort", r.ID)
		}
		seenNode := make(map[string]bool, len(r.Cohort))
		for _, n := range r.Cohort {
			if !l.HasNode(n) {
				return fmt.Errorf("cluster: range %d cohort node %s not in layout", r.ID, n)
			}
			if seenNode[n] {
				return fmt.Errorf("cluster: range %d duplicate cohort node %s", r.ID, n)
			}
			seenNode[n] = true
		}
	}
	return nil
}
