package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestJSONReportRoundTrip runs the driver in -json mode over a small
// clean package and checks the spinnaker-lint/v1 schema survives a
// decode: version, package count, and non-null finding arrays.
func TestJSONReportRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-json", "internal/simtime"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("decode -json output: %v\n%s", err, out.String())
	}
	if rep.Version != ReportVersion {
		t.Errorf("version = %q, want %q", rep.Version, ReportVersion)
	}
	if rep.Packages == 0 {
		t.Error("packages = 0")
	}
	if rep.Findings == nil || rep.Suppressed == nil {
		t.Error("finding arrays must encode as [] rather than null")
	}
}

// TestFindingsExitNonzero drives the red hotpath corpus through the
// real CLI path and requires exit code 1 with findings on stdout.
func TestFindingsExitNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"internal/analysis/testdata/hot/red"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "hotpath:") {
		t.Errorf("stdout carries no hotpath findings:\n%s", out.String())
	}
}

// TestUnknownAnalyzerFlag requires a usage error (exit 2) for a bad
// -analyzers value.
func TestUnknownAnalyzerFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers", "bogus", "internal/simtime"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr does not name the unknown analyzer: %s", errb.String())
	}
}
