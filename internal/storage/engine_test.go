package storage

import (
	"fmt"
	"testing"

	"spinnaker/internal/kv"
	"spinnaker/internal/sstable"
	"spinnaker/internal/wal"
)

func newTestEngine(t *testing.T) (*Engine, Config) {
	t.Helper()
	cfg := Config{
		Tables:     sstable.NewMemTableStore(),
		Meta:       wal.NewMemMetaStore(),
		Cohort:     0,
		FlushBytes: 1 << 20,
		MaxTables:  4,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return e, cfg
}

func put(e *Engine, row, col, val string, seq uint64) {
	e.Apply(kv.Entry{
		Key:  kv.Key{Row: row, Col: col},
		Cell: kv.Cell{Value: []byte(val), LSN: wal.MakeLSN(1, seq), Version: seq},
	})
}

func TestEngineGetFromMemtable(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "c", "v", 1)
	c, ok := e.Get(kv.Key{Row: "r", Col: "c"})
	if !ok || string(c.Value) != "v" {
		t.Fatalf("Get = %q,%v", c.Value, ok)
	}
	if e.AppliedLSN() != wal.MakeLSN(1, 1) {
		t.Errorf("AppliedLSN = %s", e.AppliedLSN())
	}
}

func TestEngineGetAcrossFlush(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "v1", 1)
	put(e, "r2", "c", "v2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r3", "c", "v3", 3)

	for i, want := range []string{"v1", "v2", "v3"} {
		c, ok := e.Get(kv.Key{Row: fmt.Sprintf("r%d", i+1), Col: "c"})
		if !ok || string(c.Value) != want {
			t.Errorf("Get(r%d) = %q,%v want %q", i+1, c.Value, ok, want)
		}
	}
	if e.Checkpoint() != wal.MakeLSN(1, 2) {
		t.Errorf("Checkpoint = %s, want 1.2", e.Checkpoint())
	}
}

func TestEngineNewestWinsAcrossLayers(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "c", "old", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r", "c", "mid", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r", "c", "new", 3)
	c, _ := e.Get(kv.Key{Row: "r", Col: "c"})
	if string(c.Value) != "new" {
		t.Errorf("Get = %q, want new (memtable newest)", c.Value)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	c, _ = e.Get(kv.Key{Row: "r", Col: "c"})
	if string(c.Value) != "new" {
		t.Errorf("after flush Get = %q (newest table must win)", c.Value)
	}
}

func TestEngineGetRowMergesLayers(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "a", "1", 1)
	put(e, "r", "b", "2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r", "b", "2new", 3)
	put(e, "r", "c", "3", 4)
	row := e.GetRow("r")
	if len(row) != 3 {
		t.Fatalf("GetRow = %d cols", len(row))
	}
	want := map[string]string{"a": "1", "b": "2new", "c": "3"}
	for _, ent := range row {
		if want[ent.Key.Col] != string(ent.Cell.Value) {
			t.Errorf("col %s = %q, want %q", ent.Key.Col, ent.Cell.Value, want[ent.Key.Col])
		}
	}
}

func TestEngineGetRowHidesTombstones(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r", "a", "1", 1)
	put(e, "r", "b", "2", 2)
	e.Apply(kv.Entry{Key: kv.Key{Row: "r", Col: "a"},
		Cell: kv.Cell{Deleted: true, LSN: wal.MakeLSN(1, 3), Version: 3}})
	row := e.GetRow("r")
	if len(row) != 1 || row[0].Key.Col != "b" {
		t.Errorf("GetRow = %v, want only col b", row)
	}
	// Get still exposes the tombstone for version checks.
	c, ok := e.Get(kv.Key{Row: "r", Col: "a"})
	if !ok || !c.Deleted {
		t.Errorf("Get tombstone = %+v,%v", c, ok)
	}
}

func TestEngineSurvivesReopen(t *testing.T) {
	e, cfg := newTestEngine(t)
	put(e, "r1", "c", "v1", 1)
	put(e, "r2", "c", "v2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "volatile", "c", "gone", 3) // never flushed

	// Crash: memtable is lost; SSTables and manifest persist.
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.Get(kv.Key{Row: "volatile", Col: "c"}); ok {
		t.Error("unflushed write survived crash without log replay")
	}
	c, ok := e2.Get(kv.Key{Row: "r1", Col: "c"})
	if !ok || string(c.Value) != "v1" {
		t.Errorf("flushed write lost: %q,%v", c.Value, ok)
	}
	if e2.Checkpoint() != wal.MakeLSN(1, 2) {
		t.Errorf("Checkpoint after reopen = %s", e2.Checkpoint())
	}
	if e2.AppliedLSN() != wal.MakeLSN(1, 2) {
		t.Errorf("AppliedLSN after reopen = %s", e2.AppliedLSN())
	}
}

func TestEngineCompactAll(t *testing.T) {
	e, cfg := newTestEngine(t)
	for i := 0; i < 3; i++ {
		put(e, fmt.Sprintf("r%d", i), "c", fmt.Sprintf("v%d", i), uint64(i*2+1))
		put(e, "shared", "c", fmt.Sprintf("gen%d", i), uint64(i*2+2))
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	e.Apply(kv.Entry{Key: kv.Key{Row: "r0", Col: "c"},
		Cell: kv.Cell{Deleted: true, LSN: wal.MakeLSN(1, 50), Version: 50}})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := e.CompactAll(); err != nil {
		t.Fatal(err)
	}
	_, _, tables := e.Stats()
	if tables != 1 {
		t.Fatalf("tables after compact = %d", tables)
	}
	// Tombstoned row disappears entirely after a full compaction.
	if _, ok := e.Get(kv.Key{Row: "r0", Col: "c"}); ok {
		t.Error("tombstoned key still visible after full compaction")
	}
	c, _ := e.Get(kv.Key{Row: "shared", Col: "c"})
	if string(c.Value) != "gen2" {
		t.Errorf("shared = %q, want gen2", c.Value)
	}
	// Old table blobs were removed from the store.
	ids, _ := cfg.Tables.List()
	if len(ids) != 1 {
		t.Errorf("store holds %d blobs after compaction", len(ids))
	}
	// State still correct across reopen.
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ = e2.Get(kv.Key{Row: "shared", Col: "c"})
	if string(c.Value) != "gen2" {
		t.Errorf("after reopen shared = %q", c.Value)
	}
}

func TestEngineMaybeFlush(t *testing.T) {
	cfg := Config{
		Tables:     sstable.NewMemTableStore(),
		Meta:       wal.NewMemMetaStore(),
		FlushBytes: 64, // tiny threshold
		MaxTables:  2,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flushed bool
	for i := 0; i < 20; i++ {
		put(e, fmt.Sprintf("row%02d", i), "c", "0123456789abcdef", uint64(i+1))
		did, err := e.MaybeFlush()
		if err != nil {
			t.Fatal(err)
		}
		flushed = flushed || did
	}
	if !flushed {
		t.Error("MaybeFlush never triggered")
	}
	_, _, tables := e.Stats()
	if tables > cfg.MaxTables+1 {
		t.Errorf("compaction did not bound tables: %d", tables)
	}
}

func TestEngineEntriesSince(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "v1", 1)
	put(e, "r2", "c", "v2", 2)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r3", "c", "v3", 3)
	put(e, "r2", "c", "v2new", 4)

	// LSN > 1.1 covers r2@1.2, r3@1.3, r2@1.4; duplicates collapse to the
	// newest per key, so r2 appears once with v2new.
	ents := e.EntriesSince(wal.MakeLSN(1, 1))
	if len(ents) != 2 {
		t.Fatalf("EntriesSince(1.1) = %d entries, want 2", len(ents))
	}
	got := map[string]string{}
	for _, ent := range ents {
		got[ent.Key.Row] = string(ent.Cell.Value)
	}
	if got["r2"] != "v2new" || got["r3"] != "v3" {
		t.Errorf("EntriesSince = %v", got)
	}
	if _, ok := got["r1"]; ok {
		t.Error("EntriesSince included LSN ≤ after")
	}

	all := e.EntriesSince(0)
	if len(all) != 3 { // r1, r2 (newest), r3
		t.Errorf("EntriesSince(0) = %d entries", len(all))
	}
}

func TestEngineTablesSince(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "v", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r2", "c", "v", 5)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(e.TablesSince(wal.MakeLSN(1, 3))); n != 1 {
		t.Errorf("TablesSince(1.3) = %d tables, want 1", n)
	}
	if n := len(e.TablesSince(0)); n != 2 {
		t.Errorf("TablesSince(0) = %d tables, want 2", n)
	}
	if n := len(e.TablesSince(wal.MakeLSN(1, 9))); n != 0 {
		t.Errorf("TablesSince(1.9) = %d tables, want 0", n)
	}
}

func TestEngineDropMemtable(t *testing.T) {
	e, _ := newTestEngine(t)
	put(e, "r1", "c", "flushed", 1)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	put(e, "r2", "c", "volatile", 2)
	e.DropMemtable()
	if _, ok := e.Get(kv.Key{Row: "r2", Col: "c"}); ok {
		t.Error("volatile write survived DropMemtable")
	}
	if _, ok := e.Get(kv.Key{Row: "r1", Col: "c"}); !ok {
		t.Error("flushed write lost")
	}
	if e.AppliedLSN() != e.Checkpoint() {
		t.Errorf("AppliedLSN %s != Checkpoint %s", e.AppliedLSN(), e.Checkpoint())
	}
}

func TestEngineFlushEmptyIsNoop(t *testing.T) {
	e, _ := newTestEngine(t)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	flushes, _, tables := e.Stats()
	if flushes != 0 || tables != 0 {
		t.Errorf("empty flush produced work: flushes=%d tables=%d", flushes, tables)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := manifest{nextID: 42, checkpoint: wal.MakeLSN(2, 7), tableIDs: []uint64{3, 9, 12}}
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.nextID != 42 || got.checkpoint != wal.MakeLSN(2, 7) || len(got.tableIDs) != 3 || got.tableIDs[2] != 12 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := decodeManifest(nil); err == nil {
		t.Error("nil manifest accepted")
	}
	if _, err := decodeManifest(encodeManifest(m)[:21]); err == nil {
		t.Error("truncated manifest accepted")
	}
}
