package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
)

func fiveNodes(t *testing.T) *Layout {
	t.Helper()
	// The paper's Figure 2: nodes A..E, base ranges [0,199], [200,399],
	// [400,599], [600,799], [800,899].
	l, err := New(
		[]string{"A", "B", "C", "D", "E"},
		[]string{"", "200", "400", "600", "800"},
		3,
	)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFigure2Cohorts(t *testing.T) {
	l := fiveNodes(t)
	// "nodes A-B-C form the cohort for key range [0,199], nodes B-C-D
	// form the cohort for key range [200,399], and so on."
	cases := map[uint32][]string{
		0: {"A", "B", "C"},
		1: {"B", "C", "D"},
		2: {"C", "D", "E"},
		3: {"D", "E", "A"},
		4: {"E", "A", "B"},
	}
	for r, want := range cases {
		got := l.Cohort(r)
		if len(got) != 3 {
			t.Fatalf("cohort %d size %d", r, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("cohort %d = %v, want %v", r, got, want)
			}
		}
	}
}

func TestFigure2NodeRanges(t *testing.T) {
	l := fiveNodes(t)
	// Figure 2: node A serves [0,199] (home), [800,899], [600,799].
	got := l.RangesOf("A")
	want := map[uint32]bool{0: true, 3: true, 4: true}
	if len(got) != 3 {
		t.Fatalf("node A in %d ranges", len(got))
	}
	for _, r := range got {
		if !want[r] {
			t.Errorf("node A unexpectedly in range %d", r)
		}
	}
}

func TestRangeOf(t *testing.T) {
	l := fiveNodes(t)
	cases := map[string]uint32{
		"000": 0, "199": 0, "1": 0, "": 0,
		"200": 1, "399": 1,
		"400": 2, "599": 2,
		"600": 3, "799": 3,
		"800": 4, "899": 4, "999": 4, "zzz": 4,
	}
	for key, want := range cases {
		if got := l.RangeOf(key); got != want {
			t.Errorf("RangeOf(%q) = %d, want %d", key, got, want)
		}
	}
}

func TestBounds(t *testing.T) {
	l := fiveNodes(t)
	low, high := l.Bounds(0)
	if low != "" || high != "200" {
		t.Errorf("Bounds(0) = %q,%q", low, high)
	}
	low, high = l.Bounds(4)
	if low != "800" || high != "" {
		t.Errorf("Bounds(4) = %q,%q", low, high)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 3); err == nil {
		t.Error("empty layout accepted")
	}
	if _, err := New([]string{"a"}, []string{"", "5"}, 1); err == nil {
		t.Error("mismatched splits accepted")
	}
	if _, err := New([]string{"a", "b"}, []string{"5", "9"}, 2); err == nil {
		t.Error("splits[0] != \"\" accepted")
	}
	if _, err := New([]string{"a", "b"}, []string{"", ""}, 2); err == nil {
		t.Error("duplicate splits accepted")
	}
	if _, err := New([]string{"a", "b"}, []string{"", "9", "5"}, 2); err == nil {
		t.Error("unsorted splits accepted")
	}
	if _, err := New([]string{"a", "b"}, []string{"", "5"}, 3); err == nil {
		t.Error("replication > nodes accepted")
	}
}

func TestDefaultReplication(t *testing.T) {
	l, err := New([]string{"a", "b", "c", "d"}, []string{"", "3", "6", "9"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Replication() != DefaultReplication {
		t.Errorf("Replication = %d", l.Replication())
	}
}

func TestUniformLayout(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3"}
	l, err := Uniform(nodes, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumRanges() != 4 {
		t.Fatalf("NumRanges = %d", l.NumRanges())
	}
	// Keys spread across all ranges.
	counts := make(map[uint32]int)
	for i := 0; i < 1000; i++ {
		counts[l.RangeOf(fmt.Sprintf("%06d", i*999))]++
	}
	for r := uint32(0); r < 4; r++ {
		if counts[r] == 0 {
			t.Errorf("range %d received no keys: %v", r, counts)
		}
	}
}

func TestCohortContains(t *testing.T) {
	l := fiveNodes(t)
	if !l.CohortContains(0, "C") {
		t.Error("C missing from cohort 0")
	}
	if l.CohortContains(0, "D") {
		t.Error("D wrongly in cohort 0")
	}
}

func TestHomeNode(t *testing.T) {
	l := fiveNodes(t)
	for r, want := range []string{"A", "B", "C", "D", "E"} {
		if got := l.HomeNode(uint32(r)); got != want {
			t.Errorf("HomeNode(%d) = %s, want %s", r, got, want)
		}
	}
}

func TestEveryNodeInExactlyNCohorts(t *testing.T) {
	// Property: with replication N over any cluster size ≥ N, every node
	// appears in exactly N cohorts and every cohort has exactly N nodes.
	f := func(sizeRaw, nRaw uint8) bool {
		size := int(sizeRaw%12) + 3
		n := int(nRaw%3) + 1
		if n > size {
			n = size
		}
		nodes := make([]string, size)
		splits := make([]string, size)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("n%03d", i)
			if i > 0 {
				splits[i] = fmt.Sprintf("%03d", i*1000/size)
			}
		}
		l, err := New(nodes, splits, n)
		if err != nil {
			return false
		}
		for _, node := range nodes {
			if len(l.RangesOf(node)) != n {
				return false
			}
		}
		for r := 0; r < size; r++ {
			if len(l.Cohort(uint32(r))) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRangeOfPropertyWithinBounds(t *testing.T) {
	l := fiveNodes(t)
	f := func(k uint16) bool {
		key := fmt.Sprintf("%03d", int(k)%1000)
		r := l.RangeOf(key)
		low, high := l.Bounds(r)
		if key < low {
			return false
		}
		return high == "" || key < high
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
