package kv

import (
	"bytes"
	"testing"
	"testing/quick"

	"spinnaker/internal/wal"
)

func TestKeyCompare(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{Key{"a", "x"}, Key{"a", "x"}, 0},
		{Key{"a", "x"}, Key{"a", "y"}, -1},
		{Key{"a", "y"}, Key{"a", "x"}, 1},
		{Key{"a", "z"}, Key{"b", "a"}, -1},
		{Key{"b", ""}, Key{"a", "zzz"}, 1},
		{Key{"", ""}, Key{"", ""}, 0},
	}
	for _, c := range cases {
		got := c.a.Compare(c.b)
		norm := 0
		if got < 0 {
			norm = -1
		} else if got > 0 {
			norm = 1
		}
		if norm != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if c.a.Less(c.b) != (c.want < 0) {
			t.Errorf("Less(%v,%v) inconsistent with Compare", c.a, c.b)
		}
	}
}

func TestKeyString(t *testing.T) {
	if got := (Key{"row1", "colA"}).String(); got != "row1:colA" {
		t.Errorf("String() = %q", got)
	}
}

func TestCellNewer(t *testing.T) {
	l1 := Cell{LSN: wal.MakeLSN(1, 1)}
	l2 := Cell{LSN: wal.MakeLSN(1, 2)}
	if !l2.Newer(l1) || l1.Newer(l2) {
		t.Error("LSN ordering broken")
	}
	// Epoch dominates sequence.
	e2 := Cell{LSN: wal.MakeLSN(2, 0)}
	if !e2.Newer(Cell{LSN: wal.MakeLSN(1, 99)}) {
		t.Error("epoch must dominate")
	}
	// Timestamp tie-break when LSNs equal (baseline store).
	t1 := Cell{Timestamp: 10}
	t2 := Cell{Timestamp: 20}
	if !t2.Newer(t1) || t1.Newer(t2) {
		t.Error("timestamp ordering broken")
	}
	// Version as final tie-break.
	v1 := Cell{Version: 1}
	v2 := Cell{Version: 2}
	if !v2.Newer(v1) || v1.Newer(v2) {
		t.Error("version ordering broken")
	}
	// Fully equal cells: neither is newer.
	if (Cell{}).Newer(Cell{}) {
		t.Error("equal cells must not be Newer")
	}
}

func TestEntryRoundTrip(t *testing.T) {
	e := Entry{
		Key: Key{Row: "user:42", Col: "email"},
		Cell: Cell{
			Value: []byte("x@example.com"), Version: 7,
			LSN: wal.MakeLSN(1, 21), Timestamp: 12345, Deleted: false,
		},
	}
	buf := EncodeEntry(nil, e)
	got, n, err := DecodeEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if got.Key != e.Key || got.Cell.Version != 7 || got.Cell.LSN != e.Cell.LSN ||
		got.Cell.Timestamp != 12345 || got.Cell.Deleted ||
		!bytes.Equal(got.Cell.Value, e.Cell.Value) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestEntryTombstone(t *testing.T) {
	e := Entry{Key: Key{"r", "c"}, Cell: Cell{Deleted: true, Version: 3}}
	got, _, err := DecodeEntry(EncodeEntry(nil, e))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cell.Deleted {
		t.Error("tombstone flag lost")
	}
	if len(got.Cell.Value) != 0 {
		t.Errorf("tombstone has value %q", got.Cell.Value)
	}
}

func TestEntryDecodeTruncated(t *testing.T) {
	e := Entry{Key: Key{"row", "col"}, Cell: Cell{Value: []byte("value")}}
	buf := EncodeEntry(nil, e)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeEntry(buf[:cut]); err == nil {
			t.Errorf("cut at %d: decode succeeded", cut)
		}
	}
}

func TestEntryPropertyRoundTrip(t *testing.T) {
	f := func(row, col string, value []byte, version uint64, ts int64, del bool, seq uint32) bool {
		if len(row) > 1<<15 || len(col) > 1<<15 {
			return true // lengths beyond the u16 framing are out of scope
		}
		e := Entry{
			Key: Key{Row: row, Col: col},
			Cell: Cell{
				Value: value, Version: version, Timestamp: ts,
				Deleted: del, LSN: wal.MakeLSN(1, uint64(seq)),
			},
		}
		got, n, err := DecodeEntry(EncodeEntry(nil, e))
		if err != nil {
			return false
		}
		return n > 0 && got.Key == e.Key && got.Cell.Version == version &&
			got.Cell.Timestamp == ts && got.Cell.Deleted == del &&
			bytes.Equal(got.Cell.Value, value) && got.Cell.LSN == e.Cell.LSN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeEntryAppends(t *testing.T) {
	e1 := Entry{Key: Key{"a", "1"}, Cell: Cell{Value: []byte("v1")}}
	e2 := Entry{Key: Key{"b", "2"}, Cell: Cell{Value: []byte("v2")}}
	buf := EncodeEntry(EncodeEntry(nil, e1), e2)
	g1, n, err := DecodeEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := DecodeEntry(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if g1.Key.Row != "a" || g2.Key.Row != "b" {
		t.Errorf("rows = %q,%q", g1.Key.Row, g2.Key.Row)
	}
}
