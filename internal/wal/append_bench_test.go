package wal

import (
	"fmt"
	"testing"
)

// benchRecs builds n sequential 256-byte-payload write records for cohort 1.
func benchRecs(n int, startSeq uint64) []Record {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Cohort: 1, Type: RecWrite, LSN: MakeLSN(1, startSeq+uint64(i)), Payload: payload}
	}
	return recs
}

// BenchmarkLogAppend measures per-record append cost (encode + device hand-off,
// no force) for 1/8/64-record batches — the follower's per-MsgProposeBatch log
// work. The batched variant uses group framing (one frame + one checksum).
func BenchmarkLogAppend(b *testing.B) {
	for _, batch := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			l, err := Open(Config{Store: NewMemSegmentStore(DeviceInstant), GroupCommit: true})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			recs := benchRecs(batch, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := range recs {
					if _, err := l.Append(recs[r]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			opsPerIter := int64(batch)
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*opsPerIter), "ns/rec")
		})
	}
}
