package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureImportBase prefixes the import path of every fixture corpus
// (testdata is invisible to the go tool but loads fine by directory).
const fixtureImportBase = "spinnaker/internal/analysis/testdata/"

// loadFixture loads one testdata corpus as its own package.
func loadFixture(t *testing.T, rel string) (*Module, *Package) {
	t.Helper()
	m, pkg, err := LoadDir("../..", filepath.Join("internal/analysis/testdata", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatalf("load fixture %s: %v", rel, err)
	}
	return m, pkg
}

// wantMarkers collects the fixture's "// WANT <analyzer>" markers as
// "analyzer@line" keys.
func wantMarkers(m *Module, pkg *Package) map[string]int {
	want := map[string]int{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// WANT ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				p := m.Fset.Position(c.Pos())
				want[fmt.Sprintf("%s@%d", fields[0], p.Line)]++
			}
		}
	}
	return want
}

// checkFixture runs cfg over the corpus at rel and requires the finding
// set to equal the corpus's WANT markers (the empty set for green
// corpora, which carry no markers).
func checkFixture(t *testing.T, rel string, cfg Config) {
	t.Helper()
	m, pkg := loadFixture(t, rel)
	res, err := Run(m, cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", rel, err)
	}
	got := map[string]int{}
	for _, f := range res.Findings {
		got[fmt.Sprintf("%s@%d", f.Analyzer, f.Pos.Line)]++
	}
	want := wantMarkers(m, pkg)
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s: want %d finding(s) %s, got %d", rel, n, k, got[k])
		}
	}
	for k, n := range got {
		if want[k] == 0 {
			t.Errorf("%s: unexpected finding %s (x%d): %v", rel, k, n, messagesAt(res.Findings, k))
		}
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("%s: unexpected suppressed findings: %v", rel, res.Suppressed)
	}
}

func messagesAt(fs []Finding, key string) []string {
	var out []string
	for _, f := range fs {
		if fmt.Sprintf("%s@%d", f.Analyzer, f.Pos.Line) == key {
			out = append(out, f.Message)
		}
	}
	return out
}

func TestDetcheckFixtures(t *testing.T) {
	cfg := Config{
		Analyzers: []string{"detcheck"},
		DetScope:  []string{fixtureImportBase + "det"},
	}
	checkFixture(t, "det/red", cfg)
	checkFixture(t, "det/green", cfg)
}

func TestAliascheckFixtures(t *testing.T) {
	cfg := Config{Analyzers: []string{"aliascheck"}}
	checkFixture(t, "alias/red", cfg)
	checkFixture(t, "alias/green", cfg)
}

func TestLockcheckFixtures(t *testing.T) {
	for _, corpus := range []string{"lock/red", "lock/green"} {
		base := fixtureImportBase + corpus
		cfg := Config{
			Analyzers: []string{"lockcheck"},
			LockOrder: [][2]string{{base + ".Registry.mu", base + ".Table.mu"}},
			NoHoldAcross: []NoHoldRule{{
				Lock:     base + ".Table.mu",
				Callees:  []string{base + ".Store"},
				ChanSend: true,
			}},
		}
		checkFixture(t, corpus, cfg)
	}
}

func TestHotpathFixtures(t *testing.T) {
	cfg := Config{Analyzers: []string{"hotpath"}}
	checkFixture(t, "hot/red", cfg)
	checkFixture(t, "hot/green", cfg)
}
