package cluster

import "fmt"

// CheckInvariants validates the structural invariants the replication and
// routing layers assume of every published layout. The reconfiguration
// quickchecks assert them over random mutation walks at build time; live
// tests (the balancer-vs-nemesis scenario) call this on every adopted
// version so a bad mutation is caught at the version that introduced it,
// not at the far end of a failed workload.
//
// Invariants:
//   - ranges tile the key space: the first range starts at "", each
//     range's high bound equals the next range's low bound, and the last
//     range is unbounded above;
//   - RangeOf routes a range's own low bound back to that range;
//   - every cohort is non-empty, drawn from the layout's node set without
//     duplicates, its quorum is a strict majority, and its home node is
//     its first member;
//   - CohortContains and RangesOf agree with Cohort.
func (l *Layout) CheckInvariants() error {
	ids := l.RangeIDs()
	if len(ids) == 0 {
		return fmt.Errorf("cluster: layout v%d has no ranges", l.version)
	}
	prevHigh := ""
	for i, id := range ids {
		low, high := l.Bounds(id)
		if i == 0 && low != "" {
			return fmt.Errorf("cluster: layout v%d: first range %d starts at %q, not \"\"", l.version, id, low)
		}
		if i > 0 && low != prevHigh {
			return fmt.Errorf("cluster: layout v%d: gap or overlap at range %d: low %q != previous high %q", l.version, id, low, prevHigh)
		}
		if i == len(ids)-1 && high != "" {
			return fmt.Errorf("cluster: layout v%d: last range %d is bounded above at %q", l.version, id, high)
		}
		if high != "" && low >= high {
			return fmt.Errorf("cluster: layout v%d: range %d has empty or inverted bounds [%q,%q)", l.version, id, low, high)
		}
		prevHigh = high
		if got := l.RangeOf(low); got != id {
			return fmt.Errorf("cluster: layout v%d: key %q owned by range %d but routed to %d", l.version, low, id, got)
		}

		cohort := l.Cohort(id)
		if len(cohort) == 0 {
			return fmt.Errorf("cluster: layout v%d: range %d has an empty cohort", l.version, id)
		}
		seen := make(map[string]bool, len(cohort))
		for _, member := range cohort {
			if !l.HasNode(member) {
				return fmt.Errorf("cluster: layout v%d: range %d cohort member %s not in node set", l.version, id, member)
			}
			if seen[member] {
				return fmt.Errorf("cluster: layout v%d: range %d has duplicate cohort member %s", l.version, id, member)
			}
			seen[member] = true
			if !l.CohortContains(id, member) {
				return fmt.Errorf("cluster: layout v%d: CohortContains(%d, %s) = false", l.version, id, member)
			}
			found := false
			for _, rid := range l.RangesOf(member) {
				if rid == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("cluster: layout v%d: RangesOf(%s) misses range %d", l.version, member, id)
			}
		}
		if q := l.Quorum(id); q != len(cohort)/2+1 {
			return fmt.Errorf("cluster: layout v%d: range %d quorum %d for cohort size %d", l.version, id, q, len(cohort))
		}
		if l.HomeNode(id) != cohort[0] {
			return fmt.Errorf("cluster: layout v%d: range %d home %s != cohort[0] %s", l.version, id, l.HomeNode(id), cohort[0])
		}
	}
	return nil
}
