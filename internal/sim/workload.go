package sim

import (
	"math/rand"
	"sort"
	"spinnaker/internal/simtime"
	"sync"
	"time"
)

// LatencyRecorder accumulates operation latencies. It keeps a bounded
// reservoir for percentiles and exact aggregates for the mean — the paper's
// figures plot average latency (Appendix C).
type LatencyRecorder struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration
	rng     *rand.Rand
}

const reservoirSize = 4096

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{rng: rand.New(rand.NewSource(42))}
}

// Record adds one latency observation.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.sum += d
	if r.min == 0 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	if len(r.samples) < reservoirSize {
		r.samples = append(r.samples, d)
	} else if i := r.rng.Int63n(r.count); i < reservoirSize {
		r.samples[i] = d
	}
}

// Count returns the number of observations.
func (r *LatencyRecorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Avg returns the mean latency.
func (r *LatencyRecorder) Avg() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return 0
	}
	return r.sum / time.Duration(r.count)
}

// Min and Max return the observed extremes.
func (r *LatencyRecorder) Min() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.min
}

// Max returns the largest observation.
func (r *LatencyRecorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.max
}

// Percentile returns the p-th percentile (0 < p ≤ 100) from the reservoir.
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// LoadPoint is one point on a latency-vs-load curve: the paper's figures
// increase client threads by powers of two and plot achieved requests/sec
// against average latency (Appendix C: "load is actually a function of the
// underlying independent variable, namely, the number of threads per
// client node").
type LoadPoint struct {
	Threads    int
	Throughput float64 // requests/sec achieved
	AvgLatency time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Errors     int64
}

// Op performs one operation; i is a per-thread operation counter.
type Op func(thread, i int) error

// RunClosedLoop drives `threads` closed-loop clients for `duration`, each
// executing op back to back, and reports the achieved load point.
func RunClosedLoop(threads int, duration time.Duration, op Op) LoadPoint {
	rec := NewLatencyRecorder()
	var errs int64
	var errMu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := simtime.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				opStart := simtime.Now()
				err := op(t, i)
				if err != nil {
					errMu.Lock()
					errs++
					errMu.Unlock()
					continue
				}
				rec.Record(simtime.Since(opStart))
			}
		}(t)
	}
	simtime.Sleep(duration)
	close(stop)
	wg.Wait()
	elapsed := simtime.Since(start)

	return LoadPoint{
		Threads:    threads,
		Throughput: float64(rec.Count()) / elapsed.Seconds(),
		AvgLatency: rec.Avg(),
		P50:        rec.Percentile(50),
		P95:        rec.Percentile(95),
		P99:        rec.Percentile(99),
		Errors:     errs,
	}
}

// LoadCurve measures one LoadPoint per thread count.
func LoadCurve(threadCounts []int, duration time.Duration, mkOp func(threads int) Op) []LoadPoint {
	out := make([]LoadPoint, 0, len(threadCounts))
	for _, threads := range threadCounts {
		out = append(out, RunClosedLoop(threads, duration, mkOp(threads)))
	}
	return out
}

// ValueOfSize builds a deterministic payload of n bytes (the paper's
// workloads use 4KB values).
func ValueOfSize(n int) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	return v
}

// KeyPicker yields row keys for workloads. Logical row indices are strided
// across the full fixed-width key domain so a workload of any size spreads
// over every key range of the cluster, as the paper's whole-cluster
// workloads do (Appendix C).
type KeyPicker struct {
	mu     sync.Mutex
	rng    *rand.Rand
	space  int
	width  int
	stride int
	next   int
}

// NewKeyPicker returns a picker over a key space of `space` rows with
// zero-padded width `width`.
func NewKeyPicker(space, width int, seed int64) *KeyPicker {
	return &KeyPicker{
		rng: rand.New(rand.NewSource(seed)), space: space, width: width,
		stride: keyStride(space, width),
	}
}

// Random returns a uniformly random row key (the read workload of §9.1:
// "each client read 4KB values from random rows").
func (k *KeyPicker) Random() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return formatKey(k.rng.Intn(k.space)*k.stride, k.width)
}

// Sequential returns consecutive row keys (the write workload of §9.2:
// "each client wrote 4KB values into rows with consecutive keys").
func (k *KeyPicker) Sequential() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	key := formatKey(k.next%k.space*k.stride, k.width)
	k.next++
	return key
}

// SeekTo positions the sequential cursor (per-thread key segments).
func (k *KeyPicker) SeekTo(i int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.next = i
}

// StridedKey maps a logical row index onto a key spread uniformly across
// the whole width-digit key domain.
func StridedKey(i, space, width int) string {
	if space <= 0 {
		space = 1
	}
	return formatKey(i%space*keyStride(space, width), width)
}

func keyStride(space, width int) int {
	domain := 1
	for i := 0; i < width; i++ {
		domain *= 10
	}
	stride := domain / space
	if stride < 1 {
		stride = 1
	}
	return stride
}

func formatKey(i, width int) string {
	buf := make([]byte, width)
	for p := width - 1; p >= 0; p-- {
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf)
}
