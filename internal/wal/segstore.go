package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A SegmentStore provides the stable storage that holds log segments. The
// log rolls to a new segment when the current one exceeds its size limit;
// old segments are removed once every cohort's records in them have been
// captured to SSTables (paper §6.1).
type SegmentStore interface {
	// List returns existing segment ids in ascending order.
	List() ([]uint64, error)
	// Open opens an existing segment.
	Open(id uint64) (Device, error)
	// Create creates a new, empty segment.
	Create(id uint64) (Device, error)
	// Remove deletes a segment.
	Remove(id uint64) error
}

// MemSegmentStore keeps segments in memory (as MemDevices) and supports the
// crash/failure fault injection used by tests and the simulation harness.
type MemSegmentStore struct {
	profile DeviceProfile

	mu   sync.Mutex
	segs map[uint64]*MemDevice
}

// NewMemSegmentStore returns an empty in-memory segment store whose devices
// use the given latency profile.
func NewMemSegmentStore(profile DeviceProfile) *MemSegmentStore {
	return &MemSegmentStore{profile: profile, segs: make(map[uint64]*MemDevice)}
}

// List implements SegmentStore.
func (s *MemSegmentStore) List() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint64, 0, len(s.segs))
	for id := range s.segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Open implements SegmentStore.
func (s *MemSegmentStore) Open(id uint64) (Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.segs[id]
	if !ok {
		return nil, fmt.Errorf("wal: segment %d does not exist", id)
	}
	return d, nil
}

// Create implements SegmentStore.
func (s *MemSegmentStore) Create(id uint64) (Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segs[id]; ok {
		return nil, fmt.Errorf("wal: segment %d already exists", id)
	}
	d := NewMemDevice(s.profile)
	s.segs[id] = d
	return d, nil
}

// Remove implements SegmentStore.
func (s *MemSegmentStore) Remove(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.segs, id)
	return nil
}

// Crash simulates a node crash: every segment loses its unforced tail.
func (s *MemSegmentStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, d := range s.segs {
		d.Crash()
	}
}

// Fail simulates a permanent disk failure: all segments are destroyed, as
// in §6.1 ("the follower has lost all its data because of a disk failure").
func (s *MemSegmentStore) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segs = make(map[uint64]*MemDevice)
}

// TotalForces sums the medium force counts over all segments; used by the
// group-commit ablation bench.
func (s *MemSegmentStore) TotalForces() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, d := range s.segs {
		n += d.Forces()
	}
	return n
}

// FileSegmentStore keeps each segment as a file named seg-<id>.log inside a
// directory. cmd/spinnaker-server uses it for durable single-box nodes.
type FileSegmentStore struct {
	dir string
}

// NewFileSegmentStore returns a store rooted at dir, creating it if needed.
func NewFileSegmentStore(dir string) (*FileSegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	return &FileSegmentStore{dir: dir}, nil
}

func (s *FileSegmentStore) path(id uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%012d.log", id))
}

// List implements SegmentStore.
func (s *FileSegmentStore) List() ([]uint64, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: readdir: %w", err)
	}
	var ids []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log"), 10, 64)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// Open implements SegmentStore.
func (s *FileSegmentStore) Open(id uint64) (Device, error) {
	return OpenFileDevice(s.path(id))
}

// Create implements SegmentStore.
func (s *FileSegmentStore) Create(id uint64) (Device, error) {
	if _, err := os.Stat(s.path(id)); err == nil {
		return nil, fmt.Errorf("wal: segment %d already exists", id)
	}
	return OpenFileDevice(s.path(id))
}

// Remove implements SegmentStore.
func (s *FileSegmentStore) Remove(id uint64) error {
	return os.Remove(s.path(id))
}

var (
	_ SegmentStore = (*MemSegmentStore)(nil)
	_ SegmentStore = (*FileSegmentStore)(nil)
)
