package bench

import (
	"fmt"
	"math/rand"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/dynamo"
	"spinnaker/internal/sim"
	"spinnaker/internal/wal"
)

// Figure8 reproduces "Average read latency" (§9.1): 4KB reads of random
// rows, latency vs load, four series — Spinnaker consistent and timeline
// reads vs Cassandra quorum and weak reads.
func Figure8(cfg Config) (Table, error) {
	cfg.fillDefaults()

	sc, err := newSpin(spinOpts(cfg, wal.DeviceInstant))
	if err != nil {
		return Table{}, err
	}
	defer sc.Stop()
	if err := preloadSpin(sc, cfg.Rows, cfg.ValueSize); err != nil {
		return Table{}, err
	}
	cfg.progress("figure8: spinnaker preloaded")

	dc, err := sim.NewDynamoCluster(dynOpts(cfg, wal.DeviceInstant))
	if err != nil {
		return Table{}, err
	}
	defer dc.Stop()
	if err := preloadDyn(dc, cfg.Rows, cfg.ValueSize); err != nil {
		return Table{}, err
	}
	cfg.progress("figure8: baseline preloaded")

	spinRead := func(consistent bool) func(int) sim.Op {
		return func(threads int) sim.Op {
			clients := make([]*core.Client, threads)
			picks := make([]*sim.KeyPicker, threads)
			for i := range clients {
				clients[i] = sc.NewClient()
				picks[i] = sim.NewKeyPicker(cfg.Rows, 8, int64(i+1))
			}
			return func(t, _ int) error {
				_, _, err := clients[t].Get(picks[t].Random(), "c", consistent)
				return err
			}
		}
	}
	dynRead := func(level dynamo.ConsistencyLevel) func(int) sim.Op {
		return func(threads int) sim.Op {
			clients := make([]*dynamo.Client, threads)
			picks := make([]*sim.KeyPicker, threads)
			for i := range clients {
				clients[i] = dc.NewClient()
				picks[i] = sim.NewKeyPicker(cfg.Rows, 8, int64(i+1))
			}
			return func(t, _ int) error {
				_, _, err := clients[t].Get(picks[t].Random(), "c", level)
				return err
			}
		}
	}

	table := Table{
		ID:    "Figure 8",
		Title: "average read latency vs load (4KB values, random rows)",
		Columns: []string{
			"threads",
			"sp-consistent req/s", "sp-consistent ms",
			"sp-timeline req/s", "sp-timeline ms",
			"cass-quorum req/s", "cass-quorum ms",
			"cass-weak req/s", "cass-weak ms",
		},
		Notes: "quorum read 1.5x-3.0x worse than consistent read, knee sooner; timeline ~= weak",
	}
	for _, threads := range cfg.Threads {
		pc := sim.RunClosedLoop(threads, cfg.PointDuration, spinRead(true)(threads))
		pt := sim.RunClosedLoop(threads, cfg.PointDuration, spinRead(false)(threads))
		pq := sim.RunClosedLoop(threads, cfg.PointDuration, dynRead(dynamo.Quorum)(threads))
		pw := sim.RunClosedLoop(threads, cfg.PointDuration, dynRead(dynamo.Weak)(threads))
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(threads),
			tput(pc.Throughput), ms(pc.AvgLatency),
			tput(pt.Throughput), ms(pt.AvgLatency),
			tput(pq.Throughput), ms(pq.AvgLatency),
			tput(pw.Throughput), ms(pw.AvgLatency),
		})
		cfg.progress("figure8: threads=%d done", threads)
	}
	return table, nil
}

// writeCurve measures a write latency-vs-load curve for both systems on
// the given device profile (the §9.2 workload: 4KB values, consecutive
// keys per client).
func writeCurve(cfg Config, device wal.DeviceProfile, id, title, notes string) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)

	sc, err := newSpin(spinOpts(cfg, device))
	if err != nil {
		return Table{}, err
	}
	defer sc.Stop()
	dc, err := sim.NewDynamoCluster(dynOpts(cfg, device))
	if err != nil {
		return Table{}, err
	}
	defer dc.Stop()

	keySpace := cfg.Rows * 50 // fresh keys; consecutive per thread
	spinWrites := func(threads int) sim.Op {
		clients := make([]*core.Client, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
		}
		return func(t, i int) error {
			key := sim.StridedKey(t*keySpace/threads+i, keySpace, 8)
			_, err := clients[t].Put(key, "c", value)
			return err
		}
	}
	dynWrites := func(level dynamo.ConsistencyLevel) func(int) sim.Op {
		return func(threads int) sim.Op {
			clients := make([]*dynamo.Client, threads)
			for i := range clients {
				clients[i] = dc.NewClient()
			}
			return func(t, i int) error {
				key := sim.StridedKey(t*keySpace/threads+i, keySpace, 8)
				_, err := clients[t].Put(key, "c", value, level)
				return err
			}
		}
	}

	table := Table{
		ID:    id,
		Title: title,
		Columns: []string{
			"threads",
			"spinnaker req/s", "spinnaker ms",
			"cass-quorum req/s", "cass-quorum ms",
			"sp/cass latency",
		},
		Notes: notes,
	}
	for _, threads := range cfg.Threads {
		ps := sim.RunClosedLoop(threads, cfg.PointDuration, spinWrites(threads))
		pq := sim.RunClosedLoop(threads, cfg.PointDuration, dynWrites(dynamo.Quorum)(threads))
		ratio := "n/a"
		if pq.AvgLatency > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(ps.AvgLatency)/float64(pq.AvgLatency))
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(threads),
			tput(ps.Throughput), ms(ps.AvgLatency),
			tput(pq.Throughput), ms(pq.AvgLatency),
			ratio,
		})
		cfg.progress("%s: threads=%d done", id, threads)
	}
	return table, nil
}

// Figure9 reproduces "Average write latency" (§9.2) on the HDD log device.
func Figure9(cfg Config) (Table, error) {
	return writeCurve(cfg, wal.DeviceHDD,
		"Figure 9", "average write latency vs load (4KB values, consecutive keys, hdd log)",
		"Spinnaker 5%-10% slower than Cassandra quorum writes across the board")
}

// Figure13 reproduces "Average write latency using an SSD for logging"
// (App. D.4).
func Figure13(cfg Config) (Table, error) {
	return writeCurve(cfg, wal.DeviceSSD,
		"Figure 13", "average write latency vs load (4KB values, ssd log)",
		"both datastores improve dramatically over the hdd log (paper: to <=6ms in most cases)")
}

// Figure16 reproduces "Average write latency with a main memory log"
// (App. D.6.2): commit after reaching 2 of 3 main-memory logs.
func Figure16(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	sc, err := newSpin(spinOpts(cfg, wal.DeviceMem))
	if err != nil {
		return Table{}, err
	}
	defer sc.Stop()
	keySpace := cfg.Rows * 50
	mkOp := func(threads int) sim.Op {
		clients := make([]*core.Client, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
		}
		return func(t, i int) error {
			key := sim.StridedKey(t*keySpace/threads+i, keySpace, 8)
			_, err := clients[t].Put(key, "c", value)
			return err
		}
	}
	table := Table{
		ID:      "Figure 16",
		Title:   "average write latency with a main-memory log (commit on 2/3 memory logs)",
		Columns: []string{"threads", "spinnaker req/s", "spinnaker ms"},
		Notes:   "write latency improves to ~2ms (paper); a background thread flushes the memory log to disk",
	}
	for _, threads := range cfg.Threads {
		p := sim.RunClosedLoop(threads, cfg.PointDuration, mkOp(threads))
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(threads), tput(p.Throughput), ms(p.AvgLatency),
		})
		cfg.progress("figure16: threads=%d done", threads)
	}
	return table, nil
}

// Table1 reproduces "Cohort recovery time" (App. D.1): kill a cohort
// leader under steady writes and measure the time until the cohort is open
// for writes again, as a function of the commit period. The coordination
// service's failure-detection timeout is excluded, as in the paper (our
// crash expires the session immediately).
func Table1(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	// Paper: commit periods 1/5/10/15s. At the harness's ~10× scale:
	periods := []time.Duration{
		100 * time.Millisecond,
		500 * time.Millisecond,
		1000 * time.Millisecond,
		1500 * time.Millisecond,
	}
	paperSec := []string{"0.4", "1.5", "2.6", "4.0"}

	table := Table{
		ID:      "Table 1",
		Title:   "cohort recovery time vs commit period (steady writes to one cohort)",
		Columns: []string{"commit period", "unresolved writes", "recovery (best of 3)", "paper (1s=our 100ms)"},
		Notes:   "unresolved volume (and hence recovery work) proportional to the commit period; recovery <0.5s at a 1s period. Our takeover resolves each write in ~10us (followers already hold them and just ack), so wall time is floor-dominated at these scales; the paper's ~270us/record makes the proportionality visible in seconds.",
	}
	for i, period := range periods {
		recovery, unresolved, err := minRecovery(cfg, value, period, 3)
		if err != nil {
			return Table{}, err
		}
		paperPeriods := []string{"1s", "5s", "10s", "15s"}
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%v (paper %s)", period, paperPeriods[i]),
			fmt.Sprint(unresolved),
			recovery.Round(time.Millisecond).String(),
			paperSec[i] + "s",
		})
		cfg.progress("table1: period=%v unresolved=%d recovery=%v", period, unresolved, recovery.Round(time.Millisecond))
	}
	return table, nil
}

// minRecovery measures leader-failure recovery `trials` times, returning
// the fastest observation — the intrinsic protocol cost, with host
// scheduling noise (which is strictly additive) minimized — plus the
// largest number of unresolved writes a new leader had to re-propose
// (Table 1's proportionality driver: "the number of these log records is
// proportional to the commit period").
func minRecovery(cfg Config, value []byte, period time.Duration, trials int) (time.Duration, int, error) {
	best := time.Duration(0)
	maxUnresolved := 0
	for trial := 0; trial < trials; trial++ {
		opts := spinOpts(cfg, wal.DeviceHDD)
		opts.Nodes = 3 // a single 3-node cohort per key range
		opts.CommitPeriod = period
		opts.WriteTimeout = 10 * time.Second
		sc, err := newSpin(opts)
		if err != nil {
			return 0, 0, err
		}

		// Steady single-cohort writes: all keys in range 0. The number of
		// log records the new leader must re-propose — and the committed
		// writes it must ship to catch followers up — is proportional to
		// the write rate times the commit period (App. D.1).
		stop := make(chan struct{})
		done := make(chan struct{})
		for w := 0; w < 24; w++ {
			go func(w int) {
				if w == 0 {
					defer close(done)
				}
				c := sc.NewClient()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					_, _ = c.Put(sc.Key(w*100000+i%100000), "c", value)
				}
			}(w)
		}
		// Crash just before the next commit message so the followers'
		// last-committed LSNs are maximally stale: the amount of state
		// the new leader must resolve is then a full commit period's
		// worth of writes, which is what Table 1 sweeps. We detect the
		// commit tick by watching a follower's lastCommitted advance.
		rangeID := sc.Layout.RangeOf(sc.Key(0))
		leader := sc.LeaderOf(rangeID)
		var followerNode *core.Node
		for _, id := range sc.Nodes() {
			if id == leader {
				continue
			}
			if n, ok := sc.Node(id); ok {
				if _, ok := n.ReplicaStats(rangeID); ok {
					followerNode = n
					break
				}
			}
		}
		if followerNode == nil {
			sc.Stop()
			return 0, 0, fmt.Errorf("table1: no follower found")
		}
		time.Sleep(300 * time.Millisecond) // let the write load ramp up
		base, _ := followerNode.ReplicaStats(rangeID)
		tickDeadline := time.Now().Add(2*period + time.Second)
		for {
			st, _ := followerNode.ReplicaStats(rangeID)
			if st.LastCommitted > base.LastCommitted {
				break // a commit message just arrived
			}
			if time.Now().After(tickDeadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(period * 9 / 10) // ride to just before the next tick

		// Quiesce the writers: the unresolved state is in place, and
		// recovery should be measured without competing client load
		// (the paper likewise uses a single probing client).
		close(stop)
		<-done

		// The unresolved volume a new leader must resolve: the pending
		// (proposed, not yet covered by a commit message) writes at the
		// surviving followers.
		for _, id := range sc.Nodes() {
			if id == leader {
				continue
			}
			if n, ok := sc.Node(id); ok {
				if st, ok := n.ReplicaStats(rangeID); ok && st.Pending > maxUnresolved {
					maxUnresolved = st.Pending
				}
			}
		}

		crashAt := time.Now()
		if err := sc.CrashNode(leader); err != nil {
			sc.Stop()
			return 0, 0, err
		}
		// Recovery = until a survivor reports an open leader role for
		// the cohort (leader election + takeover, §6.2/§7).
		var recovery time.Duration
		for {
			recovered := false
			for _, id := range sc.Nodes() {
				if n, ok := sc.Node(id); ok {
					if st, ok := n.ReplicaStats(rangeID); ok && st.Role == core.RoleLeader && st.Open {
						recovered = true
					}
				}
			}
			if recovered {
				recovery = time.Since(crashAt)
				break
			}
			if time.Since(crashAt) > 60*time.Second {
				sc.Stop()
				return 0, 0, fmt.Errorf("table1: cohort never recovered")
			}
			time.Sleep(200 * time.Microsecond)
		}
		sc.Stop()
		if best == 0 || recovery < best {
			best = recovery
		}
	}
	return best, maxUnresolved, nil
}

// Figure11 reproduces "Average write latency with increasing cluster size"
// (App. D.2): fixed per-node load at 20, 40, and 80 nodes; latency should
// stay roughly constant for both systems since a write touches only the 3
// nodes of its cohort.
func Figure11(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	// The paper sweeps 20/40/80 EC2 instances; we sweep 10/20/40
	// in-process nodes — the largest sizes this harness can host without
	// the box itself becoming the bottleneck — with load fixed per node.
	sizes := []int{10, 20, 40}

	table := Table{
		ID:      "Figure 11",
		Title:   "average write latency vs cluster size (fixed per-node load, ssd log)",
		Columns: []string{"nodes", "threads", "spinnaker ms", "cass-quorum ms"},
		Notes:   "latency roughly constant with cluster size for both systems",
	}
	for _, nodes := range sizes {
		threads := nodes / 2 // fixed per-node load
		c := cfg
		c.Nodes = nodes
		keySpace := cfg.Rows * 50

		sc, err := newSpin(spinOpts(c, wal.DeviceSSD))
		if err != nil {
			return Table{}, err
		}
		spinOp := func(threads int) sim.Op {
			clients := make([]*core.Client, threads)
			for i := range clients {
				clients[i] = sc.NewClient()
			}
			return func(t, i int) error {
				_, err := clients[t].Put(sim.StridedKey(t*keySpace/threads+i, keySpace, 8), "c", value)
				return err
			}
		}
		ps := sim.RunClosedLoop(threads, cfg.PointDuration, spinOp(threads))
		sc.Stop()

		dc, err := sim.NewDynamoCluster(dynOpts(c, wal.DeviceSSD))
		if err != nil {
			return Table{}, err
		}
		dynOp := func(threads int) sim.Op {
			clients := make([]*dynamo.Client, threads)
			for i := range clients {
				clients[i] = dc.NewClient()
			}
			return func(t, i int) error {
				_, err := clients[t].Put(sim.StridedKey(t*keySpace/threads+i, keySpace, 8), "c", value, dynamo.Quorum)
				return err
			}
		}
		pq := sim.RunClosedLoop(threads, cfg.PointDuration, dynOp(threads))
		dc.Stop()

		table.Rows = append(table.Rows, []string{
			fmt.Sprint(nodes), fmt.Sprint(threads), ms(ps.AvgLatency), ms(pq.AvgLatency),
		})
		cfg.progress("figure11: nodes=%d done", nodes)
	}
	return table, nil
}

// Figure12 reproduces "Average latency on a mixed workload" (App. D.3):
// fixed 2 client threads, write percentage swept 0%-60%, four series.
func Figure12(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	const threads = 2

	sc, err := newSpin(spinOpts(cfg, wal.DeviceHDD))
	if err != nil {
		return Table{}, err
	}
	defer sc.Stop()
	if err := preloadSpin(sc, cfg.Rows, cfg.ValueSize); err != nil {
		return Table{}, err
	}
	dc, err := sim.NewDynamoCluster(dynOpts(cfg, wal.DeviceHDD))
	if err != nil {
		return Table{}, err
	}
	defer dc.Stop()
	if err := preloadDyn(dc, cfg.Rows, cfg.ValueSize); err != nil {
		return Table{}, err
	}
	cfg.progress("figure12: preloaded")

	spinMixed := func(consistent bool, writePct int) sim.Op {
		clients := make([]*core.Client, threads)
		rngs := make([]*rand.Rand, threads)
		picks := make([]*sim.KeyPicker, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
			rngs[i] = rand.New(rand.NewSource(int64(writePct*10 + i)))
			picks[i] = sim.NewKeyPicker(cfg.Rows, 8, int64(i+1))
		}
		return func(t, _ int) error {
			if rngs[t].Intn(100) < writePct {
				_, err := clients[t].Put(picks[t].Random(), "c", value)
				return err
			}
			_, _, err := clients[t].Get(picks[t].Random(), "c", consistent)
			return err
		}
	}
	dynMixed := func(readLevel dynamo.ConsistencyLevel, writePct int) sim.Op {
		clients := make([]*dynamo.Client, threads)
		rngs := make([]*rand.Rand, threads)
		picks := make([]*sim.KeyPicker, threads)
		for i := range clients {
			clients[i] = dc.NewClient()
			rngs[i] = rand.New(rand.NewSource(int64(writePct*10 + i)))
			picks[i] = sim.NewKeyPicker(cfg.Rows, 8, int64(i+1))
		}
		return func(t, _ int) error {
			if rngs[t].Intn(100) < writePct {
				// Writes always use quorum for equal durability.
				_, err := clients[t].Put(picks[t].Random(), "c", value, dynamo.Quorum)
				return err
			}
			_, _, err := clients[t].Get(picks[t].Random(), "c", readLevel)
			return err
		}
	}

	table := Table{
		ID:    "Figure 12",
		Title: "average latency, mixed reads+writes, 2 client threads, write % swept",
		Columns: []string{
			"write %",
			"sp-consistent ms", "sp-timeline ms",
			"cass-quorum ms", "cass-weak ms",
		},
		Notes: "sp-consistent ~10% better at 10% writes; cassandra ~7% better at 50%; timeline within 2-10% of weak",
	}
	for pct := 0; pct <= 60; pct += 10 {
		pc := sim.RunClosedLoop(threads, cfg.PointDuration, spinMixed(true, pct))
		pt := sim.RunClosedLoop(threads, cfg.PointDuration, spinMixed(false, pct))
		pq := sim.RunClosedLoop(threads, cfg.PointDuration, dynMixed(dynamo.Quorum, pct))
		pw := sim.RunClosedLoop(threads, cfg.PointDuration, dynMixed(dynamo.Weak, pct))
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d%%", pct),
			ms(pc.AvgLatency), ms(pt.AvgLatency), ms(pq.AvgLatency), ms(pw.AvgLatency),
		})
		cfg.progress("figure12: %d%% writes done", pct)
	}
	return table, nil
}

// Figure14 reproduces "Conditional put vs regular put" (App. D.5): after
// preloading, clients atomically replace values via conditional put.
func Figure14(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	sc, err := newSpin(spinOpts(cfg, wal.DeviceHDD))
	if err != nil {
		return Table{}, err
	}
	defer sc.Stop()
	if err := preloadSpin(sc, cfg.Rows, cfg.ValueSize); err != nil {
		return Table{}, err
	}
	cfg.progress("figure14: preloaded")

	condOp := func(threads int) sim.Op {
		clients := make([]*core.Client, threads)
		versions := make([]map[string]uint64, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
			versions[i] = make(map[string]uint64)
		}
		return func(t, i int) error {
			// Each thread owns a key slice: no cross-thread conflicts,
			// pure conditional-put cost (as in the paper's workload).
			key := sim.StridedKey(t*cfg.Rows/threads+i%(cfg.Rows/threads+1), cfg.Rows, 8)
			ver, ok := versions[t][key]
			if !ok {
				_, v, err := clients[t].Get(key, "c", true)
				if err != nil {
					return err
				}
				ver = v
			}
			v2, err := clients[t].ConditionalPut(key, "c", value, ver)
			if err != nil {
				delete(versions[t], key)
				return err
			}
			versions[t][key] = v2
			return nil
		}
	}
	putOp := func(threads int) sim.Op {
		clients := make([]*core.Client, threads)
		for i := range clients {
			clients[i] = sc.NewClient()
		}
		return func(t, i int) error {
			key := sim.StridedKey(t*cfg.Rows/threads+i%(cfg.Rows/threads+1), cfg.Rows, 8)
			_, err := clients[t].Put(key, "c", value)
			return err
		}
	}

	table := Table{
		ID:      "Figure 14",
		Title:   "conditional put vs regular put (4KB values, hdd log)",
		Columns: []string{"threads", "condput req/s", "condput ms", "put req/s", "put ms"},
		Notes:   "conditional put marginally worse: it reads a version and compares before writing",
	}
	for _, threads := range cfg.Threads {
		p1 := sim.RunClosedLoop(threads, cfg.PointDuration, condOp(threads))
		p2 := sim.RunClosedLoop(threads, cfg.PointDuration, putOp(threads))
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(threads),
			tput(p1.Throughput), ms(p1.AvgLatency),
			tput(p2.Throughput), ms(p2.AvgLatency),
		})
		cfg.progress("figure14: threads=%d done", threads)
	}
	return table, nil
}

// Figure15 reproduces "Weak vs quorum writes in Cassandra" (App. D.6.1).
func Figure15(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(cfg.ValueSize)
	dc, err := sim.NewDynamoCluster(dynOpts(cfg, wal.DeviceHDD))
	if err != nil {
		return Table{}, err
	}
	defer dc.Stop()

	keySpace := cfg.Rows * 50
	mkOp := func(level dynamo.ConsistencyLevel) func(int) sim.Op {
		return func(threads int) sim.Op {
			clients := make([]*dynamo.Client, threads)
			for i := range clients {
				clients[i] = dc.NewClient()
			}
			return func(t, i int) error {
				_, err := clients[t].Put(sim.StridedKey(t*keySpace/threads+i, keySpace, 8), "c", value, level)
				return err
			}
		}
	}
	table := Table{
		ID:      "Figure 15",
		Title:   "Cassandra weak vs quorum writes (4KB values, hdd log)",
		Columns: []string{"threads", "weak req/s", "weak ms", "quorum req/s", "quorum ms", "quorum/weak"},
		Notes:   "quorum write 40%-50% slower than weak write",
	}
	for _, threads := range cfg.Threads {
		pw := sim.RunClosedLoop(threads, cfg.PointDuration, mkOp(dynamo.Weak)(threads))
		pq := sim.RunClosedLoop(threads, cfg.PointDuration, mkOp(dynamo.Quorum)(threads))
		ratio := "n/a"
		if pw.AvgLatency > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(pq.AvgLatency)/float64(pw.AvgLatency))
		}
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(threads),
			tput(pw.Throughput), ms(pw.AvgLatency),
			tput(pq.Throughput), ms(pq.AvgLatency),
			ratio,
		})
		cfg.progress("figure15: threads=%d done", threads)
	}
	return table, nil
}
