package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/sim"
	"spinnaker/internal/wal"
)

// The perf-trajectory report (BENCH_NNNN.json, committed in-repo) records the
// write path's throughput, latency percentiles, and allocation cost per PR so
// hot-path regressions are caught by CI instead of archaeology. See
// EXPERIMENTS.md ("Perf trajectory") for how to regenerate and read it.

// ReportSchema identifies the report format; Guard refuses files whose
// schema it does not understand.
const ReportSchema = "spinnaker-bench-trajectory/v1"

// Scenario is one measured configuration in a trajectory report.
type Scenario struct {
	// Name identifies the scenario; Guard compares scenarios across
	// reports by name.
	Name string `json:"name"`
	// Kind is "cluster" (a closed-loop workload against an in-process
	// cluster; ops are client puts) or "micro" (a testing.Benchmark of one
	// code path; ops are benchmark iterations).
	Kind string `json:"kind"`
	// Writers is the closed-loop client count (cluster scenarios).
	Writers int `json:"writers,omitempty"`
	// OpsPerSec is achieved throughput (cluster: puts/s; micro: iterations/s).
	OpsPerSec float64 `json:"ops_per_sec"`
	// Latency percentiles in milliseconds (cluster scenarios; a cluster op
	// is one 8-deep pipelined batch of puts).
	P50Ms float64 `json:"p50_ms,omitempty"`
	P95Ms float64 `json:"p95_ms,omitempty"`
	P99Ms float64 `json:"p99_ms,omitempty"`
	// AllocsPerOp is heap allocations per op. Cluster scenarios report
	// process-wide mallocs over the measured window divided by committed
	// puts — client, leader propose→commit, follower append, and background
	// maintenance included — so it is an end-to-end allocation budget, not
	// a per-function microbenchmark. Micro scenarios report testing's
	// AllocsPerOp.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per op (same accounting).
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	// Errors counts failed ops during the window (cluster scenarios).
	Errors int64 `json:"errors,omitempty"`
}

// Report is a full trajectory measurement.
type Report struct {
	Schema string `json:"schema"`
	// Smoke marks a minimal-window CI run: schema and plumbing are real,
	// numbers are not. Guard never compares smoke numbers.
	Smoke     bool   `json:"smoke,omitempty"`
	GoVersion string `json:"go_version"`
	OSArch    string `json:"os_arch"`
	// CPUs is runtime.NumCPU() at measurement time. Guard only compares
	// reports taken on the same CPU count: the concurrency scenarios are
	// scheduler-bound, so cross-machine throughput deltas measure the
	// hardware, not the code. Zero means a pre-schema-v1.1 report.
	CPUs      int        `json:"cpus,omitempty"`
	Scenarios []Scenario `json:"scenarios"`
}

// trajPipeWindow mirrors the ablation-batching workload: each closed-loop op
// is one 8-deep pipelined batch of puts.
const trajPipeWindow = 8

// runTrajectoryCluster measures one cluster scenario: a 3-node cluster on the
// main-memory log with a per-message delivery cost (the regime where protocol
// CPU and allocation overhead — not the device — are the wall), driven by
// `writers` pipelined closed-loop clients. It reports the median of `trials`
// fresh-cluster runs: single-run cluster throughput swings ±30% on small
// hosts (scheduler and GC noise the allocation numbers do not share), and
// the regression guard needs numbers stable enough for a 10% threshold.
func runTrajectoryCluster(cfg Config, disableBatching bool, writers, trials int) (Scenario, error) {
	points := make([]Scenario, 0, trials)
	for i := 0; i < trials; i++ {
		s, err := runTrajectoryClusterOnce(cfg, disableBatching, writers)
		if err != nil {
			return Scenario{}, err
		}
		points = append(points, s)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].OpsPerSec < points[j].OpsPerSec })
	return points[len(points)/2], nil
}

func runTrajectoryClusterOnce(cfg Config, disableBatching bool, writers int) (Scenario, error) {
	value := sim.ValueOfSize(256)
	keySpace := cfg.Rows * 50

	runtime.GC()
	opts := spinOpts(cfg, wal.DeviceMem)
	opts.Nodes = 3
	opts.MessageCost = 5 * time.Microsecond
	opts.CommitPeriod = 100 * time.Millisecond
	opts.DisableProposalBatching = disableBatching
	sc, err := newSpin(opts)
	if err != nil {
		return Scenario{}, err
	}
	defer sc.Stop()
	clients := make([]*core.Client, writers)
	for i := range clients {
		clients[i] = sc.NewClient()
	}
	op := func(t, i int) error {
		b := clients[t].NewBatch()
		for w := 0; w < trajPipeWindow; w++ {
			b.Put(sim.StridedKey((t*keySpace/writers+i*trajPipeWindow+w)%keySpace, keySpace, 8), "c", value)
		}
		_, err := b.Run()
		return err
	}
	// Warm up (elections settled, memtables warm), then measure with
	// allocation accounting around the window.
	sim.RunClosedLoop(writers, cfg.PointDuration/2, op)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	point := sim.RunClosedLoop(writers, cfg.PointDuration, op)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	puts := point.Throughput * elapsed.Seconds() * trajPipeWindow
	s := Scenario{
		Kind:      "cluster",
		Writers:   writers,
		OpsPerSec: point.Throughput * trajPipeWindow,
		P50Ms:     float64(point.P50.Microseconds()) / 1000,
		P95Ms:     float64(point.P95.Microseconds()) / 1000,
		P99Ms:     float64(point.P99.Microseconds()) / 1000,
		Errors:    point.Errors,
	}
	if puts > 0 {
		s.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / puts
		s.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / puts
	}
	return s, nil
}

// trajRejoinRows sizes the catchup-rejoin trajectory scenario: large enough
// that the rejoin is dominated by table shipping rather than round-trip
// overhead, small enough that the preload stays a few seconds per trial.
const trajRejoinRows = 20_000

// runTrajectoryRejoin measures the truncated-log rejoin path for the
// trajectory report: a disk-loss crash, survivors truncate the shared log,
// and the victim rebuilds every range through SSTable-shipping catch-up.
// OpsPerSec is preloaded rows recovered per second of rejoin time (restart
// to caught-up); AllocsPerOp is process-wide mallocs across the whole
// scenario — preload, truncation filler, and rejoin — per preloaded row, a
// scenario-wide allocation budget in the same spirit as the cluster
// scenarios. Rejoin time is scheduler-noisy, so the median of `trials`
// runs is reported.
func runTrajectoryRejoin(trials int) (Scenario, error) {
	points := make([]Scenario, 0, trials)
	for i := 0; i < trials; i++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := sim.RunTruncatedRejoin(sim.RejoinOptions{
			Seed:        int64(9000 + i),
			PreloadRows: trajRejoinRows,
			DiskLoss:    true,
			Measure:     true,
		})
		if err != nil {
			return Scenario{}, err
		}
		runtime.ReadMemStats(&after)
		rows := float64(res.PreloadRows)
		points = append(points, Scenario{
			Kind:        "cluster",
			OpsPerSec:   rows / res.RejoinTime.Seconds(),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / rows,
			BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / rows,
		})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].OpsPerSec < points[j].OpsPerSec })
	return points[len(points)/2], nil
}

// runMicro converts a testing.Benchmark result into a Scenario. The
// benchmark runs three times and the fastest run is reported: a micro's
// true value is the code path's cost, and on a shared 1-core host the
// slower runs measure the neighbors, not the code (allocation counts are
// deterministic and identical across runs).
func runMicro(name string, fn func(b *testing.B)) Scenario {
	var best testing.BenchmarkResult
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(fn)
		if i == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	s := Scenario{Name: name, Kind: "micro", AllocsPerOp: float64(best.AllocsPerOp()), BytesPerOp: float64(best.AllocedBytesPerOp())}
	if ns := best.NsPerOp(); ns > 0 {
		s.OpsPerSec = 1e9 / float64(ns)
	}
	return s
}

// Trajectory runs the perf-trajectory suite: the pipelined write path at 1,
// 16, and 64 writers, the per-write ablation at 1 and 64 writers (the
// batched/per-write comparison, undiluted at 1 writer and CPU-bound at 64),
// the truncated-log rejoin recovery path (catchup-rejoin), and allocation
// microbenchmarks for the hot-path codecs and the WAL append path.
func Trajectory(cfg Config, smoke bool) (Report, error) {
	cfg.fillDefaults()
	report := Report{
		Schema:    ReportSchema,
		Smoke:     smoke,
		GoVersion: runtime.Version(),
		OSArch:    runtime.GOOS + "/" + runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	// Five trials per cluster scenario: medians of three left the guard's
	// 10% threshold flapping on 1-core hosts (each full-suite run saw a
	// different random scenario dip ~15%).
	trials := 5
	if smoke {
		trials = 1
	}

	cluster := []struct {
		name    string
		disable bool
		writers int
	}{
		{"pipelined-writers-1", false, 1},
		{"ablation-batching-1", true, 1},
		{"pipelined-writers-16", false, 16},
		{"pipelined-writers-64", false, 64},
		{"ablation-batching-64", true, 64},
	}
	for _, c := range cluster {
		s, err := runTrajectoryCluster(cfg, c.disable, c.writers, trials)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", c.name, err)
		}
		s.Name = c.name
		report.Scenarios = append(report.Scenarios, s)
		cfg.progress("trajectory: %s done (%.0f ops/s, %.1f allocs/op)", c.name, s.OpsPerSec, s.AllocsPerOp)
	}

	rejoinTrials := 5
	if smoke {
		rejoinTrials = 1
	}
	s, err := runTrajectoryRejoin(rejoinTrials)
	if err != nil {
		return Report{}, fmt.Errorf("catchup-rejoin: %w", err)
	}
	s.Name = "catchup-rejoin"
	report.Scenarios = append(report.Scenarios, s)
	cfg.progress("trajectory: catchup-rejoin done (%.0f rows/s recovered, %.1f allocs/row)", s.OpsPerSec, s.AllocsPerOp)

	micro := core.CodecBenchmarks()
	names := make([]string, 0, len(micro))
	for name := range micro {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		report.Scenarios = append(report.Scenarios, runMicro(name, micro[name]))
		cfg.progress("trajectory: %s done", name)
	}
	report.Scenarios = append(report.Scenarios, runMicro("wal-append-batch-64", func(b *testing.B) {
		l, err := wal.Open(wal.Config{Store: wal.NewMemSegmentStore(wal.DeviceInstant), GroupCommit: true})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		payload := sim.ValueOfSize(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recs := make([]wal.Record, 64)
			for r := range recs {
				recs[r] = wal.Record{Cohort: 1, Type: wal.RecWrite, LSN: wal.MakeLSN(1, uint64(i*64+r+1)), Payload: payload}
			}
			if _, err := l.AppendBatch(recs); err != nil {
				b.Fatal(err)
			}
		}
	}))
	cfg.progress("trajectory: wal-append-batch-64 done")
	return report, validateReport(report)
}

// validateReport checks the schema invariants Guard and CI rely on.
func validateReport(r Report) error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("bench: unknown report schema %q", r.Schema)
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("bench: report has no scenarios")
	}
	seen := make(map[string]bool)
	for _, s := range r.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("bench: scenario with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("bench: duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if s.Kind != "cluster" && s.Kind != "micro" {
			return fmt.Errorf("bench: scenario %q has unknown kind %q", s.Name, s.Kind)
		}
		if s.OpsPerSec <= 0 {
			return fmt.Errorf("bench: scenario %q measured no throughput", s.Name)
		}
		if s.AllocsPerOp < 0 {
			return fmt.Errorf("bench: scenario %q has negative allocs/op", s.Name)
		}
	}
	return nil
}

// WriteReport validates and writes a report as indented JSON.
func WriteReport(path string, r Report) error {
	if err := validateReport(r); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport parses and validates a report file.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if err := validateReport(r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Guard thresholds: a committed trajectory report may not lose more than 10%
// throughput or gain more than 25% allocs/op on any scenario shared with its
// predecessor.
const (
	guardMaxThroughputDrop = 0.10
	guardMaxAllocsRise     = 0.25
)

var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// ListReports returns the BENCH_*.json files in dir, oldest first.
func ListReports(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, e := range entries {
		m := benchFileRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var n int
		fmt.Sscanf(m[1], "%d", &n)
		files = append(files, numbered{n, filepath.Join(dir, e.Name())})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}

// Guard validates every committed BENCH_*.json in dir and compares the newest
// against its predecessor, failing on a >10% throughput drop or a >25%
// allocs/op rise in any shared scenario. With fewer than two reports the
// newest is the baseline and only schema validation runs.
func Guard(dir string, w io.Writer) error {
	files, err := ListReports(dir)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no BENCH_*.json reports in %s", dir)
	}
	reports := make([]Report, len(files))
	for i, f := range files {
		r, err := ReadReport(f)
		if err != nil {
			return err
		}
		if r.Smoke {
			return fmt.Errorf("%s: committed report is a smoke run; regenerate with a real measurement window", f)
		}
		reports[i] = r
	}
	if len(files) < 2 {
		fmt.Fprintf(w, "regression guard: %s validates; no previous report, baseline established\n", files[0])
		return nil
	}
	prev, cur := reports[len(reports)-2], reports[len(reports)-1]
	if prev.CPUs != cur.CPUs {
		fmt.Fprintf(w, "regression guard: hardware changed between %s (%d cpus) and %s (%d cpus); throughput is not comparable, %s is the new baseline\n",
			files[len(files)-2], prev.CPUs, files[len(files)-1], cur.CPUs, files[len(files)-1])
		return nil
	}
	prevByName := make(map[string]Scenario, len(prev.Scenarios))
	for _, s := range prev.Scenarios {
		prevByName[s.Name] = s
	}
	var failures []string
	compared := 0
	for _, s := range cur.Scenarios {
		p, ok := prevByName[s.Name]
		if !ok {
			fmt.Fprintf(w, "regression guard: %s is new in %s (no comparison)\n", s.Name, files[len(files)-1])
			continue
		}
		compared++
		if p.OpsPerSec > 0 && s.OpsPerSec < p.OpsPerSec*(1-guardMaxThroughputDrop) {
			failures = append(failures, fmt.Sprintf(
				"%s: throughput dropped %.1f%% (%.0f → %.0f ops/s, limit %.0f%%)",
				s.Name, 100*(1-s.OpsPerSec/p.OpsPerSec), p.OpsPerSec, s.OpsPerSec, 100*guardMaxThroughputDrop))
		}
		if p.AllocsPerOp > 0 && s.AllocsPerOp > p.AllocsPerOp*(1+guardMaxAllocsRise) {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op rose %.1f%% (%.1f → %.1f, limit %.0f%%)",
				s.Name, 100*(s.AllocsPerOp/p.AllocsPerOp-1), p.AllocsPerOp, s.AllocsPerOp, 100*guardMaxAllocsRise))
		}
		fmt.Fprintf(w, "regression guard: %-34s %.0f → %.0f ops/s, %.1f → %.1f allocs/op\n",
			s.Name, p.OpsPerSec, s.OpsPerSec, p.AllocsPerOp, s.AllocsPerOp)
	}
	if len(failures) > 0 {
		msg := fmt.Sprintf("%s regressed vs %s:", files[len(files)-1], files[len(files)-2])
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	fmt.Fprintf(w, "regression guard: OK (%d scenarios compared, %s vs %s)\n",
		compared, files[len(files)-1], files[len(files)-2])
	return nil
}
