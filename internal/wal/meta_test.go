package wal

import (
	"testing"
)

func testMetaStore(t *testing.T, ms MetaStore) {
	t.Helper()
	if err := ms.Put("a/1", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := ms.Put("a/2", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := ms.Put("b/1", []byte("three")); err != nil {
		t.Fatal(err)
	}

	v, ok, err := ms.Get("a/1")
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Get(a/1) = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := ms.Get("missing"); ok {
		t.Error("Get(missing) reported ok")
	}

	// Overwrite.
	if err := ms.Put("a/1", []byte("uno")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = ms.Get("a/1")
	if string(v) != "uno" {
		t.Errorf("after overwrite Get = %q", v)
	}

	keys, err := ms.Keys("a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Errorf("Keys(a/) = %v", keys)
	}

	if err := ms.Delete("a/1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ms.Get("a/1"); ok {
		t.Error("deleted key still present")
	}
	// Deleting a missing key is not an error.
	if err := ms.Delete("a/1"); err != nil {
		t.Errorf("double delete: %v", err)
	}
}

func TestMemMetaStore(t *testing.T) {
	testMetaStore(t, NewMemMetaStore())
}

func TestFileMetaStore(t *testing.T) {
	ms, err := NewFileMetaStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testMetaStore(t, ms)
}

func TestMemMetaStoreIsolation(t *testing.T) {
	ms := NewMemMetaStore()
	val := []byte("mutable")
	if err := ms.Put("k", val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X' // caller mutates its buffer after Put
	got, _, _ := ms.Get("k")
	if string(got) != "mutable" {
		t.Errorf("store aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // caller mutates the returned buffer
	got2, _, _ := ms.Get("k")
	if string(got2) != "mutable" {
		t.Errorf("store aliased returned buffer: %q", got2)
	}
}

func TestMemMetaStoreFail(t *testing.T) {
	ms := NewMemMetaStore()
	if err := ms.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	ms.Fail()
	if _, ok, _ := ms.Get("k"); ok {
		t.Error("data survived Fail")
	}
}

func TestFileMetaStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ms, err := NewFileMetaStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Put("skiplsn/3", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	ms2, err := NewFileMetaStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := ms2.Get("skiplsn/3")
	if err != nil || !ok || string(v) != "payload" {
		t.Fatalf("reopened Get = %q,%v,%v", v, ok, err)
	}
	keys, _ := ms2.Keys("skiplsn/")
	if len(keys) != 1 || keys[0] != "skiplsn/3" {
		t.Errorf("Keys = %v", keys)
	}
}
