// Package admin serves the cluster's observability plane over HTTP:
// /metrics (a flat text exposition of every counter and quantile) and
// /status (a JSON cluster view: layout version, ranges, leaders, commit
// lag). It is deliberately decoupled from how the cluster is hosted —
// the in-process simulation harness and the spinnaker-server binary both
// feed it through a Source of closures.
package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/core"
)

// Source provides the handler's view of the cluster.
type Source struct {
	// Nodes lists the node IDs currently running.
	Nodes func() []string
	// NodeMetrics snapshots one node's instrumentation.
	NodeMetrics func(id string) (core.NodeMetrics, bool)
	// Layout returns the newest published layout (may be nil early on).
	Layout func() *cluster.Layout
	// LeaderOf names the current leader of a range ("" if none).
	LeaderOf func(rangeID uint32) string
}

// NewHandler returns an http.Handler serving /metrics and /status.
func NewHandler(s Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeMetrics(w, s)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildStatus(s))
	})
	return mux
}

// Status is the /status document.
type Status struct {
	LayoutVersion uint64        `json:"layout_version"`
	Replication   int           `json:"replication"`
	Nodes         []NodeStatus  `json:"nodes"`
	Ranges        []RangeStatus `json:"ranges"`
}

// NodeStatus is one node's row in /status.
type NodeStatus struct {
	ID              string `json:"id"`
	LayoutVersion   uint64 `json:"layout_version"`
	LayoutAdoptions int64  `json:"layout_adoptions"`
	WALAppends      int64  `json:"wal_appends"`
	WALForces       int64  `json:"wal_forces"`
	Ranges          int    `json:"ranges"`
}

// RangeStatus is one range's row in /status: layout facts plus the
// leader replica's live metrics (zero-valued if no leader is reachable).
type RangeStatus struct {
	ID     uint32   `json:"id"`
	Low    string   `json:"low"`
	High   string   `json:"high"`
	Cohort []string `json:"cohort"`
	Home   string   `json:"home"`
	Leader string   `json:"leader"`

	Writes        int64   `json:"writes"`
	StrongReads   int64   `json:"strong_reads"`
	TimelineReads int64   `json:"timeline_reads"`
	WriteP99Ms    float64 `json:"write_p99_ms"`
	CommitLagSeqs uint64  `json:"commit_lag_seqs"`
	CommitLagMs   float64 `json:"commit_lag_ms"`
	Pending       int     `json:"pending"`
	Tables        int     `json:"tables"`
	Flushes       int64   `json:"flushes"`
	Compacts      int64   `json:"compacts"`
}

func buildStatus(s Source) Status {
	st := Status{}
	l := s.Layout()
	if l != nil {
		st.LayoutVersion = l.Version()
		st.Replication = l.Replication()
	}
	perRange := map[uint32]core.RangeMetrics{}
	nodes := s.Nodes()
	sort.Strings(nodes)
	for _, id := range nodes {
		nm, ok := s.NodeMetrics(id)
		if !ok {
			continue
		}
		st.Nodes = append(st.Nodes, NodeStatus{
			ID:              nm.ID,
			LayoutVersion:   nm.LayoutVersion,
			LayoutAdoptions: nm.LayoutAdoptions,
			WALAppends:      nm.WALAppends,
			WALForces:       nm.WALForces,
			Ranges:          len(nm.Ranges),
		})
		for _, rm := range nm.Ranges {
			// Prefer the leader replica's numbers; otherwise keep any
			// replica's as a fallback view of the range.
			if prev, ok := perRange[rm.Range]; !ok || (rm.Role == "leader" && prev.Role != "leader") {
				perRange[rm.Range] = rm
			}
		}
	}
	if l == nil {
		return st
	}
	for _, id := range l.RangeIDs() {
		low, high := l.Bounds(id)
		rs := RangeStatus{
			ID:     id,
			Low:    low,
			High:   high,
			Cohort: l.Cohort(id),
			Home:   l.HomeNode(id),
			Leader: s.LeaderOf(id),
		}
		if rm, ok := perRange[id]; ok {
			rs.Writes = rm.Writes
			rs.StrongReads = rm.StrongReads
			rs.TimelineReads = rm.TimelineReads
			rs.WriteP99Ms = float64(rm.WriteP99) / float64(time.Millisecond)
			rs.CommitLagSeqs = rm.CommitLagSeqs
			rs.CommitLagMs = float64(rm.CommitLagTime) / float64(time.Millisecond)
			rs.Pending = rm.Pending
			rs.Tables = rm.Tables
			rs.Flushes = rm.Flushes
			rs.Compacts = rm.Compacts
		}
		st.Ranges = append(st.Ranges, rs)
	}
	return st
}

// writeMetrics emits the flat text exposition: one `name{labels} value`
// line per series, suitable for scraping or grepping.
func writeMetrics(w http.ResponseWriter, s Source) {
	if l := s.Layout(); l != nil {
		fmt.Fprintf(w, "spinnaker_layout_version %d\n", l.Version())
		fmt.Fprintf(w, "spinnaker_layout_ranges %d\n", l.NumRanges())
	}
	nodes := s.Nodes()
	sort.Strings(nodes)
	for _, id := range nodes {
		nm, ok := s.NodeMetrics(id)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "spinnaker_node_layout_version{node=%q} %d\n", nm.ID, nm.LayoutVersion)
		fmt.Fprintf(w, "spinnaker_node_layout_adoptions_total{node=%q} %d\n", nm.ID, nm.LayoutAdoptions)
		fmt.Fprintf(w, "spinnaker_node_wal_appends_total{node=%q} %d\n", nm.ID, nm.WALAppends)
		fmt.Fprintf(w, "spinnaker_node_wal_forces_total{node=%q} %d\n", nm.ID, nm.WALForces)
		for _, rm := range nm.Ranges {
			lbl := fmt.Sprintf("{node=%q,range=\"%d\",role=%q}", nm.ID, rm.Range, rm.Role)
			qlbl := func(q string) string {
				return fmt.Sprintf("{node=%q,range=\"%d\",role=%q,q=%q}", nm.ID, rm.Range, rm.Role, q)
			}
			fmt.Fprintf(w, "spinnaker_range_writes_total%s %d\n", lbl, rm.Writes)
			fmt.Fprintf(w, "spinnaker_range_strong_reads_total%s %d\n", lbl, rm.StrongReads)
			fmt.Fprintf(w, "spinnaker_range_timeline_reads_total%s %d\n", lbl, rm.TimelineReads)
			fmt.Fprintf(w, "spinnaker_range_write_latency_seconds%s %g\n", qlbl("0.5"), rm.WriteP50.Seconds())
			fmt.Fprintf(w, "spinnaker_range_write_latency_seconds%s %g\n", qlbl("0.95"), rm.WriteP95.Seconds())
			fmt.Fprintf(w, "spinnaker_range_write_latency_seconds%s %g\n", qlbl("0.99"), rm.WriteP99.Seconds())
			fmt.Fprintf(w, "spinnaker_range_read_latency_seconds%s %g\n", qlbl("0.95"), rm.ReadP95.Seconds())
			fmt.Fprintf(w, "spinnaker_range_commit_lag_seqs%s %d\n", lbl, rm.CommitLagSeqs)
			fmt.Fprintf(w, "spinnaker_range_commit_lag_seconds%s %g\n", lbl, rm.CommitLagTime.Seconds())
			fmt.Fprintf(w, "spinnaker_range_pending_writes%s %d\n", lbl, rm.Pending)
			fmt.Fprintf(w, "spinnaker_range_elections_total%s %d\n", lbl, rm.Elections)
			fmt.Fprintf(w, "spinnaker_range_entry_catchups_total%s %d\n", lbl, rm.EntryCatchups)
			fmt.Fprintf(w, "spinnaker_range_snapshot_catchups_total%s %d\n", lbl, rm.SnapshotCatchups)
			fmt.Fprintf(w, "spinnaker_range_snapshots_served_total%s %d\n", lbl, rm.SnapshotsServed)
			fmt.Fprintf(w, "spinnaker_range_storage_flushes_total%s %d\n", lbl, rm.Flushes)
			fmt.Fprintf(w, "spinnaker_range_storage_compactions_total%s %d\n", lbl, rm.Compacts)
			fmt.Fprintf(w, "spinnaker_range_storage_tables%s %d\n", lbl, rm.Tables)
			fmt.Fprintf(w, "spinnaker_range_storage_read_probes_total%s %d\n", lbl, rm.ReadProbes)
			fmt.Fprintf(w, "spinnaker_range_storage_read_pruned_total%s %d\n", lbl, rm.ReadPruned)
		}
	}
}
