package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detcheck is the determinism lint (PR 2's contract): the simulation,
// transport-fault, and linearizability-checker planes must be seed-pure
// so a failing FaultSeed replays. Inside the scoped packages it forbids:
//
//   - time.Now / time.Since / time.Sleep — wall clock must flow through
//     internal/simtime, the single chokepoint a virtual clock can
//     replace (and whose Sleep is already tick-accurate).
//   - the global math/rand (and math/rand/v2) functions — every draw
//     must come from an explicitly seeded *rand.Rand so the schedule is
//     a pure function of the seed. rand.New(rand.NewSource(seed)) is
//     fine; seeding from the wall clock is already caught by the
//     time.Now ban.
//   - ranging over a map when the body feeds scheduling or network
//     decisions (channel sends, transport sends, partition/heal calls,
//     sleeps, or RNG draws): map iteration order would leak
//     nondeterminism into the schedule. Iterate a sorted slice.
func detcheck(m *Module, cfg Config) []Finding {
	var out []Finding
	for _, pkg := range m.Pkgs() {
		if !inScope(pkg.Path, cfg.DetScope) || inScope(pkg.Path, cfg.DetExempt) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if f := detForbiddenCall(pkg.Info, call); f != "" {
						out = append(out, finding(m, "detcheck", call,
							"%s in a seed-pure package: %s", f, detAdvice(f)))
					}
				}
				return true
			})
		}
	}
	out = append(out, detMapRanges(m, cfg)...)
	return out
}

func inScope(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// detForbiddenCall reports "time.Now"-style names for banned calls.
func detForbiddenCall(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Sleep":
			if recvNamed(f) != nil {
				return "" // methods like (*Timer) are out of scope
			}
			return "time." + f.Name()
		}
	case "math/rand", "math/rand/v2":
		if recvNamed(f) != nil {
			return "" // *rand.Rand methods are the sanctioned form
		}
		switch f.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "" // constructors take an explicit seed/source
		}
		return f.Pkg().Path() + "." + f.Name()
	}
	return ""
}

func detAdvice(name string) string {
	if strings.HasPrefix(name, "time.") {
		return "route wall-clock access through internal/simtime so replays stay deterministic"
	}
	return "draw from an explicitly seeded *rand.Rand instead of the shared global source"
}

// detMapRanges flags `range someMap` loops whose bodies feed
// scheduling/network decisions.
func detMapRanges(m *Module, cfg Config) []Finding {
	var out []Finding
	for _, pkg := range m.Pkgs() {
		if !inScope(pkg.Path, cfg.DetScope) || inScope(pkg.Path, cfg.DetExempt) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if sink := scheduleSink(pkg.Info, rs.Body); sink != "" {
					out = append(out, finding(m, "detcheck", rs,
						"map iteration order is nondeterministic and this body feeds a scheduling/network decision (%s); iterate a sorted slice of keys instead", sink))
				}
				return true
			})
		}
	}
	return out
}

// scheduleSinkNames are method/function names whose invocation inside a
// map-range body makes iteration order observable in the schedule:
// transport sends and fault-plane mutations, sleeps, and RNG draws.
var scheduleSinkNames = map[string]bool{
	"Send": true, "SendTo": true, "Deliver": true, "Sleep": true,
	"Partition": true, "PartitionOneWay": true, "PartitionNodes": true,
	"Isolate": true, "Heal": true, "HealAll": true, "Crash": true,
	"Restart": true,
}

// scheduleSink reports what makes a map-range body order-sensitive, or
// "" if nothing does.
func scheduleSink(info *types.Info, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "channel send"
			return false
		case *ast.CallExpr:
			f := calleeFunc(info, n)
			if f == nil {
				return true
			}
			if named := recvNamed(f); named != nil {
				if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "math/rand" {
					sink = "RNG draw (order-dependent seed consumption)"
					return false
				}
			}
			if scheduleSinkNames[f.Name()] {
				sink = "call to " + f.Name()
				return false
			}
		}
		return true
	})
	return sink
}
