package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

func TestAckPayloadRoundTrip(t *testing.T) {
	lsn, floor := wal.MakeLSN(3, 77), wal.MakeLSN(3, 41)
	gotLSN, gotFloor, err := decodeAck(encodeAck(lsn, floor))
	if err != nil || gotLSN != lsn || gotFloor != floor {
		t.Fatalf("decodeAck = %s,%s,%v want %s,%s", gotLSN, gotFloor, err, lsn, floor)
	}
	// A legacy 8-byte payload (LSN only) decodes with a zero floor —
	// conservative: an unknown floor never advances the GC watermark.
	gotLSN, gotFloor, err = decodeAck(encodeLSN(lsn))
	if err != nil || gotLSN != lsn || !gotFloor.IsZero() {
		t.Fatalf("legacy decodeAck = %s,%s,%v", gotLSN, gotFloor, err)
	}
	if _, _, err := decodeAck([]byte{1, 2, 3}); err == nil {
		t.Error("truncated ack accepted")
	}
}

func TestCommitMsgPayloadRoundTrip(t *testing.T) {
	cmt, gc := wal.MakeLSN(2, 900), wal.MakeLSN(2, 850)
	gotCmt, gotGC, err := decodeCommitMsg(encodeCommitMsg(cmt, gc))
	if err != nil || gotCmt != cmt || gotGC != gc {
		t.Fatalf("decodeCommitMsg = %s,%s,%v want %s,%s", gotCmt, gotGC, err, cmt, gc)
	}
	gotCmt, gotGC, err = decodeCommitMsg(encodeLSN(cmt))
	if err != nil || gotCmt != cmt || !gotGC.IsZero() {
		t.Fatalf("legacy decodeCommitMsg = %s,%s,%v", gotCmt, gotGC, err)
	}
	if _, _, err := decodeCommitMsg(nil); err == nil {
		t.Error("empty commit payload accepted")
	}
}

func TestWriteOpRoundTrip(t *testing.T) {
	op := WriteOp{
		Row: "user:42",
		Cols: []ColWrite{
			{Col: "email", Value: []byte("x@example.com"), Version: 7},
			{Col: "old", Delete: true, Cond: true, CondVersion: 3, Version: 8},
		},
	}
	got, n, err := DecodeWriteOp(EncodeWriteOp(nil, op))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || got.Row != op.Row || len(got.Cols) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	c0, c1 := got.Cols[0], got.Cols[1]
	if c0.Col != "email" || !bytes.Equal(c0.Value, op.Cols[0].Value) || c0.Version != 7 || c0.Cond || c0.Delete {
		t.Errorf("col 0 = %+v", c0)
	}
	if c1.Col != "old" || !c1.Delete || !c1.Cond || c1.CondVersion != 3 || c1.Version != 8 {
		t.Errorf("col 1 = %+v", c1)
	}
}

func TestWriteOpTruncation(t *testing.T) {
	op := WriteOp{Row: "r", Cols: []ColWrite{{Col: "c", Value: []byte("v")}}}
	buf := EncodeWriteOp(nil, op)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeWriteOp(buf[:cut]); err == nil {
			t.Fatalf("cut %d decoded", cut)
		}
	}
}

func TestWriteOpProperty(t *testing.T) {
	f := func(row, col string, value []byte, del, cond bool, cv, v uint64) bool {
		if len(row) > 1<<15 || len(col) > 1<<15 {
			return true
		}
		op := WriteOp{Row: row, Cols: []ColWrite{{
			Col: col, Value: value, Delete: del, Cond: cond, CondVersion: cv, Version: v,
		}}}
		got, _, err := DecodeWriteOp(EncodeWriteOp(nil, op))
		if err != nil || got.Row != row || len(got.Cols) != 1 {
			return false
		}
		c := got.Cols[0]
		return c.Col == col && bytes.Equal(c.Value, value) && c.Delete == del &&
			c.Cond == cond && c.CondVersion == cv && c.Version == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteOpEntries(t *testing.T) {
	op := WriteOp{Row: "r", Cols: []ColWrite{
		{Col: "a", Value: []byte("1"), Version: 9},
		{Col: "b", Delete: true, Version: 9},
	}}
	lsn := wal.MakeLSN(2, 5)
	entries := op.Entries(lsn)
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Key != (kv.Key{Row: "r", Col: "a"}) || entries[0].Cell.LSN != lsn {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if !entries[1].Cell.Deleted {
		t.Error("tombstone lost")
	}
}

func TestProposeRoundTrip(t *testing.T) {
	p := proposePayload{
		LSN:              wal.MakeLSN(3, 14),
		CommittedThrough: wal.MakeLSN(3, 10),
		Op:               WriteOp{Row: "r", Cols: []ColWrite{{Col: "c", Value: []byte("v")}}},
	}
	got, err := decodePropose(encodePropose(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != p.LSN || got.CommittedThrough != p.CommittedThrough || got.Op.Row != "r" {
		t.Errorf("decoded %+v", got)
	}
	if _, err := decodePropose([]byte{1, 2, 3}); err == nil {
		t.Error("short propose decoded")
	}
}

func TestCatchupCodecs(t *testing.T) {
	req := catchupReq{
		Cmt:       wal.MakeLSN(1, 10),
		Ambiguous: []wal.LSN{wal.MakeLSN(1, 11), wal.MakeLSN(1, 22)},
	}
	gotReq, err := decodeCatchupReq(encodeCatchupReq(req))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq.Cmt != req.Cmt || len(gotReq.Ambiguous) != 2 || gotReq.Ambiguous[1] != wal.MakeLSN(1, 22) {
		t.Fatalf("req = %+v", gotReq)
	}

	resp := catchupResp{
		Status:  StatusOK,
		Cmt:     wal.MakeLSN(2, 30),
		Present: []wal.LSN{wal.MakeLSN(1, 11)},
		Entries: []kv.Entry{
			{Key: kv.Key{Row: "r", Col: "c"},
				Cell: kv.Cell{Value: []byte("v"), Version: 5, LSN: wal.MakeLSN(1, 11)}},
		},
	}
	gotResp, err := decodeCatchupResp(encodeCatchupResp(resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotResp.Cmt != resp.Cmt || len(gotResp.Present) != 1 || len(gotResp.Entries) != 1 {
		t.Fatalf("resp = %+v", gotResp)
	}
	if string(gotResp.Entries[0].Cell.Value) != "v" {
		t.Errorf("entry value = %q", gotResp.Entries[0].Cell.Value)
	}
}

func TestResultCodecs(t *testing.T) {
	wr := writeResult{Status: StatusVersionMismatch, Detail: "column c at 5", Versions: []uint64{1, 2}}
	gotWR, err := decodeWriteResult(encodeWriteResult(wr))
	if err != nil {
		t.Fatal(err)
	}
	if gotWR.Status != wr.Status || gotWR.Detail != wr.Detail || len(gotWR.Versions) != 2 {
		t.Fatalf("writeResult = %+v", gotWR)
	}

	gr := getResp{Status: StatusOK, Value: []byte("value"), Version: 42}
	gotGR, err := decodeGetResp(encodeGetResp(gr))
	if err != nil {
		t.Fatal(err)
	}
	if gotGR.Version != 42 || string(gotGR.Value) != "value" {
		t.Fatalf("getResp = %+v", gotGR)
	}

	req := getReq{Row: "row", Col: "col", Consistent: true}
	gotReq, err := decodeGetReq(encodeGetReq(req))
	if err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Fatalf("getReq = %+v", gotReq)
	}

	rr := rowResp{Status: StatusOK, Entries: []kv.Entry{
		{Key: kv.Key{Row: "r", Col: "a"}, Cell: kv.Cell{Value: []byte("1")}},
		{Key: kv.Key{Row: "r", Col: "b"}, Cell: kv.Cell{Value: []byte("2")}},
	}}
	gotRR, err := decodeRowResp(encodeRowResp(rr))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRR.Entries) != 2 || gotRR.Entries[1].Key.Col != "b" {
		t.Fatalf("rowResp = %+v", gotRR)
	}
}

func TestStatusError(t *testing.T) {
	if StatusError(StatusOK, "") != nil {
		t.Error("OK produced an error")
	}
	if !errors.Is(StatusError(StatusNotFound, ""), ErrNotFound) {
		t.Error("NotFound mapping")
	}
	if !errors.Is(StatusError(StatusNotLeader, "n2"), ErrNotLeader) {
		t.Error("NotLeader mapping")
	}
	if !errors.Is(StatusError(StatusVersionMismatch, ""), ErrVersionMismatch) {
		t.Error("VersionMismatch mapping")
	}
	if !errors.Is(StatusError(StatusUnavailable, "x"), ErrUnavailable) {
		t.Error("Unavailable mapping")
	}
	if StatusError(StatusBadRequest, "bad") == nil {
		t.Error("BadRequest produced nil")
	}
}

func TestRoleString(t *testing.T) {
	for role, want := range map[Role]string{
		RoleRecovering: "recovering", RoleFollower: "follower",
		RoleCandidate: "candidate", RoleLeader: "leader", Role(9): "Role(9)",
	} {
		if got := role.String(); got != want {
			t.Errorf("%d.String() = %q want %q", role, got, want)
		}
	}
}

func TestProposeBatchRoundTrip(t *testing.T) {
	p := proposeBatchPayload{
		CommittedThrough: wal.MakeLSN(1, 40),
		Recs: []proposeRec{
			{LSN: wal.MakeLSN(1, 41), Op: WriteOp{Row: "a", Cols: []ColWrite{{Col: "c", Value: []byte("x"), Version: 41}}}},
			{LSN: wal.MakeLSN(1, 42), Op: WriteOp{Row: "b", Cols: []ColWrite{{Col: "d", Delete: true, Version: 42}}}},
		},
	}
	got, err := decodeProposeBatch(encodeProposeBatch(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.CommittedThrough != p.CommittedThrough || len(got.Recs) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Recs[0].LSN != p.Recs[0].LSN || got.Recs[0].Op.Row != "a" ||
		!bytes.Equal(got.Recs[0].Op.Cols[0].Value, []byte("x")) {
		t.Errorf("rec 0 = %+v", got.Recs[0])
	}
	if got.Recs[1].LSN != p.Recs[1].LSN || !got.Recs[1].Op.Cols[0].Delete {
		t.Errorf("rec 1 = %+v", got.Recs[1])
	}
}

func TestProposeBatchEmpty(t *testing.T) {
	got, err := decodeProposeBatch(encodeProposeBatch(proposeBatchPayload{}))
	if err != nil || len(got.Recs) != 0 {
		t.Fatalf("empty batch: %+v, %v", got, err)
	}
}

func TestProposeBatchTruncation(t *testing.T) {
	buf := encodeProposeBatch(proposeBatchPayload{
		Recs: []proposeRec{{LSN: wal.MakeLSN(1, 1), Op: WriteOp{Row: "r", Cols: []ColWrite{{Col: "c"}}}}},
	})
	for cut := 0; cut < len(buf); cut++ {
		if _, err := decodeProposeBatch(buf[:cut]); err == nil {
			t.Fatalf("cut %d decoded", cut)
		}
	}
}

// --- Codec microbenchmarks ---------------------------------------------------
//
// Every codec pair on the replication hot path gets a -benchmem round-trip
// benchmark so per-message allocation cost is pinned: regressions show up as
// allocs/op diffs in the BENCH_*.json trajectory (see EXPERIMENTS.md).

// benchOp builds a representative 256-byte single-column write.
func benchOp(lsn wal.LSN) WriteOp {
	return WriteOp{Row: "user:0042134077", Cols: []ColWrite{{
		Col: "c", Value: bytes.Repeat([]byte("v"), 256), Version: uint64(lsn),
	}}}
}

func benchBatch(n int) proposeBatchPayload {
	p := proposeBatchPayload{CommittedThrough: wal.MakeLSN(3, 100)}
	for i := 0; i < n; i++ {
		lsn := wal.MakeLSN(3, uint64(101+i))
		p.Recs = append(p.Recs, proposeRec{LSN: lsn, Op: benchOp(lsn)})
	}
	return p
}

func BenchmarkProposeRoundTrip(b *testing.B) {
	p := proposePayload{LSN: wal.MakeLSN(3, 7), CommittedThrough: wal.MakeLSN(3, 5), Op: benchOp(wal.MakeLSN(3, 7))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodePropose(encodePropose(p)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkProposeBatch(b *testing.B, n int) {
	p := benchBatch(n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := decodeProposeBatch(encodeProposeBatch(p))
		if err != nil || len(got.Recs) != n {
			b.Fatalf("decoded %d recs, err %v", len(got.Recs), err)
		}
	}
}

func BenchmarkProposeBatchRoundTrip1(b *testing.B)  { benchmarkProposeBatch(b, 1) }
func BenchmarkProposeBatchRoundTrip8(b *testing.B)  { benchmarkProposeBatch(b, 8) }
func BenchmarkProposeBatchRoundTrip64(b *testing.B) { benchmarkProposeBatch(b, 64) }

func BenchmarkAckRoundTrip(b *testing.B) {
	lsn, floor := wal.MakeLSN(3, 77), wal.MakeLSN(3, 41)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := decodeAck(encodeAck(lsn, floor)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitMsgRoundTrip(b *testing.B) {
	cmt, gc := wal.MakeLSN(2, 900), wal.MakeLSN(2, 850)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := decodeCommitMsg(encodeCommitMsg(cmt, gc)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteResultRoundTrip(b *testing.B) {
	wr := writeResult{Status: StatusOK, Versions: []uint64{uint64(wal.MakeLSN(3, 9))}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeWriteResult(encodeWriteResult(wr)); err != nil {
			b.Fatal(err)
		}
	}
}
