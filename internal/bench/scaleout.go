package bench

import (
	"fmt"
	"runtime"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/sim"
	"spinnaker/internal/wal"
)

// ScaleOut measures the paper's title claim — *scalable* — end to end: one
// cluster is grown live from 3 to 5 to 7 nodes with AddNode + Rebalance
// (range splits, cohort moves via catch-up data shipping, leadership
// transfers), and write throughput is measured at each size with the same
// pipelined workload. ReadServiceTime-style per-op CPU is modeled by a
// per-message delivery cost, so spreading leadership over more nodes buys
// real capacity in the simulation, as more servers do on hardware (Fig. 11
// measures fixed clusters of different sizes; this experiment measures the
// same cluster *while it grows*, which is the part the seed implementation
// could not do).
func ScaleOut(cfg Config) (Table, error) {
	cfg.fillDefaults()
	value := sim.ValueOfSize(256)
	keySpace := cfg.Rows * 50
	const pipeWindow = 8

	runtime.GC()
	opts := spinOpts(cfg, wal.DeviceMem)
	opts.Nodes = 3
	opts.MessageCost = 5 * time.Microsecond
	opts.CommitPeriod = 100 * time.Millisecond
	sc, err := newSpin(opts)
	if err != nil {
		return Table{}, err
	}
	defer sc.Stop()

	threads := 16
	clients := make([]*core.Client, threads)
	for i := range clients {
		clients[i] = sc.NewClient()
	}
	op := func(t, i int) error {
		b := clients[t].NewBatch()
		for w := 0; w < pipeWindow; w++ {
			b.Put(sim.StridedKey((t*keySpace/threads+i*pipeWindow+w)%keySpace, keySpace, 8), "c", value)
		}
		_, err := b.Run()
		return err
	}
	measure := func() sim.LoadPoint {
		sim.RunClosedLoop(threads, cfg.PointDuration/2, op) // warm-up
		p := sim.RunClosedLoop(threads, cfg.PointDuration, op)
		p.Throughput *= pipeWindow
		return p
	}

	table := Table{
		ID:      "Scale-out",
		Title:   "write throughput while the cluster grows live 3→5→7 nodes (256B values, mem log, 16 pipelined writers)",
		Columns: []string{"nodes", "ranges", "leaders", "req/s", "avg ms"},
		Notes: "each row after the first follows a live AddNode+Rebalance of the same running cluster; leaders counts distinct leader nodes.\n" +
			"In-process simulation shares one host CPU across all nodes, so aggregate req/s is host-bound — the reproduction target is the\n" +
			"leaders column (load provably spreads onto the new nodes) and throughput holding flat through reconfiguration rather than collapsing.",
	}
	record := func() {
		l := sc.CurrentLayout()
		leaders := make(map[string]bool)
		for _, id := range l.RangeIDs() {
			if ldr := sc.LeaderOf(id); ldr != "" {
				leaders[ldr] = true
			}
		}
		p := measure()
		table.Rows = append(table.Rows, []string{
			fmt.Sprint(len(l.Nodes())), fmt.Sprint(l.NumRanges()), fmt.Sprint(len(leaders)),
			tput(p.Throughput), ms(p.AvgLatency),
		})
		cfg.progress("scale-out: %d nodes done", len(l.Nodes()))
	}

	record() // N=3 baseline
	for _, target := range []int{5, 7} {
		for len(sc.CurrentLayout().Nodes()) < target {
			if _, err := sc.AddNode(""); err != nil {
				return Table{}, err
			}
		}
		if err := sc.Rebalance(5 * time.Minute); err != nil {
			return Table{}, fmt.Errorf("bench: rebalance to %d nodes: %w", target, err)
		}
		record()
	}
	return table, nil
}
