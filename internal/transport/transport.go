// Package transport provides the reliable, in-order messaging layer that
// Spinnaker's replication protocol is built on. The paper (Appendix A.1)
// notes that Spinnaker "uses reliable in-order messages based on TCP
// sockets to simplify its replication protocol" — in contrast to basic
// Multi-Paxos, which assumes an unreliable message layer.
//
// Two implementations are provided: a simulated in-process network (used
// by the test suite and by the benchmark harness to reproduce the paper's
// cluster on one box) and a real TCP transport used by cmd/spinnaker-server.
// Both guarantee in-order delivery per sender → receiver link, like a TCP
// connection.
//
// Beneath that TCP-like base, the simulated network carries a seeded
// per-link fault plane for the nemesis harness: per-message drops,
// duplication, reordering, and jittered delay (LinkFaults), plus symmetric
// partitions, one-way partitions (PartitionOneWay), whole-node isolation,
// a per-message delivery cost that bounds per-link message rate
// (SetMessageCost), and crash injection via endpoint replacement. Fault
// decisions derive from per-link RNGs seeded from a single run seed, so a
// failing schedule replays exactly.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message is the unit of communication. ID correlates requests with
// replies; Kind is interpreted by the application layer.
type Message struct {
	From    string
	To      string
	Kind    uint8
	Cohort  uint32
	ID      uint64
	Reply   bool
	Payload []byte
}

// Handler processes inbound messages. Handlers for the same sender run
// sequentially in send order; handlers for different senders run
// concurrently — exactly the behaviour of one goroutine per TCP connection.
type Handler func(m Message)

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// ID returns the node identifier this endpoint is registered under.
	ID() string
	// Send delivers m to m.To asynchronously, reliably, and in order
	// with respect to other Sends to the same destination.
	Send(m Message) error
	// Call sends m and blocks for the matching reply.
	Call(m Message) (Message, error)
	// Reply responds to a received request.
	Reply(req Message, m Message) error
	// SetHandler installs the inbound message handler; it must be called
	// before messages arrive.
	SetHandler(h Handler)
	// Close detaches the endpoint; in-flight messages to it are dropped.
	Close() error
}

// Errors returned by transports.
var (
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrUnknownNode = errors.New("transport: unknown node")
	ErrTimeout     = errors.New("transport: call timed out")
)

// EncodeMessage serializes m with length framing for the TCP transport.
func EncodeMessage(m Message) []byte {
	size := 2 + len(m.From) + 2 + len(m.To) + 1 + 4 + 8 + 1 + 4 + len(m.Payload)
	buf := make([]byte, 4, 4+size)
	binary.LittleEndian.PutUint32(buf[:4], uint32(size))
	var scratch [8]byte
	putStr := func(s string) {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(s)))
		buf = append(buf, scratch[:2]...)
		buf = append(buf, s...)
	}
	putStr(m.From)
	putStr(m.To)
	buf = append(buf, m.Kind)
	binary.LittleEndian.PutUint32(scratch[:4], m.Cohort)
	buf = append(buf, scratch[:4]...)
	binary.LittleEndian.PutUint64(scratch[:8], m.ID)
	buf = append(buf, scratch[:8]...)
	if m.Reply {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(m.Payload)))
	buf = append(buf, scratch[:4]...)
	buf = append(buf, m.Payload...)
	return buf
}

// DecodeMessage parses a message body (after the 4-byte length frame).
func DecodeMessage(b []byte) (Message, error) {
	var m Message
	off := 0
	need := func(n int) error {
		if len(b)-off < n {
			return fmt.Errorf("transport: message truncated at %d", off)
		}
		return nil
	}
	str := func() (string, error) {
		if err := need(2); err != nil {
			return "", err
		}
		n := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if err := need(n); err != nil {
			return "", err
		}
		s := string(b[off : off+n])
		off += n
		return s, nil
	}
	var err error
	if m.From, err = str(); err != nil {
		return m, err
	}
	if m.To, err = str(); err != nil {
		return m, err
	}
	if err := need(1 + 4 + 8 + 1 + 4); err != nil {
		return m, err
	}
	m.Kind = b[off]
	off++
	m.Cohort = binary.LittleEndian.Uint32(b[off:])
	off += 4
	m.ID = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Reply = b[off] == 1
	off++
	n := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if err := need(n); err != nil {
		return m, err
	}
	if n > 0 {
		m.Payload = append([]byte(nil), b[off:off+n]...)
	}
	return m, nil
}
