package core

import (
	"fmt"
	"os"
	"testing"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/coord"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// testCluster is an in-process Spinnaker cluster for protocol tests: real
// nodes, real log/storage stores, simulated network and instant devices.
type testCluster struct {
	t       *testing.T
	net     *transport.Network
	coord   *coord.Service
	layout  *cluster.Layout
	stores  map[string]*Stores
	nodes   map[string]*Node
	cfgTmpl Config
}

// init (not newTestCluster) sets the global paranoia flag: per-test writes
// would race with replica goroutines still draining from the previous test.
func init() {
	ParanoidAckChecks = os.Getenv("SPINNAKER_PARANOIA") != ""
}

func newTestCluster(t *testing.T, nodeCount int, tweak func(*Config)) *testCluster {
	t.Helper()
	names := make([]string, nodeCount)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	layout, err := cluster.Uniform(names, 6, min(3, nodeCount))
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{
		t:      t,
		net:    transport.NewNetwork(0),
		coord:  coord.NewService(0),
		layout: layout,
		stores: make(map[string]*Stores),
		nodes:  make(map[string]*Node),
	}
	tc.cfgTmpl = Config{
		Layout:          layout,
		CommitPeriod:    5 * time.Millisecond,
		WriteTimeout:    2 * time.Second,
		ElectionTimeout: 50 * time.Millisecond,
		TakeoverTimeout: 2 * time.Second,
		RetryInterval:   5 * time.Millisecond,
		FlushInterval:   20 * time.Millisecond,
		// SPINNAKER_TEST_NO_BATCHING=1 runs the whole package under the
		// ProposalBatching=false ablation (per-write proposes and acks);
		// CI exercises both modes.
		DisableProposalBatching: os.Getenv("SPINNAKER_TEST_NO_BATCHING") != "",
	}
	if tweak != nil {
		tweak(&tc.cfgTmpl)
	}
	for _, name := range names {
		tc.stores[name] = NewMemStores(wal.DeviceInstant)
		tc.startNode(name)
	}
	t.Cleanup(tc.shutdown)
	return tc
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (tc *testCluster) startNode(name string) *Node {
	tc.t.Helper()
	cfg := tc.cfgTmpl
	cfg.ID = name
	n, err := NewNode(cfg, tc.stores[name], tc.net.Join(name), tc.coord)
	if err != nil {
		tc.t.Fatalf("NewNode(%s): %v", name, err)
	}
	if err := n.Start(); err != nil {
		tc.t.Fatalf("Start(%s): %v", name, err)
	}
	tc.nodes[name] = n
	return n
}

// crashNode simulates a process crash plus loss of the log's unforced tail.
func (tc *testCluster) crashNode(name string) {
	tc.t.Helper()
	tc.nodes[name].Crash()
	tc.stores[name].Crash()
	delete(tc.nodes, name)
}

// restartNode brings a crashed node back over its surviving stores.
func (tc *testCluster) restartNode(name string) *Node {
	tc.t.Helper()
	return tc.startNode(name)
}

func (tc *testCluster) shutdown() {
	for _, n := range tc.nodes {
		n.Stop()
	}
	tc.coord.Stop()
}

func (tc *testCluster) client() *Client {
	c := NewClient(tc.layout, tc.net.Join(fmt.Sprintf("client-%d", time.Now().UnixNano())), tc.coord, 1)
	tc.t.Cleanup(c.Close)
	return c
}

// waitAllLeaders blocks until every range has an open leader.
func (tc *testCluster) waitAllLeaders() {
	tc.t.Helper()
	sess := tc.coord.Connect()
	defer sess.Close()
	deadline := time.Now().Add(10 * time.Second)
	for r := 0; r < tc.layout.NumRanges(); r++ {
		for {
			if time.Now().After(deadline) {
				tc.t.Fatalf("range %d never elected an open leader", r)
			}
			data, err := sess.Get(leaderPath(uint32(r)))
			if err == nil {
				if n, ok := tc.nodes[string(data)]; ok {
					if st, ok := n.ReplicaStats(uint32(r)); ok && st.Role == RoleLeader && st.Open {
						break
					}
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// leaderOf returns the current leader node of a range.
func (tc *testCluster) leaderOf(r uint32) *Node {
	tc.t.Helper()
	sess := tc.coord.Connect()
	defer sess.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		data, err := sess.Get(leaderPath(r))
		if err == nil {
			if n, ok := tc.nodes[string(data)]; ok {
				return n
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	tc.t.Fatalf("range %d has no live leader", r)
	return nil
}

func TestClusterPutGet(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	v, err := c.Put("000100", "name", []byte("alice"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if v == 0 {
		t.Error("Put returned zero version")
	}
	got, ver, err := c.Get("000100", "name", true)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "alice" || ver != v {
		t.Errorf("Get = %q v%d, want alice v%d", got, ver, v)
	}
}

func TestClusterWritesSpreadAcrossRanges(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	for i := 0; i < 30; i++ {
		row := fmt.Sprintf("%06d", i*33000)
		if _, err := c.Put(row, "c", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put(%s): %v", row, err)
		}
	}
	for i := 0; i < 30; i++ {
		row := fmt.Sprintf("%06d", i*33000)
		got, _, err := c.Get(row, "c", true)
		if err != nil || string(got) != fmt.Sprintf("v%d", i) {
			t.Errorf("Get(%s) = %q,%v", row, got, err)
		}
	}
}

func TestClusterVersionsIncreaseMonotonically(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	var last uint64
	for i := 0; i < 10; i++ {
		v, err := c.Put("000500", "counter", []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if v <= last {
			t.Fatalf("version %d not above %d", v, last)
		}
		last = v
	}
}

func TestClusterDelete(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	if _, err := c.Put("000300", "col", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("000300", "col"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("000300", "col", true); err != ErrNotFound {
		t.Errorf("Get after delete: %v, want ErrNotFound", err)
	}
}

func TestClusterConditionalPut(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	// Create-if-absent via version 0.
	v1, err := c.ConditionalPut("000700", "c", []byte("first"), 0)
	if err != nil {
		t.Fatalf("conditional create: %v", err)
	}
	// Stale version must fail.
	if _, err := c.ConditionalPut("000700", "c", []byte("clobber"), 0); err != ErrVersionMismatch {
		t.Errorf("stale conditional put: %v, want ErrVersionMismatch", err)
	}
	// Fresh version succeeds.
	v2, err := c.ConditionalPut("000700", "c", []byte("second"), v1)
	if err != nil {
		t.Fatalf("fresh conditional put: %v", err)
	}
	if v2 <= v1 {
		t.Errorf("versions not increasing: %d then %d", v1, v2)
	}
	got, _, _ := c.Get("000700", "c", true)
	if string(got) != "second" {
		t.Errorf("value = %q", got)
	}
}

func TestClusterTransactionalIncrement(t *testing.T) {
	// The paper's §3 example: transactionally increment a counter with
	// get + conditionalPut, retrying on conflict.
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()

	increment := func(c *Client) {
		for {
			val, ver, err := c.Get("000900", "c", true)
			var cur int
			if err == ErrNotFound {
				cur = 0
			} else if err != nil {
				t.Error(err)
				return
			} else {
				cur = int(val[0])
			}
			if _, err := c.ConditionalPut("000900", "c", []byte{byte(cur + 1)}, ver); err == nil {
				return
			} else if err != ErrVersionMismatch {
				t.Error(err)
				return
			}
		}
	}
	done := make(chan struct{})
	const workers, perWorker = 4, 5
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			c := tc.client()
			for i := 0; i < perWorker; i++ {
				increment(c)
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	c := tc.client()
	val, _, err := c.Get("000900", "c", true)
	if err != nil {
		t.Fatal(err)
	}
	if int(val[0]) != workers*perWorker {
		t.Errorf("counter = %d, want %d", val[0], workers*perWorker)
	}
}

func TestClusterConditionalDelete(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	v, err := c.Put("001100", "c", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ConditionalDelete("001100", "c", v+999); err != ErrVersionMismatch {
		t.Errorf("stale conditional delete: %v", err)
	}
	if err := c.ConditionalDelete("001100", "c", v); err != nil {
		t.Errorf("fresh conditional delete: %v", err)
	}
	if _, _, err := c.Get("001100", "c", true); err != ErrNotFound {
		t.Errorf("Get after conditional delete: %v", err)
	}
}

func TestClusterMultiColumnPut(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	vs, err := c.MultiPut("001300", []Column{
		{Col: "a", Value: []byte("1")},
		{Col: "b", Value: []byte("2")},
		{Col: "c", Value: []byte("3")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != vs[1] || vs[1] != vs[2] {
		t.Errorf("multi-put versions = %v (one transaction, one version)", vs)
	}
	row, err := c.GetRow("001300", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 3 {
		t.Fatalf("GetRow = %d cols", len(row))
	}
	for i, want := range []string{"1", "2", "3"} {
		if string(row[i].Cell.Value) != want {
			t.Errorf("col %d = %q", i, row[i].Cell.Value)
		}
	}
}

func TestClusterConditionalMultiPut(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	vs, err := c.MultiPut("001500", []Column{{Col: "x", Value: []byte("1")}, {Col: "y", Value: []byte("2")}})
	if err != nil {
		t.Fatal(err)
	}
	// One stale version fails the whole transaction.
	if _, err := c.ConditionalMultiPut("001500",
		[]Column{{Col: "x", Value: []byte("1a")}, {Col: "y", Value: []byte("2a")}},
		[]uint64{vs[0], vs[1] + 5},
	); err != ErrVersionMismatch {
		t.Fatalf("partial-stale multi-put: %v", err)
	}
	// Neither column changed.
	got, _, _ := c.Get("001500", "x", true)
	if string(got) != "1" {
		t.Errorf("x = %q after failed transaction", got)
	}
	// Correct versions commit atomically.
	if _, err := c.ConditionalMultiPut("001500",
		[]Column{{Col: "x", Value: []byte("1a")}, {Col: "y", Value: []byte("2a")}},
		vs,
	); err != nil {
		t.Fatal(err)
	}
	got, _, _ = c.Get("001500", "y", true)
	if string(got) != "2a" {
		t.Errorf("y = %q", got)
	}
}

func TestClusterTimelineReadConverges(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()

	if _, err := c.Put("001700", "c", []byte("value")); err != nil {
		t.Fatal(err)
	}
	// Timeline reads may lag by up to a commit period; within a few
	// periods every replica must serve the write (§5).
	deadline := time.Now().Add(10 * time.Second)
	seen := 0
	for time.Now().Before(deadline) && seen < 20 {
		got, _, err := c.Get("001700", "c", false)
		if err == nil && string(got) == "value" {
			seen++
		} else {
			seen = 0
			time.Sleep(2 * time.Millisecond)
		}
	}
	if seen < 20 {
		t.Error("timeline reads never converged to the committed value")
	}
}

func TestClusterStrongReadRejectedAtFollower(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()

	leader := tc.leaderOf(0)
	var follower *Node
	for name, n := range tc.nodes {
		if name != leader.ID() && tc.layout.CohortContains(0, name) {
			follower = n
			break
		}
	}
	if follower == nil {
		t.Fatal("no follower found")
	}
	ep := tc.net.Join("probe")
	resp, err := ep.Call(transport.Message{
		To: follower.ID(), Kind: MsgGet, Cohort: 0,
		Payload: encodeGetReq(getReq{Row: "000001", Col: "c", Consistent: true}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := decodeGetResp(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusNotLeader {
		t.Errorf("strong read at follower: status %d, want NotLeader", res.Status)
	}
}

func TestClusterGetRowNotFound(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	c := tc.client()
	if _, err := c.GetRow("999999", true); err != ErrNotFound {
		t.Errorf("GetRow missing row: %v", err)
	}
}
