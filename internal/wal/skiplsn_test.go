package wal

import (
	"testing"
	"testing/quick"
)

func TestSkippedLSNsBasic(t *testing.T) {
	s := NewSkippedLSNs()
	if s.Contains(MakeLSN(1, 22)) {
		t.Error("empty list must contain nothing")
	}
	s.Add(MakeLSN(1, 22))
	if !s.Contains(MakeLSN(1, 22)) {
		t.Error("added LSN missing")
	}
	if s.Contains(MakeLSN(1, 21)) {
		t.Error("unrelated LSN present")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSkippedLSNsAddRange(t *testing.T) {
	// Appendix B, S3→S4: node C recovers with cmt=1.10, lst=1.22; the new
	// leader's history keeps 1.11..1.21 but discards 1.22. C's ambiguous
	// range is (1.10, 1.22]; only the LSNs actually present in C's log and
	// not re-sent by the leader end up skipped. AddRange records the
	// whole ambiguous set first.
	s := NewSkippedLSNs()
	present := []LSN{MakeLSN(1, 9), MakeLSN(1, 11), MakeLSN(1, 21), MakeLSN(1, 22)}
	s.AddRange(present, MakeLSN(1, 10), MakeLSN(1, 22))
	if s.Contains(MakeLSN(1, 9)) {
		t.Error("LSN at or below f.cmt must not be skipped")
	}
	for _, l := range []LSN{MakeLSN(1, 11), MakeLSN(1, 21), MakeLSN(1, 22)} {
		if !s.Contains(l) {
			t.Errorf("LSN %s missing from skip list", l)
		}
	}
}

func TestSkippedLSNsEncodeDecode(t *testing.T) {
	s := NewSkippedLSNs()
	for _, l := range []LSN{MakeLSN(1, 22), MakeLSN(2, 3), MakeLSN(1, 11)} {
		s.Add(l)
	}
	got, err := DecodeSkippedLSNs(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("decoded Len = %d", got.Len())
	}
	for _, l := range []LSN{MakeLSN(1, 22), MakeLSN(2, 3), MakeLSN(1, 11)} {
		if !got.Contains(l) {
			t.Errorf("decoded list missing %s", l)
		}
	}
}

func TestSkippedLSNsDecodeErrors(t *testing.T) {
	if _, err := DecodeSkippedLSNs(nil); err == nil {
		t.Error("nil input must fail")
	}
	if _, err := DecodeSkippedLSNs([]byte{9, 0, 0, 0, 1}); err == nil {
		t.Error("truncated input must fail")
	}
}

func TestSkippedLSNsGC(t *testing.T) {
	s := NewSkippedLSNs()
	s.Add(MakeLSN(1, 5))
	s.Add(MakeLSN(1, 9))
	s.Add(MakeLSN(2, 1))
	s.GC(MakeLSN(1, 9))
	if s.Contains(MakeLSN(1, 5)) || s.Contains(MakeLSN(1, 9)) {
		t.Error("GC left captured entries behind")
	}
	if !s.Contains(MakeLSN(2, 1)) {
		t.Error("GC dropped a live entry")
	}
}

func TestSkippedLSNsSaveLoad(t *testing.T) {
	ms := NewMemMetaStore()
	s := NewSkippedLSNs()
	s.Add(MakeLSN(1, 22))
	if err := SaveSkippedLSNs(ms, 3, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSkippedLSNs(ms, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Contains(MakeLSN(1, 22)) {
		t.Error("loaded list missing entry")
	}
	// Loading a cohort with no saved list yields an empty list.
	empty, err := LoadSkippedLSNs(ms, 99)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("fresh cohort list Len = %d", empty.Len())
	}
}

func TestSkippedLSNsPropertyRoundTrip(t *testing.T) {
	f := func(seqs []uint16) bool {
		s := NewSkippedLSNs()
		for _, q := range seqs {
			s.Add(MakeLSN(1, uint64(q)))
		}
		got, err := DecodeSkippedLSNs(s.Encode())
		if err != nil || got.Len() != s.Len() {
			return false
		}
		for _, q := range seqs {
			if !got.Contains(MakeLSN(1, uint64(q))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
