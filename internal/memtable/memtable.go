// Package memtable implements the sorted in-memory table that committed
// writes are applied to before being flushed to SSTables (paper §4.1). It
// is a skiplist keyed by (row, column), safe for concurrent readers and
// writers, tracking the LSN range of the writes it holds so flushes can tag
// SSTables with min/max LSNs (paper §6.1).
package memtable

import (
	"math/rand"
	"sync"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

const maxLevel = 16

type node struct {
	entry kv.Entry
	next  []*node
}

// Memtable is a concurrent sorted map from kv.Key to kv.Cell.
// The zero value is not usable; call New.
type Memtable struct {
	mu     sync.RWMutex
	head   *node
	level  int
	len    int
	bytes  int64
	rng    *rand.Rand
	minLSN wal.LSN
	maxLSN wal.LSN
	sealed bool
}

// New returns an empty memtable.
func New() *Memtable {
	return &Memtable{
		head: &node{next: make([]*node, maxLevel)},
		rng:  rand.New(rand.NewSource(0x5717BAC0)), // deterministic shape for reproducible tests
	}
}

func (m *Memtable) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && m.rng.Intn(2) == 0 {
		lvl++
	}
	return lvl
}

// findPredecessors fills update[i] with the rightmost node at level i whose
// key is < key; callers hold at least a read lock (write lock to mutate).
func (m *Memtable) findPredecessors(key kv.Key, update []*node) *node {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].entry.Key.Less(key) {
			x = x.next[i]
		}
		if update != nil {
			update[i] = x
		}
	}
	return x
}

// Apply inserts or replaces the cell for key. A newer cell (per
// kv.Cell.Newer) replaces an older one; an older arrival is ignored, making
// Apply idempotent under the redo of local recovery (paper §6.1: replay
// "is done in an idempotent way").
func (m *Memtable) Apply(key kv.Key, cell kv.Cell) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		// A write after sealing would silently miss the SSTable being
		// built from this memtable — the engine's layering is broken.
		panic("memtable: Apply to a sealed memtable")
	}

	update := make([]*node, maxLevel)
	for i := m.level; i < maxLevel; i++ {
		update[i] = m.head
	}
	x := m.findPredecessors(key, update)
	if cand := x.next[0]; cand != nil && cand.entry.Key.Compare(key) == 0 {
		if cell.Newer(cand.entry.Cell) {
			m.bytes += int64(len(cell.Value) - len(cand.entry.Cell.Value))
			cand.entry.Cell = cell
			m.noteLSN(cell.LSN)
		}
		return
	}

	lvl := m.randomLevel()
	if lvl > m.level {
		m.level = lvl
	}
	n := &node{entry: kv.Entry{Key: key, Cell: cell}, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	m.len++
	m.bytes += int64(len(key.Row) + len(key.Col) + len(cell.Value) + 32)
	m.noteLSN(cell.LSN)
}

func (m *Memtable) noteLSN(lsn wal.LSN) {
	if lsn.IsZero() {
		return
	}
	if m.minLSN.IsZero() || lsn < m.minLSN {
		m.minLSN = lsn
	}
	if lsn > m.maxLSN {
		m.maxLSN = lsn
	}
}

// Seal marks the memtable immutable. The storage engine seals the active
// memtable before queueing it for a flush: reads keep consulting it while
// the SSTable is built off-lock, but any late Apply — which would vanish
// from the flushed image — panics instead of corrupting the layering.
func (m *Memtable) Seal() {
	m.mu.Lock()
	m.sealed = true
	m.mu.Unlock()
}

// Get returns the cell for key. Tombstones are returned with ok=true and
// Cell.Deleted set; the storage engine decides how to surface them.
func (m *Memtable) Get(key kv.Key) (kv.Cell, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.findPredecessors(key, nil)
	if cand := x.next[0]; cand != nil && cand.entry.Key.Compare(key) == 0 {
		return cand.entry.Cell, true
	}
	return kv.Cell{}, false
}

// Len returns the number of distinct keys.
func (m *Memtable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.len
}

// Bytes returns the approximate memory footprint, used to decide when to
// flush.
func (m *Memtable) Bytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// LSNRange returns the min and max LSN of the applied writes.
func (m *Memtable) LSNRange() (min, max wal.LSN) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.minLSN, m.maxLSN
}

// Ascend calls fn for every entry in key order until fn returns false.
// The callback must not mutate the table.
func (m *Memtable) Ascend(fn func(e kv.Entry) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		if !fn(x.entry) {
			return
		}
	}
}

// AscendRow calls fn for every column of row in column order.
func (m *Memtable) AscendRow(row string, fn func(e kv.Entry) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	start := kv.Key{Row: row}
	x := m.findPredecessors(start, nil)
	for x = x.next[0]; x != nil && x.entry.Key.Row == row; x = x.next[0] {
		if !fn(x.entry) {
			return
		}
	}
}

// Snapshot returns all entries in key order; flushes use it to build an
// SSTable.
func (m *Memtable) Snapshot() []kv.Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]kv.Entry, 0, m.len)
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, x.entry)
	}
	return out
}
