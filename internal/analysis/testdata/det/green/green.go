// Package green is the sanctioned form of every pattern det/red gets
// wrong: an explicitly seeded RNG and sorted iteration before anything
// order-sensitive happens.
package green

import (
	"math/rand"
	"sort"
)

// Schedule draws from a seeded source and sends in sorted key order.
func Schedule(seed int64, peers map[string]chan int) {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(peers))
	for name := range peers { // no sink in the body: order cannot leak
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if rng.Intn(2) == 0 {
			peers[name] <- 1
		}
	}
}
