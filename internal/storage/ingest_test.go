package storage

import (
	"fmt"
	"testing"

	"spinnaker/internal/kv"
	"spinnaker/internal/sstable"
	"spinnaker/internal/wal"
)

// buildLeader populates a leader-like engine, flushes it into tables, and
// returns the engine plus its table blobs newest first.
func buildLeader(t *testing.T, keys int) (*Engine, [][]byte, wal.LSN) {
	t.Helper()
	e, _ := newTestEngine(t)
	for i := 0; i < keys; i++ {
		put(e, fmt.Sprintf("row%04d", i), "c", fmt.Sprintf("v%d", i), uint64(i+1))
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	var blobs [][]byte
	for _, tab := range e.Tables() {
		blobs = append(blobs, tab.Blob())
	}
	return e, blobs, e.Checkpoint()
}

func TestExportTable(t *testing.T) {
	e, _, _ := buildLeader(t, 10)
	tab := e.Tables()[0]
	blob, ok := e.ExportTable(tab.ID())
	if !ok {
		t.Fatalf("ExportTable(%d) not found", tab.ID())
	}
	re, err := sstable.Open(tab.ID(), blob)
	if err != nil {
		t.Fatalf("exported blob does not reopen: %v", err)
	}
	if re.Len() != tab.Len() {
		t.Fatalf("exported table has %d entries, want %d", re.Len(), tab.Len())
	}
	if _, ok := e.ExportTable(9999); ok {
		t.Fatalf("ExportTable invented a table")
	}
}

func TestIngestIntoEmptyEngine(t *testing.T) {
	_, blobs, snapCmt := buildLeader(t, 50)

	f, cfg := newTestEngine(t)
	if err := f.IngestTables(blobs, snapCmt); err != nil {
		t.Fatalf("IngestTables: %v", err)
	}
	if f.Checkpoint() != snapCmt {
		t.Fatalf("checkpoint = %s, want %s", f.Checkpoint(), snapCmt)
	}
	for i := 0; i < 50; i++ {
		c, ok := f.Get(kv.Key{Row: fmt.Sprintf("row%04d", i), Col: "c"})
		if !ok || string(c.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("row%04d after ingest = %q,%v", i, c.Value, ok)
		}
	}
	// The install is durable: a reopen over the same stores sees the data.
	re, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if re.Checkpoint() != snapCmt {
		t.Fatalf("reopened checkpoint = %s, want %s", re.Checkpoint(), snapCmt)
	}
	if _, ok := re.Get(kv.Key{Row: "row0049", Col: "c"}); !ok {
		t.Fatalf("reopened engine lost ingested data")
	}
}

func TestIngestSiftsIntoNonEmptyEngine(t *testing.T) {
	_, blobs, snapCmt := buildLeader(t, 20)

	f, _ := newTestEngine(t)
	// The follower holds an OLD value for row0005 (lower LSN than the
	// leader's) and a NEWER value for row0007 (higher LSN — e.g. applied
	// from the log tail before the snapshot arrived). Sifting must adopt
	// the leader's row0005 and keep the local row0007.
	put(f, "row0005", "c", "stale", 3)
	f.Apply(kv.Entry{
		Key:  kv.Key{Row: "row0007", Col: "c"},
		Cell: kv.Cell{Value: []byte("newer-local"), LSN: wal.MakeLSN(2, 1), Version: 100},
	})
	if err := f.Flush(); err != nil { // non-empty durable state → sifted mode
		t.Fatal(err)
	}

	if err := f.IngestTables(blobs, snapCmt); err != nil {
		t.Fatalf("IngestTables: %v", err)
	}
	if got := f.Checkpoint(); got < snapCmt {
		t.Fatalf("checkpoint = %s, want >= %s", got, snapCmt)
	}
	c, ok := f.Get(kv.Key{Row: "row0005", Col: "c"})
	if !ok || string(c.Value) != "v5" {
		t.Fatalf("row0005 = %q,%v; want leader's v5", c.Value, ok)
	}
	c, ok = f.Get(kv.Key{Row: "row0007", Col: "c"})
	if !ok || string(c.Value) != "newer-local" {
		t.Fatalf("row0007 = %q,%v; shipped stale cell shadowed a newer local one", c.Value, ok)
	}
	for i := 0; i < 20; i++ {
		if i == 5 || i == 7 {
			continue
		}
		if _, ok := f.Get(kv.Key{Row: fmt.Sprintf("row%04d", i), Col: "c"}); !ok {
			t.Fatalf("row%04d missing after sifted ingest", i)
		}
	}
}

func TestIngestRejectsCorruptBlob(t *testing.T) {
	_, blobs, snapCmt := buildLeader(t, 5)
	bad := append([]byte(nil), blobs[0]...)
	bad[len(bad)-1] ^= 0xFF // break the magic
	f, _ := newTestEngine(t)
	if err := f.IngestTables([][]byte{bad}, snapCmt); err == nil {
		t.Fatalf("corrupt blob ingested without error")
	}
	if n := len(f.Tables()); n != 0 {
		t.Fatalf("corrupt ingest left %d tables installed", n)
	}
}

func TestRaiseCheckpointIsMonotone(t *testing.T) {
	e, cfg := newTestEngine(t)
	put(e, "r", "c", "v", 5)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	base := e.Checkpoint()
	if err := e.RaiseCheckpoint(base - 1); err != nil {
		t.Fatal(err)
	}
	if e.Checkpoint() != base {
		t.Fatalf("checkpoint regressed to %s", e.Checkpoint())
	}
	target := wal.MakeLSN(3, 9)
	if err := e.RaiseCheckpoint(target); err != nil {
		t.Fatal(err)
	}
	if e.Checkpoint() != target {
		t.Fatalf("checkpoint = %s, want %s", e.Checkpoint(), target)
	}
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Checkpoint() != target {
		t.Fatalf("raised checkpoint not durable: reopened %s", re.Checkpoint())
	}
}
