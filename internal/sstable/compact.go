package sstable

import (
	"container/heap"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

// DropAllTombstones is the dropBelow watermark that lets a merge discard
// every tombstone. Only safe when the caller can prove no reader — local
// (an older table outside the merge) or remote (a cohort member whose
// catch-up will replay EntriesSince below the tombstone's LSN) — still
// needs the deletion marker.
const DropAllTombstones = ^wal.LSN(0)

// Merge performs a k-way merge of tables into a single sorted run. For keys
// present in several inputs the newest cell (per kv.Cell.Newer) wins.
//
// Tombstones at or below dropBelow are omitted from the output — the
// garbage collection of deleted rows the paper attributes to background
// merges of smaller SSTables into larger ones (§4.1). Dropping is only
// sound if (a) every table older than the merged set participates in the
// merge, else an older table could resurrect the deleted value locally,
// and (b) dropBelow does not exceed the cohort's tombstone-GC watermark —
// the minimum committed LSN across cohort members — else a laggard
// follower's SSTable-based catch-up (§6.1, EntriesSince) would miss the
// delete and resurrect the row remotely. The storage engine enforces both;
// dropBelow = 0 keeps every tombstone.
func Merge(tables []*Table, dropBelow wal.LSN) ([]kv.Entry, error) {
	h := make(mergeHeap, 0, len(tables))
	for pri, t := range tables {
		entries, err := t.Entries()
		if err != nil {
			return nil, err
		}
		if len(entries) == 0 {
			continue
		}
		h = append(h, &mergeCursor{entries: entries, pri: pri})
	}
	heap.Init(&h)

	var out []kv.Entry
	for h.Len() > 0 {
		cur := h[0]
		e := cur.entries[cur.pos]
		cur.pos++
		if cur.pos == len(cur.entries) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}

		if n := len(out); n > 0 && out[n-1].Key.Compare(e.Key) == 0 {
			if e.Cell.Newer(out[n-1].Cell) {
				out[n-1] = e
			}
			continue
		}
		out = append(out, e)
	}
	if dropBelow > 0 {
		live := out[:0]
		for _, e := range out {
			if !e.Cell.Deleted || e.Cell.LSN > dropBelow {
				live = append(live, e)
			}
		}
		out = live
	}
	return out, nil
}

// Compact merges tables and serializes the result as a new table blob,
// dropping tombstones at or below dropBelow (see Merge).
func Compact(tables []*Table, dropBelow wal.LSN) ([]byte, error) {
	entries, err := Merge(tables, dropBelow)
	if err != nil {
		return nil, err
	}
	b := NewBuilder()
	for _, e := range entries {
		b.Add(e)
	}
	return b.Finish(), nil
}

type mergeCursor struct {
	entries []kv.Entry
	pos     int
	pri     int // lower pri = newer table, wins key ties at equal cell age
}

type mergeHeap []*mergeCursor

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	ci, cj := h[i], h[j]
	c := ci.entries[ci.pos].Key.Compare(cj.entries[cj.pos].Key)
	if c != 0 {
		return c < 0
	}
	return ci.pri < cj.pri
}
func (h mergeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x any)   { *h = append(*h, x.(*mergeCursor)) }
func (h *mergeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
