package sim

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/lin"
)

// reconfigCluster starts a 3-node cluster tuned for fast reconfiguration
// tests.
func reconfigCluster(t *testing.T) *SpinnakerCluster {
	t.Helper()
	sc, err := NewSpinnakerCluster(Options{
		Nodes:        3,
		CommitPeriod: 5 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sc.Stop)
	if err := sc.WaitReady(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	return sc
}

// strideKeys returns n keys evenly spread over the cluster's key domain, so
// every range sees traffic.
func strideKeys(sc *SpinnakerCluster, n int) []string {
	domain := 1
	for i := 0; i < sc.opts.KeyWidth; i++ {
		domain *= 10
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = sc.Key(i * (domain / n))
	}
	return keys
}

// TestSplitRangeLive splits a range while data is in it and verifies the
// moved rows stay readable and writable through the new range.
func TestSplitRangeLive(t *testing.T) {
	sc := reconfigCluster(t)
	c := sc.NewClient()

	keys := strideKeys(sc, 30)
	for i, k := range keys {
		if _, err := c.Put(k, "v", []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("preload %s: %v", k, err)
		}
	}

	l := sc.CurrentLayout()
	target := l.RangeIDs()[0]
	low, high := l.Bounds(target)
	key := sc.midKey(low, high)
	newID, err := sc.SplitRange(target, key, 30*time.Second)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	nl := sc.CurrentLayout()
	if nl.Version() <= l.Version() {
		t.Fatalf("layout version did not advance: %d -> %d", l.Version(), nl.Version())
	}
	if got := nl.RangeOf(key); got != newID {
		t.Fatalf("split key routes to range %d, want new range %d", got, newID)
	}

	// Every preloaded key must still be readable with its value, through
	// whichever range now owns it (the stale client refreshes on
	// StatusWrongLayout replies).
	for i, k := range keys {
		v, _, err := c.Get(k, "v", true)
		if err != nil {
			t.Fatalf("read %s after split: %v", k, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("read %s after split: got %q want %q", k, v, want)
		}
	}
	// And writable: a write to a moved row must land in the new range.
	if _, err := c.Put(key, "v", []byte("post-split")); err != nil {
		t.Fatalf("write to split key: %v", err)
	}
	if v, _, err := c.Get(key, "v", true); err != nil || string(v) != "post-split" {
		t.Fatalf("read back split key: %q %v", v, err)
	}
}

// TestMoveRangeRouting moves a range's membership one node over and checks
// that a client created before the move (stale layout, stale leader cache)
// still routes: the old member answers StatusWrongLayout, the client
// refreshes, and operations land on the new cohort.
func TestMoveRangeRouting(t *testing.T) {
	sc := reconfigCluster(t)
	staleClient := sc.NewClient()

	l := sc.CurrentLayout()
	target := l.RangeIDs()[0]
	low, _ := l.Bounds(target)
	key := low
	if key == "" {
		key = sc.Key(1)
	}
	if _, err := staleClient.Put(key, "v", []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Grow the ring and move the range's whole cohort off its current
	// members, one member at a time.
	newNode, err := sc.AddNode("")
	if err != nil {
		t.Fatal(err)
	}
	from := l.Cohort(target)[0]
	if err := sc.MoveRange(target, from, newNode, 60*time.Second); err != nil {
		t.Fatalf("move: %v", err)
	}
	nl := sc.CurrentLayout()
	if !nl.CohortContains(target, newNode) || nl.CohortContains(target, from) {
		t.Fatalf("cohort after move: %v", nl.Cohort(target))
	}

	// The stale client must still read and write the key.
	if v, _, err := staleClient.Get(key, "v", true); err != nil || string(v) != "before" {
		t.Fatalf("stale client read after move: %q %v", v, err)
	}
	if _, err := staleClient.Put(key, "v", []byte("after")); err != nil {
		t.Fatalf("stale client write after move: %v", err)
	}
	if v, _, err := staleClient.Get(key, "v", true); err != nil || string(v) != "after" {
		t.Fatalf("stale client read-back after move: %q %v", v, err)
	}
}

// TestAddNodeAndRebalance grows a 3-node cluster to 5, rebalances, and
// verifies the data survives, the new nodes carry ranges, and leadership
// spreads onto them.
func TestAddNodeAndRebalance(t *testing.T) {
	sc := reconfigCluster(t)
	c := sc.NewClient()

	keys := strideKeys(sc, 40)
	for i, k := range keys {
		if _, err := c.Put(k, "v", []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("preload %s: %v", k, err)
		}
	}

	for i := 0; i < 2; i++ {
		if _, err := sc.AddNode(""); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Rebalance(120 * time.Second); err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	l := sc.CurrentLayout()
	if got, want := len(l.Nodes()), 5; got != want {
		t.Fatalf("nodes after rebalance: %d want %d", got, want)
	}
	if l.NumRanges() < 5 {
		t.Fatalf("ranges after rebalance: %d want >= 5", l.NumRanges())
	}
	served := make(map[string]int)
	for _, id := range l.RangeIDs() {
		for _, n := range l.Cohort(id) {
			served[n]++
		}
	}
	for _, n := range l.Nodes() {
		if served[n] == 0 {
			t.Errorf("node %s serves no ranges after rebalance", n)
		}
	}
	leaders := make(map[string]bool)
	for _, id := range l.RangeIDs() {
		leaders[sc.LeaderOf(id)] = true
	}
	if len(leaders) < 4 {
		t.Errorf("leadership concentrated on %d nodes after rebalance: %v", len(leaders), leaders)
	}

	for i, k := range keys {
		v, _, err := c.Get(k, "v", true)
		if err != nil {
			t.Fatalf("read %s after rebalance: %v", k, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("read %s after rebalance: got %q want %q", k, v, want)
		}
	}
}

// TestRebalanceUnderWorkload is the tentpole acceptance check: a
// strict-write multi-writer workload runs while the cluster scales from 3
// to 5 nodes and rebalances, and the full operation history must stay
// per-key linearizable.
func TestRebalanceUnderWorkload(t *testing.T) {
	sc, err := NewSpinnakerCluster(Options{
		Nodes:        3,
		CommitPeriod: 5 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	rec := lin.NewRecorder()
	keys := strideKeys(sc, 5)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	writers := 4
	if testing.Short() {
		writers = 2
	}
	for w := 0; w < writers; w++ {
		c := sc.NewClient()
		c.SetStrictWrites(true)
		wg.Add(1)
		go func(w int, c *core.Client) {
			defer wg.Done()
			runWriter(c, rec, keys, w, 42, stop)
		}(w, c)
	}

	for i := 0; i < 2; i++ {
		id, err := sc.AddNode("")
		if err != nil {
			t.Fatal(err)
		}
		rec.Note("reconfig: add %s", id)
	}
	if err := sc.Rebalance(120 * time.Second); err != nil {
		t.Fatalf("rebalance under workload: %v", err)
	}
	rec.Note("reconfig: rebalanced to %d ranges", sc.CurrentLayout().NumRanges())
	time.Sleep(300 * time.Millisecond) // observe the rebalanced cluster
	close(stop)
	wg.Wait()

	res := rec.Check(120 * time.Second)
	if res.Err != nil {
		t.Fatalf("linearizability check undecided: %v", res.Err)
	}
	if !res.Linearizable {
		t.Fatalf("history not linearizable at key %q\n%s\n%s",
			res.BadKey, res.Detail, rec.FormatKey(res.BadKey))
	}
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	t.Logf("rebalanced under %d ops (%d ambiguous), linearizable", res.Ops, res.Unknown)
}

// TestRebalanceUnderPipelinedLoad grows the cluster 3→7 while 16 pipelined
// writers hammer it. Regression test for a mid-takeover demotion race: a
// rival's late takeover sync demoted a fresh leader whose takeover then
// opened the cohort anyway, leaving an orphaned leader znode the cohort
// waited on forever (rebalance stalled for minutes).
func TestRebalanceUnderPipelinedLoad(t *testing.T) {
	sc, err := NewSpinnakerCluster(Options{
		Nodes:        3,
		CommitPeriod: 100 * time.Millisecond,
		MessageCost:  5 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	writers := 16
	if testing.Short() {
		writers = 4
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		c := sc.NewClient()
		wg.Add(1)
		go func(w int, c *core.Client) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				b := c.NewBatch()
				for k := 0; k < 8; k++ {
					b.Put(sc.Key((w*1000000+i*8+k)%100000000), "c", []byte("v"))
				}
				_, _ = b.Run()
			}
		}(w, c)
	}
	for len(sc.CurrentLayout().Nodes()) < 7 {
		if _, err := sc.AddNode(""); err != nil {
			t.Fatal(err)
		}
	}
	if err := sc.Rebalance(120 * time.Second); err != nil {
		t.Fatalf("rebalance under pipelined load: %v", err)
	}
	close(stop)
	wg.Wait()

	// Post-rebalance sanity: a fresh client sees consistent state on a
	// stride of keys across every range.
	c := sc.NewClient()
	for i, k := range strideKeys(sc, 20) {
		if _, err := c.Put(k, "post", []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("post-rebalance write %s: %v", k, err)
		}
		if v, _, err := c.Get(k, "post", true); err != nil || string(v) != fmt.Sprintf("p%d", i) {
			t.Fatalf("post-rebalance read %s: %q %v", k, v, err)
		}
	}
}

// TestLayoutVersionPublication checks the CAS discipline on the published
// layout: stale publications are refused.
func TestLayoutVersionPublication(t *testing.T) {
	sc := reconfigCluster(t)
	l := sc.CurrentLayout()
	next, err := l.WithNode("nodeX")
	if err != nil {
		t.Fatal(err)
	}
	sess := sc.Coord.Connect()
	defer sess.Close()
	if err := core.PublishLayout(sess, next); err != nil {
		t.Fatal(err)
	}
	// Re-publishing the same version (or the old one) must fail.
	if err := core.PublishLayout(sess, next); !errors.Is(err, core.ErrLayoutConflict) {
		t.Fatalf("want ErrLayoutConflict, got %v", err)
	}
	if err := core.PublishLayout(sess, l); !errors.Is(err, core.ErrLayoutConflict) {
		t.Fatalf("want ErrLayoutConflict for stale layout, got %v", err)
	}
	got, err := core.FetchLayout(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != next.Version() || !got.HasNode("nodeX") {
		t.Fatalf("fetched layout v%d nodes %v", got.Version(), got.Nodes())
	}
}
