package core

import (
	"fmt"
	"testing"
	"time"

	"spinnaker/internal/wal"
)

// TestCatchupAfterLogTruncation exercises the §6.1 path where a catch-up
// request cannot be served from the leader's log because the oldest
// segments have been rolled over after their writes were captured to
// SSTables: the committed state is shipped from the storage engine, whose
// SSTables are tagged with min/max LSNs.
func TestCatchupAfterLogTruncation(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		// Tiny storage thresholds so flushes, segment rolls, and log
		// truncation all happen within the test.
		cfg.FlushBytes = 8 << 10
		cfg.SegmentBytes = 16 << 10
		cfg.FlushInterval = 5 * time.Millisecond
	})
	tc.waitAllLeaders()
	c := tc.client()

	leader := tc.leaderOf(0).ID()
	var follower string
	for _, name := range tc.layout.Cohort(0) {
		if name != leader {
			follower = name
			break
		}
	}

	value := make([]byte, 512)
	for i := range value {
		value[i] = byte(i)
	}
	for i := 0; i < 30; i++ {
		if _, err := c.Put(row0(i), "c", value); err != nil {
			t.Fatal(err)
		}
	}
	tc.crashNode(follower)

	// Enough writes while the follower is down to flush several
	// memtables and truncate old log segments on the survivors.
	for i := 30; i < 150; i++ {
		if _, err := c.Put(row0(i), "c", value); err != nil {
			t.Fatalf("write %d with follower down: %v", i, err)
		}
	}
	// Wait for the flush daemon to capture and truncate.
	leaderNode := tc.leaderOf(0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		// The leader's log can no longer serve the full history.
		_, ok, err := leaderNode.log.CohortWritesIn(0, 0, wal.MakeLSN(1, 150))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break // truncated: catch-up must use the SSTable path
		}
		if time.Now().After(deadline) {
			t.Skip("log never truncated (flush daemon too slow on this host)")
		}
		time.Sleep(10 * time.Millisecond)
	}

	n := tc.restartNode(follower)
	for {
		st, ok := n.ReplicaStats(0)
		if ok && st.Role == RoleFollower && st.LastCommitted >= wal.MakeLSN(1, 150) {
			break
		}
		if time.Now().After(deadline.Add(10 * time.Second)) {
			st, _ := n.ReplicaStats(0)
			t.Fatalf("follower never caught up past truncated log: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Every committed write is served by the recovered follower.
	ep := tc.net.Join("probe-trunc")
	for i := 0; i < 150; i += 7 {
		resp, err := ep.Call(transportMsgGet(follower, 0, row0(i), "c"))
		if err != nil {
			t.Fatal(err)
		}
		res, _ := decodeGetResp(resp.Payload)
		if res.Status != StatusOK || len(res.Value) != len(value) {
			t.Fatalf("key %d at recovered follower: status %d len %d", i, res.Status, len(res.Value))
		}
	}
}

// TestSkippedLSNsGCWithFlushes verifies that skipped-LSN lists are
// garbage-collected along with log files (§6.1.1) as checkpoints advance.
func TestSkippedLSNsGCWithFlushes(t *testing.T) {
	tc := newTestCluster(t, 3, func(cfg *Config) {
		cfg.FlushBytes = 4 << 10
		cfg.FlushInterval = 5 * time.Millisecond
	})
	tc.waitAllLeaders()
	c := tc.client()

	names := tc.layout.Cohort(0)
	// The mechanics of skipped-list GC are unit-tested in wal; this test
	// asserts the end-to-end wiring: a node restarting with a persisted
	// skipped-LSN list sees it garbage-collected once flushes advance the
	// storage checkpoint past the skipped entries.
	skipped := wal.NewSkippedLSNs()
	skipped.Add(wal.MakeLSN(1, 3))
	skipped.Add(wal.MakeLSN(1, 12))
	if err := wal.SaveSkippedLSNs(tc.stores[names[0]].Meta, 0, skipped); err != nil {
		t.Fatal(err)
	}
	tc.crashNode(names[0])
	n := tc.restartNode(names[0])

	for i := 1; i <= 40; i++ {
		if _, err := c.Put(row0(i), "c", []byte(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, ok := n.ReplicaStats(0); ok && st.Role == RoleFollower {
			loaded, err := wal.LoadSkippedLSNs(tc.stores[names[0]].Meta, 0)
			if err != nil {
				t.Fatal(err)
			}
			// GC happens when the engine checkpoint passes the
			// skipped LSNs; 1.3 must eventually be collected.
			if !loaded.Contains(wal.MakeLSN(1, 3)) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Skip("flush daemon did not advance the checkpoint in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
