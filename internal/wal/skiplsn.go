package wal

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// SkippedLSNs is the logical-truncation structure of paper §6.1.1. A
// recovering follower cannot physically truncate the shared log at f.cmt
// because records of *other* cohorts interleave after it; instead the LSNs
// of its own records in (f.cmt, f.lst] are remembered in a skipped-LSN
// list, persisted to a known location on disk, and consulted by every
// future invocation of local recovery so those records are never re-applied.
//
// The list is expected to be small (at most one commit period's worth of
// writes) and is loaded into memory before recovery.
type SkippedLSNs struct {
	mu   sync.Mutex
	lsns map[LSN]struct{}
}

// NewSkippedLSNs returns an empty list.
func NewSkippedLSNs() *SkippedLSNs {
	return &SkippedLSNs{lsns: make(map[LSN]struct{})}
}

// Add records that lsn must be skipped by local recovery.
func (s *SkippedLSNs) Add(lsn LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lsns[lsn] = struct{}{}
}

// AddRange adds every LSN in (after, through] that appears in present.
// Recovery uses the follower's own log scan to enumerate which LSNs
// actually exist in the ambiguous range.
func (s *SkippedLSNs) AddRange(present []LSN, after, through LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range present {
		if l > after && l <= through {
			s.lsns[l] = struct{}{}
		}
	}
}

// Contains reports whether lsn was logically truncated.
func (s *SkippedLSNs) Contains(lsn LSN) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.lsns[lsn]
	return ok
}

// Len returns the number of skipped LSNs.
func (s *SkippedLSNs) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lsns)
}

// GC drops entries at or below the captured LSN; skipped-LSN lists are
// garbage-collected along with log files (paper §6.1.1).
func (s *SkippedLSNs) GC(captured LSN) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for l := range s.lsns {
		if l <= captured {
			delete(s.lsns, l)
		}
	}
}

// sorted returns the LSNs in ascending order; callers hold s.mu.
func (s *SkippedLSNs) sorted() []LSN {
	out := make([]LSN, 0, len(s.lsns))
	for l := range s.lsns {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Encode serializes the list.
func (s *SkippedLSNs) Encode() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	lsns := s.sorted()
	buf := make([]byte, 4+8*len(lsns))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(lsns)))
	for i, l := range lsns {
		binary.LittleEndian.PutUint64(buf[4+8*i:], uint64(l))
	}
	return buf
}

// DecodeSkippedLSNs parses a list serialized by Encode.
func DecodeSkippedLSNs(b []byte) (*SkippedLSNs, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wal: skipped-LSN list too short (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b[0:4]))
	if len(b) < 4+8*n {
		return nil, fmt.Errorf("wal: skipped-LSN list truncated: want %d entries", n)
	}
	s := NewSkippedLSNs()
	for i := 0; i < n; i++ {
		s.lsns[LSN(binary.LittleEndian.Uint64(b[4+8*i:]))] = struct{}{}
	}
	return s, nil
}

// skipKey is the MetaStore key holding a cohort's skipped-LSN list.
func skipKey(cohort uint32) string { return fmt.Sprintf("skiplsn/%d", cohort) }

// SaveSkippedLSNs persists a cohort's list to the metadata store.
func SaveSkippedLSNs(ms MetaStore, cohort uint32, s *SkippedLSNs) error {
	return ms.Put(skipKey(cohort), s.Encode())
}

// LoadSkippedLSNs loads a cohort's list, returning an empty list when none
// has been saved.
func LoadSkippedLSNs(ms MetaStore, cohort uint32) (*SkippedLSNs, error) {
	b, ok, err := ms.Get(skipKey(cohort))
	if err != nil {
		return nil, err
	}
	if !ok {
		return NewSkippedLSNs(), nil
	}
	return DecodeSkippedLSNs(b)
}
