package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"spinnaker/internal/simtime"
	"strings"
	"sync"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/lin"
	"spinnaker/internal/transport"
)

// NemesisFault names one fault primitive the nemesis can schedule. Each
// corresponds to a failure mode of the paper's availability analysis
// (§8.1) or to a network condition below it.
type NemesisFault string

const (
	// FaultIsolateLeader cuts a range's current leader off from every
	// other endpoint (a dead switch port): the cohort must refuse writes
	// rather than diverge, and recover on heal.
	FaultIsolateLeader NemesisFault = "isolate-leader"
	// FaultSplitMajority partitions one cohort node (sometimes the
	// leader) away from the other two: the majority side must stay
	// available, the minority side must not serve divergent state.
	FaultSplitMajority NemesisFault = "split-majority"
	// FaultFlapLinks rapidly partitions and heals random node pairs —
	// the oscillating connectivity that stresses retransmission and
	// dedupe paths.
	FaultFlapLinks NemesisFault = "flap-links"
	// FaultCrashRestart crashes one node (losing its unforced log tail)
	// and restarts it mid-workload (§6.1 local recovery + catch-up).
	FaultCrashRestart NemesisFault = "crash-restart"
	// FaultCrashDisk crashes one node, destroys its stable storage, and
	// restarts it: recovery must run entirely through the catch-up phase
	// (§6.1 disk failure).
	FaultCrashDisk NemesisFault = "crash-disk"
)

// AllFaults lists every fault primitive, in the order scenarios cycle
// through them.
var AllFaults = []NemesisFault{
	FaultIsolateLeader,
	FaultSplitMajority,
	FaultFlapLinks,
	FaultCrashRestart,
	FaultCrashDisk,
}

// ScenarioOptions configure one nemesis run. Every random choice — fault
// schedule, fault targets, workload operations, link-fault decisions —
// derives from Seed, so a failing run is replayed by rerunning its seed
// with the same options (modulo goroutine timing, which shifts which
// operations overlap but not the checked guarantees).
type ScenarioOptions struct {
	// Seed drives the nemesis schedule, the workload, and the network
	// fault plane.
	Seed int64
	// Nodes is the cluster size (default 3).
	Nodes int
	// Writers is the number of concurrent workload clients (default 4).
	Writers int
	// Keys is the number of distinct rows the workload contends on,
	// strided across the cluster's key ranges (default 5).
	Keys int
	// Duration is the fault-injection window; the workload runs for a
	// settle period beyond it so the healed cluster's state is observed
	// (default 3s).
	Duration time.Duration
	// Faults is the set of fault primitives composed on the schedule
	// (default AllFaults).
	Faults []NemesisFault
	// LinkFaults is a background fault plane applied to every
	// node↔node link for the whole run (zero = clean links outside the
	// scheduled faults).
	LinkFaults transport.LinkFaults
	// CheckTimeout bounds the linearizability search (default 60s).
	CheckTimeout time.Duration
	// Rebalance runs live reconfiguration concurrently with the fault
	// schedule: a new node is added partway into the run and the cluster
	// rebalances onto it (splits, cohort moves, leadership transfers)
	// while the workload executes and faults fire. With Rebalance set
	// the decision *draw* stream stays seed-deterministic, but resolved
	// fault targets can differ between runs (the range set changes with
	// reconfiguration timing).
	Rebalance bool
	// Balance runs the load-adaptive balancer (hot-range splitting,
	// leadership transfers, cohort moves) concurrently with the fault
	// schedule, with thresholds aggressive enough that the strided
	// workload triggers actions. Every layout version published while it
	// runs is checked against cluster.CheckInvariants; a violation fails
	// the scenario at the version that introduced it.
	Balance bool
}

func (o *ScenarioOptions) fillDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 3
	}
	if o.Writers <= 0 {
		o.Writers = 4
	}
	if o.Keys <= 0 {
		o.Keys = 5
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if len(o.Faults) == 0 {
		o.Faults = AllFaults
	}
	if o.CheckTimeout <= 0 {
		o.CheckTimeout = 60 * time.Second
	}
}

// ScenarioResult reports one nemesis run.
type ScenarioResult struct {
	Seed  int64
	Check lin.CheckResult
	// Steps are the nemesis actions as executed (target names included).
	Steps []string
	// Schedule is the seed-determined decision sequence: identical for
	// identical (seed, options), even where the runtime targets (who is
	// leader) differ between runs.
	Schedule []string
	Ops      int   // operations in the checked history
	Reads    int64 // completed reads
	Writes   int64 // acknowledged writes
	// BalancerActions are the balancer's completed actions (Balance mode).
	BalancerActions []BalancerAction
	// LayoutsChecked counts layout versions validated against
	// cluster.CheckInvariants during the run (Balance mode).
	LayoutsChecked int
	// History is the full recorder, for dumping failing keys.
	History *lin.Recorder
}

// ErrNotLinearizable reports a consistency violation; the scenario result
// carries the offending key and the reproducing seed.
var ErrNotLinearizable = errors.New("sim: history is not linearizable")

// RunScenario builds a cluster, runs concurrent writers under a seeded
// nemesis schedule, heals everything, and checks the recorded history for
// per-key linearizability. The returned error is ErrNotLinearizable (with
// the result still populated) on a violation, or an infrastructure error.
func RunScenario(opts ScenarioOptions) (*ScenarioResult, error) {
	opts.fillDefaults()
	sc, err := NewSpinnakerCluster(Options{
		Nodes:        opts.Nodes,
		FaultSeed:    opts.Seed,
		LinkFaults:   opts.LinkFaults,
		CommitPeriod: 5 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Stop()
	if err := sc.WaitReady(30 * time.Second); err != nil {
		return nil, err
	}

	rec := lin.NewRecorder()
	res := &ScenarioResult{Seed: opts.Seed, History: rec}

	// Stride the contended keys across the whole key domain so every
	// range (and so every cohort and leader) sees traffic.
	keys := make([]string, opts.Keys)
	domain := 1
	for i := 0; i < sc.opts.KeyWidth; i++ {
		domain *= 10
	}
	for i := range keys {
		keys[i] = sc.Key(i * (domain / opts.Keys))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var reads, writes int64
	var countMu sync.Mutex
	for w := 0; w < opts.Writers; w++ {
		c := sc.NewClient() // NewClient mutates cluster state: attach here, not in the goroutine
		// Strict writes keep the history sound: a transparent retry
		// after an ambiguous attempt can execute a write twice, and the
		// second attempt's honest reply would misrecord the first's
		// effect.
		c.SetStrictWrites(true)
		wg.Add(1)
		go func(w int, c *core.Client) {
			defer wg.Done()
			r, wr := runWriter(c, rec, keys, w, opts.Seed, stop)
			countMu.Lock()
			reads += r
			writes += wr
			countMu.Unlock()
		}(w, c)
	}

	nem := &nemesis{
		sc:      sc,
		rec:     rec,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		crashed: make(map[string]bool),
	}

	// Load-adaptive balancing under the fault schedule: the balancer
	// splits, transfers, and moves while faults fire, and every layout
	// version it (or anything else) publishes is structurally validated.
	var bal *Balancer
	var invErr error
	var layoutsChecked int
	invQuit := make(chan struct{})
	invDone := make(chan struct{})
	if opts.Balance {
		bal = sc.StartBalancer(BalancerOptions{
			Interval: 100 * time.Millisecond,
			// The strided workload spreads near-evenly, so thresholds
			// sit just below an even share: actions fire on ordinary
			// imbalance, exercising the machinery the faults attack.
			HotShare:          0.30,
			NodeHotShare:      0.45,
			MinWritesPerRound: 30,
			HotRounds:         2,
			CooldownRounds:    2,
			MaxRanges:         2 * opts.Nodes,
			ActionTimeout:     30 * time.Second,
			OnAction: func(a BalancerAction) {
				rec.Note("balancer: %s range %d (new %d, key %q, %s -> %s) err=%v",
					a.Kind, a.Range, a.New, a.Key, a.From, a.To, a.Err)
			},
		})
		go func() {
			defer close(invDone)
			var seen uint64
			for {
				select {
				case <-invQuit:
					return
				case <-time.After(20 * time.Millisecond):
				}
				l := sc.CurrentLayout()
				if l == nil || l.Version() == seen {
					continue
				}
				seen = l.Version()
				layoutsChecked++
				if err := l.CheckInvariants(); err != nil && invErr == nil {
					invErr = err
				}
			}
		}()
	} else {
		close(invDone)
	}
	var balActions []BalancerAction
	stopBalance := func() {
		if bal == nil {
			return
		}
		bal.Stop()
		balActions = bal.Actions()
		close(invQuit)
		<-invDone
		// One last validation of whatever version the run converged on.
		if l := sc.CurrentLayout(); l != nil {
			layoutsChecked++
			if err := l.CheckInvariants(); err != nil && invErr == nil {
				invErr = err
			}
		}
		bal = nil
	}

	// Live reconfiguration under the fault schedule: add a node partway
	// in, then rebalance the grown ring while faults keep firing. The
	// executor retries through fault windows; the generous deadline lets
	// it converge after the final heal.
	var rebalErr error
	rebalDone := make(chan struct{})
	if opts.Rebalance {
		go func() {
			defer close(rebalDone)
			simtime.Sleep(opts.Duration / 5)
			id, err := sc.AddNode("")
			if err != nil {
				rebalErr = err
				return
			}
			rec.Note("nemesis: add node %s", id)
			if err := sc.Rebalance(opts.Duration + 60*time.Second); err != nil {
				rebalErr = err
				return
			}
			rec.Note("nemesis: rebalanced onto %s (%d ranges)", id, sc.CurrentLayout().NumRanges())
		}()
	} else {
		close(rebalDone)
	}

	// bail tears the run down on an infrastructure error: the workload
	// stops, and the rebalance goroutine — which still touches the
	// cluster and the recorder — must finish before the caller's
	// deferred Stop races it.
	bail := func(err error) (*ScenarioResult, error) {
		close(stop)
		wg.Wait()
		<-rebalDone
		stopBalance()
		return nil, err
	}

	deadline := simtime.Now().Add(opts.Duration)
	for simtime.Now().Before(deadline) {
		fault := opts.Faults[nem.rng.Intn(len(opts.Faults))]
		if err := nem.apply(fault); err != nil {
			return bail(err)
		}
		nem.sleep(50, 200) // recovery gap between faults
	}
	// Final heal: restore connectivity, restart the dead, then let the
	// workload observe the recovered cluster before stopping.
	sc.HealAll()
	rec.Note("nemesis: heal-all")
	for id := range nem.crashed {
		if err := sc.RestartNode(id); err != nil {
			return bail(err)
		}
		rec.Note("nemesis: restart %s", id)
	}
	// An in-flight rebalance finishes against the healed cluster before
	// the workload stops observing it.
	<-rebalDone
	if rebalErr != nil {
		return bail(fmt.Errorf("sim: seed %d: rebalance under faults: %w", opts.Seed, rebalErr))
	}
	simtime.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	// The balancer (if any) finishes its in-flight action and the final
	// layout is validated before the history is judged.
	stopBalance()

	res.Steps = nem.steps
	res.Schedule = nem.schedule
	res.Reads, res.Writes = reads, writes
	res.BalancerActions, res.LayoutsChecked = balActions, layoutsChecked
	if invErr != nil {
		return res, fmt.Errorf("sim: seed %d: layout invariant violated under balancer: %w", opts.Seed, invErr)
	}
	res.Check = rec.Check(opts.CheckTimeout)
	res.Ops = res.Check.Ops
	if res.Check.Err != nil {
		return res, fmt.Errorf("sim: seed %d: linearizability check undecided: %w", opts.Seed, res.Check.Err)
	}
	if !res.Check.Linearizable {
		return res, fmt.Errorf("%w: seed %d, key %q; rerun with the same seed to reproduce\n%s\nhistory:\n%s",
			ErrNotLinearizable, opts.Seed, res.Check.BadKey, res.Check.Detail, rec.FormatKey(res.Check.BadKey))
	}
	return res, nil
}

// FormatSteps renders the nemesis schedule one action per line.
func (r *ScenarioResult) FormatSteps() string { return strings.Join(r.Steps, "\n") }

// nemesis schedules fault injections against a running cluster. Every
// random draw comes from its seeded rng and is made up front in each
// apply round, before any runtime-dependent skip, so the decision
// sequence (Schedule) is a pure function of the seed — runtime state can
// change who the targets resolve to, never what is drawn next.
type nemesis struct {
	sc       *SpinnakerCluster
	rec      *lin.Recorder
	rng      *rand.Rand
	steps    []string
	schedule []string
	crashed  map[string]bool
}

func (n *nemesis) note(format string, args ...interface{}) {
	s := fmt.Sprintf(format, args...)
	n.steps = append(n.steps, s)
	n.rec.Note("nemesis: %s", s)
}

func (n *nemesis) decide(format string, args ...interface{}) {
	n.schedule = append(n.schedule, fmt.Sprintf(format, args...))
}

// draw returns a seeded-random duration in [lo, hi) milliseconds.
func (n *nemesis) draw(lo, hi int) time.Duration {
	return time.Duration(lo+n.rng.Intn(hi-lo)) * time.Millisecond
}

// sleep waits a seeded-random duration in [lo, hi) milliseconds.
func (n *nemesis) sleep(lo, hi int) {
	simtime.Sleep(n.draw(lo, hi))
}

// apply runs one fault primitive to completion (inject, hold, undo).
func (n *nemesis) apply(fault NemesisFault) error {
	switch fault {
	case FaultIsolateLeader:
		// Draw raw so the decision stream is a pure function of the
		// seed, then resolve against the current layout (under live
		// reconfiguration the range set changes mid-run).
		raw := n.rng.Intn(1 << 30)
		hold := n.draw(150, 450)
		ids := n.sc.CurrentLayout().RangeIDs()
		r := ids[raw%len(ids)]
		n.decide("isolate-leader draw=%d hold=%v", raw, hold)
		leader := n.sc.LeaderOf(r)
		if leader == "" {
			return nil // mid-election; the decision was drawn, skip the action
		}
		n.note("isolate leader %s of range %d for %v", leader, r, hold)
		n.sc.Isolate(leader)
		simtime.Sleep(hold)
		n.sc.HealAll()
		n.note("heal")
	case FaultSplitMajority:
		raw := n.rng.Intn(1 << 30)
		perm := n.rng.Intn(1 << 30)
		hold := n.draw(150, 450)
		l := n.sc.CurrentLayout()
		ids := l.RangeIDs()
		r := ids[raw%len(ids)]
		cohort := append([]string(nil), l.Cohort(r)...)
		minorityIdx := perm % len(cohort)
		minority := []string{cohort[minorityIdx]}
		majority := append(append([]string(nil), cohort[:minorityIdx]...), cohort[minorityIdx+1:]...)
		n.decide("split draw=%d perm=%d hold=%v", raw, perm, hold)
		n.note("split range %d: %v | %v for %v", r, minority, majority, hold)
		n.sc.PartitionNodes(minority, majority)
		simtime.Sleep(hold)
		n.sc.HealAll()
		n.note("heal")
	case FaultFlapLinks:
		nodes := nodeNames(n.sc.opts.Nodes)
		flaps := 3 + n.rng.Intn(4)
		n.decide("flap n=%d", flaps)
		n.note("flap %d links", flaps)
		for i := 0; i < flaps; i++ {
			a := nodes[n.rng.Intn(len(nodes))]
			b := nodes[n.rng.Intn(len(nodes))]
			oneWay := n.rng.Intn(2) == 0
			hold := n.draw(20, 80)
			n.decide("flap %s->%s oneway=%t hold=%v", a, b, oneWay, hold)
			if a == b {
				continue
			}
			if oneWay {
				n.sc.Net.PartitionOneWay(a, b)
			} else {
				n.sc.Net.Partition(a, b)
			}
			simtime.Sleep(hold)
			n.sc.HealAll()
		}
		n.note("heal")
	case FaultCrashRestart, FaultCrashDisk:
		nodes := nodeNames(n.sc.opts.Nodes)
		victim := nodes[n.rng.Intn(len(nodes))]
		hold := n.draw(150, 450)
		disk := fault == FaultCrashDisk
		n.decide("crash %s disk=%t hold=%v", victim, disk, hold)
		if len(n.crashed) > 0 {
			return nil // keep the majority alive: one node down at a time
		}
		if err := n.sc.CrashNode(victim); err != nil {
			return nil // already gone; decision drawn, action skipped
		}
		n.crashed[victim] = true
		if disk {
			n.sc.FailDisk(victim)
			n.note("crash %s + disk failure", victim)
		} else {
			n.note("crash %s", victim)
		}
		simtime.Sleep(hold)
		if err := n.sc.RestartNode(victim); err != nil {
			return err
		}
		delete(n.crashed, victim)
		n.note("restart %s", victim)
	default:
		return fmt.Errorf("sim: unknown nemesis fault %q", fault)
	}
	return nil
}

// runWriter drives one workload client until stop closes: a mix of strong
// reads, puts of unique values, and read–CAS pairs, every operation
// recorded. Returns (completed reads, acknowledged writes).
func runWriter(c *core.Client, rec *lin.Recorder, keys []string, w int, seed int64, stop <-chan struct{}) (reads, writes int64) {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(w)))
	const col = "v"
	seq := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		// Pace the workload: contention stays high, but per-key
		// histories remain small enough for the checker to search in
		// seconds rather than minutes.
		simtime.Sleep(time.Duration(100+rng.Intn(300)) * time.Microsecond)
		key := keys[rng.Intn(len(keys))]
		switch p := rng.Float64(); {
		case p < 0.40: // strong read
			if _, ok := recordGet(rec, c, w, key, col); ok {
				reads++
			}
		case p < 0.75: // put of a unique value
			seq++
			val := fmt.Sprintf("w%d-%d", w, seq)
			op := rec.Invoke(w, lin.Op{Kind: lin.Put, Key: key, Value: val})
			v, err := c.Put(key, col, []byte(val))
			switch {
			case err == nil:
				op.OK(lin.Result{Version: v})
				writes++
			case errors.Is(err, core.ErrAmbiguous):
				// Sequenced but unconfirmed: may take effect.
				op.Unknown()
			default:
				// Strict clients only surface other errors when every
				// attempt definitely took no effect.
				op.Fail()
			}
		default: // read–CAS (the §3 read-modify-write transaction)
			ver, ok := recordGet(rec, c, w, key, col)
			if !ok {
				continue
			}
			reads++
			seq++
			val := fmt.Sprintf("w%d-%d", w, seq)
			op := rec.Invoke(w, lin.Op{Kind: lin.CondPut, Key: key, Value: val, CondVer: ver})
			v, err := c.ConditionalPut(key, col, []byte(val), ver)
			switch {
			case err == nil:
				op.OK(lin.Result{Version: v})
				writes++
			case errors.Is(err, core.ErrVersionMismatch):
				op.OK(lin.Result{Mismatch: true})
			case errors.Is(err, core.ErrAmbiguous):
				op.Unknown()
			default:
				op.Fail()
			}
		}
	}
}

// recordGet performs and records one strong read; it reports the version
// read (0 for not-found) and whether the read completed.
func recordGet(rec *lin.Recorder, c *core.Client, w int, key, col string) (uint64, bool) {
	op := rec.Invoke(w, lin.Op{Kind: lin.Get, Key: key})
	val, ver, err := c.Get(key, col, true)
	switch {
	case err == nil:
		op.OK(lin.Result{Value: string(val), Version: ver})
		return ver, true
	case errors.Is(err, core.ErrNotFound):
		op.OK(lin.Result{NotFound: true})
		return 0, true
	default:
		// A failed read has no effect and returned nothing: it
		// constrains no history.
		op.Fail()
		return 0, false
	}
}
