// spinnaker-cli talks to a spinnaker-server over its line protocol, either
// as a one-shot command or as an interactive REPL. STATUS and METRICS hit
// the server's admin HTTP plane (-http on spinnaker-server) instead of the
// line protocol.
//
// Usage:
//
//	spinnaker-cli -addr 127.0.0.1:7070 PUT user42 email x@example.com
//	spinnaker-cli -http 127.0.0.1:7071 STATUS
//	spinnaker-cli -addr 127.0.0.1:7070            # interactive
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
)

// fetchAdmin prints one admin-plane document (/status or /metrics).
func fetchAdmin(httpAddr, path string) error {
	resp, err := http.Get("http://" + httpAddr + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %s", path, resp.Status)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "spinnaker-server address")
	httpAddr := flag.String("http", "127.0.0.1:7071", "spinnaker-server admin HTTP address (STATUS/METRICS)")
	flag.Parse()

	// Admin commands go over HTTP and need no line-protocol connection.
	if args := flag.Args(); len(args) == 1 {
		switch strings.ToUpper(args[0]) {
		case "STATUS", "METRICS":
			if err := fetchAdmin(*httpAddr, "/"+strings.ToLower(args[0])); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			return
		}
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect %s: %v\n", *addr, err)
		os.Exit(1)
	}
	defer conn.Close()
	server := bufio.NewScanner(conn)
	server.Buffer(make([]byte, 0, 1<<20), 1<<20)

	send := func(line string) bool {
		if _, err := fmt.Fprintln(conn, line); err != nil {
			fmt.Fprintf(os.Stderr, "send: %v\n", err)
			return false
		}
		if !server.Scan() {
			return false
		}
		resp := server.Text()
		fmt.Println(resp)
		// Multi-line responses: "OK <n>" after ROW/NODES.
		fields := strings.Fields(line)
		if len(fields) > 0 {
			cmd := strings.ToUpper(fields[0])
			if (cmd == "ROW" || cmd == "NODES") && strings.HasPrefix(resp, "OK ") {
				var n int
				fmt.Sscanf(resp, "OK %d", &n)
				for i := 0; i < n && server.Scan(); i++ {
					fmt.Println(server.Text())
				}
			}
		}
		return true
	}

	if args := flag.Args(); len(args) > 0 {
		if !send(strings.Join(args, " ")) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("spinnaker-cli: PUT/GET/DEL/CPUT/CDEL/ROW/INCR/LEADER/NODES/CRASH/RESTART/STATUS/METRICS; ctrl-d to exit")
	stdin := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !stdin.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(stdin.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		if strings.EqualFold(line, "status") || strings.EqualFold(line, "metrics") {
			if err := fetchAdmin(*httpAddr, "/"+strings.ToLower(line)); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
			}
			continue
		}
		if !send(line) {
			return
		}
	}
}
