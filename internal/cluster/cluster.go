// Package cluster implements Spinnaker's key-based range partitioning and
// replica placement (paper §4, Figure 2). The rows of a table are
// distributed by range partitioning: each node is assigned a base key
// range, which is replicated on the next N−1 nodes in ring order (N = 3 by
// default) — a placement style similar to chained declustering. The group
// of nodes replicating a key range is its cohort; cohorts overlap, so a
// node in a 3-way replicated cluster belongs to 3 cohorts.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultReplication is the paper's default replication factor (N = 3).
const DefaultReplication = 3

// Layout is the static partitioning of the key space across a cluster.
// Leadership within each cohort is dynamic (chosen by election through the
// coordination service) and deliberately not part of the Layout.
type Layout struct {
	nodes  []string
	splits []string // splits[0] == ""; range i covers [splits[i], splits[i+1])
	n      int      // replication factor
}

// New builds a layout. splits[0] must be the empty string (the lowest key);
// range i covers [splits[i], splits[i+1]), with the last range extending to
// the top of the key space. len(splits) must equal len(nodes): node i is
// the home of base range i.
func New(nodes []string, splits []string, replication int) (*Layout, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if len(splits) != len(nodes) {
		return nil, fmt.Errorf("cluster: %d splits for %d nodes", len(splits), len(nodes))
	}
	if splits[0] != "" {
		return nil, fmt.Errorf("cluster: splits[0] must be the empty string")
	}
	if !sort.StringsAreSorted(splits) {
		return nil, fmt.Errorf("cluster: splits must be sorted")
	}
	for i := 1; i < len(splits); i++ {
		if splits[i] == splits[i-1] {
			return nil, fmt.Errorf("cluster: duplicate split %q", splits[i])
		}
	}
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(nodes) {
		return nil, fmt.Errorf("cluster: replication %d exceeds %d nodes", replication, len(nodes))
	}
	return &Layout{
		nodes:  append([]string(nil), nodes...),
		splits: append([]string(nil), splits...),
		n:      replication,
	}, nil
}

// Uniform builds a layout over the given nodes with split points spaced
// uniformly through a fixed-width decimal key space ("000000"..), matching
// the numeric row keys used by the paper's workloads. Keys are expected to
// be zero-padded to width digits.
func Uniform(nodes []string, width, replication int) (*Layout, error) {
	n := len(nodes)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	max := 1
	for i := 0; i < width; i++ {
		max *= 10
	}
	splits := make([]string, n)
	for i := 1; i < n; i++ {
		splits[i] = fmt.Sprintf("%0*d", width, i*max/n)
	}
	return New(nodes, splits, replication)
}

// Nodes returns the node ids in ring order.
func (l *Layout) Nodes() []string { return append([]string(nil), l.nodes...) }

// NumRanges returns the number of base key ranges (== number of nodes).
func (l *Layout) NumRanges() int { return len(l.nodes) }

// Replication returns the replication factor N.
func (l *Layout) Replication() int { return l.n }

// RangeOf returns the id of the base key range containing key.
func (l *Layout) RangeOf(key string) uint32 {
	// Find the last split ≤ key.
	i := sort.Search(len(l.splits), func(i int) bool { return l.splits[i] > key }) - 1
	if i < 0 {
		i = 0
	}
	return uint32(i)
}

// Cohort returns the nodes replicating range r: the home node and the next
// N−1 nodes in ring order (Figure 2).
func (l *Layout) Cohort(r uint32) []string {
	out := make([]string, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.nodes[(int(r)+i)%len(l.nodes)])
	}
	return out
}

// CohortContains reports whether node participates in range r's cohort.
func (l *Layout) CohortContains(r uint32, node string) bool {
	for _, n := range l.Cohort(r) {
		if n == node {
			return true
		}
	}
	return false
}

// RangesOf returns the ids of every range whose cohort includes node — the
// base range it is home to plus the N−1 preceding ranges it follows for.
func (l *Layout) RangesOf(node string) []uint32 {
	var out []uint32
	for r := 0; r < len(l.nodes); r++ {
		if l.CohortContains(uint32(r), node) {
			out = append(out, uint32(r))
		}
	}
	return out
}

// Bounds returns the [low, high) key bounds of range r; high == "" means
// the top of the key space.
func (l *Layout) Bounds(r uint32) (low, high string) {
	low = l.splits[r]
	if int(r)+1 < len(l.splits) {
		high = l.splits[r+1]
	}
	return low, high
}

// HomeNode returns the node that is home to base range r (the first member
// of its cohort; the usual leader in a healthy cluster).
func (l *Layout) HomeNode(r uint32) string { return l.nodes[r] }
