// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§9, Appendix D) on one box.
// Each experiment builds in-process Spinnaker and/or baseline clusters over
// simulated devices and networks, drives the paper's workload, and returns
// a printable table with the same series the paper reports.
//
// Latencies are ~10× scaled (see DESIGN.md): absolute numbers differ from
// the paper's hardware, but the comparisons — who wins, by what factor,
// where the knees and crossovers fall — are the reproduction targets.
package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"spinnaker/internal/dynamo"
	"spinnaker/internal/sim"
	"spinnaker/internal/wal"
)

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.Notes)
	}
	return b.String()
}

// Config tunes experiment cost. The defaults complete the full suite in a
// few minutes; cmd/spinnaker-bench exposes them as flags for longer runs.
type Config struct {
	// PointDuration is the measurement window per load point.
	PointDuration time.Duration
	// Threads are the closed-loop client counts swept for load curves
	// (the paper increases threads per client node by powers of two).
	Threads []int
	// Nodes is the cluster size for single-cluster experiments (the
	// paper's local testbed has 10).
	Nodes int
	// Rows is the preloaded key-space size.
	Rows int
	// ValueSize is the payload size (the paper uses 4KB).
	ValueSize int
	// Progress, when non-nil, receives one line per completed stage.
	Progress func(string)
}

// Defaults returns the standard configuration.
func Defaults() Config {
	return Config{
		PointDuration: 300 * time.Millisecond,
		Threads:       []int{1, 2, 4, 8, 16, 32},
		Nodes:         6,
		Rows:          2000,
		ValueSize:     4096,
	}
}

func (c *Config) fillDefaults() {
	d := Defaults()
	if c.PointDuration <= 0 {
		c.PointDuration = d.PointDuration
	}
	if len(c.Threads) == 0 {
		c.Threads = d.Threads
	}
	if c.Nodes <= 0 {
		c.Nodes = d.Nodes
	}
	if c.Rows <= 0 {
		c.Rows = d.Rows
	}
	if c.ValueSize <= 0 {
		c.ValueSize = d.ValueSize
	}
}

func (c *Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(fmt.Sprintf(format, args...))
	}
}

// Simulation parameters shared by the experiments.
const (
	netDelay    = 50 * time.Microsecond // rack-level switch hop
	readService = 2 * time.Millisecond  // per-read CPU+network service cost
	readCores   = 2                     // simulated service slots per node
)

// ms formats a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// tput formats ops/sec.
func tput(v float64) string { return fmt.Sprintf("%.0f", v) }

// spinOpts builds sim options for a Spinnaker cluster. Storage thresholds
// are kept small so long write workloads flush, truncate the log, and stay
// memory-flat instead of accumulating garbage that poisons later points.
func spinOpts(cfg Config, device wal.DeviceProfile) sim.Options {
	return sim.Options{
		Nodes:           cfg.Nodes,
		NetworkDelay:    netDelay,
		Device:          device,
		ReadServiceTime: readService,
		ReadConcurrency: readCores,
		FlushBytes:      512 << 10,
		SegmentBytes:    4 << 20,
		FlushInterval:   50 * time.Millisecond,
	}
}

// dynOpts builds sim options for a baseline cluster.
func dynOpts(cfg Config, device wal.DeviceProfile) sim.Options {
	return spinOpts(cfg, device)
}

// newSpin starts a ready Spinnaker cluster.
func newSpin(opts sim.Options) (*sim.SpinnakerCluster, error) {
	sc, err := sim.NewSpinnakerCluster(opts)
	if err != nil {
		return nil, err
	}
	if err := sc.WaitReady(60 * time.Second); err != nil {
		sc.Stop()
		return nil, err
	}
	return sc, nil
}

// preloadSpin writes rows 0..rows-1 with a 4KB value in column "c".
func preloadSpin(sc *sim.SpinnakerCluster, rows, valueSize int) error {
	value := sim.ValueOfSize(valueSize)
	const loaders = 8
	var wg sync.WaitGroup
	errCh := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c := sc.NewClient()
			for i := l; i < rows; i += loaders {
				if _, err := c.Put(sim.StridedKey(i, rows, 8), "c", value); err != nil {
					errCh <- fmt.Errorf("preload key %d: %w", i, err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// preloadDyn is preloadSpin for the baseline (quorum writes).
func preloadDyn(dc *sim.DynamoCluster, rows, valueSize int) error {
	value := sim.ValueOfSize(valueSize)
	const loaders = 8
	var wg sync.WaitGroup
	errCh := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			c := dc.NewClient()
			for i := l; i < rows; i += loaders {
				if _, err := c.Put(sim.StridedKey(i, rows, 8), "c", value, dynamo.Quorum); err != nil {
					errCh <- fmt.Errorf("preload key %d: %w", i, err)
					return
				}
			}
		}(l)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// Experiment names, in paper order.
var Names = []string{
	"figure8", "figure9", "table1", "figure11", "figure12",
	"figure13", "figure14", "figure15", "figure16",
	"ablation-groupcommit", "ablation-piggyback",
	"ablation-staleness", "ablation-parallelpropose",
	"ablation-batching", "scale-out", "storage-maintenance",
	"rejoin",
}

// Run executes one named experiment.
func Run(name string, cfg Config) (Table, error) {
	switch name {
	case "figure8":
		return Figure8(cfg)
	case "figure9":
		return Figure9(cfg)
	case "table1":
		return Table1(cfg)
	case "figure11":
		return Figure11(cfg)
	case "figure12":
		return Figure12(cfg)
	case "figure13":
		return Figure13(cfg)
	case "figure14":
		return Figure14(cfg)
	case "figure15":
		return Figure15(cfg)
	case "figure16":
		return Figure16(cfg)
	case "ablation-groupcommit":
		return AblationGroupCommit(cfg)
	case "ablation-piggyback":
		return AblationPiggyback(cfg)
	case "ablation-staleness":
		return AblationStaleness(cfg)
	case "ablation-parallelpropose":
		return AblationParallelPropose(cfg)
	case "ablation-batching":
		return AblationProposalBatching(cfg)
	case "scale-out":
		return ScaleOut(cfg)
	case "storage-maintenance":
		return StorageMaintenance(cfg)
	case "rejoin":
		return Rejoin(cfg)
	default:
		return Table{}, fmt.Errorf("bench: unknown experiment %q (have %v)", name, Names)
	}
}
