package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/coord"
	"spinnaker/internal/simtime"
	"spinnaker/internal/sstable"
	"spinnaker/internal/storage"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Stores bundles a node's stable storage: the shared log's segments, the
// metadata store (skipped-LSN lists, storage manifests), and per-cohort
// SSTable stores. It outlives Node instances — a restarted node is a new
// Node over the same Stores, which is how crash/recovery is exercised.
type Stores struct {
	Segments wal.SegmentStore
	Meta     wal.MetaStore

	mu        sync.Mutex
	tables    map[uint32]sstable.TableStore
	newTables func(cohort uint32) (sstable.TableStore, error)
}

// NewMemStores returns in-memory stores whose logging device uses the given
// latency profile; the stores survive Node crashes like real disks.
func NewMemStores(profile wal.DeviceProfile) *Stores {
	return &Stores{
		Segments: wal.NewMemSegmentStore(profile),
		Meta:     wal.NewMemMetaStore(),
		tables:   make(map[uint32]sstable.TableStore),
		newTables: func(uint32) (sstable.TableStore, error) {
			return sstable.NewMemTableStore(), nil
		},
	}
}

// NewFileStores returns file-backed stores rooted at dir.
func NewFileStores(dir string) (*Stores, error) {
	segs, err := wal.NewFileSegmentStore(filepath.Join(dir, "log"))
	if err != nil {
		return nil, err
	}
	meta, err := wal.NewFileMetaStore(filepath.Join(dir, "meta"))
	if err != nil {
		return nil, err
	}
	return &Stores{
		Segments: segs,
		Meta:     meta,
		tables:   make(map[uint32]sstable.TableStore),
		newTables: func(cohort uint32) (sstable.TableStore, error) {
			return sstable.NewFileTableStore(filepath.Join(dir, fmt.Sprintf("sst-%d", cohort)))
		},
	}, nil
}

// Tables returns the SSTable store for a cohort, creating it on first use.
func (s *Stores) Tables(cohort uint32) (sstable.TableStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts, ok := s.tables[cohort]; ok {
		return ts, nil
	}
	ts, err := s.newTables(cohort)
	if err != nil {
		return nil, err
	}
	s.tables[cohort] = ts
	return ts, nil
}

// Crash applies crash semantics to in-memory stores: the log loses its
// unforced tail. SSTables and metadata survive (they are written
// atomically and durably).
func (s *Stores) Crash() {
	if ms, ok := s.Segments.(*wal.MemSegmentStore); ok {
		ms.Crash()
	}
}

// Fail simulates a permanent disk failure (§6.1): log, metadata, and
// SSTables are all destroyed.
func (s *Stores) Fail() {
	if ms, ok := s.Segments.(*wal.MemSegmentStore); ok {
		ms.Fail()
	}
	if mm, ok := s.Meta.(*wal.MemMetaStore); ok {
		mm.Fail()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ts := range s.tables {
		if mt, ok := ts.(*sstable.MemTableStore); ok {
			mt.Fail()
		}
	}
}

// Config controls a Node.
type Config struct {
	// ID is the node's identity in the cluster layout and on the network.
	ID string
	// Layout is the cluster's static partitioning.
	Layout *cluster.Layout
	// CommitPeriod is the interval between the leader's asynchronous
	// commit messages (§5). The paper uses 1s in production settings and
	// evaluates 1–15s (Table 1); the in-process default is 25ms, playing
	// the role of the paper's 1s at the harness's reduced time scale.
	CommitPeriod time.Duration
	// DisableGroupCommit turns off group commit (ablation only).
	DisableGroupCommit bool
	// PiggybackCommits carries the commit LSN on propose messages
	// (App. D.1: "the commit period can be made substantially smaller
	// without much overhead by piggy-backing the commit message on
	// propose messages").
	PiggybackCommits bool
	// WriteTimeout bounds how long a client write waits for quorum.
	WriteTimeout time.Duration
	// ElectionTimeout is the retry interval while waiting for election
	// majorities or a winner's takeover.
	ElectionTimeout time.Duration
	// TakeoverTimeout bounds follower syncs during takeover.
	TakeoverTimeout time.Duration
	// RetryInterval is the back-off between catch-up attempts.
	RetryInterval time.Duration
	// HeartbeatInterval paces session heartbeats to the coordination
	// service (§4.2: normally the only traffic to it).
	HeartbeatInterval time.Duration
	// FlushInterval paces the background memtable flush / compaction /
	// log truncation daemon.
	FlushInterval time.Duration
	// FlushBytes and MaxTables tune the per-cohort storage engines.
	FlushBytes int64
	MaxTables  int
	// SegmentBytes is the shared log's roll threshold.
	SegmentBytes int64
	// ReadServiceTime simulates per-read CPU cost, bounded by
	// ReadConcurrency simulated cores (benchmarks only; zero disables).
	// It reproduces the CPU bottleneck behind Figure 8's latency knee.
	ReadServiceTime time.Duration
	ReadConcurrency int
	// SequentialPropose makes the leader force its log *before* sending
	// propose messages instead of in parallel (Fig 4). Ablation only.
	SequentialPropose bool
	// DisableProposalBatching turns off the batched replication pipeline
	// (the ProposalBatching=false ablation). The default (batching on)
	// coalesces every write sequenced since the batcher's last send into
	// a single MsgProposeBatch per peer, and followers append the whole
	// batch under one lock acquisition, issue one force, and reply with
	// one cumulative acked-through LSN. With batching disabled, the
	// leader sends one MsgPropose per write and followers ack each LSN
	// individually — the paper's Figure 4 read literally.
	DisableProposalBatching bool
}

func (c *Config) fillDefaults() {
	if c.CommitPeriod <= 0 {
		c.CommitPeriod = 25 * time.Millisecond
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 250 * time.Millisecond
	}
	if c.TakeoverTimeout <= 0 {
		c.TakeoverTimeout = 5 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 20 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.ReadConcurrency <= 0 {
		c.ReadConcurrency = 4
	}
}

// Node is one Spinnaker server: up to N cohort replicas sharing one
// write-ahead log, one coordination-service session, and one network
// endpoint (paper Figure 3: replication and remote recovery; logging and
// local recovery; commit queue; memtables and SSTables; failure detection,
// group membership, and leader election via the coordination service).
type Node struct {
	cfg       Config
	stores    *Stores
	ep        transport.Endpoint
	coordSess *coord.Session
	log       *wal.Log
	meta      wal.MetaStore
	replicas  map[uint32]*replica

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	readSem  chan struct{}

	catchupMu  sync.Mutex
	catchupSet map[uint32]bool
	catchupCh  chan *replica
}

// readGate charges the simulated per-read CPU cost (see Config).
func (n *Node) readGate() {
	if n.cfg.ReadServiceTime <= 0 {
		return
	}
	n.readSem <- struct{}{}
	simtime.Sleep(n.cfg.ReadServiceTime)
	<-n.readSem
}

// NewNode builds a node over its stable stores. Call Start to run local
// recovery and join the cluster.
func NewNode(cfg Config, stores *Stores, ep transport.Endpoint, coordSvc *coord.Service) (*Node, error) {
	cfg.fillDefaults()
	if cfg.Layout == nil {
		return nil, errors.New("core: Config.Layout is required")
	}
	log, err := wal.Open(wal.Config{
		Store:        stores.Segments,
		SegmentBytes: cfg.SegmentBytes,
		GroupCommit:  !cfg.DisableGroupCommit,
	})
	if err != nil {
		return nil, fmt.Errorf("core: open log: %w", err)
	}
	n := &Node{
		cfg:        cfg,
		stores:     stores,
		ep:         ep,
		coordSess:  coordSvc.Connect(),
		log:        log,
		meta:       stores.Meta,
		replicas:   make(map[uint32]*replica),
		stopCh:     make(chan struct{}),
		readSem:    make(chan struct{}, cfg.ReadConcurrency),
		catchupSet: make(map[uint32]bool),
		catchupCh:  make(chan *replica, 64),
	}
	for _, rangeID := range cfg.Layout.RangesOf(cfg.ID) {
		tables, err := stores.Tables(rangeID)
		if err != nil {
			return nil, err
		}
		engine, err := storage.Open(storage.Config{
			Tables:     tables,
			Meta:       stores.Meta,
			Cohort:     rangeID,
			FlushBytes: cfg.FlushBytes,
			MaxTables:  cfg.MaxTables,
		})
		if err != nil {
			return nil, fmt.Errorf("core: open engine for range %d: %w", rangeID, err)
		}
		var peers []string
		for _, member := range cfg.Layout.Cohort(rangeID) {
			if member != cfg.ID {
				peers = append(peers, member)
			}
		}
		n.replicas[rangeID] = &replica{
			n:             n,
			rangeID:       rangeID,
			peers:         peers,
			quorum:        cfg.Layout.Replication()/2 + 1,
			skipped:       wal.NewSkippedLSNs(),
			queue:         newCommitQueue(),
			engine:        engine,
			electionNudge: make(chan struct{}, 1),
		}
	}
	return n, nil
}

// Start runs local recovery (one shared scan of the log feeding all
// replicas, §6) and then joins the cluster: message handling, election
// loops, the commit timer, flush daemon, and heartbeats.
func (n *Node) Start() error {
	perCohort := make(map[uint32][]wal.Record)
	if err := n.log.Scan(func(rec wal.Record) error {
		if _, ok := n.replicas[rec.Cohort]; ok {
			perCohort[rec.Cohort] = append(perCohort[rec.Cohort], rec)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("core: recovery scan: %w", err)
	}
	for rangeID, r := range n.replicas {
		if err := r.localRecover(perCohort[rangeID]); err != nil {
			return err
		}
	}

	n.ep.SetHandler(n.handle)
	for _, r := range n.replicas {
		r := r
		n.goLoop(func() { r.electionLoop() })
	}
	n.goLoop(n.commitTimer)
	n.goLoop(n.flushLoop)
	n.goLoop(n.heartbeatLoop)
	n.goLoop(n.catchupWorker)
	return nil
}

func (n *Node) goLoop(fn func()) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		fn()
	}()
}

// handle dispatches inbound messages. It runs on per-sender link
// goroutines, so messages from one peer are processed in order.
func (n *Node) handle(m transport.Message) {
	r, ok := n.replicas[m.Cohort]
	if !ok {
		switch m.Kind {
		case MsgGet:
			n.reply(m, transport.Message{Payload: encodeGetResp(getResp{Status: StatusBadRequest})})
		case MsgGetRow:
			n.reply(m, transport.Message{Payload: encodeRowResp(rowResp{Status: StatusBadRequest})})
		case MsgWrite:
			n.reply(m, transport.Message{Payload: encodeWriteResult(writeResult{
				Status: StatusBadRequest, Detail: "node does not serve this range"})})
		}
		return
	}
	switch m.Kind {
	case MsgGet:
		req, err := decodeGetReq(m.Payload)
		if err != nil {
			return
		}
		n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeGetResp(r.get(req))})
	case MsgGetRow:
		req, err := decodeGetReq(m.Payload)
		if err != nil {
			return
		}
		n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeRowResp(r.getRow(req))})
	case MsgWrite:
		op, _, err := DecodeWriteOp(m.Payload)
		if err != nil {
			return
		}
		if r.batched() {
			// Batched pipeline: sequence now, reply on commit. The
			// link goroutine is freed immediately, so one client's
			// pipelined writes coalesce into shared batches instead
			// of running in lockstep.
			r.submitWriteAsync(op, func(out writeOutcome) {
				n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeWriteResult(writeResult{
					Status: out.status, Detail: out.detail, Versions: out.versions})})
			})
			return
		}
		out := r.submitWrite(op)
		n.reply(m, transport.Message{Cohort: m.Cohort, Payload: encodeWriteResult(writeResult{
			Status: out.status, Detail: out.detail, Versions: out.versions})})
	case MsgPropose:
		r.onPropose(m)
	case MsgProposeBatch:
		r.onProposeBatch(m)
	case MsgAck:
		r.onAck(m)
	case MsgAckBatch:
		r.onAckBatch(m)
	case MsgCommit:
		r.onCommitMsg(m)
	case MsgStateReq:
		r.onStateReq(m)
	case MsgTakeover:
		r.onTakeover(m)
	case MsgCatchupReq:
		r.onCatchupReq(m)
	}
}

// commitTimer drives the leader's periodic asynchronous commit messages
// (§5: "the interval for commit messages is called the commit period").
func (n *Node) commitTimer() {
	t := time.NewTicker(n.cfg.CommitPeriod)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			for _, r := range n.replicas {
				r.sendCommitMessages()
			}
		}
	}
}

// flushLoop runs background storage maintenance: memtable flushes, SSTable
// compaction, shared-log truncation once every cohort's writes are captured
// (§6.1), and skipped-LSN list garbage collection (§6.1.1).
func (n *Node) flushLoop() {
	t := time.NewTicker(n.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			captured := make(map[uint32]wal.LSN, len(n.replicas))
			for rangeID, r := range n.replicas {
				if _, err := r.engine.MaybeFlush(); err != nil {
					continue
				}
				cp := r.engine.Checkpoint()
				captured[rangeID] = cp
				r.mu.Lock()
				r.skipped.GC(cp)
				r.mu.Unlock()
			}
			_, _ = n.log.DropCapturedSegments(captured)
		}
	}
}

// heartbeatLoop keeps the coordination-service session alive; a crashed
// node stops heartbeating and the service expires its ephemerals, which is
// what triggers elections (§4.2).
func (n *Node) heartbeatLoop() {
	t := time.NewTicker(n.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			if err := n.coordSess.Heartbeat(); err != nil {
				return
			}
		}
	}
}

// nudgeCatchup schedules an asynchronous catch-up for a replica that
// detected it is behind; duplicates coalesce.
func (n *Node) nudgeCatchup(r *replica) {
	n.catchupMu.Lock()
	if n.catchupSet[r.rangeID] {
		n.catchupMu.Unlock()
		return
	}
	n.catchupSet[r.rangeID] = true
	n.catchupMu.Unlock()
	select {
	case n.catchupCh <- r:
	default:
		n.catchupMu.Lock()
		delete(n.catchupSet, r.rangeID)
		n.catchupMu.Unlock()
	}
}

func (n *Node) catchupWorker() {
	for {
		select {
		case <-n.stopCh:
			return
		case r := <-n.catchupCh:
			r.runCatchupLoop()
			n.catchupMu.Lock()
			delete(n.catchupSet, r.rangeID)
			n.catchupMu.Unlock()
		}
	}
}

// readEpochZnode returns the range's epoch as stored in the coordination
// service (0 if unreadable). Candidates stamp their registrations with it
// to scope election rounds.
func (n *Node) readEpochZnode(rangeID uint32) uint32 {
	data, err := n.coordSess.Get(epochPath(rangeID))
	if err != nil {
		return 0
	}
	return decodeEpoch(data)
}

// bumpEpoch atomically increments a range's epoch in the coordination
// service and returns the new value (App. B: stored in Zookeeper before
// the new leader accepts writes).
func (n *Node) bumpEpoch(rangeID uint32) (uint32, error) {
	for {
		data, ver, err := n.coordSess.GetVersion(epochPath(rangeID))
		if err != nil {
			return 0, err
		}
		next := decodeEpoch(data) + 1
		if _, err := n.coordSess.CompareAndSet(epochPath(rangeID), encodeEpoch(next), ver); err == nil {
			return next, nil
		} else if !errors.Is(err, coord.ErrBadVersion) {
			return 0, err
		}
	}
}

// readLeader returns the current leader of a range per the coordination
// service, or "".
func (n *Node) readLeader(rangeID uint32) string {
	data, err := n.coordSess.Get(leaderPath(rangeID))
	if err != nil {
		return ""
	}
	return string(data)
}

func (n *Node) send(to string, m transport.Message) {
	m.To = to
	_ = n.ep.Send(m)
}

func (n *Node) call(to string, m transport.Message) (transport.Message, error) {
	m.To = to
	return n.ep.Call(m)
}

func (n *Node) reply(req transport.Message, m transport.Message) {
	_ = n.ep.Reply(req, m)
}

func (n *Node) stopped() bool {
	select {
	case <-n.stopCh:
		return true
	default:
		return false
	}
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// Ranges returns the ids of the ranges this node replicates.
func (n *Node) Ranges() []uint32 {
	out := make([]uint32, 0, len(n.replicas))
	for r := range n.replicas {
		out = append(out, r)
	}
	return out
}

// ReplicaStats reports a replica's protocol state (tests and tooling).
func (n *Node) ReplicaStats(rangeID uint32) (ReplicaStats, bool) {
	r, ok := n.replicas[rangeID]
	if !ok {
		return ReplicaStats{}, false
	}
	return r.stats(), true
}

// LogStats exposes the shared log's append/force counters.
func (n *Node) LogStats() (appends, forces int64) { return n.log.Stats() }

// Stop shuts the node down gracefully: loops stop, the session closes
// (deleting its ephemerals), and the log is forced.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.ep.Close()
	n.coordSess.Close()
	n.wg.Wait()
	_ = n.log.Force()
}

// Crash simulates a process crash: loops die, the endpoint drops off the
// network, and the coordination session expires as the service would
// detect via missed heartbeats. Volatile state (memtables, commit queues)
// is simply abandoned with the Node object; the unforced log tail is
// discarded by Stores.Crash, which the simulation harness invokes next.
func (n *Node) Crash() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.ep.Close()
	n.coordSess.Expire()
	n.wg.Wait()
}
