// Package dynamo implements the eventually consistent baseline datastore
// the paper evaluates Spinnaker against (§2.3, §9): a Cassandra-style,
// Dynamo-derived store. It shares Spinnaker's substrates — the same
// write-ahead log, memtables, SSTables, range partitioning, and messaging —
// mirroring the paper's setup ("Spinnaker is actually derived from the
// Cassandra codebase, making for a fair comparison"), and differs exactly
// where Cassandra does:
//
//   - No cohort leader: any replica of a key range coordinates a request.
//   - Writes are sent to all N replicas; a weak write waits for 1 ack, a
//     quorum write for 2 (§9: "Both are sent to all 3 replicas, but a weak
//     write waits for an ack from just 1 replica, whereas a quorum write
//     waits for acks from 2").
//   - A weak read accesses 1 replica; a quorum read accesses 2 and checks
//     for conflicts, resolved using timestamps; read repair pushes the
//     newest version to stale replicas in the background.
//   - There is no quorum-based recovery: a restarted replica replays its
//     local log and rejoins immediately, relying on read repair to
//     converge (the paper: "the lack of a quorum-based recovery algorithm
//     also means there is no guarantee that a replica will be brought up
//     to a consistent state after a node failure").
package dynamo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/core"
	"spinnaker/internal/kv"
	"spinnaker/internal/simtime"
	"spinnaker/internal/sstable"
	"spinnaker/internal/storage"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Message kinds (distinct space from core's so mixed tooling cannot
// confuse them).
const (
	// MsgCoordWrite is a client write to a coordinating replica.
	MsgCoordWrite uint8 = 100 + iota
	// MsgCoordRead is a client read to a coordinating replica.
	MsgCoordRead
	// MsgReplWrite is a coordinator's write to one replica.
	MsgReplWrite
	// MsgReplRead is a coordinator's read of one replica.
	MsgReplRead
	// MsgRepair is an asynchronous read-repair push.
	MsgRepair
)

// ConsistencyLevel selects how many replicas must respond.
type ConsistencyLevel uint8

// Consistency levels (§9).
const (
	// Weak waits for 1 replica (weak reads/writes).
	Weak ConsistencyLevel = 1
	// Quorum waits for 2 of 3 replicas.
	Quorum ConsistencyLevel = 2
)

// ErrUnavailable reports that too few replicas responded in time.
var ErrUnavailable = errors.New("dynamo: not enough replicas responded")

// ErrNotFound reports a missing row/column.
var ErrNotFound = errors.New("dynamo: not found")

// Config controls a Node.
type Config struct {
	ID     string
	Layout *cluster.Layout
	// DisableGroupCommit turns off group commit (kept symmetric with
	// Spinnaker for fair benches).
	DisableGroupCommit bool
	// ReplicaTimeout bounds how long a coordinator waits for acks.
	ReplicaTimeout time.Duration
	// ReadServiceTime simulates per-read CPU cost; ReadConcurrency is
	// the simulated core count (benchmarks only; zero disables).
	ReadServiceTime time.Duration
	ReadConcurrency int
	// FlushBytes / MaxTables / SegmentBytes tune storage, as in core.
	FlushBytes    int64
	MaxTables     int
	SegmentBytes  int64
	FlushInterval time.Duration
}

func (c *Config) fillDefaults() {
	if c.ReplicaTimeout <= 0 {
		c.ReplicaTimeout = 2 * time.Second
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.ReadConcurrency <= 0 {
		c.ReadConcurrency = 4
	}
}

// Node is one baseline server: per-range storage engines over a shared
// log, with coordinator logic for client requests.
type Node struct {
	cfg     Config
	ep      transport.Endpoint
	log     *wal.Log
	engines map[uint32]*storage.Engine
	seq     atomic.Uint64 // local LSN sequence for log records
	readRot atomic.Uint64 // rotates replica choice for reads
	clock   func() int64  // timestamp source (exposed for skew tests)
	readSem chan struct{}

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// readGate charges the simulated per-read CPU cost, bounded by the node's
// simulated core count; the benchmark harness uses it to reproduce the
// latency knee of Figure 8 ("the CPU and network [were] the bottleneck").
func (n *Node) readGate() { n.readGateFor(n.cfg.ReadServiceTime) }

func (n *Node) readGateFor(d time.Duration) {
	if d <= 0 {
		return
	}
	n.readSem <- struct{}{}
	simtime.Sleep(d)
	<-n.readSem
}

// NewNode builds a baseline node over its stores. Stores are reused from
// core so the two systems share identical storage behaviour.
func NewNode(cfg Config, stores *core.Stores, ep transport.Endpoint) (*Node, error) {
	cfg.fillDefaults()
	if cfg.Layout == nil {
		return nil, errors.New("dynamo: Config.Layout is required")
	}
	log, err := wal.Open(wal.Config{
		Store:        stores.Segments,
		SegmentBytes: cfg.SegmentBytes,
		GroupCommit:  !cfg.DisableGroupCommit,
	})
	if err != nil {
		return nil, fmt.Errorf("dynamo: open log: %w", err)
	}
	n := &Node{
		cfg:     cfg,
		ep:      ep,
		log:     log,
		engines: make(map[uint32]*storage.Engine),
		clock:   func() int64 { return time.Now().UnixNano() },
		readSem: make(chan struct{}, cfg.ReadConcurrency),
		stopCh:  make(chan struct{}),
	}
	for _, rangeID := range cfg.Layout.RangesOf(cfg.ID) {
		tables, err := stores.Tables(rangeID)
		if err != nil {
			return nil, err
		}
		engine, err := storage.Open(storage.Config{
			Tables: tables, Meta: stores.Meta, Cohort: rangeID,
			FlushBytes: cfg.FlushBytes, MaxTables: cfg.MaxTables,
		})
		if err != nil {
			return nil, err
		}
		n.engines[rangeID] = engine
	}
	return n, nil
}

// Start replays the local log (local recovery only — no catch-up phase,
// faithful to the baseline) and begins serving.
func (n *Node) Start() error {
	var maxSeq uint64
	if err := n.log.Scan(func(rec wal.Record) error {
		if rec.LSN.Seq() > maxSeq {
			maxSeq = rec.LSN.Seq()
		}
		engine, ok := n.engines[rec.Cohort]
		if !ok || rec.Type != wal.RecWrite {
			return nil
		}
		e, _, err := kv.DecodeEntry(rec.Payload)
		if err != nil {
			return nil // skip corrupt entries; anti-entropy will repair
		}
		e.Cell.LSN = rec.LSN // the local stamp assigned at write time
		if e.Cell.LSN <= engine.Checkpoint() {
			return nil
		}
		engine.Apply(e)
		return nil
	}); err != nil {
		return fmt.Errorf("dynamo: recovery scan: %w", err)
	}
	n.seq.Store(maxSeq)
	n.ep.SetHandler(n.handle)
	n.wg.Add(1)
	go n.flushLoop()
	return nil
}

func (n *Node) flushLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case <-t.C:
			captured := make(map[uint32]wal.LSN, len(n.engines))
			for rangeID, e := range n.engines {
				// The baseline keeps the paper's unconditional
				// tombstone GC: it has no log-replay catch-up
				// contract to protect (anti-entropy is quorum
				// read-repair), so no watermark applies.
				if _, _, err := e.MaybeFlush(sstable.DropAllTombstones); err != nil {
					continue
				}
				captured[rangeID] = e.Checkpoint()
			}
			_, _ = n.log.DropCapturedSegments(captured)
		}
	}
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// Stop shuts the node down.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.ep.Close()
	n.wg.Wait()
	_ = n.log.Force()
}

// Crash simulates a process crash (volatile state abandoned).
func (n *Node) Crash() {
	n.stopOnce.Do(func() { close(n.stopCh) })
	n.ep.Close()
	n.wg.Wait()
}

// handle dispatches inbound messages.
func (n *Node) handle(m transport.Message) {
	switch m.Kind {
	case MsgCoordWrite:
		n.coordWrite(m)
	case MsgCoordRead:
		n.coordRead(m)
	case MsgReplWrite:
		n.replWrite(m)
	case MsgReplRead:
		n.replRead(m)
	case MsgRepair:
		n.applyEntryPayload(m.Cohort, m.Payload, false)
	}
}

// appendEntry decodes, stamps, and appends an encoded entry to the shared
// log without forcing it, returning the logical end offset to force through
// and the stamped entry. The cell is stamped with this replica's local
// record LSN so the storage engine's checkpointing, replay guard, and log
// truncation work; conflict resolution remains timestamp-based
// (kv.Cell.Newer).
func (n *Node) appendEntry(rangeID uint32, payload []byte) (end int64, e kv.Entry, ok bool) {
	if _, exists := n.engines[rangeID]; !exists {
		return 0, kv.Entry{}, false
	}
	e, _, err := kv.DecodeEntry(payload)
	if err != nil {
		return 0, kv.Entry{}, false
	}
	lsn := wal.MakeLSN(0, n.seq.Add(1))
	e.Cell.LSN = lsn
	end, err = n.log.Append(wal.Record{Cohort: rangeID, Type: wal.RecWrite, LSN: lsn, Payload: payload})
	if err != nil {
		return 0, kv.Entry{}, false
	}
	return end, e, true
}

// applyEntryPayload durably applies an encoded entry to the range's
// engine; the write path forces the log (writes "logged to disk" per §9.2),
// read repair does not (it is a background hint).
func (n *Node) applyEntryPayload(rangeID uint32, payload []byte, force bool) bool {
	end, e, ok := n.appendEntry(rangeID, payload)
	if !ok {
		return false
	}
	if force {
		if err := n.log.ForceTo(end); err != nil {
			return false
		}
	}
	n.engines[rangeID].Apply(e)
	return true
}

// replWrite handles a coordinator's write to this replica: log, force,
// apply to memtable, ack. The force and ack run off the link goroutine so
// concurrent writes share group-commit forces, exactly as Spinnaker's
// followers do (both stores reuse the same log manager, App. C).
func (n *Node) replWrite(m transport.Message) {
	end, e, ok := n.appendEntry(m.Cohort, m.Payload)
	if !ok {
		n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: []byte{0}})
		return
	}
	go func() {
		if err := n.log.ForceTo(end); err != nil {
			n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: []byte{0}})
			return
		}
		n.engines[m.Cohort].Apply(e)
		n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: []byte{1}})
	}()
}

// replRead returns this replica's newest cell for the key.
func (n *Node) replRead(m transport.Message) {
	row, col, err := decodeKey(m.Payload)
	if err != nil {
		return
	}
	engine, ok := n.engines[m.Cohort]
	if !ok {
		return
	}
	n.readGate()
	cell, found := engine.Get(kv.Key{Row: row, Col: col})
	e := kv.Entry{Key: kv.Key{Row: row, Col: col}, Cell: cell}
	payload := []byte{0}
	if found {
		payload = []byte{1}
	}
	n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: kv.EncodeEntry(payload, e)})
}

// coordWrite coordinates a client write: stamp it with the local clock,
// send to all N replicas, wait for W acks.
func (n *Node) coordWrite(m transport.Message) {
	req, err := decodeWriteReq(m.Payload)
	if err != nil {
		return
	}
	ts := n.clock()
	entry := kv.Entry{
		Key: kv.Key{Row: req.Row, Col: req.Col},
		Cell: kv.Cell{
			Value: req.Value, Version: uint64(ts), Timestamp: ts, Deleted: req.Delete,
		},
	}
	payload := kv.EncodeEntry(nil, entry)
	cohort := n.cfg.Layout.Cohort(m.Cohort)

	acks := make(chan bool, len(cohort))
	for _, member := range cohort {
		if member == n.cfg.ID {
			go func() { acks <- n.applyEntryPayload(m.Cohort, payload, true) }()
			continue
		}
		go func(member string) {
			resp, err := n.ep.Call(transport.Message{
				To: member, Kind: MsgReplWrite, Cohort: m.Cohort, Payload: payload,
			})
			acks <- err == nil && len(resp.Payload) > 0 && resp.Payload[0] == 1
		}(member)
	}
	need := int(req.Level)
	got := 0
	deadline := time.After(n.cfg.ReplicaTimeout)
	for i := 0; i < len(cohort) && got < need; i++ {
		select {
		case ok := <-acks:
			if ok {
				got++
			}
		case <-deadline:
			i = len(cohort)
		}
	}
	status := byte(0)
	if got >= need {
		status = 1
	}
	var ver [9]byte
	ver[0] = status
	binary.LittleEndian.PutUint64(ver[1:], uint64(ts))
	n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: ver[:]})
}

// coordRead coordinates a client read. A weak read accesses just one
// replica; a quorum read accesses two and checks for conflicts caused by
// eventual consistency (§9.1) — resolved by timestamp, with read repair
// pushing the newest version to stale replicas asynchronously.
func (n *Node) coordRead(m transport.Message) {
	req, err := decodeReadReq(m.Payload)
	if err != nil {
		return
	}
	cohort := n.cfg.Layout.Cohort(m.Cohort)
	keyPayload := encodeKey(req.Row, req.Col)
	need := int(req.Level)
	if need > len(cohort) {
		need = len(cohort)
	}

	// Choose exactly R replicas to read: the local copy first (the
	// coordinator is a cohort member), then rotate through the others.
	targets := make([]string, 0, need)
	for _, member := range cohort {
		if member == n.cfg.ID {
			targets = append(targets, member)
			break
		}
	}
	rot := n.readRot.Add(1)
	for i := 0; len(targets) < need && i < len(cohort); i++ {
		member := cohort[(int(rot)+i)%len(cohort)]
		already := false
		for _, t := range targets {
			if t == member {
				already = true
			}
		}
		if !already {
			targets = append(targets, member)
		}
	}

	type replicaResult struct {
		member string
		found  bool
		entry  kv.Entry
		ok     bool
	}
	results := make(chan replicaResult, len(targets))
	for _, member := range targets {
		if member == n.cfg.ID {
			go func() {
				engine := n.engines[m.Cohort]
				if engine == nil {
					results <- replicaResult{member: n.cfg.ID}
					return
				}
				n.readGate()
				cell, found := engine.Get(kv.Key{Row: req.Row, Col: req.Col})
				results <- replicaResult{
					member: n.cfg.ID, found: found, ok: true,
					entry: kv.Entry{Key: kv.Key{Row: req.Row, Col: req.Col}, Cell: cell},
				}
			}()
			continue
		}
		go func(member string) {
			resp, err := n.ep.Call(transport.Message{
				To: member, Kind: MsgReplRead, Cohort: m.Cohort, Payload: keyPayload,
			})
			if err != nil || len(resp.Payload) < 1 {
				results <- replicaResult{member: member}
				return
			}
			found := resp.Payload[0] == 1
			e, _, err := kv.DecodeEntry(resp.Payload[1:])
			if err != nil {
				results <- replicaResult{member: member}
				return
			}
			results <- replicaResult{member: member, found: found, entry: e, ok: true}
		}(member)
	}

	// A quorum read must hear from both replicas before resolving.
	var got []replicaResult
	deadline := time.After(n.cfg.ReplicaTimeout)
	for i := 0; i < len(targets) && len(got) < need; i++ {
		select {
		case res := <-results:
			if res.ok {
				got = append(got, res)
			}
		case <-deadline:
			i = len(targets)
		}
	}
	if len(got) < need {
		n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: []byte{0}})
		return
	}

	// Processing the extra replica's response and checking it for
	// conflicts costs coordinator CPU (Cassandra compares digests);
	// charge half a service time per additional response.
	if len(got) > 1 {
		n.readGateFor(n.cfg.ReadServiceTime / 2 * time.Duration(len(got)-1))
	}

	// Conflict resolution: newest timestamp wins (§9: "conflicts are
	// resolved using timestamps").
	var newest kv.Entry
	var newestFound bool
	for _, res := range got {
		if !res.found {
			continue
		}
		if !newestFound || res.entry.Cell.Newer(newest.Cell) {
			newest = res.entry
			newestFound = true
		}
	}

	// Read repair: push the winning version to replicas that returned an
	// older one (the "anti-entropy measures like read-repair" of §2.3).
	if newestFound {
		repair := kv.EncodeEntry(nil, newest)
		for _, res := range got {
			if res.found && res.entry.Cell.Timestamp == newest.Cell.Timestamp {
				continue
			}
			if res.member == n.cfg.ID {
				n.applyEntryPayload(m.Cohort, repair, false)
				continue
			}
			n.ep.Send(transport.Message{
				To: res.member, Kind: MsgRepair, Cohort: m.Cohort, Payload: repair,
			})
		}
	}

	if !newestFound || newest.Cell.Deleted {
		n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: []byte{2}}) // found-nothing
		return
	}
	n.ep.Reply(m, transport.Message{Cohort: m.Cohort, Payload: kv.EncodeEntry([]byte{1}, newest)})
}
