// spinnaker-bench regenerates the paper's evaluation tables and figures
// (§9 and Appendix D) from the command line, with adjustable measurement
// windows for longer, lower-variance runs than the go test harness.
//
// Usage:
//
//	spinnaker-bench -all                 # every experiment, paper order
//	spinnaker-bench -exp figure9        # one experiment
//	spinnaker-bench -exp table1 -point 500ms -nodes 10
//	spinnaker-bench -list               # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"spinnaker/internal/bench"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every experiment in paper order")
		exp     = flag.String("exp", "", "experiment name (see -list)")
		list    = flag.Bool("list", false, "list experiment names and exit")
		point   = flag.Duration("point", 300*time.Millisecond, "measurement window per load point")
		nodes   = flag.Int("nodes", 6, "cluster size for single-cluster experiments")
		rows    = flag.Int("rows", 2000, "preloaded key-space size")
		value   = flag.Int("value", 4096, "value size in bytes (paper: 4KB)")
		threads = flag.String("threads", "1,2,4,8,16,32", "comma-separated client thread counts")
		quiet   = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	if *list {
		for _, name := range bench.Names {
			fmt.Println(name)
		}
		return
	}

	cfg := bench.Config{
		PointDuration: *point,
		Nodes:         *nodes,
		Rows:          *rows,
		ValueSize:     *value,
	}
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad -threads entry %q\n", part)
			os.Exit(2)
		}
		cfg.Threads = append(cfg.Threads, n)
	}
	if !*quiet {
		cfg.Progress = func(line string) { fmt.Fprintf(os.Stderr, "  .. %s\n", line) }
	}

	var names []string
	switch {
	case *all:
		names = bench.Names
	case *exp != "":
		names = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "need -all or -exp <name>; see -list")
		os.Exit(2)
	}

	for _, name := range names {
		start := time.Now()
		table, err := bench.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s(completed in %v)\n", table.Format(), time.Since(start).Round(time.Millisecond))
	}
}
