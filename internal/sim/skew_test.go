package sim

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/lin"
)

// The zipfian skew experiment. The network model charges a serialized
// per-message receive cost on every link, so a link delivers at most
// 1/MessageCost messages per second. With replication 3 on 3 nodes and
// proposal batching disabled, every committed write costs one propose on
// each leader→follower link and one ack on each follower→leader link:
//
//   - all load on ONE leader: that leader's two outbound links each carry
//     every propose, capping cluster throughput at 1/MessageCost;
//   - leaders spread across all three nodes: each ordered link carries a
//     mix of proposes and acks totalling ~2/3 of the write volume, so the
//     cluster sustains ~1.5/MessageCost.
//
// A zipfian workload aimed at one range therefore runs at ~2/3 of the
// uniform ceiling until the balancer splits the hot range at its
// load-weighted median key and spreads leadership — exactly the hot-spot
// mechanics the paper's range-partitioned design is built to absorb.

func skewOpts() Options {
	return Options{
		Nodes:        3,
		Replication:  3,
		NetworkDelay: 5 * time.Microsecond,
		MessageCost:  200 * time.Microsecond,
		// One message per proposal: batching would let a single link
		// carry unbounded write volume and mask the hot leader.
		DisableProposalBatching: true,
		WriteTimeout:            2 * time.Second,
	}
}

// runPutLoad starts nWriters closed-loop writers; pickKey chooses each
// write's row. Returns the success counter and a stop/drain pair.
func runPutLoad(t *testing.T, sc *SpinnakerCluster, nWriters int, seed int64,
	pickKey func(rng *rand.Rand) string) (*int64, chan struct{}, *sync.WaitGroup) {
	t.Helper()
	ops := new(int64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	val := make([]byte, 64)
	for w := 0; w < nWriters; w++ {
		c := sc.NewClient() // attach outside the goroutine
		wg.Add(1)
		go func(w int, c *core.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Put(pickKey(rng), "v", val); err == nil {
					atomic.AddInt64(ops, 1)
				} else {
					// Brief elections during balancer transfers surface
					// as errors; back off instead of spinning on them.
					time.Sleep(time.Millisecond)
				}
			}
		}(w, c)
	}
	return ops, stop, &wg
}

// rate measures the success throughput (ops/sec) over a window.
func rate(ops *int64, window time.Duration) float64 {
	before := atomic.LoadInt64(ops)
	start := time.Now()
	time.Sleep(window)
	return float64(atomic.LoadInt64(ops)-before) / time.Since(start).Seconds()
}

// measureUniformBaseline runs the same physics with uniformly spread keys
// and returns the sustained throughput.
func measureUniformBaseline(t *testing.T, domain int) float64 {
	t.Helper()
	sc, err := NewSpinnakerCluster(skewOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	pick := func(rng *rand.Rand) string { return sc.Key(rng.Intn(domain)) }
	ops, stop, wg := runPutLoad(t, sc, 24, 1000, pick)
	time.Sleep(700 * time.Millisecond) // warm up past elections and cold caches
	r := rate(ops, 1500*time.Millisecond)
	close(stop)
	wg.Wait()
	return r
}

// hotRangeKeys maps zipf ranks, in key order, onto the key span of the
// range covering the middle of the domain, so rank order = key order and
// the load-weighted median key splits the observed load roughly in half.
// Returns the keys, the hot range's bounds, and the initial range count.
func hotRangeKeys(t *testing.T, sc *SpinnakerCluster, domain, items int) ([]string, string, string, int) {
	t.Helper()
	layout := sc.CurrentLayout()
	hotRange := layout.RangeOf(sc.Key(domain / 2))
	lowS, highS := layout.Bounds(hotRange)
	lowN, err := strconv.Atoi(lowS)
	if err != nil {
		t.Fatalf("non-numeric low bound %q", lowS)
	}
	highN := domain
	if highS != "" {
		if highN, err = strconv.Atoi(highS); err != nil {
			t.Fatalf("non-numeric high bound %q", highS)
		}
	}
	keys := make([]string, items)
	span := highN - lowN - 2
	for r := 0; r < items; r++ {
		keys[r] = sc.Key(lowN + 1 + r*span/items)
	}
	return keys, lowS, highS, layout.NumRanges()
}

// skewPoint runs one θ point of the sweep: skewed load into one range,
// pre-balancer rate, balancer on, post rate. No linearizability session
// and no assertions — the regression test covers those at θ=0.99; this
// generates EXPERIMENTS.md's sweep table.
func skewPoint(t *testing.T, theta float64, domain int) (pre, post float64, ranges0, ranges1 int) {
	t.Helper()
	sc, err := NewSpinnakerCluster(skewOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	const hotItems = 1000
	hotKeys, _, _, initialRanges := hotRangeKeys(t, sc, domain, hotItems)

	ops := new(int64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	val := make([]byte, 64)
	for w := 0; w < 24; w++ {
		c := sc.NewClient()
		z := NewZipf(rand.New(rand.NewSource(5000+int64(w))), hotItems, theta)
		wg.Add(1)
		go func(c *core.Client, z *Zipf) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Put(hotKeys[z.Next()], "v", val); err == nil {
					atomic.AddInt64(ops, 1)
				} else {
					time.Sleep(time.Millisecond)
				}
			}
		}(c, z)
	}

	time.Sleep(1200 * time.Millisecond)
	pre = rate(ops, 700*time.Millisecond)
	bal := sc.StartBalancer(BalancerOptions{
		Interval:          150 * time.Millisecond,
		HotShare:          0.45,
		MinWritesPerRound: 150,
		HotRounds:         2,
		CooldownRounds:    2,
		MaxRanges:         8,
		ActionTimeout:     20 * time.Second,
	})
	time.Sleep(6 * time.Second)
	post = rate(ops, 2*time.Second)
	close(stop)
	wg.Wait()
	bal.Stop()
	return pre, post, initialRanges, sc.CurrentLayout().NumRanges()
}

// TestZipfianSkewSweep regenerates EXPERIMENTS.md's θ sweep table. It is
// a multi-minute, timing-sensitive throughput experiment, so it only runs
// when asked for (and never under -short or -race):
//
//	SPINNAKER_SKEW_SWEEP=1 go test -run TestZipfianSkewSweep -v -timeout 900s ./internal/sim/
func TestZipfianSkewSweep(t *testing.T) {
	if os.Getenv("SPINNAKER_SKEW_SWEEP") == "" {
		t.Skip("set SPINNAKER_SKEW_SWEEP=1 to run the θ sweep (see EXPERIMENTS.md)")
	}
	domain := 1
	for i := 0; i < 8; i++ {
		domain *= 10
	}
	uniRate := measureUniformBaseline(t, domain)
	t.Logf("uniform baseline: %.0f ops/s", uniRate)
	t.Logf("%-6s %8s %8s %8s %8s %8s", "theta", "pre", "pre%", "post", "post%", "ranges")
	for _, theta := range []float64{0.5, 0.8, 0.99, 1.2} {
		pre, post, r0, r1 := skewPoint(t, theta, domain)
		t.Logf("%-6.2f %8.0f %7.0f%% %8.0f %7.0f%% %4d->%d",
			theta, pre, 100*pre/uniRate, post, 100*post/uniRate, r0, r1)
	}
}

// TestZipfianSkewBalancer is the end-to-end skew regression: a θ=0.99
// zipfian workload concentrated inside one range throttles the cluster to
// a fraction of its uniform-load throughput; the balancer must split the
// hot range at the load-weighted median and spread leadership until
// throughput recovers to at least 70% of the uniform baseline — while a
// linearizability-tracked client session stays correct across every
// split, move, and leadership transfer.
func TestZipfianSkewBalancer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second throughput experiment")
	}
	domain := 1
	for i := 0; i < 8; i++ { // default KeyWidth
		domain *= 10
	}
	uniRate := measureUniformBaseline(t, domain)
	if uniRate < 1000 {
		t.Fatalf("uniform baseline implausibly low: %.0f ops/s", uniRate)
	}

	sc, err := NewSpinnakerCluster(skewOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	const hotItems = 1000
	hotKeys, lowS, highS, initialRanges := hotRangeKeys(t, sc, domain, hotItems)

	ops := new(int64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	val := make([]byte, 64)
	for w := 0; w < 24; w++ {
		c := sc.NewClient()
		z := NewZipf(rand.New(rand.NewSource(3000+int64(w))), hotItems, 0.99)
		wg.Add(1)
		go func(c *core.Client, z *Zipf) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Put(hotKeys[z.Next()], "v", val); err == nil {
					atomic.AddInt64(ops, 1)
				} else {
					time.Sleep(time.Millisecond)
				}
			}
		}(c, z)
	}

	// Two linearizability-tracked sessions contend on keys adjacent to
	// the two hottest zipf keys — same ranges, so they ride through every
	// split — plus one cold key in another range. They must not share
	// keys with the untracked load writers: the checker can only judge
	// histories whose every write it observed.
	rec := lin.NewRecorder()
	n0, _ := strconv.Atoi(hotKeys[0])
	n1, _ := strconv.Atoi(hotKeys[1])
	linKeys := []string{
		sc.Key(n0 + 1),
		sc.Key(n1 + 1),
		sc.Key(10),
	}
	for w := 0; w < 2; w++ {
		c := sc.NewClient()
		c.SetStrictWrites(true)
		wg.Add(1)
		go func(w int, c *core.Client) {
			defer wg.Done()
			runWriter(c, rec, linKeys, w, 77, stop)
		}(w, c)
	}

	time.Sleep(1200 * time.Millisecond) // settle into the skewed steady state
	preRate := rate(ops, 700*time.Millisecond)
	if preRate >= 0.9*uniRate {
		t.Fatalf("skew did not throttle throughput: skewed %.0f vs uniform %.0f ops/s", preRate, uniRate)
	}

	bal := sc.StartBalancer(BalancerOptions{
		Interval:          150 * time.Millisecond,
		HotShare:          0.45,
		MinWritesPerRound: 150,
		HotRounds:         2,
		CooldownRounds:    2,
		MaxRanges:         8,
		ActionTimeout:     20 * time.Second,
	})
	defer bal.Stop()

	// The first split must land within a bounded number of rounds.
	var firstSplit *BalancerAction
	deadline := time.Now().Add(12 * time.Second)
	for firstSplit == nil {
		if time.Now().After(deadline) {
			t.Fatalf("balancer never split the hot range; actions: %+v", bal.Actions())
		}
		for _, a := range bal.Actions() {
			if a.Kind == "split" && a.Err == nil {
				split := a
				firstSplit = &split
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if firstSplit.Round > 40 {
		t.Fatalf("first split took %d rounds, want <= 40", firstSplit.Round)
	}
	if firstSplit.Key <= lowS || (highS != "" && firstSplit.Key >= highS) {
		t.Fatalf("split key %q outside hot range [%q,%q)", firstSplit.Key, lowS, highS)
	}

	// Let the balancer finish spreading load, then measure the recovered
	// steady state.
	time.Sleep(4 * time.Second)
	postRate := rate(ops, 2*time.Second)

	close(stop)
	wg.Wait()
	bal.Stop()

	finalRanges := sc.CurrentLayout().NumRanges()
	t.Logf("uniform %.0f ops/s; skewed pre %.0f (%.0f%%), post %.0f (%.0f%%); ranges %d -> %d; actions: %+v",
		uniRate, preRate, 100*preRate/uniRate, postRate, 100*postRate/uniRate,
		initialRanges, finalRanges, bal.Actions())
	if finalRanges <= initialRanges {
		t.Fatalf("layout still has %d ranges", finalRanges)
	}
	if postRate < 0.70*uniRate {
		t.Fatalf("throughput recovered to only %.0f%% of uniform (%.0f vs %.0f ops/s), want >= 70%%",
			100*postRate/uniRate, postRate, uniRate)
	}
	if postRate <= preRate {
		t.Fatalf("no recovery: pre %.0f, post %.0f ops/s", preRate, postRate)
	}

	check := rec.Check(60 * time.Second)
	if check.Err != nil {
		t.Fatalf("linearizability check undecided: %v", check.Err)
	}
	if !check.Linearizable {
		t.Fatalf("history not linearizable: key %q\n%s\n%s",
			check.BadKey, check.Detail, rec.FormatKey(check.BadKey))
	}
	t.Logf("linearizability: %d ops checked green", check.Ops)
}
