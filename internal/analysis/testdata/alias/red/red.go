// Package red violates both aliascheck contracts: mutating a value
// decoded by a //spinnaker:aliases producer, and retaining a borrowed
// parameter from a //spinnaker:noretain body.
package red

// Msg is a decoded view over a wire buffer.
type Msg struct {
	Key   string
	Value []byte
}

// decodeShared returns a Msg whose Value aliases b.
//
//spinnaker:aliases
func decodeShared(b []byte) (Msg, error) {
	return Msg{Key: "k", Value: b[:len(b):len(b)]}, nil
}

// Mutate writes through a decoded-shared view and appends to a slice
// rooted in it.
func Mutate(b []byte) []byte {
	m, _ := decodeShared(b)
	m.Value[0] = 1   // WANT aliascheck
	v := m.Value     // taint propagates through the rebinding
	v = append(v, 2) // WANT aliascheck
	return v
}

type sink struct{ held []byte }

var global *sink

// Stash borrows p but leaks it twice.
//
//spinnaker:noretain
func Stash(p []byte) []byte {
	s := &sink{}
	s.held = p // WANT aliascheck
	global = s
	return p // WANT aliascheck
}
