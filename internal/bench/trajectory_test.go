package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testReport(mut func(*Report)) Report {
	r := Report{
		Schema:    ReportSchema,
		GoVersion: "go0.0",
		OSArch:    "test/test",
		Scenarios: []Scenario{
			{Name: "pipelined-writers-64", Kind: "cluster", Writers: 64, OpsPerSec: 30000, AllocsPerOp: 40},
			{Name: "codec-propose-roundtrip", Kind: "micro", OpsPerSec: 2e6, AllocsPerOp: 4},
		},
	}
	if mut != nil {
		mut(&r)
	}
	return r
}

func TestValidateReport(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string // substring of the error; empty = valid
	}{
		{"valid", nil, ""},
		{"bad schema", func(r *Report) { r.Schema = "nope/v9" }, "unknown report schema"},
		{"no scenarios", func(r *Report) { r.Scenarios = nil }, "no scenarios"},
		{"empty name", func(r *Report) { r.Scenarios[0].Name = "" }, "empty name"},
		{"dup name", func(r *Report) { r.Scenarios[1].Name = r.Scenarios[0].Name }, "duplicate scenario"},
		{"bad kind", func(r *Report) { r.Scenarios[0].Kind = "macro" }, "unknown kind"},
		{"no throughput", func(r *Report) { r.Scenarios[0].OpsPerSec = 0 }, "no throughput"},
		{"negative allocs", func(r *Report) { r.Scenarios[0].AllocsPerOp = -1 }, "negative allocs"},
	}
	for _, c := range cases {
		err := validateReport(testReport(c.mut))
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestWriteReadReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_0001.json")
	want := testReport(nil)
	if err := WriteReport(path, want); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatalf("ReadReport: %v", err)
	}
	if len(got.Scenarios) != len(want.Scenarios) || got.Scenarios[0] != want.Scenarios[0] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, want)
	}
	if err := WriteReport(filepath.Join(t.TempDir(), "bad.json"), testReport(func(r *Report) { r.Scenarios = nil })); err == nil {
		t.Fatal("WriteReport accepted an invalid report")
	}
}

func writeGuardDir(t *testing.T, reports ...Report) string {
	t.Helper()
	dir := t.TempDir()
	for i, r := range reports {
		name := filepath.Join(dir, "BENCH_000"+string(rune('1'+i))+".json")
		if err := WriteReport(name, r); err != nil {
			t.Fatalf("WriteReport %s: %v", name, err)
		}
	}
	return dir
}

func TestGuardBaselineOnly(t *testing.T) {
	dir := writeGuardDir(t, testReport(nil))
	var out bytes.Buffer
	if err := Guard(dir, &out); err != nil {
		t.Fatalf("Guard with single report: %v", err)
	}
	if !strings.Contains(out.String(), "baseline established") {
		t.Fatalf("output %q lacks baseline note", out.String())
	}
}

func TestGuardPassesWithinThresholds(t *testing.T) {
	prev := testReport(nil)
	// 5% throughput drop and 20% allocs rise: inside the 10%/25% limits.
	cur := testReport(func(r *Report) {
		r.Scenarios[0].OpsPerSec = 28500
		r.Scenarios[0].AllocsPerOp = 48
	})
	var out bytes.Buffer
	if err := Guard(writeGuardDir(t, prev, cur), &out); err != nil {
		t.Fatalf("Guard: %v (output %q)", err, out.String())
	}
	if !strings.Contains(out.String(), "OK (2 scenarios compared") {
		t.Fatalf("output %q lacks comparison summary", out.String())
	}
}

func TestGuardFailsOnThroughputDrop(t *testing.T) {
	prev := testReport(nil)
	cur := testReport(func(r *Report) { r.Scenarios[0].OpsPerSec = 20000 }) // -33%
	err := Guard(writeGuardDir(t, prev, cur), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "throughput dropped") {
		t.Fatalf("err = %v, want throughput regression", err)
	}
}

func TestGuardSkipsComparisonAcrossHardware(t *testing.T) {
	// A 33% throughput drop would fail the guard — but the reports were
	// taken on different CPU counts, so throughput is not comparable and
	// the newest report re-baselines instead.
	prev := testReport(func(r *Report) { r.CPUs = 8 })
	cur := testReport(func(r *Report) {
		r.CPUs = 1
		r.Scenarios[0].OpsPerSec = 20000
	})
	var out bytes.Buffer
	if err := Guard(writeGuardDir(t, prev, cur), &out); err != nil {
		t.Fatalf("Guard across hardware change: %v", err)
	}
	if !strings.Contains(out.String(), "hardware changed") {
		t.Fatalf("output %q lacks hardware-change note", out.String())
	}
}

func TestGuardFailsOnAllocsRise(t *testing.T) {
	prev := testReport(nil)
	cur := testReport(func(r *Report) { r.Scenarios[0].AllocsPerOp = 60 }) // +50%
	err := Guard(writeGuardDir(t, prev, cur), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "allocs/op rose") {
		t.Fatalf("err = %v, want allocs regression", err)
	}
}

func TestGuardComparesNewestPair(t *testing.T) {
	// Three reports: the regression is between 1 and 2; 2→3 is clean, so
	// the guard (newest pair only) must pass.
	r1 := testReport(nil)
	r2 := testReport(func(r *Report) { r.Scenarios[0].OpsPerSec = 15000 })
	r3 := testReport(func(r *Report) { r.Scenarios[0].OpsPerSec = 15500 })
	if err := Guard(writeGuardDir(t, r1, r2, r3), &bytes.Buffer{}); err != nil {
		t.Fatalf("Guard on newest pair: %v", err)
	}
}

func TestGuardNewScenarioSkipped(t *testing.T) {
	prev := testReport(nil)
	cur := testReport(func(r *Report) {
		r.Scenarios = append(r.Scenarios, Scenario{Name: "wal-append-batch-64", Kind: "micro", OpsPerSec: 1000, AllocsPerOp: 0})
	})
	var out bytes.Buffer
	if err := Guard(writeGuardDir(t, prev, cur), &out); err != nil {
		t.Fatalf("Guard: %v", err)
	}
	if !strings.Contains(out.String(), "is new in") {
		t.Fatalf("output %q lacks new-scenario note", out.String())
	}
}

func TestGuardRejectsSmokeReports(t *testing.T) {
	dir := writeGuardDir(t, testReport(func(r *Report) { r.Smoke = true }))
	err := Guard(dir, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "smoke") {
		t.Fatalf("err = %v, want smoke rejection", err)
	}
}

func TestGuardRejectsCorruptReport(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_0001.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Guard(dir, &bytes.Buffer{}); err == nil {
		t.Fatal("Guard accepted corrupt report")
	}
}

func TestGuardNoReports(t *testing.T) {
	if err := Guard(t.TempDir(), &bytes.Buffer{}); err == nil {
		t.Fatal("Guard with no reports should fail")
	}
}

func TestListReportsOrder(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_0010.json", "BENCH_0002.json", "BENCH_0006.json", "notes.md"} {
		r := testReport(nil)
		if strings.HasPrefix(name, "BENCH_") {
			if err := WriteReport(filepath.Join(dir, name), r); err != nil {
				t.Fatal(err)
			}
		} else if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := ListReports(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bases []string
	for _, f := range files {
		bases = append(bases, filepath.Base(f))
	}
	want := []string{"BENCH_0002.json", "BENCH_0006.json", "BENCH_0010.json"}
	if len(bases) != len(want) {
		t.Fatalf("ListReports = %v, want %v", bases, want)
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Fatalf("ListReports = %v, want %v", bases, want)
		}
	}
}
