// Package suppress exercises //lint:ignore accounting: one wall-clock
// read is suppressed with a reason, a second is not.
package suppress

import "time"

// Tick reads the wall clock twice.
func Tick() time.Duration {
	//lint:ignore spinnaker/detcheck fixture: deliberate wall-clock read
	start := time.Now()
	return time.Since(start) // WANT detcheck
}
