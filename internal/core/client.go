package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/coord"
	"spinnaker/internal/kv"
	"spinnaker/internal/transport"
)

// Client implements the datastore API of §3: get / put / delete /
// conditionalPut / conditionalDelete plus the multi-column variants, each
// executed as a single-operation transaction. Writes and strongly
// consistent reads are routed to the affected key range's cohort leader
// (learned from the coordination service and cached); timeline reads go to
// a random cohort member in exchange for better performance.
type Client struct {
	layout *cluster.Layout
	ep     transport.Endpoint
	sess   *coord.Session
	rng    *rand.Rand

	mu      sync.Mutex
	leaders map[uint32]string
}

// NewClient builds a client over its own network endpoint and
// coordination-service session.
func NewClient(layout *cluster.Layout, ep transport.Endpoint, coordSvc *coord.Service, seed int64) *Client {
	return &Client{
		layout:  layout,
		ep:      ep,
		sess:    coordSvc.Connect(),
		rng:     rand.New(rand.NewSource(seed)),
		leaders: make(map[uint32]string),
	}
}

// Close releases the client's coordination session.
func (c *Client) Close() {
	c.sess.Close()
	c.ep.Close()
}

// leader resolves (with caching) the leader of a range.
func (c *Client) leader(rangeID uint32) (string, error) {
	c.mu.Lock()
	if l, ok := c.leaders[rangeID]; ok {
		c.mu.Unlock()
		return l, nil
	}
	c.mu.Unlock()
	data, err := c.sess.Get(leaderPath(rangeID))
	if err != nil {
		return "", fmt.Errorf("%w: range %d has no leader", ErrUnavailable, rangeID)
	}
	l := string(data)
	c.mu.Lock()
	c.leaders[rangeID] = l
	c.mu.Unlock()
	return l, nil
}

// forgetLeader drops a cached leader after a NotLeader or timeout.
func (c *Client) forgetLeader(rangeID uint32) {
	c.mu.Lock()
	delete(c.leaders, rangeID)
	c.mu.Unlock()
}

// anyReplica picks a random cohort member for timeline reads.
func (c *Client) anyReplica(rangeID uint32) string {
	cohort := c.layout.Cohort(rangeID)
	c.mu.Lock()
	defer c.mu.Unlock()
	return cohort[c.rng.Intn(len(cohort))]
}

// writeRetries bounds leader re-resolution on routing misses.
const writeRetries = 8

// retryBackoff spaces routing retries so an in-flight election or takeover
// (tens of milliseconds) can complete instead of burning all attempts in
// microseconds.
const retryBackoff = 25 * time.Millisecond

// write routes a WriteOp to the range leader, retrying through leader
// changes, and returns the assigned versions.
func (c *Client) write(op WriteOp) ([]uint64, error) {
	rangeID := c.layout.RangeOf(op.Row)
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff)
		}
		leader, err := c.leader(rangeID)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.ep.Call(transport.Message{
			To: leader, Kind: MsgWrite, Cohort: rangeID, Payload: EncodeWriteOp(nil, op),
		})
		if err != nil {
			c.forgetLeader(rangeID)
			lastErr = err
			continue
		}
		res, err := decodeWriteResult(resp.Payload)
		if err != nil {
			return nil, err
		}
		switch res.Status {
		case StatusOK:
			return res.Versions, nil
		case StatusNotLeader, StatusUnavailable:
			c.forgetLeader(rangeID)
			lastErr = StatusError(res.Status, res.Detail)
			continue
		default:
			return nil, StatusError(res.Status, res.Detail)
		}
	}
	if lastErr == nil {
		lastErr = ErrUnavailable
	}
	return nil, lastErr
}

// Put inserts a column value into a row (§3) and returns the version
// assigned to it.
func (c *Client) Put(row, col string, value []byte) (uint64, error) {
	vs, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{Col: col, Value: value}}})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// Delete removes a column from a row (§3).
func (c *Client) Delete(row, col string) error {
	_, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{Col: col, Delete: true}}})
	return err
}

// ConditionalPut inserts a new value only if the column's current version
// equals version; otherwise ErrVersionMismatch is returned (§3). A version
// of 0 means "only if the column does not exist".
func (c *Client) ConditionalPut(row, col string, value []byte, version uint64) (uint64, error) {
	vs, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{
		Col: col, Value: value, Cond: true, CondVersion: version,
	}}})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// ConditionalDelete removes the column only if its current version equals
// version (§3).
func (c *Client) ConditionalDelete(row, col string, version uint64) error {
	_, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{
		Col: col, Delete: true, Cond: true, CondVersion: version,
	}}})
	return err
}

// Column is one column of a multi-column write.
type Column struct {
	Col   string
	Value []byte
}

// MultiPut atomically puts several columns of the same row in one
// single-operation transaction (§3: "the multi-column version of
// conditional put allows multiple columns of the same row to be
// conditionally put with one API call").
func (c *Client) MultiPut(row string, cols []Column) ([]uint64, error) {
	op := WriteOp{Row: row}
	for _, col := range cols {
		op.Cols = append(op.Cols, ColWrite{Col: col.Col, Value: col.Value})
	}
	return c.write(op)
}

// ConditionalMultiPut atomically puts several columns, each guarded by its
// expected current version.
func (c *Client) ConditionalMultiPut(row string, cols []Column, versions []uint64) ([]uint64, error) {
	if len(cols) != len(versions) {
		return nil, errors.New("core: cols and versions length mismatch")
	}
	op := WriteOp{Row: row}
	for i, col := range cols {
		op.Cols = append(op.Cols, ColWrite{
			Col: col.Col, Value: col.Value, Cond: true, CondVersion: versions[i],
		})
	}
	return c.write(op)
}

// Get reads a column value and its version (§3). consistent=true routes to
// the cohort leader and always returns the latest value; consistent=false
// (timeline consistency) reads any replica and may return a stale value in
// exchange for better performance.
func (c *Client) Get(row, col string, consistent bool) ([]byte, uint64, error) {
	rangeID := c.layout.RangeOf(row)
	req := encodeGetReq(getReq{Row: row, Col: col, Consistent: consistent})
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff)
		}
		var target string
		if consistent {
			var err error
			if target, err = c.leader(rangeID); err != nil {
				lastErr = err
				continue
			}
		} else {
			target = c.anyReplica(rangeID)
		}
		resp, err := c.ep.Call(transport.Message{To: target, Kind: MsgGet, Cohort: rangeID, Payload: req})
		if err != nil {
			if consistent {
				c.forgetLeader(rangeID)
			}
			lastErr = err
			continue
		}
		res, err := decodeGetResp(resp.Payload)
		if err != nil {
			return nil, 0, err
		}
		switch res.Status {
		case StatusOK:
			return res.Value, res.Version, nil
		case StatusNotFound:
			return nil, res.Version, ErrNotFound
		case StatusNotLeader:
			c.forgetLeader(rangeID)
			lastErr = ErrNotLeader
			continue
		default:
			return nil, 0, StatusError(res.Status, "")
		}
	}
	if lastErr == nil {
		lastErr = ErrUnavailable
	}
	return nil, 0, lastErr
}

// GetRow reads every live column of a row with the chosen consistency.
func (c *Client) GetRow(row string, consistent bool) ([]kv.Entry, error) {
	rangeID := c.layout.RangeOf(row)
	req := encodeGetReq(getReq{Row: row, Consistent: consistent})
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff)
		}
		var target string
		if consistent {
			var err error
			if target, err = c.leader(rangeID); err != nil {
				lastErr = err
				continue
			}
		} else {
			target = c.anyReplica(rangeID)
		}
		resp, err := c.ep.Call(transport.Message{To: target, Kind: MsgGetRow, Cohort: rangeID, Payload: req})
		if err != nil {
			if consistent {
				c.forgetLeader(rangeID)
			}
			lastErr = err
			continue
		}
		res, err := decodeRowResp(resp.Payload)
		if err != nil {
			return nil, err
		}
		switch res.Status {
		case StatusOK:
			return res.Entries, nil
		case StatusNotFound:
			return nil, ErrNotFound
		case StatusNotLeader:
			c.forgetLeader(rangeID)
			lastErr = ErrNotLeader
			continue
		default:
			return nil, StatusError(res.Status, "")
		}
	}
	if lastErr == nil {
		lastErr = ErrUnavailable
	}
	return nil, lastErr
}
