package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// A MetaStore holds small pieces of durable node metadata outside the log
// proper: skipped-LSN lists (paper §6.1.1: "saved to a known location on
// disk") and storage-engine checkpoint manifests. Put must be atomic and
// durable on return.
type MetaStore interface {
	Put(key string, val []byte) error
	Get(key string) (val []byte, ok bool, err error)
	Delete(key string) error
	// Keys returns all keys with the given prefix, sorted.
	Keys(prefix string) ([]string, error)
}

// MemMetaStore is an in-memory MetaStore. Puts are modeled as immediately
// durable (they survive Crash); Fail destroys everything, simulating the
// disk failure path of §6.1.
type MemMetaStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemMetaStore returns an empty store.
func NewMemMetaStore() *MemMetaStore {
	return &MemMetaStore{m: make(map[string][]byte)}
}

// Put implements MetaStore.
func (s *MemMetaStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), val...)
	return nil
}

// Get implements MetaStore.
func (s *MemMetaStore) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// Delete implements MetaStore.
func (s *MemMetaStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, key)
	return nil
}

// Keys implements MetaStore.
func (s *MemMetaStore) Keys(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Fail destroys all metadata (permanent disk failure).
func (s *MemMetaStore) Fail() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string][]byte)
}

// FileMetaStore is a MetaStore storing each key as a file, written with the
// write-temp-then-rename idiom for atomicity.
type FileMetaStore struct {
	dir string
	mu  sync.Mutex
}

// NewFileMetaStore returns a store rooted at dir, creating it if needed.
func NewFileMetaStore(dir string) (*FileMetaStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	return &FileMetaStore{dir: dir}, nil
}

// escape converts a metadata key to a safe file name.
func escape(key string) string {
	return strings.NewReplacer("/", "__", ":", "--").Replace(key)
}

// Put implements MetaStore.
func (s *FileMetaStore) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, escape(key))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return fmt.Errorf("wal: meta put: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: meta rename: %w", err)
	}
	return nil
}

// Get implements MetaStore.
func (s *FileMetaStore) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, err := os.ReadFile(filepath.Join(s.dir, escape(key)))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("wal: meta get: %w", err)
	}
	return b, true, nil
}

// Delete implements MetaStore.
func (s *FileMetaStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(filepath.Join(s.dir, escape(key)))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Keys implements MetaStore. Escaped names are returned as stored keys only
// when the escaping is reversible; to keep things simple the store lists by
// escaped prefix, which is sufficient for the fixed key shapes used here.
func (s *FileMetaStore) Keys(prefix string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: meta keys: %w", err)
	}
	esc := escape(prefix)
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			continue
		}
		if strings.HasPrefix(name, esc) {
			keys = append(keys, strings.NewReplacer("__", "/", "--", ":").Replace(name))
		}
	}
	sort.Strings(keys)
	return keys, nil
}

var (
	_ MetaStore = (*MemMetaStore)(nil)
	_ MetaStore = (*FileMetaStore)(nil)
)
