package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Position locates a finding in the source tree.
type Position struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// Finding is one analyzer hit.
type Finding struct {
	// Analyzer is the short analyzer name ("detcheck", "aliascheck",
	// "lockcheck", "hotpath").
	Analyzer string   `json:"analyzer"`
	Pos      Position `json:"pos"`
	Message  string   `json:"message"`
	// Suppressed marks a finding matched by a //lint:ignore comment;
	// suppressed findings do not fail the run but are counted.
	Suppressed bool `json:"suppressed,omitempty"`
	// SuppressReason is the reason text of the matching //lint:ignore.
	SuppressReason string `json:"suppress_reason,omitempty"`
}

// AnalyzerNames lists the analyzers in the order they run.
var AnalyzerNames = []string{"detcheck", "aliascheck", "lockcheck", "hotpath"}

// Config parameterizes a run. The zero value is NOT usable; start from
// DefaultConfig (the spinnaker repo's invariants) and override in tests.
type Config struct {
	// Analyzers enables a subset by name; empty means all.
	Analyzers []string
	// DetScope lists import-path prefixes detcheck applies to. The
	// determinism contract only binds the simulation, fault, and
	// checker planes; wall-clock packages (core, coord) are exempt.
	DetScope []string
	// DetExempt lists import paths excluded even inside DetScope (the
	// simtime chokepoint itself).
	DetExempt []string
	// LockOrder lists ordered lock pairs "pkgpath.Type.field" (or
	// "pkgpath.var" for package-level mutexes): the first lock must be
	// acquired before the second; acquiring the first while holding the
	// second is a finding.
	LockOrder [][2]string
	// NoHoldAcross forbids, while the named lock is held, calls to any
	// method of the listed named types ("pkgpath.Type", typically
	// blob-store interfaces) and — always — channel sends.
	NoHoldAcross []NoHoldRule
}

// NoHoldRule is one "lock L must not be held across X" constraint.
type NoHoldRule struct {
	// Lock names the guarded mutex, "pkgpath.Type.field".
	Lock string
	// Callees lists named types ("pkgpath.Type") whose methods must not
	// be called with Lock held (blob/meta store I/O).
	Callees []string
	// ChanSend forbids channel sends while Lock is held.
	ChanSend bool
}

// DefaultConfig returns the spinnaker repo's invariant set:
//
//   - detcheck scopes to the seed-pure planes (PR 2): internal/sim,
//     internal/transport, internal/lin.
//   - layoutMu is acquired before any replica mu (PR 3/PR 4 ordering).
//   - the storage engine's mu is never held across TableStore/MetaStore
//     calls or channel sends (PR 4: blob I/O off the engine lock).
func DefaultConfig() Config {
	return Config{
		DetScope: []string{
			"spinnaker/internal/sim",
			"spinnaker/internal/transport",
			"spinnaker/internal/lin",
		},
		LockOrder: [][2]string{
			{"spinnaker/internal/core.Node.layoutMu", "spinnaker/internal/core.replica.mu"},
		},
		NoHoldAcross: []NoHoldRule{
			{
				Lock: "spinnaker/internal/storage.Engine.mu",
				Callees: []string{
					"spinnaker/internal/sstable.TableStore",
					"spinnaker/internal/wal.MetaStore",
				},
				ChanSend: true,
			},
		},
	}
}

func (c Config) enabled(name string) bool {
	if len(c.Analyzers) == 0 {
		return true
	}
	for _, a := range c.Analyzers {
		if a == name {
			return true
		}
	}
	return false
}

// Result is one lint run's outcome.
type Result struct {
	// Findings are the unsuppressed findings, sorted by position.
	Findings []Finding `json:"findings"`
	// Suppressed are findings matched by //lint:ignore comments.
	Suppressed []Finding `json:"suppressed,omitempty"`
}

// Run executes the enabled analyzers over the loaded module.
func Run(m *Module, cfg Config) (*Result, error) {
	idx, err := buildAnnotations(m)
	if err != nil {
		return nil, err
	}
	var all []Finding
	if cfg.enabled("detcheck") {
		all = append(all, detcheck(m, cfg)...)
	}
	if cfg.enabled("aliascheck") {
		all = append(all, aliascheck(m, idx)...)
	}
	if cfg.enabled("lockcheck") {
		fs, err := lockcheck(m, cfg, idx)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	if cfg.enabled("hotpath") {
		all = append(all, hotpath(m, idx)...)
	}
	sup := collectSuppressions(m)
	res := &Result{}
	for _, f := range all {
		if reason, ok := sup.match(f); ok {
			f.Suppressed = true
			f.SuppressReason = reason
			res.Suppressed = append(res.Suppressed, f)
		} else {
			res.Findings = append(res.Findings, f)
		}
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// finding builds a Finding at the given node.
func finding(m *Module, analyzer string, at ast.Node, format string, args ...any) Finding {
	p := m.Fset.Position(at.Pos())
	return Finding{
		Analyzer: analyzer,
		Pos:      Position{File: p.Filename, Line: p.Line, Col: p.Column},
		Message:  fmt.Sprintf(format, args...),
	}
}

// suppressions maps file → line → analyzer → reason, from
// //lint:ignore spinnaker/<analyzer> <reason> comments. A suppression on
// line N covers findings on line N and line N+1 (the staticcheck
// convention: the comment sits on its own line directly above the
// flagged statement, or trails it).
type suppressions map[string]map[int]map[string]string

const suppressPrefix = "//lint:ignore spinnaker/"

func collectSuppressions(m *Module) suppressions {
	sup := suppressions{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, suppressPrefix)
					if !ok {
						continue
					}
					name, reason, _ := strings.Cut(rest, " ")
					reason = strings.TrimSpace(reason)
					if reason == "" {
						reason = "(no reason given)"
					}
					p := m.Fset.Position(c.Pos())
					byLine := sup[p.Filename]
					if byLine == nil {
						byLine = map[int]map[string]string{}
						sup[p.Filename] = byLine
					}
					byAnalyzer := byLine[p.Line]
					if byAnalyzer == nil {
						byAnalyzer = map[string]string{}
						byLine[p.Line] = byAnalyzer
					}
					byAnalyzer[name] = reason
				}
			}
		}
	}
	return sup
}

func (s suppressions) match(f Finding) (string, bool) {
	byLine, ok := s[f.Pos.File]
	if !ok {
		return "", false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if byAnalyzer, ok := byLine[line]; ok {
			if reason, ok := byAnalyzer[f.Analyzer]; ok {
				return reason, true
			}
		}
	}
	return "", false
}

// posKey formats a position for human output.
func (p Position) String() string {
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}
