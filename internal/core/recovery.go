package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync/atomic"
	"time"

	"spinnaker/internal/kv"
	"spinnaker/internal/merkle"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Bulk catch-up tuning (§6.1, SSTable-based catch-up).
const (
	// maxSnapshotRounds bounds how many manifest rounds one catchUp may
	// take before forcing the entry path; each round lands the follower at
	// that round's snapCmt, so the residue shrinks monotonically.
	maxSnapshotRounds = 4
	// catchupChunkBytes is the table-blob transfer chunk size.
	catchupChunkBytes = 256 << 10
	// merkleTargetLeaves sizes the anti-entropy tree the leader cuts over
	// its resolved state.
	merkleTargetLeaves = 64
	// chunkRetryLimit bounds consecutive re-requests of one damaged chunk.
	chunkRetryLimit = 4
)

// testCatchupScanHook, when set by a test, runs after onCatchupReq releases
// r.mu and before the engine scan — the window in which writes must keep
// flowing. Atomic because tests arm it while replica goroutines run.
var testCatchupScanHook atomic.Pointer[func()]

// localRecover rebuilds the replica's volatile state from its share of the
// node's log (paper §6.1, local recovery phase). recs is the cohort's slice
// of the shared log scan, in append order (the 3 cohorts of a node are
// recovered in parallel from one shared scan, §6).
//
// Records from the most recent checkpoint through f.cmt are re-applied
// idempotently to the memtable. Records after f.cmt are ambiguous — they
// may or may not have been committed by the leader — and are parked in the
// commit queue for the catch-up phase to resolve. LSNs on the skipped-LSN
// list (logically truncated, §6.1.1) are never re-applied.
func (r *replica) localRecover(recs []wal.Record) error {
	skipped, err := wal.LoadSkippedLSNs(r.n.meta, r.rangeID)
	if err != nil {
		return fmt.Errorf("core: load skipped LSNs: %w", err)
	}

	var cmt, lst wal.LSN
	writes := make(map[wal.LSN]WriteOp)
	for _, rec := range recs {
		switch rec.Type {
		case wal.RecWrite:
			if skipped.Contains(rec.LSN) {
				continue
			}
			op, _, err := DecodeWriteOp(rec.Payload)
			if err != nil {
				return fmt.Errorf("core: corrupt write at %s: %w", rec.LSN, err)
			}
			writes[rec.LSN] = op
			if rec.LSN > lst {
				lst = rec.LSN
			}
		case wal.RecLastCommitted:
			if rec.LSN > cmt {
				cmt = rec.LSN
			}
		case wal.RecResetCohort:
			// The node re-joined this cohort after a membership
			// departure: everything logged before this point belongs
			// to the stale pre-departure era (the engine was wiped
			// when the marker was written) and must not be replayed.
			writes = make(map[wal.LSN]WriteOp)
			cmt, lst = 0, 0
		}
	}
	// The storage checkpoint is a durable commit floor: every write at
	// or below it was committed and captured in SSTables (applies are
	// commit-ordered and flushes cut the memtable at an LSN boundary).
	// The scanned cmt can lag it — RecLastCommitted records are written
	// non-forced (§5) and a crash loses the unforced tail — and
	// advertising the lower value in catch-up would request entries
	// below the cohort's tombstone-GC watermark, where compaction may
	// already have dropped delete markers and EntriesSince is no longer
	// complete. Recover f.cmt as the max of the two floors.
	checkpoint := r.engine.Checkpoint()
	if checkpoint > cmt {
		cmt = checkpoint
	}
	if cmt > lst {
		// A commit marker can reference writes served entirely from
		// catch-up entries that were themselves logged; treat the
		// marker as authoritative for f.cmt but never above what we
		// can prove.
		lst = cmt
	}
	lsns := make([]wal.LSN, 0, len(writes))
	for l := range writes {
		lsns = append(lsns, l)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	for _, l := range lsns {
		if l <= checkpoint {
			continue
		}
		if l <= cmt {
			for _, e := range writes[l].Entries(l) {
				r.engine.Apply(e)
			}
			continue
		}
		// Ambiguous suffix (f.cmt, f.lst]: pending until catch-up.
		r.queue.add(&pendingWrite{lsn: l, op: writes[l], selfForced: true})
	}

	r.mu.Lock()
	r.skipped = skipped
	r.lastCommitted = cmt
	r.lastLSN = lst
	if e := lst.Epoch(); e > r.epoch {
		r.epoch = e
	}
	r.nextSeq = lst.Seq() + 1
	r.role = RoleRecovering
	if r.hasOrigin && lst.IsZero() && cmt.IsZero() {
		// A split-created range with no durable state yet (a restart
		// before the first pull completed): the range's data lives with
		// the origin cohort, so gate elections until a pull succeeds.
		r.mustPull = true
	}
	r.mu.Unlock()
	return nil
}

// ambiguousLSNs returns the replica's pending LSNs in (f.cmt, f.lst] —
// the writes whose fate the catch-up phase must resolve.
func (r *replica) ambiguousLSNs() []wal.LSN {
	r.mu.Lock()
	cmt := r.lastCommitted
	r.mu.Unlock()
	var out []wal.LSN
	r.queue.mu.Lock()
	for _, l := range r.queue.order {
		if l > cmt {
			out = append(out, l)
		}
	}
	r.queue.mu.Unlock()
	return out
}

// catchUp runs the follower's catch-up phase (§6.1): advertise f.cmt to the
// leader, receive every committed write after it, resolve the ambiguous
// suffix by logical truncation, and leave the replica a current follower.
//
// When the leader's log has been truncated past our f.cmt, the reply is a
// snapshot manifest instead of entries: absorb the shipped SSTables (which
// land us at the snapshot's cmt) and go around again — the next round asks
// only for (snapCmt, l.cmt], which the leader serves as entries.
func (r *replica) catchUp(leader string) error {
	for round := 0; ; round++ {
		r.mu.Lock()
		req := catchupReq{Cmt: r.lastCommitted}
		r.mu.Unlock()
		req.Ambiguous = r.ambiguousLSNs()
		req.NoSnap = r.n.cfg.DisableSnapshotCatchup || round >= maxSnapshotRounds
		req.Empty = r.engine.Empty()

		resp, err := r.n.call(leader, transport.Message{
			Kind: MsgCatchupReq, Cohort: r.rangeID, Payload: encodeCatchupReq(req),
		})
		if err != nil {
			return fmt.Errorf("core: catch-up call: %w", err)
		}
		if resp.Kind == MsgSnapManifest {
			man, err := decodeSnapManifest(resp.Payload)
			if err != nil {
				return err
			}
			if man.Status == StatusNotLeader {
				return fmt.Errorf("%w: %s no longer leads range %d", ErrNotLeader, leader, r.rangeID)
			}
			if man.Status != StatusOK {
				return fmt.Errorf("core: snapshot catch-up refused: status %d", man.Status)
			}
			if err := r.absorbSnapshot(leader, man, req.Ambiguous); err != nil {
				return err
			}
			continue
		}
		cr, err := decodeCatchupResp(resp.Payload)
		if err != nil {
			return err
		}
		if cr.Status == StatusNotLeader {
			return fmt.Errorf("%w: %s no longer leads range %d", ErrNotLeader, leader, r.rangeID)
		}
		if cr.Status != StatusOK {
			return fmt.Errorf("core: catch-up refused: status %d", cr.Status)
		}
		return r.absorbCatchup(cr, req.Ambiguous)
	}
}

// absorbCatchup applies a catch-up (or takeover) response: logically
// truncate dead-branch LSNs, durably log the received committed writes,
// apply them, and advance f.cmt.
func (r *replica) absorbCatchup(cr catchupResp, ambiguous []wal.LSN) error {
	present := make(map[wal.LSN]bool, len(cr.Present))
	for _, l := range cr.Present {
		present[l] = true
	}

	r.mu.Lock()
	// Logical truncation (§6.1.1): ambiguous LSNs absent from the
	// leader's history were discarded by a leader change and must never
	// be re-applied by future local recoveries.
	truncated := false
	for _, l := range ambiguous {
		if !present[l] {
			r.skipped.Add(l)
			r.queue.remove(l)
			truncated = true
		}
	}
	if truncated {
		if err := wal.SaveSkippedLSNs(r.n.meta, r.rangeID, r.skipped); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("core: persist skipped LSNs: %w", err)
		}
	}

	// Durably log the received committed state so a crash right after
	// catch-up does not lose it, then apply. The whole delivery goes down
	// as one group frame — one header, one checksum, one device append —
	// and one force covers it (all-or-nothing: a torn group frame is
	// dropped whole at recovery, never a prefix).
	var end int64
	if len(cr.Entries) > 0 {
		recs := make([]wal.Record, 0, len(cr.Entries))
		for _, e := range cr.Entries {
			op := WriteOp{Row: e.Key.Row, Cols: []ColWrite{{
				Col: e.Key.Col, Value: e.Cell.Value,
				Delete: e.Cell.Deleted, Version: e.Cell.Version,
			}}}
			recs = append(recs, wal.Record{
				Cohort: r.rangeID, Type: wal.RecWrite, LSN: e.Cell.LSN,
				Payload: EncodeWriteOp(nil, op),
			})
			if e.Cell.LSN > r.lastLSN {
				r.lastLSN = e.Cell.LSN
			}
		}
		var err error
		if end, err = r.n.log.AppendBatch(recs); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("core: log catch-up entries: %w", err)
		}
	}
	r.mu.Unlock()
	if end > 0 {
		if err := r.n.log.ForceTo(end); err != nil {
			return fmt.Errorf("core: force catch-up entries: %w", err)
		}
	}
	for _, e := range cr.Entries {
		r.engine.Apply(e)
	}
	r.applyCommitted(cr.Cmt, true)
	r.mu.Lock()
	if cr.Cmt > r.lastLSN {
		r.lastLSN = cr.Cmt
	}
	if e := r.lastLSN.Epoch(); e > r.epoch {
		r.epoch = e
	}
	r.nextSeq = r.lastLSN.Seq() + 1
	// Every absorb source (range leader, takeover, split pull) delivers
	// the complete committed state through the leader's cmt, so a
	// split-created replica now holds its range's data and may stand for
	// election.
	r.mustPull = false
	r.mu.Unlock()
	r.m.entryCatchups.Inc()
	return nil
}

// splitPull seeds a fresh replica of a split-created range. If the range
// already has a leader, ordinary catch-up against it delivers everything.
// Otherwise the state still lives with the origin range's cohort: pull the
// origin leader's committed rows in our bounds (served only once the origin
// has adopted the shrunk bounds and drained in-flight writes to those rows,
// so the pull is complete by construction).
func (r *replica) splitPull() error {
	if leader := r.n.readLeader(r.rangeID); leader != "" && leader != r.n.cfg.ID {
		if err := r.catchUp(leader); err == nil {
			return nil
		}
	}
	r.mu.Lock()
	low, high := r.low, r.high
	r.mu.Unlock()
	if !r.hasOrigin {
		return fmt.Errorf("core: range %d has no origin to pull from", r.rangeID)
	}
	leader := r.n.readLeader(r.origin)
	if leader == "" {
		return fmt.Errorf("core: origin range %d has no leader", r.origin)
	}
	var cr catchupResp
	if leader == r.n.cfg.ID {
		// This node leads the origin range; serve the pull locally.
		or := r.n.getReplica(r.origin)
		if or == nil {
			return fmt.Errorf("core: origin range %d not served here", r.origin)
		}
		var ok bool
		cr, ok = or.serveSplitPull(low, high)
		if !ok {
			return fmt.Errorf("core: origin range %d not ready for split pull", r.origin)
		}
	} else {
		resp, err := r.n.call(leader, transport.Message{
			Kind: MsgCatchupReq, Cohort: r.origin,
			Payload: encodeCatchupReq(catchupReq{SplitPull: true, FilterLow: low, FilterHigh: high}),
		})
		if err != nil {
			return fmt.Errorf("core: split pull call: %w", err)
		}
		if cr, err = decodeCatchupResp(resp.Payload); err != nil {
			return err
		}
		if cr.Status != StatusOK {
			return fmt.Errorf("core: split pull refused: status %d", cr.Status)
		}
	}
	return r.absorbCatchup(cr, nil)
}

// serveSplitPull is the origin leader's side of a split pull: once we have
// adopted the shrunk bounds (so no new writes enter [low, high)) and every
// in-flight write to those rows has resolved, our engine holds the moved
// sub-range's complete committed state.
func (r *replica) serveSplitPull(low, high string) (catchupResp, bool) {
	r.mu.Lock()
	if r.role != RoleLeader || !(r.high != "" && r.high <= low) {
		r.mu.Unlock()
		return catchupResp{}, false // not leading, or the shrink has not reached us
	}
	if r.queue.hasPendingRowIn(low, high) {
		r.mu.Unlock()
		return catchupResp{}, false // drain in-flight writes first
	}
	cmt := r.lastCommitted
	r.mu.Unlock()

	// Scan outside r.mu: the full-engine walk is slow on a hot range and
	// would stall the whole write path. The filtered result is stable
	// without the lock — after the shrink + drain above, no write to
	// [low, high) can enter this engine again.
	var entries []kv.Entry
	for _, e := range r.engine.EntriesSince(0) {
		if keyInRange(e.Key.Row, low, high) {
			entries = append(entries, e)
		}
	}
	return catchupResp{Status: StatusOK, Cmt: cmt, Entries: entries}, true
}

// onCatchupReq is the leader's side of catch-up (§6.1): send every
// committed write after the follower's f.cmt, plus the subset of the
// follower's ambiguous LSNs that exist in our history.
//
// The engine scan runs OFF r.mu — a full-range walk on a hot range would
// otherwise stall every write for its duration (the same reasoning as
// serveSplitPull). The race that opens is closed by a bounded log-tail
// re-read: applies always precede the lastCommitted advance, so the
// pre-scan cmt bounds what the scan might have missed, and the records in
// (preScanCmt, postScanCmt] are re-read from the log under a short lock.
// The response is therefore complete through its advertised Cmt without
// ever blocking writes behind the scan.
//
// If part of (f.cmt, l.cmt] has been truncated from our log, entries served
// from the engine are no longer the cheapest complete answer: the sealed
// SSTables themselves are shipped instead (snapshot manifest + chunked
// blob transfer), unless the follower opted out with NoSnap. EntriesSince
// remains complete (deletes included) for any f.cmt at or above the
// cohort's tombstone-GC watermark, and the watermark never exceeds a
// member's durable commit floor, so a legitimate follower can never ask
// below it.
func (r *replica) onCatchupReq(m transport.Message) {
	req, err := decodeCatchupReq(m.Payload)
	if err != nil {
		return
	}
	if req.SplitPull {
		resp, ok := r.serveSplitPull(req.FilterLow, req.FilterHigh)
		if !ok {
			r.mu.Lock()
			isLeader := r.role == RoleLeader
			r.mu.Unlock()
			status := StatusUnavailable // not shrunk or not drained yet; retry
			if !isLeader {
				status = StatusNotLeader
			}
			r.n.reply(m, transport.Message{Cohort: r.rangeID,
				Payload: encodeCatchupResp(catchupResp{Status: status})})
			return
		}
		r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeCatchupResp(resp)})
		return
	}
	r.mu.Lock()
	if r.role != RoleLeader {
		r.mu.Unlock()
		r.n.reply(m, transport.Message{Cohort: r.rangeID,
			Payload: encodeCatchupResp(catchupResp{Status: StatusNotLeader})})
		return
	}
	cmt0 := r.lastCommitted
	present := r.presentLSNsLocked(req.Ambiguous)
	r.mu.Unlock()

	// SSTable-based catch-up: the log can no longer prove completeness for
	// this follower, so ship the tables that hold the missing history.
	if !req.NoSnap && r.n.log.Truncated(r.rangeID) > req.Cmt {
		r.serveSnapshot(m, req, present)
		return
	}

	if hook := testCatchupScanHook.Load(); hook != nil {
		(*hook)()
	}
	entries := r.engine.EntriesSince(req.Cmt)

	r.mu.Lock()
	cmtNow := r.lastCommitted
	r.mu.Unlock()
	if cmtNow > cmt0 {
		// Writes committed during the scan: re-read the bounded tail
		// (cmt0, cmtNow] from the log. cmt0 is at or above our own
		// checkpoint, which is at or above the truncation point, so the
		// tail is always log-complete.
		recs, ok, err := r.n.log.CohortWritesIn(r.rangeID, cmt0, cmtNow)
		if err != nil || !ok {
			cmtNow = cmt0 // advertise only what the scan provably covers
		} else {
			r.mu.Lock()
			kept := recs[:0]
			for _, rec := range recs {
				if rec.LSN > req.Cmt && !r.skipped.Contains(rec.LSN) {
					kept = append(kept, rec)
				}
			}
			r.mu.Unlock()
			for _, rec := range kept {
				op, _, err := DecodeWriteOp(rec.Payload)
				if err != nil {
					cmtNow = cmt0
					break
				}
				// Duplicates against the scan are fine: the absorber's
				// memtable resolves same-key entries newest-wins.
				entries = append(entries, op.Entries(rec.LSN)...)
			}
		}
	}
	resp := catchupResp{Status: StatusOK, Cmt: cmtNow, Present: present, Entries: entries}
	r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeCatchupResp(resp)})
}

// serveSnapshot is the leader's SSTable-shipping path (§6.1): seal the
// memtable so the tables cover a single LSN point, then offer the tables
// tagged beyond the follower's f.cmt together with a Merkle tree over our
// resolved state, so the follower fetches only the subranges it actually
// differs in.
func (r *replica) serveSnapshot(m transport.Message, req catchupReq, present []wal.LSN) {
	refuse := func() {
		r.n.reply(m, transport.Message{Cohort: r.rangeID,
			Payload: encodeCatchupResp(catchupResp{Status: StatusUnavailable})})
	}
	if err := r.engine.Flush(); err != nil {
		refuse()
		return
	}
	snapCmt := r.engine.Checkpoint()
	if snapCmt <= req.Cmt {
		refuse()
		return
	}
	tables := r.engine.TablesSince(req.Cmt)
	metas := make([]snapTableMeta, 0, len(tables))
	for _, t := range tables {
		blob := t.Blob()
		minLSN, maxLSN := t.LSNRange()
		meta := snapTableMeta{
			ID: t.ID(), Size: uint32(len(blob)), CRC: crc32.ChecksumIEEE(blob),
			MinLSN: minLSN, MaxLSN: maxLSN,
		}
		if minKey, maxKey, ok := t.KeyRange(); ok {
			meta.MinRow, meta.MaxRow = minKey.Row, maxKey.Row
		}
		metas = append(metas, meta)
	}
	// Digest the resolved state as of snapCmt. The engine keeps moving
	// under this off-lock scan; filtering to LSN ≤ snapCmt pins the digest
	// to the snapshot point. A key overwritten beyond snapCmt mid-scan
	// drops out of the digest entirely — that can only make a leaf differ
	// spuriously (an over-fetch), never hide a real difference.
	//
	// A follower that declared itself empty gets no digest at all: every
	// leaf would differ against nothing, so the full-range resolved scan
	// would be paid only to conclude "ship everything".
	var cuts []string
	var leaves []merkle.Digest
	if !req.Empty {
		var snapEntries []kv.Entry
		for _, e := range r.engine.EntriesSince(0) {
			if e.Cell.LSN <= snapCmt {
				snapEntries = append(snapEntries, e)
			}
		}
		tree := merkle.Build(snapEntries, merkleTargetLeaves)
		cuts, leaves = tree.Cuts(), tree.Leaves()
	}

	r.mu.Lock()
	cmtNow := r.lastCommitted
	r.snapshotsServed++
	r.mu.Unlock()
	man := snapManifest{
		Status: StatusOK, Cmt: cmtNow, SnapCmt: snapCmt, Present: present,
		Tables: metas, Cuts: cuts, Leaves: leaves,
	}
	r.n.reply(m, transport.Message{
		Kind: MsgSnapManifest, Cohort: r.rangeID, Payload: encodeSnapManifest(man),
	})
}

// onTableChunkReq serves one chunk of a live table's blob to a fetching
// follower. A table that has since left the live set (compacted away)
// answers StatusNotFound; the follower restarts from a fresh manifest.
func (r *replica) onTableChunkReq(m transport.Message) {
	req, err := decodeTableChunkReq(m.Payload)
	if err != nil {
		return
	}
	blob, ok := r.engine.ExportTable(req.Table)
	if !ok || req.Offset >= uint32(len(blob)) {
		r.n.reply(m, transport.Message{Kind: MsgTableChunk, Cohort: r.rangeID,
			Payload: encodeTableChunk(tableChunk{Status: StatusNotFound, Table: req.Table})})
		return
	}
	end := int(req.Offset) + catchupChunkBytes
	if end > len(blob) {
		end = len(blob)
	}
	data := blob[req.Offset:end]
	r.n.reply(m, transport.Message{Kind: MsgTableChunk, Cohort: r.rangeID,
		Payload: encodeTableChunk(tableChunk{
			Status: StatusOK, Table: req.Table, Offset: req.Offset,
			Total: uint32(len(blob)), CRC: crc32.ChecksumIEEE(data), Data: data,
		})})
}

// fetchTable pulls one manifest table's blob chunk by chunk. The follower
// drives the offsets, so a chunk that fails verification is re-requested at
// the same offset — the transfer resumes where its verified prefix ends.
func (r *replica) fetchTable(leader string, meta snapTableMeta) ([]byte, error) {
	blob := make([]byte, 0, meta.Size)
	retries := 0
	for uint32(len(blob)) < meta.Size {
		resp, err := r.n.call(leader, transport.Message{
			Kind: MsgTableChunkReq, Cohort: r.rangeID,
			Payload: encodeTableChunkReq(tableChunkReq{Table: meta.ID, Offset: uint32(len(blob))}),
		})
		if err != nil {
			return nil, fmt.Errorf("core: table chunk call: %w", err)
		}
		ch, err := decodeTableChunk(resp.Payload)
		if err != nil {
			return nil, err
		}
		if ch.Status != StatusOK {
			return nil, fmt.Errorf("core: table %d no longer served (status %d)", meta.ID, ch.Status)
		}
		if ch.Table != meta.ID || ch.Offset != uint32(len(blob)) || ch.Total != meta.Size ||
			len(ch.Data) == 0 || crc32.ChecksumIEEE(ch.Data) != ch.CRC {
			retries++
			if retries > chunkRetryLimit {
				return nil, fmt.Errorf("core: table %d chunk at offset %d failed verification %d times",
					meta.ID, len(blob), retries)
			}
			continue
		}
		retries = 0
		blob = append(blob, ch.Data...)
	}
	if crc32.ChecksumIEEE(blob) != meta.CRC {
		return nil, fmt.Errorf("core: table %d reassembled blob fails manifest CRC", meta.ID)
	}
	return blob, nil
}

// absorbSnapshot applies a snapshot manifest: logically truncate dead
// branches, diff our state against the leader's Merkle tree, fetch only the
// tables intersecting differing subranges, ingest them beneath our live
// state, and advance f.cmt to the snapshot's coverage point. The caller
// then loops: the next catch-up round asks for (snapCmt, l.cmt] as entries.
func (r *replica) absorbSnapshot(leader string, man snapManifest, ambiguous []wal.LSN) error {
	present := make(map[wal.LSN]bool, len(man.Present))
	for _, l := range man.Present {
		present[l] = true
	}
	r.mu.Lock()
	// Logical truncation (§6.1.1), exactly as the entry path: ambiguous
	// LSNs absent from the leader's history must never be re-applied.
	truncated := false
	for _, l := range ambiguous {
		if !present[l] {
			r.skipped.Add(l)
			r.queue.remove(l)
			truncated = true
		}
	}
	if truncated {
		if err := wal.SaveSkippedLSNs(r.n.meta, r.rangeID, r.skipped); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("core: persist skipped LSNs: %w", err)
		}
	}
	r.mu.Unlock()

	// Anti-entropy: rebuild the leader's tree shape over our own resolved
	// state and fetch only the tables whose row span intersects a
	// differing subrange. Everything we hold is at or below our f.cmt ≤
	// snapCmt, so the two trees digest the same coverage point. A manifest
	// without a digest (the leader honored our Empty declaration, or a
	// peer sent none) ships every offered table — the conservative answer,
	// never an under-fetch.
	var needed []snapTableMeta
	if len(man.Leaves) == 0 {
		needed = man.Tables
	} else {
		local := merkle.BuildWithCuts(man.Cuts, r.engine.EntriesSince(0))
		remote := merkle.New(man.Cuts, man.Leaves)
		if remote == nil {
			return fmt.Errorf("core: snapshot manifest merkle tree malformed")
		}
		diffs := merkle.Diff(local, remote)
		for _, meta := range man.Tables {
			for _, d := range diffs {
				if d.Intersects(meta.MinRow, meta.MaxRow) {
					needed = append(needed, meta)
					break
				}
			}
		}
	}
	if len(needed) > 0 {
		blobs := make([][]byte, 0, len(needed))
		for _, meta := range needed {
			blob, err := r.fetchTable(leader, meta)
			if err != nil {
				// The round is abandoned whole; the retry loop requests
				// a fresh manifest and the transfer restarts.
				return err
			}
			blobs = append(blobs, blob)
		}
		if err := r.engine.IngestTables(blobs, man.SnapCmt); err != nil {
			return fmt.Errorf("core: ingest snapshot tables: %w", err)
		}
	} else {
		// Our resolved state already matches the snapshot everywhere;
		// seal it and claim the coverage point.
		if err := r.engine.Flush(); err != nil {
			return err
		}
		if err := r.engine.RaiseCheckpoint(man.SnapCmt); err != nil {
			return err
		}
	}

	// The snapshot covers every committed write at or below SnapCmt:
	// resolve the pending writes it subsumes WITHOUT re-applying them (a
	// pending op's memtable redo could shadow a newer ingested cell — the
	// ingest already reflects their final effect) and advance f.cmt.
	r.mu.Lock()
	popped := r.queue.popThrough(man.SnapCmt)
	if man.SnapCmt > r.lastCommitted {
		r.lastCommitted = man.SnapCmt
	}
	if man.SnapCmt > r.lastLSN {
		r.lastLSN = man.SnapCmt
	}
	if e := r.lastLSN.Epoch(); e > r.epoch {
		r.epoch = e
	}
	r.nextSeq = r.lastLSN.Seq() + 1
	r.mustPull = false
	r.snapshotCatchups++
	r.mu.Unlock()
	_, _ = r.n.log.Append(wal.Record{
		Cohort: r.rangeID, Type: wal.RecLastCommitted, LSN: man.SnapCmt,
	})
	for _, p := range popped {
		p.finish(writeOutcome{status: StatusOK})
	}
	return nil
}

// presentLSNsLocked returns the subset of the asked LSNs that appear in our
// durable history (log or pending queue); callers hold r.mu.
//
//spinnaker:locked(mu)
func (r *replica) presentLSNsLocked(asked []wal.LSN) []wal.LSN {
	if len(asked) == 0 {
		return nil
	}
	want := make(map[wal.LSN]bool, len(asked))
	for _, l := range asked {
		want[l] = true
	}
	present := make(map[wal.LSN]bool)
	// The log is authoritative; the scan is bounded by log size, and
	// catch-up is off the critical path.
	_ = r.n.log.ScanCohort(r.rangeID, func(rec wal.Record) error {
		if rec.Type == wal.RecWrite && want[rec.LSN] && !r.skipped.Contains(rec.LSN) {
			present[rec.LSN] = true
		}
		return nil
	})
	out := make([]wal.LSN, 0, len(present))
	for _, l := range asked {
		if present[l] {
			out = append(out, l)
		}
	}
	return out
}

// onTakeover is the follower's side of leader takeover (Fig 6 lines 5-6):
// the new leader catches us up to its l.cmt and sends a commit message.
// The payload reuses the catch-up response format; Present covers our whole
// ambiguous range so dead branches are truncated immediately.
func (r *replica) onTakeover(m transport.Message) {
	cr, err := decodeCatchupResp(m.Payload)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.role == RoleLeader {
		// We believed we led; a takeover from a higher epoch demotes us.
		r.demoteLocked(m.From)
	}
	r.leaderID = m.From
	if r.role == RoleRecovering {
		r.role = RoleFollower
	}
	r.mu.Unlock()

	ambiguous := r.ambiguousLSNs()
	if err := r.absorbCatchup(cr, ambiguous); err != nil {
		return
	}
	r.mu.Lock()
	cmt := r.lastCommitted
	r.mu.Unlock()
	r.n.markCurrent(r.rangeID)
	r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeLSN(cmt)})
}

// demoteLocked turns a (stale) leader back into a follower, failing any
// writes still waiting for quorum; callers hold r.mu.
//
//spinnaker:locked(mu)
func (r *replica) demoteLocked(newLeader string) {
	r.role = RoleFollower
	r.open = false
	r.leaderID = newLeader
	// Wake the election loop: it may be blocked watching our own leader
	// znode (which will never change by itself). On waking it finds the
	// znode held-but-not-led and deletes it so a real election can run;
	// without the nudge the whole cohort waits on the orphan forever.
	select {
	case r.electionNudge <- struct{}{}:
	default:
	}
	// Drop any proposals still waiting in the batcher: the new leader
	// owns the replication stream now (followers would reject them as
	// stale-epoch anyway).
	r.batchBuf = nil
	r.batchEnd = 0
	// Pending writes keep their places in the queue — they are in our
	// durable log and may yet be committed by the new leader's
	// re-proposals. Their waiting clients, however, must not hang.
	for _, lsn := range r.queue.snapshotOrder() {
		if p, ok := r.queue.get(lsn); ok {
			p.finish(writeOutcome{status: StatusAmbiguous, detail: "leadership lost mid-replication"})
		}
	}
}

// runCatchupLoop retries catch-up until it succeeds; used when a follower
// detects it is behind (gap in proposes, commit message beyond its log, or
// restart with an existing leader).
func (r *replica) runCatchupLoop() {
	for attempt := 0; ; attempt++ {
		if r.exiting() {
			return
		}
		r.mu.Lock()
		leader := r.leaderID
		role := r.role
		mustPull := r.mustPull
		r.mu.Unlock()
		if role == RoleLeader {
			return
		}
		if mustPull {
			// Split-created and still empty: seed from the origin
			// cohort (or the range's own leader once one exists). The
			// election gate re-nudges this loop until a pull succeeds,
			// so bounded attempts here never strand the replica.
			if err := r.splitPull(); err == nil {
				r.mu.Lock()
				if r.role == RoleRecovering {
					r.role = RoleFollower
				}
				r.mu.Unlock()
				r.n.markCurrent(r.rangeID)
				return
			}
			if attempt > 10 {
				return
			}
			time.Sleep(r.n.cfg.RetryInterval)
			continue
		}
		if leader == "" || leader == r.n.cfg.ID {
			leader = r.n.readLeader(r.rangeID)
			if leader == "" || leader == r.n.cfg.ID {
				return // no leader: the election loop owns recovery now
			}
			r.mu.Lock()
			r.leaderID = leader
			r.mu.Unlock()
		}
		err := r.catchUp(leader)
		if err == nil {
			r.mu.Lock()
			if r.role == RoleRecovering {
				r.role = RoleFollower
			}
			r.mu.Unlock()
			r.n.markCurrent(r.rangeID)
			return
		}
		if errors.Is(err, ErrNotLeader) {
			r.mu.Lock()
			r.leaderID = ""
			r.mu.Unlock()
		}
		if attempt > 50 {
			return
		}
		time.Sleep(r.n.cfg.RetryInterval)
	}
}
