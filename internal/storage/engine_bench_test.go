package storage

import (
	"fmt"
	"sync/atomic"
	"testing"

	"spinnaker/internal/kv"
	"spinnaker/internal/sstable"
	"spinnaker/internal/wal"
)

// benchEngine builds an engine with `tables` SSTables of `perTable` keys
// each (disjoint generations of the same key space when overlap is set,
// disjoint key ranges otherwise).
func benchEngine(b *testing.B, tables, perTable int, overlap bool) *Engine {
	b.Helper()
	e, err := Open(Config{
		Tables:     sstable.NewMemTableStore(),
		Meta:       wal.NewMemMetaStore(),
		FlushBytes: 1 << 30, // manual flushes only
		MaxTables:  1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	seq := uint64(0)
	for t := 0; t < tables; t++ {
		for i := 0; i < perTable; i++ {
			seq++
			row := fmt.Sprintf("t%02d-row%06d", t, i)
			if overlap {
				row = fmt.Sprintf("row%06d", i)
			}
			e.Apply(kv.Entry{
				Key:  kv.Key{Row: row, Col: "c"},
				Cell: kv.Cell{Value: []byte("0123456789abcdef"), LSN: wal.MakeLSN(1, seq), Version: seq},
			})
		}
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkEngineGetHit measures point reads of present keys across a
// deep table stack (bloom + key-range pruning keeps probes near 1).
func BenchmarkEngineGetHit(b *testing.B) {
	const tables, perTable = 8, 4096
	e := benchEngine(b, tables, perTable, false)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := kv.Key{Row: fmt.Sprintf("t%02d-row%06d", i%tables, (i*31)%perTable), Col: "c"}
			if _, ok := e.Get(k); !ok {
				b.Fatal("present key missed")
			}
			i++
		}
	})
}

// BenchmarkEngineGetMiss measures point reads of absent keys — the case
// bloom filters exist for (pre-PR every table was probed).
func BenchmarkEngineGetMiss(b *testing.B) {
	const tables, perTable = 8, 4096
	e := benchEngine(b, tables, perTable, false)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := kv.Key{Row: fmt.Sprintf("t%02d-row%06d", i%tables, (i*31)%perTable), Col: "absent"}
			if _, ok := e.Get(k); ok {
				b.Fatal("absent key found")
			}
			i++
		}
	})
}

// BenchmarkEngineFlush measures one seal + SSTable build + manifest swap.
func BenchmarkEngineFlush(b *testing.B) {
	e, err := Open(Config{
		Tables:     sstable.NewMemTableStore(),
		Meta:       wal.NewMemMetaStore(),
		FlushBytes: 1 << 30,
		MaxTables:  1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	seq := uint64(0)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		for i := 0; i < 2048; i++ {
			seq++
			e.Apply(kv.Entry{
				Key:  kv.Key{Row: fmt.Sprintf("row%06d", i), Col: "c"},
				Cell: kv.Cell{Value: []byte("0123456789abcdef"), LSN: wal.MakeLSN(1, seq), Version: seq},
			})
		}
		b.StartTimer()
		if err := e.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCompactRound measures one incremental size-tiered round
// over 4 similar-sized overlapping tables.
func BenchmarkEngineCompactRound(b *testing.B) {
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		e := benchEngine(b, 4, 4096, true)
		b.StartTimer()
		did, err := e.CompactOnce(sstable.DropAllTombstones)
		if err != nil {
			b.Fatal(err)
		}
		if !did {
			b.Fatal("no compaction round ran")
		}
	}
}

// BenchmarkEngineGetDuringCompaction measures point-read latency while a
// compaction churns in the background — the pre-PR engine froze reads for
// the duration of every merge.
func BenchmarkEngineGetDuringCompaction(b *testing.B) {
	const tables, perTable = 8, 4096
	e := benchEngine(b, tables, perTable, true)
	stop := make(chan struct{})
	done := make(chan struct{})
	var rounds atomic.Int64
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if did, err := e.CompactOnce(0); err != nil {
				b.Error(err)
				return
			} else if did {
				rounds.Add(1)
			}
			// Re-split the big table back into churn fodder.
			if _, _, tbls := e.Stats(); tbls <= 2 {
				seq := uint64(1 << 20)
				for t := 0; t < 4; t++ {
					for i := 0; i < perTable; i++ {
						seq++
						e.Apply(kv.Entry{
							Key:  kv.Key{Row: fmt.Sprintf("row%06d", i), Col: "c"},
							Cell: kv.Cell{Value: []byte("0123456789abcdef"), LSN: wal.MakeLSN(2, seq), Version: seq},
						})
					}
					if err := e.Flush(); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := kv.Key{Row: fmt.Sprintf("row%06d", (i*31)%perTable), Col: "c"}
			if _, ok := e.Get(k); !ok {
				b.Fatal("present key missed during compaction")
			}
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(rounds.Load()), "compactions")
}
