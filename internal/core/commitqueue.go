package core

import (
	"sort"
	"sync"
	"time"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

// writeOutcome is delivered to the goroutine waiting on a leader-side write
// when the write commits (or fails permanently).
type writeOutcome struct {
	status   uint8
	detail   string
	versions []uint64
}

// pendingWrite is one entry in the commit queue: a write that has been
// logged and proposed but not yet committed (paper §4.1: "The commit queue
// is a main-memory data structure that is used to track pending writes.
// Writes are committed only after receiving a sufficient number of acks
// from a cohort. In the meantime, they are stored in the commit queue.").
type pendingWrite struct {
	lsn        wal.LSN
	op         WriteOp
	selfForced bool // the local log force for this write completed
	// ackFrom records which followers acked this LSN individually
	// (per-write protocol; leader only). The batched protocol instead
	// tracks per-peer cumulative watermarks on the queue itself, and the
	// commit rule counts distinct peers across both.
	ackFrom  map[string]struct{}
	done     chan writeOutcome
	doneOnce sync.Once
	// respond delivers the outcome of an asynchronously handled client
	// write (the batched write path replies on commit instead of holding
	// a goroutine per write); enqueuedAt bounds its wait via the leader's
	// WriteTimeout sweep.
	respond    func(writeOutcome)
	enqueuedAt time.Time
	// lastPropose is when the leader last sent (or re-sent) the propose
	// message, for retransmission of writes whose proposes were lost.
	// The paper gets retransmission from TCP; across reconnects we must
	// re-propose explicitly, which followers dedupe by LSN.
	lastPropose time.Time
	// observers run when the write's outcome is decided (true = the
	// write committed). Conditional puts rejected on the strength of
	// this still-uncommitted write park their mismatch replies here: the
	// rejection may not become visible before the state that justifies
	// it does (§5.1 ordering, extended to the failure path).
	obsMu     sync.Mutex
	obsDone   bool
	obsOK     bool
	observers []func(committed bool)
}

// observe registers f to run once the write's outcome is decided; if it
// already has been, f runs immediately on the caller's goroutine.
func (p *pendingWrite) observe(f func(committed bool)) {
	p.obsMu.Lock()
	if p.obsDone {
		ok := p.obsOK
		p.obsMu.Unlock()
		f(ok)
		return
	}
	p.observers = append(p.observers, f)
	p.obsMu.Unlock()
}

// finish delivers the write's outcome to its waiting client exactly once;
// safe to call from any goroutine, and a no-op for follower-side pendings
// (which have no waiting client).
func (p *pendingWrite) finish(out writeOutcome) {
	p.doneOnce.Do(func() {
		if p.done != nil {
			p.done <- out
		}
		if p.respond != nil {
			p.respond(out)
		}
		p.obsMu.Lock()
		p.obsDone = true
		p.obsOK = out.status == StatusOK
		obs := p.observers
		p.observers = nil
		p.obsMu.Unlock()
		for _, f := range obs {
			f(p.obsOK)
		}
	})
}

// commitQueue tracks a cohort's pending writes in LSN order and decides
// when the head of the queue may commit. Writes commit strictly in LSN
// order within a cohort (§5.1), so a later write that gathers its quorum
// early still waits for its predecessors.
type commitQueue struct {
	mu      sync.Mutex
	byLSN   map[wal.LSN]*pendingWrite
	order   []wal.LSN // ascending
	byKey   map[kv.Key]wal.LSN
	keyLSNs map[kv.Key][]wal.LSN
	// peerAcked is the batched protocol's per-peer cumulative ack
	// watermark: peer p durably holds every write of the cohort at or
	// below peerAcked[p]. Reset on leadership transitions — a watermark
	// earned under an old epoch may cover LSNs the peer has since
	// logically truncated.
	peerAcked map[string]wal.LSN
}

func newCommitQueue() *commitQueue {
	return &commitQueue{
		byLSN:     make(map[wal.LSN]*pendingWrite),
		byKey:     make(map[kv.Key]wal.LSN),
		keyLSNs:   make(map[kv.Key][]wal.LSN),
		peerAcked: make(map[string]wal.LSN),
	}
}

// add inserts a pending write. It reports false if the LSN is already
// pending (a re-proposal the node has already logged, Fig 6 line 5:
// "a follower may already have some of the writes ... these can be
// detected and ignored").
func (q *commitQueue) add(p *pendingWrite) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.byLSN[p.lsn]; ok {
		return false
	}
	q.byLSN[p.lsn] = p
	// Writes are added in increasing LSN order in steady state; tolerate
	// out-of-order insertion during recovery by keeping order sorted.
	if n := len(q.order); n == 0 || q.order[n-1] < p.lsn {
		q.order = append(q.order, p.lsn)
	} else {
		i := sort.Search(n, func(i int) bool { return q.order[i] > p.lsn })
		q.order = append(q.order, 0)
		copy(q.order[i+1:], q.order[i:])
		q.order[i] = p.lsn
	}
	for _, c := range p.op.Cols {
		k := kv.Key{Row: p.op.Row, Col: c.Col}
		if p.lsn > q.byKey[k] {
			q.byKey[k] = p.lsn
		}
		q.keyLSNs[k] = append(q.keyLSNs[k], p.lsn)
	}
	return true
}

// markForced records that the local log force for lsn completed.
func (q *commitQueue) markForced(lsn wal.LSN) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if p, ok := q.byLSN[lsn]; ok {
		p.selfForced = true
	}
}

// markAck records a follower's per-write ack for lsn (the unbatched
// protocol). Duplicate acks from the same peer are idempotent.
func (q *commitQueue) markAck(from string, lsn wal.LSN) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if p, ok := q.byLSN[lsn]; ok {
		if p.ackFrom == nil {
			p.ackFrom = make(map[string]struct{}, 2)
		}
		p.ackFrom[from] = struct{}{}
	}
}

// markAckedThrough advances a peer's cumulative ack watermark (the batched
// protocol): the peer durably holds every write of the cohort at or below
// lsn. Watermarks only move forward, so stale or reordered acks — including
// acks carrying LSNs from a prior epoch, which compare below every LSN of
// the current epoch — are ignored.
func (q *commitQueue) markAckedThrough(from string, lsn wal.LSN) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if lsn > q.peerAcked[from] {
		q.peerAcked[from] = lsn
	}
}

// ackCountLocked returns the number of distinct peers among the allowed set
// that acknowledge lsn, by per-write ack or by cumulative watermark; a nil
// allowed set admits every peer. Callers hold q.mu. The filter exists for
// live cohort reconfiguration: a member that has been moved out of the
// cohort may logically truncate what it acked, so its acks stop counting
// toward quorum the moment the leader adopts the new membership.
//
//spinnaker:locked(mu)
func (q *commitQueue) ackCountLocked(p *pendingWrite, allowed map[string]bool) int {
	n := 0
	for peer := range p.ackFrom {
		if allowed == nil || allowed[peer] {
			n++
		}
	}
	for peer, through := range q.peerAcked {
		if through < p.lsn {
			continue
		}
		if allowed != nil && !allowed[peer] {
			continue
		}
		if _, dup := p.ackFrom[peer]; !dup {
			n++
		}
	}
	return n
}

// popCommittable removes and returns, in LSN order, the maximal prefix of
// the queue where every write has been locally forced and acknowledged by
// at least quorum-1 distinct followers drawn from peers (the leader's own
// log force is its vote, §8.1: a write commits once it is on 2 of 3 logs).
// With cumulative acks this commits the whole quorum-acked prefix in one
// pass. A nil peers slice counts acks from any sender (tests).
func (q *commitQueue) popCommittable(quorum int, peers []string) []*pendingWrite {
	q.mu.Lock()
	defer q.mu.Unlock()
	var allowed map[string]bool
	if peers != nil {
		allowed = make(map[string]bool, len(peers))
		for _, p := range peers {
			allowed[p] = true
		}
	}
	var out []*pendingWrite
	for len(q.order) > 0 {
		p := q.byLSN[q.order[0]]
		if !p.selfForced || 1+q.ackCountLocked(p, allowed) < quorum {
			break
		}
		out = append(out, p)
		q.removeHeadLocked()
	}
	return out
}

// resetAcks forgets every follower acknowledgement — per-write and
// cumulative — without touching the pending writes themselves. Called on
// leadership transitions: acks gathered under an earlier leadership no
// longer prove durability (a peer may have logically truncated writes it
// once acked), so takeover re-proposals must earn a fresh quorum.
func (q *commitQueue) resetAcks() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.peerAcked = make(map[string]wal.LSN)
	for _, p := range q.byLSN {
		p.ackFrom = nil
	}
}

// popThrough removes and returns, in LSN order, all pending writes with
// LSN ≤ through. Followers use it when a commit message (or piggybacked
// commit LSN) arrives: "apply all pending writes up to a certain LSN" (§5).
func (q *commitQueue) popThrough(through wal.LSN) []*pendingWrite {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*pendingWrite
	for len(q.order) > 0 && q.order[0] <= through {
		out = append(out, q.byLSN[q.order[0]])
		q.removeHeadLocked()
	}
	return out
}

// removeHeadLocked unlinks q.order[0]; callers hold q.mu.
//
//spinnaker:locked(mu)
func (q *commitQueue) removeHeadLocked() {
	lsn := q.order[0]
	p := q.byLSN[lsn]
	delete(q.byLSN, lsn)
	q.order = q.order[1:]
	for _, c := range p.op.Cols {
		k := kv.Key{Row: p.op.Row, Col: c.Col}
		ls := q.keyLSNs[k]
		for i, l := range ls {
			if l == lsn {
				ls = append(ls[:i], ls[i+1:]...)
				break
			}
		}
		if len(ls) == 0 {
			delete(q.keyLSNs, k)
			delete(q.byKey, k)
		} else {
			q.keyLSNs[k] = ls
			max := ls[0]
			for _, l := range ls[1:] {
				if l > max {
					max = l
				}
			}
			q.byKey[k] = max
		}
	}
}

// remove unlinks a single pending write (logical truncation of a dead
// branch, or a failed append). It reports whether the LSN was pending.
func (q *commitQueue) remove(lsn wal.LSN) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.byLSN[lsn]; !ok {
		return false
	}
	// Rotate the target to the head, then reuse the head-removal logic.
	for i, l := range q.order {
		if l == lsn {
			q.order = append(q.order[:i], q.order[i+1:]...)
			q.order = append([]wal.LSN{lsn}, q.order...)
			break
		}
	}
	q.removeHeadLocked()
	return true
}

// drain removes and returns everything, for discarding on role changes.
func (q *commitQueue) drain() []*pendingWrite {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*pendingWrite, 0, len(q.order))
	for _, lsn := range q.order {
		out = append(out, q.byLSN[lsn])
	}
	q.byLSN = make(map[wal.LSN]*pendingWrite)
	q.order = nil
	q.byKey = make(map[kv.Key]wal.LSN)
	q.keyLSNs = make(map[kv.Key][]wal.LSN)
	q.peerAcked = make(map[string]wal.LSN)
	return out
}

// hasPendingRowIn reports whether any pending write touches a row in
// [low, high); high == "" means the top of the key space. The origin leader
// of a split uses it to drain in-flight writes to the moved sub-range
// before serving a split pull.
func (q *commitQueue) hasPendingRowIn(low, high string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for k := range q.keyLSNs {
		if keyInRange(k.Row, low, high) {
			return true
		}
	}
	return false
}

// latestPending returns the newest pending write for key, if any. The
// leader consults it so version checks and version assignment see writes
// that are sequenced but not yet committed (writes execute in LSN order, so
// a conditional put behind a pending put must observe its effect, §5.1).
func (q *commitQueue) latestPending(key kv.Key) (*pendingWrite, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	lsn, ok := q.byKey[key]
	if !ok {
		return nil, false
	}
	return q.byLSN[lsn], true
}

// len returns the number of pending writes.
func (q *commitQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}

// head returns the smallest pending LSN, if any.
func (q *commitQueue) head() (wal.LSN, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.order) == 0 {
		return 0, false
	}
	return q.order[0], true
}

// has reports whether lsn is pending.
func (q *commitQueue) has(lsn wal.LSN) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.byLSN[lsn]
	return ok
}

// get returns the pending write for lsn.
func (q *commitQueue) get(lsn wal.LSN) (*pendingWrite, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p, ok := q.byLSN[lsn]
	return p, ok
}

// snapshotOrder returns the pending LSNs in ascending order.
func (q *commitQueue) snapshotOrder() []wal.LSN {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]wal.LSN(nil), q.order...)
}

// stalePending returns re-proposal record snapshots, in LSN order, for
// locally-forced pending writes whose last propose is older than age,
// marking them as re-proposed now. Snapshots (LSN + op) are taken under the
// lock so callers never touch pendingWrite fields concurrently with the ack
// path.
func (q *commitQueue) stalePending(age time.Duration) []proposeRec {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	var out []proposeRec
	for _, lsn := range q.order {
		p := q.byLSN[lsn]
		if !p.selfForced {
			continue
		}
		if p.lastPropose.IsZero() || now.Sub(p.lastPropose) >= age {
			p.lastPropose = now
			out = append(out, proposeRec{LSN: p.lsn, Op: p.op})
		}
	}
	return out
}

// staleResponders returns the async-responded pendings older than timeout,
// for the leader's WriteTimeout sweep (finish is idempotent, so re-listing
// an already-expired write is harmless).
func (q *commitQueue) staleResponders(timeout time.Duration) []*pendingWrite {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := time.Now()
	var out []*pendingWrite
	for _, lsn := range q.order {
		p := q.byLSN[lsn]
		if p.respond != nil && !p.enqueuedAt.IsZero() && now.Sub(p.enqueuedAt) > timeout {
			out = append(out, p)
		}
	}
	return out
}

// touchPropose stamps the propose time for lsn.
func (q *commitQueue) touchPropose(lsn wal.LSN) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if p, ok := q.byLSN[lsn]; ok {
		p.lastPropose = time.Now()
	}
}
