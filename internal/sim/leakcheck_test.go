package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeTB satisfies TB, recording Errorf calls and letting the test run
// registered cleanups on demand (LIFO, like testing.T).
type fakeTB struct {
	errs     []string
	cleanups []func()
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Errorf(format string, args ...any) {
	f.errs = append(f.errs, fmt.Sprintf(format, args...))
}
func (f *fakeTB) Cleanup(fn func()) { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestLeakSentinelPassesWhenClean(t *testing.T) {
	ft := &fakeTB{}
	CheckGoroutineLeaks(ft)
	ft.runCleanups()
	if len(ft.errs) != 0 {
		t.Fatalf("sentinel fired on a clean run: %v", ft.errs)
	}
}

func TestLeakSentinelCatchesLeak(t *testing.T) {
	old := leakSettle
	leakSettle = 200 * time.Millisecond // the leak is deliberate; don't wait 5s for it
	defer func() { leakSettle = old }()

	ft := &fakeTB{}
	CheckGoroutineLeaks(ft)

	release := make(chan struct{})
	done := make(chan struct{})
	const leaked = 4 // comfortably above leakSlack
	for i := 0; i < leaked; i++ {
		go func() {
			<-release
			done <- struct{}{}
		}()
	}

	ft.runCleanups()
	close(release)
	for i := 0; i < leaked; i++ {
		<-done
	}

	if len(ft.errs) != 1 {
		t.Fatalf("sentinel reported %d errors, want 1: %v", len(ft.errs), ft.errs)
	}
	if !strings.Contains(ft.errs[0], "goroutine leak") {
		t.Errorf("report does not name the leak: %s", ft.errs[0])
	}
	// The stack dump must point at the leaked goroutines so the failure
	// is actionable, not just a count.
	if !strings.Contains(ft.errs[0], "TestLeakSentinelCatchesLeak") {
		t.Errorf("report carries no stack dump naming the leaker:\n%s", ft.errs[0])
	}
}
