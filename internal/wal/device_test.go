package wal

import (
	"errors"
	"io"
	"path/filepath"
	"testing"
)

func TestMemDeviceAppendRead(t *testing.T) {
	d := NewMemDevice(DeviceInstant)
	off1, err := d.Append([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	off2, err := d.Append([]byte("world"))
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 || off2 != 5 {
		t.Errorf("offsets = %d,%d want 0,5", off1, off2)
	}
	buf := make([]byte, 10)
	if _, err := d.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "helloworld" {
		t.Errorf("read %q", buf)
	}
	if d.Size() != 10 {
		t.Errorf("Size = %d", d.Size())
	}
}

func TestMemDeviceCrashSemantics(t *testing.T) {
	d := NewMemDevice(DeviceInstant)
	if _, err := d.Append([]byte("forced")); err != nil {
		t.Fatal(err)
	}
	if err := d.Force(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append([]byte("+lost")); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if d.Size() != 6 {
		t.Errorf("after crash Size = %d, want 6 (unforced tail lost)", d.Size())
	}
}

func TestMemDeviceFailAndRepair(t *testing.T) {
	d := NewMemDevice(DeviceInstant)
	if _, err := d.Append([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := d.Force(); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	if _, err := d.Append([]byte("x")); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("append on failed device: %v", err)
	}
	if err := d.Force(); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("force on failed device: %v", err)
	}
	if _, err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("read on failed device: %v", err)
	}
	d.Repair()
	if d.Size() != 0 {
		t.Errorf("repaired device not empty: %d bytes", d.Size())
	}
	if _, err := d.Append([]byte("fresh")); err != nil {
		t.Errorf("append after repair: %v", err)
	}
}

func TestMemDeviceReadAtEOF(t *testing.T) {
	d := NewMemDevice(DeviceInstant)
	if _, err := d.Append([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(make([]byte, 1), 99); err != io.EOF {
		t.Errorf("ReadAt past end: %v, want io.EOF", err)
	}
	n, err := d.ReadAt(make([]byte, 10), 1)
	if n != 2 || err != io.EOF {
		t.Errorf("short read = %d,%v want 2,EOF", n, err)
	}
}

func TestMemDeviceForceCounting(t *testing.T) {
	d := NewMemDevice(DeviceInstant)
	for i := 0; i < 3; i++ {
		if _, err := d.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := d.Force(); err != nil {
			t.Fatal(err)
		}
	}
	if d.Forces() != 3 {
		t.Errorf("Forces = %d, want 3", d.Forces())
	}
	if d.Durable() != 3 {
		t.Errorf("Durable = %d, want 3", d.Durable())
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.log")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append([]byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if err := d.Force(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Size() != 9 {
		t.Fatalf("reopened Size = %d, want 9", d2.Size())
	}
	buf := make([]byte, 9)
	if _, err := d2.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "persisted" {
		t.Errorf("read %q", buf)
	}
	// Appends continue at the end across reopen.
	if off, err := d2.Append([]byte("!")); err != nil || off != 9 {
		t.Errorf("append after reopen: off=%d err=%v", off, err)
	}
}

func TestFileSegmentStoreLifecycle(t *testing.T) {
	s, err := NewFileSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{2, 0, 1} {
		if _, err := s.Create(id); err != nil {
			t.Fatalf("Create(%d): %v", id, err)
		}
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Fatalf("List = %v, want [0 1 2]", ids)
	}
	if _, err := s.Create(1); err == nil {
		t.Error("Create of existing segment must fail")
	}
	if err := s.Remove(1); err != nil {
		t.Fatal(err)
	}
	ids, _ = s.List()
	if len(ids) != 2 {
		t.Fatalf("after Remove List = %v", ids)
	}
}

func TestMemSegmentStoreLifecycle(t *testing.T) {
	s := NewMemSegmentStore(DeviceInstant)
	if _, err := s.Create(0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(0); err == nil {
		t.Error("duplicate Create must fail")
	}
	if _, err := s.Open(7); err == nil {
		t.Error("Open of missing segment must fail")
	}
	if err := s.Remove(0); err != nil {
		t.Fatal(err)
	}
	ids, _ := s.List()
	if len(ids) != 0 {
		t.Errorf("List after remove = %v", ids)
	}
}

func TestMemSegmentStoreFailDestroysAll(t *testing.T) {
	s := NewMemSegmentStore(DeviceInstant)
	d, _ := s.Create(0)
	if _, err := d.Append([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := d.Force(); err != nil {
		t.Fatal(err)
	}
	s.Fail()
	ids, _ := s.List()
	if len(ids) != 0 {
		t.Errorf("segments survive Fail: %v", ids)
	}
}
