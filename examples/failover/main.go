// Failover: the availability experiment of Appendix D.1, live. A steady
// write workload runs against one cohort while its leader is crashed; the
// example measures the unavailability window (leader election + takeover)
// and verifies that every acknowledged write survives — regardless of the
// failure sequence, unlike master-slave replication (Figure 1).
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"spinnaker"
)

func main() {
	cluster, err := spinnaker.NewCluster(spinnaker.Options{
		Nodes:        3,
		CommitPeriod: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()

	client := cluster.NewClient()
	acked := make(map[string]string)

	// Steady writes to one key range.
	write := func(i int) error {
		row := cluster.Key(i) // consecutive keys -> same cohort at low i
		val := fmt.Sprintf("value-%d", i)
		if _, err := client.Put(row, "c", []byte(val)); err != nil {
			return err
		}
		acked[row] = val
		return nil
	}
	for i := 0; i < 50; i++ {
		if err := write(i); err != nil {
			log.Fatalf("warm-up write: %v", err)
		}
	}

	leader := cluster.LeaderOf(cluster.Key(0))
	fmt.Printf("cohort leader for %s is %s — crashing it\n", cluster.Key(0), leader)
	if err := cluster.CrashNode(leader); err != nil {
		log.Fatal(err)
	}

	// Measure the unavailability window: first write to succeed after the
	// crash marks recovery (leader election + takeover, Table 1).
	crashAt := time.Now()
	i := 50
	for {
		err := write(i)
		if err == nil {
			break
		}
		if !errors.Is(err, spinnaker.ErrUnavailable) {
			log.Fatalf("unexpected failure: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("cohort available again after %v (new leader: %s)\n",
		time.Since(crashAt).Round(time.Millisecond), cluster.LeaderOf(cluster.Key(0)))

	// Keep writing through the new leader.
	for i++; i < 80; i++ {
		if err := write(i); err != nil {
			log.Fatalf("post-failover write: %v", err)
		}
	}

	// Verify no acknowledged write was lost (§7's guarantee).
	lost := 0
	for row, want := range acked {
		got, _, err := client.Get(row, "c", spinnaker.Strong)
		if err != nil || string(got) != want {
			lost++
		}
	}
	fmt.Printf("verified %d acknowledged writes after failover: %d lost\n", len(acked), lost)
	if lost > 0 {
		log.Fatal("LOST COMMITTED WRITES — this must never happen")
	}

	// Bring the old leader back; it rejoins as a follower and catches up.
	if err := cluster.RestartNode(leader); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("old leader %s restarted and rejoined as follower\n", leader)
	time.Sleep(200 * time.Millisecond)
	fmt.Println("done")
}
