package sim

import (
	"errors"
	"testing"
	"time"

	"spinnaker/internal/transport"
)

// scenarioDuration scales the fault window down in -short mode so the
// default CI path stays fast while still composing real faults.
func scenarioDuration(t *testing.T) time.Duration {
	if testing.Short() {
		return 800 * time.Millisecond
	}
	return 2500 * time.Millisecond
}

// runNemesis executes one scenario and fails the test on any consistency
// violation, printing the reproducing seed and the offending subhistory.
func runNemesis(t *testing.T, opts ScenarioOptions) *ScenarioResult {
	t.Helper()
	res, err := RunScenario(opts)
	if err != nil {
		if errors.Is(err, ErrNotLinearizable) {
			t.Fatalf("CONSISTENCY VIOLATION (reproduce with seed %d):\n%v\nnemesis schedule:\n%s",
				opts.Seed, err, res.FormatSteps())
		}
		t.Fatalf("scenario failed: %v", err)
	}
	if res.Ops == 0 {
		t.Fatal("scenario recorded no operations")
	}
	if res.Writes == 0 {
		t.Fatal("no write was ever acknowledged — the workload never got through")
	}
	t.Logf("seed %d: %d ops (%d reads, %d acked writes, %d ambiguous) over %d keys; %d nemesis steps; linearizable",
		res.Seed, res.Ops, res.Reads, res.Writes, res.Check.Unknown, res.Check.Keys, len(res.Steps))
	return res
}

func TestNemesisLeaderIsolation(t *testing.T) {
	runNemesis(t, ScenarioOptions{
		Seed:     101,
		Writers:  4,
		Duration: scenarioDuration(t),
		Faults:   []NemesisFault{FaultIsolateLeader},
	})
}

func TestNemesisMajorityMinoritySplit(t *testing.T) {
	runNemesis(t, ScenarioOptions{
		Seed:     202,
		Writers:  4,
		Duration: scenarioDuration(t),
		Faults:   []NemesisFault{FaultSplitMajority},
	})
}

func TestNemesisLinkFlapping(t *testing.T) {
	// Link flapping composed with a lossy, duplicating, reordering fault
	// plane on every node↔node link: the replication protocol's dedupe
	// and retransmission paths under sustained abuse.
	runNemesis(t, ScenarioOptions{
		Seed:     303,
		Writers:  4,
		Duration: scenarioDuration(t),
		Faults:   []NemesisFault{FaultFlapLinks},
		LinkFaults: transport.LinkFaults{
			DropProb:    0.02,
			DupProb:     0.02,
			ReorderProb: 0.05,
			Jitter:      2 * time.Millisecond,
		},
	})
}

func TestNemesisCrashAndDiskFailure(t *testing.T) {
	runNemesis(t, ScenarioOptions{
		Seed:     404,
		Writers:  4,
		Duration: scenarioDuration(t),
		Faults:   []NemesisFault{FaultCrashRestart, FaultCrashDisk},
	})
}

// TestNemesisComposedFullFaultSpace drives every fault primitive on one
// seeded schedule over a lossy network — the full composed fault space of
// the issue. Long: gated out of -short.
func TestNemesisComposedFullFaultSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("composed nemesis scenario takes several seconds")
	}
	runNemesis(t, ScenarioOptions{
		Seed:     505,
		Writers:  5,
		Keys:     7,
		Duration: 5 * time.Second,
		Faults:   AllFaults,
		LinkFaults: transport.LinkFaults{
			DropProb:    0.01,
			DupProb:     0.01,
			ReorderProb: 0.02,
			Jitter:      time.Millisecond,
		},
	})
}

// TestNemesisRebalanceUnderFaults is the scale-out acceptance scenario:
// live reconfiguration (node addition, range splits, cohort moves,
// leadership transfers) runs concurrently with leader isolation and
// crash-restart faults and a strict-write multi-writer workload, and the
// whole history must stay per-key linearizable.
func TestNemesisRebalanceUnderFaults(t *testing.T) {
	runNemesis(t, ScenarioOptions{
		Seed:      606,
		Writers:   4,
		Duration:  scenarioDuration(t),
		Faults:    []NemesisFault{FaultIsolateLeader, FaultCrashRestart},
		Rebalance: true,
	})
}

// TestNemesisBalancerUnderFaults pits the load-adaptive balancer against
// the nemesis: hot-range splits, leadership transfers, and cohort moves
// run concurrently with leader isolation and crash-restart faults, every
// published layout version must satisfy the structural invariants
// (cluster.CheckInvariants), and the workload history must stay per-key
// linearizable across every action.
func TestNemesisBalancerUnderFaults(t *testing.T) {
	res := runNemesis(t, ScenarioOptions{
		Seed:     707,
		Nodes:    4, // an outside-cohort node, so balancer moves are possible
		Writers:  4,
		Keys:     6,
		Duration: scenarioDuration(t),
		Faults:   []NemesisFault{FaultIsolateLeader, FaultCrashRestart},
		Balance:  true,
	})
	if res.LayoutsChecked == 0 {
		t.Fatal("no layout version was ever invariant-checked")
	}
	t.Logf("balancer took %d actions; %d layout versions invariant-checked",
		len(res.BalancerActions), res.LayoutsChecked)
}

// TestNemesisSeededScheduleReproducible pins the replay contract: the
// same seed and options produce the same nemesis action schedule.
func TestNemesisSeededScheduleReproducible(t *testing.T) {
	opts := ScenarioOptions{
		Seed:     42,
		Writers:  3,
		Duration: scenarioDuration(t),
	}
	a := runNemesis(t, opts)
	b := runNemesis(t, opts)
	if len(a.Schedule) == 0 {
		t.Fatal("no nemesis decisions recorded")
	}
	// Wall-clock timing can let one run squeeze in an extra fault round;
	// the shared prefix of seed-determined decisions must be identical.
	n := len(a.Schedule)
	if len(b.Schedule) < n {
		n = len(b.Schedule)
	}
	for i := 0; i < n; i++ {
		if a.Schedule[i] != b.Schedule[i] {
			t.Fatalf("schedules diverged at decision %d:\n  %q\n  %q", i, a.Schedule[i], b.Schedule[i])
		}
	}
}
