package core

import (
	"encoding/binary"
	"fmt"

	"spinnaker/internal/merkle"
	"spinnaker/internal/wal"
)

// Bulk catch-up wire formats (§6.1, SSTable-based catch-up). All decoders
// validate element counts and lengths against the payload size before
// allocating, matching the manifest hardening in internal/storage.

// snapTableMeta describes one SSTable the leader offers for shipping: its
// id in the leader's engine (the chunk-fetch handle), full blob size and
// CRC, the LSN tags from its footer, and its row span so the follower can
// prune the fetch to tables intersecting differing Merkle subranges.
type snapTableMeta struct {
	ID     uint64
	Size   uint32
	CRC    uint32
	MinLSN wal.LSN
	MaxLSN wal.LSN
	MinRow string
	MaxRow string
}

// snapManifest is the MsgSnapManifest reply payload: the snapshot's
// coverage point (SnapCmt — every committed write at or below it is
// reflected in the listed tables), the leader's current commit point, the
// ambiguous-LSN intersection (as in catchupResp), the table list, and the
// leader's Merkle tree (cuts + leaf digests) over its resolved state at
// SnapCmt.
type snapManifest struct {
	Status  uint8
	Cmt     wal.LSN
	SnapCmt wal.LSN
	Present []wal.LSN
	Tables  []snapTableMeta
	Cuts    []string
	Leaves  []merkle.Digest
}

// Minimum encoded sizes for count validation.
const (
	minSnapTableMetaSize = 8 + 4 + 4 + 8 + 8 + 2 + 2 // empty row bounds
	minCutSize           = 2                         // empty string
)

func encodeSnapManifest(m snapManifest) []byte {
	buf := []byte{m.Status}
	buf = append(buf, encodeLSN(m.Cmt)...)
	buf = append(buf, encodeLSN(m.SnapCmt)...)
	buf = append(buf, encodeLSNs(m.Present)...)
	var s [8]byte
	binary.LittleEndian.PutUint32(s[:4], uint32(len(m.Tables)))
	buf = append(buf, s[:4]...)
	for _, t := range m.Tables {
		binary.LittleEndian.PutUint64(s[:8], t.ID)
		buf = append(buf, s[:8]...)
		binary.LittleEndian.PutUint32(s[:4], t.Size)
		buf = append(buf, s[:4]...)
		binary.LittleEndian.PutUint32(s[:4], t.CRC)
		buf = append(buf, s[:4]...)
		binary.LittleEndian.PutUint64(s[:8], uint64(t.MinLSN))
		buf = append(buf, s[:8]...)
		binary.LittleEndian.PutUint64(s[:8], uint64(t.MaxLSN))
		buf = append(buf, s[:8]...)
		binary.LittleEndian.PutUint16(s[:2], uint16(len(t.MinRow)))
		buf = append(buf, s[:2]...)
		buf = append(buf, t.MinRow...)
		binary.LittleEndian.PutUint16(s[:2], uint16(len(t.MaxRow)))
		buf = append(buf, s[:2]...)
		buf = append(buf, t.MaxRow...)
	}
	binary.LittleEndian.PutUint32(s[:4], uint32(len(m.Cuts)))
	buf = append(buf, s[:4]...)
	for _, c := range m.Cuts {
		binary.LittleEndian.PutUint16(s[:2], uint16(len(c)))
		buf = append(buf, s[:2]...)
		buf = append(buf, c...)
	}
	binary.LittleEndian.PutUint32(s[:4], uint32(len(m.Leaves)))
	buf = append(buf, s[:4]...)
	for i := range m.Leaves {
		buf = append(buf, m.Leaves[i][:]...)
	}
	return buf
}

func decodeSnapManifest(b []byte) (snapManifest, error) {
	var m snapManifest
	if len(b) < 1+8+8 {
		return m, fmt.Errorf("core: snap manifest truncated")
	}
	m.Status = b[0]
	m.Cmt = wal.LSN(binary.LittleEndian.Uint64(b[1:9]))
	m.SnapCmt = wal.LSN(binary.LittleEndian.Uint64(b[9:17]))
	off := 17
	present, n, err := decodeLSNs(b[off:])
	if err != nil {
		return m, err
	}
	m.Present = present
	off += n

	if len(b)-off < 4 {
		return m, fmt.Errorf("core: snap manifest table count truncated")
	}
	nTables := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if nTables > (len(b)-off)/minSnapTableMetaSize {
		return m, fmt.Errorf("core: snap manifest table count %d exceeds %d payload bytes", nTables, len(b)-off)
	}
	if nTables > 0 {
		m.Tables = make([]snapTableMeta, 0, nTables)
	}
	for i := 0; i < nTables; i++ {
		if len(b)-off < minSnapTableMetaSize {
			return m, fmt.Errorf("core: snap manifest table %d truncated", i)
		}
		var t snapTableMeta
		t.ID = binary.LittleEndian.Uint64(b[off:])
		off += 8
		t.Size = binary.LittleEndian.Uint32(b[off:])
		off += 4
		t.CRC = binary.LittleEndian.Uint32(b[off:])
		off += 4
		t.MinLSN = wal.LSN(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		t.MaxLSN = wal.LSN(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		ml := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if len(b)-off < ml+2 {
			return m, fmt.Errorf("core: snap manifest table %d row bounds truncated", i)
		}
		t.MinRow = string(b[off : off+ml])
		off += ml
		xl := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if len(b)-off < xl {
			return m, fmt.Errorf("core: snap manifest table %d row bounds truncated", i)
		}
		t.MaxRow = string(b[off : off+xl])
		off += xl
		m.Tables = append(m.Tables, t)
	}

	if len(b)-off < 4 {
		return m, fmt.Errorf("core: snap manifest cut count truncated")
	}
	nCuts := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if nCuts > (len(b)-off)/minCutSize {
		return m, fmt.Errorf("core: snap manifest cut count %d exceeds %d payload bytes", nCuts, len(b)-off)
	}
	if nCuts > 0 {
		m.Cuts = make([]string, 0, nCuts)
	}
	for i := 0; i < nCuts; i++ {
		if len(b)-off < 2 {
			return m, fmt.Errorf("core: snap manifest cut %d truncated", i)
		}
		cl := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if len(b)-off < cl {
			return m, fmt.Errorf("core: snap manifest cut %d truncated", i)
		}
		m.Cuts = append(m.Cuts, string(b[off:off+cl]))
		off += cl
	}

	if len(b)-off < 4 {
		return m, fmt.Errorf("core: snap manifest leaf count truncated")
	}
	nLeaves := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if nLeaves > (len(b)-off)/merkle.DigestSize {
		return m, fmt.Errorf("core: snap manifest leaf count %d exceeds %d payload bytes", nLeaves, len(b)-off)
	}
	if nLeaves > 0 {
		m.Leaves = make([]merkle.Digest, nLeaves)
	}
	for i := 0; i < nLeaves; i++ {
		copy(m.Leaves[i][:], b[off:off+merkle.DigestSize])
		off += merkle.DigestSize
	}
	return m, nil
}

// tableChunkReq asks for the bytes of one manifest table starting at
// Offset. The follower drives the offsets, so a chunk that fails its CRC is
// simply re-requested at the same offset (resumable transfer).
type tableChunkReq struct {
	Table  uint64
	Offset uint32
}

func encodeTableChunkReq(r tableChunkReq) []byte {
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[0:8], r.Table)
	binary.LittleEndian.PutUint32(buf[8:12], r.Offset)
	return buf[:]
}

func decodeTableChunkReq(b []byte) (tableChunkReq, error) {
	var r tableChunkReq
	if len(b) < 12 {
		return r, fmt.Errorf("core: table chunk req truncated")
	}
	r.Table = binary.LittleEndian.Uint64(b[0:8])
	r.Offset = binary.LittleEndian.Uint32(b[8:12])
	return r, nil
}

// tableChunk is one slice of a table blob. Total lets the follower verify
// it is still fetching the blob the manifest described; CRC covers Data
// alone (the whole blob is checked against the manifest CRC at the end).
// StatusNotFound means the table left the live set (compacted away) and the
// follower must restart from a fresh manifest.
type tableChunk struct {
	Status uint8
	Table  uint64
	Offset uint32
	Total  uint32
	CRC    uint32
	Data   []byte
}

func encodeTableChunk(c tableChunk) []byte {
	buf := make([]byte, 1+8+4+4+4+4, 1+8+4+4+4+4+len(c.Data))
	buf[0] = c.Status
	binary.LittleEndian.PutUint64(buf[1:9], c.Table)
	binary.LittleEndian.PutUint32(buf[9:13], c.Offset)
	binary.LittleEndian.PutUint32(buf[13:17], c.Total)
	binary.LittleEndian.PutUint32(buf[17:21], c.CRC)
	binary.LittleEndian.PutUint32(buf[21:25], uint32(len(c.Data)))
	return append(buf, c.Data...)
}

func decodeTableChunk(b []byte) (tableChunk, error) {
	var c tableChunk
	if len(b) < 25 {
		return c, fmt.Errorf("core: table chunk truncated")
	}
	c.Status = b[0]
	c.Table = binary.LittleEndian.Uint64(b[1:9])
	c.Offset = binary.LittleEndian.Uint32(b[9:13])
	c.Total = binary.LittleEndian.Uint32(b[13:17])
	c.CRC = binary.LittleEndian.Uint32(b[17:21])
	dl := int(binary.LittleEndian.Uint32(b[21:25]))
	if dl > len(b)-25 {
		return c, fmt.Errorf("core: table chunk data length %d exceeds %d payload bytes", dl, len(b)-25)
	}
	if dl > 0 {
		c.Data = append([]byte(nil), b[25:25+dl]...)
	}
	return c, nil
}
