package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"spinnaker/internal/coord"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Coordination-service paths for a key range (paper §7.2: information
// needed for leader election is stored under /r).
func rangePath(r uint32) string      { return fmt.Sprintf("/ranges/%d", r) }
func candidatesPath(r uint32) string { return rangePath(r) + "/candidates" }
func leaderPath(r uint32) string     { return rangePath(r) + "/leader" }
func epochPath(r uint32) string      { return rangePath(r) + "/epoch" }

// candidatePrefix names this node's candidate znodes so it can clean up its
// own stale entries (Fig 7 line 1) and recognize its own candidacy.
func (r *replica) candidatePrefix() string {
	return fmt.Sprintf("%s/c:%s:", candidatesPath(r.rangeID), r.n.cfg.ID)
}

// electionLoop drives a replica's leadership state for the life of the
// node: follow the current leader if one exists, run the election protocol
// of Figure 7 when there is none, and watch for the ephemeral leader znode
// to disappear (the coordination service deletes it when the leader's
// session dies, triggering a new election).
func (r *replica) electionLoop() {
	sess := r.n.coordSess
	if err := sess.EnsurePath(candidatesPath(r.rangeID)); err != nil {
		return
	}
	_, _ = sess.Create(epochPath(r.rangeID), encodeEpoch(0), 0)

	for !r.exiting() {
		leaderWatch, err := sess.Watch(leaderPath(r.rangeID))
		if err != nil {
			return // session gone; node is shutting down
		}
		data, ver, err := sess.GetVersion(leaderPath(r.rangeID))
		switch {
		case err == nil:
			leader := string(data)
			if leader == r.n.cfg.ID {
				// We hold the leader znode (re-found after a
				// watch fired for an unrelated reason).
				r.mu.Lock()
				isLeader := r.role == RoleLeader
				r.mu.Unlock()
				if !isLeader {
					// The znode carries our id but we are not
					// leading: either a previous incarnation's
					// entry (its session is dead; the znode
					// just has not expired yet) or our own
					// claim orphaned by a mid-takeover
					// demotion. Waiting it out deadlocks the
					// cohort — every other member sees a live
					// leader znode and follows it. Delete it —
					// version-guarded, so a rival's claim
					// created in between is never the one
					// removed — and re-elect.
					_ = sess.DeleteVersion(leaderPath(r.rangeID), ver)
					continue
				}
			} else {
				r.becomeFollower(leader)
			}
			// Block until the leader znode changes (deleted on
			// leader death), then loop.
			r.waitEvent(leaderWatch)
		case errors.Is(err, coord.ErrNoNode):
			// No leader: run the election protocol (Fig 7). The
			// watch from above is spent by our own candidate
			// traffic at worst; elect() manages its own waits.
			r.runElection()
		default:
			return // session closed
		}
	}
}

// waitEvent blocks on a watch channel until it fires, the node stops, or
// the replica retires.
func (r *replica) waitEvent(ch <-chan coord.Event) {
	select {
	case <-ch:
	case <-r.n.stopCh:
	case <-r.stopCh:
	case <-r.electionNudge:
	}
}

// becomeFollower records the leadership and, if this replica is behind,
// starts catch-up.
func (r *replica) becomeFollower(leader string) {
	r.mu.Lock()
	wasLeader := r.role == RoleLeader
	prev := r.leaderID
	if wasLeader && leader != r.n.cfg.ID {
		r.demoteLocked(leader)
	}
	r.leaderID = leader
	if r.role == RoleRecovering {
		r.mu.Unlock()
		// Recovering nodes must complete the catch-up phase before
		// serving (§6.1); the loop flips the role to follower.
		r.runCatchupLoop()
		return
	}
	r.mu.Unlock()
	if prev != leader {
		// New leader after a takeover: our pending writes may need
		// resolution; catch-up is idempotent and cheap when current.
		go r.runCatchupLoop()
	}
}

// runElection is Figure 7. Leader election is triggered whenever a cohort's
// leader has failed or after local recovery on a restart.
func (r *replica) runElection() {
	sess := r.n.coordSess

	r.mu.Lock()
	mustPull := r.mustPull
	abstain := r.abstain
	r.abstain = false
	r.mu.Unlock()
	if mustPull {
		// A fresh replica of a split-created range holds none of the
		// range's data yet; standing for election could elect an empty
		// leader and lose the moved rows. Pull from the origin first.
		r.n.nudgeCatchup(r)
		select {
		case <-time.After(r.n.cfg.ElectionTimeout):
		case <-r.n.stopCh:
		case <-r.stopCh:
		case <-r.electionNudge:
		}
		return
	}
	if abstain {
		// Leadership transfer: sit out one round so another member can
		// win; if nobody does, the next pass participates normally.
		select {
		case <-time.After(2 * r.n.cfg.ElectionTimeout):
		case <-r.n.stopCh:
		case <-r.stopCh:
		}
		return
	}

	// Line 1: clean up our stale state from previous rounds.
	kids, err := sess.Children(candidatesPath(r.rangeID))
	if err != nil {
		return
	}
	for _, kid := range kids {
		if strings.HasPrefix(kid.Name, "c:"+r.n.cfg.ID+":") {
			_ = sess.Delete(candidatesPath(r.rangeID) + "/" + kid.Name)
		}
	}

	r.mu.Lock()
	r.role = RoleCandidate
	nLst := r.lastLSN
	r.mu.Unlock()

	// Lines 3-4: announce our candidacy in a sequential ephemeral znode
	// carrying our last LSN, stamped with the epoch we observe. The stamp
	// scopes the round: a node that has not yet noticed the current
	// leader's death still has its candidacy from an EARLIER round parked
	// under /candidates (each node cleans up only its own entries, line
	// 1), and that entry carries an ancient n.lst. Counting it toward the
	// quorum would let this round conclude before the live nodes
	// re-register — electing a laggard over a node that holds committed
	// writes, which are then logically truncated (lost). Only candidacies
	// at the newest observed epoch may count.
	myEpoch := r.n.readEpochZnode(r.rangeID)
	myPath, err := sess.Create(r.candidatePrefix(), encodeCandidacy(myEpoch, nLst),
		coord.FlagEphemeral|coord.FlagSequential)
	if err != nil {
		return
	}
	myName := myPath[strings.LastIndex(myPath, "/")+1:]

	for !r.exiting() {
		// Line 5: set a watch and wait for a majority of current-round
		// candidacies.
		watch, err := sess.WatchChildren(candidatesPath(r.rangeID))
		if err != nil {
			return
		}
		kids, err := sess.Children(candidatesPath(r.rangeID))
		if err != nil {
			return
		}
		maxObs := myEpoch
		for _, kid := range kids {
			if e, _ := decodeCandidacy(kid.Data); e > maxObs {
				maxObs = e
			}
		}
		if maxObs > myEpoch {
			// A newer round started (a takeover consumed an epoch and
			// failed, or we raced a bump): our entry no longer counts.
			// Re-register at the newer round with our current state.
			_ = sess.Delete(candidatesPath(r.rangeID) + "/" + myName)
			r.mu.Lock()
			nLst = r.lastLSN
			r.mu.Unlock()
			myEpoch = maxObs
			if e := r.n.readEpochZnode(r.rangeID); e > myEpoch {
				myEpoch = e
			}
			myPath, err = sess.Create(r.candidatePrefix(), encodeCandidacy(myEpoch, nLst),
				coord.FlagEphemeral|coord.FlagSequential)
			if err != nil {
				return
			}
			myName = myPath[strings.LastIndex(myPath, "/")+1:]
			continue
		}
		electorate := kids[:0:0]
		for _, kid := range kids {
			if e, _ := decodeCandidacy(kid.Data); e == maxObs {
				electorate = append(electorate, kid)
			}
		}
		r.mu.Lock()
		quorum := r.quorum
		home := r.home
		r.mu.Unlock()
		if len(electorate) < quorum {
			select {
			case <-watch:
				continue
			case <-r.n.stopCh:
				return
			case <-r.stopCh:
				return
			case <-time.After(r.n.cfg.ElectionTimeout):
				continue
			}
		}

		// Line 6: the new leader is the current-round candidate with the
		// max n.lst. Ties prefer the layout's home node (so leadership
		// lands on the preferred placement after a rebalance), then fall
		// back to znode sequence numbers. Every node evaluates the same
		// rule over the same candidacy data, so the choice agrees; in
		// the rare window where nodes disagree on the home (a layout
		// adoption in flight), the leader znode create arbitrates.
		winner := electorate[0]
		_, winnerLSN := decodeCandidacy(electorate[0].Data)
		for _, kid := range electorate[1:] {
			_, lsn := decodeCandidacy(kid.Data)
			switch {
			case lsn > winnerLSN:
				winner, winnerLSN = kid, lsn
			case lsn == winnerLSN && candidateBeats(kid, winner, home):
				winner, winnerLSN = kid, lsn
			}
		}

		if winner.Name == myName {
			// Lines 7-9: claim leadership and run takeover.
			_, err := sess.Create(leaderPath(r.rangeID), []byte(r.n.cfg.ID), coord.FlagEphemeral)
			if err != nil && !errors.Is(err, coord.ErrNodeExists) {
				return
			}
			if err == nil {
				if r.takeover() {
					return // leading; electionLoop watches our znode
				}
				// Takeover failed (lost quorum); release the
				// claim and retry.
				_ = sess.Delete(leaderPath(r.rangeID))
				continue
			}
			// Someone else holds /leader; fall through to learn it.
		}

		// Line 11: read /r/leader to learn the new leader.
		leaderWatch, err := sess.Watch(leaderPath(r.rangeID))
		if err != nil {
			return
		}
		if data, err := sess.Get(leaderPath(r.rangeID)); err == nil {
			if string(data) != r.n.cfg.ID {
				r.becomeFollower(string(data))
			}
			return
		}
		// Leader znode still absent: wait for it, a candidate change,
		// or a timeout (the winner may have died mid-takeover).
		select {
		case <-leaderWatch:
		case <-watch:
		case <-time.After(r.n.cfg.ElectionTimeout):
		case <-r.n.stopCh:
			return
		case <-r.stopCh:
			return
		}
	}
}

// candidateNode extracts the node id from a candidate znode name
// ("c:<node>:<seq digits>").
func candidateNode(name string) string {
	if !strings.HasPrefix(name, "c:") {
		return ""
	}
	i := strings.LastIndex(name, ":")
	if i < 2 {
		return ""
	}
	return name[2:i]
}

// candidateBeats breaks an equal-lst tie between candidates a and b: the
// layout's home node wins, else the lower znode sequence (Fig 7 line 6).
func candidateBeats(a, b coord.ChildInfo, home string) bool {
	aHome := candidateNode(a.Name) == home
	bHome := candidateNode(b.Name) == home
	if aHome != bHome {
		return aHome
	}
	return a.Seq < b.Seq
}

// takeover is Figure 6: bring at least one follower up to our last
// committed LSN, re-propose the unresolved writes in (l.cmt, l.lst], and
// open the cohort for writes under a fresh epoch. Returns false if quorum
// could not be assembled (the claim should be released).
func (r *replica) takeover() bool {
	// Allocate the next epoch through the coordination service (App. B:
	// "a new epoch number is stored in Zookeeper before the leader
	// accepts any new writes"). A split-created range starts its epoch
	// znode at zero while its pulled data carries the origin range's
	// epochs, so keep bumping until the new epoch exceeds every LSN we
	// hold — LSN monotonicity across leaderships depends on it.
	r.mu.Lock()
	lLst := r.lastLSN
	r.mu.Unlock()
	newEpoch, err := r.n.bumpEpoch(r.rangeID)
	for err == nil && newEpoch <= lLst.Epoch() {
		newEpoch, err = r.n.bumpEpoch(r.rangeID)
	}
	if err != nil {
		return false
	}

	r.mu.Lock()
	r.role = RoleLeader
	r.open = false
	r.leaderID = r.n.cfg.ID
	lCmt := r.lastCommitted
	lLst = r.lastLSN
	peers := append([]string(nil), r.peers...)
	r.mu.Unlock()

	// Lines 3-7: catch up each follower to l.cmt, in parallel; line 8:
	// wait until at least one is caught up. (With 3-way replication one
	// success gives the quorum of 2, counting ourselves.)
	results := make(chan bool, len(peers))
	for _, peer := range peers {
		go func(peer string) { results <- r.syncFollower(peer, lCmt, lLst) }(peer)
	}
	deadline := time.After(r.n.cfg.TakeoverTimeout)
	caughtUp := 0
	for i := 0; i < len(peers) && caughtUp == 0; i++ {
		select {
		case ok := <-results:
			if ok {
				caughtUp++
			}
		case <-deadline:
			i = len(peers)
		case <-r.n.stopCh:
			return false
		}
	}
	if caughtUp == 0 {
		r.mu.Lock()
		r.role = RoleCandidate
		r.mu.Unlock()
		return false
	}

	// Line 9: re-propose the unresolved writes in (l.cmt, l.lst] and
	// commit them through the normal replication protocol. They are
	// exactly our pending queue (populated by local recovery or by our
	// time as a follower); they are already in our durable log. Any acks
	// gathered under an earlier leadership are discarded first: they no
	// longer prove durability (a peer may have logically truncated writes
	// it once acked), so the re-proposals must earn a fresh quorum.
	r.queue.resetAcks()
	var reprops []proposeRec
	for _, lsn := range r.queue.snapshotOrder() {
		p, ok := r.queue.get(lsn)
		if !ok || lsn <= lCmt {
			continue
		}
		r.queue.markForced(lsn) // it is in our durable log
		reprops = append(reprops, proposeRec{LSN: lsn, Op: p.op})
	}
	if len(reprops) > 0 {
		r.reproposeRecs(reprops)
	}
	// Wait for the re-proposals to commit.
	reproposeDeadline := time.Now().Add(r.n.cfg.TakeoverTimeout)
	for {
		r.tryCommit()
		r.mu.Lock()
		done := r.lastCommitted >= lLst || r.queue.len() == 0
		r.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(reproposeDeadline) {
			r.mu.Lock()
			r.role = RoleCandidate
			r.mu.Unlock()
			return false
		}
		time.Sleep(time.Millisecond)
	}

	// Line 10: open the cohort for writes, with LSNs above anything
	// previously used (epoch bump + continuing sequence numbers, App. B).
	r.mu.Lock()
	if r.role != RoleLeader || r.retired {
		// Demoted mid-takeover: a rival's late takeover sync (it lost
		// the znode race after sending) or a layout change that retired
		// us. Opening now would leave a non-leader serving strong
		// reads; fail instead, release the claim, and re-elect.
		r.mu.Unlock()
		return false
	}
	r.epoch = newEpoch
	if s := r.lastLSN.Seq(); s >= r.nextSeq {
		r.nextSeq = s + 1
	}
	r.open = true
	r.mu.Unlock()
	// An open leader is by definition caught up; publish the marker the
	// reconfiguration executor waits on.
	r.n.markCurrent(r.rangeID)
	r.m.elections.Inc()
	return true
}

// syncFollower runs lines 4-6 of Figure 6 against one follower: learn its
// f.cmt, send the committed writes in (f.cmt, l.cmt] plus a commit message.
// Reports whether the follower confirmed catching up to l.cmt.
func (r *replica) syncFollower(peer string, lCmt, lLst wal.LSN) bool {
	resp, err := r.n.call(peer, transport.Message{Kind: MsgStateReq, Cohort: r.rangeID})
	if err != nil {
		return false
	}
	fCmt, err := decodeLSN(resp.Payload)
	if err != nil {
		return false
	}

	r.mu.Lock()
	// Present covers the follower's whole possible ambiguous range so it
	// can logically truncate its dead branches in one step. EntriesSince
	// is complete for fCmt — deletes included — because the follower's
	// advertised cmt never drops below its durable floor, and no engine
	// in the cohort compacts tombstones above the minimum of those floors
	// (the tombstone-GC watermark).
	present := r.logLSNsInRangeLocked(fCmt, lLst)
	entries := r.engine.EntriesSince(fCmt)
	r.mu.Unlock()

	sync := catchupResp{Status: StatusOK, Cmt: lCmt, Present: present, Entries: entries}
	resp, err = r.n.call(peer, transport.Message{
		Kind: MsgTakeover, Cohort: r.rangeID, Payload: encodeCatchupResp(sync),
	})
	if err != nil {
		return false
	}
	theirCmt, err := decodeLSN(resp.Payload)
	if err != nil {
		return false
	}
	return theirCmt >= lCmt
}

// logLSNsInRangeLocked lists our durable write LSNs in (after, through];
// callers hold r.mu.
//
//spinnaker:locked(mu)
func (r *replica) logLSNsInRangeLocked(after, through wal.LSN) []wal.LSN {
	var out []wal.LSN
	_ = r.n.log.ScanCohort(r.rangeID, func(rec wal.Record) error {
		if rec.Type == wal.RecWrite && rec.LSN > after && rec.LSN <= through &&
			!r.skipped.Contains(rec.LSN) {
			out = append(out, rec.LSN)
		}
		return nil
	})
	return out
}

// encodeCandidacy serializes a candidate znode's payload (Fig 7 line 4):
// the epoch the candidate observed when registering — which scopes the
// election round — and its n.lst.
func encodeCandidacy(epoch uint32, l wal.LSN) []byte {
	return []byte(strconv.FormatUint(uint64(epoch), 10) + ":" + strconv.FormatUint(uint64(l), 10))
}

func decodeCandidacy(b []byte) (uint32, wal.LSN) {
	s := string(b)
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, 0
	}
	e, err := strconv.ParseUint(s[:i], 10, 32)
	if err != nil {
		return 0, 0
	}
	v, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return 0, 0
	}
	return uint32(e), wal.LSN(v)
}

func encodeEpoch(e uint32) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], e)
	return buf[:]
}

func decodeEpoch(b []byte) uint32 {
	if len(b) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}
