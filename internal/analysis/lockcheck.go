package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// lockcheck enforces the repo's lock discipline (PR 3/PR 4 contracts):
//
//   - //spinnaker:locked(mu) methods must only be called with the
//     receiver type's mu held: either inside a mu.Lock()/Unlock()
//     region of the caller, or from a method annotated locked(mu) on
//     the same type. Lock identity is the (type, field) pair — two
//     instances of the same type are not distinguished, which is the
//     usual conservative choice for this class of lint.
//   - Config.LockOrder pairs: the first lock is acquired before the
//     second; acquiring the first while holding the second is a
//     deadlock-shaped finding (e.g. layoutMu before any replica mu).
//   - Config.NoHoldAcross: while the named lock is held, calls to
//     methods of the listed types (blob/meta store I/O) and channel
//     sends are findings (the engine lock must never wait on storage
//     I/O or a consumer).
//
// The region tracking is statement-ordered and intra-procedural:
// Lock()/RLock() adds the lock for subsequent statements at the same
// nesting level, Unlock()/RUnlock() removes it, defer Unlock holds it
// to function end, and sub-blocks (if/for/switch bodies) work on a copy
// so a conditional unlock cannot leak outward. Function-literal bodies
// are walked with an empty held set (they run later, under unknown
// locks).
func lockcheck(m *Module, cfg Config, idx *annIndex) ([]Finding, error) {
	lc := &lockChecker{m: m, idx: idx, names: map[types.Object]string{}}
	for _, pair := range cfg.LockOrder {
		first := lc.resolve(pair[0])
		second := lc.resolve(pair[1])
		if first == nil || second == nil {
			continue // package not loaded in this run (fixture corpora)
		}
		lc.order = append(lc.order, [2]types.Object{first, second})
	}
	for _, rule := range cfg.NoHoldAcross {
		lock := lc.resolve(rule.Lock)
		if lock == nil {
			continue
		}
		r := noHold{lock: lock, chanSend: rule.ChanSend, callees: map[types.Object]bool{}}
		for _, tn := range rule.Callees {
			if obj := lc.resolveType(tn); obj != nil {
				r.callees[obj] = true
			}
		}
		lc.noHold = append(lc.noHold, r)
	}
	for _, pkg := range m.Pkgs() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lc.checkFunc(pkg, fd)
			}
		}
	}
	return lc.out, nil
}

type noHold struct {
	lock     types.Object
	chanSend bool
	callees  map[types.Object]bool // named-type objects (interfaces)
}

type lockChecker struct {
	m      *Module
	idx    *annIndex
	out    []Finding
	order  [][2]types.Object
	noHold []noHold
	names  map[types.Object]string
}

// resolve maps "pkg/path.Type.field" (or "pkg/path.var") to the lock's
// identity object; nil when the package is not part of this load.
func (lc *lockChecker) resolve(name string) types.Object {
	slash := strings.LastIndex(name, "/")
	rest := name[slash+1:]
	parts := strings.Split(rest, ".")
	if len(parts) < 2 || len(parts) > 3 {
		return nil
	}
	pkgPath := name[:slash+1] + parts[0]
	pkg, ok := lc.m.Packages[pkgPath]
	if !ok {
		return nil
	}
	if len(parts) == 2 {
		obj := pkg.Types.Scope().Lookup(parts[1])
		if obj != nil {
			lc.names[obj] = name
		}
		return obj
	}
	tobj := pkg.Types.Scope().Lookup(parts[1])
	if tobj == nil {
		return nil
	}
	named, ok := tobj.Type().(*types.Named)
	if !ok {
		return nil
	}
	f := lockFieldObj(named, parts[2])
	if f != nil {
		lc.names[f] = parts[1] + "." + parts[2]
	}
	return f
}

// resolveType maps "pkg/path.Type" to the type's object.
func (lc *lockChecker) resolveType(name string) types.Object {
	slash := strings.LastIndex(name, "/")
	rest := name[slash+1:]
	pkgName, typeName, ok := strings.Cut(rest, ".")
	if !ok {
		return nil
	}
	pkg, okp := lc.m.Packages[name[:slash+1]+pkgName]
	if !okp {
		return nil
	}
	obj := pkg.Types.Scope().Lookup(typeName)
	if obj != nil {
		lc.names[obj] = rest
	}
	return obj
}

func (lc *lockChecker) lockName(obj types.Object) string {
	if n, ok := lc.names[obj]; ok {
		return n
	}
	return obj.Name()
}

// checkFunc analyzes one function body.
func (lc *lockChecker) checkFunc(pkg *Package, fd *ast.FuncDecl) {
	held := map[types.Object]bool{}
	// A method annotated locked(mu) runs with mu held by contract.
	if obj, _ := pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
		if ann, ok := lc.idx.byFunc[obj]; ok {
			if named := recvNamed(obj); named != nil {
				for _, field := range ann.Locked {
					if f := lockFieldObj(named, field); f != nil {
						held[f] = true
						lc.names[f] = named.Obj().Name() + "." + field
					}
				}
			}
		}
	}
	lc.stmts(pkg, fd.Body.List, held)
}

// stmts walks a statement list in order, tracking the held set.
func (lc *lockChecker) stmts(pkg *Package, list []ast.Stmt, held map[types.Object]bool) {
	for _, s := range list {
		lc.stmt(pkg, s, held)
	}
}

func copyHeld(held map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func (lc *lockChecker) stmt(pkg *Package, s ast.Stmt, held map[types.Object]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, lock := lockOp(pkg.Info, call); lock != nil {
				switch op {
				case "Lock", "RLock", "TryLock", "TryRLock":
					lc.checkAcquire(pkg, call, lock, held)
					held[lock] = true
				case "Unlock", "RUnlock":
					delete(held, lock)
				}
				return
			}
		}
		lc.exprChecks(pkg, s.X, held)
	case *ast.DeferStmt:
		if op, lock := lockOp(pkg.Info, s.Call); lock != nil && (op == "Unlock" || op == "RUnlock") {
			// defer mu.Unlock(): held through the rest of the function
			// (this walk never clears it).
			return
		}
		// Other deferred calls run at return under unknown lock state;
		// only their argument expressions evaluate now.
		for _, a := range s.Call.Args {
			lc.exprChecks(pkg, a, held)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			lc.exprChecks(pkg, a, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lc.exprChecks(pkg, e, held)
		}
		for _, e := range s.Lhs {
			lc.exprChecks(pkg, e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lc.exprChecks(pkg, e, held)
		}
	case *ast.SendStmt:
		lc.checkSend(pkg, s, held)
		lc.exprChecks(pkg, s.Chan, held)
		lc.exprChecks(pkg, s.Value, held)
	case *ast.IncDecStmt:
		lc.exprChecks(pkg, s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lc.exprChecks(pkg, v, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		lc.stmts(pkg, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lc.stmt(pkg, s.Init, held)
		}
		lc.exprChecks(pkg, s.Cond, held)
		lc.stmts(pkg, s.Body.List, copyHeld(held))
		if s.Else != nil {
			lc.stmt(pkg, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lc.stmt(pkg, s.Init, held)
		}
		if s.Cond != nil {
			lc.exprChecks(pkg, s.Cond, held)
		}
		body := copyHeld(held)
		lc.stmts(pkg, s.Body.List, body)
		if s.Post != nil {
			lc.stmt(pkg, s.Post, body)
		}
	case *ast.RangeStmt:
		lc.exprChecks(pkg, s.X, held)
		lc.stmts(pkg, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.stmt(pkg, s.Init, held)
		}
		if s.Tag != nil {
			lc.exprChecks(pkg, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.stmts(pkg, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lc.stmt(pkg, s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.stmts(pkg, cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lc.stmt(pkg, cc.Comm, copyHeld(held))
				}
				lc.stmts(pkg, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		lc.stmt(pkg, s.Stmt, held)
	}
}

// exprChecks inspects an expression for calls and sends to check
// against the current held set. Function-literal bodies are skipped
// (they execute later under unknown lock state).
func (lc *lockChecker) exprChecks(pkg *Package, e ast.Expr, held map[types.Object]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if op, lock := lockOp(pkg.Info, n); lock != nil {
				if op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock" {
					lc.checkAcquire(pkg, n, lock, held)
					held[lock] = true
				} else {
					delete(held, lock)
				}
				return true
			}
			lc.checkCall(pkg, n, held)
		}
		return true
	})
}

// checkAcquire applies the lock-ordering table at an acquisition site.
func (lc *lockChecker) checkAcquire(pkg *Package, at ast.Node, acquiring types.Object, held map[types.Object]bool) {
	for _, pair := range lc.order {
		if pair[0] == acquiring && held[pair[1]] {
			lc.out = append(lc.out, finding(lc.m, "lockcheck", at,
				"lock-order violation: acquiring %s while holding %s (order: %s before %s)",
				lc.lockName(pair[0]), lc.lockName(pair[1]), lc.lockName(pair[0]), lc.lockName(pair[1])))
		}
	}
}

// checkCall applies the locked(mu) obligation and NoHoldAcross rules at
// a call site.
func (lc *lockChecker) checkCall(pkg *Package, call *ast.CallExpr, held map[types.Object]bool) {
	f := calleeFunc(pkg.Info, call)
	if f == nil {
		return
	}
	if ann, ok := lc.idx.byFunc[f]; ok && len(ann.Locked) > 0 {
		if named := recvNamed(f); named != nil {
			for _, field := range ann.Locked {
				lockObj := lockFieldObj(named, field)
				if lockObj == nil {
					lc.out = append(lc.out, finding(lc.m, "lockcheck", call,
						"%s is annotated locked(%s) but %s has no field %q", f.Name(), field, named.Obj().Name(), field))
					continue
				}
				if !held[lockObj] {
					lc.out = append(lc.out, finding(lc.m, "lockcheck", call,
						"call to %s.%s requires %s.%s held (//spinnaker:locked(%s)); not held on this path",
						named.Obj().Name(), f.Name(), named.Obj().Name(), field, field))
				}
			}
		}
	}
	// NoHoldAcross: method of a forbidden type while the lock is held.
	if named := recvNamed(f); named != nil {
		for _, rule := range lc.noHold {
			if held[rule.lock] && rule.callees[named.Obj()] {
				lc.out = append(lc.out, finding(lc.m, "lockcheck", call,
					"call to %s.%s with %s held: this lock must not be held across %s I/O",
					named.Obj().Name(), f.Name(), lc.lockName(rule.lock), named.Obj().Name()))
			}
		}
	}
}

// checkSend applies NoHoldAcross channel-send rules.
func (lc *lockChecker) checkSend(pkg *Package, s *ast.SendStmt, held map[types.Object]bool) {
	for _, rule := range lc.noHold {
		if rule.chanSend && held[rule.lock] {
			lc.out = append(lc.out, finding(lc.m, "lockcheck", s,
				"channel send with %s held: this lock must not be held across sends", lc.lockName(rule.lock)))
		}
	}
}

// lockOp recognizes mutex method calls (sync.Mutex / sync.RWMutex,
// direct or promoted through an embedded field) and returns the method
// name plus the lock's identity object: the mutex field (shared across
// instances of the owning type) or the mutex variable itself.
func lockOp(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	switch fun.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", nil
	}
	sel, ok := info.Selections[fun]
	if !ok {
		return "", nil
	}
	mf, ok := sel.Obj().(*types.Func)
	if !ok || mf.Pkg() == nil || mf.Pkg().Path() != "sync" {
		return "", nil
	}
	// Identity of the mutex expression fun.X.
	switch x := ast.Unparen(fun.X).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			return "", nil
		}
		// Promoted method on an embedded mutex: identify the embedded
		// field via the selection's index path.
		if idxPath := sel.Index(); len(idxPath) > 1 {
			if named := derefNamed(obj.Type()); named != nil {
				if st, ok := named.Underlying().(*types.Struct); ok && idxPath[0] < st.NumFields() {
					return fun.Sel.Name, st.Field(idxPath[0])
				}
			}
		}
		return fun.Sel.Name, obj
	case *ast.SelectorExpr:
		if fsel, ok := info.Selections[x]; ok {
			return fun.Sel.Name, fsel.Obj()
		}
		// Package-qualified var (pkg.mu).
		if obj := info.Uses[x.Sel]; obj != nil {
			return fun.Sel.Name, obj
		}
	}
	return "", nil
}

func derefNamed(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
