// Package metrics provides the cheap instrumentation primitives used by
// the rest of the tree: lock-striped counters, fixed log-bucket latency
// histograms, and a sampling key reservoir. Everything on the write side
// is allocation-free and lock-free (a bounded number of atomic adds per
// operation) so the replication hot path can afford to be observed; the
// read side (snapshots, merges, quantiles) is built for a periodic
// scraper or balancer, not for per-request use.
package metrics

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numStripes is the number of independent cells a Counter spreads its
// adds over. Must be a power of two.
const numStripes = 16

// stripe picks a cell for the calling goroutine. Goroutine stacks are
// distinct allocations, so the address of a stack byte — shifted past
// allocator-alignment noise — spreads concurrent callers across cells
// without needing a goroutine ID or any allocation.
func stripe() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (numStripes - 1)
}

// cell is a cache-line-padded atomic counter so stripes don't false-share.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a lock-striped monotonic (or signed) counter. Add is one
// atomic add on a stripe chosen per goroutine; Load sums the stripes.
type Counter struct {
	cells [numStripes]cell
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	c.cells[stripe()].v.Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total. Concurrent adds may or may not be
// included, but no add is ever lost.
func (c *Counter) Load() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// Histogram bucket layout: log-linear, 1<<subBits linear sub-buckets per
// power of two. Values 0..2^subBits-1 get exact buckets; above that the
// relative quantile error is bounded by 1/2^(subBits+1) (~6% for
// subBits=3). Values are int64 (the tree records nanoseconds).
const (
	subBits    = 3
	subCount   = 1 << subBits
	numBuckets = (63 - subBits + 1) * subCount
)

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // position of the top set bit, >= subBits
	sub := (u >> uint(exp-subBits)) & (subCount - 1)
	return (exp-subBits+1)<<subBits + int(sub)
}

// bucketBounds returns the [lower, upper) value range of bucket b.
func bucketBounds(b int) (lower, upper int64) {
	if b < subCount {
		return int64(b), int64(b) + 1
	}
	oct := b >> subBits
	sub := int64(b & (subCount - 1))
	width := int64(1) << uint(oct-1)
	lower = (subCount + sub) << uint(oct-1)
	return lower, lower + width
}

// Histogram is a fixed-size log-bucket histogram. Observe is two atomic
// adds (bucket + sum); buckets are plain atomics — concurrent observers
// of the same value contend on one cache line, which is acceptable for
// latency recording.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls land entirely in either this snapshot or a later one; individual
// buckets are read atomically so counts are never torn or lost.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n != 0 {
			s.Buckets[i] = n
			s.Count += n
		}
	}
	return s
}

// HistSnapshot is an immutable copy of a Histogram, mergeable with
// others using the same (compile-time fixed) bucket layout.
type HistSnapshot struct {
	Buckets [numBuckets]int64
	Count   int64
	Sum     int64
}

// Merge adds other's counts into s.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil {
		return
	}
	for i, n := range other.Buckets {
		s.Buckets[i] += n
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Sub subtracts an earlier snapshot, giving the interval histogram.
func (s *HistSnapshot) Sub(earlier *HistSnapshot) {
	if earlier == nil {
		return
	}
	for i, n := range earlier.Buckets {
		s.Buckets[i] -= n
	}
	s.Count -= earlier.Count
	s.Sum -= earlier.Sum
}

// Quantile returns an estimate of the p-quantile (0 < p <= 1) as the
// midpoint of the bucket containing that rank, or 0 for an empty
// snapshot.
func (s *HistSnapshot) Quantile(p float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	rank := int64(p*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			lo, hi := bucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// Mean returns the exact mean of observed values, or 0 if empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// KeySampler keeps a bounded, load-proportional sample of the keys
// passing through a range: every stride-th Note call stores its key in a
// ring, so the ring approximates the recent write distribution. The
// balancer sorts a snapshot of the ring to find the load-weighted median
// split key. The common (unsampled) path is one atomic add.
type KeySampler struct {
	stride int64
	n      atomic.Int64

	mu   sync.Mutex
	ring []string
	next int
	full bool
}

// NewKeySampler samples one of every stride calls into a ring of cap
// keys. stride and cap are clamped to >= 1.
func NewKeySampler(stride int64, capacity int) *KeySampler {
	if stride < 1 {
		stride = 1
	}
	if capacity < 1 {
		capacity = 1
	}
	return &KeySampler{stride: stride, ring: make([]string, capacity)}
}

// Note records one occurrence of key, sampling it if its turn is up.
func (s *KeySampler) Note(key string) {
	if s.n.Add(1)%s.stride != 0 {
		return
	}
	s.mu.Lock()
	s.ring[s.next] = key
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Keys returns a copy of the sampled keys (unordered).
func (s *KeySampler) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	if s.full {
		n = len(s.ring)
	}
	out := make([]string, n)
	copy(out, s.ring[:n])
	return out
}

// MedianKey returns the load-weighted median of the sampled keys: sorted
// by key, the sample at the halfway rank. Because samples arrive in
// proportion to per-key load, this splits the recent load (not the key
// space) in half. Returns false if fewer than min samples exist.
func (s *KeySampler) MedianKey(min int) (string, bool) {
	keys := s.Keys()
	if len(keys) < min || len(keys) == 0 {
		return "", false
	}
	sort.Strings(keys)
	return keys[len(keys)/2], true
}
