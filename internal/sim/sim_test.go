package sim

import (
	"fmt"
	"testing"
	"time"

	"spinnaker/internal/dynamo"
)

func TestSpinnakerClusterLifecycle(t *testing.T) {
	CheckGoroutineLeaks(t)
	sc, err := NewSpinnakerCluster(Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := sc.NewClient()
	if _, err := c.Put(sc.Key(42), "col", []byte("value")); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Get(sc.Key(42), "col", true)
	if err != nil || string(got) != "value" {
		t.Fatalf("Get = %q,%v", got, err)
	}
}

func TestSpinnakerClusterCrashRestart(t *testing.T) {
	CheckGoroutineLeaks(t)
	sc, err := NewSpinnakerCluster(Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Stop()
	if err := sc.WaitReady(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	c := sc.NewClient()
	if _, err := c.Put(sc.Key(1), "c", []byte("v")); err != nil {
		t.Fatal(err)
	}
	leader := sc.LeaderOf(sc.Layout.RangeOf(sc.Key(1)))
	if err := sc.CrashNode(leader); err != nil {
		t.Fatal(err)
	}
	// The value survives the leader crash.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _, err := c.Get(sc.Key(1), "c", true)
		if err == nil && string(got) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("value unreadable after failover: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sc.RestartNode(leader); err != nil {
		t.Fatal(err)
	}
	if err := sc.CrashNode(leader); err != nil {
		t.Fatal(err) // restart registered it again
	}
}

func TestDynamoClusterLifecycle(t *testing.T) {
	CheckGoroutineLeaks(t)
	dc, err := NewDynamoCluster(Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Stop()
	c := dc.NewClient()
	if _, err := c.Put(dc.Key(7), "col", []byte("value"), dynamo.Quorum); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Get(dc.Key(7), "col", dynamo.Quorum)
	if err != nil || string(got) != "value" {
		t.Fatalf("Get = %q,%v", got, err)
	}
}

func TestLatencyRecorder(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Avg() != 0 || r.Count() != 0 {
		t.Error("fresh recorder not empty")
	}
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.Count() != 100 {
		t.Errorf("Count = %d", r.Count())
	}
	if avg := r.Avg(); avg < 50*time.Millisecond || avg > 51*time.Millisecond {
		t.Errorf("Avg = %v, want ~50.5ms", avg)
	}
	if r.Min() != time.Millisecond || r.Max() != 100*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", r.Min(), r.Max())
	}
	if p := r.Percentile(95); p < 90*time.Millisecond || p > 100*time.Millisecond {
		t.Errorf("P95 = %v", p)
	}
}

func TestRunClosedLoopCountsThroughput(t *testing.T) {
	point := RunClosedLoop(4, 50*time.Millisecond, func(thread, i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if point.Threads != 4 {
		t.Errorf("Threads = %d", point.Threads)
	}
	if point.Throughput <= 0 {
		t.Error("Throughput = 0")
	}
	if point.AvgLatency < time.Millisecond {
		t.Errorf("AvgLatency = %v, below the op's own sleep", point.AvgLatency)
	}
	if point.Errors != 0 {
		t.Errorf("Errors = %d", point.Errors)
	}
}

func TestRunClosedLoopCountsErrors(t *testing.T) {
	point := RunClosedLoop(1, 20*time.Millisecond, func(thread, i int) error {
		time.Sleep(time.Millisecond)
		if i%2 == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if point.Errors == 0 {
		t.Error("errors not counted")
	}
}

func TestKeyPicker(t *testing.T) {
	k := NewKeyPicker(100, 8, 1)
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		key := k.Random()
		if len(key) != 8 {
			t.Fatalf("key %q has width %d", key, len(key))
		}
		seen[key] = true
	}
	if len(seen) < 10 {
		t.Errorf("random keys not spread: %d distinct", len(seen))
	}
	// Sequential indices map through the stride: with space=1000 over a
	// 6-digit domain the stride is 1000.
	k2 := NewKeyPicker(1000, 6, 1)
	if got := k2.Sequential(); got != "000000" {
		t.Errorf("first sequential key = %q", got)
	}
	if got := k2.Sequential(); got != "001000" {
		t.Errorf("second sequential key = %q", got)
	}
	k2.SeekTo(999)
	if got := k2.Sequential(); got != "999000" {
		t.Errorf("seeked key = %q", got)
	}
}

func TestStridedKeySpreadsAcrossDomain(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		key := StridedKey(i, 100, 8)
		if len(key) != 8 {
			t.Fatalf("key %q width %d", key, len(key))
		}
		seen[key[:1]] = true // leading digit ~ key range bucket
	}
	if len(seen) < 9 {
		t.Errorf("strided keys cover %d leading digits, want ~10", len(seen))
	}
}

func TestValueOfSize(t *testing.T) {
	v := ValueOfSize(4096)
	if len(v) != 4096 {
		t.Fatalf("len = %d", len(v))
	}
	if v[0] != 'a' || v[25] != 'z' || v[26] != 'a' {
		t.Error("payload pattern wrong")
	}
}
