package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPEndpoint is an Endpoint over real TCP sockets, used when running
// Spinnaker nodes as separate processes (cmd/spinnaker-server). One
// outbound connection per destination is maintained; the remote peer's
// reader goroutine preserves in-order delivery per connection, matching the
// paper's design choice (Appendix A.1).
type TCPEndpoint struct {
	id      string
	addrs   map[string]string // node id → host:port
	ln      net.Listener
	handler atomic.Value // Handler
	closed  atomic.Bool
	callSeq atomic.Uint64

	mu      sync.Mutex
	conns   map[string]*tcpConn
	pending map[uint64]chan Message
}

type tcpConn struct {
	mu sync.Mutex // serializes writes
	c  net.Conn
}

// ListenTCP starts an endpoint for node id listening on addrs[id].
// The addrs map must name every node the endpoint will talk to.
func ListenTCP(id string, addrs map[string]string) (*TCPEndpoint, error) {
	addr, ok := addrs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s has no address", ErrUnknownNode, id)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		id:      id,
		addrs:   addrs,
		ln:      ln,
		conns:   make(map[string]*tcpConn),
		pending: make(map[uint64]chan Message),
	}
	go e.acceptLoop()
	return e, nil
}

// Addr returns the bound listen address (useful with ":0" ports).
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

func (e *TCPEndpoint) acceptLoop() {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c net.Conn) {
	defer c.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size > 64<<20 {
			return // refuse absurd frames
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(c, body); err != nil {
			return
		}
		m, err := DecodeMessage(body)
		if err != nil {
			return
		}
		e.dispatch(m)
	}
}

func (e *TCPEndpoint) dispatch(m Message) {
	if m.Reply {
		e.mu.Lock()
		ch, ok := e.pending[m.ID]
		e.mu.Unlock()
		if ok {
			ch <- m
		}
		return
	}
	if h, ok := e.handler.Load().(Handler); ok && h != nil {
		h(m)
	}
}

// ID implements Endpoint.
func (e *TCPEndpoint) ID() string { return e.id }

// SetHandler implements Endpoint.
func (e *TCPEndpoint) SetHandler(h Handler) { e.handler.Store(h) }

// conn returns (dialing if necessary) the outbound connection to node.
func (e *TCPEndpoint) conn(node string) (*tcpConn, error) {
	e.mu.Lock()
	tc, ok := e.conns[node]
	e.mu.Unlock()
	if ok {
		return tc, nil
	}
	addr, ok := e.addrs[node]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", node, err)
	}
	tc = &tcpConn{c: c}
	e.mu.Lock()
	if cur, ok := e.conns[node]; ok {
		e.mu.Unlock()
		c.Close()
		return cur, nil
	}
	e.conns[node] = tc
	e.mu.Unlock()
	return tc, nil
}

// Send implements Endpoint.
func (e *TCPEndpoint) Send(m Message) error {
	if e.closed.Load() {
		return ErrClosed
	}
	m.From = e.id
	tc, err := e.conn(m.To)
	if err != nil {
		return err
	}
	buf := EncodeMessage(m)
	tc.mu.Lock()
	_, err = tc.c.Write(buf)
	tc.mu.Unlock()
	if err != nil {
		// Connection broke; forget it so the next send re-dials.
		e.mu.Lock()
		if e.conns[m.To] == tc {
			delete(e.conns, m.To)
		}
		e.mu.Unlock()
		tc.c.Close()
		return fmt.Errorf("transport: send to %s: %w", m.To, err)
	}
	return nil
}

// Call implements Endpoint.
func (e *TCPEndpoint) Call(m Message) (Message, error) {
	id := e.callSeq.Add(1)
	m.ID = id
	ch := make(chan Message, 1)
	e.mu.Lock()
	e.pending[id] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()
	if err := e.Send(m); err != nil {
		return Message{}, err
	}
	select {
	case reply := <-ch:
		return reply, nil
	case <-time.After(DefaultCallTimeout):
		return Message{}, fmt.Errorf("%w: %s → %s kind %d", ErrTimeout, e.id, m.To, m.Kind)
	}
}

// Reply implements Endpoint.
func (e *TCPEndpoint) Reply(req Message, m Message) error {
	m.To = req.From
	m.ID = req.ID
	m.Reply = true
	return e.Send(m)
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.closed.Store(true)
	err := e.ln.Close()
	e.mu.Lock()
	for _, tc := range e.conns {
		tc.c.Close()
	}
	e.conns = make(map[string]*tcpConn)
	e.mu.Unlock()
	return err
}

var _ Endpoint = (*TCPEndpoint)(nil)
