package transport

import (
	"sync"
	"testing"
	"time"
)

// collectDeliveries runs one fault-plane configuration: n messages are sent
// a → b over a freshly built network and the delivered message IDs are
// returned in delivery order. A propagation delay larger than the send loop
// keeps the whole burst queued on the link before delivery starts, so
// reorder decisions see a full queue and the delivered sequence is a
// deterministic function of the fault seed.
func collectDeliveries(t *testing.T, seed int64, f LinkFaults, n int) []int {
	t.Helper()
	net := NewNetwork(5 * time.Millisecond)
	net.SetFaultSeed(seed)
	net.SetDefaultFaults(f)
	a := net.Join("a")
	b := net.Join("b")
	var mu sync.Mutex
	var got []int
	b.SetHandler(func(m Message) {
		mu.Lock()
		got = append(got, int(m.ID))
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := a.Send(Message{To: "b", ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the link to drain: delivered+dropped covers every send
	// (duplicates add deliveries, so wait for quiescence instead of an
	// exact count).
	deadline := time.Now().Add(5 * time.Second)
	lastLen, lastChange := -1, time.Now()
	for {
		mu.Lock()
		cur := len(got)
		mu.Unlock()
		if cur != lastLen {
			lastLen, lastChange = cur, time.Now()
		}
		delivered, dropped := net.Stats()
		if delivered+dropped >= int64(n) && time.Since(lastChange) > 50*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("link never drained: %d delivered, %d dropped", delivered, dropped)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]int(nil), got...)
}

func TestFaultPlaneDeterministicUnderSeed(t *testing.T) {
	f := LinkFaults{DropProb: 0.2, DupProb: 0.15, ReorderProb: 0.25}
	const n = 300
	first := collectDeliveries(t, 42, f, n)
	if len(first) == n {
		t.Fatalf("no faults fired over %d messages", n)
	}
	for run := 0; run < 2; run++ {
		again := collectDeliveries(t, 42, f, n)
		if len(again) != len(first) {
			t.Fatalf("seed 42 run delivered %d messages, want %d", len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("seed 42 replay diverged at %d: %d vs %d", i, again[i], first[i])
			}
		}
	}
	// A different seed must draw a different fault schedule.
	other := collectDeliveries(t, 43, f, n)
	same := len(other) == len(first)
	if same {
		for i := range first {
			if first[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}
}

func TestFaultPlaneDropProbability(t *testing.T) {
	got := collectDeliveries(t, 7, LinkFaults{DropProb: 0.5}, 400)
	if len(got) < 100 || len(got) > 300 {
		t.Fatalf("DropProb 0.5 delivered %d of 400", len(got))
	}
	// Survivors stay in order: drops alone never reorder a link.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("drop-only link reordered: %d after %d", got[i], got[i-1])
		}
	}
}

func TestFaultPlaneDuplicationDeliversTwice(t *testing.T) {
	const n = 50
	got := collectDeliveries(t, 1, LinkFaults{DupProb: 1}, n)
	if len(got) != 2*n {
		t.Fatalf("DupProb 1 delivered %d messages, want %d", len(got), 2*n)
	}
	for i := 0; i < n; i++ {
		if got[2*i] != i || got[2*i+1] != i {
			t.Fatalf("message %d not duplicated back-to-back: %v", i, got[2*i:2*i+2])
		}
	}
}

func TestFaultPlaneReorderSwapsSuccessors(t *testing.T) {
	const n = 60
	got := collectDeliveries(t, 1, LinkFaults{ReorderProb: 1}, n)
	if len(got) != n {
		t.Fatalf("reorder-only link delivered %d of %d", len(got), n)
	}
	swaps := 0
	for i := 0; i+1 < len(got); i += 2 {
		if got[i] > got[i+1] {
			swaps++
		}
	}
	if swaps == 0 {
		t.Fatalf("ReorderProb 1 never reordered: %v", got[:10])
	}
	// Every message still arrives exactly once.
	seen := make(map[int]bool, n)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("message %d delivered twice on a reorder-only link", id)
		}
		seen[id] = true
	}
}

func TestFaultPlaneJitterDelays(t *testing.T) {
	net := NewNetwork(0)
	net.SetFaultSeed(5)
	net.SetDefaultFaults(LinkFaults{Jitter: 20 * time.Millisecond})
	a := net.Join("a")
	b := net.Join("b")
	done := make(chan time.Time, 32)
	b.SetHandler(func(m Message) { done <- time.Now() })
	start := time.Now()
	for i := 0; i < 16; i++ {
		if err := a.Send(Message{To: "b", ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var worst time.Duration
	for i := 0; i < 16; i++ {
		select {
		case at := <-done:
			if d := at.Sub(start); d > worst {
				worst = d
			}
		case <-time.After(5 * time.Second):
			t.Fatal("jittered message never delivered")
		}
	}
	if worst < time.Millisecond {
		t.Fatalf("jitter had no visible effect (worst %v)", worst)
	}
}

func TestFaultPlanePerLinkOverride(t *testing.T) {
	net := NewNetwork(0)
	net.SetFaultSeed(9)
	net.SetDefaultFaults(LinkFaults{DropProb: 1})
	net.SetLinkFaults("a", "b", LinkFaults{}) // clean override on a lossy net
	a := net.Join("a")
	b := net.Join("b")
	c := net.Join("c")
	var mu sync.Mutex
	seen := make(map[string]int)
	h := func(id string) Handler {
		return func(m Message) {
			mu.Lock()
			seen[id]++
			mu.Unlock()
		}
	}
	b.SetHandler(h("b"))
	c.SetHandler(h("c"))
	for i := 0; i < 20; i++ {
		_ = a.Send(Message{To: "b", ID: uint64(i)})
		_ = a.Send(Message{To: "c", ID: uint64(i)})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		okB := seen["b"] == 20
		mu.Unlock()
		if okB {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clean override link delivered %d of 20", seen["b"])
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	droppedAll := seen["c"] == 0
	mu.Unlock()
	if !droppedAll {
		t.Fatalf("default DropProb 1 leaked %d messages to c", seen["c"])
	}
	// Clearing the override puts a→b back on the lossy default; clearing
	// all faults restores clean delivery everywhere.
	net.ClearLinkFaults("a", "b")
	net.ClearFaults()
	_ = a.Send(Message{To: "c", ID: 99})
	deadline = time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		okC := seen["c"] > 0
		mu.Unlock()
		if okC {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message not delivered after ClearFaults")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPartitionOneWay(t *testing.T) {
	net := NewNetwork(0)
	a := net.Join("a")
	b := net.Join("b")
	var mu sync.Mutex
	seen := make(map[string]int)
	a.SetHandler(func(m Message) { mu.Lock(); seen["a"]++; mu.Unlock() })
	b.SetHandler(func(m Message) { mu.Lock(); seen["b"]++; mu.Unlock() })

	net.PartitionOneWay("a", "b")
	if err := a.Send(Message{To: "b", ID: 1}); err != nil {
		t.Fatal(err) // one-way cuts are silent drops, like Partition
	}
	if err := b.Send(Message{To: "a", ID: 2}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		okA := seen["a"] == 1
		mu.Unlock()
		if okA {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reverse direction of a one-way partition blocked")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	leaked := seen["b"]
	mu.Unlock()
	if leaked != 0 {
		t.Fatalf("message crossed a one-way partition (%d delivered)", leaked)
	}

	// HealOneWay restores the cut direction; HealAll clears directed cuts
	// too.
	net.HealOneWay("a", "b")
	if err := a.Send(Message{To: "b", ID: 3}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		okB := seen["b"] == 1
		mu.Unlock()
		if okB {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("message not delivered after HealOneWay")
		}
		time.Sleep(time.Millisecond)
	}
	net.PartitionOneWay("b", "a")
	net.HealAll()
	if err := b.Send(Message{To: "a", ID: 4}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		okA := seen["a"] == 2
		mu.Unlock()
		if okA {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("HealAll left a one-way partition in place")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPartitionIsolateHealMatrix pins the semantics of the symmetric
// partition API across three nodes: Partition cuts exactly one pair in
// both directions, Isolate cuts one node from everyone, Heal is
// pair-scoped, HealAll is global.
func TestPartitionIsolateHealMatrix(t *testing.T) {
	net := NewNetwork(0)
	names := []string{"a", "b", "c"}
	eps := make(map[string]*LocalEndpoint, len(names))
	var mu sync.Mutex
	seen := make(map[string]int) // "from>to" → deliveries
	for _, name := range names {
		name := name
		eps[name] = net.Join(name)
		eps[name].SetHandler(func(m Message) {
			mu.Lock()
			seen[m.From+">"+name]++
			mu.Unlock()
		})
	}
	sendAll := func() {
		for _, from := range names {
			for _, to := range names {
				if from != to {
					_ = eps[from].Send(Message{To: to})
				}
			}
		}
	}
	expect := func(stage string, blocked map[string]bool) {
		t.Helper()
		mu.Lock()
		before := make(map[string]int, len(seen))
		for k, v := range seen {
			before[k] = v
		}
		mu.Unlock()
		sendAll()
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			missing := ""
			for _, from := range names {
				for _, to := range names {
					key := from + ">" + to
					if from != to && !blocked[key] && seen[key] == before[key] {
						missing = key
					}
				}
			}
			mu.Unlock()
			if missing == "" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: open link %s never delivered", stage, missing)
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(10 * time.Millisecond) // let any leak surface
		mu.Lock()
		defer mu.Unlock()
		for key := range blocked {
			if seen[key] != before[key] {
				t.Fatalf("%s: blocked link %s delivered", stage, key)
			}
		}
	}

	expect("clean", nil)
	net.Partition("a", "b")
	expect("partition a-b", map[string]bool{"a>b": true, "b>a": true})
	net.Isolate("c")
	expect("isolate c", map[string]bool{
		"a>b": true, "b>a": true,
		"a>c": true, "c>a": true, "b>c": true, "c>b": true,
	})
	net.Heal("a", "b")
	expect("heal a-b", map[string]bool{
		"a>c": true, "c>a": true, "b>c": true, "c>b": true,
	})
	net.HealAll()
	expect("heal all", nil)
}
