// Package green is the same shape as lock/red with the discipline
// followed: locks held at locked() call sites (directly, by defer, or
// by annotation on the caller), ordered acquisition, and I/O moved off
// the lock.
package green

import "sync"

// Table is shared state guarded by mu.
type Table struct {
	mu sync.Mutex
	n  int
}

// bumpLocked requires t.mu held.
//
//spinnaker:locked(mu)
func (t *Table) bumpLocked() { t.n++ }

// Bump takes the lock first.
func (t *Table) Bump() {
	t.mu.Lock()
	t.bumpLocked()
	t.mu.Unlock()
}

// BumpDeferred holds the lock to function end via defer.
func (t *Table) BumpDeferred() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bumpLocked()
}

// doubleLocked shows a locked() caller satisfying a locked() callee by
// contract: the annotation pre-seeds the held set.
//
//spinnaker:locked(mu)
func (t *Table) doubleLocked() {
	t.bumpLocked()
}

// Registry is configured to be acquired before any Table.mu.
type Registry struct {
	mu sync.Mutex
}

var (
	reg Registry
	tab Table
)

// GoodOrder acquires in the configured order.
func GoodOrder() {
	reg.mu.Lock()
	tab.mu.Lock()
	tab.mu.Unlock()
	reg.mu.Unlock()
}

// Store models blob I/O that must never run under Table.mu.
type Store interface {
	Put(b []byte) error
}

// Flush snapshots under the lock, then does I/O and sends after
// releasing it.
func (t *Table) Flush(s Store, ch chan int) {
	t.mu.Lock()
	n := t.n
	t.mu.Unlock()
	_ = s.Put(nil)
	ch <- n
}
