package core

import (
	"fmt"
	"testing"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/kv"
	"spinnaker/internal/sstable"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// publishLayout publishes l through the test cluster's coordination
// service.
func (tc *testCluster) publishLayout(l *cluster.Layout) {
	tc.t.Helper()
	sess := tc.coord.Connect()
	defer sess.Close()
	if err := PublishLayout(sess, l); err != nil {
		tc.t.Fatalf("publish layout: %v", err)
	}
}

// leaderNameOf returns the leader node id registered for a range, or "".
func (tc *testCluster) leaderNameOf(r uint32) string {
	sess := tc.coord.Connect()
	defer sess.Close()
	data, err := sess.Get(leaderPath(r))
	if err != nil {
		return ""
	}
	return string(data)
}

// TestNodeAdoptsPublishedLayout verifies the layout watch loop: every node
// follows the published layout version.
func TestNodeAdoptsPublishedLayout(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	tc.publishLayout(tc.layout) // v1

	next, err := tc.layout.WithNode("n-spare")
	if err != nil {
		t.Fatal(err)
	}
	tc.publishLayout(next) // v2

	deadline := time.Now().Add(5 * time.Second)
	for name, n := range tc.nodes {
		for n.LayoutVersion() < next.Version() {
			if time.Now().After(deadline) {
				t.Fatalf("node %s stuck at layout v%d, want v%d", name, n.LayoutVersion(), next.Version())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestShrinkRetiresReplicaAndReelects removes a member — the current
// leader, the hardest case — from a cohort via a published layout and
// checks that it retires the replica, the remaining members elect a new
// leader, and writes keep flowing.
func TestShrinkRetiresReplicaAndReelects(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	tc.publishLayout(tc.layout)
	c := tc.client()

	// All three ranges have 3-member cohorts; pick range 0 and shrink
	// its current leader out.
	leader := tc.leaderNameOf(0)
	if leader == "" {
		t.Fatal("range 0 has no leader")
	}
	var cohort []string
	for _, m := range tc.layout.Cohort(0) {
		if m != leader {
			cohort = append(cohort, m)
		}
	}
	next, err := tc.layout.WithCohort(0, cohort)
	if err != nil {
		t.Fatal(err)
	}
	tc.publishLayout(next)

	// The removed node must drop the replica...
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := tc.nodes[leader].ReplicaStats(0); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s still serves range 0 after shrink", leader)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...and the survivors must elect an open leader from the new cohort.
	for {
		nl := tc.leaderNameOf(0)
		if nl != "" && nl != leader {
			if st, ok := tc.nodes[nl].ReplicaStats(0); ok && st.Role == RoleLeader && st.Open {
				if st.Quorum != 2 {
					t.Fatalf("new leader quorum %d, want 2 for a 2-member cohort", st.Quorum)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("range 0 never re-elected after shrinking %s out (leader znode %q)", leader, tc.leaderNameOf(0))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Writes to range 0 still commit (client re-resolves the leader).
	row := rowInRange(tc.layout, 0)
	if _, err := c.Put(row, "v", []byte("after-shrink")); err != nil {
		t.Fatalf("write after shrink: %v", err)
	}
	if v, _, err := c.Get(row, "v", true); err != nil || string(v) != "after-shrink" {
		t.Fatalf("read after shrink: %q %v", v, err)
	}
}

// TestWrongLayoutReply checks the server-side routing-miss contract: client
// operations for a range a node does not serve get StatusWrongLayout (so
// stale clients refresh), while replication messages are silently dropped.
func TestWrongLayoutReply(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()

	ep := tc.net.Join("raw-probe")
	ep.SetCallTimeout(time.Second)
	resp, err := ep.Call(transport.Message{
		To: "n0", Kind: MsgWrite, Cohort: 99,
		Payload: EncodeWriteOp(nil, WriteOp{Row: "x", Cols: []ColWrite{{Col: "c"}}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := decodeWriteResult(resp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusWrongLayout {
		t.Fatalf("write to unknown range: status %d, want StatusWrongLayout", res.Status)
	}
	gresp, err := ep.Call(transport.Message{
		To: "n0", Kind: MsgGet, Cohort: 99,
		Payload: encodeGetReq(getReq{Row: "x", Col: "c", Consistent: true}),
	})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := decodeGetResp(gresp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if gres.Status != StatusWrongLayout {
		t.Fatalf("get on unknown range: status %d, want StatusWrongLayout", gres.Status)
	}
}

// rowInRange returns a row key owned by range id under layout l.
func rowInRange(l *cluster.Layout, id uint32) string {
	low, _ := l.Bounds(id)
	if low == "" {
		return "000001"
	}
	return low
}

// TestPopCommittableFiltersRemovedPeers pins the reconfiguration commit
// rule: acknowledgements from members that left the cohort stop counting
// toward quorum (a removed member may logically truncate what it acked).
func TestPopCommittableFiltersRemovedPeers(t *testing.T) {
	q := newCommitQueue()
	lsn := wal.MakeLSN(1, 1)
	q.add(&pendingWrite{lsn: lsn, op: WriteOp{Row: "r", Cols: []ColWrite{{Col: "c"}}}})
	q.markForced(lsn)
	q.markAckedThrough("old-member", lsn)

	// Quorum 2 with only a removed member's ack: must not commit.
	if got := q.popCommittable(2, []string{"current-member"}); len(got) != 0 {
		t.Fatalf("committed %d writes on a removed member's ack", len(got))
	}
	// The same ack counts again if the member is (still) in the cohort.
	if got := q.popCommittable(2, []string{"old-member"}); len(got) != 1 {
		t.Fatalf("ack from a current member did not commit (got %d)", len(got))
	}
}

// TestSplitPullServesFilteredState drives the origin-leader side of a split
// pull directly: before the shrink it refuses, after the shrink it serves
// exactly the moved rows.
func TestSplitPullServesFilteredState(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	tc.waitAllLeaders()
	tc.publishLayout(tc.layout)
	c := tc.client()

	low, high := tc.layout.Bounds(0)
	if high == "" {
		t.Fatal("range 0 has no upper bound in this layout")
	}
	// Two rows in range 0, one on each side of the future split point.
	loRow := rowInRange(tc.layout, 0)
	hiRow := "155555" // inside [0th range] for the 6-wide, 3-node uniform layout
	if tc.layout.RangeOf(hiRow) != 0 {
		t.Fatalf("test key %q not in range 0 [%q,%q)", hiRow, low, high)
	}
	if _, err := c.Put(loRow, "v", []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(hiRow, "v", []byte("move")); err != nil {
		t.Fatal(err)
	}

	leader := tc.leaderNameOf(0)
	lr := tc.nodes[leader].getReplica(0)
	if lr == nil {
		t.Fatal("leader lost range 0")
	}
	// Before the shrink is adopted, the pull must be refused.
	if _, ok := lr.serveSplitPull("100000", high); ok {
		t.Fatal("split pull served before the origin adopted the shrink")
	}

	next, newID, err := tc.layout.WithSplit(0, "100000")
	if err != nil {
		t.Fatal(err)
	}
	tc.publishLayout(next)

	deadline := time.Now().Add(10 * time.Second)
	for {
		cr, ok := lr.serveSplitPull("100000", high)
		if ok {
			var moved, kept bool
			for _, e := range cr.Entries {
				switch e.Key.Row {
				case hiRow:
					moved = true
				case loRow:
					kept = true
				}
			}
			if !moved || kept {
				t.Fatalf("split pull entries wrong: moved=%t keptLeaked=%t (%d entries)", moved, kept, len(cr.Entries))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("origin leader never became ready to serve the split pull")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The split range must come up with the moved row intact.
	for {
		v, _, err := c.Get(hiRow, "v", true)
		if err == nil && string(v) == "move" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("moved row unreadable after split: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = newID
}

// TestRejoinDoesNotResurrectCompactedDeletes pins the RecResetCohort /
// engine-wipe machinery: a node leaves a cohort, a key is deleted
// cluster-wide and its tombstone compacted away while the node is out, and
// the node rejoins. Without the durable reset, the rejoined member's old
// SSTables still hold the deleted key's value and catch-up can never
// mention it (no tombstone survives anywhere), so the key resurrects.
func TestRejoinDoesNotResurrectCompactedDeletes(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		// Tiny thresholds so the background flush loop flushes and
		// fully compacts (dropping tombstones) within a few intervals.
		c.FlushBytes = 1
		c.MaxTables = 1
		c.FlushInterval = 5 * time.Millisecond
	})
	tc.waitAllLeaders()
	tc.publishLayout(tc.layout)
	c := tc.client()

	row := rowInRange(tc.layout, 0)
	if _, err := c.Put(row, "v", []byte("alive")); err != nil {
		t.Fatal(err)
	}

	// Move a non-leader member out of range 0's cohort.
	leader := tc.leaderNameOf(0)
	var victim string
	var cohort []string
	for _, m := range tc.layout.Cohort(0) {
		if victim == "" && m != leader {
			victim = m
			continue
		}
		cohort = append(cohort, m)
	}

	// Before the victim leaves, make sure the value is durably in its
	// SSTables (commit propagation is asynchronous, and an un-flushed
	// memtable dies with the retired replica): that flushed table is the
	// stale state the rejoin must not resurrect from.
	deadline := time.Now().Add(10 * time.Second)
	vr := tc.nodes[victim].getReplica(0)
	if vr == nil {
		t.Fatalf("victim %s does not serve range 0", victim)
	}
	for {
		if _, ok := vr.engine.Get(kv.Key{Row: row, Col: "v"}); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s never applied the preload write", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := vr.engine.Flush(); err != nil {
		t.Fatal(err)
	}
	next, err := tc.layout.WithCohort(0, cohort)
	if err != nil {
		t.Fatal(err)
	}
	tc.publishLayout(next)
	for {
		if _, ok := tc.nodes[victim].ReplicaStats(0); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never left range 0", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Delete the key while the victim is out, then force flushes and a
	// full compaction on every remaining member so the tombstone is
	// provably purged cluster-wide before the victim returns.
	if err := c.Delete(row, "v"); err != nil {
		t.Fatal(err)
	}
	for filler := 0; ; filler++ {
		// Keep feeding fresh writes: CompactAll is a no-op on a single
		// table, so a lone tombstone-bearing table needs a sibling to
		// merge with before the tombstone can drop.
		if _, err := c.Put(rowInRange(tc.layout, 0)+fmt.Sprintf("-f%d", filler), "v", []byte("filler")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond) // let followers apply the commit
		purged := true
		for _, m := range cohort {
			mr := tc.nodes[m].getReplica(0)
			if mr == nil {
				t.Fatalf("member %s lost range 0", m)
			}
			if err := mr.engine.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := mr.engine.CompactAll(sstable.DropAllTombstones); err != nil {
				t.Fatal(err)
			}
			for _, e := range mr.engine.EntriesSince(0) {
				if e.Key.Row == row {
					purged = false // value or tombstone still visible
				}
			}
		}
		if purged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tombstone never purged cluster-wide")
		}
	}

	// Rejoin the victim and wait until it is admitted (caught up).
	next2, err := next.WithCohort(0, append(cohort, victim))
	if err != nil {
		t.Fatal(err)
	}
	tc.publishLayout(next2)
	sess := tc.coord.Connect()
	defer sess.Close()
	for {
		members, _ := CurrentMembers(sess, 0)
		found := false
		for _, m := range members {
			if m == victim {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never caught up after rejoining", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A timeline read served by the rejoined member must never show the
	// deleted value.
	ep := tc.net.Join("resurrect-probe")
	ep.SetCallTimeout(time.Second)
	req := encodeGetReq(getReq{Row: row, Col: "v", Consistent: false})
	for {
		resp, err := ep.Call(transport.Message{To: victim, Kind: MsgGet, Cohort: 0, Payload: req})
		if err == nil {
			res, err := decodeGetResp(resp.Payload)
			if err != nil {
				t.Fatal(err)
			}
			switch res.Status {
			case StatusOK:
				t.Fatalf("deleted key resurrected on rejoined member: %q", res.Value)
			case StatusNotFound:
				return // correct: the delete held
			}
			// StatusUnavailable: still recovering; retry.
		}
		if time.Now().After(deadline) {
			t.Fatal("rejoined member never served the probe read")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRejoinAfterCrashDoesNotResurrect covers the crash window of the
// rejoin reset: the node is out of the cohort and crashed when the
// re-adding layout is published, so the live adoption path never runs and
// the restart must discover the departure from the durable marker
// (departedKey) and discard the stale engine/log state in NewNode.
func TestRejoinAfterCrashDoesNotResurrect(t *testing.T) {
	tc := newTestCluster(t, 3, func(c *Config) {
		c.FlushBytes = 1
		c.MaxTables = 1
		c.FlushInterval = 5 * time.Millisecond
	})
	tc.waitAllLeaders()
	tc.publishLayout(tc.layout)
	c := tc.client()

	row := rowInRange(tc.layout, 0)
	if _, err := c.Put(row, "v", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	leader := tc.leaderNameOf(0)
	var victim string
	var cohort []string
	for _, m := range tc.layout.Cohort(0) {
		if victim == "" && m != leader {
			victim = m
			continue
		}
		cohort = append(cohort, m)
	}
	deadline := time.Now().Add(10 * time.Second)
	vr := tc.nodes[victim].getReplica(0)
	for {
		if _, ok := vr.engine.Get(kv.Key{Row: row, Col: "v"}); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim %s never applied the preload write", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := vr.engine.Flush(); err != nil {
		t.Fatal(err)
	}

	// Shrink the victim out, wait for retirement (which persists the
	// departed marker), then crash it.
	next, err := tc.layout.WithCohort(0, cohort)
	if err != nil {
		t.Fatal(err)
	}
	tc.publishLayout(next)
	for {
		if _, ok := tc.nodes[victim].ReplicaStats(0); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never left range 0", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	tc.crashNode(victim)

	// Delete the key and purge the tombstone cluster-wide while the
	// victim is down and out.
	if err := c.Delete(row, "v"); err != nil {
		t.Fatal(err)
	}
	for filler := 0; ; filler++ {
		if _, err := c.Put(rowInRange(tc.layout, 0)+fmt.Sprintf("-g%d", filler), "v", []byte("filler")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		purged := true
		for _, m := range cohort {
			mr := tc.nodes[m].getReplica(0)
			if err := mr.engine.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := mr.engine.CompactAll(sstable.DropAllTombstones); err != nil {
				t.Fatal(err)
			}
			for _, e := range mr.engine.EntriesSince(0) {
				if e.Key.Row == row {
					purged = false
				}
			}
		}
		if purged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tombstone never purged cluster-wide")
		}
	}

	// Re-add the victim while it is down, then restart it: the rejoin
	// goes through NewNode (bootstrap layout includes range 0), where
	// only the durable departed marker can trigger the reset.
	next2, err := next.WithCohort(0, append(cohort, victim))
	if err != nil {
		t.Fatal(err)
	}
	tc.publishLayout(next2)
	tc.restartNode(victim)

	sess := tc.coord.Connect()
	defer sess.Close()
	for {
		members, _ := CurrentMembers(sess, 0)
		found := false
		for _, m := range members {
			if m == victim {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never caught up after crash-rejoin", victim)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ep := tc.net.Join("crash-resurrect-probe")
	ep.SetCallTimeout(time.Second)
	req := encodeGetReq(getReq{Row: row, Col: "v", Consistent: false})
	for {
		resp, err := ep.Call(transport.Message{To: victim, Kind: MsgGet, Cohort: 0, Payload: req})
		if err == nil {
			res, err := decodeGetResp(resp.Payload)
			if err != nil {
				t.Fatal(err)
			}
			switch res.Status {
			case StatusOK:
				t.Fatalf("deleted key resurrected on crash-rejoined member: %q", res.Value)
			case StatusNotFound:
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("crash-rejoined member never served the probe read")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
