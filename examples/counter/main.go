// Counter: the paper's §3 example of a read-modify-write transaction. Many
// concurrent workers increment shared counters with get + conditionalPut,
// retrying on version mismatch — Spinnaker's optimistic concurrency
// control. The final totals are exact, something an eventually consistent
// store cannot promise without application-level conflict resolution.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"spinnaker"
)

const (
	workers      = 8
	perWorker    = 50
	counterRow   = "stats:page"
	counterCols  = 4 // workers spread over several counters
	counterTotal = workers * perWorker
)

func main() {
	cluster, err := spinnaker.NewCluster(spinnaker.Options{Nodes: 3})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cluster.Close()

	var conflicts atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := cluster.NewClient()
			col := fmt.Sprintf("hits-%d", w%counterCols)
			for i := 0; i < perWorker; i++ {
				// Increment retries internally on ErrVersionMismatch;
				// count conflicts by doing the loop by hand.
				for {
					val, ver, err := client.Get(counterRow, col, spinnaker.Strong)
					var cur int64
					if err == nil {
						cur = int64(val[0])<<8 | int64(val[1])
					} else if err != spinnaker.ErrNotFound {
						log.Fatalf("get: %v", err)
					}
					next := cur + 1
					_, err = client.ConditionalPut(counterRow, col,
						[]byte{byte(next >> 8), byte(next)}, ver)
					if err == nil {
						break
					}
					if err == spinnaker.ErrVersionMismatch {
						conflicts.Add(1)
						continue
					}
					log.Fatalf("conditional put: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	client := cluster.NewClient()
	total := int64(0)
	for c := 0; c < counterCols; c++ {
		val, _, err := client.Get(counterRow, fmt.Sprintf("hits-%d", c), spinnaker.Strong)
		if err != nil {
			log.Fatalf("final get: %v", err)
		}
		n := int64(val[0])<<8 | int64(val[1])
		fmt.Printf("counter hits-%d = %d\n", c, n)
		total += n
	}
	fmt.Printf("total = %d (expected %d), %d OCC conflicts retried, %.0f increments/sec\n",
		total, counterTotal, conflicts.Load(),
		float64(counterTotal)/elapsed.Seconds())
	if total != counterTotal {
		log.Fatal("LOST UPDATES — this must never happen")
	}
}
