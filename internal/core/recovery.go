package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"spinnaker/internal/kv"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// localRecover rebuilds the replica's volatile state from its share of the
// node's log (paper §6.1, local recovery phase). recs is the cohort's slice
// of the shared log scan, in append order (the 3 cohorts of a node are
// recovered in parallel from one shared scan, §6).
//
// Records from the most recent checkpoint through f.cmt are re-applied
// idempotently to the memtable. Records after f.cmt are ambiguous — they
// may or may not have been committed by the leader — and are parked in the
// commit queue for the catch-up phase to resolve. LSNs on the skipped-LSN
// list (logically truncated, §6.1.1) are never re-applied.
func (r *replica) localRecover(recs []wal.Record) error {
	skipped, err := wal.LoadSkippedLSNs(r.n.meta, r.rangeID)
	if err != nil {
		return fmt.Errorf("core: load skipped LSNs: %w", err)
	}

	var cmt, lst wal.LSN
	writes := make(map[wal.LSN]WriteOp)
	for _, rec := range recs {
		switch rec.Type {
		case wal.RecWrite:
			if skipped.Contains(rec.LSN) {
				continue
			}
			op, _, err := DecodeWriteOp(rec.Payload)
			if err != nil {
				return fmt.Errorf("core: corrupt write at %s: %w", rec.LSN, err)
			}
			writes[rec.LSN] = op
			if rec.LSN > lst {
				lst = rec.LSN
			}
		case wal.RecLastCommitted:
			if rec.LSN > cmt {
				cmt = rec.LSN
			}
		case wal.RecResetCohort:
			// The node re-joined this cohort after a membership
			// departure: everything logged before this point belongs
			// to the stale pre-departure era (the engine was wiped
			// when the marker was written) and must not be replayed.
			writes = make(map[wal.LSN]WriteOp)
			cmt, lst = 0, 0
		}
	}
	// The storage checkpoint is a durable commit floor: every write at
	// or below it was committed and captured in SSTables (applies are
	// commit-ordered and flushes cut the memtable at an LSN boundary).
	// The scanned cmt can lag it — RecLastCommitted records are written
	// non-forced (§5) and a crash loses the unforced tail — and
	// advertising the lower value in catch-up would request entries
	// below the cohort's tombstone-GC watermark, where compaction may
	// already have dropped delete markers and EntriesSince is no longer
	// complete. Recover f.cmt as the max of the two floors.
	checkpoint := r.engine.Checkpoint()
	if checkpoint > cmt {
		cmt = checkpoint
	}
	if cmt > lst {
		// A commit marker can reference writes served entirely from
		// catch-up entries that were themselves logged; treat the
		// marker as authoritative for f.cmt but never above what we
		// can prove.
		lst = cmt
	}
	lsns := make([]wal.LSN, 0, len(writes))
	for l := range writes {
		lsns = append(lsns, l)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	for _, l := range lsns {
		if l <= checkpoint {
			continue
		}
		if l <= cmt {
			for _, e := range writes[l].Entries(l) {
				r.engine.Apply(e)
			}
			continue
		}
		// Ambiguous suffix (f.cmt, f.lst]: pending until catch-up.
		r.queue.add(&pendingWrite{lsn: l, op: writes[l], selfForced: true})
	}

	r.mu.Lock()
	r.skipped = skipped
	r.lastCommitted = cmt
	r.lastLSN = lst
	if e := lst.Epoch(); e > r.epoch {
		r.epoch = e
	}
	r.nextSeq = lst.Seq() + 1
	r.role = RoleRecovering
	if r.hasOrigin && lst.IsZero() && cmt.IsZero() {
		// A split-created range with no durable state yet (a restart
		// before the first pull completed): the range's data lives with
		// the origin cohort, so gate elections until a pull succeeds.
		r.mustPull = true
	}
	r.mu.Unlock()
	return nil
}

// ambiguousLSNs returns the replica's pending LSNs in (f.cmt, f.lst] —
// the writes whose fate the catch-up phase must resolve.
func (r *replica) ambiguousLSNs() []wal.LSN {
	r.mu.Lock()
	cmt := r.lastCommitted
	r.mu.Unlock()
	var out []wal.LSN
	r.queue.mu.Lock()
	for _, l := range r.queue.order {
		if l > cmt {
			out = append(out, l)
		}
	}
	r.queue.mu.Unlock()
	return out
}

// catchUp runs the follower's catch-up phase (§6.1): advertise f.cmt to the
// leader, receive every committed write after it, resolve the ambiguous
// suffix by logical truncation, and leave the replica a current follower.
func (r *replica) catchUp(leader string) error {
	r.mu.Lock()
	req := catchupReq{Cmt: r.lastCommitted}
	r.mu.Unlock()
	req.Ambiguous = r.ambiguousLSNs()

	resp, err := r.n.call(leader, transport.Message{
		Kind: MsgCatchupReq, Cohort: r.rangeID, Payload: encodeCatchupReq(req),
	})
	if err != nil {
		return fmt.Errorf("core: catch-up call: %w", err)
	}
	cr, err := decodeCatchupResp(resp.Payload)
	if err != nil {
		return err
	}
	if cr.Status == StatusNotLeader {
		return fmt.Errorf("%w: %s no longer leads range %d", ErrNotLeader, leader, r.rangeID)
	}
	if cr.Status != StatusOK {
		return fmt.Errorf("core: catch-up refused: status %d", cr.Status)
	}
	return r.absorbCatchup(cr, req.Ambiguous)
}

// absorbCatchup applies a catch-up (or takeover) response: logically
// truncate dead-branch LSNs, durably log the received committed writes,
// apply them, and advance f.cmt.
func (r *replica) absorbCatchup(cr catchupResp, ambiguous []wal.LSN) error {
	present := make(map[wal.LSN]bool, len(cr.Present))
	for _, l := range cr.Present {
		present[l] = true
	}

	r.mu.Lock()
	// Logical truncation (§6.1.1): ambiguous LSNs absent from the
	// leader's history were discarded by a leader change and must never
	// be re-applied by future local recoveries.
	truncated := false
	for _, l := range ambiguous {
		if !present[l] {
			r.skipped.Add(l)
			r.queue.remove(l)
			truncated = true
		}
	}
	if truncated {
		if err := wal.SaveSkippedLSNs(r.n.meta, r.rangeID, r.skipped); err != nil {
			r.mu.Unlock()
			return fmt.Errorf("core: persist skipped LSNs: %w", err)
		}
	}

	// Durably log the received committed state so a crash right after
	// catch-up does not lose it, then apply.
	var end int64
	for _, e := range cr.Entries {
		op := WriteOp{Row: e.Key.Row, Cols: []ColWrite{{
			Col: e.Key.Col, Value: e.Cell.Value,
			Delete: e.Cell.Deleted, Version: e.Cell.Version,
		}}}
		var err error
		end, err = r.n.log.Append(wal.Record{
			Cohort: r.rangeID, Type: wal.RecWrite, LSN: e.Cell.LSN,
			Payload: EncodeWriteOp(nil, op),
		})
		if err != nil {
			r.mu.Unlock()
			return fmt.Errorf("core: log catch-up entry: %w", err)
		}
		if e.Cell.LSN > r.lastLSN {
			r.lastLSN = e.Cell.LSN
		}
	}
	r.mu.Unlock()
	if end > 0 {
		if err := r.n.log.ForceTo(end); err != nil {
			return fmt.Errorf("core: force catch-up entries: %w", err)
		}
	}
	for _, e := range cr.Entries {
		r.engine.Apply(e)
	}
	r.applyCommitted(cr.Cmt, true)
	r.mu.Lock()
	if cr.Cmt > r.lastLSN {
		r.lastLSN = cr.Cmt
	}
	if e := r.lastLSN.Epoch(); e > r.epoch {
		r.epoch = e
	}
	r.nextSeq = r.lastLSN.Seq() + 1
	// Every absorb source (range leader, takeover, split pull) delivers
	// the complete committed state through the leader's cmt, so a
	// split-created replica now holds its range's data and may stand for
	// election.
	r.mustPull = false
	r.mu.Unlock()
	return nil
}

// splitPull seeds a fresh replica of a split-created range. If the range
// already has a leader, ordinary catch-up against it delivers everything.
// Otherwise the state still lives with the origin range's cohort: pull the
// origin leader's committed rows in our bounds (served only once the origin
// has adopted the shrunk bounds and drained in-flight writes to those rows,
// so the pull is complete by construction).
func (r *replica) splitPull() error {
	if leader := r.n.readLeader(r.rangeID); leader != "" && leader != r.n.cfg.ID {
		if err := r.catchUp(leader); err == nil {
			return nil
		}
	}
	r.mu.Lock()
	low, high := r.low, r.high
	r.mu.Unlock()
	if !r.hasOrigin {
		return fmt.Errorf("core: range %d has no origin to pull from", r.rangeID)
	}
	leader := r.n.readLeader(r.origin)
	if leader == "" {
		return fmt.Errorf("core: origin range %d has no leader", r.origin)
	}
	var cr catchupResp
	if leader == r.n.cfg.ID {
		// This node leads the origin range; serve the pull locally.
		or := r.n.getReplica(r.origin)
		if or == nil {
			return fmt.Errorf("core: origin range %d not served here", r.origin)
		}
		var ok bool
		cr, ok = or.serveSplitPull(low, high)
		if !ok {
			return fmt.Errorf("core: origin range %d not ready for split pull", r.origin)
		}
	} else {
		resp, err := r.n.call(leader, transport.Message{
			Kind: MsgCatchupReq, Cohort: r.origin,
			Payload: encodeCatchupReq(catchupReq{SplitPull: true, FilterLow: low, FilterHigh: high}),
		})
		if err != nil {
			return fmt.Errorf("core: split pull call: %w", err)
		}
		if cr, err = decodeCatchupResp(resp.Payload); err != nil {
			return err
		}
		if cr.Status != StatusOK {
			return fmt.Errorf("core: split pull refused: status %d", cr.Status)
		}
	}
	return r.absorbCatchup(cr, nil)
}

// serveSplitPull is the origin leader's side of a split pull: once we have
// adopted the shrunk bounds (so no new writes enter [low, high)) and every
// in-flight write to those rows has resolved, our engine holds the moved
// sub-range's complete committed state.
func (r *replica) serveSplitPull(low, high string) (catchupResp, bool) {
	r.mu.Lock()
	if r.role != RoleLeader || !(r.high != "" && r.high <= low) {
		r.mu.Unlock()
		return catchupResp{}, false // not leading, or the shrink has not reached us
	}
	if r.queue.hasPendingRowIn(low, high) {
		r.mu.Unlock()
		return catchupResp{}, false // drain in-flight writes first
	}
	cmt := r.lastCommitted
	r.mu.Unlock()

	// Scan outside r.mu: the full-engine walk is slow on a hot range and
	// would stall the whole write path. The filtered result is stable
	// without the lock — after the shrink + drain above, no write to
	// [low, high) can enter this engine again.
	var entries []kv.Entry
	for _, e := range r.engine.EntriesSince(0) {
		if keyInRange(e.Key.Row, low, high) {
			entries = append(entries, e)
		}
	}
	return catchupResp{Status: StatusOK, Cmt: cmt, Entries: entries}, true
}

// onCatchupReq is the leader's side of catch-up (§6.1): send every
// committed write after the follower's f.cmt, plus the subset of the
// follower's ambiguous LSNs that exist in our history. New writes are
// blocked momentarily (we hold r.mu) so the follower is fully caught up as
// of the response (§6.1: "the leader momentarily blocks new writes to
// ensure that the follower is fully caught up").
//
// If part of (f.cmt, l.cmt] has been truncated from our log, the entries
// are served from the storage engine, whose SSTables are tagged with
// min/max LSNs — the SSTable-based catch-up of §6.1. EntriesSince is
// complete (deletes included) for any f.cmt at or above the cohort's
// tombstone-GC watermark, and the watermark never exceeds a member's
// durable commit floor, so a legitimate follower can never ask below it.
func (r *replica) onCatchupReq(m transport.Message) {
	req, err := decodeCatchupReq(m.Payload)
	if err != nil {
		return
	}
	if req.SplitPull {
		resp, ok := r.serveSplitPull(req.FilterLow, req.FilterHigh)
		if !ok {
			r.mu.Lock()
			isLeader := r.role == RoleLeader
			r.mu.Unlock()
			status := StatusUnavailable // not shrunk or not drained yet; retry
			if !isLeader {
				status = StatusNotLeader
			}
			r.n.reply(m, transport.Message{Cohort: r.rangeID,
				Payload: encodeCatchupResp(catchupResp{Status: status})})
			return
		}
		r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeCatchupResp(resp)})
		return
	}
	r.mu.Lock()
	if r.role != RoleLeader {
		r.mu.Unlock()
		r.n.reply(m, transport.Message{Cohort: r.rangeID,
			Payload: encodeCatchupResp(catchupResp{Status: StatusNotLeader})})
		return
	}
	resp := catchupResp{
		Status:  StatusOK,
		Cmt:     r.lastCommitted,
		Present: r.presentLSNsLocked(req.Ambiguous),
		Entries: r.engine.EntriesSince(req.Cmt),
	}
	r.mu.Unlock()
	r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeCatchupResp(resp)})
}

// presentLSNsLocked returns the subset of the asked LSNs that appear in our
// durable history (log or pending queue); callers hold r.mu.
func (r *replica) presentLSNsLocked(asked []wal.LSN) []wal.LSN {
	if len(asked) == 0 {
		return nil
	}
	want := make(map[wal.LSN]bool, len(asked))
	for _, l := range asked {
		want[l] = true
	}
	present := make(map[wal.LSN]bool)
	// The log is authoritative; the scan is bounded by log size, and
	// catch-up is off the critical path.
	_ = r.n.log.ScanCohort(r.rangeID, func(rec wal.Record) error {
		if rec.Type == wal.RecWrite && want[rec.LSN] && !r.skipped.Contains(rec.LSN) {
			present[rec.LSN] = true
		}
		return nil
	})
	out := make([]wal.LSN, 0, len(present))
	for _, l := range asked {
		if present[l] {
			out = append(out, l)
		}
	}
	return out
}

// onTakeover is the follower's side of leader takeover (Fig 6 lines 5-6):
// the new leader catches us up to its l.cmt and sends a commit message.
// The payload reuses the catch-up response format; Present covers our whole
// ambiguous range so dead branches are truncated immediately.
func (r *replica) onTakeover(m transport.Message) {
	cr, err := decodeCatchupResp(m.Payload)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.role == RoleLeader {
		// We believed we led; a takeover from a higher epoch demotes us.
		r.demoteLocked(m.From)
	}
	r.leaderID = m.From
	if r.role == RoleRecovering {
		r.role = RoleFollower
	}
	r.mu.Unlock()

	ambiguous := r.ambiguousLSNs()
	if err := r.absorbCatchup(cr, ambiguous); err != nil {
		return
	}
	r.mu.Lock()
	cmt := r.lastCommitted
	r.mu.Unlock()
	r.n.markCurrent(r.rangeID)
	r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeLSN(cmt)})
}

// demoteLocked turns a (stale) leader back into a follower, failing any
// writes still waiting for quorum; callers hold r.mu.
func (r *replica) demoteLocked(newLeader string) {
	r.role = RoleFollower
	r.open = false
	r.leaderID = newLeader
	// Wake the election loop: it may be blocked watching our own leader
	// znode (which will never change by itself). On waking it finds the
	// znode held-but-not-led and deletes it so a real election can run;
	// without the nudge the whole cohort waits on the orphan forever.
	select {
	case r.electionNudge <- struct{}{}:
	default:
	}
	// Drop any proposals still waiting in the batcher: the new leader
	// owns the replication stream now (followers would reject them as
	// stale-epoch anyway).
	r.batchBuf = nil
	r.batchEnd = 0
	// Pending writes keep their places in the queue — they are in our
	// durable log and may yet be committed by the new leader's
	// re-proposals. Their waiting clients, however, must not hang.
	for _, lsn := range r.queue.snapshotOrder() {
		if p, ok := r.queue.get(lsn); ok {
			p.finish(writeOutcome{status: StatusAmbiguous, detail: "leadership lost mid-replication"})
		}
	}
}

// runCatchupLoop retries catch-up until it succeeds; used when a follower
// detects it is behind (gap in proposes, commit message beyond its log, or
// restart with an existing leader).
func (r *replica) runCatchupLoop() {
	for attempt := 0; ; attempt++ {
		if r.exiting() {
			return
		}
		r.mu.Lock()
		leader := r.leaderID
		role := r.role
		mustPull := r.mustPull
		r.mu.Unlock()
		if role == RoleLeader {
			return
		}
		if mustPull {
			// Split-created and still empty: seed from the origin
			// cohort (or the range's own leader once one exists). The
			// election gate re-nudges this loop until a pull succeeds,
			// so bounded attempts here never strand the replica.
			if err := r.splitPull(); err == nil {
				r.mu.Lock()
				if r.role == RoleRecovering {
					r.role = RoleFollower
				}
				r.mu.Unlock()
				r.n.markCurrent(r.rangeID)
				return
			}
			if attempt > 10 {
				return
			}
			time.Sleep(r.n.cfg.RetryInterval)
			continue
		}
		if leader == "" || leader == r.n.cfg.ID {
			leader = r.n.readLeader(r.rangeID)
			if leader == "" || leader == r.n.cfg.ID {
				return // no leader: the election loop owns recovery now
			}
			r.mu.Lock()
			r.leaderID = leader
			r.mu.Unlock()
		}
		err := r.catchUp(leader)
		if err == nil {
			r.mu.Lock()
			if r.role == RoleRecovering {
				r.role = RoleFollower
			}
			r.mu.Unlock()
			r.n.markCurrent(r.rangeID)
			return
		}
		if errors.Is(err, ErrNotLeader) {
			r.mu.Lock()
			r.leaderID = ""
			r.mu.Unlock()
		}
		if attempt > 50 {
			return
		}
		time.Sleep(r.n.cfg.RetryInterval)
	}
}
