package sim

import (
	"errors"
	"fmt"
	"spinnaker/internal/simtime"
	"sync"
	"time"

	"spinnaker/internal/core"
	"spinnaker/internal/lin"
	"spinnaker/internal/wal"
)

// RejoinOptions configure one truncated-log rejoin scenario: a follower
// crashes, the survivors keep committing until the shared log is truncated
// past the crashed replica's f.cmt, and the node rejoins — which must go
// through the SSTable-shipping catch-up path (§6.1) unless the log-replay
// ablation is set.
type RejoinOptions struct {
	// Seed drives the recorded workload.
	Seed int64
	// Writers is the recorded workload concurrency (default 3; ignored
	// in Measure mode).
	Writers int
	// ContendedKeys is the number of linearizability-checked rows
	// (default 5; ignored in Measure mode).
	ContendedKeys int
	// PreloadRows is the bulk data loaded before the crash — the state
	// the rejoining node must recover (default 400).
	PreloadRows int
	// ValueBytes sizes the bulk values (default 256).
	ValueBytes int
	// DiskLoss destroys the victim's stable storage with the crash
	// (§6.1 disk failure): the rejoin rebuilds the whole range, so
	// recovery cost scales with the data held, not the downtime.
	DiskLoss bool
	// DisableSnapshot runs the log-replay ablation for comparison.
	DisableSnapshot bool
	// Measure skips the recorded workload and the linearizability check:
	// preload, crash, rejoin, and report timing only (benchmark mode).
	Measure bool
	// CheckTimeout bounds the linearizability search (default 60s).
	CheckTimeout time.Duration
}

func (o *RejoinOptions) fillDefaults() {
	if o.Writers <= 0 {
		o.Writers = 3
	}
	if o.ContendedKeys <= 0 {
		o.ContendedKeys = 5
	}
	if o.PreloadRows <= 0 {
		o.PreloadRows = 400
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 256
	}
	if o.CheckTimeout <= 0 {
		o.CheckTimeout = 60 * time.Second
	}
}

// RejoinResult reports one rejoin scenario run.
type RejoinResult struct {
	Victim      string
	PreloadRows int
	// RejoinTime is restart-to-caught-up: every range the victim serves
	// is back at (or past) the commit point its leader held at restart.
	RejoinTime time.Duration
	// SnapshotCatchups counts the victim's catch-ups that absorbed a
	// snapshot manifest; SnapshotsServed counts manifests served by the
	// surviving leaders. Both are zero under the ablation.
	SnapshotCatchups int64
	SnapshotsServed  int64
	Check            lin.CheckResult
	Ops              int
}

// ErrNeverTruncated reports that the surviving cohorts never truncated the
// log past the victim's commit floor, so the scenario could not force the
// snapshot path (slow flush daemon; rerun or raise the write volume).
var ErrNeverTruncated = errors.New("sim: log never truncated past the victim's cmt")

// RunTruncatedRejoin executes the scenario and, unless Measure is set,
// checks the concurrent workload's history for per-key linearizability.
func RunTruncatedRejoin(opts RejoinOptions) (*RejoinResult, error) {
	opts.fillDefaults()
	sc, err := NewSpinnakerCluster(Options{
		Nodes:        3,
		FaultSeed:    opts.Seed,
		CommitPeriod: 5 * time.Millisecond,
		WriteTimeout: 2 * time.Second,
		// Tiny storage thresholds so flushes, segment rolls, and log
		// truncation all happen within the scenario.
		FlushBytes:             32 << 10,
		SegmentBytes:           64 << 10,
		MaxTables:              6,
		FlushInterval:          2 * time.Millisecond,
		DisableSnapshotCatchup: opts.DisableSnapshot,
	})
	if err != nil {
		return nil, err
	}
	defer sc.Stop()
	if err := sc.WaitReady(30 * time.Second); err != nil {
		return nil, err
	}

	domain := 1
	for i := 0; i < sc.opts.KeyWidth; i++ {
		domain *= 10
	}
	stride := domain / opts.PreloadRows
	if stride < 1 {
		stride = 1
	}
	val := make([]byte, opts.ValueBytes)
	for i := range val {
		val[i] = byte(i)
	}
	putRetryOn := func(c *core.Client, row string) error {
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			if _, err = c.Put(row, "d", val); err == nil {
				return nil
			}
			simtime.Sleep(10 * time.Millisecond)
		}
		return fmt.Errorf("sim: preload put %s: %w", row, err)
	}
	// Parallel preload: at benchmark sizes (10k+ rows) a single closed-loop
	// client would spend longer loading than the scenario measures.
	const loaders = 8
	var plwg sync.WaitGroup
	plErr := make(chan error, loaders)
	for l := 0; l < loaders; l++ {
		plwg.Add(1)
		go func(l int) {
			defer plwg.Done()
			c := sc.NewClient()
			for i := l; i < opts.PreloadRows; i += loaders {
				if err := putRetryOn(c, sc.Key(i*stride)); err != nil {
					plErr <- err
					return
				}
			}
		}(l)
	}
	plwg.Wait()
	select {
	case err := <-plErr:
		return nil, err
	default:
	}
	filler := sc.NewClient()
	putRetry := func(row string) error { return putRetryOn(filler, row) }

	// The victim is a follower of range 0 (any member node would do: with
	// 3-way replication every node serves every range).
	leader0 := sc.LeaderOf(0)
	var victim string
	for _, id := range sc.Nodes() {
		if id != leader0 {
			victim = id
			break
		}
	}
	res := &RejoinResult{Victim: victim, PreloadRows: opts.PreloadRows}

	ranges := sc.CurrentLayout().RangeIDs()
	vn, ok := sc.Node(victim)
	if !ok {
		return nil, fmt.Errorf("sim: victim %s not running", victim)
	}
	preCmt := make(map[uint32]wal.LSN, len(ranges))
	for _, r := range ranges {
		if st, ok := vn.ReplicaStats(r); ok {
			preCmt[r] = st.LastCommitted
		}
	}

	// Recorded workload over contended keys, concurrent with the crash
	// and the rejoin (skipped in Measure mode).
	rec := lin.NewRecorder()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if !opts.Measure {
		keys := make([]string, opts.ContendedKeys)
		for i := range keys {
			keys[i] = sc.Key(i * (domain / opts.ContendedKeys))
		}
		for w := 0; w < opts.Writers; w++ {
			c := sc.NewClient()
			c.SetStrictWrites(true)
			wg.Add(1)
			go func(w int, c *core.Client) {
				defer wg.Done()
				runWriter(c, rec, keys, w, opts.Seed, stop)
			}(w, c)
		}
	}
	bail := func(err error) (*RejoinResult, error) {
		close(stop)
		wg.Wait()
		return nil, err
	}

	if err := sc.CrashNode(victim); err != nil {
		return bail(err)
	}
	if opts.DiskLoss {
		sc.FailDisk(victim)
	}
	rec.Note("rejoin: crash %s (disk loss %v)", victim, opts.DiskLoss)

	// Keep writing until every range's survivors have truncated the log
	// past the victim's commit floor (for disk loss, past zero): the
	// rejoin can then only complete through bulk catch-up.
	truncatedPast := func(r uint32) bool {
		target := preCmt[r]
		if opts.DiskLoss {
			target = 0
		}
		ln, ok := sc.Node(sc.LeaderOf(r))
		return ok && ln.LogTruncated(r) > target
	}
	deadline := simtime.Now().Add(60 * time.Second)
	for i := opts.PreloadRows; ; i++ {
		done := true
		for _, r := range ranges {
			if !truncatedPast(r) {
				done = false
				break
			}
		}
		if done {
			break
		}
		if simtime.Now().After(deadline) {
			return bail(ErrNeverTruncated)
		}
		// Each filler write hits a FRESH row (offset inside the stride
		// gap), still striped across every range: rewriting the preload
		// rows would leave each memtable's latest-cell-per-key footprint
		// flat below FlushBytes and no flush (hence no truncation) would
		// ever trigger.
		row := sc.Key((i%opts.PreloadRows)*stride + 1 + (i/opts.PreloadRows)%(stride-1))
		if err := putRetry(row); err != nil {
			return bail(err)
		}
	}
	rec.Note("rejoin: log truncated past victim on all %d ranges", len(ranges))

	// Rejoin: restart and wait until every range is back at the commit
	// point its leader holds now (later writes keep flowing; catching up
	// to the restart-time point is the recovery the crash forced).
	target := make(map[uint32]wal.LSN, len(ranges))
	for _, r := range ranges {
		if ln, ok := sc.Node(sc.LeaderOf(r)); ok {
			if st, ok := ln.ReplicaStats(r); ok {
				target[r] = st.LastCommitted
			}
		}
	}
	start := simtime.Now()
	if err := sc.RestartNode(victim); err != nil {
		return bail(err)
	}
	vn, _ = sc.Node(victim)
	deadline = simtime.Now().Add(120 * time.Second)
	for _, r := range ranges {
		for {
			st, ok := vn.ReplicaStats(r)
			if ok && st.Role != core.RoleRecovering && st.LastCommitted >= target[r] {
				break
			}
			if simtime.Now().After(deadline) {
				return bail(fmt.Errorf("sim: range %d never caught up (at %s, want %s)",
					r, st.LastCommitted, target[r]))
			}
			simtime.Sleep(2 * time.Millisecond)
		}
	}
	res.RejoinTime = simtime.Since(start)
	rec.Note("rejoin: %s caught up in %v", victim, res.RejoinTime)

	for _, r := range ranges {
		if st, ok := vn.ReplicaStats(r); ok {
			res.SnapshotCatchups += st.SnapshotCatchups
		}
		if ln, ok := sc.Node(sc.LeaderOf(r)); ok && ln.ID() != victim {
			if st, ok := ln.ReplicaStats(r); ok {
				res.SnapshotsServed += st.SnapshotsServed
			}
		}
	}

	if !opts.Measure {
		// Let the workload observe the recovered cluster, then check.
		simtime.Sleep(300 * time.Millisecond)
		close(stop)
		wg.Wait()
		res.Check = rec.Check(opts.CheckTimeout)
		res.Ops = res.Check.Ops
		if res.Check.Err != nil {
			return res, fmt.Errorf("sim: seed %d: linearizability check undecided: %w", opts.Seed, res.Check.Err)
		}
		if !res.Check.Linearizable {
			return res, fmt.Errorf("%w: seed %d, key %q\n%s\nhistory:\n%s",
				ErrNotLinearizable, opts.Seed, res.Check.BadKey, res.Check.Detail,
				rec.FormatKey(res.Check.BadKey))
		}
	} else {
		close(stop)
		wg.Wait()
	}
	return res, nil
}
