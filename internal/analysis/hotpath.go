package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpath enforces allocation hygiene on //spinnaker:hotpath functions
// — the submit/commit/append/codec paths PR 5 profiled down to their
// current allocs/op, statically complementing the spinnaker-bench
// -guard gate. Inside an annotated function it flags:
//
//   - any call into package fmt (fmt.Errorf on a cold error branch
//     belongs in a non-annotated helper or behind a static error);
//   - function literals except immediately-invoked ones and locals
//     used only as direct call targets (escaping closures allocate
//     their captures);
//   - go/defer of a function literal (allocates, and go schedules);
//   - transient []byte↔string conversions inside loops: a conversion
//     whose result is stored (x := string(b), s.F = string(b), return)
//     is a deliberate copy and allowed, as are the compiler-optimized
//     idioms (map index, comparison, switch); a conversion passed
//     straight into a call re-allocates every iteration. Round-trip
//     conversions ([]byte(string(b))) are flagged everywhere;
//   - append targets in loops whose local declaration has no capacity
//     (var x []T / x := []T{} / make([]T, 0)): pre-size with
//     make(len, cap). Targets not declared locally (parameters,
//     fields) are trusted — the caller owns their capacity.
func hotpath(m *Module, idx *annIndex) []Finding {
	var out []Finding
	for _, pkg := range m.Pkgs() {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil || !idx.byFunc[obj].Hotpath {
					continue
				}
				out = append(out, hotFunc(m, pkg, fd)...)
			}
		}
	}
	return out
}

func hotFunc(m *Module, pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding

	// Function literals used only as direct call targets of a local
	// variable don't escape; collect those variables first.
	calledOnlyLocals := localClosureCallTargets(pkg, fd)

	// Track loop nesting by position range.
	var loops []ast.Node
	inLoop := func(n ast.Node) bool {
		for _, l := range loops {
			if l.Pos() <= n.Pos() && n.End() <= l.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := calleeFunc(pkg.Info, n); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
				out = append(out, finding(m, "hotpath", n,
					"hot path calls fmt.%s (allocates and reflects); use a static error or move formatting off the hot path", f.Name()))
			}
			if conv, kind := byteStringConv(pkg.Info, n); conv {
				if rt := roundTripConv(pkg.Info, n); rt {
					out = append(out, finding(m, "hotpath", n,
						"%s round-trip conversion copies twice; restructure to keep one representation", kind))
				} else if inLoop(n) && transientConv(pkg.Info, fd, n) {
					out = append(out, finding(m, "hotpath", n,
						"transient %s conversion inside a loop allocates per iteration; hoist it, store it, or use a byte-oriented API", kind))
				}
			}
			if isAppendCall(pkg.Info, n) && inLoop(n) && len(n.Args) > 0 {
				if tgt, bad := unsizedAppendTarget(pkg, fd, n); bad {
					out = append(out, finding(m, "hotpath", n,
						"append to %q in a loop, but its declaration has no capacity; pre-size with make(..., 0, n) (PR 5: growth re-allocations dominated the profile)", tgt))
				}
			}
		case *ast.FuncLit:
			if closureEscapes(pkg, fd, n, calledOnlyLocals) {
				out = append(out, finding(m, "hotpath", n,
					"function literal escapes the hot path (allocates its captures); hoist it or restructure without a closure"))
			}
			return false // nested literals judged with their parent
		}
		return true
	})
	return out
}

// localClosureCallTargets finds local variables assigned exactly one
// function literal and used only as direct call targets — those
// closures stay on the stack.
func localClosureCallTargets(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	assigned := map[types.Object]*ast.FuncLit{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Rhs {
			lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				assigned[obj] = lit
			}
		}
		return true
	})
	ok := map[types.Object]bool{}
	for obj := range assigned {
		ok[obj] = true
	}
	// A use anywhere other than call-target position disqualifies.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if isCall {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID {
				if obj := pkg.Info.Uses[id]; obj != nil && ok[obj] {
					// Direct call: fine. Skip the Fun ident, walk args.
					for _, a := range call.Args {
						ast.Inspect(a, disqualify(pkg, ok))
					}
					return false
				}
			}
		}
		if id, isID := n.(*ast.Ident); isID {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if _, tracked := assigned[obj]; tracked {
					// Used outside a direct call.
					ok[obj] = false
				}
			}
		}
		return true
	})
	return ok
}

func disqualify(pkg *Package, ok map[types.Object]bool) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if id, isID := n.(*ast.Ident); isID {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if _, tracked := ok[obj]; tracked {
					ok[obj] = false
				}
			}
		}
		return true
	}
}

// closureEscapes decides whether a function literal in a hot function
// allocates: immediately-invoked literals and literals bound to
// call-only locals do not.
func closureEscapes(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit, calledOnly map[types.Object]bool) bool {
	path := nodePath(fd, lit)
	if len(path) < 2 {
		return true
	}
	parent := path[len(path)-2]
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			return false // immediately invoked
		}
		return true // passed as an argument
	case *ast.AssignStmt:
		for i, r := range p.Rhs {
			if ast.Unparen(r) == lit && i < len(p.Lhs) {
				if id, ok := p.Lhs[i].(*ast.Ident); ok {
					if obj := pkg.Info.Defs[id]; obj != nil && calledOnly[obj] {
						return false
					}
				}
			}
		}
		return true
	case *ast.GoStmt, *ast.DeferStmt:
		return true
	}
	return true
}

// nodePath returns the ancestor chain from fd down to target.
func nodePath(fd *ast.FuncDecl, target ast.Node) []ast.Node {
	var path, found []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if n == nil {
			path = path[:len(path)-1]
			return true
		}
		path = append(path, n)
		if n == target {
			found = append([]ast.Node(nil), path...)
			return false
		}
		return true
	})
	return found
}

// byteStringConv recognizes string([]byte) and []byte(string)
// conversions.
func byteStringConv(info *types.Info, call *ast.CallExpr) (bool, string) {
	if len(call.Args) != 1 {
		return false, ""
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false, ""
	}
	to := tv.Type.Underlying()
	from, ok := info.Types[call.Args[0]]
	if !ok {
		return false, ""
	}
	if isString(to) && isByteSlice(from.Type.Underlying()) {
		return true, "[]byte→string"
	}
	if isByteSlice(to) && isString(from.Type.Underlying()) {
		return true, "string→[]byte"
	}
	return false, ""
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// roundTripConv reports string([]byte(x)) / []byte(string(x)).
func roundTripConv(info *types.Info, call *ast.CallExpr) bool {
	inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	conv, _ := byteStringConv(info, inner)
	return conv
}

// transientConv reports whether a conversion's result is consumed
// without being stored: conversions feeding an assignment, composite
// literal, return, map index, comparison, or switch are deliberate (or
// compiler-optimized); a conversion passed directly as a call argument
// re-allocates on every evaluation.
func transientConv(info *types.Info, fd *ast.FuncDecl, conv *ast.CallExpr) bool {
	path := nodePath(fd, conv)
	if len(path) < 2 {
		return false
	}
	parent := path[len(path)-2]
	switch p := parent.(type) {
	case *ast.CallExpr:
		return true // argument to another call
	case *ast.IndexExpr:
		return false // map[string(b)] — optimized, no allocation
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			return false // comparison — optimized
		}
		return true // concatenation etc. in a loop
	default:
		return false // stored, returned, switched on, ...
	}
}

func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// unsizedAppendTarget reports whether an in-loop append's target is a
// local declared without capacity. Returns the target name and whether
// to flag.
func unsizedAppendTarget(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr) (string, bool) {
	tgt, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return "", false // x.field = append(x.field, ...): caller-owned
	}
	obj := pkg.Info.Uses[tgt]
	if obj == nil || !objIsLocal(obj, fd) {
		return "", false
	}
	// Find the declaration/initialization of obj within fd.
	flag := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, l := range n.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok || pkg.Info.Defs[id] != obj || i >= len(n.Rhs) {
					continue
				}
				flag = unsizedInit(pkg.Info, n.Rhs[i])
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pkg.Info.Defs[name] != obj {
						continue
					}
					if len(vs.Values) == 0 {
						flag = true // var x []T
					} else if i < len(vs.Values) {
						flag = unsizedInit(pkg.Info, vs.Values[i])
					}
				}
			}
		}
		return true
	})
	return tgt.Name, flag
}

// unsizedInit reports whether a slice initializer carries no useful
// capacity: empty composite literals and 2-arg make. Initializers we
// cannot judge (calls, other variables) are trusted.
func unsizedInit(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				return len(e.Args) < 3
			}
		}
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}
