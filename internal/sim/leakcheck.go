package sim

import (
	"runtime"
	"time"

	"spinnaker/internal/simtime"
)

// TB is the slice of *testing.T the leak sentinel needs. Declaring it
// here (instead of importing the testing package) keeps testing out of
// non-test builds that link internal/sim.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// leakSlack is how many goroutines above the baseline the sentinel
// tolerates: the runtime starts service goroutines (timer scavenger,
// GC workers visible to NumGoroutine) lazily, so the first test that
// touches a timer can legitimately end one goroutine up.
const leakSlack = 1

// leakSettle bounds how long the sentinel waits for goroutine counts
// to drain back to the baseline before declaring a leak: Stop paths
// are synchronous, but the goroutines they release (link pumps,
// election loops, force/ack closures) need a few scheduler passes to
// observe their stop channels and exit. A variable, not a constant,
// so the sentinel's own test can shorten the wait on a deliberate
// leak.
var leakSettle = 5 * time.Second

// CheckGoroutineLeaks arms a goroutine-leak sentinel for a cluster
// test: call it FIRST, before NewSpinnakerCluster/NewDynamoCluster, so
// its cleanup runs after the test's deferred Stop. The cleanup
// compares runtime.NumGoroutine against the baseline taken here,
// waiting up to leakSettle for stragglers, and on a leak fails the
// test with a full goroutine stack dump — turning "Stop forgot a
// loop" from a slow CI-wide drain into a named stack trace.
func CheckGoroutineLeaks(t TB) {
	t.Helper()
	before := settledGoroutines()
	t.Cleanup(func() {
		deadline := simtime.Now().Add(leakSettle)
		after := runtime.NumGoroutine()
		for after > before+leakSlack && simtime.Now().Before(deadline) {
			simtime.Sleep(10 * time.Millisecond)
			after = runtime.NumGoroutine()
		}
		if after <= before+leakSlack {
			return
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at test start, %d after Stop (slack %d)\n%s",
			before, after, leakSlack, buf[:n])
	})
}

// settledGoroutines waits (briefly, bounded) for the goroutine count to
// hold still across consecutive polls before reporting it. A previous
// test's teardown may still be draining when the next test arms its
// sentinel; baselining against that transient peak would let a real
// leak of equal size hide inside it.
func settledGoroutines() int {
	last := runtime.NumGoroutine()
	stable := 0
	for i := 0; i < 100 && stable < 5; i++ {
		simtime.Sleep(time.Millisecond)
		n := runtime.NumGoroutine()
		if n == last {
			stable++
		} else {
			stable = 0
			last = n
		}
	}
	return last
}
