// Package wal implements the shared write-ahead log used by every Spinnaker
// node (paper §4.1, §5, §6, Appendix B).
//
// A node writes the log records of all the cohorts it belongs to into one
// physical log so that a single dedicated logging device can be used. Each
// cohort uses its own logical stream of LSNs within the shared log. An LSN is
// a two-part epoch.sequence value: the epoch is incremented on every leader
// takeover (through the coordination service) which guarantees that a new
// leader assigns LSNs greater than any LSN previously used in the cohort.
// LSNs effectively play the role of Paxos proposal numbers.
package wal

import "fmt"

// epochBits is the number of high-order bits of an LSN reserved for the
// epoch number (paper §7, footnote 1). The remaining low-order bits hold the
// per-epoch sequence number.
const epochBits = 16

const seqBits = 64 - epochBits

// MaxEpoch is the largest representable epoch number.
const MaxEpoch = 1<<epochBits - 1

// MaxSeq is the largest representable sequence number within an epoch.
const MaxSeq = 1<<seqBits - 1

// LSN is a log sequence number with a two-part e.seq representation
// (paper Appendix B). The zero LSN is smaller than every valid LSN and is
// used as "nothing logged yet".
type LSN uint64

// MakeLSN builds an LSN from an epoch and a sequence number.
// It panics if either component is out of range; epochs are small integers
// allocated by the coordination service and sequences are bounded by the
// number of writes in an epoch, so an overflow is a programming error.
func MakeLSN(epoch uint32, seq uint64) LSN {
	if epoch > MaxEpoch {
		panic(fmt.Sprintf("wal: epoch %d overflows %d bits", epoch, epochBits))
	}
	if seq > MaxSeq {
		panic(fmt.Sprintf("wal: sequence %d overflows %d bits", seq, seqBits))
	}
	return LSN(uint64(epoch)<<seqBits | seq)
}

// Epoch returns the epoch component of the LSN.
func (l LSN) Epoch() uint32 { return uint32(uint64(l) >> seqBits) }

// Seq returns the sequence component of the LSN.
func (l LSN) Seq() uint64 { return uint64(l) & MaxSeq }

// Next returns the LSN that follows l within the same epoch.
func (l LSN) Next() LSN {
	if l.Seq() == MaxSeq {
		panic("wal: sequence overflow; epoch must be advanced")
	}
	return l + 1
}

// IsZero reports whether l is the zero LSN ("nothing logged").
func (l LSN) IsZero() bool { return l == 0 }

// String renders the LSN in the paper's e.seq notation, e.g. "1.21".
func (l LSN) String() string {
	return fmt.Sprintf("%d.%d", l.Epoch(), l.Seq())
}
