package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/kv"
	"spinnaker/internal/storage"
	"spinnaker/internal/transport"
	"spinnaker/internal/wal"
)

// Role is a replica's position within its cohort.
type Role int32

// Replica roles. A node is recovering until local recovery and catch-up
// complete, then either follows the cohort leader or (after winning an
// election and finishing takeover) leads.
const (
	RoleRecovering Role = iota
	RoleFollower
	RoleCandidate
	RoleLeader
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleRecovering:
		return "recovering"
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	default:
		return fmt.Sprintf("Role(%d)", int32(r))
	}
}

// replica is one node's participation in one cohort (key range). A node in
// a 3-way replicated cluster runs 3 replicas over a shared log (§4.1).
// Under live reconfiguration the cohort membership, bounds, and quorum are
// no longer fixed: applyLayout updates them in place when a newer layout is
// adopted, and retire ends the replica when this node leaves the cohort.
type replica struct {
	n       *Node
	rangeID uint32

	// origin is the range this one was split from (layout metadata): a
	// fresh replica of a split-created range must pull its initial state
	// from the origin range's leader before standing for election.
	origin    uint32
	hasOrigin bool

	// stopCh ends this replica's loops when it retires (the node-level
	// stopCh still covers shutdown).
	stopCh chan struct{}

	mu       sync.Mutex
	peers    []string // the other cohort members (layout-managed)
	quorum   int      // majority of the cohort, counting ourselves
	low      string   // serving bounds: [low, high), high=="" means top
	high     string
	home     string // the layout's preferred leader (election tie-break)
	mustPull bool   // split-created and not yet seeded from the origin
	abstain  bool   // sit out the next election round (leadership transfer)
	retired  bool

	role          Role
	open          bool // leader only: cohort open for writes (Fig 6 line 10)
	epoch         uint32
	nextSeq       uint64
	lastLSN       wal.LSN // f.lst / l.lst
	lastCommitted wal.LSN // f.cmt / l.cmt
	leaderID      string
	skipped       *wal.SkippedLSNs

	// gapped is set when a propose arrives with a sequence gap (lost
	// messages); until catch-up repairs the gap, commit messages must
	// not advance lastCommitted past state we might not hold.
	gapped bool

	queue  *commitQueue
	engine *storage.Engine

	// Tombstone-GC watermark state. The leader tracks each peer's durable
	// commit floor (its storage checkpoint, piggybacked on acks) in
	// peerFloors and takes the cohort-wide minimum as the watermark below
	// which compaction may drop tombstones; followers learn that
	// watermark from the leader's commit messages in gcFloor. Floors are
	// monotone while membership is stable (checkpoints never regress
	// across crashes); applyLayout prunes entries when the cohort
	// changes, since a re-joining member restarts from a wiped engine.
	peerFloors map[string]wal.LSN
	gcFloor    wal.LSN

	// Leader-side proposal batcher (default write path): writes are
	// sequenced into batchBuf under r.mu; the first writer to find no
	// drain in progress becomes the drainer and sends everything
	// sequenced since the last send as one MsgProposeBatch per peer,
	// looping while further writes accumulate behind it. batchSending
	// marks the active drainer (guarded by r.mu).
	batchBuf     []proposeRec
	batchEnd     int64 // max log offset of buffered records (force target)
	batchSending bool

	// Bulk catch-up counters (guarded by r.mu): manifests served as
	// leader, snapshot-path catch-ups absorbed as follower.
	snapshotsServed  int64
	snapshotCatchups int64

	// election bookkeeping
	electionNudge chan struct{}

	// m is the replica's hot-path instrumentation (see metrics.go);
	// commitAdvanced (guarded by mu) is when lastCommitted last moved,
	// the time half of the commit-lag metric.
	m              rangeMetrics
	commitAdvanced time.Time
}

// batched reports whether the cohort uses the batched replication pipeline
// (on unless the DisableProposalBatching ablation is set).
func (r *replica) batched() bool { return !r.n.cfg.DisableProposalBatching }

// membership snapshots the cohort membership (peers and quorum) under lock;
// both change when a newer layout is adopted mid-flight.
func (r *replica) membership() (peers []string, quorum int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.peers...), r.quorum
}

// inBoundsLocked reports whether this replica currently serves row; callers
// hold r.mu. Bounds shrink when the range splits: rows that moved to the
// new range are refused with StatusWrongLayout so clients re-route.
//
//spinnaker:locked(mu)
func (r *replica) inBoundsLocked(row string) bool {
	return keyInRange(row, r.low, r.high)
}

// applyLayout updates the replica's bounds and cohort membership to a newer
// layout. On the leader, acks from members that left the cohort stop
// counting toward quorum immediately (tryCommit filters by current peers),
// and the next retransmission sweep re-proposes pending writes to the new
// membership.
func (r *replica) applyLayout(l *cluster.Layout) {
	low, high := l.Bounds(r.rangeID)
	var peers []string
	for _, member := range l.Cohort(r.rangeID) {
		if member != r.n.cfg.ID {
			peers = append(peers, member)
		}
	}
	r.mu.Lock()
	r.low, r.high = low, high
	r.peers = peers
	r.quorum = l.Quorum(r.rangeID)
	r.home = l.HomeNode(r.rangeID)
	// Drop GC floors of members that left: a peer that later re-joins
	// does so with a wiped engine, and its stale pre-departure floor
	// must not let compaction drop tombstones its fresh catch-up still
	// pins (it reports a new floor with its first ack).
	current := make(map[string]bool, len(peers))
	for _, p := range peers {
		current[p] = true
	}
	for p := range r.peerFloors {
		if !current[p] {
			delete(r.peerFloors, p)
		}
	}
	isLeader := r.role == RoleLeader
	r.mu.Unlock()
	if isLeader {
		// Quorum or membership may have changed; re-evaluate pending
		// writes under the new rules.
		r.tryCommit()
	}
}

// retire ends this node's participation in the cohort: the node is no
// longer a member under the current layout. Loops stop, a held leadership
// is released (triggering an election among the remaining members), our
// election and catch-up markers are withdrawn, and waiting clients are
// failed with an ambiguous outcome (their writes may still commit through
// the surviving members, which hold them in their durable logs).
func (r *replica) retire() {
	r.mu.Lock()
	if r.retired {
		r.mu.Unlock()
		return
	}
	r.retired = true
	r.role = RoleFollower
	r.open = false
	r.leaderID = ""
	r.batchBuf = nil
	r.batchEnd = 0
	for _, lsn := range r.queue.snapshotOrder() {
		if p, ok := r.queue.get(lsn); ok {
			p.finish(writeOutcome{status: StatusAmbiguous, detail: "cohort membership changed mid-replication"})
		}
	}
	r.mu.Unlock()
	close(r.stopCh)

	// Disable this engine's maintenance before recording the departure
	// (draining any flush/compaction the node's flush daemon still has in
	// flight from a pre-retirement replica snapshot): a re-join builds a
	// fresh engine over the same per-cohort stores, whose Open sweeps
	// unreferenced blobs and whose wipe persists an empty manifest — a
	// late manifest save from this retired engine would overwrite it with
	// the stale pre-departure table set.
	r.engine.Close()

	// Durably record the departure: local state for this range is stale
	// from this point on, and a future re-join — even one interrupted by
	// a crash before the live adoption path runs — must discard it (see
	// Node.resetRejoinState).
	_ = r.n.meta.Put(departedKey(r.rangeID), []byte{1})

	sess := r.n.coordSess
	// Release the leader znode whenever it carries our id — not only when
	// we still believe we lead. A mid-takeover demotion can leave us
	// holding the znode with a follower role; once this replica is gone,
	// nobody else can clean it up, and the remaining members would wait
	// on it forever. Version-guarded so a claim created between the read
	// and the delete is never the one removed.
	if data, ver, err := sess.GetVersion(leaderPath(r.rangeID)); err == nil && string(data) == r.n.cfg.ID {
		_ = sess.DeleteVersion(leaderPath(r.rangeID), ver)
	}
	if kids, err := sess.Children(candidatesPath(r.rangeID)); err == nil {
		for _, kid := range kids {
			if strings.HasPrefix(kid.Name, "c:"+r.n.cfg.ID+":") {
				_ = sess.Delete(candidatesPath(r.rangeID) + "/" + kid.Name)
			}
		}
	}
	r.n.dropCurrent(r.rangeID)
}

// stepDown relinquishes leadership for a leadership transfer; see
// Node.StepDown.
func (r *replica) stepDown() bool {
	r.mu.Lock()
	if r.role != RoleLeader {
		r.mu.Unlock()
		return false
	}
	r.abstain = true
	r.demoteLocked("")
	r.mu.Unlock()
	// Guarded release, exactly as in retire and the election loop's
	// orphan cleanup: the demote nudge may already have woken the
	// election loop, which can delete the znode and let a rival claim
	// leadership before this line runs — an unguarded delete here would
	// remove the rival's claim and open a dual-leader window.
	sess := r.n.coordSess
	if data, ver, err := sess.GetVersion(leaderPath(r.rangeID)); err == nil && string(data) == r.n.cfg.ID {
		_ = sess.DeleteVersion(leaderPath(r.rangeID), ver)
	}
	select {
	case r.electionNudge <- struct{}{}:
	default:
	}
	return true
}

// exiting reports whether the replica's loops should stop (node shutdown or
// replica retirement).
func (r *replica) exiting() bool {
	if r.n.stopped() {
		return true
	}
	select {
	case <-r.stopCh:
		return true
	default:
		return false
	}
}

func (r *replica) loggerPrefix() string {
	return fmt.Sprintf("%s/r%d", r.n.cfg.ID, r.rangeID)
}

// snapshotState returns the replica's LSN state under lock.
func (r *replica) snapshotState() (role Role, cmt, lst wal.LSN, leader string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.role, r.lastCommitted, r.lastLSN, r.leaderID
}

// --- Write path (paper §5, Figure 4) ---------------------------------------

// submitWrite runs the leader's side of the per-write replication protocol
// (the DisableProposalBatching ablation) for one client write and blocks
// until the write commits (or fails). The flow is Figure 4: force a log
// record for W; in parallel append W to the commit queue and send propose
// messages; after the local force and at least one ack, apply W to the
// memtable and return to the client. The batched pipeline (the default)
// uses submitWriteAsync instead.
func (r *replica) submitWrite(op WriteOp) writeOutcome {
	r.mu.Lock()
	if !r.inBoundsLocked(op.Row) {
		r.mu.Unlock()
		return r.wrongLayoutOutcome()
	}
	if r.role != RoleLeader || !r.open {
		leader := r.leaderID
		r.mu.Unlock()
		if leader != "" && leader != r.n.cfg.ID {
			return writeOutcome{status: StatusNotLeader, detail: leader}
		}
		return writeOutcome{status: StatusUnavailable, detail: "no leader for range"}
	}

	// Conditional checks run before sequencing (§5.1), against the
	// effective state: the newest pending write for the column if one is
	// queued (writes execute in LSN order), else the committed cell.
	if out, dep := r.checkCondsLocked(op); out != nil {
		r.mu.Unlock()
		if dep == nil {
			return *out
		}
		// The rejection hinges on an uncommitted write: hold the reply
		// until that write resolves so the mismatch never precedes the
		// state that justifies it.
		ch := make(chan writeOutcome, 1)
		deferMismatch(dep, *out, func(o writeOutcome) { ch <- o })
		select {
		case o := <-ch:
			return o
		case <-time.After(r.n.cfg.WriteTimeout):
			return writeOutcome{status: StatusUnavailable, detail: "conditional check timed out awaiting a pending write"}
		}
	}

	lsn := wal.MakeLSN(r.epoch, r.nextSeq)
	r.nextSeq++
	versions := make([]uint64, len(op.Cols))
	for i := range op.Cols {
		op.Cols[i].Version = uint64(lsn)
		versions[i] = uint64(lsn)
	}
	p := &pendingWrite{lsn: lsn, op: op, enqueuedAt: time.Now(), done: make(chan writeOutcome, 1)}
	r.queue.add(p)
	r.m.keys.Note(op.Row)
	rec := wal.Record{Cohort: r.rangeID, Type: wal.RecWrite, LSN: lsn,
		Payload: EncodeWriteOp(nil, op)}
	// Appending under the lock keeps the cohort's records in LSN order in
	// the shared log; the force (the slow part) happens outside.
	end, err := r.n.log.Append(rec)
	if err != nil {
		r.queue.remove(lsn)
		r.mu.Unlock()
		return writeOutcome{status: StatusUnavailable, detail: err.Error()}
	}
	r.lastLSN = lsn
	committedThrough := wal.LSN(0)
	if r.n.cfg.PiggybackCommits {
		committedThrough = r.lastCommitted
	}
	// Propose to the followers in parallel with the local log force
	// (Fig 4); the SequentialPropose ablation forces first, then sends.
	// Sends happen under r.mu (they only enqueue on the in-order links)
	// so proposes leave in LSN order and followers never see spurious
	// sequence gaps.
	payload := encodePropose(proposePayload{LSN: lsn, CommittedThrough: committedThrough, Op: op})
	r.queue.touchPropose(lsn)
	peers := append([]string(nil), r.peers...)
	propose := func() {
		for _, peer := range peers {
			r.n.send(peer, transport.Message{Kind: MsgPropose, Cohort: r.rangeID, Payload: payload})
		}
	}
	if !r.n.cfg.SequentialPropose {
		propose()
	}
	r.mu.Unlock()

	if err := r.n.log.ForceTo(end); err != nil {
		// The write is already sequenced, queued, and (unless the
		// SequentialPropose ablation is on) proposed: followers may log
		// and ack it, and a takeover can re-commit it. Ambiguous, not
		// definite-no-effect.
		return writeOutcome{status: StatusAmbiguous, detail: err.Error()}
	}
	if r.n.cfg.SequentialPropose {
		propose()
	}
	r.queue.markForced(lsn)
	r.tryCommit()

	select {
	case out := <-p.done:
		out.versions = versions
		return out
	case <-time.After(r.n.cfg.WriteTimeout):
		return writeOutcome{status: StatusAmbiguous, detail: "write timed out awaiting quorum"}
	}
}

// submitWriteAsync runs the leader's side of the batched replication
// pipeline for one client write without blocking the caller: the write is
// sequenced, logged, and handed to the cohort's proposal drainer, and
// respond is invoked with the outcome when the write commits (or fails).
// Not holding a goroutine per in-flight write is what lets a single client
// pipeline many writes through one leader link. The WriteTimeout bound is
// enforced by the commit timer's sweep of staleResponders.
//
//spinnaker:hotpath
func (r *replica) submitWriteAsync(op WriteOp, respond func(writeOutcome)) {
	r.mu.Lock()
	if !r.inBoundsLocked(op.Row) {
		r.mu.Unlock()
		respond(r.wrongLayoutOutcome())
		return
	}
	if r.role != RoleLeader || !r.open {
		leader := r.leaderID
		r.mu.Unlock()
		if leader != "" && leader != r.n.cfg.ID {
			respond(writeOutcome{status: StatusNotLeader, detail: leader})
			return
		}
		respond(writeOutcome{status: StatusUnavailable, detail: "no leader for range"})
		return
	}
	// Conditional checks run before sequencing (§5.1), against the
	// effective state, exactly as in submitWrite.
	if out, dep := r.checkCondsLocked(op); out != nil {
		r.mu.Unlock()
		if dep == nil {
			respond(*out)
			return
		}
		// Hold the reply until the observed uncommitted write resolves;
		// the WriteTimeout bound comes from the client side here (the
		// dependency itself is swept by the leader's timeout timer).
		deferMismatch(dep, *out, respond)
		return
	}

	lsn := wal.MakeLSN(r.epoch, r.nextSeq)
	r.nextSeq++
	versions := make([]uint64, len(op.Cols))
	for i := range op.Cols {
		op.Cols[i].Version = uint64(lsn)
		versions[i] = uint64(lsn)
	}
	//lint:ignore spinnaker/hotpath the respond closure is the async pipeline's continuation — one per in-flight write, stamping assigned versions onto the outcome; it dies when the write resolves
	stamped := func(out writeOutcome) {
		out.versions = versions
		respond(out)
	}
	p := &pendingWrite{lsn: lsn, op: op, enqueuedAt: time.Now(), respond: stamped}
	r.queue.add(p)
	r.m.keys.Note(op.Row)
	// One encode per sequenced write: the same bytes are the WAL record
	// payload here and the batch-payload body in encodeProposeBatch (via
	// proposeRec.Raw), instead of encoding the op twice.
	enc := EncodeWriteOp(nil, op)
	rec := wal.Record{Cohort: r.rangeID, Type: wal.RecWrite, LSN: lsn,
		Payload: enc}
	end, err := r.n.log.Append(rec)
	if err != nil {
		r.queue.remove(lsn)
		r.mu.Unlock()
		respond(writeOutcome{status: StatusUnavailable, detail: err.Error()})
		return
	}
	r.lastLSN = lsn
	r.queue.touchPropose(lsn)
	r.enqueueProposalLocked(proposeRec{LSN: lsn, Op: op, Raw: enc})
	if end > r.batchEnd {
		r.batchEnd = end
	}
	claimed := r.claimDrainLocked()
	r.mu.Unlock()
	if claimed {
		// The drainer loops for as long as writes keep arriving, so it
		// must not run on this (link) goroutine.
		go r.drainProposals()
	}
}

// wrongLayoutOutcome formats the out-of-bounds rejection. It is a separate,
// un-annotated helper so the formatting stays off the //spinnaker:hotpath
// submit path: it only runs when a client's routing table raced a layout
// change, which is rare and already a retry.
func (r *replica) wrongLayoutOutcome() writeOutcome {
	return writeOutcome{status: StatusWrongLayout,
		detail: fmt.Sprintf("row outside range %d under layout v%d", r.rangeID, r.n.layoutVersion())}
}

// effectiveVersionLocked returns the version a read-your-own-sequenced-
// writes observer would see for key and, when that version comes from a
// sequenced-but-uncommitted write, the pending write carrying it; callers
// hold r.mu.
//
//spinnaker:locked(mu)
func (r *replica) effectiveVersionLocked(key kv.Key) (uint64, *pendingWrite) {
	if p, ok := r.queue.latestPending(key); ok {
		for _, c := range p.op.Cols {
			if c.Col == key.Col {
				return c.Version, p
			}
		}
	}
	return r.committedVersionLocked(key), nil
}

// committedVersionLocked returns the committed cell version for key (what
// a strong read would serve); callers hold r.mu.
//
//spinnaker:locked(mu)
func (r *replica) committedVersionLocked(key kv.Key) uint64 {
	if cell, ok := r.engine.Get(key); ok {
		return cell.Version
	}
	return 0
}

// checkCondsLocked evaluates a write's conditional guards against the
// effective state (the newest pending write per column if one is queued —
// writes execute in LSN order, §5.1 — else the committed cell). It returns
// (nil, nil) when every guard passes. On a failure justified by committed
// state alone it returns the mismatch outcome to deliver immediately. On a
// failure that hinges on a sequenced-but-uncommitted write it returns that
// write too: the rejection leaks the pending write's existence, so the
// reply must wait until the pending write commits (then the mismatch is
// consistent with visible state) or dies (then the state that justified
// the rejection never existed, and the client must retry). Callers hold
// r.mu.
//
//spinnaker:locked(mu)
func (r *replica) checkCondsLocked(op WriteOp) (*writeOutcome, *pendingWrite) {
	var dep *pendingWrite
	var deferred *writeOutcome
	for _, c := range op.Cols {
		if !c.Cond {
			continue
		}
		key := kv.Key{Row: op.Row, Col: c.Col}
		cur, pending := r.effectiveVersionLocked(key)
		if cur == c.CondVersion {
			continue
		}
		out := writeOutcome{status: StatusVersionMismatch,
			detail: fmt.Sprintf("column %s at version %d, want %d", c.Col, cur, c.CondVersion)}
		if pending == nil || r.committedVersionLocked(key) != c.CondVersion {
			return &out, nil
		}
		if dep == nil {
			dep, deferred = pending, &out
		}
	}
	return deferred, dep
}

// deferMismatch delivers a pending-dependent mismatch once dep resolves.
func deferMismatch(dep *pendingWrite, out writeOutcome, respond func(writeOutcome)) {
	dep.observe(func(committed bool) {
		if committed {
			respond(out)
			return
		}
		respond(writeOutcome{status: StatusUnavailable,
			detail: "conditional check raced an uncommitted write; retry"})
	})
}

// enqueueProposalLocked appends rec to the outgoing batch buffer; callers
// hold r.mu. LSN allocation and the enqueue happen in the same critical
// section (submitWriteAsync), so the buffer is ascending by construction
// and batches leave in LSN order.
//
//spinnaker:locked(mu)
func (r *replica) enqueueProposalLocked(rec proposeRec) {
	r.batchBuf = append(r.batchBuf, rec)
}

// claimDrainLocked makes the caller the cohort's proposal drainer if no
// drain is in progress; callers hold r.mu and, on true, must call
// drainProposals after releasing it.
//
//spinnaker:locked(mu)
func (r *replica) claimDrainLocked() bool {
	if r.batchSending || len(r.batchBuf) == 0 {
		return false
	}
	r.batchSending = true
	return true
}

// drainProposals streams the cohort's proposal buffer to the followers:
// it repeatedly swaps out everything sequenced since the last swap, sends
// it as one MsgProposeBatch per peer, forces the leader's log through the
// batch in parallel (Fig 4's overlap, per batch instead of per write), and
// commits what the acks allow. Writes sequenced while a batch is being
// sent and forced accumulate behind it and leave in the next batch, so
// batch size adapts to offered load — group commit's trick applied to the
// replication stream. Single-drainer + in-LSN-order buffer keeps batches
// leaving in LSN order on the in-order links; the drainer exits once the
// buffer runs dry.
func (r *replica) drainProposals() {
	r.mu.Lock()
	for len(r.batchBuf) > 0 {
		recs := r.batchBuf
		r.batchBuf = nil
		end := r.batchEnd
		r.batchEnd = 0
		committedThrough := wal.LSN(0)
		if r.n.cfg.PiggybackCommits {
			committedThrough = r.lastCommitted
		}
		peers := append([]string(nil), r.peers...)
		r.mu.Unlock()
		payload := encodeProposeBatch(proposeBatchPayload{
			CommittedThrough: committedThrough, Recs: recs,
		})
		send := func() {
			for _, peer := range peers {
				r.n.send(peer, transport.Message{
					Kind: MsgProposeBatch, Cohort: r.rangeID, Payload: payload,
				})
			}
		}
		// The SequentialPropose ablation forces before sending.
		if !r.n.cfg.SequentialPropose {
			send()
		}
		forced := true
		if end > 0 {
			forced = r.n.log.ForceTo(end) == nil
		}
		if r.n.cfg.SequentialPropose {
			send()
		}
		if forced {
			for _, rec := range recs {
				r.queue.markForced(rec.LSN)
			}
			r.tryCommit()
		}
		// On a force error the writes stay pending; the WriteTimeout
		// sweep fails their clients.
		r.mu.Lock()
	}
	r.batchSending = false
	r.mu.Unlock()
}

// tryCommit commits the maximal committable prefix of the queue: each write
// is applied to the memtable and its waiting client released (Fig 4:
// "after log force and at least 1 ack: apply W to memtable; return to
// client"). Safe to call from any goroutine.
//
// The pop and the memtable applies happen under r.mu so that version
// checks (which consult the pending queue and then the engine) never
// observe a write in neither place.
func (r *replica) tryCommit() {
	r.mu.Lock()
	committed := r.queue.popCommittable(r.quorum, r.peers)
	if len(committed) == 0 {
		r.mu.Unlock()
		return
	}
	now := time.Now()
	for _, p := range committed {
		for _, e := range p.op.Entries(p.lsn) {
			r.engine.Apply(e)
		}
		if p.lsn > r.lastCommitted {
			r.lastCommitted = p.lsn
		}
	}
	r.commitAdvanced = now
	r.mu.Unlock()
	for _, p := range committed {
		r.m.writes.Inc()
		if !p.enqueuedAt.IsZero() {
			r.m.writeLat.Observe(now.Sub(p.enqueuedAt).Nanoseconds())
		}
		p.finish(writeOutcome{status: StatusOK})
	}
}

// --- Follower message handlers ----------------------------------------------

// onPropose handles a propose message (Fig 4, follower column): force a log
// record for W, append W to the commit queue, send an ack. The force and
// ack run off the link goroutine so concurrent proposes across cohorts
// share group-commit forces.
func (r *replica) onPropose(m transport.Message) {
	p, err := decodePropose(m.Payload)
	if err != nil {
		return
	}
	r.mu.Lock()
	if r.role == RoleRecovering {
		r.mu.Unlock()
		return // catch-up will deliver this write's effect
	}
	if m.From != r.leaderID && r.leaderID != "" {
		// A propose from a node we do not believe leads the cohort.
		// Accept only if it carries a strictly higher epoch (we are
		// behind on leadership news; the election loop will refresh
		// leaderID). Equal epochs must be rejected too: after a
		// takeover, a deposed-but-live leader still sends at the old
		// epoch, and a follower that already follows the new leader
		// but has not bumped its epoch would otherwise lend the old
		// leader acks — letting it commit writes the new leader's
		// history will truncate.
		if p.LSN.Epoch() <= r.epoch {
			r.mu.Unlock()
			return
		}
	}
	if p.LSN.Epoch() > r.epoch {
		if r.role == RoleLeader {
			// A higher-epoch proposal stream proves we were deposed;
			// step down rather than silently adopting the epoch (our
			// next write would otherwise collide with the real
			// leader's LSN space).
			r.demoteLocked(m.From)
		}
		r.epoch = p.LSN.Epoch()
	}

	switch {
	case p.LSN <= r.lastCommitted:
		// Already committed here (a re-proposal after leader change,
		// Fig 6 line 5: "these can be detected and ignored").
		r.mu.Unlock()
		r.n.send(m.From, transport.Message{Kind: MsgAck, Cohort: r.rangeID,
			Payload: encodeAck(p.LSN, r.engine.Checkpoint())})
	case r.queue.has(p.LSN):
		// Already logged and pending; ensure durability, then ack.
		r.mu.Unlock()
		go func() {
			if err := r.n.log.Force(); err != nil {
				return
			}
			r.n.send(m.From, transport.Message{Kind: MsgAck, Cohort: r.rangeID,
				Payload: encodeAck(p.LSN, r.engine.Checkpoint())})
		}()
	default:
		if p.LSN.Seq() > r.lastLSN.Seq()+1 {
			// A sequence gap: appending past the hole would advance
			// lastLSN over writes we do not hold, and our election
			// candidacy (max n.lst, Fig 7 line 6) would then overstate
			// our log — a gapped follower could win over the follower
			// actually holding the committed writes in the hole, and
			// they would be lost. Drop the write instead (exactly as
			// the batched path does): catch-up recovers the committed
			// prefix, and the leader's retransmission sweep re-proposes
			// the pending tail in LSN order, refilling the hole.
			r.gapped = true
			r.mu.Unlock()
			r.n.nudgeCatchup(r)
			return
		}
		// A proposal for a row our shrunk bounds no longer cover is
		// accepted like any other: it was sequenced before the leader
		// adopted the split (the leader's submit path refuses the row
		// afterwards), and the split pull that hands the moved sub-range
		// to the new cohort is gated on the leader draining exactly these
		// writes — so they always commit (and are captured by the pull)
		// or resolve before the new range can serve. Refusing the ack
		// here instead would wedge the cohort: the commit watermark is
		// cumulative, so one in-flight write to the moved span that can
		// no longer gather a quorum stalls every write behind it, and
		// with it the drain the split pull is waiting on.
		rec := wal.Record{Cohort: r.rangeID, Type: wal.RecWrite, LSN: p.LSN,
			Payload: EncodeWriteOp(nil, p.Op)}
		end, err := r.n.log.Append(rec)
		if err != nil {
			r.mu.Unlock()
			return
		}
		if p.LSN > r.lastLSN {
			r.lastLSN = p.LSN
		}
		r.queue.add(&pendingWrite{lsn: p.LSN, op: p.Op})
		r.mu.Unlock()

		go func() {
			if err := r.n.log.ForceTo(end); err != nil {
				return
			}
			r.queue.markForced(p.LSN)
			r.n.send(m.From, transport.Message{Kind: MsgAck, Cohort: r.rangeID,
				Payload: encodeAck(p.LSN, r.engine.Checkpoint())})
			if p.CommittedThrough > 0 {
				r.applyCommitted(p.CommittedThrough, false)
			}
		}()
		return
	}
	if p.CommittedThrough > 0 {
		r.applyCommitted(p.CommittedThrough, false)
	}
}

// onProposeBatch handles a batched propose (the follower column of Fig 4
// for a whole run of writes): append every new record to the shared log
// under one lock acquisition, issue one force, and reply with one
// cumulative ack covering everything this replica durably holds. The force
// and ack run off the link goroutine so concurrent batches across cohorts
// share group-commit forces.
//
// A cumulative ack of X asserts that this replica's durable log holds every
// (non-truncated) write of the cohort at or below X, so the log must never
// hold a write beyond a hole. Records that would create a sequence gap
// (messages lost across a broken connection) are therefore not appended:
// the batch's tail is dropped, catch-up is nudged for the committed prefix,
// and the leader's retransmission re-proposes the rest in order.
//
//spinnaker:hotpath
func (r *replica) onProposeBatch(m transport.Message) {
	b, err := decodeProposeBatch(m.Payload)
	if err != nil || len(b.Recs) == 0 {
		return
	}
	r.mu.Lock()
	if r.role == RoleRecovering {
		r.mu.Unlock()
		return // catch-up will deliver these writes' effects
	}
	if m.From != r.leaderID && r.leaderID != "" {
		// A batch from a node we do not believe leads the cohort.
		// Accept only if it carries a strictly higher epoch (we are
		// behind on leadership news; the election loop will refresh
		// leaderID). Equal epochs must be rejected too — see onPropose:
		// a deposed-but-live leader still proposing at the old epoch
		// must not earn acks from followers that already follow its
		// successor.
		if b.Recs[0].LSN.Epoch() <= r.epoch {
			r.mu.Unlock()
			return
		}
	}
	var (
		end int64
		gap bool
	)
	// Pre-sized to the batch: in steady state every record is new, so the
	// appends below never grow (re-proposals and gaps only shrink the count).
	toLog := make([]wal.Record, 0, len(b.Recs))
	toAdd := make([]*pendingWrite, 0, len(b.Recs))
	last := r.lastLSN
	for i := range b.Recs {
		rec := &b.Recs[i]
		if e := rec.LSN.Epoch(); e > r.epoch {
			if r.role == RoleLeader {
				// A higher-epoch stream proves we were deposed; step
				// down rather than silently adopting the epoch.
				r.demoteLocked(m.From)
			}
			r.epoch = e
		}
		if rec.LSN <= r.lastCommitted || r.queue.has(rec.LSN) {
			// Already committed or already logged and pending (a
			// re-proposal, Fig 6 line 5: "these can be detected and
			// ignored"); the force below still covers it before the
			// cumulative ack claims it.
			continue
		}
		// Unlike the per-write path, a zero lastLSN gets no exemption: a
		// cohort's first write is seq 1 (which passes), and an empty-log
		// follower that accepted a mid-stream batch would cumulatively
		// ack a prefix it never received.
		if rec.LSN.Seq() > last.Seq()+1 {
			gap = true
			break
		}
		// Rows outside our (possibly already-shrunk) bounds are appended
		// like any other: such a write was sequenced before the leader
		// adopted the split, and the split pull is gated on the origin
		// leader draining it, so it cannot race the new range's leader —
		// while refusing the ack would stall the cumulative commit
		// watermark behind it and wedge the cohort (see onPropose).
		//
		// Zero-copy hand-off: Raw slices the message payload (see
		// decodeProposeBatch), so the WAL gets the already-encoded op
		// without a re-encode and the memtable shares the payload's
		// value bytes.
		payload := rec.Raw
		if payload == nil {
			payload = EncodeWriteOp(nil, rec.Op)
		}
		toLog = append(toLog, wal.Record{Cohort: r.rangeID, Type: wal.RecWrite,
			LSN: rec.LSN, Payload: payload})
		toAdd = append(toAdd, &pendingWrite{lsn: rec.LSN, op: rec.Op})
		if rec.LSN > last {
			last = rec.LSN
		}
	}
	if len(toLog) > 0 {
		// One group frame, one checksum, one force target for the whole
		// batch (vs one frame and bookkeeping pass per record). The append
		// is all-or-nothing; on error nothing entered the log, so neither
		// lastLSN nor the queue advances and the cumulative ack stays
		// honest.
		if e, err := r.n.log.AppendBatch(toLog); err == nil {
			end = e
			r.lastLSN = last
			for _, p := range toAdd {
				r.queue.add(p)
			}
		} else {
			toAdd = nil
		}
	}
	if gap {
		r.gapped = true
	}
	ackThrough := r.lastLSN
	r.mu.Unlock()

	go func() {
		if end > 0 {
			if err := r.n.log.ForceTo(end); err != nil {
				return
			}
		} else if err := r.n.log.Force(); err != nil {
			return
		}
		for _, p := range toAdd {
			r.queue.markForced(p.lsn)
		}
		if !ackThrough.IsZero() {
			if ParanoidAckChecks {
				r.verifyAckClaim(ackThrough)
			}
			r.n.send(m.From, transport.Message{Kind: MsgAckBatch, Cohort: r.rangeID,
				Payload: encodeAck(ackThrough, r.engine.Checkpoint())})
		}
		if b.CommittedThrough > 0 {
			r.applyCommitted(b.CommittedThrough, false)
		}
	}()
	if gap {
		// We missed proposes (e.g. across a healed partition); ask the
		// leader for the committed writes in between.
		r.n.nudgeCatchup(r)
	}
}

// onAck counts a follower's per-write ack (leader side) and commits what it
// can.
//
//spinnaker:hotpath
func (r *replica) onAck(m transport.Message) {
	lsn, floor, err := decodeAck(m.Payload)
	if err != nil {
		return
	}
	r.noteFloor(m.From, floor)
	r.queue.markAck(m.From, lsn)
	r.tryCommit()
}

// onAckBatch advances a follower's cumulative acked-through watermark
// (leader side) and commits the maximal quorum-acked prefix in one pass.
//
//spinnaker:hotpath
func (r *replica) onAckBatch(m transport.Message) {
	lsn, floor, err := decodeAck(m.Payload)
	if err != nil {
		return
	}
	r.noteFloor(m.From, floor)
	r.queue.markAckedThrough(m.From, lsn)
	r.tryCommit()
}

// noteFloor records a peer's reported durable commit floor (its storage
// checkpoint). Monotone max: floors never regress while the peer stays in
// the cohort, so a reordered stale ack can only under-report — which is
// safe (a lower floor only delays tombstone GC).
func (r *replica) noteFloor(from string, floor wal.LSN) {
	if floor.IsZero() {
		return
	}
	r.mu.Lock()
	if floor > r.peerFloors[from] {
		r.peerFloors[from] = floor
	}
	r.mu.Unlock()
}

// gcWatermarkLocked computes the cohort tombstone-GC watermark: the
// minimum durable commit floor across current cohort members — our own
// storage checkpoint and every peer's reported floor; a peer that has not
// reported yet pins the watermark at zero (no tombstone GC). Every
// member's future catch-up advertises f.cmt at or above its floor (local
// recovery raises f.cmt to the checkpoint), so EntriesSince(f.cmt) remains
// complete — deletes included — for every possible requester as long as
// compaction drops nothing above this watermark. Callers hold r.mu.
//
//spinnaker:locked(mu)
func (r *replica) gcWatermarkLocked() wal.LSN {
	gc := r.engine.Checkpoint()
	for _, p := range r.peers {
		f, ok := r.peerFloors[p]
		if !ok {
			return 0
		}
		if f < gc {
			gc = f
		}
	}
	return gc
}

// tombstoneGC returns the watermark this replica's compactions must
// respect: the leader computes it from the reported floors, followers use
// the value learned from the leader's commit messages.
func (r *replica) tombstoneGC() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.role == RoleLeader {
		return r.gcWatermarkLocked()
	}
	return r.gcFloor
}

// onCommitMsg handles the leader's periodic asynchronous commit message
// (§5): apply all pending writes up to the LSN to the memtable and record
// the last committed LSN with a non-forced log write. The piggybacked
// tombstone-GC watermark gates this replica's own compactions.
func (r *replica) onCommitMsg(m transport.Message) {
	lsn, gc, err := decodeCommitMsg(m.Payload)
	if err != nil {
		return
	}
	if !gc.IsZero() {
		r.mu.Lock()
		if gc > r.gcFloor {
			r.gcFloor = gc
		}
		r.mu.Unlock()
	}
	r.applyCommitted(lsn, false)
}

// applyCommitted advances the follower's committed state through lsn.
//
// A commit LSN from the steady-state protocol (viaCatchup=false) may only
// advance past writes this replica actually holds: a recovering replica, or
// one that detected a sequence gap, must not mark state committed that only
// the catch-up phase can deliver — otherwise its later catch-up request
// would advertise an f.cmt above its real state and the leader would skip
// the missing writes. Catch-up responses (viaCatchup=true) carry the state
// itself, so they advance unconditionally.
func (r *replica) applyCommitted(lsn wal.LSN, viaCatchup bool) {
	r.mu.Lock()
	if lsn <= r.lastCommitted {
		r.mu.Unlock()
		return
	}
	behind := false
	if !viaCatchup {
		if r.role == RoleRecovering || r.gapped {
			r.mu.Unlock()
			r.n.nudgeCatchup(r)
			return
		}
		if lsn > r.lastLSN {
			behind = true
			lsn = r.lastLSN // commit only what we provably hold
		}
		if lsn <= r.lastCommitted {
			r.mu.Unlock()
			r.n.nudgeCatchup(r)
			return
		}
	}
	popped := r.queue.popThrough(lsn)
	for _, p := range popped {
		for _, e := range p.op.Entries(p.lsn) {
			r.engine.Apply(e)
		}
	}
	r.lastCommitted = lsn
	r.commitAdvanced = time.Now()
	if viaCatchup {
		r.gapped = false
	}
	r.mu.Unlock()

	// Non-forced log write of the last committed LSN (§5).
	_, _ = r.n.log.Append(wal.Record{
		Cohort: r.rangeID, Type: wal.RecLastCommitted, LSN: lsn,
	})
	for _, p := range popped {
		p.finish(writeOutcome{status: StatusOK})
	}
	if behind {
		// The leader has committed writes we never saw.
		r.n.nudgeCatchup(r)
	}
}

// sendCommitMessages is invoked by the node's commit timer on leader
// replicas: followers are told to apply everything up to the last committed
// LSN, and the leader records the same LSN locally, non-forced (§5). The
// same tick retransmits proposes that have gone unacknowledged for more
// than two commit periods — TCP's retransmission made explicit, needed for
// liveness when a propose is lost across a broken connection.
func (r *replica) sendCommitMessages() {
	r.mu.Lock()
	if r.role != RoleLeader {
		r.mu.Unlock()
		return
	}
	lsn := r.lastCommitted
	gc := r.gcWatermarkLocked()
	peers := append([]string(nil), r.peers...)
	r.mu.Unlock()
	if !lsn.IsZero() {
		payload := encodeCommitMsg(lsn, gc)
		for _, peer := range peers {
			r.n.send(peer, transport.Message{Kind: MsgCommit, Cohort: r.rangeID, Payload: payload})
		}
		_, _ = r.n.log.Append(wal.Record{Cohort: r.rangeID, Type: wal.RecLastCommitted, LSN: lsn})
	}

	if stale := r.queue.stalePending(2 * r.n.cfg.CommitPeriod); len(stale) > 0 {
		r.reproposeRecs(stale)
	}
	// Fail asynchronously handled writes that have waited longer than the
	// write timeout (the per-write path enforces this bound by blocking).
	for _, p := range r.queue.staleResponders(r.n.cfg.WriteTimeout) {
		p.finish(writeOutcome{status: StatusAmbiguous, detail: "write timed out awaiting quorum"})
	}
	r.tryCommit()
}

// reproposeRecs retransmits pending writes to every peer: one batch in the
// batched pipeline, one MsgPropose per record in the ablation. Records are
// old by construction (sequenced at least one drain of the batcher ago), so
// followers either hold them already (deduped by LSN) or hit them as the
// contiguous continuation of their log.
func (r *replica) reproposeRecs(recs []proposeRec) {
	peers, _ := r.membership()
	if r.batched() {
		payload := encodeProposeBatch(proposeBatchPayload{Recs: recs})
		for _, peer := range peers {
			r.n.send(peer, transport.Message{Kind: MsgProposeBatch, Cohort: r.rangeID, Payload: payload})
		}
		return
	}
	for _, rec := range recs {
		payload := encodePropose(proposePayload{LSN: rec.LSN, Op: rec.Op})
		for _, peer := range peers {
			r.n.send(peer, transport.Message{Kind: MsgPropose, Cohort: r.rangeID, Payload: payload})
		}
	}
}

// --- Read path (§3, §5) -----------------------------------------------------

// get serves a read. Strongly consistent reads are only legal at the
// leader (the client routes them there; we enforce it), and only once the
// takeover is complete (open): a mid-takeover leader's engine may not yet
// reflect writes the previous leader committed and acknowledged, so
// serving before Fig 6 line 10 would read committed state stale. Timeline
// reads are served by any replica and may be stale by up to one commit
// period.
func (r *replica) get(req getReq) getResp {
	start := time.Now()
	resp := r.serveGet(req)
	if resp.Status == StatusOK || resp.Status == StatusNotFound {
		if req.Consistent {
			r.m.strongReads.Inc()
		} else {
			r.m.timelineReads.Inc()
		}
		r.m.readLat.Observe(time.Since(start).Nanoseconds())
	}
	return resp
}

func (r *replica) serveGet(req getReq) getResp {
	r.mu.Lock()
	inBounds := r.inBoundsLocked(req.Row)
	isLeader := r.role == RoleLeader
	recovering := r.role == RoleRecovering || r.mustPull
	open := r.open
	leader := r.leaderID
	r.mu.Unlock()
	if !inBounds {
		// The row moved to another range (split/rebalance); even a
		// timeline read must not serve it from our engine, where it may
		// linger arbitrarily stale.
		return getResp{Status: StatusWrongLayout}
	}
	if req.Consistent {
		if !isLeader {
			return getResp{Status: StatusNotLeader, Value: []byte(leader)}
		}
		if !open {
			return getResp{Status: StatusUnavailable}
		}
	} else if recovering {
		// A joining member that has not finished catch-up holds an
		// empty (or partial) engine: serving a timeline read here would
		// answer "not found" for long-committed rows — worse than
		// stale. Let the client retry another cohort member.
		return getResp{Status: StatusUnavailable}
	}
	r.n.readGate()
	cell, ok := r.engine.Get(kv.Key{Row: req.Row, Col: req.Col})
	if !ok || cell.Deleted {
		return getResp{Status: StatusNotFound, Version: cell.Version}
	}
	return getResp{Status: StatusOK, Value: cell.Value, Version: cell.Version}
}

// getRow serves a whole-row read with the same consistency rules.
func (r *replica) getRow(req getReq) rowResp {
	start := time.Now()
	resp := r.serveGetRow(req)
	if resp.Status == StatusOK || resp.Status == StatusNotFound {
		if req.Consistent {
			r.m.strongReads.Inc()
		} else {
			r.m.timelineReads.Inc()
		}
		r.m.readLat.Observe(time.Since(start).Nanoseconds())
	}
	return resp
}

func (r *replica) serveGetRow(req getReq) rowResp {
	r.mu.Lock()
	inBounds := r.inBoundsLocked(req.Row)
	isLeader := r.role == RoleLeader
	recovering := r.role == RoleRecovering || r.mustPull
	open := r.open
	r.mu.Unlock()
	if !inBounds {
		return rowResp{Status: StatusWrongLayout}
	}
	if req.Consistent {
		if !isLeader {
			return rowResp{Status: StatusNotLeader}
		}
		if !open {
			return rowResp{Status: StatusUnavailable}
		}
	} else if recovering {
		// See get: a mid-catch-up engine must not answer timeline reads.
		return rowResp{Status: StatusUnavailable}
	}
	entries := r.engine.GetRow(req.Row)
	if len(entries) == 0 {
		return rowResp{Status: StatusNotFound}
	}
	return rowResp{Status: StatusOK, Entries: entries}
}

// --- State requests (takeover, Fig 6 line 4) -------------------------------

func (r *replica) onStateReq(m transport.Message) {
	r.mu.Lock()
	cmt := r.lastCommitted
	r.mu.Unlock()
	r.n.reply(m, transport.Message{Cohort: r.rangeID, Payload: encodeLSN(cmt)})
}

// Stats reporting for tests and tooling.
type ReplicaStats struct {
	Range         uint32
	Role          Role
	Epoch         uint32
	LastLSN       wal.LSN
	LastCommitted wal.LSN
	Pending       int
	Leader        string
	Open          bool
	Quorum        int
	Peers         []string
	Low, High     string

	// Bulk catch-up counters: snapshot manifests served (leader side) and
	// snapshot-path catch-ups absorbed (follower side).
	SnapshotsServed  int64
	SnapshotCatchups int64
}

func (r *replica) stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplicaStats{
		Range:         r.rangeID,
		Role:          r.role,
		Epoch:         r.epoch,
		LastLSN:       r.lastLSN,
		LastCommitted: r.lastCommitted,
		Pending:       r.queue.len(),
		Leader:        r.leaderID,
		Open:          r.open,
		Quorum:        r.quorum,
		Peers:         append([]string(nil), r.peers...),
		Low:           r.low,
		High:          r.high,

		SnapshotsServed:  r.snapshotsServed,
		SnapshotCatchups: r.snapshotCatchups,
	}
}

// ParanoidAckChecks enables expensive verification of the cumulative-ack
// invariant before every batch ack (debug aid; the core test suite wires
// it to SPINNAKER_PARANOIA=1).
var ParanoidAckChecks bool

// verifyAckClaim checks the cumulative-ack invariant: every non-skipped
// LSN of this cohort at or below through is in our durable log (same-epoch
// sequence contiguity; cross-epoch gaps are legal when a new leader's
// sequence continues above truncated branches).
func (r *replica) verifyAckClaim(through wal.LSN) {
	held := make(map[wal.LSN]bool)
	_ = r.n.log.ScanCohort(r.rangeID, func(rec wal.Record) error {
		if rec.Type == wal.RecWrite {
			held[rec.LSN] = true
		}
		return nil
	})
	r.mu.Lock()
	skipped := r.skipped
	cmt := r.lastCommitted
	r.mu.Unlock()
	// Reconstruct the set of LSNs that must exist: walk epochs seen in the
	// log up to through; within the max epoch, every seq ≤ through.Seq()
	// beyond the previous epoch max must be held or skipped or ≤ cmt
	// (captured by SSTables after truncation). This is approximate but
	// catches the dangerous case: a hole above cmt.
	for seq := cmt.Seq() + 1; seq <= through.Seq(); seq++ {
		l := wal.MakeLSN(through.Epoch(), seq)
		if l > through {
			break
		}
		if !held[l] && !skipped.Contains(l) {
			// Check lower epochs for the same seq (epoch change mid-range).
			found := false
			for e := through.Epoch(); e > 0; e-- {
				if held[wal.MakeLSN(e-1, seq)] || skipped.Contains(wal.MakeLSN(e-1, seq)) {
					found = true
					break
				}
			}
			if !found {
				fmt.Printf("PARANOIA[%s]: ack %s claims seq %d but log lacks it (cmt=%s)\n",
					r.loggerPrefix(), through, seq, cmt)
			}
		}
	}
}
