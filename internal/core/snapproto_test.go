package core

import (
	"encoding/binary"
	"reflect"
	"testing"

	"spinnaker/internal/merkle"
	"spinnaker/internal/wal"
)

func TestSnapManifestRoundTrip(t *testing.T) {
	man := snapManifest{
		Status:  StatusOK,
		Cmt:     wal.MakeLSN(3, 77),
		SnapCmt: wal.MakeLSN(3, 70),
		Present: []wal.LSN{wal.MakeLSN(3, 71), wal.MakeLSN(3, 75)},
		Tables: []snapTableMeta{
			{ID: 9, Size: 4096, CRC: 0xDEADBEEF, MinLSN: wal.MakeLSN(1, 1),
				MaxLSN: wal.MakeLSN(3, 70), MinRow: "aaa", MaxRow: "zz"},
			{ID: 12, Size: 128, CRC: 7},
		},
		Cuts:   []string{"ggg", "ppp"},
		Leaves: []merkle.Digest{{1}, {2}, {3}},
	}
	got, err := decodeSnapManifest(encodeSnapManifest(man))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, man) {
		t.Fatalf("round trip mangled manifest:\n got %+v\nwant %+v", got, man)
	}
}

// A forged element count in a snapshot manifest must be rejected before any
// allocation is sized by it (the decodeManifest hardening, applied to the
// bulk catch-up codecs).
func TestSnapManifestRejectsForgedCounts(t *testing.T) {
	base := encodeSnapManifest(snapManifest{Status: StatusOK})
	// Layout with everything empty: status 1 + cmt 8 + snapCmt 8 +
	// present count 4, then the three element counts.
	for _, tt := range []struct {
		name string
		off  int
	}{
		{"tables", 21},
		{"cuts", 25},
		{"leaves", 29},
	} {
		b := append([]byte(nil), base...)
		binary.LittleEndian.PutUint32(b[tt.off:], 1<<30)
		if _, err := decodeSnapManifest(b); err == nil {
			t.Errorf("%s count forged to 1<<30 decoded without error", tt.name)
		}
	}
}

func TestTableChunkCodecs(t *testing.T) {
	req := tableChunkReq{Table: 42, Offset: 512}
	gotReq, err := decodeTableChunkReq(encodeTableChunkReq(req))
	if err != nil || gotReq != req {
		t.Fatalf("chunk req round trip = %+v, %v", gotReq, err)
	}

	ch := tableChunk{Status: StatusOK, Table: 42, Offset: 512, Total: 4096,
		CRC: 99, Data: []byte("abc")}
	gotCh, err := decodeTableChunk(encodeTableChunk(ch))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCh, ch) {
		t.Fatalf("chunk round trip = %+v, want %+v", gotCh, ch)
	}

	// A forged data length must be rejected, not allocated or sliced.
	b := encodeTableChunk(ch)
	binary.LittleEndian.PutUint32(b[21:25], 1<<30)
	if _, err := decodeTableChunk(b); err == nil {
		t.Error("data length forged to 1<<30 decoded without error")
	}
}

func TestCatchupRespRejectsForgedCount(t *testing.T) {
	b := encodeCatchupResp(catchupResp{Status: StatusOK, Cmt: wal.MakeLSN(1, 5)})
	binary.LittleEndian.PutUint32(b[13:], 1<<30) // entry count: status 1 + cmt 8 + present count 4
	if _, err := decodeCatchupResp(b); err == nil {
		t.Error("catchup resp entry count forged to 1<<30 decoded without error")
	}
}

func TestRowRespRejectsForgedCount(t *testing.T) {
	b := encodeRowResp(rowResp{Status: StatusOK})
	binary.LittleEndian.PutUint32(b[1:], 1<<30)
	if _, err := decodeRowResp(b); err == nil {
		t.Error("row resp entry count forged to 1<<30 decoded without error")
	}
}

func TestProposeBatchRejectsForgedCount(t *testing.T) {
	b := encodeProposeBatch(proposeBatchPayload{CommittedThrough: wal.MakeLSN(1, 9)})
	binary.LittleEndian.PutUint32(b[8:], 1<<30)
	if _, err := decodeProposeBatch(b); err == nil {
		t.Error("propose batch record count forged to 1<<30 decoded without error")
	}
}

func TestCatchupReqNoSnapFlag(t *testing.T) {
	got, err := decodeCatchupReq(encodeCatchupReq(catchupReq{Cmt: wal.MakeLSN(1, 5), NoSnap: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !got.NoSnap || got.Cmt != wal.MakeLSN(1, 5) {
		t.Fatalf("NoSnap round trip = %+v", got)
	}
	// A payload encoded before the flags byte existed still decodes, with
	// NoSnap defaulting to off.
	legacy := encodeCatchupReq(catchupReq{Cmt: wal.MakeLSN(1, 3)})
	legacy = legacy[:len(legacy)-1]
	got, err = decodeCatchupReq(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.NoSnap || got.Cmt != wal.MakeLSN(1, 3) {
		t.Fatalf("legacy catchup req = %+v", got)
	}
}
