package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"spinnaker/internal/cluster"
	"spinnaker/internal/coord"
	"spinnaker/internal/kv"
	"spinnaker/internal/transport"
)

// Client implements the datastore API of §3: get / put / delete /
// conditionalPut / conditionalDelete plus the multi-column variants, each
// executed as a single-operation transaction. Writes and strongly
// consistent reads are routed to the affected key range's cohort leader
// (learned from the coordination service and cached); timeline reads go to
// a random cohort member in exchange for better performance.
type Client struct {
	ep       transport.Endpoint
	sess     *coord.Session
	rng      *rand.Rand
	asyncSem chan struct{}

	// strictWrites stops write retries at the first ambiguous attempt
	// (transport error or StatusAmbiguous) and surfaces ErrAmbiguous
	// instead. The default transparent retry maximizes availability but
	// can execute a write more than once — a retried conditional put
	// whose first attempt committed will honestly report a version
	// mismatch for an op that took effect. History-checking harnesses
	// need the strict mode to keep recorded outcomes sound.
	strictWrites bool

	mu      sync.Mutex
	layout  *cluster.Layout // refreshed from coord on StatusWrongLayout
	leaders map[uint32]string
}

// SetStrictWrites toggles strict write handling; see the field comment.
// Call before issuing traffic.
func (c *Client) SetStrictWrites(on bool) { c.strictWrites = on }

// NewClient builds a client over its own network endpoint and
// coordination-service session.
func NewClient(layout *cluster.Layout, ep transport.Endpoint, coordSvc *coord.Service, seed int64) *Client {
	return &Client{
		layout:   layout,
		ep:       ep,
		sess:     coordSvc.Connect(),
		rng:      rand.New(rand.NewSource(seed)),
		asyncSem: make(chan struct{}, maxAsyncInFlight),
		leaders:  make(map[uint32]string),
	}
}

// Close releases the client's coordination session.
func (c *Client) Close() {
	c.sess.Close()
	c.ep.Close()
}

// rangeOf routes a row under the client's current view of the layout.
func (c *Client) rangeOf(row string) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.layout.RangeOf(row)
}

// refreshLayout re-reads the published layout from the coordination
// service, adopting it if newer. Called when a node replies
// StatusWrongLayout (the range moved or split) or when leader resolution
// fails for a range that may no longer exist.
func (c *Client) refreshLayout() {
	l, err := FetchLayout(c.sess)
	if err != nil {
		return // nothing published (static deployments); keep what we have
	}
	c.mu.Lock()
	if l.Version() > c.layout.Version() {
		c.layout = l
		// Leadership of moved ranges changes with the layout; drop the
		// whole cache rather than track which moved.
		c.leaders = make(map[uint32]string)
	}
	c.mu.Unlock()
}

// leader resolves (with caching) the leader of a range.
func (c *Client) leader(rangeID uint32) (string, error) {
	c.mu.Lock()
	if l, ok := c.leaders[rangeID]; ok {
		c.mu.Unlock()
		return l, nil
	}
	c.mu.Unlock()
	data, err := c.sess.Get(leaderPath(rangeID))
	if err != nil {
		return "", fmt.Errorf("%w: range %d has no leader", ErrUnavailable, rangeID)
	}
	l := string(data)
	c.mu.Lock()
	c.leaders[rangeID] = l
	c.mu.Unlock()
	return l, nil
}

// forgetLeader drops a cached leader after a NotLeader or timeout.
func (c *Client) forgetLeader(rangeID uint32) {
	c.mu.Lock()
	delete(c.leaders, rangeID)
	c.mu.Unlock()
}

// anyReplica picks a random cohort member for timeline reads; it returns
// "" when the range is unknown under the current layout (stale view).
func (c *Client) anyReplica(rangeID uint32) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	cohort := c.layout.Cohort(rangeID)
	if len(cohort) == 0 {
		return ""
	}
	return cohort[c.rng.Intn(len(cohort))]
}

// writeRetries bounds leader re-resolution on routing misses.
const writeRetries = 8

// retryBackoff spaces routing retries so an in-flight election or takeover
// (tens of milliseconds) can complete instead of burning all attempts in
// microseconds.
const retryBackoff = 25 * time.Millisecond

// write routes a WriteOp to the range leader, retrying through leader
// changes and layout changes (the row's range is re-resolved on every
// attempt, so a refresh after StatusWrongLayout re-routes the next try),
// and returns the assigned versions.
func (c *Client) write(op WriteOp) ([]uint64, error) {
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff)
		}
		rangeID := c.rangeOf(op.Row)
		leader, err := c.leader(rangeID)
		if err != nil {
			// The range may no longer exist (stale layout after a
			// split); refresh before the next attempt re-routes.
			c.refreshLayout()
			lastErr = err
			continue
		}
		resp, err := c.ep.Call(transport.Message{
			To: leader, Kind: MsgWrite, Cohort: rangeID, Payload: EncodeWriteOp(nil, op),
		})
		if err != nil {
			c.forgetLeader(rangeID)
			if c.strictWrites && errors.Is(err, transport.ErrTimeout) {
				// A timed-out call may have reached the leader and
				// been sequenced; a retry could execute the write
				// twice. Other transport errors (unknown node, send
				// failure) prove the request never left, so retrying
				// stays safe even in strict mode.
				return nil, fmt.Errorf("%w: %v", ErrAmbiguous, err)
			}
			lastErr = err
			continue
		}
		res, err := decodeWriteResult(resp.Payload)
		if err != nil {
			return nil, err
		}
		switch res.Status {
		case StatusOK:
			return res.Versions, nil
		case StatusNotLeader, StatusUnavailable:
			// Definite no-effect failures: always safe to retry.
			c.forgetLeader(rangeID)
			lastErr = StatusError(res.Status, res.Detail)
			continue
		case StatusWrongLayout:
			// Routing miss under a stale layout (no effect): refresh
			// and re-route.
			c.forgetLeader(rangeID)
			c.refreshLayout()
			lastErr = StatusError(res.Status, res.Detail)
			continue
		case StatusAmbiguous:
			c.forgetLeader(rangeID)
			if c.strictWrites {
				return nil, StatusError(res.Status, res.Detail)
			}
			lastErr = StatusError(res.Status, res.Detail)
			continue
		default:
			return nil, StatusError(res.Status, res.Detail)
		}
	}
	if lastErr == nil {
		lastErr = ErrUnavailable
	}
	return nil, lastErr
}

// maxAsyncInFlight bounds a client's concurrent asynchronous writes so a
// large Batch pipelines without flooding the transport.
const maxAsyncInFlight = 128

// WriteFuture is the handle to an in-flight asynchronous write. Wait blocks
// until the write commits (or fails) and returns the versions assigned to
// its columns; it may be called multiple times and from any goroutine.
type WriteFuture struct {
	done     chan struct{}
	versions []uint64
	err      error
}

// Wait blocks for the write's outcome.
func (f *WriteFuture) Wait() ([]uint64, error) {
	<-f.done
	return f.versions, f.err
}

// writeAsync routes op to the range leader without blocking the caller,
// returning a future for the outcome. Each in-flight write occupies its own
// request slot, so a single client can keep the leader's proposal pipeline
// full (the batched replication path coalesces concurrently submitted
// writes into shared propose batches and log forces).
func (c *Client) writeAsync(op WriteOp) *WriteFuture {
	f := &WriteFuture{done: make(chan struct{})}
	c.asyncSem <- struct{}{}
	go func() {
		defer func() { <-c.asyncSem }()
		f.versions, f.err = c.write(op)
		close(f.done)
	}()
	return f
}

// PutAsync starts a put without waiting for it to commit; the returned
// future resolves to the assigned version. Submitting many writes before
// waiting pipelines them through the leader's batched replication path.
// Submission applies backpressure: once maxAsyncInFlight writes are
// outstanding, PutAsync blocks until a slot frees.
func (c *Client) PutAsync(row, col string, value []byte) *WriteFuture {
	return c.writeAsync(WriteOp{Row: row, Cols: []ColWrite{{Col: col, Value: value}}})
}

// DeleteAsync starts a delete without waiting for it to commit; it applies
// the same backpressure as PutAsync.
func (c *Client) DeleteAsync(row, col string) *WriteFuture {
	return c.writeAsync(WriteOp{Row: row, Cols: []ColWrite{{Col: col, Delete: true}}})
}

// Batch collects writes to independent rows and submits them as one
// pipelined burst. Each write remains its own single-operation transaction
// (the paper's API has no cross-row transactions, §3); the batch only
// overlaps their replication rather than running them lockstep.
type Batch struct {
	c   *Client
	ops []WriteOp
}

// NewBatch returns an empty write batch.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

// Put adds a put to the batch.
func (b *Batch) Put(row, col string, value []byte) {
	b.ops = append(b.ops, WriteOp{Row: row, Cols: []ColWrite{{Col: col, Value: value}}})
}

// Delete adds a delete to the batch.
func (b *Batch) Delete(row, col string) {
	b.ops = append(b.ops, WriteOp{Row: row, Cols: []ColWrite{{Col: col, Delete: true}}})
}

// Len reports the number of writes queued in the batch.
func (b *Batch) Len() int { return len(b.ops) }

// Run submits every write concurrently and waits for them all, returning
// the version assigned to each write (in batch order) and the first error
// encountered. The batch is left empty for reuse.
func (b *Batch) Run() ([]uint64, error) {
	ops := b.ops
	b.ops = nil
	futures := make([]*WriteFuture, len(ops))
	for i, op := range ops {
		futures[i] = b.c.writeAsync(op)
	}
	versions := make([]uint64, len(ops))
	var firstErr error
	for i, f := range futures {
		vs, err := f.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if len(vs) > 0 {
			versions[i] = vs[0]
		}
	}
	return versions, firstErr
}

// Put inserts a column value into a row (§3) and returns the version
// assigned to it.
func (c *Client) Put(row, col string, value []byte) (uint64, error) {
	vs, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{Col: col, Value: value}}})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// Delete removes a column from a row (§3).
func (c *Client) Delete(row, col string) error {
	_, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{Col: col, Delete: true}}})
	return err
}

// ConditionalPut inserts a new value only if the column's current version
// equals version; otherwise ErrVersionMismatch is returned (§3). A version
// of 0 means "only if the column does not exist".
func (c *Client) ConditionalPut(row, col string, value []byte, version uint64) (uint64, error) {
	vs, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{
		Col: col, Value: value, Cond: true, CondVersion: version,
	}}})
	if err != nil {
		return 0, err
	}
	return vs[0], nil
}

// ConditionalDelete removes the column only if its current version equals
// version (§3).
func (c *Client) ConditionalDelete(row, col string, version uint64) error {
	_, err := c.write(WriteOp{Row: row, Cols: []ColWrite{{
		Col: col, Delete: true, Cond: true, CondVersion: version,
	}}})
	return err
}

// Column is one column of a multi-column write.
type Column struct {
	Col   string
	Value []byte
}

// MultiPut atomically puts several columns of the same row in one
// single-operation transaction (§3: "the multi-column version of
// conditional put allows multiple columns of the same row to be
// conditionally put with one API call").
func (c *Client) MultiPut(row string, cols []Column) ([]uint64, error) {
	op := WriteOp{Row: row}
	for _, col := range cols {
		op.Cols = append(op.Cols, ColWrite{Col: col.Col, Value: col.Value})
	}
	return c.write(op)
}

// ConditionalMultiPut atomically puts several columns, each guarded by its
// expected current version.
func (c *Client) ConditionalMultiPut(row string, cols []Column, versions []uint64) ([]uint64, error) {
	if len(cols) != len(versions) {
		return nil, errors.New("core: cols and versions length mismatch")
	}
	op := WriteOp{Row: row}
	for i, col := range cols {
		op.Cols = append(op.Cols, ColWrite{
			Col: col.Col, Value: col.Value, Cond: true, CondVersion: versions[i],
		})
	}
	return c.write(op)
}

// Get reads a column value and its version (§3). consistent=true routes to
// the cohort leader and always returns the latest value; consistent=false
// (timeline consistency) reads any replica and may return a stale value in
// exchange for better performance.
func (c *Client) Get(row, col string, consistent bool) ([]byte, uint64, error) {
	req := encodeGetReq(getReq{Row: row, Col: col, Consistent: consistent})
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff)
		}
		rangeID := c.rangeOf(row)
		var target string
		if consistent {
			var err error
			if target, err = c.leader(rangeID); err != nil {
				c.refreshLayout()
				lastErr = err
				continue
			}
		} else if target = c.anyReplica(rangeID); target == "" {
			c.refreshLayout()
			lastErr = ErrUnavailable
			continue
		}
		resp, err := c.ep.Call(transport.Message{To: target, Kind: MsgGet, Cohort: rangeID, Payload: req})
		if err != nil {
			if consistent {
				c.forgetLeader(rangeID)
			}
			lastErr = err
			continue
		}
		res, err := decodeGetResp(resp.Payload)
		if err != nil {
			return nil, 0, err
		}
		switch res.Status {
		case StatusOK:
			return res.Value, res.Version, nil
		case StatusNotFound:
			return nil, res.Version, ErrNotFound
		case StatusNotLeader, StatusUnavailable:
			// NotLeader: re-resolve. Unavailable: a mid-takeover
			// leader that cannot serve strong reads yet; retry.
			c.forgetLeader(rangeID)
			lastErr = StatusError(res.Status, "")
			continue
		case StatusWrongLayout:
			// The range moved or split; refresh the layout and
			// re-route.
			c.forgetLeader(rangeID)
			c.refreshLayout()
			lastErr = StatusError(res.Status, "")
			continue
		default:
			return nil, 0, StatusError(res.Status, "")
		}
	}
	if lastErr == nil {
		lastErr = ErrUnavailable
	}
	return nil, 0, lastErr
}

// GetRow reads every live column of a row with the chosen consistency.
func (c *Client) GetRow(row string, consistent bool) ([]kv.Entry, error) {
	req := encodeGetReq(getReq{Row: row, Consistent: consistent})
	var lastErr error
	for attempt := 0; attempt < writeRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(retryBackoff)
		}
		rangeID := c.rangeOf(row)
		var target string
		if consistent {
			var err error
			if target, err = c.leader(rangeID); err != nil {
				c.refreshLayout()
				lastErr = err
				continue
			}
		} else if target = c.anyReplica(rangeID); target == "" {
			c.refreshLayout()
			lastErr = ErrUnavailable
			continue
		}
		resp, err := c.ep.Call(transport.Message{To: target, Kind: MsgGetRow, Cohort: rangeID, Payload: req})
		if err != nil {
			if consistent {
				c.forgetLeader(rangeID)
			}
			lastErr = err
			continue
		}
		res, err := decodeRowResp(resp.Payload)
		if err != nil {
			return nil, err
		}
		switch res.Status {
		case StatusOK:
			return res.Entries, nil
		case StatusNotFound:
			return nil, ErrNotFound
		case StatusNotLeader, StatusUnavailable:
			c.forgetLeader(rangeID)
			lastErr = StatusError(res.Status, "")
			continue
		case StatusWrongLayout:
			c.forgetLeader(rangeID)
			c.refreshLayout()
			lastErr = StatusError(res.Status, "")
			continue
		default:
			return nil, StatusError(res.Status, "")
		}
	}
	if lastErr == nil {
		lastErr = ErrUnavailable
	}
	return nil, lastErr
}
