package wal

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	rec := Record{Cohort: 7, Type: RecWrite, LSN: MakeLSN(1, 21), Payload: []byte("k=v")}
	buf := rec.Encode(nil)
	if len(buf) != rec.EncodedSize() {
		t.Fatalf("EncodedSize = %d, Encode produced %d", rec.EncodedSize(), len(buf))
	}
	got, n, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d, want %d", n, len(buf))
	}
	if got.Cohort != rec.Cohort || got.Type != rec.Type || got.LSN != rec.LSN || !bytes.Equal(got.Payload, rec.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, rec)
	}
}

func TestRecordEmptyPayload(t *testing.T) {
	rec := Record{Cohort: 0, Type: RecLastCommitted, LSN: MakeLSN(2, 5)}
	got, _, err := DecodeRecord(rec.Encode(nil))
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if len(got.Payload) != 0 {
		t.Errorf("payload = %v, want empty", got.Payload)
	}
}

func TestRecordDetectsCorruption(t *testing.T) {
	rec := Record{Cohort: 3, Type: RecWrite, LSN: MakeLSN(1, 1), Payload: []byte("payload")}
	buf := rec.Encode(nil)
	for _, i := range []int{0, 4, recHeaderSize, len(buf) - 1} {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		if _, _, err := DecodeRecord(mut); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("flipping byte %d: err = %v, want ErrCorruptRecord", i, err)
		}
	}
}

func TestRecordTruncatedBuffer(t *testing.T) {
	rec := Record{Cohort: 1, Type: RecWrite, LSN: MakeLSN(1, 2), Payload: []byte("abcdef")}
	buf := rec.Encode(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeRecord(buf[:cut]); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("cut at %d: err = %v, want ErrCorruptRecord", cut, err)
		}
	}
}

func TestRecordBackToBack(t *testing.T) {
	r1 := Record{Cohort: 1, Type: RecWrite, LSN: MakeLSN(1, 1), Payload: []byte("one")}
	r2 := Record{Cohort: 2, Type: RecCheckpoint, LSN: MakeLSN(1, 2), Payload: []byte("two")}
	buf := r2.Encode(r1.Encode(nil))
	got1, n1, err := DecodeRecord(buf)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	got2, _, err := DecodeRecord(buf[n1:])
	if err != nil {
		t.Fatalf("second: %v", err)
	}
	if got1.Cohort != 1 || got2.Cohort != 2 {
		t.Errorf("cohorts = %d,%d want 1,2", got1.Cohort, got2.Cohort)
	}
	if !bytes.Equal(got2.Payload, []byte("two")) {
		t.Errorf("second payload = %q", got2.Payload)
	}
}

func TestRecordPropertyRoundTrip(t *testing.T) {
	f := func(cohort uint32, typ uint8, epoch uint16, seq uint64, payload []byte) bool {
		rec := Record{
			Cohort:  cohort,
			Type:    RecType(typ%3 + 1),
			LSN:     MakeLSN(uint32(epoch), seq&MaxSeq),
			Payload: payload,
		}
		got, n, err := DecodeRecord(rec.Encode(nil))
		if err != nil || n != rec.EncodedSize() {
			return false
		}
		return got.Cohort == rec.Cohort && got.Type == rec.Type &&
			got.LSN == rec.LSN && bytes.Equal(got.Payload, rec.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecTypeString(t *testing.T) {
	for typ, want := range map[RecType]string{
		RecWrite: "write", RecLastCommitted: "lastCommitted",
		RecCheckpoint: "checkpoint", RecType(99): "RecType(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}
