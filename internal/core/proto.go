// Package core implements the Spinnaker node: the paper's primary
// contribution. It ties the shared write-ahead log, the per-range LSM
// storage engines, the coordination service, and the messaging layer into
// the Paxos-derived replication protocol of §5, the recovery procedures of
// §6, and the leader election protocol of §7.
//
// Two ways this implementation goes beyond the paper's figures as drawn:
// the default write path is a batched, pipelined proposal stream (leaders
// coalesce concurrently sequenced writes into one MsgProposeBatch per peer
// and followers reply with one cumulative acked-through LSN; the literal
// one-propose-one-ack-per-write protocol of Figure 4 survives as the
// DisableProposalBatching ablation), and cluster membership is live: nodes
// follow the versioned layout published through the coordination service,
// creating, retiring, and re-membering cohort replicas as ranges split and
// move (elastic scale-out, §4's placement made dynamic).
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"spinnaker/internal/kv"
	"spinnaker/internal/wal"
)

// Message kinds exchanged between nodes and clients.
const (
	// Client operations (§3). Each executes as a single-operation
	// transaction.
	MsgGet uint8 = 1 + iota
	MsgGetRow
	MsgWrite // put / delete / conditional put / conditional delete / multi-column
	// Replication protocol (§5, Figure 4).
	MsgPropose
	MsgAck
	MsgCommit
	// Recovery (§6).
	MsgStateReq    // new leader asks follower for its f.cmt (Fig 6 line 4)
	MsgTakeover    // leader → follower: catch up to l.cmt (Fig 6 lines 5-6)
	MsgCatchupReq  // recovering follower → leader: advertise f.cmt (§6.1)
	MsgCatchupResp // leader → follower: committed writes after f.cmt
	// Batched replication (default write path): one propose message per
	// batch of sequenced writes, one cumulative ack per batch. The
	// per-write MsgPropose/MsgAck pair above remains as the
	// DisableProposalBatching ablation.
	MsgProposeBatch
	MsgAckBatch // payload: AckedThrough LSN (cumulative)
	// Bulk catch-up (§6.1, SSTable-based): when the leader's log has been
	// truncated past the follower's f.cmt, the MsgCatchupReq reply comes
	// back as a snapshot manifest instead of entries, and the follower
	// fetches the listed table blobs chunk by chunk.
	MsgSnapManifest  // reply to MsgCatchupReq: table list + Merkle digests
	MsgTableChunkReq // follower → leader: one chunk of one manifest table
	MsgTableChunk    // leader → follower: the chunk bytes + CRC
)

// Status codes carried in responses.
const (
	StatusOK uint8 = iota
	StatusNotFound
	StatusNotLeader
	StatusVersionMismatch
	StatusUnavailable
	StatusBadRequest
	// StatusAmbiguous reports a write that failed AFTER being sequenced
	// into the replication stream: it sits in the leader's durable log
	// and commit queue and may yet commit (quorum timeout, leadership
	// lost mid-replication). Unlike StatusUnavailable — which is only
	// ever returned before sequencing and so guarantees the write took
	// no effect — a blind retry after StatusAmbiguous can execute the
	// write twice.
	StatusAmbiguous
	// StatusWrongLayout reports that the contacted node does not serve
	// the requested key under the current cluster layout: the client
	// routed with a stale layout version (a range was split or moved).
	// The operation took no effect; the client should refresh the layout
	// from the coordination service and re-route.
	StatusWrongLayout
)

// StatusError converts a non-OK status into an error.
func StatusError(status uint8, detail string) error {
	switch status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusNotLeader:
		return fmt.Errorf("%w: %s", ErrNotLeader, detail)
	case StatusVersionMismatch:
		return ErrVersionMismatch
	case StatusUnavailable:
		return fmt.Errorf("%w: %s", ErrUnavailable, detail)
	case StatusAmbiguous:
		return fmt.Errorf("%w: %s", ErrAmbiguous, detail)
	case StatusWrongLayout:
		return fmt.Errorf("%w: %s", ErrWrongLayout, detail)
	default:
		return fmt.Errorf("core: %s", detail)
	}
}

// Errors surfaced through the client API.
var (
	// ErrNotFound reports a missing row/column.
	ErrNotFound = fmt.Errorf("core: not found")
	// ErrNotLeader reports that the contacted node does not lead the
	// cohort; the client should re-resolve the leader.
	ErrNotLeader = fmt.Errorf("core: not the cohort leader")
	// ErrVersionMismatch is the conditional put/delete failure (§3): the
	// column's current version differs from the one supplied.
	ErrVersionMismatch = fmt.Errorf("core: version mismatch")
	// ErrUnavailable reports a cohort closed for writes (no leader, or
	// leader takeover in progress). The operation took no effect.
	ErrUnavailable = fmt.Errorf("core: cohort unavailable")
	// ErrAmbiguous reports a write whose outcome is unknown: it was
	// sequenced but its commit was never confirmed, and it may or may
	// not take effect. Returned by strict-write clients instead of
	// retrying (a retry could apply the write twice).
	ErrAmbiguous = fmt.Errorf("core: write outcome ambiguous")
	// ErrWrongLayout reports routing with a stale cluster layout; the
	// client refreshes the layout and retries, so it only surfaces when
	// the refreshed layout still cannot route the operation.
	ErrWrongLayout = fmt.Errorf("core: stale cluster layout")
)

// ColWrite is one column mutation within a WriteOp.
type ColWrite struct {
	Col    string
	Value  []byte
	Delete bool
	// CondVersion is the version the column must currently have for a
	// conditional put/delete (checked by the leader, §5.1); ignored
	// unless Cond is set.
	Cond        bool
	CondVersion uint64
	// Version is assigned by the leader when the write is sequenced and
	// is therefore identical on every replica.
	Version uint64
}

// WriteOp is a single-operation transaction mutating one or more columns of
// one row (§3: multi-column variants mutate several columns of the same row
// in one call). It is the payload of both log records and propose messages.
type WriteOp struct {
	Row  string
	Cols []ColWrite
}

// WriteOpEncodedSize returns the number of bytes EncodeWriteOp will produce.
//
//spinnaker:hotpath
func WriteOpEncodedSize(op WriteOp) int {
	n := 2 + len(op.Row) + 2
	for i := range op.Cols {
		n += 2 + len(op.Cols[i].Col) + 1 + 8 + 8 + 4 + len(op.Cols[i].Value)
	}
	return n
}

// Static decode errors for the replication hot path: the decoders below are
// //spinnaker:hotpath, which forbids fmt.* (an Errorf per malformed message
// allocates and formats on a path that normally never fails). A truncated
// payload is a framing bug, not user input — the offset detail the old
// dynamic messages carried is recoverable in a debugger, and the sentinel
// form makes the errors comparable with errors.Is.
var (
	errWriteOpTruncated      = errors.New("core: write op truncated")
	errProposeBatchTruncated = errors.New("core: propose batch truncated")
	errProposeBatchCount     = errors.New("core: propose batch count exceeds payload")
	errAckTruncated          = errors.New("core: ack payload truncated")
	errCommitTruncated       = errors.New("core: commit payload truncated")
)

// growBuf extends dst by n bytes with at most one allocation and returns the
// extended slice together with the n-byte window just added (the core-side
// twin of the WAL's framing helper).
//
//spinnaker:hotpath
func growBuf(dst []byte, n int) ([]byte, []byte) {
	l := len(dst)
	if cap(dst)-l < n {
		bigger := make([]byte, l, l+n)
		copy(bigger, dst)
		dst = bigger
	}
	dst = dst[:l+n]
	return dst, dst[l : l+n]
}

// EncodeWriteOp serializes op, appending to dst. The destination grows at
// most once (pre-size with WriteOpEncodedSize for zero growth).
//
//spinnaker:hotpath
func EncodeWriteOp(dst []byte, op WriteOp) []byte {
	dst, b := growBuf(dst, WriteOpEncodedSize(op))
	binary.LittleEndian.PutUint16(b[0:2], uint16(len(op.Row)))
	off := 2 + copy(b[2:], op.Row)
	binary.LittleEndian.PutUint16(b[off:], uint16(len(op.Cols)))
	off += 2
	for i := range op.Cols {
		c := &op.Cols[i]
		binary.LittleEndian.PutUint16(b[off:], uint16(len(c.Col)))
		off += 2
		off += copy(b[off:], c.Col)
		var flags byte
		if c.Delete {
			flags |= 1
		}
		if c.Cond {
			flags |= 2
		}
		b[off] = flags
		off++
		binary.LittleEndian.PutUint64(b[off:], c.CondVersion)
		off += 8
		binary.LittleEndian.PutUint64(b[off:], c.Version)
		off += 8
		binary.LittleEndian.PutUint32(b[off:], uint32(len(c.Value)))
		off += 4
		off += copy(b[off:], c.Value)
	}
	return dst
}

// DecodeWriteOp parses a WriteOp, returning it and the bytes consumed.
// Values are copied out of b; the result does not alias the input.
func DecodeWriteOp(b []byte) (WriteOp, int, error) {
	return decodeWriteOp(b, true)
}

// decodeWriteOpShared is DecodeWriteOp without the value copies: the result's
// Values alias b. The replication hot path uses it where the message payload
// is immutable once received (nothing writes to a payload after encode), so
// the bytes can flow into the commit queue and memtable without a per-column
// allocation.
//
//spinnaker:aliases
//spinnaker:hotpath
func decodeWriteOpShared(b []byte) (WriteOp, int, error) {
	return decodeWriteOp(b, false)
}

//spinnaker:hotpath
func decodeWriteOp(b []byte, copyValues bool) (WriteOp, int, error) {
	var op WriteOp
	off := 0
	need := func(n int) error {
		if len(b)-off < n {
			return errWriteOpTruncated
		}
		return nil
	}
	if err := need(2); err != nil {
		return op, 0, err
	}
	rl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if err := need(rl); err != nil {
		return op, 0, err
	}
	op.Row = string(b[off : off+rl])
	off += rl
	if err := need(2); err != nil {
		return op, 0, err
	}
	nCols := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if nCols > 0 {
		op.Cols = make([]ColWrite, 0, nCols)
	}
	for i := 0; i < nCols; i++ {
		var c ColWrite
		if err := need(2); err != nil {
			return op, 0, err
		}
		cl := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if err := need(cl + 1 + 8 + 8 + 4); err != nil {
			return op, 0, err
		}
		c.Col = string(b[off : off+cl])
		off += cl
		flags := b[off]
		off++
		c.Delete = flags&1 != 0
		c.Cond = flags&2 != 0
		c.CondVersion = binary.LittleEndian.Uint64(b[off:])
		off += 8
		c.Version = binary.LittleEndian.Uint64(b[off:])
		off += 8
		vl := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if err := need(vl); err != nil {
			return op, 0, err
		}
		if vl > 0 {
			if copyValues {
				c.Value = append([]byte(nil), b[off:off+vl]...)
			} else {
				c.Value = b[off : off+vl : off+vl]
			}
		}
		off += vl
		op.Cols = append(op.Cols, c)
	}
	return op, off, nil
}

// Entries converts a sequenced WriteOp into storage entries at lsn.
func (op WriteOp) Entries(lsn wal.LSN) []kv.Entry {
	out := make([]kv.Entry, 0, len(op.Cols))
	for _, c := range op.Cols {
		out = append(out, kv.Entry{
			Key: kv.Key{Row: op.Row, Col: c.Col},
			Cell: kv.Cell{
				Value:   c.Value,
				Version: c.Version,
				LSN:     lsn,
				Deleted: c.Delete,
			},
		})
	}
	return out
}

// proposePayload is the body of MsgPropose: the LSN plus the op. The commit
// piggyback (App. D.1) rides along: committedThrough tells the follower it
// may apply everything at or below that LSN.
type proposePayload struct {
	LSN              wal.LSN
	CommittedThrough wal.LSN
	Op               WriteOp
}

func encodePropose(p proposePayload) []byte {
	buf := make([]byte, 16, 16+WriteOpEncodedSize(p.Op))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(p.LSN))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(p.CommittedThrough))
	return EncodeWriteOp(buf, p.Op)
}

func decodePropose(b []byte) (proposePayload, error) {
	var p proposePayload
	if len(b) < 16 {
		return p, fmt.Errorf("core: propose truncated")
	}
	p.LSN = wal.LSN(binary.LittleEndian.Uint64(b[0:8]))
	p.CommittedThrough = wal.LSN(binary.LittleEndian.Uint64(b[8:16]))
	op, _, err := DecodeWriteOp(b[16:])
	if err != nil {
		return p, err
	}
	p.Op = op
	return p, nil
}

// proposeRec is one sequenced write inside a batched propose: the LSN plus
// the op, exactly the per-write protocol state of Fig 4 without the
// per-message envelope. Raw, when non-nil, is Op's encoding: the leader
// fills it when sequencing (the same bytes become the WAL record payload)
// so batch encoding copies instead of re-encoding, and decode fills it by
// slicing the message payload so the follower's WAL append never re-encodes
// either. Raw and Op must describe the same write.
type proposeRec struct {
	LSN wal.LSN
	Op  WriteOp
	Raw []byte
}

// Minimum encoded sizes, used to validate decoded element counts against
// the payload length before allocating.
const (
	// kv.EncodeEntry: two u16 key lengths + version + lsn + timestamp +
	// deleted byte + u32 value length.
	minEntryEncodedSize = 2 + 2 + 8 + 8 + 8 + 1 + 4
	// proposeRec: u64 LSN + an empty WriteOp (u16 row length + u16 count).
	minProposeRecEncodedSize = 8 + 2 + 2
)

// proposeBatchPayload is the body of MsgProposeBatch: the commit piggyback
// (as in proposePayload) followed by the batch's records in ascending LSN
// order. In steady state the records are the contiguous run of writes the
// leader sequenced since the previous batch; retransmissions may carry
// non-contiguous records, so every record carries its full LSN.
type proposeBatchPayload struct {
	CommittedThrough wal.LSN
	Recs             []proposeRec
}

//spinnaker:hotpath
func encodeProposeBatch(p proposeBatchPayload) []byte {
	size := 12
	for i := range p.Recs {
		if raw := p.Recs[i].Raw; raw != nil {
			size += 8 + len(raw)
		} else {
			size += 8 + WriteOpEncodedSize(p.Recs[i].Op)
		}
	}
	// One exact-size allocation. The buffer is intentionally NOT pooled:
	// the transport holds the payload asynchronously (one send per peer,
	// and the in-process transport hands the same slice to every receiver),
	// so its lifetime is unbounded from the encoder's point of view.
	buf := make([]byte, 12, size)
	binary.LittleEndian.PutUint64(buf[0:8], uint64(p.CommittedThrough))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(p.Recs)))
	var s [8]byte
	for i := range p.Recs {
		rec := &p.Recs[i]
		binary.LittleEndian.PutUint64(s[:], uint64(rec.LSN))
		buf = append(buf, s[:]...)
		if rec.Raw != nil {
			buf = append(buf, rec.Raw...)
		} else {
			buf = EncodeWriteOp(buf, rec.Op)
		}
	}
	return buf
}

// decodeProposeBatch parses a batched propose without copying: each record's
// Op shares the payload's value bytes and its Raw slices the payload's
// encoded-op bytes (see proposeRec). Payloads are immutable after encode, so
// the follower appends Raw to its WAL and applies Op to its memtable with no
// per-record re-encode or copy.
//
//spinnaker:aliases
//spinnaker:hotpath
func decodeProposeBatch(b []byte) (proposeBatchPayload, error) {
	var p proposeBatchPayload
	if len(b) < 12 {
		return p, errProposeBatchTruncated
	}
	p.CommittedThrough = wal.LSN(binary.LittleEndian.Uint64(b[0:8]))
	count := int(binary.LittleEndian.Uint32(b[8:12]))
	off := 12
	// A record is at least its LSN plus an empty WriteOp; validate the
	// count against the payload before allocating (a forged count must not
	// drive a huge make — the decodeManifest hardening, applied here).
	if count > (len(b)-off)/minProposeRecEncodedSize {
		return p, errProposeBatchCount
	}
	if count > 0 {
		p.Recs = make([]proposeRec, 0, count)
	}
	for i := 0; i < count; i++ {
		if len(b)-off < 8 {
			return p, errProposeBatchTruncated
		}
		lsn := wal.LSN(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		op, n, err := decodeWriteOpShared(b[off:])
		if err != nil {
			return p, err
		}
		p.Recs = append(p.Recs, proposeRec{LSN: lsn, Op: op, Raw: b[off : off+n : off+n]})
		off += n
	}
	return p, nil
}

// ackPayload is the body of MsgAck and MsgAckBatch: the acked LSN (per-write
// ack) or the cumulative acked-through watermark (batch ack), plus the
// follower's durable tombstone-GC floor — its storage checkpoint, below
// which every write is captured in SSTables and survives any crash. The
// leader takes the minimum floor across cohort members as the tombstone-GC
// watermark: compaction may only drop tombstones at or below it, because a
// member can never advertise a catch-up f.cmt below its own floor (local
// recovery raises f.cmt to the checkpoint), so EntriesSince stays complete.
//
//spinnaker:hotpath
func encodeAck(lsn, floor wal.LSN) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(lsn))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(floor))
	return buf[:]
}

//spinnaker:hotpath
func decodeAck(b []byte) (lsn, floor wal.LSN, err error) {
	if len(b) < 8 {
		return 0, 0, errAckTruncated
	}
	lsn = wal.LSN(binary.LittleEndian.Uint64(b[0:8]))
	if len(b) >= 16 {
		floor = wal.LSN(binary.LittleEndian.Uint64(b[8:16]))
	}
	return lsn, floor, nil
}

// commitMsgPayload is the body of MsgCommit: the commit LSN (§5) plus the
// leader's cohort tombstone-GC watermark, which followers adopt to gate
// their own compactions (every replica compacts its own engine; any of
// them may later lead and serve SSTable-based catch-up from it).
//
//spinnaker:hotpath
func encodeCommitMsg(cmt, gc wal.LSN) []byte {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], uint64(cmt))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(gc))
	return buf[:]
}

//spinnaker:hotpath
func decodeCommitMsg(b []byte) (cmt, gc wal.LSN, err error) {
	if len(b) < 8 {
		return 0, 0, errCommitTruncated
	}
	cmt = wal.LSN(binary.LittleEndian.Uint64(b[0:8]))
	if len(b) >= 16 {
		gc = wal.LSN(binary.LittleEndian.Uint64(b[8:16]))
	}
	return cmt, gc, nil
}

func encodeLSN(l wal.LSN) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(l))
	return buf[:]
}

func decodeLSN(b []byte) (wal.LSN, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("core: LSN payload truncated")
	}
	return wal.LSN(binary.LittleEndian.Uint64(b)), nil
}

func encodeLSNs(ls []wal.LSN) []byte {
	buf := make([]byte, 4+8*len(ls))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(ls)))
	for i, l := range ls {
		binary.LittleEndian.PutUint64(buf[4+8*i:], uint64(l))
	}
	return buf
}

func decodeLSNs(b []byte) ([]wal.LSN, int, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("core: LSN list truncated")
	}
	n := int(binary.LittleEndian.Uint32(b[:4]))
	if len(b) < 4+8*n {
		return nil, 0, fmt.Errorf("core: LSN list truncated: want %d", n)
	}
	out := make([]wal.LSN, n)
	for i := range out {
		out[i] = wal.LSN(binary.LittleEndian.Uint64(b[4+8*i:]))
	}
	return out, 4 + 8*n, nil
}

// catchupReq is the recovering follower's advertisement (§6.1): its last
// committed LSN plus the LSNs of its ambiguous log suffix (f.cmt, f.lst],
// which the leader intersects with its own log so the follower can
// logically truncate the rest (§6.1.1).
//
// The split-pull variant (SplitPull set) is sent by a replica of a freshly
// split range to the leader of the range it was split from: the origin
// leader replies with its committed state restricted to [FilterLow,
// FilterHigh) — the moved sub-range — once it has adopted the shrunk
// bounds and drained its in-flight writes to those rows.
type catchupReq struct {
	Cmt        wal.LSN
	Ambiguous  []wal.LSN
	SplitPull  bool
	FilterLow  string
	FilterHigh string
	// NoSnap forces the entry-served path even when the leader's log is
	// truncated past Cmt: after a snapshot round the follower's next
	// request covers only (snapCmt, l.cmt], which the engine serves as
	// entries, and the flag keeps a laggard from looping on manifests.
	// It also backs the log-replay ablation in the rejoin benchmark.
	NoSnap bool
	// Empty declares the follower holds no data at all (fresh join, or a
	// disk-loss rejoin after Wipe). The leader then skips building the
	// anti-entropy digest — with nothing local to compare, every leaf
	// would differ and every offered table ships regardless.
	Empty bool
}

func encodeCatchupReq(r catchupReq) []byte {
	buf := append(encodeLSN(r.Cmt), encodeLSNs(r.Ambiguous)...)
	if r.SplitPull {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	var s [2]byte
	binary.LittleEndian.PutUint16(s[:], uint16(len(r.FilterLow)))
	buf = append(buf, s[:]...)
	buf = append(buf, r.FilterLow...)
	binary.LittleEndian.PutUint16(s[:], uint16(len(r.FilterHigh)))
	buf = append(buf, s[:]...)
	buf = append(buf, r.FilterHigh...)
	// Trailing flags byte (decoders tolerate its absence for req payloads
	// encoded before bulk catch-up existed).
	var flags byte
	if r.NoSnap {
		flags |= 1
	}
	if r.Empty {
		flags |= 2
	}
	buf = append(buf, flags)
	return buf
}

func decodeCatchupReq(b []byte) (catchupReq, error) {
	var r catchupReq
	var err error
	if r.Cmt, err = decodeLSN(b); err != nil {
		return r, err
	}
	lsns, n, err := decodeLSNs(b[8:])
	if err != nil {
		return r, err
	}
	r.Ambiguous = lsns
	off := 8 + n
	if len(b)-off < 1+2 {
		return r, fmt.Errorf("core: catchup req flags truncated")
	}
	r.SplitPull = b[off] == 1
	off++
	ll := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b)-off < ll+2 {
		return r, fmt.Errorf("core: catchup req filter truncated")
	}
	r.FilterLow = string(b[off : off+ll])
	off += ll
	hl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b)-off < hl {
		return r, fmt.Errorf("core: catchup req filter truncated")
	}
	r.FilterHigh = string(b[off : off+hl])
	off += hl
	if len(b)-off >= 1 {
		r.NoSnap = b[off]&1 != 0
		r.Empty = b[off]&2 != 0
	}
	return r, nil
}

// keyInRange reports whether row falls in [low, high); high == "" means the
// top of the key space.
func keyInRange(row, low, high string) bool {
	return row >= low && (high == "" || row < high)
}

// catchupResp carries the committed state the follower is missing. Entries
// may come from the leader's log or, when the log has rolled over, from
// SSTables located by their LSN tags (§6.1). Present lists which of the
// follower's ambiguous LSNs exist in the leader's history; the others are
// logically truncated.
type catchupResp struct {
	Status  uint8
	Cmt     wal.LSN
	Present []wal.LSN
	Entries []kv.Entry
}

func encodeCatchupResp(r catchupResp) []byte {
	buf := []byte{r.Status}
	buf = append(buf, encodeLSN(r.Cmt)...)
	buf = append(buf, encodeLSNs(r.Present)...)
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], uint32(len(r.Entries)))
	buf = append(buf, s[:]...)
	for _, e := range r.Entries {
		buf = kv.EncodeEntry(buf, e)
	}
	return buf
}

func decodeCatchupResp(b []byte) (catchupResp, error) {
	var r catchupResp
	if len(b) < 1+8 {
		return r, fmt.Errorf("core: catchup resp truncated")
	}
	r.Status = b[0]
	var err error
	if r.Cmt, err = decodeLSN(b[1:]); err != nil {
		return r, err
	}
	off := 9
	present, n, err := decodeLSNs(b[off:])
	if err != nil {
		return r, err
	}
	r.Present = present
	off += n
	if len(b)-off < 4 {
		return r, fmt.Errorf("core: catchup resp entry count truncated")
	}
	count := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if count > (len(b)-off)/minEntryEncodedSize {
		return r, fmt.Errorf("core: catchup resp count %d exceeds %d payload bytes", count, len(b)-off)
	}
	if count > 0 {
		r.Entries = make([]kv.Entry, 0, count)
	}
	for i := 0; i < count; i++ {
		e, n, err := kv.DecodeEntry(b[off:])
		if err != nil {
			return r, err
		}
		r.Entries = append(r.Entries, e)
		off += n
	}
	return r, nil
}

// writeResult is the reply to MsgWrite: status + the versions assigned to
// each column (returned so read-modify-write loops can chain).
type writeResult struct {
	Status   uint8
	Detail   string
	Versions []uint64
}

func encodeWriteResult(r writeResult) []byte {
	buf := make([]byte, 0, 1+2+len(r.Detail)+2+8*len(r.Versions))
	buf = append(buf, r.Status)
	var s [8]byte
	binary.LittleEndian.PutUint16(s[:2], uint16(len(r.Detail)))
	buf = append(buf, s[:2]...)
	buf = append(buf, r.Detail...)
	binary.LittleEndian.PutUint16(s[:2], uint16(len(r.Versions)))
	buf = append(buf, s[:2]...)
	for _, v := range r.Versions {
		binary.LittleEndian.PutUint64(s[:8], v)
		buf = append(buf, s[:8]...)
	}
	return buf
}

func decodeWriteResult(b []byte) (writeResult, error) {
	var r writeResult
	if len(b) < 3 {
		return r, fmt.Errorf("core: write result truncated")
	}
	r.Status = b[0]
	dl := int(binary.LittleEndian.Uint16(b[1:3]))
	off := 3
	if len(b) < off+dl+2 {
		return r, fmt.Errorf("core: write result detail truncated")
	}
	r.Detail = string(b[off : off+dl])
	off += dl
	nv := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+8*nv {
		return r, fmt.Errorf("core: write result versions truncated")
	}
	if nv > 0 {
		r.Versions = make([]uint64, 0, nv)
	}
	for i := 0; i < nv; i++ {
		r.Versions = append(r.Versions, binary.LittleEndian.Uint64(b[off+8*i:]))
	}
	return r, nil
}

// getReq asks for one column. Consistent selects strong consistency (route
// to leader, latest value) vs timeline (any replica, possibly stale) — §3.
type getReq struct {
	Row, Col   string
	Consistent bool
}

func encodeGetReq(r getReq) []byte {
	var s [2]byte
	buf := []byte{}
	if r.Consistent {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	binary.LittleEndian.PutUint16(s[:], uint16(len(r.Row)))
	buf = append(buf, s[:]...)
	buf = append(buf, r.Row...)
	binary.LittleEndian.PutUint16(s[:], uint16(len(r.Col)))
	buf = append(buf, s[:]...)
	buf = append(buf, r.Col...)
	return buf
}

func decodeGetReq(b []byte) (getReq, error) {
	var r getReq
	if len(b) < 3 {
		return r, fmt.Errorf("core: get req truncated")
	}
	r.Consistent = b[0] == 1
	off := 1
	rl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+rl+2 {
		return r, fmt.Errorf("core: get req row truncated")
	}
	r.Row = string(b[off : off+rl])
	off += rl
	cl := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+cl {
		return r, fmt.Errorf("core: get req col truncated")
	}
	r.Col = string(b[off : off+cl])
	return r, nil
}

// getResp returns a column value and its version (§3: versions are exposed
// through the get API for use in conditional writes).
type getResp struct {
	Status  uint8
	Value   []byte
	Version uint64
}

func encodeGetResp(r getResp) []byte {
	buf := []byte{r.Status}
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], r.Version)
	buf = append(buf, s[:]...)
	binary.LittleEndian.PutUint32(s[:4], uint32(len(r.Value)))
	buf = append(buf, s[:4]...)
	return append(buf, r.Value...)
}

func decodeGetResp(b []byte) (getResp, error) {
	var r getResp
	if len(b) < 13 {
		return r, fmt.Errorf("core: get resp truncated")
	}
	r.Status = b[0]
	r.Version = binary.LittleEndian.Uint64(b[1:9])
	n := int(binary.LittleEndian.Uint32(b[9:13]))
	if len(b) < 13+n {
		return r, fmt.Errorf("core: get resp value truncated")
	}
	if n > 0 {
		r.Value = append([]byte(nil), b[13:13+n]...)
	}
	return r, nil
}

// rowResp returns all live columns of a row.
type rowResp struct {
	Status  uint8
	Entries []kv.Entry
}

func encodeRowResp(r rowResp) []byte {
	buf := []byte{r.Status}
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], uint32(len(r.Entries)))
	buf = append(buf, s[:]...)
	for _, e := range r.Entries {
		buf = kv.EncodeEntry(buf, e)
	}
	return buf
}

func decodeRowResp(b []byte) (rowResp, error) {
	var r rowResp
	if len(b) < 5 {
		return r, fmt.Errorf("core: row resp truncated")
	}
	r.Status = b[0]
	count := int(binary.LittleEndian.Uint32(b[1:5]))
	off := 5
	if count > (len(b)-off)/minEntryEncodedSize {
		return r, fmt.Errorf("core: row resp count %d exceeds %d payload bytes", count, len(b)-off)
	}
	if count > 0 {
		r.Entries = make([]kv.Entry, 0, count)
	}
	for i := 0; i < count; i++ {
		e, n, err := kv.DecodeEntry(b[off:])
		if err != nil {
			return r, err
		}
		r.Entries = append(r.Entries, e)
		off += n
	}
	return r, nil
}
