package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestZipfDistribution checks the generator against the analytic zipfian
// pmf: rank r is drawn with probability 1/((r+1)^theta * zeta(n,theta)).
func TestZipfDistribution(t *testing.T) {
	const (
		n     = 1000
		theta = 0.99
		draws = 200000
	)
	z := NewZipf(rand.New(rand.NewSource(42)), n, theta)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of [0,%d)", r, n)
		}
		counts[r]++
	}
	zetan := zeta(n, theta)
	// The YCSB construction is exact for ranks 0 and 1 and a continuous
	// approximation beyond, so allow a wider band there.
	for _, r := range []int{0, 1, 2, 10, 100} {
		want := 1 / (math.Pow(float64(r+1), theta) * zetan)
		tol := 0.1*want + 0.002
		if r >= 2 {
			tol = 0.25*want + 0.002
		}
		got := float64(counts[r]) / draws
		if math.Abs(got-want) > tol {
			t.Fatalf("rank %d: got pmf %.4f, want %.4f", r, got, want)
		}
	}
	// The hallmark of theta=0.99 over 1000 items: a few dozen hot ranks
	// carry half the load.
	cum, ranksToHalf := 0, 0
	for r := 0; r < n; r++ {
		cum += counts[r]
		if cum >= draws/2 {
			ranksToHalf = r + 1
			break
		}
	}
	if ranksToHalf < 5 || ranksToHalf > 60 {
		t.Fatalf("50%% of load in %d ranks, want a few dozen", ranksToHalf)
	}
}

// TestZipfDeterministic pins seed-reproducibility: nemesis-style replay
// of a failing skew run depends on it.
func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(rand.New(rand.NewSource(7)), 500, 0.99)
	b := NewZipf(rand.New(rand.NewSource(7)), 500, 0.99)
	for i := 0; i < 10000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}
